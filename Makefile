# Developer conveniences. CI runs the equivalent steps directly (see
# .github/workflows/ci.yml); these targets exist for local loops.

GO      ?= go
COUNT   ?= 10
BENCHOUT ?= bench-write.txt

.PHONY: test race bench-write bench-adapt bench-shards bench-smoke fig5 ablation6

test:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

# bench-write produces benchstat-friendly output for the write-path
# benchmarks (striped vs single-lock upserts, resize contention,
# batch writes). Typical before/after flow:
#
#   git stash            # or check out the baseline commit
#   make bench-write BENCHOUT=old.txt
#   git stash pop
#   make bench-write BENCHOUT=new.txt
#   benchstat old.txt new.txt
#
# COUNT=10 repetitions give benchstat enough samples for a
# significance test; raise it on noisy machines.
bench-write:
	$(GO) test -run='^$$' -bench='Write' -benchmem -count=$(COUNT) \
		./internal/core ./internal/shard | tee $(BENCHOUT)

# bench-adapt produces benchstat-friendly output for the adaptive
# maintenance paths: adaptive-vs-fixed upserts (controller overhead +
# convergence), the SetStripes array-swap cost, and sequential vs
# parallel unzip expansions. Same before/after flow as bench-write.
bench-adapt:
	$(GO) test -run='^$$' -bench='Adapt' -benchmem -count=$(COUNT) \
		./internal/core | tee bench-adapt.txt

# bench-shards is the shard-layer diet sweep: shards=1 vs the default
# shard count on pure-upsert and 90/10 mixed workloads, striped
# tables, adapt pinned off. Feed the two series to benchstat to decide
# whether DefaultShards still earns its keep on your hardware (the
# README records the reference result).
bench-shards:
	$(GO) test -run='^$$' -bench='Shards' -benchmem -count=$(COUNT) \
		./internal/shard | tee bench-shards.txt

# bench-smoke mirrors CI: every benchmark once, so bench code cannot rot.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./...

# fig5 runs the write-scaling figure (striped table vs single-mutex
# ablation vs sharded map vs lock baselines) and writes BENCH_fig5.json.
fig5:
	$(GO) run ./cmd/rphash-bench -fig 5 -json

# ablation6 runs the adaptive-maintenance ablation (fixed-vs-adaptive
# stripes on uniform and zipf writers; sequential vs parallel unzip)
# and writes BENCH_ablation6.json.
ablation6:
	$(GO) run ./cmd/rphash-bench -adapt -json
