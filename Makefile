# Developer conveniences. CI runs the equivalent steps directly (see
# .github/workflows/ci.yml); these targets exist for local loops.

GO      ?= go
COUNT   ?= 10
BENCHOUT ?= bench-write.txt

.PHONY: test race lint test-invariants bench-write bench-adapt bench-shards bench-smoke fig5 ablation6 ablation7 ablation8

test:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

# lint runs the in-tree RCU-discipline analyzers (cmd/rplint) over
# the whole module, both standalone and through the `go vet -vettool`
# protocol (the two drivers load packages differently; CI runs both,
# so the local loop should too). Findings are fix-or-justify: a
# deliberate exception needs `//lint:allow rplint/<name> <reason>`
# on or above the flagged line.
lint:
	$(GO) build -o bin/rplint ./cmd/rplint
	./bin/rplint ./...
	$(GO) vet -vettool=$$(pwd)/bin/rplint ./...

# test-invariants mirrors the CI invariants step: resize steps
# re-validate the table's structural invariants live, racing real
# writers, on every expansion and shrink the torture tests drive.
test-invariants:
	$(GO) test -tags=invariants -run 'Torture|Invariant|Resize|Churn' ./internal/core/

# bench-write produces benchstat-friendly output for the write-path
# benchmarks (striped vs single-lock upserts, resize contention,
# batch writes). Typical before/after flow:
#
#   git stash            # or check out the baseline commit
#   make bench-write BENCHOUT=old.txt
#   git stash pop
#   make bench-write BENCHOUT=new.txt
#   benchstat old.txt new.txt
#
# COUNT=10 repetitions give benchstat enough samples for a
# significance test; raise it on noisy machines.
bench-write:
	$(GO) test -run='^$$' -bench='Write' -benchmem -count=$(COUNT) \
		./internal/core ./internal/shard | tee $(BENCHOUT)

# bench-adapt produces benchstat-friendly output for the adaptive
# maintenance paths: adaptive-vs-fixed upserts (controller overhead +
# convergence), the SetStripes array-swap cost, and sequential vs
# parallel unzip expansions. Same before/after flow as bench-write.
bench-adapt:
	$(GO) test -run='^$$' -bench='Adapt' -benchmem -count=$(COUNT) \
		./internal/core | tee bench-adapt.txt

# bench-shards is the shard-layer diet sweep: shards=1 vs the default
# shard count on pure-upsert and 90/10 mixed workloads, striped
# tables, adapt pinned off. Feed the two series to benchstat to decide
# whether DefaultShards still earns its keep on your hardware (the
# README records the reference result).
bench-shards:
	$(GO) test -run='^$$' -bench='Shards' -benchmem -count=$(COUNT) \
		./internal/shard | tee bench-shards.txt

# bench-smoke mirrors CI: every benchmark once, so bench code cannot rot.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./...

# fig5 runs the write-scaling figure (striped table vs single-mutex
# ablation vs sharded map vs lock baselines) and writes BENCH_fig5.json.
fig5:
	$(GO) run ./cmd/rphash-bench -fig 5 -json

# ablation6 runs the adaptive-maintenance ablation (fixed-vs-adaptive
# stripes on uniform and zipf writers; sequential vs parallel unzip)
# and writes BENCH_ablation6.json.
ablation6:
	$(GO) run ./cmd/rphash-bench -adapt -json

# ablation7 runs the lock-free write fast-path ablation (locked vs
# CAS insert, striped vs CAS value RMW, uniform and zipf writers) and
# writes BENCH_ablation7.json.
ablation7:
	$(GO) run ./cmd/rphash-bench -caswrite -json

# ablation8 runs the bucket-engine ablation (flat cache-line groups vs
# relativistic chains: read-uniform/read-zipf/mixed throughput plus
# bytes/element) and writes BENCH_ablation8.json.
ablation8:
	$(GO) run ./cmd/rphash-bench -flatengine -json
