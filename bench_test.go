// Benchmarks regenerating every figure in the paper's evaluation.
// One Benchmark function per figure; sub-benchmarks enumerate the
// figure's series and x-axis points, so
//
//	go test -bench=Fig -benchmem
//
// prints the full grid. ns/op is per lookup (or per request for the
// memcached figure) aggregated across all reader goroutines; the
// Mops/s and kreq/s metrics match the paper's y-axes.
//
// cmd/rphash-bench and cmd/mc-benchmark print the same data as
// aligned tables with medians; EXPERIMENTS.md records those runs.
package rphash_test

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"rphash/internal/bench"
	"rphash/internal/mcbench"
	"rphash/internal/memcache"
	"rphash/internal/workload"
)

// paperReaders is the paper's x-axis for figures 1-4.
var paperReaders = []int{1, 2, 4, 8, 16}

// benchCfg mirrors the paper's table parameters.
func benchCfg() bench.Config {
	return bench.Config{
		Keys:         8192,
		KeySpace:     16384,
		SmallBuckets: 8192,
		LargeBuckets: 16384,
	}
}

// runLookups distributes b.N lookups across `readers` goroutines
// against a preloaded engine, optionally under a continuous resizer,
// and reports millions of lookups per second.
func runLookups(b *testing.B, mk func(buckets uint64) bench.Engine, buckets uint64, readers int, resize bool) {
	b.Helper()
	cfg := benchCfg()
	e := mk(buckets)
	defer e.Close()
	bench.Preload(e, cfg)

	stopResize := make(chan struct{})
	var resizeWG sync.WaitGroup
	if resize {
		resizeWG.Add(1)
		go func() {
			defer resizeWG.Done()
			for {
				select {
				case <-stopResize:
					return
				default:
				}
				e.Resize(cfg.LargeBuckets)
				e.Resize(cfg.SmallBuckets)
			}
		}()
	}

	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / readers
	if per == 0 {
		per = 1
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lookup, closeFn := e.NewLookup()
			if closeFn != nil {
				defer closeFn()
			}
			gen := workload.NewUniform(cfg.KeySpace, uint64(id)+1)
			for i := 0; i < per; i++ {
				lookup(gen.Key())
			}
		}(r)
	}
	wg.Wait()
	b.StopTimer()
	if el := b.Elapsed(); el > 0 {
		b.ReportMetric(float64(per*readers)/el.Seconds()/1e6, "Mlookups/s")
	}
	close(stopResize)
	resizeWG.Wait()
}

// BenchmarkFig1FixedBaseline — "Results: fixed-size table baseline":
// RP vs DDDS vs rwlock on a fixed 8k-bucket table.
func BenchmarkFig1FixedBaseline(b *testing.B) {
	engines := []struct {
		name string
		mk   func(uint64) bench.Engine
	}{
		{"RP", bench.NewRPQSBR},
		{"DDDS", bench.NewDDDS},
		{"rwlock", bench.NewRWLock},
	}
	for _, e := range engines {
		for _, readers := range paperReaders {
			b.Run(fmt.Sprintf("%s/readers=%d", e.name, readers), func(b *testing.B) {
				runLookups(b, e.mk, benchCfg().SmallBuckets, readers, false)
			})
		}
	}
}

// BenchmarkFig2ContinuousResize — "Results – continuous resizing":
// RP vs DDDS while a resizer toggles 8k<->16k.
func BenchmarkFig2ContinuousResize(b *testing.B) {
	engines := []struct {
		name string
		mk   func(uint64) bench.Engine
	}{
		{"RP", bench.NewRPQSBR},
		{"DDDS", bench.NewDDDS},
	}
	for _, e := range engines {
		for _, readers := range paperReaders {
			b.Run(fmt.Sprintf("%s/readers=%d", e.name, readers), func(b *testing.B) {
				runLookups(b, e.mk, benchCfg().SmallBuckets, readers, true)
			})
		}
	}
}

// BenchmarkFig3RPResizeVsFixed — "Results – our resize versus fixed":
// RP at fixed 8k, fixed 16k, and continuously resizing.
func BenchmarkFig3RPResizeVsFixed(b *testing.B) {
	cfg := benchCfg()
	cases := []struct {
		name    string
		buckets uint64
		resize  bool
	}{
		{"8k", cfg.SmallBuckets, false},
		{"16k", cfg.LargeBuckets, false},
		{"resize", cfg.SmallBuckets, true},
	}
	for _, c := range cases {
		for _, readers := range paperReaders {
			b.Run(fmt.Sprintf("%s/readers=%d", c.name, readers), func(b *testing.B) {
				runLookups(b, bench.NewRPQSBR, c.buckets, readers, c.resize)
			})
		}
	}
}

// BenchmarkFig4DDDSResizeVsFixed — "Results – DDDS resize versus
// fixed".
func BenchmarkFig4DDDSResizeVsFixed(b *testing.B) {
	cfg := benchCfg()
	cases := []struct {
		name    string
		buckets uint64
		resize  bool
	}{
		{"8k", cfg.SmallBuckets, false},
		{"16k", cfg.LargeBuckets, false},
		{"resize", cfg.SmallBuckets, true},
	}
	for _, c := range cases {
		for _, readers := range paperReaders {
			b.Run(fmt.Sprintf("%s/readers=%d", c.name, readers), func(b *testing.B) {
				runLookups(b, bench.NewDDDS, c.buckets, readers, c.resize)
			})
		}
	}
}

// BenchmarkFig5Memcached — "memcached results": requests/second
// against the mini-memcached over loopback TCP, RP engine vs default
// global-lock engine, GET and SET. Each b.N iteration is one short
// closed-loop measurement; kreq/s is the figure's y-axis.
func BenchmarkFig5Memcached(b *testing.B) {
	cases := []struct {
		name   string
		engine string
		op     mcbench.Op
	}{
		{"RP_GET", "rp", mcbench.GET},
		{"default_GET", "lock", mcbench.GET},
		{"default_SET", "lock", mcbench.SET},
		{"RP_SET", "rp", mcbench.SET},
	}
	for _, c := range cases {
		for _, procs := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/processes=%d", c.name, procs), func(b *testing.B) {
				var store memcache.Store
				if c.engine == "rp" {
					store = memcache.NewRPStore(0)
				} else {
					store = memcache.NewLockStore(0)
				}
				srv := memcache.NewServer(store, time.Second)
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				go srv.Serve(ln) //nolint:errcheck
				defer srv.Close()
				addr := ln.Addr().String()
				const keys = 10000
				if err := mcbench.Preload(addr, keys, 100); err != nil {
					b.Fatal(err)
				}

				var total float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ops, err := mcbench.Run(mcbench.Config{
						Addr:            addr,
						Processes:       procs,
						ConnsPerProcess: 1,
						Op:              c.op,
						Keys:            keys,
						ValueSize:       100,
						Duration:        150 * time.Millisecond,
						Warm:            20 * time.Millisecond,
						Pipeline:        4,
						MultiGet:        16,
					})
					if err != nil {
						b.Fatal(err)
					}
					total += ops
				}
				b.StopTimer()
				b.ReportMetric(total/float64(b.N)/1e3, "kreq/s")
			})
		}
	}
}
