// Command benchgate compares two BENCH_fig<N>.json trajectory files
// (see cmd/rphash-bench -json) and emits GitHub Actions warning
// annotations for engines whose throughput dropped — or whose p99
// latency rose — more than a threshold at a given thread count. It
// ANNOTATES, never fails: the
// exit status is 0 whenever both files parse, so a noisy CI box
// cannot block a merge — the warning shows up on the run summary for
// a human to judge.
//
// Usage:
//
//	benchgate -old prev/BENCH_fig5.json -new BENCH_fig5.json \
//	          -threads 8 -drop 0.15
//
// CI uses it as the regression gate for figure 5 (8-writer upsert
// points) and figure 7 (every batch-size series at the multi-get
// thread count): each (engine, batch) series present in both files at
// the gated thread count is compared independently, so a regression
// confined to the batch-100 path cannot hide behind a healthy batch-1
// number.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// figure mirrors cmd/rphash-bench's BENCH_fig<N>.json format.
type figure struct {
	Figure int     `json:"figure"`
	Title  string  `json:"title"`
	Points []point `json:"points"`
}

type point struct {
	Engine    string  `json:"engine"`
	Threads   int     `json:"threads"`
	Batch     int     `json:"batch"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P99NS     float64 `json:"p99_ns,omitempty"`
}

// seriesKey identifies one gated comparison series: figure-5 points
// are all batch 1, figure-7 sweeps batch at fixed threads — every
// batch size gates independently.
type seriesKey struct {
	Engine string
	Batch  int
}

// regression is one series' old-vs-new comparison at the gated
// thread count. Metric is "ops/s" (throughput dropped) or "p99_ns"
// (tail latency rose); Delta is the fractional change in the bad
// direction — (old-new)/old for throughput, (new-old)/old for p99.
type regression struct {
	Engine   string
	Batch    int
	Metric   string
	Old, New float64
	Delta    float64
}

// compare pairs every (engine, batch) series present in both figures
// at `threads` and returns those whose throughput dropped by more
// than `maxDrop` or whose p99 rose by more than `maxRise`,
// deterministically ordered. Series without p99 data on either side
// (older trajectory files, or benchmarks that don't sample latency)
// gate on throughput alone; maxRise <= 0 disables the latency gate.
func compare(oldFig, newFig figure, threads int, maxDrop, maxRise float64) []regression {
	at := func(f figure) map[seriesKey]point {
		m := make(map[seriesKey]point)
		for _, p := range f.Points {
			if p.Threads == threads {
				b := p.Batch
				if b < 1 {
					b = 1
				}
				m[seriesKey{p.Engine, b}] = p
			}
		}
		return m
	}
	oldPts, newPts := at(oldFig), at(newFig)
	var out []regression
	for key, oldPt := range oldPts {
		newPt, ok := newPts[key]
		if !ok {
			continue // series renamed/removed: nothing to gate
		}
		if oldPt.OpsPerSec > 0 {
			if drop := (oldPt.OpsPerSec - newPt.OpsPerSec) / oldPt.OpsPerSec; drop > maxDrop {
				out = append(out, regression{Engine: key.Engine, Batch: key.Batch,
					Metric: "ops/s", Old: oldPt.OpsPerSec, New: newPt.OpsPerSec, Delta: drop})
			}
		}
		if maxRise > 0 && oldPt.P99NS > 0 && newPt.P99NS > 0 {
			if rise := (newPt.P99NS - oldPt.P99NS) / oldPt.P99NS; rise > maxRise {
				out = append(out, regression{Engine: key.Engine, Batch: key.Batch,
					Metric: "p99_ns", Old: oldPt.P99NS, New: newPt.P99NS, Delta: rise})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Engine != out[j].Engine {
			return out[i].Engine < out[j].Engine
		}
		if out[i].Batch != out[j].Batch {
			return out[i].Batch < out[j].Batch
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}

func readFigure(path string) (figure, error) {
	var f figure
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

func main() {
	var (
		oldPath = flag.String("old", "", "previous run's BENCH_fig<N>.json")
		newPath = flag.String("new", "BENCH_fig5.json", "this run's BENCH_fig<N>.json")
		threads = flag.Int("threads", 8, "thread count to gate on")
		drop    = flag.Float64("drop", 0.15, "fractional throughput drop that triggers an annotation")
		rise    = flag.Float64("p99-rise", 0.30, "fractional p99 latency rise that triggers an annotation (0 disables the latency gate)")
	)
	flag.Parse()
	if *oldPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -old is required")
		os.Exit(2)
	}
	oldFig, err := readFigure(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	newFig, err := readFigure(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	regs := compare(oldFig, newFig, *threads, *drop, *rise)
	if len(regs) == 0 {
		fmt.Printf("benchgate: no engine dropped more than %.0f%% ops/s or rose more than %.0f%% p99 at %d threads (fig %d)\n",
			*drop*100, *rise*100, *threads, newFig.Figure)
		return
	}
	for _, r := range regs {
		// ::warning:: renders as an annotation on the workflow run;
		// plain echo keeps the numbers in the log too.
		series := r.Engine
		if r.Batch > 1 {
			series = fmt.Sprintf("%s batch=%d", r.Engine, r.Batch)
		}
		if r.Metric == "p99_ns" {
			fmt.Printf("::warning title=fig%d latency regression::engine %s at %d threads p99 rose %.1f%% (%.0f -> %.0f ns vs previous run)\n",
				newFig.Figure, series, *threads, r.Delta*100, r.Old, r.New)
		} else {
			fmt.Printf("::warning title=fig%d throughput regression::engine %s at %d threads dropped %.1f%% (%.0f -> %.0f ops/s vs previous run)\n",
				newFig.Figure, series, *threads, r.Delta*100, r.Old, r.New)
		}
	}
	// Annotate-only by design: exit 0.
}
