package main

import "testing"

func fig(points ...point) figure { return figure{Figure: 5, Points: points} }

// TestCompare pins the gate semantics: only same-engine, same-thread,
// batch<=1 points compare; drops over the threshold flag; rises,
// small drops, and removed engines never do.
func TestCompare(t *testing.T) {
	oldFig := fig(
		point{Engine: "RP", Threads: 8, Batch: 1, OpsPerSec: 1000},
		point{Engine: "RP", Threads: 4, Batch: 1, OpsPerSec: 900},
		point{Engine: "mutex", Threads: 8, Batch: 1, OpsPerSec: 500},
		point{Engine: "gone", Threads: 8, Batch: 1, OpsPerSec: 500},
	)
	newFig := fig(
		point{Engine: "RP", Threads: 8, Batch: 1, OpsPerSec: 800},    // -20%: flagged
		point{Engine: "RP", Threads: 4, Batch: 1, OpsPerSec: 100},    // wrong threads: ignored
		point{Engine: "mutex", Threads: 8, Batch: 1, OpsPerSec: 460}, // -8%: under threshold
	)

	regs := compare(oldFig, newFig, 8, 0.15)
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly the RP drop", regs)
	}
	r := regs[0]
	if r.Engine != "RP" || r.Drop < 0.19 || r.Drop > 0.21 {
		t.Fatalf("regression = %+v, want RP at ~20%%", r)
	}

	// Improvement never flags.
	better := fig(point{Engine: "RP", Threads: 8, Batch: 1, OpsPerSec: 2000})
	if regs := compare(oldFig, better, 8, 0.15); len(regs) != 0 {
		t.Fatalf("improvement flagged: %+v", regs)
	}

	// Batched points (figure 7 style) are excluded from the gate.
	batched := fig(point{Engine: "RP", Threads: 8, Batch: 100, OpsPerSec: 1})
	if regs := compare(oldFig, batched, 8, 0.15); len(regs) != 0 {
		t.Fatalf("batch point gated: %+v", regs)
	}

	// Zero/absent old throughput never divides by zero.
	zero := fig(point{Engine: "RP", Threads: 8, Batch: 1, OpsPerSec: 0})
	if regs := compare(zero, newFig, 8, 0.15); len(regs) != 0 {
		t.Fatalf("zero-baseline flagged: %+v", regs)
	}
}
