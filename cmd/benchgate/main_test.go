package main

import "testing"

func fig(points ...point) figure { return figure{Figure: 5, Points: points} }

// TestCompare pins the gate semantics: same-engine, same-thread,
// same-batch series compare; drops over the threshold flag; rises,
// small drops, and removed engines never do.
func TestCompare(t *testing.T) {
	oldFig := fig(
		point{Engine: "RP", Threads: 8, Batch: 1, OpsPerSec: 1000},
		point{Engine: "RP", Threads: 4, Batch: 1, OpsPerSec: 900},
		point{Engine: "mutex", Threads: 8, Batch: 1, OpsPerSec: 500},
		point{Engine: "gone", Threads: 8, Batch: 1, OpsPerSec: 500},
	)
	newFig := fig(
		point{Engine: "RP", Threads: 8, Batch: 1, OpsPerSec: 800},    // -20%: flagged
		point{Engine: "RP", Threads: 4, Batch: 1, OpsPerSec: 100},    // wrong threads: ignored
		point{Engine: "mutex", Threads: 8, Batch: 1, OpsPerSec: 460}, // -8%: under threshold
	)

	regs := compare(oldFig, newFig, 8, 0.15, 0)
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly the RP drop", regs)
	}
	r := regs[0]
	if r.Engine != "RP" || r.Batch != 1 || r.Delta < 0.19 || r.Delta > 0.21 {
		t.Fatalf("regression = %+v, want RP batch 1 at ~20%%", r)
	}

	// Improvement never flags.
	better := fig(point{Engine: "RP", Threads: 8, Batch: 1, OpsPerSec: 2000})
	if regs := compare(oldFig, better, 8, 0.15, 0); len(regs) != 0 {
		t.Fatalf("improvement flagged: %+v", regs)
	}

	// Zero/absent old throughput never divides by zero.
	zero := fig(point{Engine: "RP", Threads: 8, Batch: 1, OpsPerSec: 0})
	if regs := compare(zero, newFig, 8, 0.15, 0); len(regs) != 0 {
		t.Fatalf("zero-baseline flagged: %+v", regs)
	}
}

// TestCompareBatchSeries pins the figure-7 semantics: every (engine,
// batch) series at the gated thread count compares independently, and
// a batch-100 regression is caught even when batch 1 is healthy.
func TestCompareBatchSeries(t *testing.T) {
	oldFig := fig(
		point{Engine: "rp-sharded", Threads: 8, Batch: 1, OpsPerSec: 1000},
		point{Engine: "rp-sharded", Threads: 8, Batch: 10, OpsPerSec: 5000},
		point{Engine: "rp-sharded", Threads: 8, Batch: 100, OpsPerSec: 9000},
		point{Engine: "rp-cache", Threads: 8, Batch: 100, OpsPerSec: 8000},
	)
	newFig := fig(
		point{Engine: "rp-sharded", Threads: 8, Batch: 1, OpsPerSec: 1000},   // flat
		point{Engine: "rp-sharded", Threads: 8, Batch: 10, OpsPerSec: 4900},  // -2%: fine
		point{Engine: "rp-sharded", Threads: 8, Batch: 100, OpsPerSec: 6000}, // -33%: flagged
		point{Engine: "rp-cache", Threads: 8, Batch: 100, OpsPerSec: 4000},   // -50%: flagged
	)

	regs := compare(oldFig, newFig, 8, 0.15, 0)
	if len(regs) != 2 {
		t.Fatalf("regressions = %+v, want the two batch-100 drops", regs)
	}
	// Deterministic order: engine, then batch.
	if regs[0].Engine != "rp-cache" || regs[0].Batch != 100 {
		t.Fatalf("regs[0] = %+v, want rp-cache batch 100", regs[0])
	}
	if regs[1].Engine != "rp-sharded" || regs[1].Batch != 100 || regs[1].Delta < 0.32 || regs[1].Delta > 0.34 {
		t.Fatalf("regs[1] = %+v, want rp-sharded batch 100 at ~33%%", regs[1])
	}

	// A batch series missing on one side is skipped, not flagged.
	partial := fig(point{Engine: "rp-sharded", Threads: 8, Batch: 1, OpsPerSec: 1000})
	if regs := compare(oldFig, partial, 8, 0.15, 0); len(regs) != 0 {
		t.Fatalf("missing series flagged: %+v", regs)
	}
}

// TestCompareP99 pins the latency gate: a p99 rise over the threshold
// flags even when throughput held; series missing p99 on either side
// (older trajectory files) gate on throughput alone; maxRise 0
// disables the gate entirely.
func TestCompareP99(t *testing.T) {
	oldFig := fig(
		point{Engine: "RP", Threads: 8, Batch: 1, OpsPerSec: 1000, P99NS: 1000},
		point{Engine: "mutex", Threads: 8, Batch: 1, OpsPerSec: 500, P99NS: 2000},
		point{Engine: "legacy", Threads: 8, Batch: 1, OpsPerSec: 400}, // no p99 recorded
	)
	newFig := fig(
		point{Engine: "RP", Threads: 8, Batch: 1, OpsPerSec: 1000, P99NS: 1500},   // +50% p99: flagged
		point{Engine: "mutex", Threads: 8, Batch: 1, OpsPerSec: 500, P99NS: 2200}, // +10%: fine
		point{Engine: "legacy", Threads: 8, Batch: 1, OpsPerSec: 390},             // no p99: skipped
	)

	regs := compare(oldFig, newFig, 8, 0.15, 0.30)
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly the RP p99 rise", regs)
	}
	r := regs[0]
	if r.Engine != "RP" || r.Metric != "p99_ns" || r.Delta < 0.49 || r.Delta > 0.51 {
		t.Fatalf("regression = %+v, want RP p99_ns at ~50%%", r)
	}

	// maxRise 0 turns the latency gate off.
	if regs := compare(oldFig, newFig, 8, 0.15, 0); len(regs) != 0 {
		t.Fatalf("latency gate fired with maxRise 0: %+v", regs)
	}

	// One series can trip both gates; both annotations surface, with
	// deterministic metric ordering inside the series.
	both := fig(point{Engine: "RP", Threads: 8, Batch: 1, OpsPerSec: 100, P99NS: 9000})
	regs = compare(oldFig, both, 8, 0.15, 0.30)
	var metrics []string
	for _, r := range regs {
		if r.Engine == "RP" {
			metrics = append(metrics, r.Metric)
		}
	}
	if len(metrics) != 2 || metrics[0] != "ops/s" || metrics[1] != "p99_ns" {
		t.Fatalf("dual regression metrics = %v, want [ops/s p99_ns]", metrics)
	}
}
