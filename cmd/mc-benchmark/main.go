// Command mc-benchmark load-tests a memcached-protocol server, in the
// style of the tool the paper uses, and can regenerate the paper's
// memcached figure in one shot.
//
// Point mode (needs a running server, e.g. cmd/memcached):
//
//	mc-benchmark -addr 127.0.0.1:11211 -op get -processes 8
//
// Figure mode (spins up in-process servers for both engines and
// sweeps 1..N processes across RP GET / default GET / default SET /
// RP SET):
//
//	mc-benchmark -series -max-processes 12
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"rphash/internal/bench"
	"rphash/internal/mcbench"
)

func main() {
	var (
		series   = flag.Bool("series", false, "regenerate the paper's memcached figure (in-process servers)")
		maxProcs = flag.Int("max-processes", 12, "series mode: sweep 1..N processes")
		addr     = flag.String("addr", "127.0.0.1:11211", "point mode: server address")
		opStr    = flag.String("op", "get", "point mode: get | set")
		procs    = flag.Int("processes", 4, "point mode: client process groups")
		conns    = flag.Int("conns", 2, "connections per process")
		keys     = flag.Uint64("keys", 10000, "keyspace size")
		valSize  = flag.Int("value-size", 100, "value payload bytes")
		duration = flag.Duration("duration", 400*time.Millisecond, "measured interval")
		warm     = flag.Duration("warm", 50*time.Millisecond, "warmup interval")
		pipeline = flag.Int("pipeline", 4, "requests in flight per connection")
		multiget = flag.Int("multiget", 16, "keys per get command (GET runs)")
		repeats  = flag.Int("repeats", 3, "series mode: runs per point (median)")
		csv      = flag.Bool("csv", false, "series mode: also emit CSV")
		preload  = flag.Bool("preload", true, "point mode: preload keyspace first")
	)
	flag.Parse()

	if *series {
		cfg := mcbench.DefaultFigureConfig()
		cfg.Processes = cfg.Processes[:0]
		for i := 1; i <= *maxProcs; i++ {
			cfg.Processes = append(cfg.Processes, i)
		}
		cfg.ConnsPerProcess = *conns
		cfg.Keys = *keys
		cfg.ValueSize = *valSize
		cfg.Duration = *duration
		cfg.Warm = *warm
		cfg.Pipeline = *pipeline
		cfg.MultiGet = *multiget
		cfg.Repeats = *repeats

		fmt.Printf("mc-benchmark: GOMAXPROCS=%d keys=%d value=%dB conns/proc=%d duration=%v\n\n",
			runtime.GOMAXPROCS(0), *keys, *valSize, *conns, *duration)
		fig, err := mcbench.Fig5(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mc-benchmark:", err)
			os.Exit(1)
		}
		if err := bench.WriteFigure(os.Stdout, fig, *csv); err != nil {
			fmt.Fprintln(os.Stderr, "mc-benchmark:", err)
			os.Exit(1)
		}
		return
	}

	var op mcbench.Op
	switch *opStr {
	case "get":
		op = mcbench.GET
	case "set":
		op = mcbench.SET
	default:
		fmt.Fprintf(os.Stderr, "mc-benchmark: unknown op %q\n", *opStr)
		os.Exit(2)
	}
	if *preload && op == mcbench.GET {
		if err := mcbench.Preload(*addr, *keys, *valSize); err != nil {
			fmt.Fprintln(os.Stderr, "mc-benchmark: preload:", err)
			os.Exit(1)
		}
	}
	ops, err := mcbench.Run(mcbench.Config{
		Addr:            *addr,
		Processes:       *procs,
		ConnsPerProcess: *conns,
		Op:              op,
		Keys:            *keys,
		ValueSize:       *valSize,
		Duration:        *duration,
		Warm:            *warm,
		Pipeline:        *pipeline,
		MultiGet:        *multiget,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mc-benchmark:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d processes x %d conns: %.0f requests/second\n",
		op, *procs, *conns, ops)
}
