// Command memcached runs the mini-memcached server with a selectable
// storage engine:
//
//	memcached -addr :11211 -engine rp       # relativistic chains (lock-free GET)
//	memcached -addr :11211 -engine rp-flat  # relativistic flat cell groups
//	memcached -addr :11211 -engine lock     # stock-style global cache lock
//
// The text protocol subset implemented: get/gets, set/add/replace/
// append/prepend/cas, delete, incr/decr, touch, flush_all, stats,
// version, verbosity, quit — with noreply, expiry (relative and
// absolute), CAS, and LRU eviction under -max-bytes.
//
// With -debug-addr, a second HTTP listener exposes the observability
// plane: /metrics (Prometheus text), /debug/vars (expvar-style JSON),
// /debug/events (resize/retune lifecycle timeline), /debug/ops (the
// flight recorder's sampled per-operation path/latency summary, when
// -flight-sample is on), and /debug/pprof. The rp engine additionally
// records grace-period waits, stripe-lock waits, and per-command
// service latency into the same plane, and can run an anomaly
// watchdog (-watchdog-interval) that detects grace-period stalls,
// stripe convoys, stuck resizes, and eviction storms, dumping a
// first-trigger diagnostic bundle per class to -watchdog-bundle-dir.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"rphash/internal/core"
	"rphash/internal/memcache"
	"rphash/internal/obs"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:11211", "listen address")
		engine    = flag.String("engine", "rp", "storage engine: rp | rp-flat | lock")
		maxBytes  = flag.Int64("max-bytes", 64<<20, "memory budget in bytes (0 = unlimited)")
		sweep     = flag.Duration("sweep", time.Second, "expired-item sweep interval for engines that expose an external sweep pass (the rp engine sweeps itself incrementally; lock expires lazily)")
		quiet     = flag.Bool("quiet", false, "suppress connection error logs")
		debugAddr = flag.String("debug-addr", "", "HTTP listen address for /metrics, /debug/vars, /debug/events, /debug/ops and /debug/pprof (empty = observability off)")

		flightSample = flag.Int("flight-sample", 0, "flight-recorder sampling: record 1-in-N table writes to /debug/ops (0 = recorder off; requires -debug-addr)")

		wdInterval   = flag.Duration("watchdog-interval", 0, "anomaly watchdog tick cadence (0 = watchdog off; requires -debug-addr; rp engines only)")
		wdGraceStall = flag.Duration("watchdog-grace-stall", 0, "grace-period wait that counts as a stall (0 = watchdog default)")
		wdEvictStorm = flag.Uint64("watchdog-evict-storm", 0, "per-tick eviction count that counts as a storm (0 = watchdog default)")
		wdBundleDir  = flag.String("watchdog-bundle-dir", "", "directory for first-trigger diagnostic bundles (empty = no bundles)")
	)
	flag.Parse()

	// One observer hub spans every layer: the store threads it down
	// through cache/shard/core/rcu, and the server times command
	// dispatch into it. Only allocated when the debug listener is on,
	// so the default run keeps the instrumentation compiled to nil
	// checks.
	var o *obs.Observer
	if *debugAddr != "" {
		var oopts []obs.ObserverOption
		if *flightSample > 0 {
			oopts = append(oopts, obs.WithFlightRecorder(*flightSample, 0))
		}
		o = obs.NewObserver(oopts...)
	}

	var store memcache.Store
	switch *engine {
	case "rp", "rp-flat":
		var sopts []memcache.StoreOption
		if o != nil {
			sopts = append(sopts, memcache.WithStoreObserver(o))
		}
		if *engine == "rp-flat" {
			sopts = append(sopts, memcache.WithStoreEngine(core.EngineFlat))
		}
		store = memcache.NewRPStore(*maxBytes, sopts...)
	case "lock":
		store = memcache.NewLockStore(*maxBytes)
	default:
		fmt.Fprintf(os.Stderr, "memcached: unknown engine %q (want rp, rp-flat, or lock)\n", *engine)
		os.Exit(2)
	}

	srv := memcache.NewServer(store, *sweep)
	if !*quiet {
		srv.Logf = log.Printf
	}
	if o != nil {
		srv.Observer = o
		reg := obs.NewRegistry()
		if rp, ok := store.(*memcache.RPStore); ok {
			rp.RegisterMetrics(reg)
			if *wdInterval > 0 {
				rp.StartWatchdog(reg, obs.WatchdogConfig{
					Interval:      *wdInterval,
					GraceStall:    *wdGraceStall,
					EvictionStorm: *wdEvictStorm,
					BundleDir:     *wdBundleDir,
				})
				log.Printf("memcached: watchdog on (interval=%s bundles=%q)", *wdInterval, *wdBundleDir)
			}
		} else {
			o.Register(reg)
		}
		mux := http.NewServeMux()
		obs.Mount(mux, reg, o)
		go func() {
			log.Printf("memcached: debug listener on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				log.Printf("memcached: debug listener: %v", err)
			}
		}()
	}
	log.Printf("memcached: engine=%s addr=%s max-bytes=%d", *engine, *addr, *maxBytes)
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatalf("memcached: %v", err)
	}
}
