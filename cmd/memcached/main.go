// Command memcached runs the mini-memcached server with a selectable
// storage engine:
//
//	memcached -addr :11211 -engine rp    # relativistic hash table (lock-free GET)
//	memcached -addr :11211 -engine lock  # stock-style global cache lock
//
// The text protocol subset implemented: get/gets, set/add/replace/
// append/prepend/cas, delete, incr/decr, touch, flush_all, stats,
// version, verbosity, quit — with noreply, expiry (relative and
// absolute), CAS, and LRU eviction under -max-bytes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"rphash/internal/memcache"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:11211", "listen address")
		engine   = flag.String("engine", "rp", "storage engine: rp | lock")
		maxBytes = flag.Int64("max-bytes", 64<<20, "memory budget in bytes (0 = unlimited)")
		sweep    = flag.Duration("sweep", time.Second, "expired-item sweep interval for engines that expose an external sweep pass (the rp engine sweeps itself incrementally; lock expires lazily)")
		quiet    = flag.Bool("quiet", false, "suppress connection error logs")
	)
	flag.Parse()

	var store memcache.Store
	switch *engine {
	case "rp":
		store = memcache.NewRPStore(*maxBytes)
	case "lock":
		store = memcache.NewLockStore(*maxBytes)
	default:
		fmt.Fprintf(os.Stderr, "memcached: unknown engine %q (want rp or lock)\n", *engine)
		os.Exit(2)
	}

	srv := memcache.NewServer(store, *sweep)
	if !*quiet {
		srv.Logf = log.Printf
	}
	log.Printf("memcached: engine=%s addr=%s max-bytes=%d", *engine, *addr, *maxBytes)
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatalf("memcached: %v", err)
	}
}
