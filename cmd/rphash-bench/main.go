// Command rphash-bench regenerates the paper's microbenchmark figures
// (1: fixed-size baseline; 2: continuous resizing; 3: RP resize vs
// fixed; 4: DDDS resize vs fixed) plus the repository's extensions
// (5: multi-writer upserts — striped single table vs its single-mutex
// ablation vs sharded map vs lock baselines; 6: TTL cache workload,
// rp-cache vs the bare sharded map; 7: multi-get batch amortization,
// batch path vs per-key loop at batch sizes 1/10/100) as text tables,
// with optional CSV and machine-readable JSON.
//
// Usage:
//
//	rphash-bench [flags]
//
//	-fig N          figure to run (1..7), or 0 for all (default 0)
//	-duration D     measured interval per point (default 400ms)
//	-warm D         warmup per point (default 50ms)
//	-readers LIST   comma-separated reader counts (default 1,2,4,8,16)
//	-keys N         preloaded elements (default 8192)
//	-keyspace N     lookup draw space (default 2*keys: 50% hit ratio)
//	-small N        small/fixed bucket count (default 8192)
//	-large N        large bucket count (default 16384)
//	-csv            also emit CSV per figure
//	-json           also write BENCH_fig<N>.json per figure (engine,
//	                threads, batch, ops/sec per point) so successive
//	                PRs can diff benchmark trajectories
//	-engines LIST   extra fixed-size engines to append to figure 1
//	                (any of: rp-1lock,rp-adapt,rp-sharded,rp-cache,
//	                mutex,sharded,xu,syncmap)
//	-shards N       shard count for the rp-sharded engine (default
//	                0 = shard.DefaultShards: one per ~4 cores, cap 16)
//	-ablation       run the ablation suite A1–A6
//	-adapt          run only ablation A6: adaptive-vs-fixed stripes
//	                (uniform + zipf writers) and sequential-vs-parallel
//	                unzip migration; with -json also writes
//	                BENCH_ablation6.json
//	-caswrite       run only ablation A7: the lock-free write fast
//	                path (locked vs CAS insert, striped vs CAS value
//	                RMW, uniform + zipf); with -json also writes
//	                BENCH_ablation7.json
//	-flatengine     run only ablation A8: the flat bucket engine vs
//	                the chain engine (read-uniform, read-zipf, mixed
//	                at 1..-writers threads; bytes/element for both
//	                layouts via the A4 methodology); with -json also
//	                writes BENCH_ablation8.json
//	-writers N      writer count for the A6 stripe sweep, and the top
//	                of the A7 writer sweep (default 8)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"rphash/internal/bench"
	"rphash/internal/stats"
)

func main() {
	var (
		figN     = flag.Int("fig", 0, "figure to run (1..6); 0 = all")
		duration = flag.Duration("duration", 400*time.Millisecond, "measured interval per point")
		warm     = flag.Duration("warm", 50*time.Millisecond, "warmup per point")
		readers  = flag.String("readers", "1,2,4,8,16", "comma-separated reader counts")
		keys     = flag.Uint64("keys", 8192, "preloaded elements")
		keyspace = flag.Uint64("keyspace", 0, "lookup draw space (0 = 2*keys)")
		small    = flag.Uint64("small", 8192, "small/fixed bucket count")
		large    = flag.Uint64("large", 16384, "large bucket count")
		csv      = flag.Bool("csv", false, "also emit CSV")
		jsonOut  = flag.Bool("json", false, "also write BENCH_fig<N>.json per figure")
		repeats  = flag.Int("repeats", 3, "runs per point (median reported)")
		extra    = flag.String("engines", "", "extra engines for figure 1 (rp-sharded,rp-cache,mutex,sharded,xu,syncmap)")
		shards   = flag.Int("shards", 0, "shard count for the rp-sharded engine (0 = shard.DefaultShards: one per ~4 cores, cap 16)")
		ablation = flag.Bool("ablation", false, "run the ablation suite (A1-A6) instead of the paper figures")
		adaptA6  = flag.Bool("adapt", false, "run only ablation A6 (adaptive stripes + parallel unzip); with -json writes BENCH_ablation6.json")
		casA7    = flag.Bool("caswrite", false, "run only ablation A7 (lock-free write fast path); with -json writes BENCH_ablation7.json")
		flatA8   = flag.Bool("flatengine", false, "run only ablation A8 (flat vs chain bucket engine); with -json writes BENCH_ablation8.json")
		writers  = flag.Int("writers", 8, "writer count for the A6 adaptive-stripes sweep and the top of the A7 sweep")
	)
	flag.Parse()
	bench.DefaultShards = *shards

	rs, err := parseReaders(*readers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rphash-bench:", err)
		os.Exit(2)
	}
	cfg := bench.Config{
		Readers:      rs,
		Duration:     *duration,
		WarmDuration: *warm,
		Keys:         *keys,
		KeySpace:     *keyspace,
		SmallBuckets: *small,
		LargeBuckets: *large,
		Repeats:      *repeats,
	}

	fmt.Printf("rphash-bench: GOMAXPROCS=%d keys=%d small=%d large=%d duration=%v\n\n",
		runtime.GOMAXPROCS(0), *keys, *small, *large, *duration)

	if *adaptA6 {
		if err := runAblationA6(cfg, *writers, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "rphash-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *casA7 {
		if err := runAblationA7(cfg, *writers, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "rphash-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *flatA8 {
		if err := runAblationA8(cfg, *writers, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "rphash-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *ablation {
		runAblations(cfg, *csv)
		if err := runAblationA6(cfg, *writers, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "rphash-bench:", err)
			os.Exit(1)
		}
		if err := runAblationA7(cfg, *writers, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "rphash-bench:", err)
			os.Exit(1)
		}
		if err := runAblationA8(cfg, *writers, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "rphash-bench:", err)
			os.Exit(1)
		}
		return
	}

	figs := []int{1, 2, 3, 4, 5, 6, 7}
	if *figN != 0 {
		figs = []int{*figN}
	}
	for _, n := range figs {
		fig, err := bench.RunFigure(n, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rphash-bench:", err)
			os.Exit(2)
		}
		if n == 1 && *extra != "" {
			appendExtraEngines(&fig, *extra, cfg)
		}
		if err := bench.WriteFigure(os.Stdout, fig, *csv); err != nil {
			fmt.Fprintln(os.Stderr, "rphash-bench:", err)
			os.Exit(1)
		}
		if *jsonOut {
			if err := writeJSONFigure(n, fig); err != nil {
				fmt.Fprintln(os.Stderr, "rphash-bench:", err)
				os.Exit(1)
			}
		}
	}
}

// jsonPoint is one measured point in the machine-readable output:
// enough context (engine, threads, batch) that successive PRs can
// diff ops/sec without re-deriving what an x value meant. P99NS is
// the sampled 99th-percentile per-op latency in nanoseconds, present
// for the figures that measure it (5 and 7).
type jsonPoint struct {
	Engine    string  `json:"engine"`
	Threads   int     `json:"threads"`
	Batch     int     `json:"batch"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P99NS     float64 `json:"p99_ns,omitempty"`
}

type jsonFigure struct {
	Figure int         `json:"figure"`
	Title  string      `json:"title"`
	Points []jsonPoint `json:"points"`
}

// writeJSONFigure writes BENCH_fig<N>.json in the working directory.
// Figure 7 sweeps batch size at a fixed thread count; every other
// figure sweeps threads (readers or writers) at batch size 1. Series
// Y values are millions of ops/sec, scaled back to ops/sec here.
func writeJSONFigure(n int, fig stats.Figure) error {
	out := jsonFigure{Figure: n, Title: fig.Title}
	for _, s := range fig.Series {
		for _, p := range s.Points {
			jp := jsonPoint{Engine: s.Name, Threads: int(p.X), Batch: 1, OpsPerSec: p.Y * 1e6, P99NS: p.P99NS}
			if n == bench.Fig7MultiGet {
				jp.Threads = bench.MultiGetReaders
				jp.Batch = int(p.X)
			}
			out.Points = append(out.Points, jp)
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	name := fmt.Sprintf("BENCH_fig%d.json", n)
	if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", name)
	return nil
}

func runAblations(cfg bench.Config, csv bool) {
	fmt.Println("== Ablation A1: read-side flavor ==")
	if err := bench.WriteFigure(os.Stdout, bench.AblationReadFlavor(cfg), csv); err != nil {
		fmt.Fprintln(os.Stderr, "rphash-bench:", err)
		os.Exit(1)
	}

	fmt.Println("== Ablation A2: unzip grace-period batching ==")
	fmt.Printf("%-18s %10s %10s %12s %14s %8s %10s\n",
		"mode", "keys", "buckets", "elapsed", "grace-periods", "passes", "cuts")
	for _, r := range bench.AblationUnzipBatching(16384, 4096) {
		fmt.Printf("%-18s %10d %5d->%-5d %12v %14d %8d %10d\n",
			r.Mode, r.Keys, r.FromBuckets, r.ToBuckets,
			r.Elapsed.Round(time.Microsecond), r.GracePeriods, r.UnzipPasses, r.UnzipCuts)
	}
	fmt.Println()

	fmt.Println("== Ablation A3: lookup throughput vs load factor ==")
	if err := bench.WriteFigure(os.Stdout, bench.AblationLoadFactor(cfg, 2), csv); err != nil {
		fmt.Fprintln(os.Stderr, "rphash-bench:", err)
		os.Exit(1)
	}

	fmt.Println("== Ablation A4: bytes per element (live heap) ==")
	fmt.Printf("%-24s %10s %14s\n", "table", "keys", "bytes/elem")
	for _, r := range bench.AblationNodeMemory(1 << 19) {
		fmt.Printf("%-24s %10d %14.1f\n", r.Table, r.Keys, r.BytesPerElem)
	}
	fmt.Println()

	fmt.Println("== Ablation A5: writer locking (striped vs single mutex) ==")
	if err := bench.WriteFigure(os.Stdout, bench.AblationStripedLocking(cfg), csv); err != nil {
		fmt.Fprintln(os.Stderr, "rphash-bench:", err)
		os.Exit(1)
	}
}

// ablation6JSON is the machine-readable A6 trajectory point:
// adaptive-vs-fixed stripe throughput on both workloads, and the
// parallel-unzip wall-time sweep.
type ablation6JSON struct {
	Ablation        int                             `json:"ablation"`
	AdaptiveStripes []bench.AdaptiveStripesResult   `json:"adaptive_stripes"`
	ParallelUnzip   []ablation6ParallelUnzipJSON    `json:"parallel_unzip"`
	Summary         map[string]ablation6SummaryJSON `json:"summary"`
}

type ablation6ParallelUnzipJSON struct {
	Workers        int    `json:"workers"`
	Keys           uint64 `json:"keys"`
	FromBuckets    uint64 `json:"from_buckets"`
	ToBuckets      uint64 `json:"to_buckets"`
	ElapsedNanos   int64  `json:"elapsed_ns"`
	UnzipPasses    uint64 `json:"unzip_passes"`
	UnzipCuts      uint64 `json:"unzip_cuts"`
	ParallelPasses uint64 `json:"parallel_passes"`
}

type ablation6SummaryJSON struct {
	BestFixedOpsPerSec float64 `json:"best_fixed_ops_per_sec"`
	AdaptiveOpsPerSec  float64 `json:"adaptive_ops_per_sec"`
	AdaptiveRatio      float64 `json:"adaptive_ratio"`
}

// runAblationA6 runs the adaptive-maintenance ablation: A6a
// (fixed-vs-adaptive stripes, uniform and zipf writers) and A6b
// (sequential vs parallel unzip migration), printing tables and
// optionally writing BENCH_ablation6.json.
func runAblationA6(cfg bench.Config, writers int, jsonOut bool) error {
	fmt.Println("== Ablation A6a: adaptive vs fixed stripes ==")
	rows := bench.AblationAdaptiveStripes(cfg, writers, nil)
	fmt.Printf("%-9s %-10s %8s %16s %12s\n", "workload", "stripes", "writers", "upserts/s", "end-stripes")
	for _, r := range rows {
		fmt.Printf("%-9s %-10s %8d %16.0f %12d\n",
			r.Workload, r.Setting, r.Writers, r.UpsertsPerS, r.EndStripes)
	}
	summary := make(map[string]ablation6SummaryJSON)
	for _, wl := range []string{"uniform", "zipf"} {
		bestFixed, adaptive := bench.BestFixed(rows, wl)
		ratio := 0.0
		if bestFixed > 0 {
			ratio = adaptive / bestFixed
		}
		summary[wl] = ablation6SummaryJSON{
			BestFixedOpsPerSec: bestFixed,
			AdaptiveOpsPerSec:  adaptive,
			AdaptiveRatio:      ratio,
		}
		fmt.Printf("%s: adaptive/best-fixed = %.3f\n", wl, ratio)
	}
	fmt.Println()

	fmt.Println("== Ablation A6b: parallel unzip migration ==")
	unzip := bench.AblationParallelUnzip(cfg.Keys*8, cfg.SmallBuckets/2, []int{1, 2, 4})
	fmt.Printf("%8s %10s %14s %12s %8s %10s %10s\n",
		"workers", "keys", "buckets", "elapsed", "passes", "cuts", "par-passes")
	var uz []ablation6ParallelUnzipJSON
	for _, r := range unzip {
		fmt.Printf("%8d %10d %6d->%-6d %12v %8d %10d %10d\n",
			r.Workers, r.Keys, r.FromBuckets, r.ToBuckets,
			r.Elapsed.Round(time.Microsecond), r.UnzipPasses, r.UnzipCuts, r.ParallelPasses)
		uz = append(uz, ablation6ParallelUnzipJSON{
			Workers: r.Workers, Keys: r.Keys,
			FromBuckets: r.FromBuckets, ToBuckets: r.ToBuckets,
			ElapsedNanos: r.Elapsed.Nanoseconds(),
			UnzipPasses:  r.UnzipPasses, UnzipCuts: r.UnzipCuts,
			ParallelPasses: r.ParallelPasses,
		})
	}
	fmt.Println()

	if !jsonOut {
		return nil
	}
	out := ablation6JSON{Ablation: 6, AdaptiveStripes: rows, ParallelUnzip: uz, Summary: summary}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_ablation6.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote BENCH_ablation6.json\n\n")
	return nil
}

// a7Writers expands the -writers flag into the A7 sweep: powers of
// two from 1 up to and including `top` (so -writers 8 gives 1,2,4,8
// and the CI smoke's -writers 4 gives 1,2,4).
func a7Writers(top int) []int {
	if top < 1 {
		top = 8
	}
	var out []int
	for w := 1; w <= top; w *= 2 {
		out = append(out, w)
	}
	return out
}

// runAblationA7 runs the lock-free write fast-path ablation (locked
// vs CAS insert, striped vs CAS value RMW), printing a table and
// optionally writing BENCH_ablation7.json in the same points format
// as the figure trajectories, so benchgate can gate it: the engine
// field encodes arm and workload ("cas-insert/zipf"), threads is the
// writer count.
func runAblationA7(cfg bench.Config, writers int, jsonOut bool) error {
	fmt.Println("== Ablation A7: lock-free write fast path ==")
	rows := bench.AblationCASWrite(cfg, a7Writers(writers))
	fmt.Printf("%-9s %-14s %8s %16s\n", "workload", "arm", "writers", "ops/s")
	for _, r := range rows {
		fmt.Printf("%-9s %-14s %8d %16.0f\n", r.Workload, r.Arm, r.Writers, r.OpsPerS)
	}
	fmt.Println()

	if !jsonOut {
		return nil
	}
	out := jsonFigure{
		Figure: 7,
		Title:  "Ablation A7: lock-free write fast path (locked vs CAS insert, striped vs CAS value)",
	}
	for _, r := range rows {
		out.Points = append(out.Points, jsonPoint{
			Engine:    r.Arm + "/" + r.Workload,
			Threads:   r.Writers,
			Batch:     1,
			OpsPerSec: r.OpsPerS,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_ablation7.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote BENCH_ablation7.json\n\n")
	return nil
}

// ablation8JSON is BENCH_ablation8.json: the throughput rows in the
// same points format as the figure trajectories (engine encodes
// "engine/workload", threads is the goroutine count) so benchgate
// auto-pairs and gates them like any figure series, plus the memory
// rows, which benchgate ignores.
type ablation8JSON struct {
	Ablation int                      `json:"ablation"`
	Title    string                   `json:"title"`
	Points   []jsonPoint              `json:"points"`
	Memory   []bench.FlatMemoryResult `json:"memory"`
}

// runAblationA8 runs the flat-vs-chain engine ablation (same threads
// sweep as A7: powers of two up to -writers), printing tables and
// optionally writing BENCH_ablation8.json.
func runAblationA8(cfg bench.Config, threads int, jsonOut bool) error {
	fmt.Println("== Ablation A8: flat vs chain bucket engine ==")
	res := bench.AblationFlatEngine(cfg, a7Writers(threads))
	fmt.Printf("%-14s %-8s %8s %16s\n", "workload", "engine", "threads", "ops/s")
	for _, r := range res.Throughput {
		fmt.Printf("%-14s %-8s %8d %16.0f\n", r.Workload, r.Engine, r.Threads, r.OpsPerS)
	}
	fmt.Println()
	fmt.Printf("%-14s %10s %14s\n", "config", "keys", "bytes/elem")
	for _, m := range res.Memory {
		fmt.Printf("%-14s %10d %14.1f\n", m.Config, m.Keys, m.BytesPerElem)
	}
	fmt.Println()

	if !jsonOut {
		return nil
	}
	out := ablation8JSON{
		Ablation: 8,
		Title:    "Ablation A8: flat vs chain bucket engine (throughput + bytes/element)",
		Memory:   res.Memory,
	}
	for _, r := range res.Throughput {
		out.Points = append(out.Points, jsonPoint{
			Engine:    r.Engine + "/" + r.Workload,
			Threads:   r.Threads,
			Batch:     1,
			OpsPerSec: r.OpsPerS,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_ablation8.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote BENCH_ablation8.json\n\n")
	return nil
}

func parseReaders(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad reader count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no reader counts given")
	}
	return out, nil
}

func appendExtraEngines(fig *stats.Figure, list string, cfg bench.Config) {
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		mk, ok := bench.Builders[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "rphash-bench: unknown engine %q (skipped)\n", name)
			continue
		}
		s := stats.Series{Name: name}
		for _, r := range cfg.Readers {
			e := mk(cfg.SmallBuckets)
			bench.Preload(e, cfg)
			ops := bench.MeasureLookups(e, r, false, cfg)
			e.Close()
			s.Add(float64(r), ops/1e6)
		}
		fig.Series = append(fig.Series, s)
	}
}
