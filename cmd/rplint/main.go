// Command rplint runs the project's custom static analyzers (see
// internal/analysis/rplint). It speaks two dialects:
//
// Standalone, over go list patterns:
//
//	rplint ./...
//
// As a go vet tool, where cmd/go drives it once per package and
// shuttles analyzer facts between processes as .vetx files:
//
//	go vet -vettool=$(pwd)/bin/rplint ./...
//
// In vet mode cmd/go probes the tool with -V=full and -flags before
// handing it a vet.cfg describing one type-checked package (file list,
// import map, export data, dependency fact files). Packages outside
// this module are acknowledged with an empty fact set rather than
// analyzed — their interiors are none of rplint's business and their
// export data is all the analyzers need.
//
// Exit status: 0 clean, 1 operational error, 2 diagnostics reported.
package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rphash/internal/analysis/framework"
	"rphash/internal/analysis/rplint"
)

func main() {
	args := os.Args[1:]
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "-V":
			// The version string feeds cmd/go's cache key; any
			// non-"devel" token after "version" is accepted.
			fmt.Println("rplint version v0.1.0")
			return
		case a == "-flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) >= 1 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		os.Exit(vetMode(args[len(args)-1]))
	}
	os.Exit(standalone(args))
}

// ---- standalone mode ----

func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	load, err := framework.LoadModulePackages(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rplint:", err)
		return 1
	}
	analyzers := rplint.Analyzers()
	store := framework.NewFactStore()
	exit := 0
	for _, p := range load.Pkgs {
		diags, err := framework.RunAnalyzers(framework.PackageInput{
			Fset:       load.Fset,
			Files:      p.Files,
			Pkg:        p.Pkg,
			Info:       p.Info,
			ModulePath: load.ModulePath,
		}, analyzers, store)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rplint:", err)
			return 1
		}
		if p.DepOnly {
			continue
		}
		if printDiags(load.Fset, diags) {
			exit = 2
		}
	}
	return exit
}

// printDiags prints non-test-file diagnostics, reporting whether any
// were printed. Tests may block inside reader sections on purpose
// (torture tests park readers to stall grace periods), so _test.go
// findings are not errors.
func printDiags(fset *token.FileSet, diags []framework.Diagnostic) bool {
	any := false
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		fmt.Fprintf(os.Stderr, "%s: rplint/%s: %s\n", pos, d.Analyzer, d.Message)
		any = true
	}
	return any
}

// ---- go vet tool mode ----

// vetConfig mirrors the fields of cmd/go's vet.cfg that rplint reads.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
	GoVersion                 string
}

func vetMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rplint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "rplint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	analyzers := rplint.Analyzers()
	framework.RegisterFactTypes(analyzers)

	// Test variants are named "path [path.test]" but compile as the
	// base path; analyzers must see the canonical identity.
	importPath := cfg.ImportPath
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}

	modulePath := cfg.ModulePath
	if modulePath == "" {
		modulePath = findModulePath(cfg.Dir)
	}
	if !framework.ModuleLocalPath(modulePath, importPath) {
		// Out-of-module dependency: contribute an empty fact set.
		return writeVetx(cfg.VetxOutput, framework.NewFactStore())
	}

	fset := token.NewFileSet()
	files := make([]string, len(cfg.GoFiles))
	for i, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		files[i] = f
	}
	imp := framework.LookupImporter(fset, cfg.ImportMap, func(path string) (io.ReadCloser, error) {
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	pkg, info, asts, err := framework.CheckFromSource(fset, importPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg.VetxOutput, framework.NewFactStore())
		}
		fmt.Fprintln(os.Stderr, "rplint:", err)
		return 1
	}

	store := framework.NewFactStore()
	vetxPaths := make([]string, 0, len(cfg.PackageVetx))
	for _, p := range cfg.PackageVetx {
		vetxPaths = append(vetxPaths, p)
	}
	sort.Strings(vetxPaths)
	for _, p := range vetxPaths {
		b, err := os.ReadFile(p)
		if err != nil {
			continue // a dep that wrote no facts
		}
		if err := store.DecodeInto(b); err != nil {
			fmt.Fprintf(os.Stderr, "rplint: decoding facts from %s: %v\n", p, err)
			return 1
		}
	}

	diags, err := framework.RunAnalyzers(framework.PackageInput{
		Fset:       fset,
		Files:      asts,
		Pkg:        pkg,
		Info:       info,
		ModulePath: modulePath,
	}, analyzers, store)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rplint:", err)
		return 1
	}
	if code := writeVetx(cfg.VetxOutput, store); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}
	if printDiags(fset, diags) {
		return 2
	}
	return 0
}

// writeVetx serializes the fact store to the path cmd/go expects.
func writeVetx(path string, store *framework.FactStore) int {
	if path == "" {
		return 0
	}
	data, err := store.Encode()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rplint:", err)
		return 1
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		fmt.Fprintln(os.Stderr, "rplint:", err)
		return 1
	}
	return 0
}

// findModulePath walks up from dir to the nearest go.mod and returns
// its module path ("" if none).
func findModulePath(dir string) string {
	for d := dir; ; {
		b, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(b), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return strings.Trim(strings.TrimSpace(rest), `"`)
				}
			}
			return ""
		}
		parent := filepath.Dir(d)
		if parent == d {
			return ""
		}
		d = parent
	}
}
