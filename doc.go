// Package rphash is a resizable, scalable, concurrent hash table
// built with relativistic programming — a from-scratch Go
// reproduction of Triplett, McKenney and Walpole, "Resizable,
// Scalable, Concurrent Hash Tables via Relativistic Programming"
// (USENIX ATC 2011).
//
// Lookups take no locks, perform no atomic read-modify-write
// operations, and never retry; they scale linearly with cores. The
// table can double or halve its bucket count while lookups proceed at
// full speed: shrinking "zips" sibling chains together, expansion
// "unzips" interleaved chains with one pointer cut per chain per
// grace period, and at every intermediate state a reader walking a
// bucket observes every element that belongs to it.
//
// # Quick start
//
//	tbl := rphash.NewString[string]()
//	defer tbl.Close()
//
//	tbl.Set("k", "v")
//	v, ok := tbl.Get("k")       // convenient lookup
//
//	h := tbl.NewReadHandle()    // per-goroutine hot-path lookups
//	defer h.Close()
//	v, ok = h.Get("k")
//
//	tbl.Resize(1 << 16)         // lookups continue, unperturbed
//
// Writers (Set, Insert, Replace, Delete, Move, Resize) serialize on
// an internal mutex; install a Policy (or use DefaultPolicy) to have
// the table resize itself by load factor.
//
// The internal packages contain the full reproduction apparatus: the
// epoch-based RCU runtime (internal/rcu), the baseline tables the
// paper compares against (internal/ddds, internal/lockht,
// internal/xu), a mini-memcached with a relativistic GET fast path
// (internal/memcache), and the benchmark harness regenerating every
// figure in the paper's evaluation (internal/bench, cmd/rphash-bench,
// cmd/mc-benchmark). See DESIGN.md and EXPERIMENTS.md.
package rphash
