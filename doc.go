// Package rphash is a resizable, scalable, concurrent hash table
// built with relativistic programming — a from-scratch Go
// reproduction of Triplett, McKenney and Walpole, "Resizable,
// Scalable, Concurrent Hash Tables via Relativistic Programming"
// (USENIX ATC 2011).
//
// Lookups take no locks, perform no atomic read-modify-write
// operations, and never retry; they scale linearly with cores. The
// table can double or halve its bucket count while lookups proceed at
// full speed: shrinking "zips" sibling chains together, expansion
// "unzips" interleaved chains with one pointer cut per chain per
// grace period, and at every intermediate state a reader walking a
// bucket observes every element that belongs to it.
//
// # Quick start
//
//	tbl := rphash.NewString[string]()
//	defer tbl.Close()
//
//	tbl.Set("k", "v")
//	v, ok := tbl.Get("k")       // convenient lookup
//
//	h := tbl.NewReadHandle()    // per-goroutine hot-path lookups
//	defer h.Close()
//	v, ok = h.Get("k")
//
//	tbl.Resize(1 << 16)         // lookups continue, unperturbed
//
// Writers (Set, Insert, Replace, Delete, Move) lock per bucket, not
// per table: mutations serialize on a striped array of writer locks
// indexed by the key hash's low bits (default a few stripes per
// core; WithStripes overrides, and WithStripes(1) reproduces the
// paper's single writer mutex). Writers to different chains proceed
// in parallel. The stripe count never exceeds the bucket count, so
// one stripe always covers every chain a key's mutation could touch
// — including mid-resize chains spanning a parent bucket and both
// its children. Lock ordering is fixed (Move takes two stripes
// ascending; batch writes visit stripes in ascending sorted order,
// one at a time; resize takes all of them ascending), so writers,
// batches, and resizes can never deadlock.
//
// Resize coordinates with writers through the same stripes: the
// array-construction and publish steps briefly hold every stripe,
// each unzip migration batch holds exactly one, and the grace-period
// waits — where resizes spend nearly all their time — hold none, so
// writers keep flowing through a resize. Install a Policy (or use
// DefaultPolicy) to have the table resize itself by load factor;
// writes that find the table more than twice past the grow watermark
// help the in-flight expansion synchronously rather than outrun it,
// keeping the load factor bounded under saturating write pressure.
//
// # Table versus Map versus Cache
//
// Table is the paper's data structure with a finer writer side:
// wait-free readers, striped per-bucket writers, Move and Resize
// atomic over the whole structure. It scales reads and writes with
// cores by itself and is the default choice.
//
// Map shards keys across a power-of-two array of Tables — routed by
// the HIGH bits of the same 64-bit hash, so per-shard bucket masks
// (which use the low bits) stay well mixed. With striped tables the
// shards' main job is resize isolation: a resize's brief all-stripe
// phases stall only that shard's keys, and shards resize
// independently and in parallel. Reach for it on resize-heavy or
// extremely write-hot workloads:
//
//	m := rphash.NewMapString[int](rphash.WithShards(8))
//	defer m.Close()
//	m.Set("k", 1)
//	v, ok := m.Get("k")
//
//	h := m.NewReadHandle()      // one reader spans all shards
//	defer h.Close()
//	v, ok = h.Get("k")
//
// Every shard shares one Domain, so a ReadHandle registers a single
// reader for the whole map and the read-side cost is identical to a
// single Table's. Len, Stats, and Range aggregate across shards; a
// Policy applies to each shard independently, so hot shards expand on
// their own. The trade-offs: cross-shard Move is
// publish-before-unlink (never absent) but not atomic against writers
// racing on the same two keys, and Resize divides its target across
// shards rather than resizing one array.
//
// Cache layers caching semantics on top of Map: TTL expiry from a
// coarse clock (lazy on the read path, reclaimed by an incremental
// background sweeper), a cost budget enforced by per-shard sampled-LRU
// eviction, and a singleflight GetOrLoad so a miss storm on one hot
// key performs exactly one load. A hit stays lock-free and
// allocation-free. Reach for Cache when entries have lifetimes or
// memory must be bounded; reach for Map when you want a plain
// concurrent map and will manage lifecycle yourself; reach for Table
// everywhere else.
//
//	c := rphash.NewCacheString[[]byte](
//		rphash.WithCacheTTL(time.Minute),
//		rphash.WithCacheMaxCost(64<<20), // bytes, via SetWith costs
//	)
//	defer c.Close()                     // stops sweeper + clock
//
//	c.SetWith("k", payload, time.Hour, int64(len(payload))) // 0 TTL = never expire
//	v, err := c.GetOrLoad("hot", loadFromBackend) // one load per storm
//
// # Engines
//
// The bucket representation is pluggable: WithEngine (WithMapEngine,
// WithCacheEngine) selects between two layouts behind one seam, with
// identical semantics on every operation above. EngineChain (the
// default) is the paper's relativistic linked chains — lock-free
// reads, CAS-insert write fast path, in-place unzip resize that
// never copies a node. EngineFlat trades the pointer chase for
// cache-line contiguity: each bucket is eight inline key/value cells
// behind a packed word of eight 8-bit hash tags; a lookup loads the
// tag word once, SWAR-scans it, and touches only matching cells (one
// cache line for the common miss, two for the hit), spilling past
// eight cells into an overflow chain. Cells publish and retire
// through atomic tag-word stores ordered against a grace period, so
// reads stay wait-free. Because inline cells cannot be relinked, the
// flat engine resizes by relativistic per-bucket copying — publish
// the new group array, migrate each bucket under its stripe (shared
// value boxes, one grace period before and after the pass), readers
// routing per bucket by a migrated flag the way chain readers route
// by epoch — and consequently takes a stripe for every write: a
// lock-free value CAS could be lost to a concurrent bucket copy.
// Single-threaded reads run ~30-50% faster than chains and dense
// tables spend ~35% fewer bytes per element; sparse tables invert
// that, paying per group rather than per element (ablation A8,
// README "Engines" for measured numbers).
//
// # Batched operations
//
// Readers are cheap but not free: each lookup pays a reader-section
// entry/exit (two reader-local atomic stores) plus, on the
// convenience paths, a pooled-reader round-trip — and each write
// locks its key's stripe. Callers holding many keys at once
// (multi-key GET, warm-ups, bulk loads) should use the batch API,
// which hashes each key once, groups keys by shard and stripe, and
// amortizes synchronization over the group:
//
//	m.GetBatch(keys, vals, oks)  // ONE reader section per touched shard
//	m.SetBatch(keys, vals)       // sorted-stripe locking: each touched
//	                             // stripe locked once per shard group
//	m.DeleteBatch(keys)          // one grace period per shard group
//	c.GetMulti(keys, vals, oks)  // batched hit path (clock + counters
//	                             // also amortized per batch)
//	c.GetOrLoadMulti(keys, load) // one loader call for the whole miss
//	                             // set; each key still singleflights
//
// A B-key batch over S shards enters at most min(B, S) reader
// sections (Map.BatchSections counts them). A batch is not a
// cross-shard snapshot: per-key semantics are exactly the single-key
// operations', and concurrent writers may land between shard groups.
// Duplicate keys in a write batch apply in order (last value wins).
//
// For unbounded traversals, RangeChunked (on Table, Map, and Cache)
// bounds how long any one reader section lives: it collects a chunk
// of elements per section and invokes the callback OUTSIDE it, so a
// huge or slow iteration never extends grace periods — Range, by
// contrast, holds one section for the entire walk, delaying all
// memory reclamation behind it. The trade-off: if the table resizes
// between chunks, the traversal may skip or repeat elements near its
// cursor.
//
// # Adaptive maintenance
//
// The paper's thesis — table shape is a runtime decision — extends
// past the bucket array to the two knobs the striped writer side
// added, via a per-table maintenance controller (internal/adapt):
//
//   - What is sampled: each writer stripe keeps two padded counters,
//     total acquisitions and contended acquisitions (a failed TryLock
//     before blocking). The controller samples their sums on an
//     interval (default 100ms) and computes the contention rate
//     between samples; it also reads the live unzip-migration backlog
//     of any in-flight expansion. Both signals cost the write path
//     nothing measurable (the counters live on the stripe's own cache
//     line, which the acquiring writer already owns).
//
//   - Stripe retuning: sustained contention at or above 5% for 2
//     consecutive samples doubles the physical writer-lock array
//     (up to 256 stripes); sustained contention at or below 0.5% for
//     10 samples halves it (down to 64 by default). The thresholds
//     sit an order of magnitude apart and the shrink streak is five
//     times the grow streak — hysteresis, so bursts are answered
//     quickly, capacity is returned reluctantly, and the controller
//     never thrashes at a boundary. The swap itself follows the
//     bucket-array discipline: the new lock array is published with
//     one atomic store while every old stripe is held, so chain
//     coverage is never split across arrays. Intervals with fewer
//     than 256 acquisitions are ignored (idle tables hold shape).
//
//   - Migration fan-out: while an expansion is unzipping, the
//     controller sizes the table's unzip worker pool from the
//     observed backlog (one extra worker per 64 backlogged parent
//     chains, capped at half the cores). Migration batches on
//     different stripes are independent, and all workers of a pass
//     share that pass's single grace period, so a big resize finishes
//     in a fraction of the sequential wall time with the identical
//     cut schedule and grace-period count.
//
// Map and Cache run one controller per shard table by default.
// Reproducible benchmarks pin the shape instead: WithMapAdapt(nil)
// (or WithCacheAdapt(nil), or plain Table, where maintenance is
// opt-in via WithAdapt/Maintain) turns the controller off, and
// WithStripes/WithMapTableStripes fixes the stripe count — this is
// exactly what the repository's own figure sweeps do. AdaptStats (on
// Table, Map, and Cache) reports samples, grows, shrinks, fan-out
// retunes, and the last sampled rate.
//
// # Observability
//
// Table.Stats, Map.DetailedStats (per-shard bucket
// totals, load factors, resize counts), and Cache.Stats (hits,
// misses, loads, evictions, expirations, cost, plus the underlying
// MapStats) are one-call snapshots safe to poll from monitoring
// loops. Stats carries the stripe telemetry (StripeAcquires,
// StripeContended, StripeRetunes, EffectiveStripes) and the unzip
// fan-out counters (UnzipParallelPasses, UnzipWorkers) alongside the
// resize internals.
//
// For latency distributions and lifecycle tracing, pass an Observer
// (NewObserver) via WithObserver, WithMapObserver, or
// WithCacheObserver: lock-free power-of-two histograms then record
// RCU grace-period waits, contended writer stripe-lock waits, and
// cache loader latency (each Record is one atomic add, zero
// allocations), and a fixed-size concurrent event ring captures every
// resize's full lifecycle — publish, per-pass unzip batches, grace
// waits, completion — plus stripe retunes, emitting runtime/trace
// regions when tracing is active. Snapshot folds it all into plain
// values; Registry + Observe export everything as Prometheus text and
// expvar-style JSON alongside net/http/pprof. A nil Observer (the
// default) costs one pointer compare per instrumented site, and the
// lock-free read path is never instrumented.
//
// WithFlightRecorder adds a sampled per-operation record stream on
// top: one in N table writes (default 1024) records its op class,
// path taken — lock-free CAS insert, hint replace, striped fallback,
// flat migration assist, overflow spill — outcome, shard, stripe,
// and latency into striped seqlock rings, never blocking and never
// allocating; torn slots are skipped on read. Observe serves the
// aggregation at /debug/ops; AggregateOps returns it as data.
// Measured on the hot upsert path, observer-off runs 69.2
// ns/op, observer-on 69.4 ns/op (within noise), and recorder-on at
// default sampling 74.0 ns/op — the unsampled majority pays one
// atomic ticket.
//
// Watchdog is the anomaly self-check: started over a Cache with
// StartWatchdog (or obs.NewWatchdog with a custom sampler), it
// inspects grace-period progress, stripe contention, resize backlog,
// and evictions each tick, detecting grace-period stalls, stripe
// convoys, stuck resizes, and eviction storms. Detections land in the
// event ring and per-class trip counters; the first trip per class
// writes a diagnostic bundle (goroutines, events, histograms,
// metrics, flight summary) to the configured directory. Its clock is
// injected, so tests trigger detection deterministically with a
// manual clock and a synchronous Tick.
//
// The same plane exposes engine introspection: chain unzip backlog,
// per-unit migration progress and rate for the in-flight resize, and
// — on the flat engine — a bounded strided-sample occupancy histogram
// over the 8-cell groups with spill counters and the spilled/sampled
// ratio, surfaced through Stats, /metrics, and the memcached ASCII
// stats command.
//
// # Static analysis
//
// Relativistic code has rules the compiler cannot check, so the
// repository checks them itself: cmd/rplint (runnable standalone or
// as go vet -vettool) enforces three disciplines over the whole
// module. Read-side critical sections must never block — no channel
// operations, mutex acquisitions, sleeps, or blocking I/O inside
// rcu.Read, including transitively through helpers (rplint/
// readersection). A field accessed with sync/atomic anywhere must be
// accessed with sync/atomic everywhere, across packages
// (rplint/atomicmix). And no code path may wait for — or queue —
// an RCU grace period while holding a writer stripe or mutex, or
// inside a reader section, since the grace period cannot end until
// those readers leave (rplint/gracewait). Violations fail CI;
// deliberate exceptions carry a //lint:allow rplint/<name> <reason>
// justification in the source.
//
// The internal packages contain the full reproduction apparatus: the
// epoch-based RCU runtime (internal/rcu), the baseline tables the
// paper compares against (internal/ddds, internal/lockht,
// internal/xu), a mini-memcached with a relativistic GET fast path
// (internal/memcache), and the benchmark harness regenerating every
// figure in the paper's evaluation (internal/bench, cmd/rphash-bench,
// cmd/mc-benchmark). See DESIGN.md and EXPERIMENTS.md.
package rphash
