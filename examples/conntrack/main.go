// conntrack: a firewall-style connection-tracking table — the
// kernel-flavored workload relativistic hash tables were designed
// for. The fast path (one lookup per "packet") must never block and
// must never miss an established flow, while the control path
// inserts, expires, and resizes.
//
// The example asserts the paper's consistency property end to end: a
// set of long-lived flows is installed up front, and every packet
// belonging to them must hit, no matter how violently the table is
// resizing at that moment.
package main

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rphash"
)

// FlowKey is an IPv4 5-tuple (protocol folded into the ports word).
type FlowKey struct {
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
}

// hashFlow mixes the tuple through the repository's byte hash.
func hashFlow(k FlowKey) uint64 {
	var b [12]byte
	binary.LittleEndian.PutUint32(b[0:], k.SrcIP)
	binary.LittleEndian.PutUint32(b[4:], k.DstIP)
	binary.LittleEndian.PutUint16(b[8:], k.SrcPort)
	binary.LittleEndian.PutUint16(b[10:], k.DstPort)
	return rphash.HashBytes(b[:], 0x5eed)
}

// FlowState is what conntrack remembers per flow.
type FlowState struct {
	Established bool
	Packets     uint64
	LastSeen    int64
}

func main() {
	tbl := rphash.New[FlowKey, FlowState](hashFlow,
		rphash.WithInitialBuckets(256),
	)
	defer tbl.Close()

	// Control path: install 4096 long-lived ("established") flows.
	longLived := make([]FlowKey, 4096)
	for i := range longLived {
		longLived[i] = FlowKey{
			SrcIP: 0x0a000000 + uint32(i), DstIP: 0xc0a80001,
			SrcPort: uint16(1024 + i%60000), DstPort: 443,
		}
		tbl.Set(longLived[i], FlowState{Established: true})
	}

	stop := make(chan struct{})
	var pkts, drops atomic.Int64
	var wg sync.WaitGroup

	// Data path: per-CPU packet workers. Each carries a ReadHandle —
	// the per-goroutine registered reader — and does one lock-free
	// lookup per packet.
	for cpu := 0; cpu < 3; cpu++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			h := tbl.NewReadHandle()
			defer h.Close()
			rng := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				rng = rng*6364136223846793005 + 1442695040888963407
				flow := longLived[rng%uint64(len(longLived))]
				if st, ok := h.Get(flow); !ok || !st.Established {
					drops.Add(1) // would be a dropped packet: must never happen
				}
				pkts.Add(1)
			}
		}(uint64(cpu + 1))
	}

	// Control path continues: short-lived flows come and go, forcing
	// inserts/deletes, and the operator resizes the table to track
	// load — all while packets flow.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := uint32(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := FlowKey{SrcIP: 0xac100000 + i%50000, DstIP: 0x08080808,
				SrcPort: uint16(i % 60000), DstPort: 53}
			tbl.Set(k, FlowState{Established: false})
			if i%3 == 0 {
				tbl.Delete(FlowKey{SrcIP: 0xac100000 + (i / 2 % 50000), DstIP: 0x08080808,
					SrcPort: uint16(i / 2 % 60000), DstPort: 53})
			}
			i++
		}
	}()

	fmt.Println("conntrack: 3 packet workers + flow churn + live resizes for 2s ...")
	deadline := time.Now().Add(2 * time.Second)
	resizes := 0
	for time.Now().Before(deadline) {
		tbl.Resize(1 << 14)
		tbl.Resize(1 << 8)
		resizes += 2
	}
	close(stop)
	wg.Wait()

	st := tbl.Stats()
	fmt.Printf("packets looked up:   %d\n", pkts.Load())
	fmt.Printf("established drops:   %d (must be 0)\n", drops.Load())
	fmt.Printf("table resizes:       %d (unzip passes=%d, cuts=%d)\n",
		resizes, st.UnzipPasses, st.UnzipCuts)
	fmt.Printf("final table:         %v\n", st)
	if drops.Load() != 0 {
		panic("conntrack: an established flow was missed during resize")
	}
}
