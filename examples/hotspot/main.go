// Hotspot: watch adaptive maintenance react to a workload shift. The
// table starts with a deliberately tiny writer-stripe array; a gentle
// uniform write phase leaves it alone, then a skewed 8-writer burst
// drives stripe-lock contention up and the adapt controller grows the
// physical lock array — at runtime, under full write load, with the
// same relativistic array-swap discipline a resize uses. A final calm
// phase shows the (much more reluctant) shrink side of the
// hysteresis. Prints a timeline of stripes / contention as it runs.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"rphash"
	"rphash/internal/workload"
)

func main() {
	// The demo wants visible contention, so give the scheduler real
	// parallelism even on small machines: blocked stripe locks need
	// someone else to be running.
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}

	// Fast-sampling controller so the demo converges in seconds
	// (production default samples every 100ms and shrinks far more
	// slowly). MinStripes 1 lets the calm phase visibly give all the
	// burst's capacity back.
	cfg := rphash.DefaultAdaptConfig()
	cfg.Interval = 20 * time.Millisecond
	cfg.GrowRate = 0.01 // the demo reacts to 1% contention
	cfg.GrowStreak = 1
	cfg.ShrinkStreak = 25
	cfg.MinStripes = 1
	cfg.MaxStripes = 256
	cfg.MinSamples = 128

	tbl := rphash.NewUint64[int](
		rphash.WithInitialBuckets(1<<10),
		rphash.WithStripes(1), // deliberately undersized: adapt must fix it
		rphash.WithAdapt(cfg),
	)
	defer tbl.Close()

	// One goroutine prints the timeline while the phases run.
	stopWatch := make(chan struct{})
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		tick := time.NewTicker(250 * time.Millisecond)
		defer tick.Stop()
		var lastAcq, lastCon uint64
		for {
			select {
			case <-stopWatch:
				return
			case <-tick.C:
			}
			st := tbl.Stats()
			dAcq, dCon := st.StripeAcquires-lastAcq, st.StripeContended-lastCon
			lastAcq, lastCon = st.StripeAcquires, st.StripeContended
			rate := 0.0
			if dAcq > 0 {
				rate = float64(dCon) / float64(dAcq)
			}
			fmt.Printf("  stripes=%-4d contention=%5.1f%%  retunes=%d\n",
				st.Stripes, rate*100, st.StripeRetunes)
		}
	}()

	runPhase := func(name string, writers int, gen func(id int) workload.KeyGen, d time.Duration) {
		fmt.Printf("%s (%d writers, %v):\n", name, writers, d)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				g := gen(id)
				for {
					select {
					case <-stop:
						return
					default:
					}
					k := g.Key()
					tbl.Set(k, int(k))
				}
			}(w)
		}
		time.Sleep(d)
		close(stop)
		wg.Wait()
	}

	const keySpace = 1 << 12
	uniform := func(id int) workload.KeyGen {
		return workload.NewUniform(keySpace, uint64(id)*0x9e3779b9+1)
	}
	zipf := func(id int) workload.KeyGen {
		return workload.NewZipf(keySpace, 1.2, int64(id)*7919+1)
	}

	runPhase("phase 1: gentle uniform writes", 1, uniform, 2*time.Second)
	runPhase("phase 2: skewed 8-writer burst", 8, zipf, 3*time.Second)
	runPhase("phase 3: calm again", 1, uniform, 3*time.Second)

	close(stopWatch)
	watch.Wait()

	st := tbl.Stats()
	ad, _ := tbl.AdaptStats()
	fmt.Printf("\nfinal: stripes=%d (started at 1), retunes=%d (grows=%d shrinks=%d), samples=%d\n",
		st.Stripes, st.StripeRetunes, ad.StripeGrows, ad.StripeShrinks, ad.Samples)
	fmt.Printf("stripe locks: %d acquisitions, %d blocked (%.2f%% lifetime contention)\n",
		st.StripeAcquires, st.StripeContended,
		100*float64(st.StripeContended)/float64(max(st.StripeAcquires, 1)))
	if ad.StripeGrows > 0 {
		fmt.Println("the burst made the controller widen the lock array at runtime — no restart, no reader disturbance")
	} else {
		fmt.Println("no growth: this machine never blocked on the stripes (try more cores)")
	}
}
