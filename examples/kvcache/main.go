// kvcache: the memcached-shaped workload from the paper's evaluation
// in library form, on rphash.Cache — the TTL + eviction +
// stampede-protected layer over the sharded relativistic map.
// Readers fetch at full speed with no locks while a writer pool
// churns sessions, TTLs lapse under a background sweeper, a byte-ish
// cost budget forces sampled-LRU eviction, and each shard resizes
// itself up and down with the population.
package main

import (
	"flag"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rphash"
)

func main() {
	// -engine selects the bucket layout underneath every shard table:
	// "chain" (relativistic chains, the default) or "flat" (inline
	// cell groups). The workload is identical either way — that is
	// the point of the engine seam.
	engine := flag.String("engine", rphash.EngineChain, "bucket engine: chain | flat")
	flag.Parse()
	cache := rphash.NewCacheString[string](
		rphash.WithCacheTTL(time.Minute),    // default session TTL
		rphash.WithCacheMaxCost(24_000),     // eviction pressure in phase 3
		rphash.WithCacheInitialBuckets(128), // start small: watch it grow
		rphash.WithCacheSweepInterval(25*time.Millisecond),
		rphash.WithCacheEngine(*engine),
	)
	defer cache.Close()

	stop := make(chan struct{})
	var hits, misses atomic.Int64

	// Reader pool: hammer the cache while everything else happens.
	// Each reader holds a registered read handle (NewGetter), so every
	// lookup is a single lock-free chain walk.
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			get, release := cache.NewGetter()
			defer release()
			k := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				k = (k*1103515245 + 12345) & 0x3fff
				if _, ok := get(fmt.Sprintf("sess-%d", k)); ok {
					hits.Add(1)
				} else {
					misses.Add(1)
				}
			}
		}(g)
	}

	fmt.Println("phase 1: fill 16k sessions (shards expand themselves)")
	for i := 0; i < 16_384; i++ {
		cache.Set(fmt.Sprintf("sess-%d", i), fmt.Sprintf("user-%d", i))
	}
	fmt.Printf("  %v\n", cache.Stats())

	fmt.Println("phase 2: expire most sessions (sweeper reclaims, shards shrink)")
	for i := 0; i < 16_384; i++ {
		if i%16 != 0 {
			cache.SetTTL(fmt.Sprintf("sess-%d", i), "short", 10*time.Millisecond)
		}
	}
	time.Sleep(300 * time.Millisecond)
	fmt.Printf("  %v\n", cache.Stats())

	fmt.Println("phase 3: refill past the cost budget (sampled-LRU eviction)")
	for i := 0; i < 32_768; i++ {
		cache.Set(fmt.Sprintf("sess-%d", i), fmt.Sprintf("user-%d-v2", i))
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	st := cache.Stats()
	fmt.Printf("  %v\n", st)
	fmt.Printf("readers: %d hits, %d misses — all lock-free, across %d expands and %d shrinks\n",
		hits.Load(), misses.Load(), st.Map.Expands, st.Map.Shrinks)
	fmt.Printf("lifecycle: %d expirations reclaimed, %d evictions under the %d-cost budget (final cost %d)\n",
		st.Expirations, st.Evictions, st.MaxCost, st.Cost)

	// Per-shard visibility: the one snapshot type shows imbalance and
	// per-shard resize history.
	for i, ps := range st.Map.PerShard {
		fmt.Printf("  shard %d: len=%d buckets=%d load=%.2f grows=%d shrinks=%d\n",
			i, ps.Len, ps.Buckets, ps.LoadFactor, ps.AutoGrows, ps.AutoShrinks)
	}
}
