// kvcache: an expiring in-process cache built on the sharded
// relativistic map — the memcached-shaped workload from the paper's
// evaluation, in library form. Readers fetch at full speed with no
// locks while a writer pool churns entries, TTLs lapse, and each
// shard resizes itself up and down with the population; writers to
// different shards never contend.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rphash"
)

// entry is an immutable cache record; expired entries read as misses
// and are reclaimed by a background sweeper.
type entry struct {
	value    string
	expireAt time.Time
}

// Cache is a tiny TTL cache over rphash.Map.
type Cache struct {
	t *rphash.Map[string, entry]
}

// NewCache builds a cache whose shards resize themselves by load
// factor.
func NewCache() *Cache {
	return &Cache{t: rphash.NewMapString[entry](
		rphash.WithMapInitialBuckets(128),
		rphash.WithMapPolicy(rphash.Policy{MaxLoad: 2, MinLoad: 0.25, MinBuckets: 128}),
	)}
}

// Get returns the live value. Lock-free; safe during resizes.
func (c *Cache) Get(k string) (string, bool) {
	e, ok := c.t.Get(k)
	if !ok || time.Now().After(e.expireAt) {
		return "", false
	}
	return e.value, true
}

// Put stores a value with a TTL.
func (c *Cache) Put(k, v string, ttl time.Duration) {
	c.t.Set(k, entry{value: v, expireAt: time.Now().Add(ttl)})
}

// Sweep removes expired entries; run it periodically.
func (c *Cache) Sweep() int {
	now := time.Now()
	var victims []string
	c.t.Range(func(k string, e entry) bool {
		if now.After(e.expireAt) {
			victims = append(victims, k)
		}
		return true
	})
	for _, k := range victims {
		if e, ok := c.t.Get(k); ok && now.After(e.expireAt) {
			c.t.Delete(k)
		}
	}
	return len(victims)
}

// Stats exposes the underlying table's metrics.
func (c *Cache) Stats() rphash.Stats { return c.t.Stats() }

func main() {
	cache := NewCache()
	defer cache.t.Close()

	stop := make(chan struct{})
	var hits, misses atomic.Int64

	// Reader pool: hammer the cache while everything else happens.
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			k := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				k = (k*1103515245 + 12345) & 0x3fff
				if _, ok := cache.Get(fmt.Sprintf("sess-%d", k)); ok {
					hits.Add(1)
				} else {
					misses.Add(1)
				}
			}
		}(g)
	}

	// Sweeper: reclaim expired sessions every 50ms.
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				cache.Sweep()
			}
		}
	}()

	// Writer: three phases — fill, refresh with short TTLs (so the
	// sweeper shrinks the population), refill. The auto-resize policy
	// expands and shrinks the table across the phases.
	fmt.Println("phase 1: fill 16k sessions (table expands itself)")
	for i := 0; i < 16_384; i++ {
		cache.Put(fmt.Sprintf("sess-%d", i), fmt.Sprintf("user-%d", i), time.Minute)
	}
	fmt.Printf("  %v\n", cache.Stats())

	fmt.Println("phase 2: expire most sessions (sweeper + table shrink)")
	for i := 0; i < 16_384; i++ {
		if i%16 != 0 {
			cache.Put(fmt.Sprintf("sess-%d", i), "short", 10*time.Millisecond)
		}
	}
	time.Sleep(300 * time.Millisecond)
	fmt.Printf("  %v\n", cache.Stats())

	fmt.Println("phase 3: refill while readers keep running")
	for i := 0; i < 16_384; i++ {
		cache.Put(fmt.Sprintf("sess-%d", i), fmt.Sprintf("user-%d-v2", i), time.Minute)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	st := cache.Stats()
	fmt.Printf("  %v\n", st)
	fmt.Printf("readers: %d hits, %d misses — all lock-free, across %d expands and %d shrinks\n",
		hits.Load(), misses.Load(), st.Expands, st.Shrinks)
}
