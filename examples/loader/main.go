// loader: thundering-herd protection with rphash.Cache.GetOrLoad,
// and batched loading with GetOrLoadMulti.
//
// A cache in front of a slow backend has a classic failure mode: when
// a hot key expires (or was never loaded), every concurrent request
// misses at once and every one of them hits the backend — a miss
// storm that can take the backend down exactly when it is busiest.
// GetOrLoad collapses the storm: the first misser becomes the leader
// and performs the one load; the rest park on the in-flight result
// and share it. GetOrLoadMulti extends this to requests that need
// many keys at once (a page render, a fan-out RPC): hits resolve
// through one batched lookup, and the whole miss set goes to the
// backend in a single call — while each missing key still
// singleflights against every other caller.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rphash"
)

// slowBackend simulates a database query: ~20ms per call regardless
// of how many keys the call fetches (the usual shape of a batched
// SELECT ... IN (...)), with a call counter standing in for load.
type slowBackend struct{ calls atomic.Int64 }

func (b *slowBackend) fetch(key string) string {
	b.calls.Add(1)
	time.Sleep(20 * time.Millisecond)
	return "profile-of-" + key
}

func (b *slowBackend) fetchAll(keys []string) (map[string]string, error) {
	b.calls.Add(1)
	time.Sleep(20 * time.Millisecond)
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		out[k] = "profile-of-" + k
	}
	return out, nil
}

func main() {
	db := &slowBackend{}
	cache := rphash.NewCacheString[string](
		rphash.WithCacheTTL(100 * time.Millisecond), // hot keys re-expire quickly
	)
	defer cache.Close()

	const stormers = 100

	storm := func(key string) (calls int64) {
		before := db.calls.Load()
		var wg sync.WaitGroup
		for g := 0; g < stormers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				v, err := cache.GetOrLoad(key, func() (string, error) {
					return db.fetch(key), nil
				})
				if err != nil || v != "profile-of-"+key {
					panic(fmt.Sprintf("bad load: %q, %v", v, err))
				}
			}()
		}
		wg.Wait()
		return db.calls.Load() - before
	}

	fmt.Printf("storm 1: %d goroutines miss on a cold key -> %d backend call(s)\n",
		stormers, storm("user:42"))
	fmt.Printf("storm 2: same key, now cached            -> %d backend call(s)\n",
		storm("user:42"))

	// Let the TTL lapse (coarse clock granularity is 50ms), then storm
	// again: one more load, not a hundred.
	time.Sleep(250 * time.Millisecond)
	fmt.Printf("storm 3: after TTL expiry                -> %d backend call(s)\n",
		storm("user:42"))

	// Batched loading: a request needing 8 profiles — one already hot —
	// costs ONE backend round-trip for the 7 misses, not 7.
	keys := []string{"user:42"} // hot from the storms above... unless the TTL lapsed
	for i := 0; i < 7; i++ {
		keys = append(keys, fmt.Sprintf("user:%d", 100+i))
	}
	before := db.calls.Load()
	res, err := cache.GetOrLoadMulti(keys, db.fetchAll)
	if err != nil || len(res) != len(keys) {
		panic(fmt.Sprintf("multi load: %d results, %v", len(res), err))
	}
	fmt.Printf("multi:   %d keys (%d cold)                 -> %d backend call(s)\n",
		len(keys), len(keys)-1, db.calls.Load()-before)

	st := cache.Stats()
	totalReqs := 3*stormers + len(keys)
	fmt.Printf("\ncache: %d loads total for %d requests (%.1f%% served without touching the backend)\n",
		st.Loads, totalReqs, 100*(1-float64(st.Loads)/float64(totalReqs)))
}
