// loader: thundering-herd protection with rphash.Cache.GetOrLoad.
//
// A cache in front of a slow backend has a classic failure mode: when
// a hot key expires (or was never loaded), every concurrent request
// misses at once and every one of them hits the backend — a miss
// storm that can take the backend down exactly when it is busiest.
// GetOrLoad collapses the storm: the first misser becomes the leader
// and performs the one load; the rest park on the in-flight result
// and share it.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rphash"
)

// slowBackend simulates a database query: ~20ms per call, with a call
// counter standing in for backend load.
type slowBackend struct{ calls atomic.Int64 }

func (b *slowBackend) fetch(key string) string {
	b.calls.Add(1)
	time.Sleep(20 * time.Millisecond)
	return "profile-of-" + key
}

func main() {
	db := &slowBackend{}
	cache := rphash.NewCacheString[string](
		rphash.WithCacheTTL(100 * time.Millisecond), // hot keys re-expire quickly
	)
	defer cache.Close()

	const stormers = 100

	storm := func(key string) (calls int64) {
		before := db.calls.Load()
		var wg sync.WaitGroup
		for g := 0; g < stormers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				v, err := cache.GetOrLoad(key, func() (string, error) {
					return db.fetch(key), nil
				})
				if err != nil || v != "profile-of-"+key {
					panic(fmt.Sprintf("bad load: %q, %v", v, err))
				}
			}()
		}
		wg.Wait()
		return db.calls.Load() - before
	}

	fmt.Printf("storm 1: %d goroutines miss on a cold key -> %d backend call(s)\n",
		stormers, storm("user:42"))
	fmt.Printf("storm 2: same key, now cached            -> %d backend call(s)\n",
		storm("user:42"))

	// Let the TTL lapse (coarse clock granularity is 50ms), then storm
	// again: one more load, not a hundred.
	time.Sleep(250 * time.Millisecond)
	fmt.Printf("storm 3: after TTL expiry                -> %d backend call(s)\n",
		storm("user:42"))

	st := cache.Stats()
	fmt.Printf("\ncache: %d loads total for %d requests (%.1f%% served without touching the backend)\n",
		st.Loads, 3*stormers, 100*(1-float64(st.Loads)/float64(3*stormers)))
}
