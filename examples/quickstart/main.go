// Quickstart: the public API in two minutes — create a table, write,
// look up from many goroutines with zero read-side synchronization,
// resize underneath them, and inspect what the resize machinery did.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rphash"
)

func main() {
	// A string-keyed table with an automatic resize policy: it will
	// unzip itself larger as we load it, while readers keep running.
	tbl := rphash.NewString[string](
		rphash.WithInitialBuckets(64),
		rphash.WithPolicy(rphash.DefaultPolicy()),
	)
	defer tbl.Close()

	// Plain upserts. Writers serialize internally; readers never wait.
	tbl.Set("greeting", "hello")
	tbl.Set("audience", "world")
	if v, ok := tbl.Get("greeting"); ok {
		fmt.Println("greeting =", v)
	}

	// Hot-path lookups: one ReadHandle per goroutine. Each Get is a
	// pair of reader-local atomic stores around a pointer walk — no
	// locks, no retries, no waiting, even mid-resize.
	var found atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := tbl.NewReadHandle()
			defer h.Close()
			for i := 0; i < 200_000; i++ {
				if _, ok := h.Get(fmt.Sprintf("key-%d", i%10_000)); ok {
					found.Add(1)
				}
			}
		}()
	}

	// Meanwhile, load 10k keys. The policy expands the table in
	// factor-of-two unzip steps behind the readers' backs.
	for i := 0; i < 10_000; i++ {
		tbl.Set(fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
	}
	wg.Wait()

	// Explicit resizing works too, and is equally invisible to readers.
	tbl.Resize(1 << 14)

	st := tbl.Stats()
	fmt.Printf("len=%d buckets=%d load=%.2f\n", st.Len, st.Buckets, st.LoadFactor)
	fmt.Printf("expands=%d (unzip passes=%d, pointer cuts=%d) shrinks=%d\n",
		st.Expands, st.UnzipPasses, st.UnzipCuts, st.Shrinks)
	fmt.Printf("concurrent readers found %d hits while the table resized\n", found.Load())
}
