// routecache: a forwarding-table cache on the relativistic radix
// tree (internal/rtree) — the paper lists radix trees among the
// relativistic data structures, and this is their classic kernel
// use: IP route lookups on the packet path.
//
// Packet workers resolve next hops with zero synchronization while a
// routing daemon withdraws and re-announces prefixes, growing and
// shrinking the tree's height. Routes present throughout the run
// must never miss.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rphash/internal/rtree"
)

// NextHop is the stored route target.
type NextHop struct {
	Gateway uint32
	Iface   uint8
}

func ipKey(a, b, c, d byte) uint64 {
	return uint64(a)<<24 | uint64(b)<<16 | uint64(c)<<8 | uint64(d)
}

func main() {
	routes := rtree.New[NextHop](nil)
	defer routes.Close()

	// Install a stable core: 10.0.x.y host routes.
	stable := make([]uint64, 0, 4096)
	for x := 0; x < 16; x++ {
		for y := 0; y < 256; y++ {
			k := ipKey(10, 0, byte(x), byte(y))
			routes.Set(k, NextHop{Gateway: uint32(ipKey(10, 0, byte(x), 1)), Iface: uint8(x % 4)})
			stable = append(stable, k)
		}
	}

	stop := make(chan struct{})
	var lookups, misses atomic.Int64
	var wg sync.WaitGroup

	// Packet path: per-worker registered readers, one lookup per
	// "packet", no locks, no retries.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			h := routes.NewHandle()
			defer h.Close()
			rng := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				rng = rng*2862933555777941757 + 3037000493
				dst := stable[rng%uint64(len(stable))]
				if _, ok := h.Get(dst); !ok {
					misses.Add(1)
				}
				lookups.Add(1)
			}
		}(uint64(w + 1))
	}

	// Routing daemon: flap volatile prefixes, including very large
	// keys that force the tree height up and back down.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			volatileKey := (i%1024)<<40 | i%4096 // tall keys: height churn
			routes.Set(volatileKey, NextHop{Gateway: 1, Iface: 9})
			if i%2 == 1 {
				routes.Delete(volatileKey)
			}
			i++
		}
	}()

	fmt.Println("routecache: 3 packet workers vs route flapping for 2s ...")
	time.Sleep(2 * time.Second)
	close(stop)
	wg.Wait()

	fmt.Printf("lookups:        %d\n", lookups.Load())
	fmt.Printf("stable misses:  %d (must be 0)\n", misses.Load())
	fmt.Printf("routes stored:  %d, tree height %d\n", routes.Len(), routes.Height())
	if misses.Load() != 0 {
		panic("routecache: a stable route was missed")
	}
}
