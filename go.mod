module rphash

go 1.24
