// Package adapt is the table's adaptive maintenance control plane.
//
// The paper's thesis is that relativistic resizing turns the table's
// shape into a runtime decision; this package extends that from the
// bucket array to the two knobs the striped-writer design added: the
// writer-stripe count and the unzip migration fan-out. A Controller
// periodically samples cheap telemetry the table already maintains —
// per-stripe lock contention counters and the live unzip backlog —
// and actuates through two table operations that follow the same
// relativistic swap discipline as a resize:
//
//   - Stripe retuning: when the sampled contention rate (blocked
//     stripe acquisitions / total acquisitions) stays above the grow
//     threshold for GrowStreak consecutive samples, the physical lock
//     array doubles (SetStripes), up to MaxStripes; when it stays
//     below the shrink threshold for ShrinkStreak samples, it halves,
//     down to MinStripes. The two thresholds sit an order of
//     magnitude apart and the shrink streak is much longer than the
//     grow streak, so the controller reacts to bursts quickly but
//     gives capacity back reluctantly — classic hysteresis, no
//     thrash.
//
//   - Migration fan-out: while an expansion is unzipping, the
//     controller sizes the table's unzip worker pool from the
//     observed backlog (one extra worker per BacklogPerWorker parent
//     chains, capped at MaxUnzipWorkers), so big resizes finish in a
//     fraction of the sequential wall time while small ones stay on
//     the cheap sequential path.
//
// The controller is deliberately decoupled from the table's generic
// type: it drives the narrow Table interface, which *core.Table[K,V]
// implements for every K and V. It never touches the read path, takes
// no table locks itself (the actuators do their own choreography),
// and stops promptly on either Stop or the close of the done channel
// it was started with (normally the RCU domain's Done).
package adapt

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rphash/internal/hashfn"
)

// Table is the maintenance surface a Controller drives. *core.Table
// implements it; any table exposing the same telemetry/actuator pair
// can be maintained.
type Table interface {
	// ContentionCounters returns cumulative stripe-lock telemetry:
	// total writer stripe acquisitions, and how many blocked.
	ContentionCounters() (acquires, contended uint64)
	// Stripes returns the current physical stripe count.
	Stripes() int
	// TrySetStripes retunes the physical stripe count, reporting
	// whether the array changed. It must NOT block behind in-flight
	// maintenance (a resize): the controller calls it from its
	// sampling loop, which has to stay live to keep sizing the
	// migration fan-out while a resize runs. A false return is
	// retried on a later qualifying sample.
	TrySetStripes(n int) bool
	// UnzipBacklog reports the parent chains an in-flight expansion
	// still has to migrate (0 when idle).
	UnzipBacklog() int
	// UnzipWorkers returns the current migration fan-out setting.
	UnzipWorkers() int
	// SetUnzipWorkers sets the migration fan-out for unzip passes.
	SetUnzipWorkers(n int)
}

// Config tunes a Controller. The zero value is not meaningful; start
// from DefaultConfig and override.
type Config struct {
	// Interval is the sampling cadence.
	Interval time.Duration

	// GrowRate is the contention rate (contended/acquires per
	// interval) at or above which the stripe count doubles once the
	// streak requirement is met.
	GrowRate float64
	// ShrinkRate is the rate at or below which the stripe count
	// halves once the (longer) shrink streak is met. Keep it well
	// under GrowRate or the controller oscillates.
	ShrinkRate float64
	// GrowStreak / ShrinkStreak are how many consecutive qualifying
	// samples must accumulate before acting — the hysteresis.
	GrowStreak   int
	ShrinkStreak int
	// MinStripes / MaxStripes bound the retuning range (powers of
	// two; the table clamps further to its own [1, 256]).
	MinStripes int
	MaxStripes int
	// MinSamples is the minimum stripe acquisitions an interval must
	// observe before its rate counts toward either streak; quieter
	// intervals reset both streaks (an idle table drifts toward
	// neither direction on noise).
	MinSamples uint64

	// MaxUnzipWorkers caps the migration fan-out (1 pins the
	// sequential resizer). BacklogPerWorker is how many backlogged
	// parent chains justify one more worker.
	MaxUnzipWorkers  int
	BacklogPerWorker int
}

// DefaultConfig returns the production defaults: 100ms sampling, grow
// at >=5% contention for 2 samples, shrink at <=0.5% for 10 samples,
// stripe range [64, 256] (the construction-time floor and cap), and a
// migration fan-out of up to half the cores, one worker per 64
// backlogged parents.
func DefaultConfig() *Config {
	return &Config{
		Interval:         100 * time.Millisecond,
		GrowRate:         0.05,
		ShrinkRate:       0.005,
		GrowStreak:       2,
		ShrinkStreak:     10,
		MinStripes:       64,
		MaxStripes:       256,
		MinSamples:       256,
		MaxUnzipWorkers:  max(runtime.GOMAXPROCS(0)/2, 1),
		BacklogPerWorker: 64,
	}
}

// sanitize fills unusable fields with defaults so a partially
// specified config behaves.
func (c Config) sanitize() Config {
	d := DefaultConfig()
	if c.Interval <= 0 {
		c.Interval = d.Interval
	}
	if c.GrowRate <= 0 {
		c.GrowRate = d.GrowRate
	}
	if c.ShrinkRate < 0 || c.ShrinkRate >= c.GrowRate {
		c.ShrinkRate = min(d.ShrinkRate, c.GrowRate/10)
	}
	if c.GrowStreak <= 0 {
		c.GrowStreak = d.GrowStreak
	}
	if c.ShrinkStreak <= 0 {
		c.ShrinkStreak = d.ShrinkStreak
	}
	if c.MinStripes <= 0 {
		c.MinStripes = d.MinStripes
	}
	// The table's stripe counts are powers of two (SetStripes rounds
	// UP), so non-power-of-two bounds would be overshot: align the
	// floor up and the ceiling down before clamping targets against
	// them.
	c.MinStripes = ceilPow2(c.MinStripes)
	c.MaxStripes = floorPow2(c.MaxStripes)
	if c.MaxStripes < c.MinStripes {
		c.MaxStripes = max(floorPow2(d.MaxStripes), c.MinStripes)
	}
	if c.MinSamples == 0 {
		c.MinSamples = d.MinSamples
	}
	if c.MaxUnzipWorkers <= 0 {
		c.MaxUnzipWorkers = d.MaxUnzipWorkers
	}
	// The table itself caps the fan-out at 64 (core's maxUnzipWorkers)
	// and silently clamps larger settings; capping here too keeps the
	// controller's bookkeeping (lastWorkers, Stats.UnzipWorkers) equal
	// to what the table actually runs on many-core hosts.
	if c.MaxUnzipWorkers > 64 {
		c.MaxUnzipWorkers = 64
	}
	if c.BacklogPerWorker <= 0 {
		c.BacklogPerWorker = d.BacklogPerWorker
	}
	return c
}

// ceilPow2 rounds n up to a power of two (the same normalization the
// table's clampStripes applies, via the same helper); floorPow2
// rounds down.
func ceilPow2(n int) int {
	if n < 1 {
		n = 1
	}
	return int(hashfn.NextPowerOfTwo(uint64(n)))
}

func floorPow2(n int) int {
	p := ceilPow2(n)
	if p > n {
		p >>= 1
	}
	return p
}

// Stats is a controller observability snapshot. Aggregate several
// (one per shard table) with Accumulate.
type Stats struct {
	Samples       uint64  // sampling intervals processed
	StripeGrows   uint64  // retunes that doubled the stripe count
	StripeShrinks uint64  // retunes that halved it
	WorkerRetunes uint64  // unzip fan-out adjustments applied
	LastRate      float64 // most recent sampled contention rate
	LastBacklog   int     // unzip backlog at the most recent worker retune check
	Stripes       int     // current physical stripe count
	UnzipWorkers  int     // current fan-out setting
}

// Accumulate folds another controller's snapshot into s: counters
// sum, Stripes and UnzipWorkers sum (total actuated capacity), and
// LastRate keeps the maximum (the hottest table dominates).
func (s *Stats) Accumulate(o Stats) {
	s.Samples += o.Samples
	s.StripeGrows += o.StripeGrows
	s.StripeShrinks += o.StripeShrinks
	s.WorkerRetunes += o.WorkerRetunes
	s.Stripes += o.Stripes
	s.UnzipWorkers += o.UnzipWorkers
	if o.LastRate > s.LastRate {
		s.LastRate = o.LastRate
	}
	s.LastBacklog += o.LastBacklog
}

// Controller is one table's maintenance goroutine. Create with Start;
// Stop (idempotent) or the done channel ends it.
type Controller struct {
	t    Table
	cfg  Config
	done <-chan struct{}

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	samples       atomic.Uint64
	grows         atomic.Uint64
	shrinks       atomic.Uint64
	workerRetunes atomic.Uint64
	lastRateBits  atomic.Uint64
	lastBacklog   atomic.Int64
	// baseWorkers is the table's fan-out when the controller
	// attached — a caller-pinned WithUnzipWorkers value acts as the
	// floor the backlog-driven setting never drops below.
	// lastWorkers is the last setting this controller applied (or
	// inherited), so Stats reports truthfully and unchanged wants
	// skip the store.
	baseWorkers int
	lastWorkers atomic.Int32
}

// Start launches a controller sampling t on cfg's cadence. A nil cfg
// uses DefaultConfig. The controller exits when Stop is called or
// when done (if non-nil — normally the table's rcu Domain.Done) is
// closed; both paths are prompt, no poll-on-defer.
func Start(t Table, cfg *Config, done <-chan struct{}) *Controller {
	c := &Controller{t: t, done: done, stop: make(chan struct{})}
	if cfg == nil {
		cfg = DefaultConfig()
	}
	c.cfg = cfg.sanitize() // defaults included: GOMAXPROCS-derived fields still need the caps
	c.baseWorkers = max(t.UnzipWorkers(), 1)
	c.lastWorkers.Store(int32(c.baseWorkers))
	c.wg.Add(1)
	go c.run()
	return c
}

// Stop ends the controller and waits for its goroutine. Safe to call
// more than once and concurrently with the done channel closing.
func (c *Controller) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// Stats returns a point-in-time snapshot.
func (c *Controller) Stats() Stats {
	return Stats{
		Samples:       c.samples.Load(),
		StripeGrows:   c.grows.Load(),
		StripeShrinks: c.shrinks.Load(),
		WorkerRetunes: c.workerRetunes.Load(),
		LastRate:      math.Float64frombits(c.lastRateBits.Load()),
		LastBacklog:   int(c.lastBacklog.Load()),
		Stripes:       c.t.Stripes(),
		UnzipWorkers:  int(c.lastWorkers.Load()),
	}
}

func (c *Controller) run() {
	defer c.wg.Done()
	// On exit, restore the fan-out the table had when this controller
	// attached: a successor controller (Table.Maintain replacement)
	// starts AFTER Stop returns and reads the table's setting as its
	// own floor — it must inherit the caller-pinned baseline, not a
	// transient backlog-raised value this controller happened to
	// leave behind.
	defer c.t.SetUnzipWorkers(c.baseWorkers)
	tick := time.NewTicker(c.cfg.Interval)
	defer tick.Stop()

	prevAcq, prevCon := c.t.ContentionCounters()
	growStreak, shrinkStreak := 0, 0
	for {
		select {
		case <-c.stop:
			return
		case <-c.done:
			return
		case <-tick.C:
		}
		c.samples.Add(1)

		// Size the migration fan-out from the live unzip backlog
		// before looking at contention: a resize in flight is the
		// moment the setting matters, and each unzip pass re-reads
		// it. The setting decays back to 1 when the backlog drains
		// so the next small resize stays sequential.
		c.retuneWorkers()

		acq, con := c.t.ContentionCounters()
		dAcq, dCon := acq-prevAcq, con-prevCon
		prevAcq, prevCon = acq, con
		if dAcq < c.cfg.MinSamples {
			growStreak, shrinkStreak = 0, 0
			continue
		}
		rate := float64(dCon) / float64(dAcq)
		c.lastRateBits.Store(math.Float64bits(rate))

		switch {
		case rate >= c.cfg.GrowRate:
			shrinkStreak = 0
			if growStreak++; growStreak >= c.cfg.GrowStreak {
				growStreak = 0
				if s := c.t.Stripes(); s < c.cfg.MaxStripes {
					// False when a resize holds the maintenance lock —
					// the streak rebuilds and the retune lands after.
					if c.t.TrySetStripes(min(s*2, c.cfg.MaxStripes)) {
						c.grows.Add(1)
					}
				}
			}
		case rate <= c.cfg.ShrinkRate:
			growStreak = 0
			if shrinkStreak++; shrinkStreak >= c.cfg.ShrinkStreak {
				shrinkStreak = 0
				if s := c.t.Stripes(); s > c.cfg.MinStripes {
					if c.t.TrySetStripes(max(s/2, c.cfg.MinStripes)) {
						c.shrinks.Add(1)
					}
				}
			}
		default:
			// Inside the hysteresis band: hold shape.
			growStreak, shrinkStreak = 0, 0
		}
	}
}

// retuneWorkers maps the current unzip backlog to a fan-out and
// applies it if it changed: one more worker per BacklogPerWorker
// backlogged parents, capped at MaxUnzipWorkers, never below the
// fan-out the table was configured with when the controller attached
// (a pinned WithUnzipWorkers is a floor, not a suggestion).
func (c *Controller) retuneWorkers() {
	backlog := c.t.UnzipBacklog()
	c.lastBacklog.Store(int64(backlog))
	if c.cfg.MaxUnzipWorkers <= 1 {
		return
	}
	want := 1 + backlog/c.cfg.BacklogPerWorker
	if want < c.baseWorkers {
		want = c.baseWorkers
	}
	if want > c.cfg.MaxUnzipWorkers {
		want = c.cfg.MaxUnzipWorkers
	}
	if int32(want) == c.lastWorkers.Load() {
		return
	}
	c.t.SetUnzipWorkers(want)
	c.lastWorkers.Store(int32(want))
	c.workerRetunes.Add(1)
}
