package adapt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeTable is a scripted Table: the test feeds contention deltas and
// backlog values, and observes the controller's actuations.
type fakeTable struct {
	mu       sync.Mutex
	acquires uint64
	contends uint64
	stripes  int
	backlog  int

	setStripes []int // history of TrySetStripes targets
	workers    atomic.Int32
}

func (f *fakeTable) ContentionCounters() (uint64, uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.acquires, f.contends
}

func (f *fakeTable) Stripes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stripes
}

func (f *fakeTable) TrySetStripes(n int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.setStripes = append(f.setStripes, n)
	if n == f.stripes {
		return false
	}
	f.stripes = n
	return true
}

func (f *fakeTable) UnzipBacklog() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.backlog
}

func (f *fakeTable) UnzipWorkers() int     { return int(f.workers.Load()) }
func (f *fakeTable) SetUnzipWorkers(n int) { f.workers.Store(int32(n)) }

// feed adds one interval's worth of telemetry.
func (f *fakeTable) feed(acquires, contended uint64) {
	f.mu.Lock()
	f.acquires += acquires
	f.contends += contended
	f.mu.Unlock()
}

func (f *fakeTable) setBacklog(n int) {
	f.mu.Lock()
	f.backlog = n
	f.mu.Unlock()
}

// testConfig samples fast with single-interval hysteresis so the
// tests stay deterministic at the sample level.
func testConfig() *Config {
	return &Config{
		Interval:         2 * time.Millisecond,
		GrowRate:         0.10,
		ShrinkRate:       0.01,
		GrowStreak:       2,
		ShrinkStreak:     3,
		MinStripes:       4,
		MaxStripes:       64,
		MinSamples:       100,
		MaxUnzipWorkers:  8,
		BacklogPerWorker: 50,
	}
}

// waitFor polls until pred holds or the deadline passes.
func waitFor(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestControllerGrowsOnSustainedContention: a contention rate above
// GrowRate for GrowStreak samples doubles the stripes; a single hot
// sample does not.
func TestControllerGrowsOnSustainedContention(t *testing.T) {
	f := &fakeTable{stripes: 8}
	done := make(chan struct{})
	defer close(done)
	feedStop := make(chan struct{})
	go func() { // sustained 50% contention, plenty of samples
		for {
			select {
			case <-feedStop:
				return
			default:
			}
			f.feed(1000, 500)
			time.Sleep(time.Millisecond)
		}
	}()
	c := Start(f, testConfig(), done)
	defer c.Stop()

	waitFor(t, "stripe grow", func() bool { return f.Stripes() > 8 })
	close(feedStop)
	st := c.Stats()
	if st.StripeGrows == 0 {
		t.Fatalf("Stats().StripeGrows = 0 after growth; stats = %+v", st)
	}
	if st.LastRate < 0.4 || st.LastRate > 0.6 {
		t.Fatalf("LastRate = %.3f, want ~0.5", st.LastRate)
	}
	// Growth is by doubling.
	for _, n := range f.setStripes {
		if n != 16 && n != 32 && n != 64 {
			t.Fatalf("TrySetStripes(%d): not a doubling from 8 within bounds", n)
		}
	}
}

// TestControllerRespectsMaxStripes: growth stops at the configured
// ceiling no matter how hot the table stays.
func TestControllerRespectsMaxStripes(t *testing.T) {
	f := &fakeTable{stripes: 64} // already at MaxStripes
	done := make(chan struct{})
	defer close(done)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			f.feed(1000, 900)
			time.Sleep(time.Millisecond)
		}
	}()
	c := Start(f, testConfig(), done)
	defer c.Stop()

	waitFor(t, "samples", func() bool { return c.Stats().Samples >= 10 })
	f.mu.Lock()
	calls := len(f.setStripes)
	f.mu.Unlock()
	if calls != 0 {
		t.Fatalf("TrySetStripes called %d times at the MaxStripes ceiling", calls)
	}
}

// TestControllerShrinksOnSustainedQuiet: a rate below ShrinkRate for
// ShrinkStreak samples halves the stripes, and never below
// MinStripes.
func TestControllerShrinksOnSustainedQuiet(t *testing.T) {
	f := &fakeTable{stripes: 8}
	done := make(chan struct{})
	defer close(done)
	stop := make(chan struct{})
	defer close(stop)
	go func() { // busy but uncontended
		for {
			select {
			case <-stop:
				return
			default:
			}
			f.feed(1000, 0)
			time.Sleep(time.Millisecond)
		}
	}()
	c := Start(f, testConfig(), done)
	defer c.Stop()

	waitFor(t, "shrink to MinStripes", func() bool { return f.Stripes() == 4 })
	waitFor(t, "a few more samples", func() bool { return c.Stats().Samples >= 20 })
	if got := f.Stripes(); got != 4 {
		t.Fatalf("Stripes() = %d, want to stay at MinStripes 4", got)
	}
	if st := c.Stats(); st.StripeShrinks == 0 {
		t.Fatalf("Stats().StripeShrinks = 0 after shrink; stats = %+v", st)
	}
}

// TestControllerIgnoresIdleIntervals: intervals under MinSamples
// never move the stripes, whatever their (noisy) rate.
func TestControllerIgnoresIdleIntervals(t *testing.T) {
	f := &fakeTable{stripes: 8}
	done := make(chan struct{})
	defer close(done)
	stop := make(chan struct{})
	defer close(stop)
	go func() { // 10 acquisitions per ms, all contended — but < MinSamples per 2ms interval
		for {
			select {
			case <-stop:
				return
			default:
			}
			f.feed(10, 10)
			time.Sleep(time.Millisecond)
		}
	}()
	c := Start(f, testConfig(), done)
	defer c.Stop()

	waitFor(t, "samples", func() bool { return c.Stats().Samples >= 20 })
	f.mu.Lock()
	calls := len(f.setStripes)
	f.mu.Unlock()
	if calls != 0 {
		t.Fatalf("TrySetStripes called %d times on idle-interval noise", calls)
	}
}

// TestControllerSizesUnzipFanout: the worker setting follows the
// backlog — 1 at idle, +1 per BacklogPerWorker parents, capped at
// MaxUnzipWorkers — and decays back when the backlog drains.
func TestControllerSizesUnzipFanout(t *testing.T) {
	f := &fakeTable{stripes: 8}
	done := make(chan struct{})
	defer close(done)
	c := Start(f, testConfig(), done)
	defer c.Stop()

	f.setBacklog(120) // 1 + 120/50 = 3
	waitFor(t, "fan-out 3", func() bool { return f.workers.Load() == 3 })

	f.setBacklog(100000) // capped at 8
	waitFor(t, "fan-out cap", func() bool { return f.workers.Load() == 8 })

	f.setBacklog(0)
	waitFor(t, "fan-out decay", func() bool { return f.workers.Load() == 1 })

	if st := c.Stats(); st.WorkerRetunes < 3 {
		t.Fatalf("Stats().WorkerRetunes = %d, want >= 3", st.WorkerRetunes)
	}
}

// TestControllerRespectsPinnedFanout: a table configured with an
// explicit fan-out (WithUnzipWorkers) keeps it as a floor — the
// controller adds workers for backlog but never decays below the
// pinned value, and reports it truthfully from the start.
func TestControllerRespectsPinnedFanout(t *testing.T) {
	f := &fakeTable{stripes: 8}
	f.workers.Store(4) // caller pinned 4 before the controller attached
	done := make(chan struct{})
	defer close(done)
	c := Start(f, testConfig(), done)
	defer c.Stop()

	if got := c.Stats().UnzipWorkers; got != 4 {
		t.Fatalf("Stats().UnzipWorkers = %d at start, want the table's pinned 4", got)
	}

	f.setBacklog(300) // 1 + 300/50 = 7 > floor
	waitFor(t, "fan-out above floor", func() bool { return f.workers.Load() == 7 })

	f.setBacklog(0) // decays to the floor, not to 1
	waitFor(t, "decay to pinned floor", func() bool { return f.workers.Load() == 4 })
	waitFor(t, "more samples at floor", func() bool { return c.Stats().Samples >= 10 })
	if got := f.workers.Load(); got != 4 {
		t.Fatalf("fan-out = %d after decay, want pinned floor 4", got)
	}
}

// TestControllerStops: Stop is idempotent, and the done channel alone
// also ends the run loop promptly.
func TestControllerStops(t *testing.T) {
	f := &fakeTable{stripes: 8}
	done := make(chan struct{})
	c := Start(f, testConfig(), done)
	c.Stop()
	c.Stop() // idempotent

	done2 := make(chan struct{})
	c2 := Start(f, testConfig(), done2)
	close(done2) // domain-close path
	fin := make(chan struct{})
	go func() { c2.wg.Wait(); close(fin) }()
	select {
	case <-fin:
	case <-time.After(2 * time.Second):
		t.Fatal("controller did not exit after its done channel closed")
	}
	c2.Stop() // still safe afterwards
}

// TestSanitizeFillsDefaults: a partially specified config gets usable
// values everywhere and never an inverted rate band.
func TestSanitizeFillsDefaults(t *testing.T) {
	c := Config{GrowRate: 0.2}.sanitize()
	if c.Interval <= 0 || c.GrowStreak <= 0 || c.ShrinkStreak <= 0 ||
		c.MinStripes <= 0 || c.MaxStripes < c.MinStripes ||
		c.MinSamples == 0 || c.MaxUnzipWorkers <= 0 || c.BacklogPerWorker <= 0 {
		t.Fatalf("sanitize left unusable fields: %+v", c)
	}
	if c.ShrinkRate >= c.GrowRate {
		t.Fatalf("sanitize produced inverted band: shrink %.3f >= grow %.3f", c.ShrinkRate, c.GrowRate)
	}
	if d := DefaultConfig(); d.ShrinkRate >= d.GrowRate {
		t.Fatalf("DefaultConfig has inverted band: %+v", d)
	}

	// Non-power-of-two bounds align inward (floor up, ceiling down),
	// since the table rounds stripe counts up to powers of two and
	// raw bounds would otherwise be overshot.
	c = Config{MinStripes: 48, MaxStripes: 100}.sanitize()
	if c.MinStripes != 64 || c.MaxStripes != 64 {
		t.Fatalf("sanitize bounds = [%d, %d], want [64, 64]", c.MinStripes, c.MaxStripes)
	}
	c = Config{MinStripes: 3, MaxStripes: 1000}.sanitize()
	if c.MinStripes != 4 || c.MaxStripes != 512 {
		t.Fatalf("sanitize bounds = [%d, %d], want [4, 512]", c.MinStripes, c.MaxStripes)
	}
}

// TestAccumulate pins the aggregate semantics shard.Map relies on.
func TestAccumulate(t *testing.T) {
	var agg Stats
	agg.Accumulate(Stats{Samples: 2, StripeGrows: 1, Stripes: 8, UnzipWorkers: 1, LastRate: 0.1})
	agg.Accumulate(Stats{Samples: 3, StripeShrinks: 2, Stripes: 16, UnzipWorkers: 4, LastRate: 0.5})
	want := Stats{Samples: 5, StripeGrows: 1, StripeShrinks: 2, Stripes: 24, UnzipWorkers: 5, LastRate: 0.5}
	if agg != want {
		t.Fatalf("Accumulate = %+v, want %+v", agg, want)
	}
}
