// Package atest is a small analysistest-style harness for the rplint
// analyzers. A test points it at a testdata directory laid out as
// testdata/src/<import path>/*.go; the harness type-checks the target
// package (and, recursively, any imports that also live under
// testdata/src — loaded dependency-first so facts flow), runs the
// analyzers, and compares the resulting diagnostics against
// expectations written as trailing comments:
//
//	ch <- 1 // want `sends on a channel`
//
// Every want must be matched by a diagnostic on its line and every
// diagnostic must be matched by a want; suppression directives are
// applied first, so a //lint:allow line with no want asserts that the
// suppression works. Imports not found under testdata/src (sync,
// sync/atomic, time, ...) resolve through the source importer from
// GOROOT, which needs no network and no prebuilt export data.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"rphash/internal/analysis/framework"
)

// ModulePath is the module identity testdata packages are checked
// under; paths below it (e.g. rphash/atomicinner) count as
// module-local for fact propagation.
const ModulePath = "rphash"

// Run loads pkgPath from testdataDir/src, runs the analyzers, and
// compares diagnostics against the // want comments.
func Run(t *testing.T, testdataDir string, pkgPath string, analyzers []*framework.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	l := &loader{
		fset:     fset,
		srcRoot:  filepath.Join(testdataDir, "src"),
		pkgs:     make(map[string]*loadedPkg),
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	if _, err := l.Import(pkgPath); err != nil {
		t.Fatalf("loading %s: %v", pkgPath, err)
	}

	store := framework.NewFactStore()
	var diags []framework.Diagnostic
	for _, path := range l.order {
		p := l.pkgs[path]
		ds, err := framework.RunAnalyzers(framework.PackageInput{
			Fset:       fset,
			Files:      p.files,
			Pkg:        p.pkg,
			Info:       p.info,
			ModulePath: ModulePath,
		}, analyzers, store)
		if err != nil {
			t.Fatalf("analyzing %s: %v", path, err)
		}
		diags = append(diags, ds...)
	}

	checkWants(t, fset, l, diags)
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader loads testdata packages from source, recursively through
// their testdata-local imports, falling back to GOROOT source for
// everything else.
type loader struct {
	fset     *token.FileSet
	srcRoot  string
	pkgs     map[string]*loadedPkg
	order    []string // post-order: dependencies before dependents
	loading  []string
	fallback types.Importer
}

// Import implements types.Importer over the testdata overlay.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.pkg, nil
	}
	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return l.load(path, dir)
	}
	return l.fallback.Import(path)
}

func (l *loader) load(path, dir string) (*types.Package, error) {
	for _, p := range l.loading {
		if p == path {
			return nil, fmt.Errorf("testdata import cycle through %s", path)
		}
	}
	l.loading = append(l.loading, path)
	defer func() { l.loading = l.loading[:len(l.loading)-1] }()

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := framework.NewInfo()
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = &loadedPkg{pkg: pkg, files: files, info: info}
	l.order = append(l.order, path)
	return pkg, nil
}

// wantRx extracts the quoted or backquoted patterns of a want comment.
var wantRx = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type want struct {
	file string
	line int
	rx   *regexp.Regexp
	text string
	hit  bool
}

// checkWants compares diagnostics against // want comments across
// every loaded testdata package.
func checkWants(t *testing.T, fset *token.FileSet, l *loader, diags []framework.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, path := range l.order {
		for _, f := range l.pkgs[path].files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					body := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(body, "want ") {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, m := range wantRx.FindAllStringSubmatch(body[len("want "):], -1) {
						pat := m[1]
						if pat == "" {
							pat = m[2]
						}
						rx, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx, text: pat})
					}
				}
			}
		}
	}

	matched := make([]bool, len(diags))
	for _, w := range wants {
		for i, d := range diags {
			if matched[i] {
				continue
			}
			pos := fset.Position(d.Pos)
			if pos.Filename == w.file && pos.Line == w.line && w.rx.MatchString(d.Message) {
				matched[i] = true
				w.hit = true
				break
			}
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.text)
		}
	}
	unexpected := make([]string, 0)
	for i, d := range diags {
		if matched[i] {
			continue
		}
		pos := fset.Position(d.Pos)
		unexpected = append(unexpected, fmt.Sprintf("%s:%d: unexpected diagnostic (rplint/%s): %s", pos.Filename, pos.Line, d.Analyzer, d.Message))
	}
	sort.Strings(unexpected)
	for _, u := range unexpected {
		t.Error(u)
	}
}
