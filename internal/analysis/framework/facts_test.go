package framework

import (
	"encoding/gob"
	"testing"
)

type testFact struct {
	Note  string
	Count int
}

func (*testFact) AFact() {}

func init() { gob.Register(&testFact{}) }

func TestFactStoreRoundTrip(t *testing.T) {
	s := NewFactStore()
	s.put("a", "pkg.Type.Method", &testFact{Note: "blocks", Count: 2})
	s.put("a", "pkg.Func", &testFact{Note: "waits"})
	s.put("b", "pkg.Func", &testFact{Count: 7})

	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewFactStore()
	if err := s2.DecodeInto(data); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 3 {
		t.Fatalf("expected 3 facts after decode, got %d", s2.Len())
	}
	got, ok := s2.get("a", "pkg.Type.Method").(*testFact)
	if !ok || got.Note != "blocks" || got.Count != 2 {
		t.Fatalf("fact did not round-trip: %+v", got)
	}
	if s2.get("b", "pkg.Type.Method") != nil {
		t.Fatal("fact leaked across analyzer namespaces")
	}

	// Encoding is deterministic: same store, same bytes.
	data2, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("Encode is not deterministic")
	}

	// Empty input is a valid empty fact set (a dependency with no
	// facts writes a zero-length vetx file).
	if err := NewFactStore().DecodeInto(nil); err != nil {
		t.Fatal(err)
	}
}
