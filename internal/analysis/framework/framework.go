// Package framework is a self-contained, dependency-free skeleton of
// the golang.org/x/tools go/analysis vocabulary: analyzers, passes,
// diagnostics, and cross-package facts. The real framework is not
// vendorable here (the module deliberately has zero external
// dependencies), so this package rebuilds the minimal surface the
// rplint analyzers need on top of the standard library — go/ast,
// go/types, and an export-data importer — while keeping the same
// shape, so the analyzers would port to x/tools with mechanical
// changes only.
//
// The pieces:
//
//   - Analyzer / Pass / Diagnostic mirror their x/tools namesakes.
//     Analyzers declare Requires dependencies (run earlier, results
//     available via Pass.ResultOf) and FactTypes (gob-registered for
//     cross-process serialization under `go vet -vettool`).
//   - FactStore holds facts keyed by (analyzer, stable object key).
//     Object keys are strings like "pkg/path.Type.Method" rather than
//     types.Object pointers, because a dependency analyzed from source
//     in one process must match the same symbol imported from export
//     data in another.
//   - RunAnalyzers runs a topologically sorted analyzer set over one
//     type-checked package and applies the //lint:allow suppression
//     directives (see suppress.go).
package framework

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
)

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the driver
}

// Fact is a piece of analyzer-computed information attached to a
// stable object key and serialized across package boundaries. A Fact
// must be a pointer to a gob-encodable struct.
type Fact interface{ AFact() }

// Analyzer is one static check.
type Analyzer struct {
	// Name is the analyzer's short name; diagnostics print as
	// "rplint/<name>" and suppressions reference the same string.
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// Requires lists analyzers that must run first on the same
	// package; their results are available in Pass.ResultOf.
	Requires []*Analyzer
	// FactTypes enumerates prototype fact values (pointers) for gob
	// registration.
	FactTypes []Fact
	// Run performs the analysis.
	Run func(*Pass) (any, error)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	ModulePath string // module being linted ("rphash")
	ResultOf   map[*Analyzer]any

	facts *FactStore
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// ExportFact attaches a fact to a stable object key.
func (p *Pass) ExportFact(objectKey string, f Fact) {
	p.facts.put(p.Analyzer.Name, objectKey, f)
}

// ImportFact copies a previously exported fact for objectKey into f
// (a pointer of the matching concrete type), reporting whether one
// exists. Facts exported by the current package are visible too.
func (p *Pass) ImportFact(objectKey string, f Fact) bool {
	got := p.facts.get(p.Analyzer.Name, objectKey)
	if got == nil {
		return false
	}
	rv, gv := reflect.ValueOf(f), reflect.ValueOf(got)
	if rv.Type() != gv.Type() {
		return false
	}
	rv.Elem().Set(gv.Elem())
	return true
}

// ModuleLocal reports whether an import path belongs to the module
// being linted (facts flow only between module packages; everything
// else is opaque export data).
func (p *Pass) ModuleLocal(path string) bool {
	return ModuleLocalPath(p.ModulePath, path)
}

// ModuleLocalPath reports whether path is modulePath or below it.
func ModuleLocalPath(modulePath, path string) bool {
	if modulePath == "" {
		return false
	}
	return path == modulePath ||
		(len(path) > len(modulePath) && path[:len(modulePath)] == modulePath && path[len(modulePath)] == '/')
}

// factKey identifies one fact.
type factKey struct{ analyzer, object string }

// FactStore accumulates facts across packages within one driver run
// and serializes them for the multi-process `go vet` driver.
type FactStore struct {
	m map[factKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore { return &FactStore{m: make(map[factKey]Fact)} }

func (s *FactStore) put(analyzer, object string, f Fact) {
	s.m[factKey{analyzer, object}] = f
}

func (s *FactStore) get(analyzer, object string) Fact {
	return s.m[factKey{analyzer, object}]
}

// Len returns the number of stored facts (used by tests).
func (s *FactStore) Len() int { return len(s.m) }

// factRecord is the gob wire form of one fact.
type factRecord struct {
	Analyzer string
	Object   string
	Fact     Fact
}

// RegisterFactTypes registers every analyzer's fact prototypes with
// gob, walking the Requires closure (a dependency like rcuflow owns
// facts even when only its dependents are requested). Call once before
// Encode/DecodeInto.
func RegisterFactTypes(analyzers []*Analyzer) {
	seen := make(map[*Analyzer]bool)
	var visit func(a *Analyzer)
	visit = func(a *Analyzer) {
		if seen[a] {
			return
		}
		seen[a] = true
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
		for _, dep := range a.Requires {
			visit(dep)
		}
	}
	for _, a := range analyzers {
		visit(a)
	}
}

// Encode serializes the whole store (deterministically ordered).
func (s *FactStore) Encode() ([]byte, error) {
	recs := make([]factRecord, 0, len(s.m))
	for k, f := range s.m {
		recs = append(recs, factRecord{Analyzer: k.analyzer, Object: k.object, Fact: f})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Analyzer != recs[j].Analyzer {
			return recs[i].Analyzer < recs[j].Analyzer
		}
		return recs[i].Object < recs[j].Object
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(recs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeInto merges serialized facts into the store. Empty input is a
// valid empty fact set.
func (s *FactStore) DecodeInto(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var recs []factRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&recs); err != nil {
		return err
	}
	for _, r := range recs {
		s.put(r.Analyzer, r.Object, r.Fact)
	}
	return nil
}

// PackageInput is one type-checked package handed to RunAnalyzers.
type PackageInput struct {
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	ModulePath string
}

// RunAnalyzers runs the analyzers (plus their Requires closure, in
// dependency order) over one package, sharing facts through store.
// Diagnostics from suppressed lines are dropped; malformed
// suppression directives are themselves reported (analyzer
// "rplint/allow" — see suppress.go).
func RunAnalyzers(in PackageInput, analyzers []*Analyzer, store *FactStore) ([]Diagnostic, error) {
	order, err := topoSort(analyzers)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	results := make(map[*Analyzer]any)
	for _, a := range order {
		pass := &Pass{
			Analyzer:   a,
			Fset:       in.Fset,
			Files:      in.Files,
			Pkg:        in.Pkg,
			Info:       in.Info,
			ModulePath: in.ModulePath,
			ResultOf:   results,
			facts:      store,
			diags:      &diags,
		}
		res, err := a.Run(pass)
		if err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, in.Pkg.Path(), err)
		}
		results[a] = res
	}
	known := make(map[string]bool, len(order))
	for _, a := range order {
		known[a.Name] = true
	}
	return applySuppressions(in.Fset, in.Files, known, diags), nil
}

// topoSort orders analyzers so that every Requires entry precedes its
// dependents, detecting cycles.
func topoSort(analyzers []*Analyzer) ([]*Analyzer, error) {
	var order []*Analyzer
	state := make(map[*Analyzer]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(a *Analyzer) error
	visit = func(a *Analyzer) error {
		switch state[a] {
		case 1:
			return fmt.Errorf("analyzer dependency cycle through %s", a.Name)
		case 2:
			return nil
		}
		state[a] = 1
		for _, dep := range a.Requires {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[a] = 2
		order = append(order, a)
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	return order, nil
}
