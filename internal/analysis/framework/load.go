// Package loading for the standalone rplint driver. The x/tools
// go/packages loader is unavailable (zero external dependencies), so
// this loader shells out to `go list -export -deps`, type-checks the
// module's own packages from source, and resolves every import —
// stdlib and module-internal alike — through the compiler's export
// data. `go list -deps` lists dependencies before dependents, which
// is exactly the order cross-package facts need.
package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// LoadedPackage is one module-local package type-checked from source.
type LoadedPackage struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	// DepOnly marks packages pulled in as dependencies of the
	// requested patterns; they are analyzed for facts but their
	// diagnostics are not reported.
	DepOnly bool
}

// Load is the result of LoadModulePackages: the module's packages in
// dependency order, sharing one FileSet.
type Load struct {
	Fset       *token.FileSet
	ModulePath string
	Pkgs       []*LoadedPackage
}

// listEntry is the subset of `go list -json` output the loader reads.
type listEntry struct {
	ImportPath string
	Export     string
	Standard   bool
	Dir        string
	GoFiles    []string
	DepOnly    bool
}

// LoadModulePackages loads the packages matching patterns (plus their
// module-local dependencies) from the module rooted at dir.
func LoadModulePackages(dir string, patterns []string) (*Load, error) {
	modulePath, err := goListModule(dir)
	if err != nil {
		return nil, err
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Export,Standard,Dir,GoFiles,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exportFile := make(map[string]string)
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if e.Export != "" {
			exportFile[e.ImportPath] = e.Export
		}
		entries = append(entries, e)
	}

	fset := token.NewFileSet()
	imp := ExportDataImporter(fset, exportFile)
	l := &Load{Fset: fset, ModulePath: modulePath}
	for _, e := range entries {
		if e.Standard || !ModuleLocalPath(modulePath, e.ImportPath) {
			continue
		}
		files := make([]string, len(e.GoFiles))
		for i, f := range e.GoFiles {
			files[i] = filepath.Join(e.Dir, f)
		}
		pkg, info, asts, err := CheckFromSource(fset, e.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", e.ImportPath, err)
		}
		l.Pkgs = append(l.Pkgs, &LoadedPackage{
			ImportPath: e.ImportPath,
			Dir:        e.Dir,
			Files:      asts,
			Pkg:        pkg,
			Info:       info,
			DepOnly:    e.DepOnly,
		})
	}
	return l, nil
}

// goListModule returns the module path of the module rooted at dir.
func goListModule(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// ExportDataImporter returns a types.Importer that resolves import
// paths through compiler export data files (path -> filename). The gc
// importer caches, so one importer should serve a whole run.
func ExportDataImporter(fset *token.FileSet, exportFile map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exportFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// LookupImporter returns a types.Importer over caller-supplied export
// data: importMap rewrites source-level import paths (vendoring, test
// variants) and lookup opens the export data for a resolved path. This
// is the importer shape `go vet` tool mode needs, where cmd/go hands
// the tool both maps in vet.cfg.
func LookupImporter(fset *token.FileSet, importMap map[string]string, lookup func(path string) (io.ReadCloser, error)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		return lookup(path)
	})
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Instances:  make(map[*ast.Ident]types.Instance),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// CheckFromSource parses and type-checks one package from its source
// files, resolving imports through imp.
func CheckFromSource(fset *token.FileSet, importPath string, files []string, imp types.Importer) (*types.Package, *types.Info, []*ast.File, error) {
	var asts []*ast.File
	for _, f := range files {
		a, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		asts = append(asts, a)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, asts, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return pkg, info, asts, nil
}
