// Suppression directives. A deliberate exception to an rplint rule is
// annotated in source as
//
//	//lint:allow rplint/<analyzer> <reason...>
//
// either on the offending line or on a line of its own directly above
// it (a stack of consecutive directive lines covers the first
// non-directive line below the stack). The reason is mandatory: a
// directive without one, or one naming an unknown analyzer, is itself
// reported (as analyzer "allow"), so the suppression inventory stays
// auditable — every exception carries its justification next to the
// code it exempts.
package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// AllowName is the pseudo-analyzer name under which malformed
// suppression directives are reported.
const AllowName = "allow"

// directivePrefix introduces a suppression comment.
const directivePrefix = "//lint:allow "

// directive is one parsed //lint:allow comment.
type directive struct {
	pos      token.Pos
	line     int
	analyzer string // "" if malformed
	reason   string
	problem  string // non-empty if the directive itself is a finding
}

// parseDirectives extracts every suppression directive from a file.
func parseDirectives(fset *token.FileSet, f *ast.File, known map[string]bool) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			d := directive{pos: c.Pos(), line: fset.Position(c.Pos()).Line}
			rest := strings.TrimSpace(text[len(directivePrefix):])
			name, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			switch {
			case !strings.HasPrefix(name, "rplint/"):
				d.problem = "suppression directive must name an analyzer as rplint/<name>"
			case !known[strings.TrimPrefix(name, "rplint/")]:
				d.problem = "suppression directive names unknown analyzer " + name
			case reason == "":
				d.problem = "suppression of " + name + " requires a reason"
			default:
				d.analyzer = strings.TrimPrefix(name, "rplint/")
				d.reason = reason
			}
			out = append(out, d)
		}
	}
	return out
}

// applySuppressions drops diagnostics covered by a well-formed
// directive and appends a diagnostic for each malformed one. A
// directive covers its own line and the first following line that is
// not itself a directive line (so stacked directives above one
// statement all apply to it).
func applySuppressions(fset *token.FileSet, files []*ast.File, known map[string]bool, diags []Diagnostic) []Diagnostic {
	// suppressed[file][line][analyzer]
	suppressed := make(map[string]map[int]map[string]bool)
	var problems []Diagnostic
	for _, f := range files {
		ds := parseDirectives(fset, f, known)
		if len(ds) == 0 {
			continue
		}
		fname := fset.Position(f.Pos()).Filename
		lines := suppressed[fname]
		if lines == nil {
			lines = make(map[int]map[string]bool)
			suppressed[fname] = lines
		}
		directiveLines := make(map[int]bool, len(ds))
		for _, d := range ds {
			directiveLines[d.line] = true
		}
		for _, d := range ds {
			if d.problem != "" {
				problems = append(problems, Diagnostic{Pos: d.pos, Message: d.problem, Analyzer: AllowName})
				continue
			}
			cover := func(line int) {
				if lines[line] == nil {
					lines[line] = make(map[string]bool)
				}
				lines[line][d.analyzer] = true
			}
			cover(d.line)
			next := d.line + 1
			for directiveLines[next] {
				next++
			}
			cover(next)
		}
	}
	out := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if suppressed[pos.Filename][pos.Line][d.Analyzer] {
			continue
		}
		out = append(out, d)
	}
	return append(out, problems...)
}
