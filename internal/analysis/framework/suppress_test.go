package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parse returns the fset, file, and a helper resolving a source
// substring to its token.Pos.
func parseSrc(t *testing.T, src string) (*token.FileSet, *ast.File, func(sub string) token.Pos) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f, func(sub string) token.Pos {
		off := strings.Index(src, sub)
		if off < 0 {
			t.Fatalf("substring %q not found", sub)
		}
		return fset.File(f.Pos()).Pos(off)
	}
}

var known = map[string]bool{"gracewait": true, "readersection": true}

func TestSuppressSameLineAndLineAbove(t *testing.T) {
	src := `package p

func f() {
	sameLine() //lint:allow rplint/gracewait deliberate baseline design
	//lint:allow rplint/gracewait the next line is exempt too
	lineBelow()
	unrelated()
}
`
	fset, f, at := parseSrc(t, src)
	diags := []Diagnostic{
		{Pos: at("sameLine"), Message: "m1", Analyzer: "gracewait"},
		{Pos: at("lineBelow"), Message: "m2", Analyzer: "gracewait"},
		{Pos: at("unrelated"), Message: "m3", Analyzer: "gracewait"},
	}
	got := applySuppressions(fset, []*ast.File{f}, known, diags)
	if len(got) != 1 || got[0].Message != "m3" {
		t.Fatalf("expected only m3 to survive, got %+v", got)
	}
}

func TestSuppressOnlyNamedAnalyzer(t *testing.T) {
	src := `package p

func f() {
	//lint:allow rplint/gracewait only gracewait is excused here
	both()
}
`
	fset, f, at := parseSrc(t, src)
	diags := []Diagnostic{
		{Pos: at("both"), Message: "g", Analyzer: "gracewait"},
		{Pos: at("both"), Message: "r", Analyzer: "readersection"},
	}
	got := applySuppressions(fset, []*ast.File{f}, known, diags)
	if len(got) != 1 || got[0].Analyzer != "readersection" {
		t.Fatalf("expected only the readersection diagnostic to survive, got %+v", got)
	}
}

func TestSuppressRequiresReason(t *testing.T) {
	src := `package p

func f() {
	//lint:allow rplint/gracewait
	x()
}
`
	fset, f, at := parseSrc(t, src)
	diags := []Diagnostic{{Pos: at("x()"), Message: "m", Analyzer: "gracewait"}}
	got := applySuppressions(fset, []*ast.File{f}, known, diags)
	// The original diagnostic survives (the directive is void) and the
	// directive itself is reported.
	if len(got) != 2 {
		t.Fatalf("expected 2 diagnostics, got %+v", got)
	}
	foundProblem := false
	for _, d := range got {
		if d.Analyzer == AllowName && strings.Contains(d.Message, "requires a reason") {
			foundProblem = true
		}
	}
	if !foundProblem {
		t.Fatalf("missing reason-required finding in %+v", got)
	}
}

func TestSuppressUnknownAnalyzer(t *testing.T) {
	src := `package p

func f() {
	//lint:allow rplint/nosuchcheck because I said so
	x()
}
`
	fset, f, _ := parseSrc(t, src)
	got := applySuppressions(fset, []*ast.File{f}, known, nil)
	if len(got) != 1 || got[0].Analyzer != AllowName || !strings.Contains(got[0].Message, "unknown analyzer") {
		t.Fatalf("expected unknown-analyzer finding, got %+v", got)
	}
}

func TestSuppressBadPrefix(t *testing.T) {
	src := `package p

func f() {
	//lint:allow gracewait missing the rplint/ prefix
	x()
}
`
	fset, f, _ := parseSrc(t, src)
	got := applySuppressions(fset, []*ast.File{f}, known, nil)
	if len(got) != 1 || got[0].Analyzer != AllowName || !strings.Contains(got[0].Message, "rplint/<name>") {
		t.Fatalf("expected bad-prefix finding, got %+v", got)
	}
}
