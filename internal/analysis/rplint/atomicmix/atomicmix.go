// Package atomicmix enforces all-or-nothing atomicity: a struct field
// that is accessed through sync/atomic anywhere in the module must be
// accessed atomically everywhere. A single plain load racing with
// atomic stores is undefined behavior the race detector only catches
// when the schedule cooperates; the analyzer catches it statically,
// across package boundaries, by exporting per-field access facts.
//
// Only function-style sync/atomic calls can mix (atomic.AddInt64(&x.n,
// 1) versus x.n++); the typed atomic.Int64-style fields cannot be
// accessed plainly at all and need no checking. Composite-literal
// initialization is exempt — the struct is unpublished while being
// built.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"rphash/internal/analysis/framework"
)

// maxPositions bounds how many representative positions a fact keeps
// per access kind.
const maxPositions = 4

// FieldUse is the exported per-field fact: representative source
// positions of atomic and plain accesses seen so far.
type FieldUse struct {
	Atomic []string
	Plain  []string
}

// AFact marks FieldUse as a framework fact.
func (*FieldUse) AFact() {}

// Analyzer reports mixed atomic/plain access to the same field.
var Analyzer = &framework.Analyzer{
	Name:      "atomicmix",
	Doc:       "report struct fields accessed both through sync/atomic and by plain loads/stores",
	FactTypes: []framework.Fact{&FieldUse{}},
	Run:       run,
}

// use is one local access to a tracked field.
type use struct {
	pos    token.Pos
	atomic bool
}

func run(pass *framework.Pass) (any, error) {
	// First pass: find the &x.f arguments of function-style sync/atomic
	// calls; those selector nodes are atomic accesses, not plain ones.
	atomicSel := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			// Every function-style sync/atomic API takes the address
			// as its first argument.
			if addr, ok := call.Args[0].(*ast.UnaryExpr); ok && addr.Op == token.AND {
				if target, ok := unparen(addr.X).(*ast.SelectorExpr); ok {
					atomicSel[target] = true
				}
			}
			return true
		})
	}

	// Second pass: classify every field selector of an eligible type.
	uses := make(map[string][]use)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := pass.Info.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			field, ok := s.Obj().(*types.Var)
			if !ok || !eligibleType(field.Type()) {
				return true
			}
			key := fieldKey(pass, s, field)
			if key == "" {
				return true
			}
			uses[key] = append(uses[key], use{pos: sel.Pos(), atomic: atomicSel[sel]})
			return true
		})
	}

	keys := make([]string, 0, len(uses))
	for k := range uses {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	for _, key := range keys {
		var merged FieldUse
		pass.ImportFact(key, &merged)
		importedAtomic := firstOr(merged.Atomic)
		importedPlain := firstOr(merged.Plain)

		var localAtomic, localPlain []use
		for _, u := range uses[key] {
			if u.atomic {
				localAtomic = append(localAtomic, u)
				addPos(&merged.Atomic, pass.Fset.Position(u.pos).String())
			} else {
				localPlain = append(localPlain, u)
				addPos(&merged.Plain, pass.Fset.Position(u.pos).String())
			}
		}

		// Mixed: report at the minority side that is local, preferring
		// plain sites (the atomic side is usually the intended one).
		atomicEvidence := importedAtomic
		if len(localAtomic) > 0 {
			atomicEvidence = pass.Fset.Position(localAtomic[0].pos).String()
		}
		switch {
		case len(localPlain) > 0 && atomicEvidence != "":
			for _, u := range localPlain {
				pass.Reportf(u.pos, "field %s is accessed with sync/atomic (e.g. at %s) but accessed plainly here; mixing atomic and plain access is a data race", key, atomicEvidence)
			}
		case len(localAtomic) > 0 && importedPlain != "":
			for _, u := range localAtomic {
				pass.Reportf(u.pos, "field %s is accessed plainly elsewhere (at %s) but with sync/atomic here; mixing atomic and plain access is a data race", key, importedPlain)
			}
		}
		pass.ExportFact(key, &merged)
	}
	return nil, nil
}

func firstOr(xs []string) string {
	if len(xs) == 0 {
		return ""
	}
	return xs[0]
}

func addPos(xs *[]string, pos string) {
	if len(*xs) < maxPositions {
		*xs = append(*xs, pos)
	}
}

// eligibleType reports whether a field's type can be the operand of a
// function-style sync/atomic call.
func eligibleType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Int32, types.Int64, types.Uint32, types.Uint64, types.Uintptr, types.UnsafePointer:
			return true
		}
	case *types.Pointer:
		return false
	}
	return false
}

// fieldKey builds the stable cross-package key "pkg/path.Type.Field",
// or "" for fields the analyzer does not track (non-module packages,
// anonymous struct types).
func fieldKey(pass *framework.Pass, s *types.Selection, field *types.Var) string {
	if field.Pkg() == nil || !pass.ModuleLocal(field.Pkg().Path()) {
		return ""
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return field.Pkg().Path() + "." + n.Origin().Obj().Name() + "." + field.Name()
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
