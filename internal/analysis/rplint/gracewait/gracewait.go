// Package gracewait enforces the resize-protocol rule from PR 4: no
// stripe lock may be held, and no reader section may be active, while
// waiting for an RCU grace period. A writer inside a grace wait that
// holds a stripe blocks every other writer hashing to that stripe for
// a full grace period; a reader that grace-waits deadlocks against
// itself under QSBR. The analyzer flags:
//
//   - calls that may transitively reach Domain.Synchronize or
//     Domain.Barrier while any tracked mutex is definitely held or a
//     reader section is active;
//   - calls that may reach Domain.Defer while a stripe lock is held or
//     a reader is active (Defer's post-Close fallback degrades to a
//     synchronous grace wait, so the hazard is latent but real).
//
// Plain mutexes are reported too — holding any lock across a grace
// wait couples unrelated critical sections to reader latency — but the
// message distinguishes the two, and deliberate designs (the resize
// mutex, the Xu-style global-lock baseline) carry //lint:allow
// suppressions with their justification.
package gracewait

import (
	"rphash/internal/analysis/framework"
	"rphash/internal/analysis/rplint/rcuflow"
)

// Analyzer reports the grace-wait slice of the rcuflow result.
var Analyzer = &framework.Analyzer{
	Name:     "gracewait",
	Doc:      "report RCU grace-period waits reachable while a stripe lock, mutex, or reader section is held",
	Requires: []*framework.Analyzer{rcuflow.Analyzer},
	Run: func(pass *framework.Pass) (any, error) {
		res := pass.ResultOf[rcuflow.Analyzer].(*rcuflow.Result)
		for _, f := range res.Grace {
			pass.Reportf(f.Pos, "%s", f.Message)
		}
		return nil, nil
	},
}
