// Package rcuflow is the shared flow engine behind the rplint
// analyzers readersection and gracewait. For every function in a
// package it computes a summary — may it block, may it wait for an
// RCU grace period, may it queue an RCU callback, which func-typed
// parameters does it invoke inside a reader section, and which locks
// does it acquire or release on behalf of its caller — by walking the
// function body with a structured, definitely-held lock-state
// analysis. Summaries are exported as facts keyed by stable symbol
// strings ("pkg/path.Type.Method"), so the checks compose across
// package boundaries: internal/cache holding a mutex across a call
// into internal/shard that transitively reaches Domain.Synchronize in
// internal/core is flagged at the cache call site.
//
// The rcu package itself is not analyzed from source; its primitives
// get hand-written summaries (see builtins) because their interiors
// legitimately violate the lexical discipline the engine enforces
// (Domain.Read unlocks its pooled reader from a deferred closure,
// Synchronize spins with sleeps, and so on).
//
// The lock-state model is deliberately "definitely held": state merges
// intersect, loops are analyzed against the intersection of their
// entry and one-iteration-exit states, and acquisitions whose handle
// is discarded are dropped. That trades missed findings for a near
// absence of false positives — the right trade for a lint gate that
// must pass clean on every build.
package rcuflow

import (
	"go/token"
	"go/types"
	"reflect"
	"sort"

	"rphash/internal/analysis/framework"
)

// RCUPkgPath is the import path of the RCU primitives package whose
// API the engine models axiomatically.
const RCUPkgPath = "rphash/internal/rcu"

// Lock kinds, in increasing order of severity for the gracewait rule:
// a plain mutex held across a grace wait is a latency/deadlock hazard,
// a stripe held across one violates the resize protocol outright.
const (
	KindMutex  = "mutex"
	KindStripe = "stripe lock"
)

// Lock effect operations.
const (
	OpAcquire = "acquire"
	OpRelease = "release"
)

// LockEffect describes one lock a function acquires or releases on
// behalf of its caller, rooted at a parameter, the receiver, or a
// result: Root is "recv", "param:N", or "result:N"; Path is the
// selector path from that root to the mutex (".mu", ".held.mu",
// ".locks[].mu", ...).
type LockEffect struct {
	Root string
	Path string
	Kind string
	Op   string
}

// FuncInfo is the exported per-function summary fact.
type FuncInfo struct {
	// Blocks is a non-empty reason if calling the function may block
	// the caller (mutexes, channels, sleeps, I/O, grace waits).
	Blocks string
	// GraceWaits is a non-empty reason if the function may wait for an
	// RCU grace period (Domain.Synchronize/Barrier, transitively).
	GraceWaits string
	// Defers is a non-empty reason if the function may queue an RCU
	// callback via Domain.Defer (whose post-Close fallback waits a
	// grace period synchronously).
	Defers string
	// SectionParams lists the indices of func-typed parameters the
	// function invokes inside an RCU reader section.
	SectionParams []int
	// Lock lists caller-visible lock acquisitions and releases.
	Lock []LockEffect
}

// AFact marks FuncInfo as a framework fact.
func (*FuncInfo) AFact() {}

func (fi *FuncInfo) equal(other *FuncInfo) bool { return reflect.DeepEqual(fi, other) }

// Finding is one site-level problem discovered during the final walk.
type Finding struct {
	Pos     token.Pos
	Message string
}

// Result is what dependent analyzers receive via Pass.ResultOf.
type Result struct {
	// Reader holds readersection findings: blocking operations inside
	// reader sections and Lock/Unlock pairings that do not dominate
	// every exit path.
	Reader []Finding
	// Grace holds gracewait findings: grace-period waits (and Defer
	// calls) reachable while a stripe lock, mutex, or reader section
	// is held.
	Grace []Finding
}

// Analyzer computes the summaries and findings. readersection and
// gracewait depend on it and report their slice of the Result.
var Analyzer = &framework.Analyzer{
	Name:      "rcuflow",
	Doc:       "shared RCU/lock flow summaries for the rplint analyzers (reports nothing itself)",
	FactTypes: []framework.Fact{&FuncInfo{}},
	Run:       run,
}

// builtins are the axiomatic summaries of the rcu package's API.
var builtins = map[string]*FuncInfo{
	RCUPkgPath + ".Domain.Synchronize": {
		Blocks:     "waits for an RCU grace period",
		GraceWaits: "Domain.Synchronize",
	},
	RCUPkgPath + ".Domain.Barrier": {
		Blocks:     "waits for queued RCU callbacks to run",
		GraceWaits: "Domain.Barrier",
		Defers:     "Domain.Barrier",
	},
	RCUPkgPath + ".Domain.Defer": {
		Defers: "Domain.Defer",
	},
	RCUPkgPath + ".Domain.Close": {
		Blocks: "waits for the RCU reclaimer to drain",
	},
	RCUPkgPath + ".Domain.Read": {
		SectionParams: []int{0},
	},
}

// Keys the walker treats as primitive operations rather than calls.
var (
	readerLockKey   = RCUPkgPath + ".Reader.Lock"
	readerUnlockKey = RCUPkgPath + ".Reader.Unlock"
)

// blockingIOPkgs lists packages whose calls count as I/O (and hence
// blocking) inside a reader section.
var blockingIOPkgs = map[string]bool{
	"os": true, "os/exec": true, "net": true, "net/http": true,
	"bufio": true, "io": true, "log": true, "database/sql": true,
}

// fmtBlocking lists the fmt functions that perform I/O (the Sprint
// family is pure).
var fmtBlocking = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Scan": true, "Scanf": true, "Scanln": true,
	"Fscan": true, "Fscanf": true, "Fscanln": true,
}

// FuncKey returns the stable cross-package key for a function or
// method: "pkg/path.Name" or "pkg/path.Recv.Name", always in terms of
// generic origins so instantiations share their origin's summary.
func FuncKey(fn *types.Func) string {
	fn = fn.Origin()
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if n, isNamed := t.(*types.Named); isNamed {
			return pkg + "." + n.Origin().Obj().Name() + "." + fn.Name()
		}
		return pkg + ".?." + fn.Name()
	}
	return pkg + "." + fn.Name()
}

// run drives the per-package fixed point and the final reporting walk.
func run(pass *framework.Pass) (any, error) {
	if pass.Pkg.Path() == RCUPkgPath {
		// The primitives package is modeled axiomatically, not
		// analyzed; its interior is exempt by design.
		return &Result{}, nil
	}
	w := &walker{
		pass:   pass,
		local:  make(map[string]*FuncInfo),
		seen:   make(map[string]bool),
		result: &Result{},
	}
	decls := w.collectFuncs()

	// Fixed point: function summaries feed each other within the
	// package (mutual recursion converges because every summary field
	// only ever gains information).
	for iter := 0; iter < 16; iter++ {
		changed := false
		for _, d := range decls {
			fi := w.analyzeFunc(d, false)
			if prev := w.local[d.key]; prev == nil || !prev.equal(fi) {
				w.local[d.key] = fi
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Final walk with reporting on.
	for _, d := range decls {
		w.analyzeFunc(d, true)
	}
	// Export summaries for dependent packages.
	keys := make([]string, 0, len(w.local))
	for k := range w.local {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pass.ExportFact(k, w.local[k])
	}
	return w.result, nil
}

// resolve finds the summary for a function key: axioms first, then
// this package's fixed point, then imported facts.
func (w *walker) resolve(key string) *FuncInfo {
	if fi, ok := builtins[key]; ok {
		return fi
	}
	if fi, ok := w.local[key]; ok {
		return fi
	}
	var fi FuncInfo
	if w.pass.ImportFact(key, &fi) {
		return &fi
	}
	return nil
}
