package rcuflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"rphash/internal/analysis/framework"
)

// tok identifies a lock by the object at the root of the expression
// that names it plus the selector path down to the mutex: s.mu is
// (s, ".mu"), a.locks[i].mu is (a, ".locks[].mu"). Index expressions
// collapse to "[]" — lockAll/unlockAll sweeps are tracked at array
// granularity, which matches how the resize protocol uses them.
type tok struct {
	root types.Object
	path string
}

func (t tok) String() string {
	name := "?"
	if t.root != nil {
		name = t.root.Name()
	}
	return name + t.path
}

// flowState is the per-program-point analysis state.
type flowState struct {
	reader     int             // RCU reader-section nesting depth
	held       map[tok]string  // definitely-held locks -> kind
	terminated bool            // this path returned/panicked/branched away
}

func newState() *flowState { return &flowState{held: make(map[tok]string)} }

func (st *flowState) clone() *flowState {
	c := &flowState{reader: st.reader, terminated: st.terminated, held: make(map[tok]string, len(st.held))}
	for k, v := range st.held {
		c.held[k] = v
	}
	return c
}

// walker analyzes one package.
type walker struct {
	pass      *framework.Pass
	local     map[string]*FuncInfo
	seen      map[string]bool // finding dedupe across repeated walks
	result    *Result
	reporting bool
	suppress  int // >0 while walking a loop body's silent pre-pass
	commDepth int // >0 while walking a select comm clause's own op
}

// fnCtx is the per-function analysis context.
type fnCtx struct {
	fi       *FuncInfo
	recvObj  types.Object
	params   map[types.Object]int
	bindings map[types.Object]*ast.FuncLit
	walked   map[*ast.FuncLit]bool
	pending  []*ast.FuncLit
	inline   int
}

// frame distinguishes the outer function body from inline-walked
// closures: returns, deferred releases, and summary recording are
// per-frame.
type frame struct {
	fc               *fnCtx
	isLit            bool
	summarize        bool
	entryReader      int
	defReaderUnlocks int
	defReleases      []tok
	exits            []*flowState
}

type declInfo struct {
	key  string
	decl *ast.FuncDecl
}

// collectFuncs gathers the package's function declarations with
// unique keys (init functions collide by name and get a suffix).
func (w *walker) collectFuncs() []declInfo {
	var out []declInfo
	used := make(map[string]int)
	for _, f := range w.pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := w.pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			key := FuncKey(fn)
			if n := used[key]; n > 0 {
				key = key + "#" + strconv.Itoa(n)
			}
			used[FuncKey(fn)]++
			out = append(out, declInfo{key: key, decl: fd})
		}
	}
	return out
}

// analyzeFunc walks one function and returns its summary. With
// reporting set, site findings are recorded into w.result.
func (w *walker) analyzeFunc(d declInfo, reporting bool) *FuncInfo {
	fc := &fnCtx{
		fi:       &FuncInfo{},
		params:   make(map[types.Object]int),
		bindings: make(map[types.Object]*ast.FuncLit),
		walked:   make(map[*ast.FuncLit]bool),
	}
	if r := d.decl.Recv; r != nil && len(r.List) > 0 && len(r.List[0].Names) > 0 {
		fc.recvObj = w.pass.Info.Defs[r.List[0].Names[0]]
	}
	idx := 0
	for _, field := range d.decl.Type.Params.List {
		if len(field.Names) == 0 {
			idx++
			continue
		}
		for _, name := range field.Names {
			fc.params[w.pass.Info.Defs[name]] = idx
			idx++
		}
	}
	w.reporting = reporting
	fr := &frame{fc: fc, summarize: true}
	st := newState()
	w.walkStmts(d.decl.Body.List, st, fr)
	if !st.terminated {
		w.exit(st, nil, d.decl.Body.End(), fr)
	}
	// Closures that were never invoked synchronously (goroutine
	// bodies, stored callbacks) are checked from a fresh state for
	// their own internal consistency; they contribute nothing to the
	// enclosing summary.
	for len(fc.pending) > 0 {
		lit := fc.pending[len(fc.pending)-1]
		fc.pending = fc.pending[:len(fc.pending)-1]
		if fc.walked[lit] {
			continue
		}
		fc.walked[lit] = true
		sub := &frame{fc: fc, isLit: true}
		fst := newState()
		w.walkStmts(lit.Body.List, fst, sub)
		if !fst.terminated {
			w.exit(fst, nil, lit.End(), sub)
		}
	}
	finalize(fc.fi)
	return fc.fi
}

// finalize makes the summary deterministic for convergence checks and
// fact encoding.
func finalize(fi *FuncInfo) {
	sort.Ints(fi.SectionParams)
	fi.SectionParams = dedupInts(fi.SectionParams)
	sort.Slice(fi.Lock, func(i, j int) bool {
		a, b := fi.Lock[i], fi.Lock[j]
		if a.Root != b.Root {
			return a.Root < b.Root
		}
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		return a.Op < b.Op
	})
	fi.Lock = dedupLocks(fi.Lock)
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func dedupLocks(xs []LockEffect) []LockEffect {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func (fc *fnCtx) addLockEffect(e LockEffect) {
	for _, have := range fc.fi.Lock {
		if have == e {
			return
		}
	}
	fc.fi.Lock = append(fc.fi.Lock, e)
}

// ---- findings ----

func (w *walker) findReader(pos token.Pos, msg string) {
	if !w.reporting || w.suppress > 0 {
		return
	}
	key := fmt.Sprintf("%d|%s", pos, msg)
	if w.seen[key] {
		return
	}
	w.seen[key] = true
	w.result.Reader = append(w.result.Reader, Finding{Pos: pos, Message: msg})
}

func (w *walker) findGrace(pos token.Pos, msg string) {
	if !w.reporting || w.suppress > 0 {
		return
	}
	key := fmt.Sprintf("%d|%s", pos, msg)
	if w.seen[key] {
		return
	}
	w.seen[key] = true
	w.result.Grace = append(w.result.Grace, Finding{Pos: pos, Message: msg})
}

// blocking records a may-block operation: it taints the summary and,
// inside a reader section, reports.
func (w *walker) blocking(pos token.Pos, what string, st *flowState, fr *frame) {
	if fr.summarize && fr.fc.fi.Blocks == "" {
		fr.fc.fi.Blocks = what
	}
	if st.reader > 0 {
		w.findReader(pos, "blocking operation inside an RCU reader section: "+what)
	}
}

// ---- state merging ----

// merge joins two branch exits: terminated paths drop out, held sets
// intersect, and a reader-depth disagreement between live paths is the
// "Lock/Unlock does not dominate" pairing finding.
func (w *walker) merge(a, b *flowState, pos token.Pos) *flowState {
	if a.terminated && b.terminated {
		out := a.clone()
		out.terminated = true
		return out
	}
	if a.terminated {
		return b.clone()
	}
	if b.terminated {
		return a.clone()
	}
	out := newState()
	if a.reader != b.reader {
		w.findReader(pos, "RCU reader section held on some paths but not others (Lock/Unlock pairing does not dominate this merge)")
	}
	out.reader = min(a.reader, b.reader)
	for k, v := range a.held {
		if _, ok := b.held[k]; ok {
			out.held[k] = v
		}
	}
	return out
}

func (w *walker) mergeAll(states []*flowState, pos token.Pos) *flowState {
	if len(states) == 0 {
		out := newState()
		out.terminated = true
		return out
	}
	out := states[0].clone()
	for _, s := range states[1:] {
		out = w.merge(out, s, pos)
	}
	return out
}

// ---- statements ----

func (w *walker) walkStmts(list []ast.Stmt, st *flowState, fr *frame) {
	for _, s := range list {
		if st.terminated {
			return
		}
		w.walkStmt(s, st, fr)
	}
}

func (w *walker) walkStmt(s ast.Stmt, st *flowState, fr *frame) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.walkExpr(s.X, st, fr)
	case *ast.SendStmt:
		w.walkExpr(s.Chan, st, fr)
		w.walkExpr(s.Value, st, fr)
		if w.commDepth == 0 {
			w.blocking(s.Pos(), "sends on a channel", st, fr)
		}
	case *ast.IncDecStmt:
		w.walkExpr(s.X, st, fr)
	case *ast.AssignStmt:
		w.walkAssign(s, st, fr)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, v := range vs.Values {
					w.walkExpr(v, st, fr)
					if lit, ok := v.(*ast.FuncLit); ok && i < len(vs.Names) {
						fr.fc.bindings[w.pass.Info.Defs[vs.Names[i]]] = lit
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.walkExpr(r, st, fr)
		}
		w.exit(st, s.Results, s.Pos(), fr)
		st.terminated = true
	case *ast.DeferStmt:
		w.walkDefer(s.Call, st, fr)
	case *ast.GoStmt:
		// Arguments are evaluated synchronously; the call itself runs
		// on a new goroutine with its own reader/lock state.
		for _, a := range s.Call.Args {
			if lit, ok := a.(*ast.FuncLit); ok {
				fr.fc.pending = append(fr.fc.pending, lit)
				continue
			}
			w.walkExpr(a, st, fr)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			fr.fc.pending = append(fr.fc.pending, lit)
		}
	case *ast.BlockStmt:
		w.walkStmts(s.List, st, fr)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st, fr)
		}
		w.walkExpr(s.Cond, st, fr)
		thenSt := st.clone()
		w.walkStmts(s.Body.List, thenSt, fr)
		elseSt := st.clone()
		if s.Else != nil {
			w.walkStmt(s.Else, elseSt, fr)
		}
		*st = *w.merge(thenSt, elseSt, s.Pos())
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st, fr)
		}
		if s.Cond != nil {
			w.walkExpr(s.Cond, st, fr)
		}
		w.walkLoopBody(s.Body, s.Post, st, fr, s.Pos())
	case *ast.RangeStmt:
		w.walkExpr(s.X, st, fr)
		if t := w.typeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				w.blocking(s.Pos(), "receives from a channel", st, fr)
			}
		}
		w.walkLoopBody(s.Body, nil, st, fr, s.Pos())
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st, fr)
		}
		if s.Tag != nil {
			w.walkExpr(s.Tag, st, fr)
		}
		w.walkClauses(s.Body, st, fr, s.Pos(), true)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st, fr)
		}
		w.walkStmt(s.Assign, st, fr)
		w.walkClauses(s.Body, st, fr, s.Pos(), true)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.blocking(s.Pos(), "selects without a default case", st, fr)
		}
		if len(s.Body.List) == 0 {
			st.terminated = true // select{} blocks forever
			return
		}
		var exits []*flowState
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			cSt := st.clone()
			if cc.Comm != nil {
				w.commDepth++
				w.walkStmt(cc.Comm, cSt, fr)
				w.commDepth--
			}
			w.walkStmts(cc.Body, cSt, fr)
			exits = append(exits, cSt)
		}
		*st = *w.mergeAll(exits, s.Pos())
	case *ast.BranchStmt:
		if s.Tok != token.FALLTHROUGH {
			st.terminated = true
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, st, fr)
	}
}

// walkClauses handles switch/type-switch bodies: every clause starts
// from the entry state; with no default the entry state itself is a
// possible exit (no case matched).
func (w *walker) walkClauses(body *ast.BlockStmt, st *flowState, fr *frame, pos token.Pos, includeEntryIfNoDefault bool) {
	hasDefault := false
	var exits []*flowState
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		cSt := st.clone()
		for _, e := range cc.List {
			w.walkExpr(e, cSt, fr)
		}
		w.walkStmts(cc.Body, cSt, fr)
		exits = append(exits, cSt)
	}
	if includeEntryIfNoDefault && !hasDefault {
		exits = append(exits, st.clone())
	}
	if len(exits) == 0 {
		return
	}
	*st = *w.mergeAll(exits, pos)
}

// walkLoopBody analyzes a loop body twice: once silently to learn the
// one-iteration exit state, then for real against the intersection of
// entry and that exit — the definitely-held state at the top of any
// iteration.
func (w *walker) walkLoopBody(body *ast.BlockStmt, post ast.Stmt, st *flowState, fr *frame, pos token.Pos) {
	pre := st.clone()
	w.suppress++
	s1 := pre.clone()
	w.walkStmts(body.List, s1, fr)
	if post != nil && !s1.terminated {
		w.walkStmt(post, s1, fr)
	}
	w.suppress--

	merged := w.intersectLoop(pre, s1, pos)
	s2 := merged.clone()
	w.walkStmts(body.List, s2, fr)
	if post != nil && !s2.terminated {
		w.walkStmt(post, s2, fr)
	}
	*st = *w.intersectLoop(merged, s2, pos)
	st.terminated = false
}

// intersectLoop is merge() without dropping the entry state when the
// body terminated (the loop may run zero times), reporting a pairing
// finding when the body changes the reader depth per iteration.
func (w *walker) intersectLoop(entry, afterBody *flowState, pos token.Pos) *flowState {
	if afterBody.terminated {
		return entry.clone()
	}
	out := newState()
	if entry.reader != afterBody.reader {
		w.findReader(pos, "RCU reader section depth changes across loop iterations (Lock/Unlock pairing is not balanced in the loop body)")
	}
	out.reader = min(entry.reader, afterBody.reader)
	for k, v := range entry.held {
		if _, ok := afterBody.held[k]; ok {
			out.held[k] = v
		}
	}
	return out
}

// exit records one function/closure exit: the reader-balance check and
// (for the outer frame) the summary's caller-visible acquisitions.
func (w *walker) exit(st *flowState, results []ast.Expr, pos token.Pos, fr *frame) {
	eff := st.reader - fr.defReaderUnlocks
	if eff != fr.entryReader {
		what := "function"
		if fr.isLit {
			what = "closure"
		}
		w.findReader(pos, what+" exits with an RCU reader section still open (Reader.Unlock does not dominate this exit path)")
	}
	after := st.clone()
	after.reader = eff
	for _, t := range fr.defReleases {
		delete(after.held, t)
	}
	if fr.summarize && !fr.isLit {
		for t, kind := range after.held {
			if root := w.rootSpec(t.root, results, fr.fc); root != "" {
				fr.fc.addLockEffect(LockEffect{Root: root, Path: t.path, Kind: kind, Op: OpAcquire})
			}
		}
	}
	fr.exits = append(fr.exits, after)
}

// rootSpec maps a token root object to a caller-visible position.
func (w *walker) rootSpec(o types.Object, results []ast.Expr, fc *fnCtx) string {
	if o == nil {
		return ""
	}
	if fc.recvObj != nil && o == fc.recvObj {
		return "recv"
	}
	if idx, ok := fc.params[o]; ok {
		return "param:" + strconv.Itoa(idx)
	}
	for i, r := range results {
		if id, ok := unparen(r).(*ast.Ident); ok && w.pass.Info.Uses[id] == o {
			return "result:" + strconv.Itoa(i)
		}
	}
	return ""
}

// ---- assignments ----

func (w *walker) walkAssign(s *ast.AssignStmt, st *flowState, fr *frame) {
	// f(...) results feeding multiple LHS: lock effects rooted at
	// results attach to the assigned variables.
	if len(s.Rhs) == 1 {
		if call, ok := unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			w.killLHS(s.Lhs, st)
			w.walkCall(call, st, fr, s.Lhs)
			return
		}
	}
	for _, r := range s.Rhs {
		w.walkExpr(r, st, fr)
	}
	// Alias transfer: `w.held = s` re-roots s's held locks at w.held,
	// so a later w.held.mu.Unlock() matches.
	type add struct {
		t    tok
		kind string
	}
	var adds []add
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			lt := w.exprToken(s.Lhs[i])
			rt := w.exprToken(s.Rhs[i])
			if lt == nil || rt == nil {
				continue
			}
			for h, kind := range st.held {
				if h.root == rt.root && strings.HasPrefix(h.path, rt.path) {
					adds = append(adds, add{tok{lt.root, lt.path + h.path[len(rt.path):]}, kind})
				}
			}
		}
	}
	w.killLHS(s.Lhs, st)
	for _, a := range adds {
		st.held[a.t] = a.kind
	}
	// Closure bindings for later inline invocation.
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			lit, ok := s.Rhs[i].(*ast.FuncLit)
			if !ok {
				continue
			}
			id, ok := s.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := w.pass.Info.Defs[id]
			if obj == nil {
				obj = w.pass.Info.Uses[id]
			}
			if obj != nil {
				fr.fc.bindings[obj] = lit
			}
		}
	}
}

// killLHS forgets held locks reached through a just-overwritten
// expression (definitely-held must never survive reassignment).
func (w *walker) killLHS(lhs []ast.Expr, st *flowState) {
	for _, l := range lhs {
		lt := w.exprToken(l)
		if lt == nil {
			continue
		}
		for h := range st.held {
			if h.root == lt.root && strings.HasPrefix(h.path, lt.path) {
				delete(st.held, h)
			}
		}
	}
}

// ---- defer ----

func (w *walker) walkDefer(call *ast.CallExpr, st *flowState, fr *frame) {
	for _, a := range call.Args {
		w.walkExpr(a, st, fr)
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		// A deferred closure's releases count at every exit; scan its
		// body for unlocks (the rcu.Domain.Read shape).
		fr.fc.walked[lit] = true
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			w.applyDeferredCall(c, fr)
			return true
		})
		return
	}
	w.applyDeferredCall(call, fr)
}

// applyDeferredCall records the lock/reader releases a deferred call
// performs at function exit.
func (w *walker) applyDeferredCall(call *ast.CallExpr, fr *frame) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn := w.methodOf(sel)
	if fn == nil {
		return
	}
	key := FuncKey(fn)
	switch key {
	case readerUnlockKey:
		fr.defReaderUnlocks++
		return
	case "sync.Mutex.Unlock", "sync.RWMutex.Unlock", "sync.RWMutex.RUnlock":
		if t := w.exprToken(sel.X); t != nil {
			fr.defReleases = append(fr.defReleases, *t)
		}
		return
	}
	if fi := w.resolve(key); fi != nil {
		for _, eff := range fi.Lock {
			if eff.Op != OpRelease || eff.Root != "recv" {
				continue
			}
			if t := w.exprToken(sel.X); t != nil {
				fr.defReleases = append(fr.defReleases, tok{t.root, t.path + eff.Path})
			}
		}
	}
}

// ---- expressions ----

func (w *walker) walkExpr(e ast.Expr, st *flowState, fr *frame) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.walkCall(e, st, fr, nil)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW && w.commDepth == 0 {
			w.blocking(e.Pos(), "receives from a channel", st, fr)
		}
		w.walkExpr(e.X, st, fr)
	case *ast.FuncLit:
		fr.fc.pending = append(fr.fc.pending, e)
	case *ast.BinaryExpr:
		w.walkExpr(e.X, st, fr)
		w.walkExpr(e.Y, st, fr)
	case *ast.ParenExpr:
		w.walkExpr(e.X, st, fr)
	case *ast.StarExpr:
		w.walkExpr(e.X, st, fr)
	case *ast.SelectorExpr:
		w.walkExpr(e.X, st, fr)
	case *ast.IndexExpr:
		w.walkExpr(e.X, st, fr)
		w.walkExpr(e.Index, st, fr)
	case *ast.IndexListExpr:
		w.walkExpr(e.X, st, fr)
	case *ast.SliceExpr:
		w.walkExpr(e.X, st, fr)
		w.walkExpr(e.Low, st, fr)
		w.walkExpr(e.High, st, fr)
		w.walkExpr(e.Max, st, fr)
	case *ast.TypeAssertExpr:
		w.walkExpr(e.X, st, fr)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.walkExpr(kv.Value, st, fr)
				continue
			}
			w.walkExpr(el, st, fr)
		}
	}
}

// inlineLit walks a closure invoked synchronously at this point,
// sharing the caller's state. readerBump is 1 when the closure runs
// inside a reader section entered by the callee (Domain.Read).
func (w *walker) inlineLit(lit *ast.FuncLit, st *flowState, fr *frame, readerBump int) {
	fc := fr.fc
	if fc.inline > 8 {
		return
	}
	fc.inline++
	fc.walked[lit] = true
	st.reader += readerBump
	sub := &frame{fc: fc, isLit: true, summarize: fr.summarize, entryReader: st.reader}
	w.walkStmts(lit.Body.List, st, sub)
	var states []*flowState
	if !st.terminated {
		fall := st.clone()
		fall.reader -= sub.defReaderUnlocks
		for _, t := range sub.defReleases {
			delete(fall.held, t)
		}
		states = append(states, fall)
	}
	states = append(states, sub.exits...)
	merged := w.mergeAll(states, lit.End())
	*st = *merged
	st.terminated = false
	st.reader -= readerBump
	if st.reader < 0 {
		st.reader = 0
	}
	fc.inline--
}

// methodOf resolves a selector to the *types.Func it calls, or nil.
func (w *walker) methodOf(sel *ast.SelectorExpr) *types.Func {
	if s := w.pass.Info.Selections[sel]; s != nil {
		if fn, ok := s.Obj().(*types.Func); ok {
			return fn
		}
		return nil
	}
	if fn, ok := w.pass.Info.Uses[sel.Sel].(*types.Func); ok {
		return fn
	}
	return nil
}

// walkCall analyzes one call expression. results, when non-nil, are
// the assignment LHS the call's values flow into (for result-rooted
// lock effects).
func (w *walker) walkCall(call *ast.CallExpr, st *flowState, fr *frame, results []ast.Expr) {
	fc := fr.fc
	// Type conversions are not calls.
	if tv, ok := w.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		for _, a := range call.Args {
			w.walkExpr(a, st, fr)
		}
		return
	}
	fun := unparen(call.Fun)
	// Explicit generic instantiation f[T](...).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		if w.isFuncExpr(ix.X) {
			fun = unparen(ix.X)
		}
	case *ast.IndexListExpr:
		if w.isFuncExpr(ix.X) {
			fun = unparen(ix.X)
		}
	}

	var fn *types.Func
	var recvExpr ast.Expr
	switch f := fun.(type) {
	case *ast.FuncLit:
		for _, a := range call.Args {
			w.walkExpr(a, st, fr)
		}
		w.inlineLit(f, st, fr, 0)
		return
	case *ast.Ident:
		obj := w.pass.Info.Uses[f]
		switch o := obj.(type) {
		case *types.Builtin, nil:
			for _, a := range call.Args {
				w.walkExpr(a, st, fr)
			}
			if f.Name == "panic" {
				st.terminated = true
			}
			return
		case *types.Var:
			for _, a := range call.Args {
				w.walkExpr(a, st, fr)
			}
			if idx, ok := fc.params[o]; ok {
				// Invoking a func-typed parameter inside a reader
				// section makes it a section param of this function.
				if st.reader > 0 && fr.summarize {
					fc.fi.SectionParams = append(fc.fi.SectionParams, idx)
				}
				return
			}
			if lit := fc.bindings[o]; lit != nil {
				w.inlineLit(lit, st, fr, 0)
			}
			return
		case *types.Func:
			fn = o
		default:
			for _, a := range call.Args {
				w.walkExpr(a, st, fr)
			}
			return
		}
	case *ast.SelectorExpr:
		fn = w.methodOf(f)
		if fn == nil {
			w.walkExpr(f.X, st, fr)
			for _, a := range call.Args {
				w.walkExpr(a, st, fr)
			}
			return
		}
		if w.pass.Info.Selections[f] != nil {
			recvExpr = f.X
		}
	default:
		w.walkExpr(fun, st, fr)
		for _, a := range call.Args {
			w.walkExpr(a, st, fr)
		}
		return
	}

	key := FuncKey(fn)
	fi := w.resolve(key)

	if recvExpr != nil {
		w.walkExpr(recvExpr, st, fr)
	}
	// Arguments: closures at section-param positions run inside the
	// callee's reader section; everything else is evaluated normally.
	secParam := make(map[int]bool)
	if fi != nil {
		for _, i := range fi.SectionParams {
			secParam[i] = true
		}
	}
	for i, a := range call.Args {
		if lit, ok := a.(*ast.FuncLit); ok {
			if secParam[i] {
				w.inlineLit(lit, st, fr, 1)
			} else {
				fc.pending = append(fc.pending, lit)
			}
			continue
		}
		w.walkExpr(a, st, fr)
		if !secParam[i] {
			continue
		}
		if id, ok := unparen(a).(*ast.Ident); ok {
			switch o := w.pass.Info.Uses[id].(type) {
			case *types.Func:
				if afi := w.resolve(FuncKey(o)); afi != nil && afi.Blocks != "" {
					w.findReader(a.Pos(), fmt.Sprintf(
						"%s may block (%s) and is passed as a callback invoked inside an RCU reader section", shortKey(FuncKey(o)), afi.Blocks))
				}
			case *types.Var:
				if idx, ok := fc.params[o]; ok && fr.summarize {
					fc.fi.SectionParams = append(fc.fi.SectionParams, idx)
				} else if lit := fc.bindings[o]; lit != nil {
					w.inlineLit(lit, st, fr, 1)
				}
			}
		}
	}

	// RCU reader and sync primitives.
	switch key {
	case readerLockKey:
		st.reader++
		return
	case readerUnlockKey:
		if st.reader > 0 {
			st.reader--
		} else {
			w.findReader(call.Pos(), "Reader.Unlock without a Reader.Lock that dominates it")
		}
		return
	case "sync.Mutex.Lock", "sync.RWMutex.Lock", "sync.RWMutex.RLock":
		w.blocking(call.Pos(), "acquires a mutex", st, fr)
		w.acquireMutex(recvExpr, st)
		return
	case "sync.Mutex.TryLock", "sync.RWMutex.TryLock", "sync.RWMutex.TryRLock":
		w.acquireMutex(recvExpr, st) // modeled as acquired, never blocks
		return
	case "sync.Mutex.Unlock", "sync.RWMutex.Unlock", "sync.RWMutex.RUnlock":
		w.releaseMutex(recvExpr, st, fr)
		return
	case "sync.WaitGroup.Wait":
		w.blocking(call.Pos(), "waits on a WaitGroup", st, fr)
		return
	case "sync.Cond.Wait":
		w.blocking(call.Pos(), "waits on a sync.Cond", st, fr)
		return
	case "time.Sleep":
		w.blocking(call.Pos(), "sleeps", st, fr)
		return
	}
	if p := fn.Pkg(); p != nil {
		if blockingIOPkgs[p.Path()] || (p.Path() == "fmt" && fmtBlocking[fn.Name()]) {
			w.blocking(call.Pos(), "performs I/O via "+p.Path()+"."+fn.Name(), st, fr)
			return
		}
	}

	if fi == nil {
		return
	}
	w.applySummary(call, key, fi, st, fr, recvExpr, results)
}

// applySummary applies a resolved callee summary at the call site.
func (w *walker) applySummary(call *ast.CallExpr, key string, fi *FuncInfo, st *flowState, fr *frame, recvExpr ast.Expr, results []ast.Expr) {
	fc := fr.fc
	short := shortKey(key)
	if fi.Blocks != "" {
		if fr.summarize && fc.fi.Blocks == "" {
			fc.fi.Blocks = "calls " + short + ", which " + fi.Blocks
		}
		if st.reader > 0 {
			w.findReader(call.Pos(), fmt.Sprintf("call to %s may block inside an RCU reader section (%s)", short, fi.Blocks))
		}
	}
	if fi.GraceWaits != "" {
		if fr.summarize && fc.fi.GraceWaits == "" {
			fc.fi.GraceWaits = "via " + short
		}
		if st.reader > 0 {
			w.findGrace(call.Pos(), fmt.Sprintf("%s may wait for an RCU grace period (%s) while an RCU reader section is active", short, fi.GraceWaits))
		}
		for _, h := range sortedHeld(st.held) {
			w.findGrace(call.Pos(), fmt.Sprintf("%s may wait for an RCU grace period (%s) while %s %q is held", short, fi.GraceWaits, st.held[h], h.String()))
		}
	}
	if fi.Defers != "" {
		if fr.summarize && fc.fi.Defers == "" {
			fc.fi.Defers = "via " + short
		}
		for _, h := range sortedHeld(st.held) {
			if st.held[h] == KindStripe {
				w.findGrace(call.Pos(), fmt.Sprintf("%s queues an RCU callback (%s; the post-Close fallback waits a grace period synchronously) while stripe lock %q is held", short, fi.Defers, h.String()))
			}
		}
	}
	for _, eff := range fi.Lock {
		var base *tok
		switch {
		case eff.Root == "recv" && recvExpr != nil:
			base = w.exprToken(recvExpr)
		case strings.HasPrefix(eff.Root, "param:"):
			if n, err := strconv.Atoi(eff.Root[len("param:"):]); err == nil && n < len(call.Args) {
				base = w.exprToken(call.Args[n])
			}
		case strings.HasPrefix(eff.Root, "result:"):
			if n, err := strconv.Atoi(eff.Root[len("result:"):]); err == nil && n < len(results) {
				base = w.exprToken(results[n])
			}
		}
		if base == nil {
			continue
		}
		t := tok{base.root, base.path + eff.Path}
		if eff.Op == OpAcquire {
			st.held[t] = eff.Kind
		} else {
			delete(st.held, t)
		}
	}
}

func sortedHeld(held map[tok]string) []tok {
	out := make([]tok, 0, len(held))
	for t := range held {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// acquireMutex marks the mutex named by ownerExpr (e.g. s.mu) held.
func (w *walker) acquireMutex(ownerExpr ast.Expr, st *flowState) {
	if ownerExpr == nil {
		return
	}
	t := w.exprToken(ownerExpr)
	if t == nil {
		return
	}
	st.held[*t] = w.kindOf(ownerExpr)
}

// releaseMutex clears a held mutex; unlocking one this function never
// acquired is a caller-visible release (recorded in the summary).
func (w *walker) releaseMutex(ownerExpr ast.Expr, st *flowState, fr *frame) {
	if ownerExpr == nil {
		return
	}
	t := w.exprToken(ownerExpr)
	if t == nil {
		return
	}
	if _, ok := st.held[*t]; ok {
		delete(st.held, *t)
		return
	}
	if fr.summarize {
		if root := w.rootSpec(t.root, nil, fr.fc); root != "" {
			fr.fc.addLockEffect(LockEffect{Root: root, Path: t.path, Kind: w.kindOf(ownerExpr), Op: OpRelease})
		}
	}
}

// ---- tokens and types ----

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func (w *walker) exprToken(e ast.Expr) *tok {
	e = unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		obj := w.pass.Info.Uses[e]
		if obj == nil {
			obj = w.pass.Info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok {
			return &tok{root: v}
		}
		return nil
	case *ast.SelectorExpr:
		p := w.exprToken(e.X)
		if p == nil {
			return nil
		}
		return &tok{p.root, p.path + "." + e.Sel.Name}
	case *ast.IndexExpr:
		p := w.exprToken(e.X)
		if p == nil {
			return nil
		}
		return &tok{p.root, p.path + "[]"}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return w.exprToken(e.X)
		}
	case *ast.StarExpr:
		return w.exprToken(e.X)
	}
	return nil
}

func (w *walker) typeOf(e ast.Expr) types.Type {
	if tv, ok := w.pass.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := w.pass.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := w.pass.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// kindOf classifies a lock by walking the owner expression chain: any
// component whose named type mentions "stripe" makes it a stripe lock.
func (w *walker) kindOf(ownerExpr ast.Expr) string {
	e := ownerExpr
	for {
		e = unparen(e)
		if isStripeType(w.typeOf(e)) {
			return KindStripe
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return KindMutex
		}
	}
}

func isStripeType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return strings.Contains(strings.ToLower(n.Origin().Obj().Name()), "stripe")
}

// isFuncExpr reports whether e denotes a function (for unwrapping
// explicit generic instantiations).
func (w *walker) isFuncExpr(e ast.Expr) bool {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		_, ok := w.pass.Info.Uses[x].(*types.Func)
		return ok
	case *ast.SelectorExpr:
		return w.methodOf(x) != nil
	}
	return false
}

// shortKey trims a fact key to its last two-or-three components for
// messages: "rphash/internal/core.Table.Resize" -> "core.Table.Resize".
func shortKey(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}
