// Package readersection reports blocking operations performed inside
// an RCU reader-side critical section — between rcu.Reader.Lock and
// Unlock, or inside a closure run by rcu.Domain.Read — and Lock/Unlock
// pairings that do not dominate every exit path. Readers on the rphash
// fast path must never block: a stalled reader stalls every grace
// period behind it, which stalls resizes and memory reclamation for
// the whole table.
//
// Blocking operations are channel sends/receives, selects without a
// default, mutex acquisition, WaitGroup/Cond waits, time.Sleep, calls
// into I/O packages, and any call whose transitive summary says it may
// block (including Domain.Synchronize, the classic self-deadlock).
package readersection

import (
	"rphash/internal/analysis/framework"
	"rphash/internal/analysis/rplint/rcuflow"
)

// Analyzer reports the reader-section slice of the rcuflow result.
var Analyzer = &framework.Analyzer{
	Name:     "readersection",
	Doc:      "report blocking operations and unbalanced Lock/Unlock pairs inside RCU reader sections",
	Requires: []*framework.Analyzer{rcuflow.Analyzer},
	Run: func(pass *framework.Pass) (any, error) {
		res := pass.ResultOf[rcuflow.Analyzer].(*rcuflow.Result)
		for _, f := range res.Reader {
			pass.Reportf(f.Pos, "%s", f.Message)
		}
		return nil, nil
	},
}
