// Package rplint is the registry of the project's custom static
// analyzers. Three checks enforce the concurrency disciplines the
// relativistic hash table depends on but the compiler cannot see:
//
//   - readersection: RCU readers must not block, and Reader.Lock /
//     Unlock must pair on every path.
//   - gracewait: nothing may wait for a grace period while holding a
//     stripe lock (or any mutex) or while inside a reader section.
//   - atomicmix: a field touched through sync/atomic anywhere must be
//     accessed atomically everywhere.
//
// Run via `make lint`, standalone (`rplint ./...`), or as a go vet
// tool (`go vet -vettool=bin/rplint ./...`). Deliberate exceptions use
// `//lint:allow rplint/<name> <reason>`; the reason is mandatory.
package rplint

import (
	"rphash/internal/analysis/framework"
	"rphash/internal/analysis/rplint/atomicmix"
	"rphash/internal/analysis/rplint/gracewait"
	"rphash/internal/analysis/rplint/readersection"
)

// Analyzers returns the full rplint suite in a deterministic order.
func Analyzers() []*framework.Analyzer {
	return []*framework.Analyzer{
		readersection.Analyzer,
		gracewait.Analyzer,
		atomicmix.Analyzer,
	}
}
