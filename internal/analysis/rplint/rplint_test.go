package rplint_test

import (
	"testing"

	"rphash/internal/analysis/atest"
	"rphash/internal/analysis/framework"
	"rphash/internal/analysis/rplint"
	"rphash/internal/analysis/rplint/atomicmix"
	"rphash/internal/analysis/rplint/gracewait"
	"rphash/internal/analysis/rplint/readersection"
)

func TestReaderSection(t *testing.T) {
	atest.Run(t, "testdata", "readertest", []*framework.Analyzer{readersection.Analyzer})
}

func TestGraceWait(t *testing.T) {
	atest.Run(t, "testdata", "gracetest", []*framework.Analyzer{gracewait.Analyzer})
}

func TestAtomicMix(t *testing.T) {
	// Loading atomicuser pulls in atomicinner first, so facts flow
	// across the package boundary in both directions.
	atest.Run(t, "testdata", "rphash/atomicuser", []*framework.Analyzer{atomicmix.Analyzer})
}

func TestAtomicMixCASPublish(t *testing.T) {
	// The lock-free write fast path's shapes: CAS-published
	// unsafe.Pointer heads, CompareAndSwap state machines, and epoch
	// counters must be all-atomic; one plain peek is flagged.
	atest.Run(t, "testdata", "rphash/caspub", []*framework.Analyzer{atomicmix.Analyzer})
}

func TestRegistry(t *testing.T) {
	as := rplint.Analyzers()
	if len(as) != 3 {
		t.Fatalf("expected 3 analyzers, got %d", len(as))
	}
	names := map[string]bool{}
	for _, a := range as {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing metadata", a.Name)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
}
