// Package gracetest exercises the gracewait analyzer: grace-period
// waits while holding stripe locks or mutexes, or inside reader
// sections, are flagged; dropping the lock first, or Defer under a
// plain mutex, is not.
package gracetest

import (
	"sync"

	"rphash/internal/rcu"
)

// stripeLock matches the stripe-kind heuristic by name.
type stripeLock struct {
	mu  sync.Mutex
	pad [6]uint64
}

type table struct {
	d       *rcu.Domain
	mu      sync.Mutex
	stripes []stripeLock
}

func syncUnderStripe(t *table, i int) {
	t.stripes[i].mu.Lock()
	t.d.Synchronize() // want `while stripe lock`
	t.stripes[i].mu.Unlock()
}

func syncUnderMutex(t *table) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.d.Synchronize() // want `while mutex`
}

func syncInReader(t *table) {
	r := t.d.Reader()
	r.Lock()
	t.d.Synchronize() // want `while an RCU reader section is active`
	r.Unlock()
}

func deferUnderStripe(t *table, i int) {
	t.stripes[i].mu.Lock()
	t.d.Defer(func() {}) // want `queues an RCU callback`
	t.stripes[i].mu.Unlock()
}

func barrierUnderStripe(t *table, i int) {
	t.stripes[i].mu.Lock()
	t.d.Barrier() // want `may wait for an RCU grace period` `queues an RCU callback`
	t.stripes[i].mu.Unlock()
}

// reclaim grace-waits; its callers inherit the hazard through the
// exported summary.
func reclaim(t *table) {
	t.d.Synchronize()
}

func transitive(t *table) {
	t.mu.Lock()
	reclaim(t) // want `may wait for an RCU grace period`
	t.mu.Unlock()
}

// lockStripe acquires on behalf of the caller; the held state must
// survive the call boundary and flag the later Synchronize.
func lockStripe(t *table, i int) {
	t.stripes[i].mu.Lock()
}

func crossCallHeld(t *table, i int) {
	lockStripe(t, i)
	t.d.Synchronize() // want `while stripe lock`
	t.stripes[i].mu.Unlock()
}

// ---- allowed cases: no diagnostics expected below ----

// dropping the stripe before waiting is the sanctioned protocol.
func unlockFirst(t *table, i int) {
	t.stripes[i].mu.Lock()
	t.stripes[i].mu.Unlock()
	t.d.Synchronize()
}

// Defer under a plain mutex is fine: only stripes (and readers) make
// the deferred-callback fallback hazardous.
func deferUnderMutex(t *table) {
	t.mu.Lock()
	t.d.Defer(func() {})
	t.mu.Unlock()
}

// a conditionally released stripe is not definitely held afterwards.
func conditionalRelease(t *table, i int, flag bool) {
	t.stripes[i].mu.Lock()
	if flag {
		t.stripes[i].mu.Unlock()
		t.d.Synchronize()
		return
	}
	t.stripes[i].mu.Unlock()
}

// a deliberate exception carries its justification.
func suppressed(t *table) {
	t.mu.Lock()
	//lint:allow rplint/gracewait baseline design waits for the grace period under the global lock on purpose
	t.d.Synchronize()
	t.mu.Unlock()
}
