// Package readertest exercises the readersection analyzer: blocking
// operations inside reader sections are flagged, balanced sections and
// non-blocking work are not.
package readertest

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"rphash/internal/rcu"
)

var sink string

func sleepInSection(d *rcu.Domain) {
	r := d.Reader()
	r.Lock()
	time.Sleep(time.Millisecond) // want `blocking operation inside an RCU reader section: sleeps`
	r.Unlock()
}

func sendInRead(d *rcu.Domain, ch chan int) {
	d.Read(func() {
		ch <- 1 // want `sends on a channel`
	})
}

func recvInSection(d *rcu.Domain, ch chan int) int {
	r := d.Reader()
	r.Lock()
	v := <-ch // want `receives from a channel`
	r.Unlock()
	return v
}

func mutexInSection(d *rcu.Domain, mu *sync.Mutex) {
	r := d.Reader()
	r.Lock()
	mu.Lock() // want `acquires a mutex`
	mu.Unlock()
	r.Unlock()
}

func selectNoDefaultInRead(d *rcu.Domain, ch chan int) {
	d.Read(func() {
		select { // want `selects without a default case`
		case <-ch:
		}
	})
}

func printInSection(d *rcu.Domain) {
	r := d.Reader()
	r.Lock()
	fmt.Println("inside") // want `performs I/O via fmt.Println`
	r.Unlock()
}

// slowHelper blocks; calling it inside a section is flagged at the
// call site through the function summary.
func slowHelper() {
	time.Sleep(time.Millisecond)
}

func transitiveBlock(d *rcu.Domain) {
	d.Read(func() {
		slowHelper() // want `call to readertest.slowHelper may block`
	})
}

func earlyReturn(d *rcu.Domain, cond bool) {
	r := d.Reader()
	r.Lock()
	if cond {
		return // want `exits with an RCU reader section still open`
	}
	r.Unlock()
}

func unlockWithoutLock(r *rcu.Reader) {
	r.Unlock() // want `Reader.Unlock without a Reader.Lock that dominates it`
}

func lockOnOneBranch(d *rcu.Domain, cond bool) {
	r := d.Reader()
	if cond { // want `held on some paths but not others`
		r.Lock()
	}
	r.Unlock() // want `Reader.Unlock without a Reader.Lock that dominates it`
}

// ---- allowed cases: no diagnostics expected below ----

// balanced sections, including deferred unlock and the deferred
// closure shape Domain.Read itself uses.
func balanced(d *rcu.Domain) {
	r := d.Reader()
	r.Lock()
	sink = "x"
	r.Unlock()
}

func balancedDefer(d *rcu.Domain) {
	r := d.Reader()
	r.Lock()
	defer r.Unlock()
	sink = "x"
}

func balancedDeferClosure(d *rcu.Domain) {
	r := d.Reader()
	r.Lock()
	defer func() {
		r.Unlock()
	}()
	sink = "x"
}

// TryLock never blocks.
func tryLockInSection(d *rcu.Domain, mu *sync.Mutex) {
	r := d.Reader()
	r.Lock()
	if mu.TryLock() {
		mu.Unlock()
	}
	r.Unlock()
}

// select with a default polls instead of blocking.
func selectWithDefault(d *rcu.Domain, ch chan int) {
	d.Read(func() {
		select {
		case <-ch:
		default:
		}
	})
}

// Sprintf is pure; only the printing fmt functions count as I/O.
func sprintfInSection(d *rcu.Domain) {
	d.Read(func() {
		sink = fmt.Sprintf("%d", 42)
	})
}

// blocking before and after the section is fine.
func blockOutsideSection(d *rcu.Domain, ch chan int) {
	<-ch
	r := d.Reader()
	r.Lock()
	sink = "x"
	r.Unlock()
	ch <- 1
}

// a loop that locks and unlocks per iteration stays balanced.
func loopBalanced(d *rcu.Domain, n int) {
	r := d.Reader()
	for i := 0; i < n; i++ {
		r.Lock()
		sink = "x"
		r.Unlock()
	}
}

// ---- lock-free write fast path shapes ----

// casPublishInSection models the CAS insert: walk and publish on the
// bucket head happen inside the reader section. Atomic operations
// never block, so the section stays legal.
func casPublishInSection(d *rcu.Domain, head *unsafe.Pointer, n unsafe.Pointer) bool {
	r := d.Reader()
	r.Lock()
	old := atomic.LoadPointer(head)
	ok := atomic.CompareAndSwapPointer(head, old, n)
	r.Unlock()
	return ok
}

// casRetryLoopInSection keeps retrying the head CAS without leaving
// the section, like tryInsertCAS's bounded loop; still non-blocking.
func casRetryLoopInSection(d *rcu.Domain, head *unsafe.Pointer, n unsafe.Pointer) bool {
	r := d.Reader()
	r.Lock()
	defer r.Unlock()
	for i := 0; i < 4; i++ {
		old := atomic.LoadPointer(head)
		if atomic.CompareAndSwapPointer(head, old, n) {
			return true
		}
	}
	return false
}

// stripedFallbackAfterSection is the required fallback discipline:
// the fast path leaves the reader section before taking the stripe
// mutex, so the lock acquisition is outside the section and fine.
func stripedFallbackAfterSection(d *rcu.Domain, mu *sync.Mutex) {
	r := d.Reader()
	r.Lock()
	sink = "probe"
	r.Unlock()
	mu.Lock()
	sink = "fallback"
	mu.Unlock()
}

// stripedFallbackInSection takes the stripe mutex with the section
// still open — a stalled stripe holder would then stall every grace
// period behind this reader, so it is flagged.
func stripedFallbackInSection(d *rcu.Domain, mu *sync.Mutex) {
	r := d.Reader()
	r.Lock()
	mu.Lock() // want `acquires a mutex`
	sink = "fallback"
	mu.Unlock()
	r.Unlock()
}
