// Package readertest exercises the readersection analyzer: blocking
// operations inside reader sections are flagged, balanced sections and
// non-blocking work are not.
package readertest

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"rphash/internal/rcu"
)

var sink string

func sleepInSection(d *rcu.Domain) {
	r := d.Reader()
	r.Lock()
	time.Sleep(time.Millisecond) // want `blocking operation inside an RCU reader section: sleeps`
	r.Unlock()
}

func sendInRead(d *rcu.Domain, ch chan int) {
	d.Read(func() {
		ch <- 1 // want `sends on a channel`
	})
}

func recvInSection(d *rcu.Domain, ch chan int) int {
	r := d.Reader()
	r.Lock()
	v := <-ch // want `receives from a channel`
	r.Unlock()
	return v
}

func mutexInSection(d *rcu.Domain, mu *sync.Mutex) {
	r := d.Reader()
	r.Lock()
	mu.Lock() // want `acquires a mutex`
	mu.Unlock()
	r.Unlock()
}

func selectNoDefaultInRead(d *rcu.Domain, ch chan int) {
	d.Read(func() {
		select { // want `selects without a default case`
		case <-ch:
		}
	})
}

func printInSection(d *rcu.Domain) {
	r := d.Reader()
	r.Lock()
	fmt.Println("inside") // want `performs I/O via fmt.Println`
	r.Unlock()
}

// slowHelper blocks; calling it inside a section is flagged at the
// call site through the function summary.
func slowHelper() {
	time.Sleep(time.Millisecond)
}

func transitiveBlock(d *rcu.Domain) {
	d.Read(func() {
		slowHelper() // want `call to readertest.slowHelper may block`
	})
}

func earlyReturn(d *rcu.Domain, cond bool) {
	r := d.Reader()
	r.Lock()
	if cond {
		return // want `exits with an RCU reader section still open`
	}
	r.Unlock()
}

func unlockWithoutLock(r *rcu.Reader) {
	r.Unlock() // want `Reader.Unlock without a Reader.Lock that dominates it`
}

func lockOnOneBranch(d *rcu.Domain, cond bool) {
	r := d.Reader()
	if cond { // want `held on some paths but not others`
		r.Lock()
	}
	r.Unlock() // want `Reader.Unlock without a Reader.Lock that dominates it`
}

// ---- allowed cases: no diagnostics expected below ----

// balanced sections, including deferred unlock and the deferred
// closure shape Domain.Read itself uses.
func balanced(d *rcu.Domain) {
	r := d.Reader()
	r.Lock()
	sink = "x"
	r.Unlock()
}

func balancedDefer(d *rcu.Domain) {
	r := d.Reader()
	r.Lock()
	defer r.Unlock()
	sink = "x"
}

func balancedDeferClosure(d *rcu.Domain) {
	r := d.Reader()
	r.Lock()
	defer func() {
		r.Unlock()
	}()
	sink = "x"
}

// TryLock never blocks.
func tryLockInSection(d *rcu.Domain, mu *sync.Mutex) {
	r := d.Reader()
	r.Lock()
	if mu.TryLock() {
		mu.Unlock()
	}
	r.Unlock()
}

// select with a default polls instead of blocking.
func selectWithDefault(d *rcu.Domain, ch chan int) {
	d.Read(func() {
		select {
		case <-ch:
		default:
		}
	})
}

// Sprintf is pure; only the printing fmt functions count as I/O.
func sprintfInSection(d *rcu.Domain) {
	d.Read(func() {
		sink = fmt.Sprintf("%d", 42)
	})
}

// blocking before and after the section is fine.
func blockOutsideSection(d *rcu.Domain, ch chan int) {
	<-ch
	r := d.Reader()
	r.Lock()
	sink = "x"
	r.Unlock()
	ch <- 1
}

// a loop that locks and unlocks per iteration stays balanced.
func loopBalanced(d *rcu.Domain, n int) {
	r := d.Reader()
	for i := 0; i < n; i++ {
		r.Lock()
		sink = "x"
		r.Unlock()
	}
}

// ---- lock-free write fast path shapes ----

// casPublishInSection models the CAS insert: walk and publish on the
// bucket head happen inside the reader section. Atomic operations
// never block, so the section stays legal.
func casPublishInSection(d *rcu.Domain, head *unsafe.Pointer, n unsafe.Pointer) bool {
	r := d.Reader()
	r.Lock()
	old := atomic.LoadPointer(head)
	ok := atomic.CompareAndSwapPointer(head, old, n)
	r.Unlock()
	return ok
}

// casRetryLoopInSection keeps retrying the head CAS without leaving
// the section, like tryInsertCAS's bounded loop; still non-blocking.
func casRetryLoopInSection(d *rcu.Domain, head *unsafe.Pointer, n unsafe.Pointer) bool {
	r := d.Reader()
	r.Lock()
	defer r.Unlock()
	for i := 0; i < 4; i++ {
		old := atomic.LoadPointer(head)
		if atomic.CompareAndSwapPointer(head, old, n) {
			return true
		}
	}
	return false
}

// stripedFallbackAfterSection is the required fallback discipline:
// the fast path leaves the reader section before taking the stripe
// mutex, so the lock acquisition is outside the section and fine.
func stripedFallbackAfterSection(d *rcu.Domain, mu *sync.Mutex) {
	r := d.Reader()
	r.Lock()
	sink = "probe"
	r.Unlock()
	mu.Lock()
	sink = "fallback"
	mu.Unlock()
}

// stripedFallbackInSection takes the stripe mutex with the section
// still open — a stalled stripe holder would then stall every grace
// period behind this reader, so it is flagged.
func stripedFallbackInSection(d *rcu.Domain, mu *sync.Mutex) {
	r := d.Reader()
	r.Lock()
	mu.Lock() // want `acquires a mutex`
	sink = "fallback"
	mu.Unlock()
	r.Unlock()
}

// ---- flat-engine epoch-routed read shapes ----

// flatView models the copy-based resize's routing state: a published
// view whose per-unit migrated flags steer each read to the old or
// new group array.
type flatView struct {
	mask     uint64
	tags     []uint64 // one packed tag word per group (atomic in the engine)
	migrated []uint32
	prev     *flatView
}

var tagSink uint64

// epochRoutedReadInSection is the flat engine's lookup: load the
// routing flag, pick a view, load that group's tag word — all atomic
// loads inside the section, so nothing blocks and nothing is flagged.
// This is the shape the copy-based resize depends on: readers route,
// they never migrate.
func epochRoutedReadInSection(d *rcu.Domain, v *flatView, h uint64) {
	r := d.Reader()
	r.Lock()
	g := v
	if p := v.prev; p != nil && atomic.LoadUint32(&v.migrated[h&v.mask]) == 0 {
		g = p
	}
	tagSink = atomic.LoadUint64(&g.tags[h&g.mask])
	r.Unlock()
}

// routedRetryLoopInSection re-reads the routing flag until the view
// settles, like a reader racing the migration pass; a bounded atomic
// retry loop never blocks.
func routedRetryLoopInSection(d *rcu.Domain, v *flatView, h uint64) {
	r := d.Reader()
	r.Lock()
	defer r.Unlock()
	for i := 0; i < 4; i++ {
		if atomic.LoadUint32(&v.migrated[h&v.mask]) != 0 {
			tagSink = atomic.LoadUint64(&v.tags[h&v.mask])
			return
		}
	}
}

// migrateOnReadInSection is the forbidden variant: a reader that finds
// an unmigrated unit and tries to migrate it itself must take the
// unit's stripe — a mutex acquisition inside the section, flagged.
// Migration belongs to writers (migrate-on-write runs before the
// reader section opens) and to the resize pass.
func migrateOnReadInSection(d *rcu.Domain, v *flatView, mu *sync.Mutex, h uint64) {
	r := d.Reader()
	r.Lock()
	if atomic.LoadUint32(&v.migrated[h&v.mask]) == 0 {
		mu.Lock() // want `acquires a mutex`
		atomic.StoreUint32(&v.migrated[h&v.mask], 1)
		mu.Unlock()
	}
	r.Unlock()
}
