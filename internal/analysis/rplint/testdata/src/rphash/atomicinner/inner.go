// Package atomicinner declares counters accessed through sync/atomic
// (and one accessed only plainly), exporting per-field access facts
// for the cross-package half of the atomicmix test.
package atomicinner

import "sync/atomic"

// Counter mixes field disciplines on purpose.
type Counter struct {
	N int64 // atomic here, plain in atomicuser: flagged there
	M int64 // plain everywhere: fine
	P int64 // atomic and plain in this package: flagged here
	Q int64 // plain here, atomic in atomicuser: flagged there
}

// Inc and Get keep N strictly atomic inside this package.
func (c *Counter) Inc() { atomic.AddInt64(&c.N, 1) }

// Get loads N atomically.
func (c *Counter) Get() int64 { return atomic.LoadInt64(&c.N) }

// NewCounter initializes by composite literal, which is exempt: the
// struct is unpublished while being built.
func NewCounter() *Counter { return &Counter{N: 0, M: 0} }

// AddM only ever touches M plainly; with no atomic access anywhere it
// is not flagged.
func (c *Counter) AddM(v int64) { c.M += v }

// Mixed races against Inc-style atomics within one package.
func (c *Counter) Mixed() int64 {
	atomic.AddInt64(&c.P, 1)
	return c.P // want `mixing atomic and plain access is a data race`
}

// TouchQ accesses Q plainly; the atomic side lives in atomicuser.
func (c *Counter) TouchQ() { c.Q = 1 }
