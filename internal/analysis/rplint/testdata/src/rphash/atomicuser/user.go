// Package atomicuser exercises both cross-package directions of the
// atomicmix check against the facts exported by atomicinner.
package atomicuser

import (
	"sync/atomic"

	"rphash/atomicinner"
)

// Bump races against atomicinner's atomic.AddInt64 on N.
func Bump(c *atomicinner.Counter) {
	c.N++ // want `accessed with sync/atomic .* but accessed plainly here`
}

// BumpQ is atomic here, but atomicinner touches Q plainly.
func BumpQ(c *atomicinner.Counter) {
	atomic.AddInt64(&c.Q, 1) // want `accessed plainly elsewhere`
}

// ReadM is fine: M is plain everywhere.
func ReadM(c *atomicinner.Counter) int64 {
	return c.M
}

// GetViaAPI is fine: it uses the atomic accessors.
func GetViaAPI(c *atomicinner.Counter) int64 {
	return c.Get()
}
