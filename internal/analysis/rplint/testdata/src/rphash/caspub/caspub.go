// Package caspub models the lock-free write fast path's atomic
// shapes for the atomicmix analyzer: CAS publication on an
// unsafe.Pointer bucket head, a CompareAndSwap-driven node state
// machine, and an epoch generation counter. Fields kept strictly
// under function-style sync/atomic draw no diagnostics; a single
// plain peek at any of them is the data race the analyzer exists to
// catch.
package caspub

import (
	"sync/atomic"
	"unsafe"
)

// bucket mirrors the fast path's hot fields on function-style atomic
// operands (basic types, not the atomic.Uint32 wrappers, which the
// type system already keeps honest).
type bucket struct {
	head  unsafe.Pointer // chain head, CAS-published
	state uint32         // speculative -> committed -> consumed
	epoch uint64         // resize generation, validated after CAS
	depth int64          // plain everywhere: not the analyzer's business
}

// publish CASes a new node onto the chain head, retry-loop style.
func (b *bucket) publish(n unsafe.Pointer) bool {
	for i := 0; i < 4; i++ {
		old := atomic.LoadPointer(&b.head)
		if atomic.CompareAndSwapPointer(&b.head, old, n) {
			return true
		}
	}
	return false
}

// commit races the resize path for the speculative->committed edge.
func (b *bucket) commit() bool {
	return atomic.CompareAndSwapUint32(&b.state, 1, 2)
}

// consume marks the node dead unconditionally, unlink-style.
func (b *bucket) consume() { atomic.StoreUint32(&b.state, 3) }

// validate re-reads the epoch after a successful CAS.
func (b *bucket) validate(e uint64) bool {
	return atomic.LoadUint64(&b.epoch) == e
}

// bumpEpoch is the writer side of the generation counter.
func (b *bucket) bumpEpoch() { atomic.AddUint64(&b.epoch, 1) }

// peek reads the CAS-published head plainly: a racing publish makes
// this load undefined, so it is flagged.
func (b *bucket) peek() unsafe.Pointer {
	return b.head // want `accessed with sync/atomic .* but accessed plainly here`
}

// quickState short-circuits the state machine with a plain load: the
// exact bug the consumed-mark check would hide at runtime.
func (b *bucket) quickState() bool {
	return b.state == 2 // want `accessed with sync/atomic .* but accessed plainly here`
}

// staleEpochWrite resets the generation without atomics: flagged.
func (b *bucket) staleEpochWrite() {
	b.epoch = 0 // want `accessed with sync/atomic .* but accessed plainly here`
}

// plainDepth never touches sync/atomic, so plain access is fine.
func (b *bucket) plainDepth() int64 {
	b.depth++
	return b.depth
}

// newBucket initializes by composite literal, exempt while
// unpublished.
func newBucket() *bucket {
	return &bucket{state: 1, depth: 0}
}

var _ = newBucket
