// Package flattag models the flat bucket engine's tag-word shapes for
// the atomicmix analyzer: the packed 8-bit hash-tag word that the read
// path scans with one atomic load, and the retiring bitmask that keeps
// a cleared cell's value box alive across the grace period. Both words
// carry function-style sync/atomic traffic from readers, writers, and
// deferred reclaimers at once — the exact mixed-use surface where one
// plain peek (a "quick" occupancy check, a non-atomic bit clear) is a
// data race the schedule rarely exposes. Strictly-atomic access draws
// no diagnostics; each plain touch is flagged.
package flattag

import "sync/atomic"

// group mirrors the flat engine's per-bucket header on basic-typed
// fields (the real engine uses atomic.Uint64 wrappers, which the type
// system already keeps honest; these are the function-style
// equivalents the analyzer has to police).
type group struct {
	tags     uint64 // packed nonzero tag bytes; 0 = empty cell
	retiring uint64 // cleared-cell bits awaiting grace-period reclaim
	probes   int64  // plain everywhere: stats, not the analyzer's business
}

// scan is the reader: one acquire load of the whole tag word, then a
// SWAR candidate scan on the copy. The local word is plain data — only
// the field access must be atomic.
func (g *group) scan(tag byte) int {
	tags := atomic.LoadUint64(&g.tags)
	for i := 0; i < 8; i++ {
		if byte(tags>>(8*uint(i))) == tag {
			return i
		}
	}
	return -1
}

// publish is the writer's release store: cell contents are written
// first, then the new tag byte makes the cell visible.
func (g *group) publish(tags uint64) { atomic.StoreUint64(&g.tags, tags) }

// retire marks a cleared cell's bit so concurrent inserts will not
// reuse the cell before its value box is reclaimed.
func (g *group) retire(cell uint) { atomic.OrUint64(&g.retiring, 1<<cell) }

// reclaim is the deferred half: the bit clears only after a grace
// period, with release ordering against the value-box nil store.
func (g *group) reclaim(cell uint) { atomic.AndUint64(&g.retiring, ^uint64(1<<cell)) }

// quickEmpty short-circuits the occupancy check with a plain load:
// a racing publish makes the read undefined, so it is flagged.
func (g *group) quickEmpty() bool {
	return g.tags == 0 // want `accessed with sync/atomic .* but accessed plainly here`
}

// clearAll resets the tag word without atomics — the "it's under the
// stripe lock anyway" shortcut that readers never see consistently.
func (g *group) clearAll() {
	g.tags = 0 // want `accessed with sync/atomic .* but accessed plainly here`
}

// retiringPeek checks a retire bit plainly; racing Or/And traffic
// makes it undefined, so it is flagged.
func (g *group) retiringPeek(cell uint) bool {
	return g.retiring&(1<<cell) != 0 // want `accessed with sync/atomic .* but accessed plainly here`
}

// bumpProbes never touches sync/atomic, so plain access is fine.
func (g *group) bumpProbes() int64 {
	g.probes++
	return g.probes
}

// newGroup initializes by composite literal, exempt while unpublished.
func newGroup() *group { return &group{tags: 0, retiring: 0} }

var _ = newGroup
