// Package rcu is a testdata stand-in sharing the real RCU package's
// import path, so the rcuflow builtin summaries (keyed by
// "rphash/internal/rcu.<Type>.<Method>") apply to testdata code. The
// bodies are irrelevant: rcuflow never analyzes this package.
package rcu

// Reader is a per-goroutine reader handle.
type Reader struct{ _ int }

// Lock enters a reader-side critical section.
func (r *Reader) Lock() {}

// Unlock leaves a reader-side critical section.
func (r *Reader) Unlock() {}

// Domain is an RCU domain.
type Domain struct{ _ int }

// NewDomain returns a new domain.
func NewDomain() *Domain { return &Domain{} }

// Reader returns a reader handle.
func (d *Domain) Reader() *Reader { return &Reader{} }

// Read runs fn inside a reader section.
func (d *Domain) Read(fn func()) { fn() }

// Synchronize waits for a grace period.
func (d *Domain) Synchronize() {}

// Defer queues fn to run after a grace period.
func (d *Domain) Defer(fn func()) {}

// Barrier waits for all queued callbacks.
func (d *Domain) Barrier() {}

// Close shuts the domain down.
func (d *Domain) Close() {}
