package bench

import (
	"runtime"
	"time"

	"rphash/internal/core"
	"rphash/internal/stats"
	"rphash/internal/xu"
)

// Ablations quantify the design choices DESIGN.md calls out:
//
//	A1  read-side flavor: EBR delimited readers vs QSBR readers —
//	    what the paper's kernel-RCU read side buys over a userspace
//	    epoch scheme, per lookup.
//	A2  unzip batching: one grace period per pass (the paper's
//	    choice) vs one per cut — resize latency and grace-period
//	    count for the same expansion.
//	A3  load factor: fixed-table lookup throughput as chains grow —
//	    the "why resize at all" motivation (constant-time lookups
//	    need load kept near 1).
//	A4  node memory: bytes per element for the unzip table (one next
//	    pointer) vs the Xu-style table (two next pointers), the
//	    paper's memory-overhead critique, measured from the live
//	    heap.
//	A5  writer locking: upsert throughput vs concurrent writers for
//	    ONE table with striped per-bucket writer locks (the default)
//	    against the same table pinned to a single writer mutex
//	    (WithStripes(1) — the paper's writer model and this repo's
//	    pre-striping behavior). The figure-5-style sweep that shows
//	    what pushing the lock down to bucket granularity buys, with
//	    the read side and resize choreography held constant.

// AblationReadFlavor (A1) measures single-reader and N-reader lookup
// throughput for both reader flavors on a fixed table.
func AblationReadFlavor(cfg Config) stats.Figure {
	cfg.fillDefaults()
	return stats.Figure{
		Title:  "Ablation A1: read-side flavor (EBR delimited vs QSBR)",
		XLabel: "readers",
		YLabel: "lookups/second (millions)",
		Series: []stats.Series{
			measureSeries("RP-ebr", func() Engine { return NewRP(cfg.SmallBuckets) }, false, cfg),
			measureSeries("RP-qsbr", func() Engine { return NewRPQSBR(cfg.SmallBuckets) }, false, cfg),
		},
	}
}

// UnzipBatchingResult is one row of ablation A2.
type UnzipBatchingResult struct {
	Mode         string
	Keys         uint64
	FromBuckets  uint64
	ToBuckets    uint64
	Elapsed      time.Duration
	GracePeriods uint64
	UnzipPasses  uint64
	UnzipCuts    uint64
}

// AblationUnzipBatching (A2) expands a table once in each mode and
// reports resize latency and grace-period counts.
func AblationUnzipBatching(keys, buckets uint64) []UnzipBatchingResult {
	if keys == 0 {
		keys = 16384
	}
	if buckets == 0 {
		buckets = 4096
	}
	var out []UnzipBatchingResult
	for _, mode := range []struct {
		name string
		opts []core.Option
	}{
		{"batched (paper)", nil},
		{"grace-per-cut", []core.Option{core.WithUnzipGracePerCut()}},
	} {
		opts := append([]core.Option{core.WithInitialBuckets(buckets)}, mode.opts...)
		t := core.NewUint64[int](opts...)
		for i := uint64(0); i < keys; i++ {
			t.Set(i, int(i))
		}
		// A background reader population makes grace periods real.
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			h := t.NewReadHandle()
			defer h.Close()
			var k uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				k++
				h.Get(k % keys)
			}
		}()

		gpBefore := t.Domain().Stats().GracePeriods
		start := time.Now()
		t.ExpandOnce()
		elapsed := time.Since(start)
		gpAfter := t.Domain().Stats().GracePeriods
		st := t.Stats()
		close(stop)
		<-done
		out = append(out, UnzipBatchingResult{
			Mode:         mode.name,
			Keys:         keys,
			FromBuckets:  buckets,
			ToBuckets:    buckets * 2,
			Elapsed:      elapsed,
			GracePeriods: gpAfter - gpBefore,
			UnzipPasses:  st.UnzipPasses,
			UnzipCuts:    st.UnzipCuts,
		})
		t.Close()
	}
	return out
}

// AblationLoadFactor (A3) sweeps elements-per-bucket on a fixed-size
// table and reports lookup throughput at a fixed reader count.
func AblationLoadFactor(cfg Config, readers int) stats.Figure {
	cfg.fillDefaults()
	fig := stats.Figure{
		Title:  "Ablation A3: lookup throughput vs load factor (fixed table)",
		XLabel: "load factor",
		YLabel: "lookups/second (millions)",
	}
	s := stats.Series{Name: "RP"}
	const buckets = 4096
	for _, load := range []uint64{1, 2, 4, 8, 16} {
		c := cfg
		c.Keys = buckets * load
		c.KeySpace = 2 * c.Keys
		c.SmallBuckets = buckets
		e := NewRPQSBR(buckets)
		Preload(e, c)
		ops := MeasureLookups(e, readers, false, c)
		e.Close()
		s.Add(float64(load), ops/1e6)
	}
	fig.Series = []stats.Series{s}
	return fig
}

// AblationStripedLocking (A5) sweeps concurrent writer counts over a
// single table in both writer-lock configurations. The single-mutex
// baseline stays runnable here (and as the `rp-1lock` engine)
// precisely so the striped scheme's win is measured, not asserted.
func AblationStripedLocking(cfg Config) stats.Figure {
	cfg.fillDefaults()
	return stats.Figure{
		Title:  "Ablation A5: writer locking (striped per-bucket vs single mutex, one table)",
		XLabel: "writers",
		YLabel: "upserts/second (millions)",
		Series: []stats.Series{
			measureWriteSeries("RP-striped", func() Engine { return NewRP(cfg.SmallBuckets) }, cfg),
			measureWriteSeries("RP-1lock", func() Engine { return NewRPSingleLock(cfg.SmallBuckets) }, cfg),
		},
	}
}

// NodeMemoryResult is one row of ablation A4.
type NodeMemoryResult struct {
	Table        string
	Keys         int
	BytesPerElem float64
}

// AblationNodeMemory (A4) measures live-heap bytes per element for
// the single-pointer unzip table versus the two-pointer Xu table.
func AblationNodeMemory(keys int) []NodeMemoryResult {
	if keys <= 0 {
		keys = 1 << 20
	}
	measure := func(name string, build func() (insert func(uint64), close func())) NodeMemoryResult {
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		insert, closeFn := build()
		for i := 0; i < keys; i++ {
			insert(uint64(i))
		}
		runtime.GC()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		res := NodeMemoryResult{
			Table:        name,
			Keys:         keys,
			BytesPerElem: float64(after.HeapAlloc-before.HeapAlloc) / float64(keys),
		}
		closeFn()
		return res
	}

	var out []NodeMemoryResult
	{
		var t *core.Table[uint64, int]
		out = append(out, measure("RP unzip (1 next ptr)", func() (func(uint64), func()) {
			// A4 prices the node layout, so inserts are pinned to the
			// striped path: the CAS fast path builds identical nodes
			// but cycles pooled RCU readers, whose transient
			// allocations (amplified hugely under -race, where
			// sync.Pool drops a quarter of all Puts) would pollute a
			// per-element measurement with write-path machinery.
			t = core.NewUint64[int](core.WithInitialBuckets(uint64(keys)),
				core.WithCASInsert(false))
			return func(k uint64) { t.Set(k, 0) }, t.Close
		}))
	}
	{
		var t *xu.Table[uint64, int]
		out = append(out, measure("Xu two-pointer", func() (func(uint64), func()) {
			t = xu.NewUint64[int](uint64(keys))
			return func(k uint64) { t.Set(k, 0) }, t.Close
		}))
	}
	// The flat engine side by side (same keys, same striped-insert
	// pinning — it has no CAS path to pin away): sparse is the fig5
	// configuration (one 8-cell group per key, mostly empty cells),
	// dense sizes groups for 100% inline occupancy. Chains pay per
	// element; flat pays per group — the pair brackets the layout.
	for _, cfgRow := range []struct {
		name   string
		groups uint64
	}{
		{"flat sparse (1 grp/key)", uint64(keys)},
		{"flat dense (8 keys/grp)", uint64(keys) / 8},
	} {
		groups := cfgRow.groups
		var t *core.Table[uint64, int]
		out = append(out, measure(cfgRow.name, func() (func(uint64), func()) {
			t = core.NewUint64[int](core.WithInitialBuckets(groups),
				core.WithEngine(core.EngineFlat))
			return func(k uint64) { t.Set(k, 0) }, t.Close
		}))
	}
	return out
}
