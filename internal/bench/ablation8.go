package bench

import (
	"runtime"
	"sync"
	"time"

	"rphash/internal/core"
	"rphash/internal/stats"
	"rphash/internal/workload"
)

// Ablation A8: the flat bucket engine vs the chain engine.
//
// A8 is the head-to-head the engine seam exists to enable: the same
// core.Table, the same RCU domain, the same striped writer model —
// only the bucket representation differs. Three throughput workloads
// at 1..N threads:
//
//   - read-uniform: pure lookups, uniform keys over 2x the preload
//     (50% hit ratio). The single-thread point is the headline: a
//     chain lookup is a pointer chase per probed node, a flat lookup
//     is one tag-word scan over contiguous cells — the cache-locality
//     win Maier et al. report for flat layouts, reproduced under a
//     relativistic read side.
//   - read-zipf: pure lookups, Zipf(1.1)-skewed keys. Skew
//     concentrates probes on a few buckets, which keeps them resident
//     in cache for BOTH engines — it bounds how much of the uniform
//     gap is layout and how much is working-set size.
//   - mixed: lookups and upserts concurrently (threads readers plus
//     ceil(threads/2) writers); reported as combined ops/s. The flat
//     engine has no lock-free write fast path (its copy-based
//     migration makes stripe-serialized value publishes mandatory),
//     so this is where its write-side cost shows.
//
// The memory rows reuse the A4 live-heap methodology (GC, insert,
// GC, delta/keys) at load factor 1: the chain engine pays one
// 48-byte node plus a bucket-head slot per element; the flat engine
// pays its cell geometry — sparse (one 8-cell group per key, the
// fig5 configuration) and dense (groups sized to 100% cell
// occupancy) bracket the range.
const AblationFlatEngineID = 8

// FlatEngineResult is one throughput row of ablation A8 (JSON tags
// match the BENCH_ablation8.json format).
type FlatEngineResult struct {
	Workload string  `json:"workload"` // read-uniform | read-zipf | mixed
	Engine   string  `json:"engine"`   // chain | flat
	Threads  int     `json:"threads"`
	OpsPerS  float64 `json:"ops_per_sec"`
}

// FlatMemoryResult is one memory row of ablation A8.
type FlatMemoryResult struct {
	Config       string  `json:"config"` // chain | flat-sparse | flat-dense
	Keys         int     `json:"keys"`
	BytesPerElem float64 `json:"bytes_per_elem"`
}

// Ablation8Result is the complete A8 output.
type Ablation8Result struct {
	Throughput []FlatEngineResult `json:"throughput"`
	Memory     []FlatMemoryResult `json:"memory"`
}

// AblationFlatEngine (A8) runs the chain-vs-flat sweep. threads
// defaults to {1, 2, 4, 8}.
func AblationFlatEngine(cfg Config, threads []int) Ablation8Result {
	cfg.fillDefaults()
	if len(threads) == 0 {
		threads = []int{1, 2, 4, 8}
	}
	engines := []struct {
		name string
		mk   func() Engine
	}{
		{"chain", func() Engine { return NewRP(cfg.SmallBuckets) }},
		{"flat", func() Engine { return NewRPFlat(cfg.SmallBuckets) }},
	}
	var res Ablation8Result
	for _, eng := range engines {
		for _, n := range threads {
			row := func(workload string, ops float64) {
				res.Throughput = append(res.Throughput, FlatEngineResult{
					Workload: workload, Engine: eng.name, Threads: n, OpsPerS: ops,
				})
			}
			row("read-uniform", bestReads(eng.mk, n, cfg, 0))
			row("read-zipf", bestReads(eng.mk, n, cfg, 1.1))
			row("mixed", bestMixedOps(eng.mk, n, (n+1)/2, cfg))
		}
	}
	res.Memory = flatEngineMemory(int(cfg.SmallBuckets) * 4)
	return res
}

// bestReads is best-of-Repeats pure-lookup throughput at `readers`
// goroutines; skew > 1 draws lookup keys from a Zipf distribution
// with that exponent instead of uniformly.
func bestReads(mk func() Engine, readers int, cfg Config, skew float64) float64 {
	best := 0.0
	for r := 0; r < cfg.Repeats; r++ {
		e := mk()
		Preload(e, cfg)
		if ops := measureReadsSkewed(e, readers, cfg, skew); ops > best {
			best = ops
		}
		e.Close()
	}
	return best
}

// measureReadsSkewed is MeasureLookups with a selectable key
// distribution (the shared harness draws uniformly; A8's zipf arm
// needs skew on the READ side, which no other figure sweeps).
func measureReadsSkewed(e Engine, readers int, cfg Config, skew float64) float64 {
	cfg.fillDefaults()
	counters := stats.NewCounterSet(readers)
	stopWarm := make(chan struct{})
	stop := make(chan struct{})
	start := make(chan struct{})
	var ready, done sync.WaitGroup

	for r := 0; r < readers; r++ {
		ready.Add(1)
		done.Add(1)
		go func(id int) {
			defer done.Done()
			lookup, closeFn := e.NewLookup()
			if closeFn != nil {
				defer closeFn()
			}
			var gen interface{ Key() uint64 }
			if skew > 1 {
				gen = workload.NewZipf(cfg.KeySpace, skew, int64(id)*0x9e3779b9+1)
			} else {
				gen = workload.NewUniform(cfg.KeySpace, uint64(id)*0x9e3779b9+1)
			}
			ready.Done()
			<-start
			for {
				select {
				case <-stopWarm:
					goto measured
				default:
				}
				lookup(gen.Key())
			}
		measured:
			slot := counters.Slot(id)
			var local uint64
			for {
				select {
				case <-stop:
					slot.Add(local)
					return
				default:
				}
				for i := 0; i < 64; i++ {
					lookup(gen.Key())
				}
				local += 64
			}
		}(r)
	}

	ready.Wait()
	close(start)
	time.Sleep(cfg.WarmDuration)
	close(stopWarm)
	t0 := time.Now()
	time.Sleep(cfg.Duration)
	close(stop)
	done.Wait()
	return float64(counters.Total()) / time.Since(t0).Seconds()
}

// bestMixedOps is best-of-Repeats combined (lookups + upserts)
// throughput from the shared mixed harness.
func bestMixedOps(mk func() Engine, readers, writers int, cfg Config) float64 {
	best := 0.0
	for r := 0; r < cfg.Repeats; r++ {
		e := mk()
		Preload(e, cfg)
		m := MeasureMixed(e, readers, writers, cfg)
		if ops := m.LookupsPerS + m.UpsertsPerS; ops > best {
			best = ops
		}
		e.Close()
	}
	return best
}

// flatEngineMemory prices the layouts at load factor 1 with the A4
// live-heap methodology. Inserts ride the striped path on every
// configuration (the chain arm pins WithCASInsert(false), the flat
// engine has no CAS path) so the rows compare storage, not write-path
// machinery.
func flatEngineMemory(keys int) []FlatMemoryResult {
	if keys <= 0 {
		keys = 1 << 18
	}
	measure := func(name string, opts ...core.Option) FlatMemoryResult {
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		t := core.NewUint64[int](opts...)
		for i := 0; i < keys; i++ {
			t.Set(uint64(i), 0)
		}
		runtime.GC()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		res := FlatMemoryResult{
			Config:       name,
			Keys:         keys,
			BytesPerElem: float64(after.HeapAlloc-before.HeapAlloc) / float64(keys),
		}
		t.Close()
		return res
	}
	return []FlatMemoryResult{
		measure("chain", core.WithInitialBuckets(uint64(keys)), core.WithCASInsert(false)),
		measure("flat-sparse", core.WithInitialBuckets(uint64(keys)), core.WithEngine(core.EngineFlat)),
		measure("flat-dense", core.WithInitialBuckets(uint64(keys/flatDenseCellsPerGroup)), core.WithEngine(core.EngineFlat)),
	}
}

// flatDenseCellsPerGroup mirrors the flat engine's group geometry for
// the dense memory row (groups = keys/8 → 100% inline occupancy).
const flatDenseCellsPerGroup = 8
