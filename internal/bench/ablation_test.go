package bench

import (
	"testing"
	"time"
)

func TestAblationReadFlavor(t *testing.T) {
	cfg := tinyCfg()
	cfg.Readers = []int{1}
	cfg.Duration = 15 * time.Millisecond
	cfg.Repeats = 1
	fig := AblationReadFlavor(cfg)
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 1 || s.Points[0].Y <= 0 {
			t.Fatalf("series %q = %+v", s.Name, s.Points)
		}
	}
}

func TestAblationUnzipBatching(t *testing.T) {
	rows := AblationUnzipBatching(2048, 256)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	batched, perCut := rows[0], rows[1]
	if batched.Mode == perCut.Mode {
		t.Fatal("modes not distinct")
	}
	// Per-cut mode must pay at least as many grace periods as cuts;
	// batched mode pays roughly one per pass (ddof: +1 for publish).
	if perCut.GracePeriods < perCut.UnzipCuts {
		t.Fatalf("per-cut: %d grace periods for %d cuts", perCut.GracePeriods, perCut.UnzipCuts)
	}
	if batched.GracePeriods > batched.UnzipPasses+2 {
		t.Fatalf("batched: %d grace periods for %d passes", batched.GracePeriods, batched.UnzipPasses)
	}
	if batched.GracePeriods >= perCut.GracePeriods {
		t.Fatalf("batching did not reduce grace periods: %d vs %d",
			batched.GracePeriods, perCut.GracePeriods)
	}
}

func TestAblationLoadFactor(t *testing.T) {
	cfg := tinyCfg()
	cfg.Duration = 10 * time.Millisecond
	cfg.Repeats = 1
	fig := AblationLoadFactor(cfg, 1)
	if len(fig.Series) != 1 || len(fig.Series[0].Points) != 5 {
		t.Fatalf("unexpected shape: %+v", fig.Series)
	}
	pts := fig.Series[0].Points
	// Deep chains must not be faster than shallow ones (allowing
	// noise, compare the extremes with slack).
	if pts[len(pts)-1].Y > pts[0].Y*1.5 {
		t.Fatalf("load-16 throughput %v suspiciously above load-1 %v",
			pts[len(pts)-1].Y, pts[0].Y)
	}
}

func TestAblationNodeMemory(t *testing.T) {
	rows := AblationNodeMemory(1 << 14)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	rp, xuRow := rows[0], rows[1]
	for _, r := range rows {
		if r.BytesPerElem <= 0 {
			t.Fatalf("non-positive byte measurement: %+v", rows)
		}
	}
	// Flat rows: dense packs 8 keys per group, sparse burns a whole
	// group per key — dense must come in well under sparse.
	sparse, dense := rows[2], rows[3]
	if dense.BytesPerElem >= sparse.BytesPerElem {
		t.Fatalf("flat dense (%0.1f B/elem) not below flat sparse (%0.1f B/elem)",
			dense.BytesPerElem, sparse.BytesPerElem)
	}
	// The Xu node carries an extra next pointer (and its table a
	// second bucket array lifetime); it must not be smaller. The
	// comparison gets 1 B/elem of slack because the RP measurement
	// includes small fixed per-table costs the claim is not about —
	// the CAS insert path keeps a pooled RCU reader and its weak
	// registry entry live (~5 KB total, so well under the slack at
	// this key count) — while the Xu baseline allocates nothing
	// beyond its nodes and bucket arrays.
	if xuRow.BytesPerElem < rp.BytesPerElem-1.0 {
		t.Fatalf("Xu table (%0.1f B/elem) smaller than RP (%0.1f B/elem)",
			xuRow.BytesPerElem, rp.BytesPerElem)
	}
}
