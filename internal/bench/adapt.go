package bench

import (
	"strconv"
	"time"

	"rphash/internal/adapt"
	"rphash/internal/core"
)

// Ablation A6: adaptive maintenance.
//
// A6a (AblationAdaptiveStripes) asks whether the adapt controller
// removes the need to tune the stripe count per workload: it sweeps
// fixed stripe counts over one table under a multi-writer upsert
// load — once with uniform keys, once Zipf-skewed — and runs the
// same load against a table whose stripes start at 1 and are retuned
// at runtime from sampled contention. The acceptance bar is the
// adaptive row landing within a few percent of the best fixed row on
// BOTH workloads, with one configuration.
//
// A6b (AblationParallelUnzip) measures what the migration fan-out
// buys: one doubling of a preloaded table, sequential resizer vs 2/4
// workers, wall time and pass counts reported. Batches on different
// stripes are independent and all workers share each pass's single
// grace period, so the win is pure migration parallelism.

// AdaptiveStripesResult is one row of ablation A6a (JSON tags match
// the BENCH_ablation6.json trajectory format).
type AdaptiveStripesResult struct {
	Workload    string  `json:"workload"` // "uniform" or "zipf"
	Setting     string  `json:"setting"`  // "fixed-N" or "adaptive"
	Writers     int     `json:"writers"`
	UpsertsPerS float64 `json:"ops_per_sec"`
	// EndStripes is the table's stripe count when the run finished —
	// for the adaptive rows, where the controller moved it.
	EndStripes int `json:"end_stripes"`
}

// adaptBenchConfig is the controller configuration the adaptive rows
// run: same thresholds as production, sampled fast enough to
// converge inside a benchmark interval, allowed the full [1, 256]
// range so it must FIND the right count rather than start near it.
func adaptBenchConfig() *adapt.Config {
	cfg := adapt.DefaultConfig()
	cfg.Interval = 10 * time.Millisecond
	cfg.GrowStreak = 1
	cfg.MinStripes = 1
	cfg.MinSamples = 64
	return cfg
}

// AblationAdaptiveStripes (A6a) runs the fixed-vs-adaptive stripe
// sweep at `writers` concurrent writers for each listed fixed count,
// on uniform and Zipf(1.1)-skewed writer key streams.
func AblationAdaptiveStripes(cfg Config, writers int, fixed []int) []AdaptiveStripesResult {
	cfg.fillDefaults()
	if writers <= 0 {
		writers = 8
	}
	if len(fixed) == 0 {
		fixed = []int{1, 4, 16, 64, 256}
	}

	var out []AdaptiveStripesResult
	for _, wl := range []struct {
		name string
		skew float64
	}{
		{"uniform", 0},
		{"zipf", 1.1},
	} {
		c := cfg
		c.WriteSkew = wl.skew
		run := func(setting string, opts ...core.Option) {
			best := 0.0
			endStripes := 0
			for r := 0; r < c.Repeats; r++ {
				t := core.NewUint64[int](append([]core.Option{
					core.WithInitialBuckets(c.SmallBuckets)}, opts...)...)
				e := &rpEngine{t: t}
				Preload(e, c)
				if ops := MeasureUpserts(e, writers, c); ops > best {
					best = ops
					endStripes = t.Stripes()
				}
				e.Close()
			}
			out = append(out, AdaptiveStripesResult{
				Workload: wl.name, Setting: setting, Writers: writers,
				UpsertsPerS: best, EndStripes: endStripes,
			})
		}
		for _, n := range fixed {
			run("fixed-"+strconv.Itoa(n), core.WithStripes(n))
		}
		run("adaptive", core.WithStripes(1), core.WithAdapt(adaptBenchConfig()))
	}
	return out
}

// BestFixed returns the highest fixed-setting throughput for a
// workload in an A6a result set, and the adaptive throughput; used by
// tests and the CLI summary to report the adaptive/best-fixed ratio.
func BestFixed(rows []AdaptiveStripesResult, workload string) (bestFixed, adaptive float64) {
	for _, r := range rows {
		if r.Workload != workload {
			continue
		}
		if r.Setting == "adaptive" {
			adaptive = r.UpsertsPerS
		} else if r.UpsertsPerS > bestFixed {
			bestFixed = r.UpsertsPerS
		}
	}
	return bestFixed, adaptive
}

// ParallelUnzipResult is one row of ablation A6b.
type ParallelUnzipResult struct {
	Workers     int
	Keys        uint64
	FromBuckets uint64
	ToBuckets   uint64
	Elapsed     time.Duration
	UnzipPasses uint64
	UnzipCuts   uint64
	// ParallelPasses confirms the fan-out actually engaged (0 for
	// the sequential row).
	ParallelPasses uint64
}

// AblationParallelUnzip (A6b) expands a preloaded table once per
// worker setting and reports wall time. A background reader
// population keeps the grace periods real, exactly as in A2.
func AblationParallelUnzip(keys, buckets uint64, workers []int) []ParallelUnzipResult {
	if keys == 0 {
		keys = 65536
	}
	if buckets == 0 {
		buckets = 4096
	}
	if len(workers) == 0 {
		workers = []int{1, 2, 4}
	}
	var out []ParallelUnzipResult
	for _, w := range workers {
		t := core.NewUint64[int](core.WithInitialBuckets(buckets))
		for i := uint64(0); i < keys; i++ {
			t.Set(i, int(i))
		}
		t.SetUnzipWorkers(w)

		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			h := t.NewReadHandle()
			defer h.Close()
			var k uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				k++
				h.Get(k % keys)
			}
		}()

		start := time.Now()
		t.ExpandOnce()
		elapsed := time.Since(start)
		st := t.Stats()
		close(stop)
		<-done
		out = append(out, ParallelUnzipResult{
			Workers:        w,
			Keys:           keys,
			FromBuckets:    buckets,
			ToBuckets:      buckets * 2,
			Elapsed:        elapsed,
			UnzipPasses:    st.UnzipPasses,
			UnzipCuts:      st.UnzipCuts,
			ParallelPasses: st.UnzipParallelPasses,
		})
		t.Close()
	}
	return out
}
