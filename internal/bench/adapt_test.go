package bench

import (
	"testing"
	"time"
)

// TestAblationAdaptiveStripesSmoke runs a tiny A6a sweep end to end:
// both workloads, every setting measured, the adaptive rows driven by
// a live controller.
func TestAblationAdaptiveStripesSmoke(t *testing.T) {
	cfg := tinyCfg()
	cfg.Duration = 15 * time.Millisecond
	cfg.WarmDuration = 5 * time.Millisecond
	cfg.Repeats = 1
	rows := AblationAdaptiveStripes(cfg, 2, []int{1, 16})
	if len(rows) != 6 { // (2 fixed + adaptive) x 2 workloads
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.UpsertsPerS <= 0 {
			t.Fatalf("row %+v measured no upserts", r)
		}
		if r.Workload != "uniform" && r.Workload != "zipf" {
			t.Fatalf("row %+v has unknown workload", r)
		}
	}
	for _, wl := range []string{"uniform", "zipf"} {
		bestFixed, adaptive := BestFixed(rows, wl)
		if bestFixed <= 0 || adaptive <= 0 {
			t.Fatalf("%s: bestFixed=%v adaptive=%v", wl, bestFixed, adaptive)
		}
	}
}

// TestAblationParallelUnzipSmoke: every fan-out completes the same
// doubling; the parallel rows actually engage the worker pool.
func TestAblationParallelUnzipSmoke(t *testing.T) {
	rows := AblationParallelUnzip(4096, 512, []int{1, 2})
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	seq, par := rows[0], rows[1]
	if seq.Workers != 1 || par.Workers != 2 {
		t.Fatalf("worker settings = %d, %d; want 1, 2", seq.Workers, par.Workers)
	}
	if seq.ParallelPasses != 0 {
		t.Fatalf("sequential row reported %d parallel passes", seq.ParallelPasses)
	}
	if par.ParallelPasses == 0 {
		t.Fatal("parallel row never fanned a pass out")
	}
	if seq.ToBuckets != 1024 || par.ToBuckets != 1024 {
		t.Fatalf("doublings incomplete: %+v %+v", seq, par)
	}
	if seq.Elapsed <= 0 || par.Elapsed <= 0 {
		t.Fatal("unmeasured elapsed times")
	}
}

// TestWriterGenSkew pins the workload switch: WriteSkew > 1 selects
// the Zipf stream (heavily repeated keys), otherwise uniform.
func TestWriterGenSkew(t *testing.T) {
	cfg := Config{KeySpace: 1 << 20, WriteSkew: 1.2}
	cfg.fillDefaults()
	gen := writerGen(cfg, 1)
	hits := make(map[uint64]int)
	for i := 0; i < 4096; i++ {
		hits[gen.Key()]++
	}
	maxHits := 0
	for _, n := range hits {
		if n > maxHits {
			maxHits = n
		}
	}
	// Zipf over 2^20 keys concentrates mass: the hottest key shows up
	// far more than uniform's expected ~1.
	if maxHits < 16 {
		t.Fatalf("skewed generator looks uniform: hottest key drawn %d times", maxHits)
	}

	cfg.WriteSkew = 0
	gen = writerGen(cfg, 1)
	hits = make(map[uint64]int)
	for i := 0; i < 4096; i++ {
		hits[gen.Key()]++
	}
	for _, n := range hits {
		if n > 8 {
			t.Fatalf("uniform generator drew one key %d times over a 2^20 space", n)
		}
	}
}
