package bench

import (
	"strings"
	"testing"
	"time"
)

// tinyCfg keeps harness self-tests fast.
func tinyCfg() Config {
	return Config{
		Readers:      []int{1, 2},
		Duration:     30 * time.Millisecond,
		WarmDuration: 5 * time.Millisecond,
		Keys:         512,
		KeySpace:     1024,
		SmallBuckets: 256,
		LargeBuckets: 512,
	}
}

func TestAllEnginesBasicContract(t *testing.T) {
	for name, mk := range Builders {
		t.Run(name, func(t *testing.T) {
			e := mk(64)
			defer e.Close()
			if e.Name() == "" {
				t.Fatal("empty engine name")
			}
			e.Set(1, 10)
			e.Set(2, 20)
			lookup, closeFn := e.NewLookup()
			if !lookup(1) || !lookup(2) {
				t.Fatal("preloaded keys not found")
			}
			if lookup(999) {
				t.Fatal("absent key found")
			}
			e.Delete(1)
			if lookup(1) {
				t.Fatal("deleted key still found")
			}
			// Release the reader before resizing from the same
			// goroutine: a QSBR reader that has stopped looking up
			// is exactly the reader a grace period must wait out
			// (calling Resize while holding one would self-deadlock,
			// as in kernel QSBR).
			if closeFn != nil {
				closeFn()
			}
			e.Resize(128)
			lookup2, closeFn2 := e.NewLookup()
			if closeFn2 != nil {
				defer closeFn2()
			}
			if !lookup2(2) {
				t.Fatal("key lost across Resize")
			}
		})
	}
}

func TestMeasureLookupsProducesThroughput(t *testing.T) {
	cfg := tinyCfg()
	e := NewRP(cfg.SmallBuckets)
	defer e.Close()
	Preload(e, cfg)
	ops := MeasureLookups(e, 2, false, cfg)
	if ops <= 0 {
		t.Fatalf("throughput = %v, want > 0", ops)
	}
}

func TestMeasureLookupsWithResize(t *testing.T) {
	cfg := tinyCfg()
	for _, name := range []string{"rp", "ddds"} {
		e := Builders[name](cfg.SmallBuckets)
		Preload(e, cfg)
		ops := MeasureLookups(e, 2, true, cfg)
		e.Close()
		if ops <= 0 {
			t.Fatalf("%s: throughput under resize = %v", name, ops)
		}
	}
}

func TestRunFigureDispatch(t *testing.T) {
	cfg := tinyCfg()
	cfg.Readers = []int{1}
	cfg.Duration = 10 * time.Millisecond
	for n := 1; n <= NumMicrobenchFigs; n++ {
		fig, err := RunFigure(n, cfg)
		if err != nil {
			t.Fatalf("RunFigure(%d): %v", n, err)
		}
		if len(fig.Series) < 2 {
			t.Fatalf("figure %d has %d series", n, len(fig.Series))
		}
		for _, s := range fig.Series {
			if len(s.Points) != 1 {
				t.Fatalf("figure %d series %q has %d points, want 1", n, s.Name, len(s.Points))
			}
			if s.Points[0].Y <= 0 {
				t.Fatalf("figure %d series %q measured %v Mops", n, s.Name, s.Points[0].Y)
			}
		}
	}
	if _, err := RunFigure(99, cfg); err == nil {
		t.Fatal("RunFigure(99) should fail")
	}
}

func TestWriteFigure(t *testing.T) {
	cfg := tinyCfg()
	cfg.Readers = []int{1}
	cfg.Duration = 10 * time.Millisecond
	fig, err := RunFigure(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteFigure(&sb, fig, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "RP") || !strings.Contains(out, "rwlock") {
		t.Fatalf("rendered figure missing series:\n%s", out)
	}
	if !strings.Contains(out, "x,RP") {
		t.Fatalf("CSV section missing:\n%s", out)
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.SmallBuckets != 8192 || cfg.LargeBuckets != 16384 {
		t.Fatalf("resize endpoints %d/%d, paper uses 8k/16k", cfg.SmallBuckets, cfg.LargeBuckets)
	}
	want := []int{1, 2, 4, 8, 16}
	if len(cfg.Readers) != len(want) {
		t.Fatalf("readers = %v, paper sweeps %v", cfg.Readers, want)
	}
	for i, r := range want {
		if cfg.Readers[i] != r {
			t.Fatalf("readers = %v, paper sweeps %v", cfg.Readers, want)
		}
	}
}

func TestMeasureMixedProducesBothRates(t *testing.T) {
	cfg := tinyCfg()
	e := NewRPShardedN(4, cfg.SmallBuckets)
	defer e.Close()
	Preload(e, cfg)
	// On a single-core box under the race detector, a 30ms window can
	// occasionally starve one side entirely (goroutine time slices are
	// ~10ms); retry with a longer window before declaring the harness
	// broken.
	var res MixedResult
	for attempt := 0; attempt < 4; attempt++ {
		res = MeasureMixed(e, 2, 2, cfg)
		if res.LookupsPerS > 0 && res.UpsertsPerS > 0 {
			return
		}
		cfg.Duration *= 4
	}
	t.Fatalf("rates after retries: lookups=%v upserts=%v, want both > 0", res.LookupsPerS, res.UpsertsPerS)
}

func TestMeasureUpsertsAcrossEngines(t *testing.T) {
	cfg := tinyCfg()
	cfg.Duration = 10 * time.Millisecond
	for _, name := range []string{"rp", "rp-sharded", "sharded", "mutex"} {
		e := Builders[name](cfg.SmallBuckets)
		Preload(e, cfg)
		ops := MeasureUpserts(e, 2, cfg)
		e.Close()
		if ops <= 0 {
			t.Fatalf("%s: upsert throughput = %v, want > 0", name, ops)
		}
	}
}

func TestRunFigureWriteScaling(t *testing.T) {
	cfg := tinyCfg()
	cfg.Readers = []int{2}
	cfg.Duration = 10 * time.Millisecond
	fig, err := RunFigure(Fig5WriteScaling, cfg)
	if err != nil {
		t.Fatalf("RunFigure(5): %v", err)
	}
	if len(fig.Series) < 4 {
		t.Fatalf("figure 5 has %d series", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 1 || s.Points[0].Y <= 0 {
			t.Fatalf("figure 5 series %q measured %+v", s.Name, s.Points)
		}
	}
}

// ttlCfg: readers and writers both spin, so the window must span
// several scheduler rotations on a single-core host for every role to
// get a slice.
func ttlCfg() Config {
	cfg := tinyCfg()
	cfg.Duration = 250 * time.Millisecond
	cfg.WarmDuration = 20 * time.Millisecond
	cfg.Repeats = 1
	return cfg
}

func TestMeasureTTLMix(t *testing.T) {
	cfg := ttlCfg()
	e := NewRPCache(cfg.SmallBuckets)
	preloadTTL(e, cfg)
	res := MeasureTTLMix(e, 2, 1, cfg)
	e.Close()
	if res.LookupsPerS <= 0 || res.SetsPerS <= 0 {
		t.Fatalf("TTL mix rates: %+v", res)
	}
	if res.HitRatio <= 0 || res.HitRatio > 1 {
		t.Fatalf("HitRatio = %v, want in (0,1]", res.HitRatio)
	}

	// Engines without a TTL notion fall back to plain Sets.
	e2 := NewRPShardedN(1, cfg.SmallBuckets)
	preloadTTL(e2, cfg)
	res2 := MeasureTTLMix(e2, 2, 1, cfg)
	e2.Close()
	if res2.LookupsPerS <= 0 || res2.SetsPerS <= 0 {
		t.Fatalf("fallback TTL mix rates: %+v", res2)
	}
}

// TestRPCacheEngineTTLLapses pins the property the throughput test
// cannot assert deterministically (constant rewrites keep entries
// alive): a short-TTL entry must read as a miss once the coarse
// clock passes its expiry.
func TestRPCacheEngineTTLLapses(t *testing.T) {
	e := NewRPCache(64)
	defer e.Close()
	ts := e.(TTLSetter)
	ts.SetTTL(1, 10, 30*time.Millisecond)
	ts.SetTTL(2, 20, time.Hour)
	lookup, release := e.NewLookup()
	defer release()
	if !lookup(1) || !lookup(2) {
		t.Fatal("fresh entries missing")
	}
	// > TTL plus two 50ms coarse-clock ticks.
	deadline := time.Now().Add(5 * time.Second)
	for lookup(1) {
		if time.Now().After(deadline) {
			t.Fatal("short-TTL entry never lapsed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !lookup(2) {
		t.Fatal("long-TTL entry lapsed")
	}
}

func TestRunFigureTTLCache(t *testing.T) {
	cfg := ttlCfg()
	cfg.Readers = []int{1}
	cfg.Duration = 150 * time.Millisecond
	fig, err := RunFigure(Fig6TTLCache, cfg)
	if err != nil {
		t.Fatalf("RunFigure(6): %v", err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("figure 6 has %d series", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 1 || s.Points[0].Y <= 0 {
			t.Fatalf("figure 6 series %q: %+v", s.Name, s.Points)
		}
	}
}
