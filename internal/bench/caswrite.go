package bench

import (
	"sync"
	"time"

	"rphash/internal/core"
	"rphash/internal/stats"
)

// Ablation A7: the lock-free write fast path.
//
// A7 measures both planes of the CAS write path against their striped
// equivalents, at 1..8 writers, on uniform and Zipf(1.1)-skewed key
// streams:
//
//   - Insert plane: multi-writer upserts through Set, on a table with
//     the CAS insert fast path disabled (locked-insert — every write
//     takes its stripe, the pre-fast-path behavior) and enabled
//     (cas-insert — pure inserts publish by a bucket-head CAS and
//     only replaces take stripes).
//   - Value plane: read-modify-write increments of preloaded keys,
//     once through the striped RMW primitive (locked-rmw:
//     Table.Update under the key's stripe) and once through the
//     lock-free value compare-and-publish (cas-value: lock-free read,
//     then CompareAndSwapValue conditioned on the value read).
//
// The skewed workload is where the two planes diverge hardest: under
// Zipf the insert plane degenerates to mostly replaces (hot keys
// already exist — the fast path helps little), while the value plane
// concentrates CAS contention on a few nodes, the worst case for
// optimistic publish. cas-value counts attempts, not successes: a
// failed value CAS (someone else won the race) still did its work,
// and charging it is what makes the optimism-vs-locking comparison
// honest under contention.

// CASWriteResult is one row of ablation A7 (JSON tags match the
// BENCH_ablation7.json trajectory format).
type CASWriteResult struct {
	Workload string  `json:"workload"` // "uniform" or "zipf"
	Arm      string  `json:"arm"`      // locked-insert | cas-insert | locked-rmw | cas-value
	Writers  int     `json:"writers"`
	OpsPerS  float64 `json:"ops_per_sec"`
}

// AblationCASWrite (A7) runs the four-arm sweep for each writer count
// on both workloads, best-of-Repeats per point like the figure
// sweeps.
func AblationCASWrite(cfg Config, writers []int) []CASWriteResult {
	cfg.fillDefaults()
	if len(writers) == 0 {
		writers = []int{1, 2, 4, 8}
	}
	var out []CASWriteResult
	for _, wl := range []struct {
		name string
		skew float64
	}{
		{"uniform", 0},
		{"zipf", 1.1},
	} {
		c := cfg
		c.WriteSkew = wl.skew
		for _, w := range writers {
			row := func(arm string, ops float64) {
				out = append(out, CASWriteResult{Workload: wl.name, Arm: arm, Writers: w, OpsPerS: ops})
			}
			row("locked-insert", bestUpserts(c, w, core.WithCASInsert(false)))
			row("cas-insert", bestUpserts(c, w, core.WithCASInsert(true)))
			row("locked-rmw", bestValueRMW(c, w, false))
			row("cas-value", bestValueRMW(c, w, true))
		}
	}
	return out
}

// bestUpserts measures the insert plane: best-of-Repeats upsert
// throughput through the standard Set path on a table built with the
// given options.
func bestUpserts(cfg Config, writers int, opts ...core.Option) float64 {
	best := 0.0
	for r := 0; r < cfg.Repeats; r++ {
		t := core.NewUint64[int](append([]core.Option{
			core.WithInitialBuckets(cfg.SmallBuckets)}, opts...)...)
		e := &rpEngine{t: t}
		Preload(e, cfg)
		if ops := MeasureUpserts(e, writers, cfg); ops > best {
			best = ops
		}
		e.Close()
	}
	return best
}

// bestValueRMW measures the value plane: best-of-Repeats
// read-modify-write throughput over a fully preloaded key set, via
// the striped Update (useCAS=false) or the lock-free value
// compare-and-publish (useCAS=true).
func bestValueRMW(cfg Config, writers int, useCAS bool) float64 {
	best := 0.0
	for r := 0; r < cfg.Repeats; r++ {
		t := core.NewUint64[int](core.WithInitialBuckets(cfg.SmallBuckets))
		for k := uint64(0); k < cfg.Keys; k++ {
			t.Set(k, 0)
		}
		if ops := measureValueRMW(t, writers, cfg, useCAS); ops > best {
			best = ops
		}
		t.Close()
	}
	return best
}

// measureValueRMW runs `writers` increment goroutines over the
// preloaded keys for cfg.Duration (after cfg.WarmDuration of warmup)
// and returns the aggregate attempt rate.
func measureValueRMW(t *core.Table[uint64, int], writers int, cfg Config, useCAS bool) float64 {
	rmwCfg := cfg
	rmwCfg.KeySpace = cfg.Keys // draw only preloaded keys: every op is a value edit

	counters := stats.NewCounterSet(writers)
	stopWarm := make(chan struct{})
	stop := make(chan struct{})
	start := make(chan struct{})
	var ready, done sync.WaitGroup

	for w := 0; w < writers; w++ {
		ready.Add(1)
		done.Add(1)
		go func(id int) {
			defer done.Done()
			gen := writerGen(rmwCfg, id)
			h := t.NewReadHandle()
			defer h.Close()
			op := func(k uint64) {
				if useCAS {
					cur, ok := h.Get(k)
					if !ok {
						return
					}
					t.CompareAndSwapValue(k, func(v int) bool { return v == cur }, cur+1)
					return
				}
				t.Update(k, func(v int, _ bool) (int, bool) { return v + 1, true })
			}
			ready.Done()
			<-start
			for {
				select {
				case <-stopWarm:
					goto measured
				default:
				}
				op(gen.Key())
			}
		measured:
			slot := counters.Slot(id)
			var local uint64
			for {
				select {
				case <-stop:
					slot.Add(local)
					return
				default:
				}
				for i := 0; i < 16; i++ {
					op(gen.Key())
				}
				local += 16
			}
		}(w)
	}

	ready.Wait()
	close(start)
	time.Sleep(cfg.WarmDuration)
	close(stopWarm)
	t0 := time.Now()
	time.Sleep(cfg.Duration)
	close(stop)
	done.Wait()
	return float64(counters.Total()) / time.Since(t0).Seconds()
}
