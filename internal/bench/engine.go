// Package bench is the microbenchmark harness that regenerates the
// paper's evaluation figures 1–4 (fixed-size baseline, continuous
// resize, RP resize-vs-fixed, DDDS resize-vs-fixed). It drives any
// hash-table implementation through the Engine interface with
// per-reader key streams and per-reader counters, and renders the
// results as the same series the paper plots.
package bench

import (
	"sync"
	"time"

	"rphash/internal/cache"
	"rphash/internal/core"
	"rphash/internal/ddds"
	"rphash/internal/lockht"
	"rphash/internal/shard"
	"rphash/internal/xu"
)

// Lookup is a per-goroutine lookup function: each reader goroutine
// obtains its own (tables with registered readers need one handle per
// goroutine).
type Lookup func(k uint64) bool

// LookupBatch performs len(ks) lookups, writing per-key hit flags
// into oks (len(oks) == len(ks)). Like Lookup it is per-goroutine.
type LookupBatch func(ks []uint64, oks []bool)

// BatchEngine is the optional extension implemented by engines with a
// genuine batch read path (one reader section per shard group rather
// than one per key). The multi-get workload compares it against a
// per-key loop over the same engine.
type BatchEngine interface {
	// NewLookupBatch returns a per-goroutine batch lookup and a
	// release function (may be nil).
	NewLookupBatch() (LookupBatch, func())
}

// NewPerKeyLookupBatch adapts an engine's per-key lookup into the
// LookupBatch shape — the unamortized baseline the batch paths are
// measured against, and the fallback for engines without a batch
// path.
func NewPerKeyLookupBatch(e Engine) (LookupBatch, func()) {
	lookup, closeFn := e.NewLookup()
	return func(ks []uint64, oks []bool) {
		for i, k := range ks {
			oks[i] = lookup(k)
		}
	}, closeFn
}

// Engine abstracts a table implementation for the harness.
type Engine interface {
	// Name labels the series.
	Name() string
	// NewLookup returns a per-goroutine lookup function and a release
	// function (may be nil).
	NewLookup() (Lookup, func())
	// Set upserts a key (preload and writer churn).
	Set(k uint64, v int)
	// Delete removes a key.
	Delete(k uint64)
	// Resize retargets the bucket count.
	Resize(n uint64)
	// Close releases the engine.
	Close()
}

// ---- RP (the paper's algorithm; internal/core) ----

type rpEngine struct{ t *core.Table[uint64, int] }

// NewRP builds the relativistic-table engine with the given initial
// bucket count.
func NewRP(buckets uint64) Engine {
	return &rpEngine{t: core.NewUint64[int](core.WithInitialBuckets(buckets))}
}

func (e *rpEngine) Name() string { return "RP" }
func (e *rpEngine) NewLookup() (Lookup, func()) {
	h := e.t.NewReadHandle()
	return func(k uint64) bool {
		_, ok := h.Get(k)
		return ok
	}, h.Close
}
func (e *rpEngine) Set(k uint64, v int) { e.t.Set(k, v) }
func (e *rpEngine) Delete(k uint64)     { e.t.Delete(k) }
func (e *rpEngine) Resize(n uint64)     { e.t.Resize(n) }
func (e *rpEngine) Close()              { e.t.Close() }

// ---- RP flat engine (cache-line-contiguous bucket groups) ----

type rpFlatEngine struct{ t *core.Table[uint64, int] }

// NewRPFlat builds the relativistic table on the flat engine
// (core.EngineFlat): eight-cell inline bucket groups with a packed
// hash-tag word, chain spill, and copy-based migration. `buckets` is
// the GROUP count — the same number the chain engine gets as its
// bucket count, so at the benchmark's ~1-2 elements/bucket load the
// groups run sparse and the series isolates the lookup-locality win.
// Ablation A8's memory rows price the sparsity (and a dense
// configuration) against the chain engine's per-node overhead.
func NewRPFlat(buckets uint64) Engine {
	return &rpFlatEngine{t: core.NewUint64[int](
		core.WithInitialBuckets(buckets), core.WithEngine(core.EngineFlat))}
}

func (e *rpFlatEngine) Name() string { return "rp-flat" }
func (e *rpFlatEngine) NewLookup() (Lookup, func()) {
	h := e.t.NewReadHandle()
	return func(k uint64) bool {
		_, ok := h.Get(k)
		return ok
	}, h.Close
}
func (e *rpFlatEngine) Set(k uint64, v int) { e.t.Set(k, v) }
func (e *rpFlatEngine) Delete(k uint64)     { e.t.Delete(k) }
func (e *rpFlatEngine) Resize(n uint64)     { e.t.Resize(n) }
func (e *rpFlatEngine) Close()              { e.t.Close() }

// ---- RP single-mutex (ablation baseline: the paper's writer model) ----

type rpSingleLockEngine struct{ t *core.Table[uint64, int] }

// NewRPSingleLock builds the relativistic table with WithStripes(1):
// every mutation serializes on one lock, exactly the paper's writer
// model and exactly this repository's pre-striping behavior. It
// exists as the baseline the striped writer path (the default RP
// engine) is measured against in figure 5 and ablation A5; it is not
// a configuration anyone should deploy.
func NewRPSingleLock(buckets uint64) Engine {
	return &rpSingleLockEngine{t: core.NewUint64[int](
		core.WithInitialBuckets(buckets), core.WithStripes(1))}
}

func (e *rpSingleLockEngine) Name() string { return "RP-1lock" }
func (e *rpSingleLockEngine) NewLookup() (Lookup, func()) {
	h := e.t.NewReadHandle()
	return func(k uint64) bool {
		_, ok := h.Get(k)
		return ok
	}, h.Close
}
func (e *rpSingleLockEngine) Set(k uint64, v int) { e.t.Set(k, v) }
func (e *rpSingleLockEngine) Delete(k uint64)     { e.t.Delete(k) }
func (e *rpSingleLockEngine) Resize(n uint64)     { e.t.Resize(n) }
func (e *rpSingleLockEngine) Close()              { e.t.Close() }

// ---- RP locked-write / CAS-write (write fast-path ablation pair) ----

// NewRPLockedWrite builds the relativistic table with the lock-free
// insert fast path disabled: every write takes its stripe, exactly
// this repository's pre-fast-path write behavior. It is the striped
// baseline the CAS write path is measured against in figure 5 and
// ablation A7.
func NewRPLockedWrite(buckets uint64) Engine {
	return &rpCASWriteEngine{name: "rp-lockedwrite", t: core.NewUint64[int](
		core.WithInitialBuckets(buckets), core.WithCASInsert(false))}
}

// NewRPCASWrite builds the relativistic table with the lock-free
// insert fast path explicitly enabled (the shipping default, pinned
// here so the series keeps measuring the fast path even if the
// default ever changes).
func NewRPCASWrite(buckets uint64) Engine {
	return &rpCASWriteEngine{name: "rp-caswrite", t: core.NewUint64[int](
		core.WithInitialBuckets(buckets), core.WithCASInsert(true))}
}

type rpCASWriteEngine struct {
	name string
	t    *core.Table[uint64, int]
}

func (e *rpCASWriteEngine) Name() string { return e.name }
func (e *rpCASWriteEngine) NewLookup() (Lookup, func()) {
	h := e.t.NewReadHandle()
	return func(k uint64) bool {
		_, ok := h.Get(k)
		return ok
	}, h.Close
}
func (e *rpCASWriteEngine) Set(k uint64, v int) { e.t.Set(k, v) }
func (e *rpCASWriteEngine) Delete(k uint64)     { e.t.Delete(k) }
func (e *rpCASWriteEngine) Resize(n uint64)     { e.t.Resize(n) }
func (e *rpCASWriteEngine) Close()              { e.t.Close() }

// ---- RP adaptive (runtime-maintained stripes; internal/adapt) ----

type rpAdaptEngine struct{ t *core.Table[uint64, int] }

// NewRPAdaptive builds the relativistic table with adaptive
// maintenance on and the stripe array deliberately started at 1: the
// controller must discover the right stripe count from sampled
// contention at runtime. The A6 ablation measures it against the
// fixed-stripe sweep.
func NewRPAdaptive(buckets uint64) Engine {
	return &rpAdaptEngine{t: core.NewUint64[int](
		core.WithInitialBuckets(buckets),
		core.WithStripes(1),
		core.WithAdapt(adaptBenchConfig()))}
}

func (e *rpAdaptEngine) Name() string { return "rp-adapt" }
func (e *rpAdaptEngine) NewLookup() (Lookup, func()) {
	h := e.t.NewReadHandle()
	return func(k uint64) bool {
		_, ok := h.Get(k)
		return ok
	}, h.Close
}
func (e *rpAdaptEngine) Set(k uint64, v int) { e.t.Set(k, v) }
func (e *rpAdaptEngine) Delete(k uint64)     { e.t.Delete(k) }
func (e *rpAdaptEngine) Resize(n uint64)     { e.t.Resize(n) }
func (e *rpAdaptEngine) Close()              { e.t.Close() }

// ---- RP sharded (internal/shard: write scaling over the RP core) ----

type rpShardedEngine struct {
	name string
	m    *shard.Map[uint64, int]
}

// NewRPSharded builds the sharded relativistic-map engine with the
// default shard count (NextPowerOfTwo(GOMAXPROCS), overridable via
// DefaultShards) and the given total bucket count.
func NewRPSharded(buckets uint64) Engine {
	return NewRPShardedN(DefaultShards, buckets)
}

// NewRPShardedN builds the sharded engine with an explicit shard
// count (0 = auto). Adaptive maintenance is pinned OFF — figure
// sweeps measure a fixed shape, and the CI regression gate compares
// their points across runs; rp-adapt is the engine that runs the
// controller on purpose.
func NewRPShardedN(shards int, buckets uint64) Engine {
	opts := []shard.Option{shard.WithInitialBuckets(buckets), shard.WithAdapt(nil)}
	if shards > 0 {
		opts = append(opts, shard.WithShards(shards))
	}
	return &rpShardedEngine{name: "rp-sharded", m: shard.NewUint64[int](opts...)}
}

// NewRPFlatSharded is NewRPSharded on the flat engine: every shard
// table uses core.EngineFlat. The batch read path (figure 7) and the
// whole shard.Map veneer are engine-agnostic — this engine exists to
// prove it with numbers.
func NewRPFlatSharded(buckets uint64) Engine {
	opts := []shard.Option{shard.WithInitialBuckets(buckets), shard.WithAdapt(nil),
		shard.WithEngine(core.EngineFlat)}
	if DefaultShards > 0 {
		opts = append(opts, shard.WithShards(DefaultShards))
	}
	return &rpShardedEngine{name: "rp-flat-sharded", m: shard.NewUint64[int](opts...)}
}

// DefaultShards is the shard count NewRPSharded uses; 0 means
// NextPowerOfTwo(GOMAXPROCS). The CLI's -shards flag sets it.
var DefaultShards int

func (e *rpShardedEngine) Name() string { return e.name }
func (e *rpShardedEngine) NewLookup() (Lookup, func()) {
	h := e.m.NewReadHandle()
	return func(k uint64) bool {
		_, ok := h.Get(k)
		return ok
	}, h.Close
}
func (e *rpShardedEngine) Set(k uint64, v int) { e.m.Set(k, v) }
func (e *rpShardedEngine) Delete(k uint64)     { e.m.Delete(k) }
func (e *rpShardedEngine) Resize(n uint64)     { e.m.Resize(n) }
func (e *rpShardedEngine) Close()              { e.m.Close() }

// NewLookupBatch routes through Map.GetBatch: hash once, group by
// shard, one reader section per touched shard.
func (e *rpShardedEngine) NewLookupBatch() (LookupBatch, func()) {
	var vals []int
	return func(ks []uint64, oks []bool) {
		if cap(vals) < len(ks) {
			vals = make([]int, len(ks))
		}
		e.m.GetBatch(ks, vals[:len(ks)], oks)
	}, nil
}

// ---- RP cache (internal/cache: TTL + eviction layer over the map) ----

// TTLSetter is the optional engine extension the TTL workload uses:
// engines with an expiry notion implement it; for the rest the
// workload falls back to plain Set.
type TTLSetter interface {
	SetTTL(k uint64, v int, ttl time.Duration)
}

type rpCacheEngine struct{ c *cache.Cache[uint64, int] }

// NewRPCache builds the caching-layer engine: the sharded
// relativistic map dressed with coarse-clock TTL expiry, a background
// sweeper, and sampled-LRU accounting. Lookups route through the
// cache's expiry check, so figure-1-style sweeps measure the true
// cache hit path, not the bare map.
func NewRPCache(buckets uint64) Engine {
	opts := []cache.Option{
		cache.WithInitialBuckets(buckets),
		cache.WithPolicy(core.Policy{}), // pinned size, like the other engines
		cache.WithAdapt(nil),            // pinned shape too (see NewRPShardedN)
		cache.WithSweepInterval(50 * time.Millisecond),
	}
	if DefaultShards > 0 {
		opts = append(opts, cache.WithShards(DefaultShards))
	}
	return &rpCacheEngine{c: cache.NewUint64[int](opts...)}
}

func (e *rpCacheEngine) Name() string { return "rp-cache" }
func (e *rpCacheEngine) NewLookup() (Lookup, func()) {
	get, release := e.c.NewGetter()
	return func(k uint64) bool {
		_, ok := get(k)
		return ok
	}, release
}
func (e *rpCacheEngine) Set(k uint64, v int) { e.c.Set(k, v) }
func (e *rpCacheEngine) SetTTL(k uint64, v int, ttl time.Duration) {
	e.c.SetTTL(k, v, ttl)
}
func (e *rpCacheEngine) Delete(k uint64) { e.c.Delete(k) }
func (e *rpCacheEngine) Resize(n uint64) { e.c.Resize(n) }
func (e *rpCacheEngine) Close()          { e.c.Close() }

// NewLookupBatch routes through Cache.GetMulti: the map's batch
// lookup plus a single coarse-clock read and one striped-counter add
// for the whole batch.
func (e *rpCacheEngine) NewLookupBatch() (LookupBatch, func()) {
	var vals []int
	return func(ks []uint64, oks []bool) {
		if cap(vals) < len(ks) {
			vals = make([]int, len(ks))
		}
		e.c.GetMulti(ks, vals[:len(ks)], oks)
	}, nil
}

// ---- RP with QSBR readers (kernel-RCU read-side cost model) ----

type rpQSBREngine struct{ t *core.Table[uint64, int] }

// NewRPQSBR builds the relativistic-table engine with
// quiescent-state-based readers: zero read-side synchronization per
// lookup, quiescent states announced every 64 lookups. This matches
// the read-side cost of the paper's kernel-module benchmark, where
// rcu_read_lock is free.
func NewRPQSBR(buckets uint64) Engine {
	return &rpQSBREngine{t: core.NewUint64[int](core.WithInitialBuckets(buckets))}
}

func (e *rpQSBREngine) Name() string { return "RP-qsbr" }
func (e *rpQSBREngine) NewLookup() (Lookup, func()) {
	h := e.t.NewQSBRHandle()
	return func(k uint64) bool {
		_, ok := h.Get(k)
		return ok
	}, h.Close
}
func (e *rpQSBREngine) Set(k uint64, v int) { e.t.Set(k, v) }
func (e *rpQSBREngine) Delete(k uint64)     { e.t.Delete(k) }
func (e *rpQSBREngine) Resize(n uint64)     { e.t.Resize(n) }
func (e *rpQSBREngine) Close()              { e.t.Close() }

// ---- DDDS baseline ----

type dddsEngine struct{ t *ddds.Table[uint64, int] }

// NewDDDS builds the DDDS-style baseline engine.
func NewDDDS(buckets uint64) Engine {
	return &dddsEngine{t: ddds.NewUint64[int](buckets)}
}

func (e *dddsEngine) Name() string { return "DDDS" }
func (e *dddsEngine) NewLookup() (Lookup, func()) {
	return func(k uint64) bool {
		_, ok := e.t.Get(k)
		return ok
	}, nil
}
func (e *dddsEngine) Set(k uint64, v int) { e.t.Set(k, v) }
func (e *dddsEngine) Delete(k uint64)     { e.t.Delete(k) }
func (e *dddsEngine) Resize(n uint64)     { e.t.Resize(n) }
func (e *dddsEngine) Close()              { e.t.Close() }

// ---- lock-based baselines ----

type lockEngine struct {
	name string
	t    *lockht.Table[uint64, int]
}

// NewRWLock builds the global reader-writer-lock baseline (the
// paper's "rwlock" curve).
func NewRWLock(buckets uint64) Engine {
	return &lockEngine{name: "rwlock", t: lockht.NewUint64[int](lockht.RWLock, buckets)}
}

// NewMutex builds the global-mutex baseline.
func NewMutex(buckets uint64) Engine {
	return &lockEngine{name: "mutex", t: lockht.NewUint64[int](lockht.Mutex, buckets)}
}

// NewSharded builds the per-bucket-lock baseline (fine-grained
// locking ablation).
func NewSharded(buckets uint64) Engine {
	return &lockEngine{name: "sharded", t: lockht.NewUint64[int](lockht.Sharded, buckets)}
}

func (e *lockEngine) Name() string { return e.name }
func (e *lockEngine) NewLookup() (Lookup, func()) {
	return func(k uint64) bool {
		_, ok := e.t.Get(k)
		return ok
	}, nil
}
func (e *lockEngine) Set(k uint64, v int) { e.t.Set(k, v) }
func (e *lockEngine) Delete(k uint64)     { e.t.Delete(k) }
func (e *lockEngine) Resize(n uint64)     { e.t.Resize(n) }
func (e *lockEngine) Close()              { e.t.Close() }

// ---- Xu-style two-pointer table (ablation) ----

type xuEngine struct{ t *xu.Table[uint64, int] }

// NewXu builds the Herbert-Xu-style two-pointer engine.
func NewXu(buckets uint64) Engine {
	return &xuEngine{t: xu.NewUint64[int](buckets)}
}

func (e *xuEngine) Name() string { return "xu" }
func (e *xuEngine) NewLookup() (Lookup, func()) {
	r := e.t.Domain().Register()
	tbl := e.t
	return func(k uint64) bool {
		r.Lock()
		_, ok := lookupXu(tbl, k)
		r.Unlock()
		return ok
	}, r.Close
}
func (e *xuEngine) Set(k uint64, v int) { e.t.Set(k, v) }
func (e *xuEngine) Delete(k uint64)     { e.t.Delete(k) }
func (e *xuEngine) Resize(n uint64)     { e.t.Resize(n) }
func (e *xuEngine) Close()              { e.t.Close() }

// lookupXu calls Get without the pooled read section (the caller
// already holds one); xu.Table.Get would nest harmlessly, so this is
// purely to keep hot-path costs comparable across engines.
func lookupXu(t *xu.Table[uint64, int], k uint64) (int, bool) {
	return t.Get(k)
}

// ---- sync.Map (standard-library comparator; repo extension) ----

type syncMapEngine struct {
	m sync.Map
}

// NewSyncMap builds a sync.Map-backed engine. sync.Map has no notion
// of buckets; Resize is a no-op. It is included as a familiar
// reference curve, not a paper baseline.
func NewSyncMap(uint64) Engine { return &syncMapEngine{} }

func (e *syncMapEngine) Name() string { return "sync.Map" }
func (e *syncMapEngine) NewLookup() (Lookup, func()) {
	return func(k uint64) bool {
		_, ok := e.m.Load(k)
		return ok
	}, nil
}
func (e *syncMapEngine) Set(k uint64, v int) { e.m.Store(k, v) }
func (e *syncMapEngine) Delete(k uint64)     { e.m.Delete(k) }
func (e *syncMapEngine) Resize(uint64)       {}
func (e *syncMapEngine) Close()              {}

// Builders maps engine names to constructors, for the CLI.
var Builders = map[string]func(buckets uint64) Engine{
	"rp":              NewRP,
	"rp-flat":         NewRPFlat,
	"rp-flat-sharded": NewRPFlatSharded,
	"rp-1lock":        NewRPSingleLock,
	"rp-caswrite":     NewRPCASWrite,
	"rp-lockedwrite":  NewRPLockedWrite,
	"rp-adapt":        NewRPAdaptive,
	"rp-sharded":      NewRPSharded,
	"rp-cache":        NewRPCache,
	"rpqsbr":          NewRPQSBR,
	"ddds":            NewDDDS,
	"rwlock":          NewRWLock,
	"mutex":           NewMutex,
	"sharded":         NewSharded,
	"xu":              NewXu,
	"syncmap":         NewSyncMap,
}
