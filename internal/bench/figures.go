package bench

import (
	"fmt"
	"io"

	"rphash/internal/stats"
)

// Figure identifiers, in the order the paper's evaluation presents
// them.
const (
	Fig1FixedBaseline = 1 // lookups/s vs readers: RP, DDDS, rwlock (fixed size)
	Fig2ContinuousRes = 2 // lookups/s vs readers: RP, DDDS (continuous resize)
	Fig3RPResizeFixed = 3 // RP: fixed 8k, fixed 16k, continuous resize
	Fig4DDDSResizeFix = 4 // DDDS: fixed 8k, fixed 16k, continuous resize
	NumMicrobenchFigs = 4

	// Fig5WriteScaling is the repository's extension figure: upsert
	// throughput vs concurrent writers (the paper's evaluation has a
	// single writer; internal/shard exists to scale that axis).
	Fig5WriteScaling = 5

	// Fig6TTLCache is the caching-workload extension figure: lookup
	// throughput vs readers while writers churn mixed-TTL entries
	// (rp-cache's expiry/eviction layer vs the bare sharded map).
	Fig6TTLCache = 6

	// Fig7MultiGet is the batch-amortization extension figure: lookup
	// throughput vs batch size (1/10/100), batch path vs per-key loop.
	Fig7MultiGet = 7
	NumFigs      = 7
)

// measureSeries sweeps cfg.Readers for one engine configuration,
// measuring each point cfg.Repeats times and keeping the best run.
// Best-of-N is the right aggregate for a *capability* curve on a
// small shared host: interference (scheduler placement, GC, noisy
// neighbors) only ever subtracts throughput, so the maximum is the
// least-biased estimate of what the table can do — the number the
// paper's dedicated testbed measured directly.
func measureSeries(name string, mk func() Engine, resize bool, cfg Config) stats.Series {
	cfg.fillDefaults()
	s := stats.Series{Name: name}
	for _, r := range cfg.Readers {
		best := 0.0
		for i := 0; i < cfg.Repeats; i++ {
			e := mk()
			Preload(e, cfg)
			if ops := MeasureLookups(e, r, resize, cfg); ops > best {
				best = ops
			}
			e.Close()
		}
		s.Add(float64(r), best/1e6) // millions of lookups/second, like the paper's axes
	}
	return s
}

// Fig1 regenerates "Results: fixed-size table baseline": RP vs DDDS
// vs rwlock, no resizing, fixed SmallBuckets table.
func Fig1(cfg Config) stats.Figure {
	cfg.fillDefaults()
	return stats.Figure{
		Title:  "Figure 1: fixed-size table baseline (no resizing)",
		XLabel: "readers",
		YLabel: "lookups/second (millions)",
		Series: []stats.Series{
			measureSeries("RP", func() Engine { return NewRPQSBR(cfg.SmallBuckets) }, false, cfg),
			measureSeries("DDDS", func() Engine { return NewDDDS(cfg.SmallBuckets) }, false, cfg),
			measureSeries("rwlock", func() Engine { return NewRWLock(cfg.SmallBuckets) }, false, cfg),
		},
	}
}

// Fig2 regenerates "Results – continuous resizing": RP vs DDDS while
// a resizer toggles SmallBuckets <-> LargeBuckets continuously.
func Fig2(cfg Config) stats.Figure {
	cfg.fillDefaults()
	return stats.Figure{
		Title:  "Figure 2: lookups under continuous resizing",
		XLabel: "readers",
		YLabel: "lookups/second (millions)",
		Series: []stats.Series{
			measureSeries("RP", func() Engine { return NewRPQSBR(cfg.SmallBuckets) }, true, cfg),
			measureSeries("DDDS", func() Engine { return NewDDDS(cfg.SmallBuckets) }, true, cfg),
		},
	}
}

// Fig3 regenerates "Results – our resize versus fixed": RP at fixed
// 8k, fixed 16k, and continuously resizing between them.
func Fig3(cfg Config) stats.Figure {
	cfg.fillDefaults()
	return stats.Figure{
		Title:  "Figure 3: RP resize versus fixed sizes",
		XLabel: "readers",
		YLabel: "lookups/second (millions)",
		Series: []stats.Series{
			measureSeries(fmt.Sprintf("%dk", cfg.SmallBuckets/1024),
				func() Engine { return NewRPQSBR(cfg.SmallBuckets) }, false, cfg),
			measureSeries(fmt.Sprintf("%dk", cfg.LargeBuckets/1024),
				func() Engine { return NewRPQSBR(cfg.LargeBuckets) }, false, cfg),
			measureSeries("resize", func() Engine { return NewRPQSBR(cfg.SmallBuckets) }, true, cfg),
		},
	}
}

// Fig4 regenerates "Results – DDDS resize versus fixed".
func Fig4(cfg Config) stats.Figure {
	cfg.fillDefaults()
	return stats.Figure{
		Title:  "Figure 4: DDDS resize versus fixed sizes",
		XLabel: "readers",
		YLabel: "lookups/second (millions)",
		Series: []stats.Series{
			measureSeries(fmt.Sprintf("%dk", cfg.SmallBuckets/1024),
				func() Engine { return NewDDDS(cfg.SmallBuckets) }, false, cfg),
			measureSeries(fmt.Sprintf("%dk", cfg.LargeBuckets/1024),
				func() Engine { return NewDDDS(cfg.LargeBuckets) }, false, cfg),
			measureSeries("resize", func() Engine { return NewDDDS(cfg.SmallBuckets) }, true, cfg),
		},
	}
}

// RunFigure dispatches by figure number (1-6).
func RunFigure(n int, cfg Config) (stats.Figure, error) {
	switch n {
	case Fig1FixedBaseline:
		return Fig1(cfg), nil
	case Fig2ContinuousRes:
		return Fig2(cfg), nil
	case Fig3RPResizeFixed:
		return Fig3(cfg), nil
	case Fig4DDDSResizeFix:
		return Fig4(cfg), nil
	case Fig5WriteScaling:
		return FigWriteScaling(cfg), nil
	case Fig6TTLCache:
		return FigTTLCache(cfg), nil
	case Fig7MultiGet:
		return FigMultiGet(cfg), nil
	default:
		return stats.Figure{}, fmt.Errorf("bench: unknown figure %d (have 1..%d)", n, NumFigs)
	}
}

// WriteFigure renders fig to w as a text table, optionally followed
// by CSV.
func WriteFigure(w io.Writer, fig stats.Figure, csv bool) error {
	if _, err := io.WriteString(w, fig.RenderTable()); err != nil {
		return err
	}
	if csv {
		if _, err := io.WriteString(w, "\n"+fig.RenderCSV()); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}
