package bench

import (
	"sync"
	"time"

	"rphash/internal/stats"
	"rphash/internal/workload"
)

// MultiGetReaders is the fixed goroutine count for the multi-get
// figure: the batch-size axis is swept at this concurrency, matching
// the acceptance point (8 goroutines) for the batch-vs-single ratio.
const MultiGetReaders = 8

// MultiGetBatchSizes is the batch-size axis of the multi-get figure.
var MultiGetBatchSizes = []int{1, 10, 100}

// MeasureLookupBatch runs `readers` goroutines performing
// uniform-random lookups in groups of `batch` keys for cfg.Duration
// and returns aggregate lookups/second. If batched is true and the
// engine implements BatchEngine, each group goes through the engine's
// batch path (one reader section per shard group); otherwise the
// group is a plain per-key loop — the unamortized baseline.
func MeasureLookupBatch(e Engine, readers, batch int, batched bool, cfg Config) float64 {
	ops, _ := MeasureLookupBatchLatency(e, readers, batch, batched, cfg)
	return ops
}

// MeasureLookupBatchLatency is MeasureLookupBatch returning the
// sampled per-key p99 latency too: one batch call in sixteen is
// timed, and the batch-call latency is divided by the batch size (the
// per-key cost a multi-get client experiences).
func MeasureLookupBatchLatency(e Engine, readers, batch int, batched bool, cfg Config) (opsPerSec, p99NS float64) {
	cfg.fillDefaults()
	if batch < 1 {
		batch = 1
	}

	counters := stats.NewCounterSet(readers)
	hists := make([]stats.Histogram, readers)
	stopWarm := make(chan struct{})
	stop := make(chan struct{})
	start := make(chan struct{})
	var ready, done sync.WaitGroup

	for r := 0; r < readers; r++ {
		ready.Add(1)
		done.Add(1)
		go func(id int) {
			defer done.Done()
			var lookup LookupBatch
			var closeFn func()
			if be, ok := e.(BatchEngine); ok && batched {
				lookup, closeFn = be.NewLookupBatch()
			} else {
				lookup, closeFn = NewPerKeyLookupBatch(e)
			}
			if closeFn != nil {
				defer closeFn()
			}
			gen := workload.NewUniform(cfg.KeySpace, uint64(id)*0x9e3779b9+1)
			ks := make([]uint64, batch)
			oks := make([]bool, batch)
			fill := func() {
				for i := range ks {
					ks[i] = gen.Key()
				}
			}
			ready.Done()
			<-start

			for {
				select {
				case <-stopWarm:
					goto measured
				default:
				}
				fill()
				lookup(ks, oks)
			}
		measured:
			slot := counters.Slot(id)
			hist := &hists[id]
			var local, calls uint64
			for {
				select {
				case <-stop:
					slot.Add(local)
					return
				default:
				}
				fill()
				if calls&15 == 0 {
					t0 := time.Now()
					lookup(ks, oks)
					hist.Observe(uint64(time.Since(t0).Nanoseconds()))
				} else {
					lookup(ks, oks)
				}
				calls++
				local += uint64(batch)
			}
		}(r)
	}

	ready.Wait()
	close(start)
	time.Sleep(cfg.WarmDuration)
	close(stopWarm)
	t0 := time.Now()
	time.Sleep(cfg.Duration)
	close(stop)
	done.Wait()
	elapsed := time.Since(t0)

	var merged stats.Histogram
	for i := range hists {
		merged.Merge(&hists[i])
	}
	return float64(counters.Total()) / elapsed.Seconds(),
		float64(merged.Quantile(0.99)) / float64(batch)
}

// measureBatchSeries sweeps MultiGetBatchSizes for one engine
// configuration at MultiGetReaders goroutines, best-of-Repeats like
// measureSeries.
func measureBatchSeries(name string, mk func() Engine, batched bool, cfg Config) stats.Series {
	cfg.fillDefaults()
	s := stats.Series{Name: name}
	for _, batch := range MultiGetBatchSizes {
		best, bestP99 := 0.0, 0.0
		for i := 0; i < cfg.Repeats; i++ {
			e := mk()
			Preload(e, cfg)
			if ops, p99 := MeasureLookupBatchLatency(e, MultiGetReaders, batch, batched, cfg); ops > best {
				best, bestP99 = ops, p99
			}
			e.Close()
		}
		s.AddWithP99(float64(batch), best/1e6, bestP99)
	}
	return s
}

// FigMultiGet is the repository's multi-get amortization figure
// (figure 7): aggregate lookup throughput versus batch size at a
// fixed MultiGetReaders goroutines, batch path versus per-key loop,
// for the sharded map and the cache layered on it. At batch size 1
// the batch path LOSES — a one-key batch still pays grouping,
// scratch, and a pooled-reader round-trip per call, which is why
// single-key callers should stay on Get. The crossover comes quickly:
// by 10 and 100 the amortized reader-section entry, pooled-reader
// round-trip, and (for the cache) clock and counter traffic put the
// batch path well ahead — the win memcached's multi-key `get` rides
// on.
func FigMultiGet(cfg Config) stats.Figure {
	cfg.fillDefaults()
	return stats.Figure{
		Title:  "Figure 7: multi-get batch amortization (repo extension)",
		XLabel: "batch",
		YLabel: "lookups/second (millions)",
		Series: []stats.Series{
			measureBatchSeries("rp-sharded", func() Engine { return NewRPSharded(cfg.SmallBuckets) }, true, cfg),
			measureBatchSeries("rp-sharded-perkey", func() Engine { return NewRPSharded(cfg.SmallBuckets) }, false, cfg),
			measureBatchSeries("rp-flat-sharded", func() Engine { return NewRPFlatSharded(cfg.SmallBuckets) }, true, cfg),
			measureBatchSeries("rp-cache", func() Engine { return NewRPCache(cfg.SmallBuckets) }, true, cfg),
			measureBatchSeries("rp-cache-perkey", func() Engine { return NewRPCache(cfg.SmallBuckets) }, false, cfg),
		},
	}
}
