package bench

import (
	"runtime"
	"sync"
	"time"

	"rphash/internal/stats"
	"rphash/internal/workload"
)

// Config parameterizes a measurement run. The defaults mirror the
// paper's setup scaled to commodity hardware: tables toggled between
// 8k and 16k buckets, reader counts 1..16.
type Config struct {
	// Readers is the list of concurrent reader counts to sweep.
	Readers []int
	// Duration is the measured interval per point.
	Duration time.Duration
	// Keys is the number of elements preloaded into the table.
	Keys uint64
	// KeySpace is the lookup draw space; Keys < KeySpace gives
	// misses (default 2*Keys: 50% hit ratio).
	KeySpace uint64
	// SmallBuckets / LargeBuckets are the resize endpoints (and the
	// fixed sizes for baseline runs).
	SmallBuckets uint64
	LargeBuckets uint64
	// WarmDuration runs unmeasured before the timed interval.
	WarmDuration time.Duration
	// Repeats measures each point this many times and reports the
	// median, suppressing scheduler and GC noise on small hosts.
	Repeats int
	// WriteSkew, when > 1, draws writer keys from a Zipf
	// distribution with that exponent instead of uniformly — the
	// hot-key workload the adaptive-stripes ablation (A6) contrasts
	// with uniform writes. Readers always draw uniformly.
	WriteSkew float64
}

// DefaultConfig mirrors the paper's parameters.
func DefaultConfig() Config {
	return Config{
		Readers:      []int{1, 2, 4, 8, 16},
		Duration:     400 * time.Millisecond,
		Keys:         8192,
		KeySpace:     16384,
		SmallBuckets: 8192,
		LargeBuckets: 16384,
		WarmDuration: 50 * time.Millisecond,
		Repeats:      3,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if len(c.Readers) == 0 {
		c.Readers = d.Readers
	}
	if c.Duration <= 0 {
		c.Duration = d.Duration
	}
	if c.Keys == 0 {
		c.Keys = d.Keys
	}
	if c.KeySpace == 0 {
		c.KeySpace = 2 * c.Keys
	}
	if c.SmallBuckets == 0 {
		c.SmallBuckets = d.SmallBuckets
	}
	if c.LargeBuckets == 0 {
		c.LargeBuckets = d.LargeBuckets
	}
	if c.WarmDuration <= 0 {
		c.WarmDuration = d.WarmDuration
	}
	if c.Repeats <= 0 {
		c.Repeats = d.Repeats
	}
}

// Preload fills an engine with cfg.Keys sequential keys.
func Preload(e Engine, cfg Config) {
	for i := uint64(0); i < cfg.Keys; i++ {
		e.Set(i, int(i))
	}
}

// MeasureLookups runs `readers` goroutines performing uniform-random
// lookups for cfg.Duration and returns aggregate lookups/second. If
// resize is true, one additional goroutine continuously toggles the
// table between SmallBuckets and LargeBuckets — the paper's
// continuous-resize worst case.
func MeasureLookups(e Engine, readers int, resize bool, cfg Config) float64 {
	cfg.fillDefaults()

	// Oversubscription beyond physical cores is part of the sweep
	// (the paper's testbed had 16 ways; we keep the x-axis and let
	// GOMAXPROCS cap physical parallelism).
	_ = runtime.GOMAXPROCS(0)

	counters := stats.NewCounterSet(readers)
	stopWarm := make(chan struct{})
	stop := make(chan struct{})
	start := make(chan struct{})
	var ready, done sync.WaitGroup

	for r := 0; r < readers; r++ {
		ready.Add(1)
		done.Add(1)
		go func(id int) {
			defer done.Done()
			lookup, closeFn := e.NewLookup()
			if closeFn != nil {
				defer closeFn()
			}
			gen := workload.NewUniform(cfg.KeySpace, uint64(id)*0x9e3779b9+1)
			ready.Done()
			<-start

			// Warm phase: run flat out, discard counts.
			for {
				select {
				case <-stopWarm:
					goto measured
				default:
				}
				lookup(gen.Key())
			}
		measured:
			slot := counters.Slot(id)
			var local uint64
			for {
				select {
				case <-stop:
					slot.Add(local)
					return
				default:
				}
				// Batch between channel polls so the poll cost does
				// not dominate short lookups.
				for i := 0; i < 64; i++ {
					lookup(gen.Key())
				}
				local += 64
			}
		}(r)
	}

	var resizeDone sync.WaitGroup
	if resize {
		resizeDone.Add(1)
		go func() {
			defer resizeDone.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				e.Resize(cfg.LargeBuckets)
				e.Resize(cfg.SmallBuckets)
			}
		}()
	}

	ready.Wait()
	close(start)
	time.Sleep(cfg.WarmDuration)
	close(stopWarm)
	t0 := time.Now()
	time.Sleep(cfg.Duration)
	close(stop)
	done.Wait()
	elapsed := time.Since(t0)
	resizeDone.Wait()

	return float64(counters.Total()) / elapsed.Seconds()
}

// MeasureResult bundles a measurement with its context for reporting.
type MeasureResult struct {
	Engine  string
	Readers int
	Resize  bool
	OpsPerS float64
}
