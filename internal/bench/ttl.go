package bench

import (
	"sync"
	"time"

	"rphash/internal/stats"
	"rphash/internal/workload"
)

// TTLMixResult is the outcome of a MeasureTTLMix run.
type TTLMixResult struct {
	LookupsPerS float64
	SetsPerS    float64
	HitRatio    float64 // observed by the readers during the measured interval
}

// shortTTLEvery makes one write in this many a short-TTL write; the
// rest get the long TTL. 4 → a quarter of the population is churning
// out from under the readers at any time.
const shortTTLEvery = 4

// MeasureTTLMix is the caching workload the paper's memcached
// experiment approximates, in microbenchmark form: `readers` lookup
// goroutines against a population that `writers` goroutines
// continuously refresh with a mix of short and long TTLs. Short-TTL
// entries expire underneath the readers, so the measured interval
// sees genuine misses, lazy-expiry checks, and (for TTLSetter
// engines) background sweeper reclamation — not just pure hits.
// Engines without a TTL notion take plain Sets, yielding a
// no-expiry baseline with identical write pressure.
func MeasureTTLMix(e Engine, readers, writers int, cfg Config) TTLMixResult {
	cfg.fillDefaults()
	shortTTL := cfg.WarmDuration // lapses within the run
	longTTL := time.Hour         // never lapses within the run

	ttlSet := func(k uint64, v int, i uint64) {
		ts, ok := e.(TTLSetter)
		if !ok {
			e.Set(k, v)
			return
		}
		if i%shortTTLEvery == 0 {
			ts.SetTTL(k, v, shortTTL)
		} else {
			ts.SetTTL(k, v, longTTL)
		}
	}

	hitCounters := stats.NewCounterSet(max(readers, 1))
	missCounters := stats.NewCounterSet(max(readers, 1))
	writeCounters := stats.NewCounterSet(max(writers, 1))
	stopWarm := make(chan struct{})
	stop := make(chan struct{})
	start := make(chan struct{})
	var ready, done sync.WaitGroup

	for r := 0; r < readers; r++ {
		ready.Add(1)
		done.Add(1)
		go func(id int) {
			defer done.Done()
			lookup, closeFn := e.NewLookup()
			if closeFn != nil {
				defer closeFn()
			}
			gen := workload.NewUniform(cfg.KeySpace, uint64(id)*0x9e3779b9+1)
			ready.Done()
			<-start
			for {
				select {
				case <-stopWarm:
					goto measured
				default:
				}
				lookup(gen.Key())
			}
		measured:
			hits, misses := hitCounters.Slot(id), missCounters.Slot(id)
			var localHits, localMisses uint64
			for {
				select {
				case <-stop:
					hits.Add(localHits)
					misses.Add(localMisses)
					return
				default:
				}
				for i := 0; i < 64; i++ {
					if lookup(gen.Key()) {
						localHits++
					} else {
						localMisses++
					}
				}
			}
		}(r)
	}

	for w := 0; w < writers; w++ {
		ready.Add(1)
		done.Add(1)
		go func(id int) {
			defer done.Done()
			gen := workload.NewUniform(cfg.KeySpace, uint64(id)*0x51afd7ed+7)
			ready.Done()
			<-start
			i := uint64(id)
			for {
				select {
				case <-stopWarm:
					goto measured
				default:
				}
				k := gen.Key()
				ttlSet(k, int(k), i)
				i++
			}
		measured:
			slot := writeCounters.Slot(id)
			var local uint64
			for {
				select {
				case <-stop:
					slot.Add(local)
					return
				default:
				}
				for j := 0; j < 16; j++ {
					k := gen.Key()
					ttlSet(k, int(k), i)
					i++
				}
				local += 16
			}
		}(w)
	}

	ready.Wait()
	close(start)
	time.Sleep(cfg.WarmDuration)
	close(stopWarm)
	t0 := time.Now()
	time.Sleep(cfg.Duration)
	close(stop)
	done.Wait()
	elapsed := time.Since(t0)

	hits, misses := hitCounters.Total(), missCounters.Total()
	res := TTLMixResult{
		LookupsPerS: float64(hits+misses) / elapsed.Seconds(),
		SetsPerS:    float64(writeCounters.Total()) / elapsed.Seconds(),
	}
	if hits+misses > 0 {
		res.HitRatio = float64(hits) / float64(hits+misses)
	}
	return res
}

// preloadTTL fills a TTLSetter engine entirely with long-TTL entries
// (plain Preload for the rest), so the measured interval starts from
// a warm cache.
func preloadTTL(e Engine, cfg Config) {
	ts, ok := e.(TTLSetter)
	if !ok {
		Preload(e, cfg)
		return
	}
	for i := uint64(0); i < cfg.Keys; i++ {
		ts.SetTTL(i, int(i), time.Hour)
	}
}

// measureTTLSeries sweeps cfg.Readers for one engine configuration
// under the TTL mix with two writers, best-of-Repeats.
func measureTTLSeries(name string, mk func() Engine, cfg Config) stats.Series {
	cfg.fillDefaults()
	s := stats.Series{Name: name}
	for _, r := range cfg.Readers {
		best := 0.0
		for i := 0; i < cfg.Repeats; i++ {
			e := mk()
			preloadTTL(e, cfg)
			if res := MeasureTTLMix(e, r, 2, cfg); res.LookupsPerS > best {
				best = res.LookupsPerS
			}
			e.Close()
		}
		s.Add(float64(r), best/1e6)
	}
	return s
}

// FigTTLCache is the repository's caching-workload figure (figure 6):
// lookup throughput versus readers while two writers refresh the
// population with mixed TTLs. rp-cache pays the expiry check, the
// recency stamp, and background sweeping on top of the map; the
// rp-sharded curve is the same map without any of that — the gap is
// the full price of being a cache, and it must stay read-scalable.
func FigTTLCache(cfg Config) stats.Figure {
	cfg.fillDefaults()
	return stats.Figure{
		Title:  "Figure 6: TTL cache workload (repo extension)",
		XLabel: "readers",
		YLabel: "lookups/second (millions)",
		Series: []stats.Series{
			measureTTLSeries("rp-cache", func() Engine { return NewRPCache(cfg.SmallBuckets) }, cfg),
			measureTTLSeries("rp-sharded", func() Engine { return NewRPShardedN(DefaultShards, cfg.SmallBuckets) }, cfg),
		},
	}
}
