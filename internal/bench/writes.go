package bench

import (
	"sync"
	"time"

	"rphash/internal/stats"
	"rphash/internal/workload"
)

// MixedResult is the outcome of a MeasureMixed run. UpsertP99NS is
// the sampled 99th-percentile single-upsert latency in nanoseconds
// (one op timed per 16-op writer batch; 0 when writers == 0).
type MixedResult struct {
	LookupsPerS float64
	UpsertsPerS float64
	UpsertP99NS float64
}

// MeasureMixed runs `readers` lookup goroutines and `writers` upsert
// goroutines against e for cfg.Duration and returns both aggregate
// rates. Writers Set uniform-random keys from cfg.KeySpace, so the
// population climbs from the cfg.Keys preload toward ~KeySpace
// during warmup and the measured interval sees a steady
// insert/replace mix at that level, every write exercising the full
// upsert path (hash, shard/bucket route, mutex, publish). Either
// count may be zero: readers=0 gives a pure write-throughput
// measurement, writers=0 degenerates to MeasureLookups without the
// resizer.
func MeasureMixed(e Engine, readers, writers int, cfg Config) MixedResult {
	cfg.fillDefaults()

	readCounters := stats.NewCounterSet(max(readers, 1))
	writeCounters := stats.NewCounterSet(max(writers, 1))
	writeHists := make([]stats.Histogram, max(writers, 1))
	stopWarm := make(chan struct{})
	stop := make(chan struct{})
	start := make(chan struct{})
	var ready, done sync.WaitGroup

	for r := 0; r < readers; r++ {
		ready.Add(1)
		done.Add(1)
		go func(id int) {
			defer done.Done()
			lookup, closeFn := e.NewLookup()
			if closeFn != nil {
				defer closeFn()
			}
			gen := workload.NewUniform(cfg.KeySpace, uint64(id)*0x9e3779b9+1)
			ready.Done()
			<-start
			for {
				select {
				case <-stopWarm:
					goto measured
				default:
				}
				lookup(gen.Key())
			}
		measured:
			slot := readCounters.Slot(id)
			var local uint64
			for {
				select {
				case <-stop:
					slot.Add(local)
					return
				default:
				}
				for i := 0; i < 64; i++ {
					lookup(gen.Key())
				}
				local += 64
			}
		}(r)
	}

	for w := 0; w < writers; w++ {
		ready.Add(1)
		done.Add(1)
		go func(id int) {
			defer done.Done()
			gen := writerGen(cfg, id)
			ready.Done()
			<-start
			for {
				select {
				case <-stopWarm:
					goto measured
				default:
				}
				k := gen.Key()
				e.Set(k, int(k))
			}
		measured:
			slot := writeCounters.Slot(id)
			hist := &writeHists[id]
			var local uint64
			for {
				select {
				case <-stop:
					slot.Add(local)
					return
				default:
				}
				// Smaller batches than the read side: upserts are
				// slower, and oversized batches would smear the stop
				// edge into the rate. The first op of each batch is
				// timed (1-in-16 sampling) for the p99 estimate,
				// keeping clock reads off the other fifteen.
				k := gen.Key()
				t0 := time.Now()
				e.Set(k, int(k))
				hist.Observe(uint64(time.Since(t0).Nanoseconds()))
				for i := 1; i < 16; i++ {
					k := gen.Key()
					e.Set(k, int(k))
				}
				local += 16
			}
		}(w)
	}

	ready.Wait()
	close(start)
	time.Sleep(cfg.WarmDuration)
	close(stopWarm)
	t0 := time.Now()
	time.Sleep(cfg.Duration)
	close(stop)
	done.Wait()
	elapsed := time.Since(t0)

	var merged stats.Histogram
	for i := range writeHists {
		merged.Merge(&writeHists[i])
	}
	return MixedResult{
		LookupsPerS: float64(readCounters.Total()) / elapsed.Seconds(),
		UpsertsPerS: float64(writeCounters.Total()) / elapsed.Seconds(),
		UpsertP99NS: float64(merged.Quantile(0.99)),
	}
}

// writerGen builds one writer goroutine's key stream: uniform by
// default, Zipf-skewed when cfg.WriteSkew > 1 (hot keys, as cache
// write traffic sees them).
func writerGen(cfg Config, id int) workload.KeyGen {
	if cfg.WriteSkew > 1 {
		return workload.NewZipf(cfg.KeySpace, cfg.WriteSkew, int64(id)*0x51afd7ed+7)
	}
	return workload.NewUniform(cfg.KeySpace, uint64(id)*0x51afd7ed+7)
}

// MeasureUpserts is the pure write-throughput sweep point: `writers`
// goroutines upserting random keys (uniform, or Zipf when
// cfg.WriteSkew is set), no readers.
func MeasureUpserts(e Engine, writers int, cfg Config) float64 {
	return MeasureMixed(e, 0, writers, cfg).UpsertsPerS
}

// measureWriteSeries sweeps cfg.Readers (interpreted as writer
// counts) for one engine configuration, best-of-Repeats like
// measureSeries.
func measureWriteSeries(name string, mk func() Engine, cfg Config) stats.Series {
	cfg.fillDefaults()
	s := stats.Series{Name: name}
	for _, w := range cfg.Readers {
		best, bestP99 := 0.0, 0.0
		for i := 0; i < cfg.Repeats; i++ {
			e := mk()
			Preload(e, cfg)
			if res := MeasureMixed(e, 0, w, cfg); res.UpsertsPerS > best {
				best, bestP99 = res.UpsertsPerS, res.UpsertP99NS
			}
			e.Close()
		}
		s.AddWithP99(float64(w), best/1e6, bestP99)
	}
	return s
}

// FigWriteScaling is the repository's write-scaling extension figure
// (figure 5): aggregate upsert throughput versus concurrent writers
// for the striped relativistic table, the same table with the
// lock-free CAS insert fast path (the shipping default), the table
// pinned to a single writer lock (the paper's writer model, kept as
// the ablation baseline), the sharded relativistic map, and the
// lock-based baselines. This is the measurement the paper does not
// have — its evaluation runs one writer — and the axis the striped
// writer locks and the CAS fast path exist to scale.
//
// The RP series is pinned to WithCASInsert(false) so it keeps
// measuring the striped write path it has always measured (the CI
// regression gate compares series across runs by name); rp-caswrite
// is the same table with the fast path on.
func FigWriteScaling(cfg Config) stats.Figure {
	cfg.fillDefaults()
	return stats.Figure{
		Title:  "Figure 5: multi-writer upsert scaling (repo extension)",
		XLabel: "writers",
		YLabel: "upserts/second (millions)",
		Series: []stats.Series{
			measureWriteSeries("RP", func() Engine { return NewRPLockedWrite(cfg.SmallBuckets) }, cfg),
			measureWriteSeries("rp-caswrite", func() Engine { return NewRPCASWrite(cfg.SmallBuckets) }, cfg),
			measureWriteSeries("rp-flat", func() Engine { return NewRPFlat(cfg.SmallBuckets) }, cfg),
			measureWriteSeries("RP-1lock", func() Engine { return NewRPSingleLock(cfg.SmallBuckets) }, cfg),
			measureWriteSeries("rp-sharded", func() Engine { return NewRPSharded(cfg.SmallBuckets) }, cfg),
			measureWriteSeries("sharded-lock", func() Engine { return NewSharded(cfg.SmallBuckets) }, cfg),
			measureWriteSeries("mutex", func() Engine { return NewMutex(cfg.SmallBuckets) }, cfg),
		},
	}
}
