package cache

import (
	"testing"
	"time"
)

// TestCacheAdaptPlumbing: the cache surfaces its map's adaptive
// maintenance — on by default, off with WithAdapt(nil) — and carries
// the aggregate in Stats().Map.Adapt.
func TestCacheAdaptPlumbing(t *testing.T) {
	c := NewUint64[int]()
	defer c.Close()
	st, ok := c.AdaptStats()
	if !ok || st.Stripes == 0 {
		t.Fatalf("AdaptStats() = %+v, %v on a default cache; want on with stripes", st, ok)
	}
	if full := c.Stats(); !full.Map.AdaptOn {
		t.Fatal("Stats().Map.AdaptOn = false on a default cache")
	}

	off := NewUint64[int](WithAdapt(nil))
	defer off.Close()
	if _, ok := off.AdaptStats(); ok {
		t.Fatal("AdaptStats() ok with WithAdapt(nil)")
	}
}

// TestSweeperExitsOnDomainClose: the background sweeper watches the
// map's domain Done channel, so a cache whose domain shuts down
// first releases its sweeper goroutine promptly instead of leaving
// it to stall on synchronous post-Close grace periods. Close after
// that must still return (sweepWG must not deadlock).
func TestSweeperExitsOnDomainClose(t *testing.T) {
	c := NewUint64[int](WithSweepInterval(time.Millisecond))
	c.SetTTL(1, 1, time.Nanosecond)
	time.Sleep(5 * time.Millisecond) // let the sweeper tick

	// Close the shared domain out from under the sweeper; Done fires.
	c.m.Domain().Close()

	done := make(chan struct{})
	go func() {
		c.sweepWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("sweeper did not exit after the domain closed")
	}
	if c.ownClk {
		c.clk.Stop()
	}
}
