package cache

import (
	"testing"
	"time"
)

// BenchmarkCacheGetHit guards the zero-allocation hit path: a hit is
// one lock-free chain walk plus the coarse-clock expiry check and
// recency stamp. Run with -benchmem; allocs/op must stay 0.
func BenchmarkCacheGetHit(b *testing.B) {
	c := NewUint64[uint64](WithSweepInterval(0), WithTTL(time.Hour))
	defer c.Close()
	const keys = 1024
	for i := uint64(0); i < keys; i++ {
		c.Set(i, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(uint64(i) & (keys - 1)); !ok {
			b.Fatal("miss on preloaded key")
		}
	}
}

// BenchmarkCacheGetterHit is the registered-read-handle flavor the
// long-lived reader goroutines use; also required to stay 0 allocs.
func BenchmarkCacheGetterHit(b *testing.B) {
	c := NewUint64[uint64](WithSweepInterval(0), WithTTL(time.Hour))
	defer c.Close()
	const keys = 1024
	for i := uint64(0); i < keys; i++ {
		c.Set(i, i)
	}
	get, release := c.NewGetter()
	defer release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := get(uint64(i) & (keys - 1)); !ok {
			b.Fatal("miss on preloaded key")
		}
	}
}

// BenchmarkCacheGetMultiHit guards the batched hit path: after
// warm-up (pooled scratch, pooled reader) a whole batch must stay at
// 0 allocs/op, with the reader-section, clock, and counter costs
// amortized across the batch. ns/op is per 64-key batch.
func BenchmarkCacheGetMultiHit(b *testing.B) {
	c := NewUint64[uint64](WithSweepInterval(0), WithTTL(time.Hour))
	defer c.Close()
	const keys = 1024
	for i := uint64(0); i < keys; i++ {
		c.Set(i, i)
	}
	const batch = 64
	ks := make([]uint64, batch)
	vals := make([]uint64, batch)
	oks := make([]bool, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ks {
			ks[j] = uint64(i+j) & (keys - 1)
		}
		c.GetMulti(ks, vals, oks)
		if !oks[0] {
			b.Fatal("miss on preloaded key")
		}
	}
}

// BenchmarkCacheGetOrLoadHit measures the stampede-protected read on
// the hit path (no flight is created on a hit).
func BenchmarkCacheGetOrLoadHit(b *testing.B) {
	c := NewUint64[uint64](WithSweepInterval(0))
	defer c.Close()
	c.Set(1, 1)
	load := func() (uint64, error) { return 1, nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.GetOrLoad(1, load); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheSet measures the write path including accounting.
func BenchmarkCacheSet(b *testing.B) {
	c := NewUint64[uint64](WithSweepInterval(0))
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Set(uint64(i)&4095, uint64(i))
	}
}
