// Package cache is a generic caching layer on the sharded
// relativistic hash map: TTL expiry driven by a coarse clock,
// cost-bounded capacity with per-shard sampled-LRU eviction, and a
// built-in singleflight loader for thundering-herd protection. It is
// the reusable form of the expiry/eviction/accounting machinery the
// paper's memcached patch buries inside its storage engine.
//
// The read path inherits the map's relativistic contract: a cache hit
// is one lock-free chain walk plus two atomic loads (coarse clock,
// expiry check) and one atomic store (recency stamp) — no locks, no
// read-modify-writes, no allocation. Expired entries read as misses
// immediately (lazy expiry); their memory is reclaimed by writers, by
// an incremental background sweeper that walks one shard per tick
// inside RCU reader sections, or by eviction sampling, whichever gets
// there first.
//
// Capacity is a cost budget (bytes, entries, or any caller-defined
// unit; every Set carries a cost). When the budget is exceeded the
// writer that crossed it evicts: it samples entries from the shard it
// wrote to — rotating onward while over budget — and removes the
// least-recently-used of the sample, preferring already-expired
// entries. This is memcached's later sampled-LRU ("lru_crawler")
// shape rather than a strict list, which cannot be maintained without
// serializing GETs; it is also the per-bucket on-demand maintenance
// spirit of Malakhov's concurrent rehashing. Readers are never
// blocked by eviction.
package cache

import (
	"sync"
	"sync/atomic"
	"time"

	"rphash/internal/adapt"
	"rphash/internal/clock"
	"rphash/internal/core"
	"rphash/internal/hashfn"
	"rphash/internal/obs"
	"rphash/internal/rcu"
	"rphash/internal/shard"
	"rphash/internal/stats"
)

// entry is one cache record. Everything but the recency stamp is
// immutable after publication, which is what keeps lock-free readers
// safe: a Set publishes a fresh entry rather than mutating this one.
type entry[V any] struct {
	val      V
	expireAt int64 // unix nanos; 0 = never
	cost     int64
	lastUsed atomic.Int64 // coarse unix nanos; plain atomic store on hit
}

// Cache is a TTL + eviction + stampede-protected cache over
// shard.Map. Create with New; the zero value is not usable. All
// methods are safe for concurrent use.
type Cache[K comparable, V any] struct {
	m    *shard.Map[K, *entry[V]]
	hash func(K) uint64

	clk    *clock.Clock
	ownClk bool

	defaultTTL time.Duration
	maxCost    int64
	sample     int

	cost atomic.Int64 // sum of live entry costs (exact)

	hits      stats.Striped
	misses    stats.Striped
	getterSeq atomic.Uint64

	loads       atomic.Uint64
	loadErrors  atomic.Uint64
	evictions   atomic.Uint64
	expirations atomic.Uint64

	evictMu  sync.Mutex
	evictSeq atomic.Uint64 // scrambled into the sampling start offset

	// obsv, when set (WithObserver), receives GetOrLoad loader
	// latency; the underlying map and domain are wired through
	// shard.WithObserver. The hit path is never instrumented.
	obsv *obs.Observer

	flights [flightStripes]flightShard[K, V]

	// multiPool recycles GetMulti/GetOrLoadMulti workspaces (multi.go).
	multiPool sync.Pool

	sweepStop chan struct{}
	sweepWG   sync.WaitGroup
}

// DefaultSweepInterval is the background sweeper cadence when the
// caller does not choose one.
const DefaultSweepInterval = 500 * time.Millisecond

// defaultSample is how many candidates an eviction pass examines per
// shard when choosing a victim.
const defaultSample = 16

type config struct {
	ttl       time.Duration
	maxCost   int64
	shards    int
	initial   uint64
	engine    string
	policy    core.Policy
	hasPolicy bool
	sweep     time.Duration
	clk       *clock.Clock
	sample    int
	adapt     *adapt.Config
	adaptSet  bool
	obsv      *obs.Observer
}

// Option configures a Cache at construction.
type Option func(*config)

// WithTTL sets the default time-to-live applied by Set and GetOrLoad
// (0 = entries never expire). SetTTL/SetWith override it per entry.
func WithTTL(d time.Duration) Option { return func(c *config) { c.ttl = d } }

// WithMaxCost bounds the cache's total cost (the sum of per-entry
// costs; Set's default cost is 1, so with defaults this is a max
// entry count). <= 0 disables eviction.
func WithMaxCost(n int64) Option { return func(c *config) { c.maxCost = n } }

// WithShards sets the underlying map's shard count (rounded up to a
// power of two; default NextPowerOfTwo(GOMAXPROCS)).
func WithShards(n int) Option { return func(c *config) { c.shards = n } }

// WithInitialBuckets sets the total initial bucket count across
// shards.
func WithInitialBuckets(n uint64) Option { return func(c *config) { c.initial = n } }

// WithEngine selects the underlying tables' bucket representation
// (see core.WithEngine): core.EngineChain (the default) or
// core.EngineFlat.
func WithEngine(name string) Option { return func(c *config) { c.engine = name } }

// WithPolicy overrides the auto-resize policy (the default expands
// beyond 2 elements/bucket and shrinks below 0.25). Pass the zero
// Policy to pin the bucket count.
func WithPolicy(p core.Policy) Option {
	return func(c *config) { c.policy, c.hasPolicy = p, true }
}

// WithSweepInterval sets the background expiry sweeper cadence
// (default DefaultSweepInterval). <= 0 disables the sweeper; expired
// entries are then reclaimed only by SweepExpired calls, eviction
// sampling, and overwrites.
func WithSweepInterval(d time.Duration) Option {
	return func(c *config) { c.sweep = d }
}

// WithClock injects a coarse clock (tests use clock.NewManual; fleets
// can share one ticker). The cache will not stop an injected clock.
func WithClock(clk *clock.Clock) Option { return func(c *config) { c.clk = clk } }

// WithSampleSize sets how many candidates an eviction pass examines
// per shard (default 16; larger samples approximate LRU better at
// higher eviction cost).
func WithSampleSize(n int) Option { return func(c *config) { c.sample = n } }

// WithAdapt configures the underlying map's adaptive maintenance
// controllers (see shard.WithAdapt): on by default with
// adapt.DefaultConfig so the cache's writer stripes and resize
// fan-out track live contention; WithAdapt(nil) pins maintenance off
// for reproducible benchmarks.
func WithAdapt(cfg *adapt.Config) Option {
	return func(c *config) { c.adapt, c.adaptSet = cfg, true }
}

// WithObserver wires the cache into an observability hub (see
// internal/obs): singleflight loader latency feeds o.CacheLoad, and
// the underlying sharded map — stripe waits, resize lifecycle, RCU
// grace waits — is wired through shard.WithObserver. The lock-free
// hit path is deliberately not instrumented: its cost budget is zero.
func WithObserver(o *obs.Observer) Option { return func(c *config) { c.obsv = o } }

// New creates a cache keyed by K using the supplied hash function
// (same contract as shard.New: deterministic, well mixed high and low
// bits).
func New[K comparable, V any](hash func(K) uint64, opts ...Option) *Cache[K, V] {
	cfg := config{sweep: DefaultSweepInterval, sample: defaultSample}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.sample <= 0 {
		cfg.sample = defaultSample
	}

	var mopts []shard.Option
	if cfg.shards > 0 {
		mopts = append(mopts, shard.WithShards(cfg.shards))
	}
	if cfg.initial > 0 {
		mopts = append(mopts, shard.WithInitialBuckets(cfg.initial))
	}
	if cfg.engine != "" {
		mopts = append(mopts, shard.WithEngine(cfg.engine))
	}
	if !cfg.hasPolicy {
		cfg.policy = core.Policy{MaxLoad: 2, MinLoad: 0.25, MinBuckets: max(cfg.initial, 64)}
	}
	if cfg.policy != (core.Policy{}) {
		mopts = append(mopts, shard.WithPolicy(cfg.policy))
	}
	if cfg.adaptSet {
		mopts = append(mopts, shard.WithAdapt(cfg.adapt))
	}
	if cfg.obsv != nil {
		mopts = append(mopts, shard.WithObserver(cfg.obsv))
	}

	c := &Cache[K, V]{
		m:          shard.New[K, *entry[V]](hash, mopts...),
		hash:       hash,
		defaultTTL: cfg.ttl,
		maxCost:    cfg.maxCost,
		sample:     cfg.sample,
		obsv:       cfg.obsv,
	}
	if cfg.clk != nil {
		c.clk = cfg.clk
	} else {
		c.clk = clock.New(clock.DefaultGranularity)
		c.ownClk = true
	}
	if cfg.sweep > 0 {
		c.sweepStop = make(chan struct{})
		c.sweepWG.Add(1)
		go c.runSweeper(cfg.sweep)
	}
	return c
}

// NewUint64 creates a cache keyed by uint64 with the standard
// splitmix64 finalizer.
func NewUint64[V any](opts ...Option) *Cache[uint64, V] {
	return New[uint64, V](func(k uint64) uint64 { return hashfn.Uint64(k, 0) }, opts...)
}

// NewString creates a cache keyed by string with seeded FNV-1a plus
// an avalanche finalizer.
func NewString[V any](opts ...Option) *Cache[string, V] {
	return New[string, V](func(k string) uint64 { return hashfn.String(k, 0) }, opts...)
}

// expired reports whether e is past its expiry on the coarse clock.
func (c *Cache[K, V]) expired(e *entry[V]) bool {
	return e.expireAt != 0 && e.expireAt <= c.clk.Nanos()
}

// Get returns the live value for k. Hits are lock-free and
// allocation-free; expired entries read as misses (lazy expiry).
func (c *Cache[K, V]) Get(k K) (V, bool) {
	return c.get(c.hash(k), k, 0)
}

func (c *Cache[K, V]) get(h uint64, k K, stripe int) (V, bool) {
	e, ok := c.m.GetHashed(h, k)
	if ok && !c.expired(e) {
		e.lastUsed.Store(c.clk.Nanos())
		c.hits.Add(stripe)
		return e.val, true
	}
	c.misses.Add(stripe)
	var zero V
	return zero, false
}

// peek is get without counters or a recency bump, for internal
// presence checks that must not skew hit/miss stats.
func (c *Cache[K, V]) peek(h uint64, k K) (V, bool) {
	e, ok := c.m.GetHashed(h, k)
	if ok && !c.expired(e) {
		return e.val, true
	}
	var zero V
	return zero, false
}

// Peek returns the live value for k without counting a hit or a miss
// and without bumping recency — monitoring and conditional logic use
// it so they don't distort eviction order or stats.
func (c *Cache[K, V]) Peek(k K) (V, bool) {
	return c.peek(c.hash(k), k)
}

// Contains reports whether k is live, without touching stats.
func (c *Cache[K, V]) Contains(k K) bool {
	_, ok := c.Peek(k)
	return ok
}

// NewGetter returns a per-goroutine lock-free Get bound to a
// registered read handle — the hot path long-lived reader goroutines
// use — plus a release function. The getter is not safe for
// concurrent use; create one per goroutine.
func (c *Cache[K, V]) NewGetter() (get func(K) (V, bool), release func()) {
	h := c.m.NewReadHandle()
	stripe := int(c.getterSeq.Add(1))
	return func(k K) (V, bool) {
		e, ok := h.Get(k)
		if ok && !c.expired(e) {
			e.lastUsed.Store(c.clk.Nanos())
			c.hits.Add(stripe)
			return e.val, true
		}
		c.misses.Add(stripe)
		var zero V
		return zero, false
	}, h.Close
}

// Set stores v under k with the cache's default TTL and cost 1.
func (c *Cache[K, V]) Set(k K, v V) { c.SetWith(k, v, c.defaultTTL, 1) }

// SetTTL stores v under k with an explicit time-to-live (<= 0 means
// never expires) and cost 1.
func (c *Cache[K, V]) SetTTL(k K, v V, ttl time.Duration) { c.SetWith(k, v, ttl, 1) }

// SetWith stores v under k with an explicit TTL (<= 0 = never) and
// cost. Cost is the entry's weight against WithMaxCost — bytes for a
// byte-budgeted cache, 1 for an entry-count cache.
func (c *Cache[K, V]) SetWith(k K, v V, ttl time.Duration, cost int64) {
	var at int64
	if ttl > 0 {
		at = c.clk.Nanos() + ttl.Nanoseconds()
	}
	c.setAbs(c.hash(k), k, v, at, cost)
}

// SetExpiresAt stores v under k expiring at an absolute time (the
// zero time = never); engines whose protocol carries absolute unix
// expiries (memcached) use this form.
func (c *Cache[K, V]) SetExpiresAt(k K, v V, at time.Time, cost int64) {
	var abs int64
	if !at.IsZero() {
		abs = at.UnixNano()
	}
	c.setAbs(c.hash(k), k, v, abs, cost)
}

// setAbs publishes a fresh entry and settles accounting: the cost
// delta is computed from the exact entry displaced (SwapHashed's
// read-out and replacement are atomic under the key's writer
// stripe — the table's per-bucket lock — which serializes every
// writer on this key), so concurrent writers on one key can never
// double-count. The writer that pushes the budget over then pays for
// eviction.
func (c *Cache[K, V]) setAbs(h uint64, k K, v V, expireAt, cost int64) {
	if cost < 0 {
		cost = 0
	}
	e := &entry[V]{val: v, expireAt: expireAt, cost: cost}
	e.lastUsed.Store(c.clk.Nanos())
	delta := cost
	if old, replaced := c.m.SwapHashed(h, k, e); replaced {
		delta -= old.cost
	}
	if c.cost.Add(delta) > c.maxCost && c.maxCost > 0 {
		c.evict(c.m.ShardIndex(h))
	}
}

// Update runs a read-modify-write for k under its writer stripe: fn
// receives the current value (zero if absent or expired) and whether
// a live entry exists, and returns the value to store, its absolute
// expiry (the zero time = never), its cost, and whether to store at
// all. The whole sequence — examine, decide, publish — is atomic with
// respect to every other writer on the key, which is what the
// memcached-style conditional commands (add, cas, incr) need without
// a store-wide mutex. fn runs with the stripe held: keep it fast,
// never block, never touch the cache from inside it.
//
// Accounting follows setAbs exactly: the cost delta is settled once
// from the exact entry displaced, and the writer that pushes the
// budget over pays for eviction after the stripe is released.
func (c *Cache[K, V]) Update(k K, fn func(cur V, live bool) (V, time.Time, int64, bool)) bool {
	h := c.hash(k)
	var newCost int64
	prev, hadPrev, stored := c.m.UpdateHashed(h, k, func(cur *entry[V], present bool) (*entry[V], bool) {
		var curV V
		live := present && !c.expired(cur)
		if live {
			curV = cur.val
		}
		v, at, cost, store := fn(curV, live)
		if !store {
			return nil, false
		}
		if cost < 0 {
			cost = 0
		}
		var abs int64
		if !at.IsZero() {
			abs = at.UnixNano()
		}
		e := &entry[V]{val: v, expireAt: abs, cost: cost}
		e.lastUsed.Store(c.clk.Nanos())
		newCost = cost
		return e, true
	})
	if !stored {
		return false
	}
	delta := newCost
	if hadPrev {
		delta -= prev.cost
	}
	if c.cost.Add(delta) > c.maxCost && c.maxCost > 0 {
		c.evict(c.m.ShardIndex(h))
	}
	return true
}

// Delete removes k, reporting whether an entry was removed (expired
// entries count: they were still occupying memory). Removing an
// expired entry is recorded as an expiration.
func (c *Cache[K, V]) Delete(k K) bool {
	e, ok := c.m.CompareAndDelete(k, nil)
	if !ok {
		return false
	}
	c.cost.Add(-e.cost)
	if c.expired(e) {
		c.expirations.Add(1)
	}
	return true
}

// Range calls fn for every live entry until fn returns false. Expired
// entries are skipped. Per-shard semantics match Table.Range; there
// is no cross-shard snapshot.
func (c *Cache[K, V]) Range(fn func(K, V) bool) {
	c.m.Range(func(k K, e *entry[V]) bool {
		if c.expired(e) {
			return true
		}
		return fn(k, e.val)
	})
}

// Len returns the entry count, including expired entries not yet
// reclaimed.
func (c *Cache[K, V]) Len() int { return c.m.Len() }

// Cost returns the current cost total (including expired entries not
// yet reclaimed).
func (c *Cache[K, V]) Cost() int64 { return c.cost.Load() }

// MaxCost returns the configured budget (<= 0 = unbounded).
func (c *Cache[K, V]) MaxCost() int64 { return c.maxCost }

// Buckets returns the total bucket count across shards.
func (c *Cache[K, V]) Buckets() int { return c.m.Buckets() }

// NumShards returns the underlying map's shard count.
func (c *Cache[K, V]) NumShards() int { return c.m.NumShards() }

// Domain exposes the underlying map's shared RCU domain (metrics
// export reads its grace-period counters; embedders can run
// multi-lookup read sections against it).
func (c *Cache[K, V]) Domain() *rcu.Domain { return c.m.Domain() }

// MapCounters returns the underlying sharded map's aggregated
// counter snapshot without any bucket walk (see
// shard.Map.CounterStats): scrape-endpoint safe at any table size.
func (c *Cache[K, V]) MapCounters() core.Stats { return c.m.CounterStats() }

// Resize retargets the total bucket count, divided across shards.
func (c *Cache[K, V]) Resize(total uint64) { c.m.Resize(total) }

// Close stops the sweeper (and the clock, if the cache created it)
// and releases the underlying map. The cache must not be used
// afterwards.
func (c *Cache[K, V]) Close() {
	if c.sweepStop != nil {
		close(c.sweepStop)
		c.sweepWG.Wait()
		c.sweepStop = nil
	}
	if c.ownClk {
		c.clk.Stop()
	}
	c.m.Close()
}
