package cache

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"rphash/internal/clock"
)

// newManual builds a cache on a manual clock with the background
// sweeper off, so tests control time and reclamation exactly.
func newManual(t *testing.T, opts ...Option) (*Cache[string, string], *clock.Clock) {
	t.Helper()
	clk := clock.NewManual(time.Unix(1_000_000, 0))
	opts = append([]Option{WithClock(clk), WithSweepInterval(0)}, opts...)
	c := NewString[string](opts...)
	t.Cleanup(c.Close)
	return c, clk
}

func TestSetGetDelete(t *testing.T) {
	c, _ := newManual(t)
	if _, ok := c.Get("k"); ok {
		t.Fatal("Get on empty cache")
	}
	c.Set("k", "v")
	if v, ok := c.Get("k"); !ok || v != "v" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if c.Len() != 1 || c.Cost() != 1 {
		t.Fatalf("Len=%d Cost=%d, want 1,1", c.Len(), c.Cost())
	}
	c.Set("k", "v2") // replace: cost must not double-count
	if c.Cost() != 1 {
		t.Fatalf("Cost after replace = %d, want 1", c.Cost())
	}
	if !c.Delete("k") || c.Delete("k") {
		t.Fatal("Delete semantics wrong")
	}
	if c.Cost() != 0 {
		t.Fatalf("Cost after delete = %d, want 0", c.Cost())
	}
}

func TestTTLExpiry(t *testing.T) {
	c, clk := newManual(t)
	c.SetTTL("short", "v", time.Second)
	c.SetTTL("long", "v", time.Hour)
	c.Set("never", "v") // default TTL 0 = never

	clk.Advance(2 * time.Second)
	if _, ok := c.Get("short"); ok {
		t.Fatal("expired entry returned (lazy expiry broken)")
	}
	if _, ok := c.Get("long"); !ok {
		t.Fatal("live entry missing")
	}
	if _, ok := c.Get("never"); !ok {
		t.Fatal("non-expiring entry missing")
	}

	// The expired entry still occupies memory until swept.
	if c.Len() != 3 || c.Cost() != 3 {
		t.Fatalf("pre-sweep Len=%d Cost=%d, want 3,3", c.Len(), c.Cost())
	}
	if n := c.SweepExpired(100); n != 1 {
		t.Fatalf("SweepExpired = %d, want 1", n)
	}
	if c.Len() != 2 || c.Cost() != 2 {
		t.Fatalf("post-sweep Len=%d Cost=%d, want 2,2", c.Len(), c.Cost())
	}
	if st := c.Stats(); st.Expirations != 1 {
		t.Fatalf("Expirations = %d, want 1", st.Expirations)
	}
}

func TestDefaultTTL(t *testing.T) {
	c, clk := newManual(t, WithTTL(time.Second))
	c.Set("k", "v")
	if _, ok := c.Get("k"); !ok {
		t.Fatal("fresh entry missing")
	}
	clk.Advance(2 * time.Second)
	if _, ok := c.Get("k"); ok {
		t.Fatal("default TTL not applied by Set")
	}
}

func TestSetExpiresAt(t *testing.T) {
	c, clk := newManual(t)
	at := clk.Now().Add(time.Second)
	c.SetExpiresAt("k", "v", at, 1)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("entry missing before absolute expiry")
	}
	clk.Advance(2 * time.Second)
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry alive past absolute expiry")
	}
	c.SetExpiresAt("k2", "v", time.Time{}, 1) // zero time = never
	clk.Advance(time.Hour)
	if _, ok := c.Get("k2"); !ok {
		t.Fatal("zero-time entry expired")
	}
}

func TestCapacityEviction(t *testing.T) {
	c, _ := newManual(t, WithMaxCost(20))
	for i := 0; i < 100; i++ {
		c.Set(fmt.Sprintf("key-%04d", i), "v")
	}
	if got := c.Cost(); got > 20 {
		t.Fatalf("Cost = %d exceeds budget 20 after eviction", got)
	}
	if n := c.Len(); n == 0 || n > 20 {
		t.Fatalf("Len = %d, want (0,20]", n)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestByteCostEviction(t *testing.T) {
	const itemCost = 100
	c, _ := newManual(t, WithMaxCost(10*itemCost))
	for i := 0; i < 50; i++ {
		c.SetWith(fmt.Sprintf("key-%04d", i), "v", 0, itemCost)
	}
	if got := c.Cost(); got > 10*itemCost {
		t.Fatalf("Cost = %d exceeds byte budget", got)
	}
	if n := c.Len(); n == 0 || n > 10 {
		t.Fatalf("Len = %d, want (0,10]", n)
	}
}

func TestEvictionPrefersExpired(t *testing.T) {
	// Per-shard sampling can only prefer expired entries it sees, so
	// use one shard and a sample covering the whole population: the
	// expired entry must go first.
	c, clk := newManual(t, WithShards(1), WithMaxCost(10), WithSampleSize(64))
	c.SetTTL("stale", "v", time.Second)
	clk.Advance(2 * time.Second)
	for i := 0; i < 10; i++ {
		c.Set(fmt.Sprintf("live-%d", i), "v")
	}
	if _, ok := c.m.Get("stale"); ok {
		t.Fatal("expired entry survived eviction pressure")
	}
	st := c.Stats()
	if st.Expirations != 1 {
		t.Fatalf("Expirations = %d, want 1 (expired victim must not count as eviction)", st.Expirations)
	}
}

func TestGetOrLoadBasics(t *testing.T) {
	c, _ := newManual(t)
	calls := 0
	load := func() (string, error) { calls++; return "loaded", nil }

	v, err := c.GetOrLoad("k", load)
	if err != nil || v != "loaded" || calls != 1 {
		t.Fatalf("first GetOrLoad = %q, %v (calls=%d)", v, err, calls)
	}
	v, err = c.GetOrLoad("k", load)
	if err != nil || v != "loaded" || calls != 1 {
		t.Fatalf("second GetOrLoad = %q, %v (calls=%d, want cached)", v, err, calls)
	}
	if st := c.Stats(); st.Loads != 1 {
		t.Fatalf("Loads = %d, want 1", st.Loads)
	}
}

func TestGetOrLoadErrorNotCached(t *testing.T) {
	c, _ := newManual(t)
	boom := errors.New("backend down")
	calls := 0
	if _, err := c.GetOrLoad("k", func() (string, error) { calls++; return "", boom }); err != boom {
		t.Fatalf("error not propagated: %v", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("failed load was cached")
	}
	if _, err := c.GetOrLoad("k", func() (string, error) { calls++; return "ok", nil }); err != nil {
		t.Fatalf("retry after error: %v", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (error must not be cached)", calls)
	}
	if st := c.Stats(); st.LoadErrors != 1 || st.Loads != 1 {
		t.Fatalf("Loads=%d LoadErrors=%d, want 1,1", st.Loads, st.LoadErrors)
	}
}

func TestGetOrLoadPanicDoesNotPoisonKey(t *testing.T) {
	c, _ := newManual(t)

	// Waiters parked on the panicking leader's flight must be released
	// with an error, not stranded on a never-closed channel.
	started := make(chan struct{})
	waitErr := make(chan error, 1)
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		defer func() {
			if recover() == nil {
				t.Error("leader's panic was swallowed")
			}
		}()
		c.GetOrLoad("k", func() (string, error) {
			close(started)
			time.Sleep(20 * time.Millisecond) // let the waiter park
			panic("backend exploded")
		})
	}()
	<-started
	go func() {
		_, err := c.GetOrLoad("k", func() (string, error) { return "waiter won, impossible", nil })
		waitErr <- err
	}()
	select {
	case err := <-waitErr:
		if err == nil {
			t.Fatal("waiter sharing a panicked flight got a nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter deadlocked on the panicked leader's flight")
	}
	<-leaderDone

	// The key must not be poisoned: a fresh GetOrLoad runs a new load.
	v, err := c.GetOrLoad("k", func() (string, error) { return "recovered", nil })
	if err != nil || v != "recovered" {
		t.Fatalf("GetOrLoad after panic = %q, %v; want recovered, nil", v, err)
	}
}

func TestGetOrLoadTTL(t *testing.T) {
	c, clk := newManual(t)
	calls := 0
	load := func() (string, error) { calls++; return "v", nil }
	if _, err := c.GetOrLoadTTL("k", time.Second, load); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	if _, err := c.GetOrLoadTTL("k", time.Second, load); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (expired entry must reload)", calls)
	}
}

func TestPeekDoesNotCount(t *testing.T) {
	c, _ := newManual(t)
	c.Set("k", "v")
	c.Peek("k")
	c.Peek("absent")
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Peek counted: hits=%d misses=%d", st.Hits, st.Misses)
	}
	c.Get("k")
	c.Get("absent")
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("Get miscounted: hits=%d misses=%d", st.Hits, st.Misses)
	}
}

func TestGetter(t *testing.T) {
	c, clk := newManual(t)
	c.SetTTL("k", "v", time.Second)
	get, release := c.NewGetter()
	defer release()
	if v, ok := get("k"); !ok || v != "v" {
		t.Fatalf("getter Get = %q, %v", v, ok)
	}
	clk.Advance(2 * time.Second)
	if _, ok := get("k"); ok {
		t.Fatal("getter returned expired entry")
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("getter stats: hits=%d misses=%d", st.Hits, st.Misses)
	}
}

func TestRangeSkipsExpired(t *testing.T) {
	c, clk := newManual(t)
	c.SetTTL("gone", "v", time.Second)
	c.Set("here", "v")
	clk.Advance(2 * time.Second)
	seen := map[string]bool{}
	c.Range(func(k, _ string) bool { seen[k] = true; return true })
	if seen["gone"] || !seen["here"] {
		t.Fatalf("Range saw %v", seen)
	}
}

func TestPurge(t *testing.T) {
	c, clk := newManual(t)
	c.SetTTL("a", "v", time.Second)
	c.Set("b", "v")
	clk.Advance(2 * time.Second)
	if n := c.Purge(); n != 2 {
		t.Fatalf("Purge = %d, want 2 (expired entries occupy memory too)", n)
	}
	if c.Len() != 0 || c.Cost() != 0 {
		t.Fatalf("Len=%d Cost=%d after Purge", c.Len(), c.Cost())
	}
}

func TestBackgroundSweeper(t *testing.T) {
	clk := clock.NewManual(time.Unix(1_000_000, 0))
	c := NewString[string](WithClock(clk), WithSweepInterval(time.Millisecond), WithShards(2))
	defer c.Close()
	for i := 0; i < 32; i++ {
		c.SetTTL(fmt.Sprintf("k%d", i), "v", time.Second)
	}
	clk.Advance(2 * time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for c.Len() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sweeper never reclaimed expired entries; %d left", c.Len())
		}
		time.Sleep(time.Millisecond)
	}
	if c.Cost() != 0 {
		t.Fatalf("Cost = %d after full sweep", c.Cost())
	}
}

func TestStatsSnapshot(t *testing.T) {
	c, _ := newManual(t, WithShards(2), WithMaxCost(1000))
	for i := 0; i < 10; i++ {
		c.Set(fmt.Sprintf("k%d", i), "v")
	}
	c.Get("k0")
	c.Get("missing")
	st := c.Stats()
	if st.Entries != 10 || st.Cost != 10 || st.MaxCost != 1000 {
		t.Fatalf("snapshot = %+v", st)
	}
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", st.Hits, st.Misses)
	}
	if got := len(st.Map.PerShard); got != 2 {
		t.Fatalf("PerShard len = %d, want 2", got)
	}
	sum := 0
	for _, ps := range st.Map.PerShard {
		sum += ps.Len
	}
	if sum != st.Map.Len || st.Map.Len != 10 {
		t.Fatalf("per-shard lens sum to %d, map-wide %d", sum, st.Map.Len)
	}
	if st.Map.Buckets == 0 || st.HitRatio() != 0.5 {
		t.Fatalf("Buckets=%d HitRatio=%v", st.Map.Buckets, st.HitRatio())
	}
	if st.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestUint64Cache(t *testing.T) {
	clk := clock.NewManual(time.Unix(1_000_000, 0))
	c := NewUint64[int](WithClock(clk), WithSweepInterval(0))
	defer c.Close()
	c.Set(7, 70)
	if v, ok := c.Get(7); !ok || v != 70 {
		t.Fatalf("Get = %d, %v", v, ok)
	}
}
