package cache

import "rphash/internal/hashfn"

// evict brings the cost total back under budget by sampled LRU: it
// samples entries from shard start (rotating onward while still over
// budget), removes the least-recently-used of each sample — expired
// entries are taken outright — and repeats. One evictor runs at a
// time; the writer holding evictMu re-reads the live cost each
// iteration, so cost added by concurrent writers while it runs is
// paid down before it returns. Readers are never blocked: sampling
// walks chains inside RCU reader sections and removal goes through
// the shard's ordinary relativistic delete.
func (c *Cache[K, V]) evict(start int) {
	c.evictMu.Lock()
	defer c.evictMu.Unlock()
	n := c.m.NumShards()
	shard := start
	misses := 0
	for c.cost.Load() > c.maxCost {
		key, e, ok := c.sampleVictim(shard)
		shard = (shard + 1) % n
		if !ok {
			// Empty (or vanished-under-us) shard; if a full rotation
			// finds nothing evictable, the remaining cost is
			// irreducible — bail rather than spin.
			misses++
			if misses > n {
				return
			}
			continue
		}
		misses = 0
		removed, ok := c.m.CompareAndDelete(key, func(cur *entry[V]) bool { return cur == e })
		if !ok {
			continue // refreshed since sampling; the new entry earned its stay
		}
		c.cost.Add(-removed.cost)
		if c.expired(removed) {
			c.expirations.Add(1)
		} else {
			c.evictions.Add(1)
		}
	}
}

// sampleVictim scans up to c.sample entries of shard i, starting at a
// pseudo-random chain position, and returns the stalest. An expired
// entry short-circuits the scan: reclaiming it is strictly better
// than evicting anything live.
func (c *Cache[K, V]) sampleVictim(i int) (K, *entry[V], bool) {
	t := c.m.Shard(i)
	now := c.clk.Nanos()
	var victimK K
	var victim *entry[V]
	budget := c.sample
	foundExpired := false
	scan := func(skip int) {
		t.Range(func(k K, e *entry[V]) bool {
			if skip > 0 {
				skip--
				return true
			}
			if e.expireAt != 0 && e.expireAt <= now {
				victimK, victim = k, e
				foundExpired = true
				return false
			}
			if victim == nil || e.lastUsed.Load() < victim.lastUsed.Load() {
				victimK, victim = k, e
			}
			budget--
			return budget > 0
		})
	}
	if n := t.Len(); n > 0 {
		scan(int(hashfn.Uint64(c.evictSeq.Add(1), 0) % uint64(n)))
	}
	if budget > 0 && !foundExpired {
		// The random start consumed the tail of the shard; spend the
		// rest of the sample from the head (wraparound).
		scan(0)
	}
	return victimK, victim, victim != nil
}
