package cache

import (
	"errors"
	"fmt"
	"time"
)

// ErrNotLoaded is the per-key error a GetOrLoadMulti flight resolves
// with when the batch loader returns successfully but omits that key:
// the key is treated as not found and nothing is cached. Single-key
// GetOrLoad callers that joined such a flight receive it too.
var ErrNotLoaded = errors.New("cache: loader returned no value for key")

// multiScratch is the reusable workspace for batched reads: hashes
// plus the raw entry results from the map's batch lookup.
type multiScratch[K comparable, V any] struct {
	hs   []uint64
	ents []*entry[V]
	eoks []bool
}

func (c *Cache[K, V]) multiScratchFor(n int) *multiScratch[K, V] {
	sc, _ := c.multiPool.Get().(*multiScratch[K, V])
	if sc == nil {
		sc = &multiScratch[K, V]{}
	}
	if cap(sc.hs) < n {
		sc.hs = make([]uint64, n)
		sc.ents = make([]*entry[V], n)
		sc.eoks = make([]bool, n)
	}
	return sc
}

func (c *Cache[K, V]) putMultiScratch(sc *multiScratch[K, V]) {
	clear(sc.ents) // don't let pooled scratch pin dead entries
	c.multiPool.Put(sc)
}

// getBatchClassified is the shared batched hit path: hash every key
// once, resolve through the map's batch lookup (at most one reader
// section per touched shard), classify each result against a single
// coarse-clock read — bumping recency on hits — and fold the hit/miss
// counts into the striped counters with one add per batch. onKey
// receives each key's position, hash, value (zero on miss), and hit
// flag, in batch order.
func (c *Cache[K, V]) getBatchClassified(ks []K, onKey func(i int, h uint64, v V, hit bool)) {
	n := len(ks)
	sc := c.multiScratchFor(n)
	hs, ents, eoks := sc.hs[:n], sc.ents[:n], sc.eoks[:n]
	for i := range ks {
		hs[i] = c.hash(ks[i])
	}
	c.m.GetBatchHashed(hs, ks, ents, eoks)

	now := c.clk.Nanos()
	hits, misses := uint64(0), uint64(0)
	for i := range ks {
		e := ents[i]
		if eoks[i] && !(e.expireAt != 0 && e.expireAt <= now) {
			e.lastUsed.Store(now)
			hits++
			onKey(i, hs[i], e.val, true)
			continue
		}
		misses++
		var zero V
		onKey(i, hs[i], zero, false)
	}
	// Stripe hint from the first key's hash, like the shard layer's
	// section counter: no shared read-modify-write on the batched read
	// path (a shared sequence word would ping-pong across cores).
	stripe := int(hs[0])
	c.hits.AddN(stripe, hits)
	c.misses.AddN(stripe, misses)
	c.putMultiScratch(sc)
}

// GetMulti looks up ks[i] into vals[i] (and oks[i], if oks is
// non-nil; vals[i] is the zero value on a miss either way). It is the
// batched hit path: keys are hashed once, resolved through the map's
// batch lookup — at most one reader section per touched shard, not
// one per key — expiry is checked against a single coarse-clock read,
// and the hit/miss counters take one striped add per batch instead of
// one per key. Per-key semantics are exactly Get's (hits bump
// recency; expired entries read as misses).
func (c *Cache[K, V]) GetMulti(ks []K, vals []V, oks []bool) {
	n := len(ks)
	if len(vals) != n || (oks != nil && len(oks) != n) {
		panic("cache: GetMulti output length mismatch")
	}
	if n == 0 {
		return
	}
	c.getBatchClassified(ks, func(i int, _ uint64, v V, hit bool) {
		vals[i] = v
		if oks != nil {
			oks[i] = hit
		}
	})
}

// GetOrLoadMulti returns the live values for ks, loading the missing
// ones with a single call to load. The hit path is GetMulti; for the
// miss set, each key joins the cache's singleflight registry exactly
// as GetOrLoad does — keys another caller is already loading are
// waited on, and the remainder are claimed and passed to load as one
// miss set. Loaded values are stored with the cache's default TTL and
// cost 1.
//
// The result map holds every key that was found or loaded. A key the
// loader omits is simply absent from the result (and is not cached);
// single-key GetOrLoad callers waiting on that key receive
// ErrNotLoaded. If load itself fails, every key it was asked for
// resolves with that error, and GetOrLoadMulti returns it alongside
// whatever hits and joined results it did collect. Duplicate keys in
// ks are resolved once.
func (c *Cache[K, V]) GetOrLoadMulti(ks []K, load func(missing []K) (map[K]V, error)) (map[K]V, error) {
	return c.GetOrLoadMultiTTL(ks, c.defaultTTL, load)
}

// GetOrLoadMultiTTL is GetOrLoadMulti with an explicit TTL (<= 0 =
// never expires) for the loaded values.
func (c *Cache[K, V]) GetOrLoadMultiTTL(ks []K, ttl time.Duration, load func(missing []K) (map[K]V, error)) (map[K]V, error) {
	out := make(map[K]V, len(ks))
	if len(ks) == 0 {
		return out, nil
	}
	type miss struct {
		k K
		h uint64
	}
	var missing []miss
	c.getBatchClassified(ks, func(i int, h uint64, v V, hit bool) {
		if hit {
			if _, dup := out[ks[i]]; !dup {
				out[ks[i]] = v
			}
			return
		}
		missing = append(missing, miss{ks[i], h})
	})
	if len(missing) == 0 {
		return out, nil
	}

	// Partition the miss set: keys with a flight already in progress
	// are joined (waited on below); the rest are claimed — one new
	// flight each, all resolved by one load call.
	led := make(map[K]*flight[V], len(missing))
	var ledKeys []K
	var ledHashes []uint64
	joined := make(map[K]*flight[V])
	for _, ms := range missing {
		if _, seen := led[ms.k]; seen {
			continue
		}
		if _, seen := joined[ms.k]; seen {
			continue
		}
		fs := &c.flights[(ms.h>>24)&(flightStripes-1)]
		fs.mu.Lock()
		if fs.m == nil {
			fs.m = make(map[K]*flight[V])
		}
		if f, ok := fs.m[ms.k]; ok {
			fs.mu.Unlock()
			joined[ms.k] = f
			continue
		}
		f := &flight[V]{done: make(chan struct{})}
		fs.m[ms.k] = f
		fs.mu.Unlock()
		led[ms.k] = f
		ledKeys = append(ledKeys, ms.k)
		ledHashes = append(ledHashes, ms.h)
	}

	var loadErr error
	if len(ledKeys) > 0 {
		loadErr = c.leadMulti(ledKeys, ledHashes, led, ttl, out, load)
	}

	for k, f := range joined {
		<-f.done
		switch {
		case f.err == nil:
			out[k] = f.val
		case errors.Is(f.err, ErrNotLoaded):
			// Another leader's loader omitted it: not found, not an
			// error for this batch.
		case loadErr == nil:
			loadErr = f.err
		}
	}
	return out, loadErr
}

// leadMulti runs one batch load for the claimed keys and resolves
// their flights. Like the single-key leader, the cleanup is deferred
// so a panicking (or Goexit-ing) loader cannot strand waiters: every
// unresolved flight is failed, its registration removed, and the
// panic propagates.
func (c *Cache[K, V]) leadMulti(ledKeys []K, ledHashes []uint64, led map[K]*flight[V], ttl time.Duration, out map[K]V, load func([]K) (map[K]V, error)) (err error) {
	completed := false
	defer func() {
		r := recover()
		if !completed {
			ferr := err
			if r != nil {
				ferr = fmt.Errorf("cache: batch load panicked: %v", r)
			} else if ferr == nil {
				ferr = errors.New("cache: batch load exited without returning")
			}
			c.loadErrors.Add(1)
			for k, f := range led {
				if _, resolved := out[k]; resolved {
					continue // satisfied by the post-registration re-check
				}
				if f.err == nil {
					f.err = ferr
				}
			}
			err = ferr
		}
		for i, k := range ledKeys {
			f := led[k]
			close(f.done)
			fs := &c.flights[(ledHashes[i]>>24)&(flightStripes-1)]
			fs.mu.Lock()
			delete(fs.m, k)
			fs.mu.Unlock()
		}
		if r != nil {
			panic(r)
		}
	}()

	// Re-check now that the flights are registered: a Set (or a prior
	// leader's store) may have landed between the batch miss and the
	// registration; those keys need no backend trip.
	toLoad := ledKeys[:0:0]
	for i, k := range ledKeys {
		if v, ok := c.peek(ledHashes[i], k); ok {
			f := led[k]
			f.val = v
			out[k] = v
			continue
		}
		toLoad = append(toLoad, k)
	}

	var loaded map[K]V
	if len(toLoad) > 0 {
		if o := c.obsv; o != nil {
			t0 := time.Now()
			loaded, err = load(toLoad)
			o.CacheLoad.RecordSince(0, t0)
		} else {
			loaded, err = load(toLoad)
		}
	}
	completed = true
	if err != nil {
		c.loadErrors.Add(1)
		for _, k := range toLoad {
			led[k].err = err
		}
		return err
	}
	var at int64
	if ttl > 0 {
		at = c.clk.Nanos() + ttl.Nanoseconds()
	}
	stored := uint64(0)
	for i, k := range ledKeys {
		f := led[k]
		v, ok := loaded[k]
		if !ok {
			if _, resolved := out[k]; resolved {
				continue // satisfied by the post-registration re-check
			}
			f.err = ErrNotLoaded
			continue
		}
		f.val = v
		out[k] = v
		c.setAbs(ledHashes[i], k, v, at, 1)
		stored++
	}
	c.loads.Add(stored)
	return nil
}

// RangeChunked calls fn for every live entry until fn returns false,
// with shard.Map.RangeChunked semantics: bounded reader sections, fn
// invoked outside them (so fn may block or call back into the cache
// without extending grace periods), possible skips/repeats for shards
// that resize mid-traversal. Expired entries are skipped.
func (c *Cache[K, V]) RangeChunked(chunk int, fn func(K, V) bool) {
	c.m.RangeChunked(chunk, func(k K, e *entry[V]) bool {
		if c.expired(e) {
			return true
		}
		return fn(k, e.val)
	})
}

// BatchSections exposes the underlying map's reader-section counter
// for batched gets (see shard.Map.BatchSections): a B-key GetMulti
// accounts for at most min(B, NumShards) sections.
func (c *Cache[K, V]) BatchSections() uint64 { return c.m.BatchSections() }
