package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGetMulti(t *testing.T) {
	c, clk := newManual(t)
	for i := 0; i < 50; i++ {
		c.Set(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	c.SetTTL("expiring", "soon", time.Second)
	clk.Advance(2 * time.Second)

	ks := []string{"k0", "missing", "k1", "expiring", "k2"}
	vals := make([]string, len(ks))
	oks := make([]bool, len(ks))
	before := c.Counters()
	c.GetMulti(ks, vals, oks)

	want := map[int]string{0: "v0", 2: "v1", 4: "v2"}
	for i := range ks {
		if wv, hit := want[i]; hit {
			if !oks[i] || vals[i] != wv {
				t.Fatalf("ks[%d]=%q: got (%q, %v), want (%q, true)", i, ks[i], vals[i], oks[i], wv)
			}
		} else if oks[i] || vals[i] != "" {
			t.Fatalf("ks[%d]=%q: got (%q, %v), want miss with zero value", i, ks[i], vals[i], oks[i])
		}
	}

	// Batched counter updates: 3 hits, 2 misses (absent + expired).
	after := c.Counters()
	if h := after.Hits - before.Hits; h != 3 {
		t.Fatalf("hits delta = %d, want 3", h)
	}
	if m := after.Misses - before.Misses; m != 2 {
		t.Fatalf("misses delta = %d, want 2", m)
	}

	// nil oks is allowed: misses read as zero values.
	c.GetMulti(ks, vals, nil)
	if vals[1] != "" || vals[0] != "v0" {
		t.Fatalf("nil-oks GetMulti gave vals=%q", vals)
	}
}

func TestGetOrLoadMulti(t *testing.T) {
	c, _ := newManual(t)
	c.Set("hit", "cached")

	var calls atomic.Int32
	var gotMissing []string
	out, err := c.GetOrLoadMulti([]string{"hit", "a", "b", "omitted", "a"}, func(missing []string) (map[string]string, error) {
		calls.Add(1)
		gotMissing = append([]string{}, missing...)
		return map[string]string{"a": "va", "b": "vb"}, nil
	})
	if err != nil {
		t.Fatalf("GetOrLoadMulti: %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("loader called %d times, want 1", calls.Load())
	}
	// The miss set excludes the hit and dedupes the duplicate "a".
	if len(gotMissing) != 3 {
		t.Fatalf("loader got miss set %v, want 3 distinct keys", gotMissing)
	}
	wantOut := map[string]string{"hit": "cached", "a": "va", "b": "vb"}
	if len(out) != len(wantOut) {
		t.Fatalf("result = %v, want %v", out, wantOut)
	}
	for k, v := range wantOut {
		if out[k] != v {
			t.Fatalf("out[%q] = %q, want %q", k, out[k], v)
		}
	}

	// Loaded values are cached; omitted ones are not.
	if v, ok := c.Get("a"); !ok || v != "va" {
		t.Fatalf("loaded key not cached: (%q, %v)", v, ok)
	}
	if _, ok := c.Get("omitted"); ok {
		t.Fatal("omitted key was cached")
	}

	// Second call: all hits, no loader trip.
	out, err = c.GetOrLoadMulti([]string{"a", "b"}, func(missing []string) (map[string]string, error) {
		t.Fatalf("loader called again for %v", missing)
		return nil, nil
	})
	if err != nil || out["a"] != "va" || out["b"] != "vb" {
		t.Fatalf("warm GetOrLoadMulti = %v, %v", out, err)
	}
}

func TestGetOrLoadMultiError(t *testing.T) {
	c, _ := newManual(t)
	c.Set("hit", "cached")
	boom := errors.New("backend down")
	out, err := c.GetOrLoadMulti([]string{"hit", "x"}, func([]string) (map[string]string, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// Hits are still returned alongside the error.
	if out["hit"] != "cached" {
		t.Fatalf("partial result = %v, want the hit", out)
	}
	if _, ok := c.Get("x"); ok {
		t.Fatal("failed load was cached")
	}
	// The key must not be poisoned: a later successful load works.
	out, err = c.GetOrLoadMulti([]string{"x"}, func([]string) (map[string]string, error) {
		return map[string]string{"x": "vx"}, nil
	})
	if err != nil || out["x"] != "vx" {
		t.Fatalf("retry after error = %v, %v", out, err)
	}
}

func TestGetOrLoadMultiPanic(t *testing.T) {
	c, _ := newManual(t)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate")
			}
		}()
		c.GetOrLoadMulti([]string{"p"}, func([]string) (map[string]string, error) { //nolint:errcheck
			panic("loader exploded")
		})
	}()
	// Flight must be unregistered: a follow-up load succeeds promptly.
	out, err := c.GetOrLoadMulti([]string{"p"}, func([]string) (map[string]string, error) {
		return map[string]string{"p": "vp"}, nil
	})
	if err != nil || out["p"] != "vp" {
		t.Fatalf("load after panic = %v, %v", out, err)
	}
}

// TestGetOrLoadMultiSingleflight: concurrent multi and single-key
// loads on an overlapping miss set share flights — each key is loaded
// exactly once across all callers.
func TestGetOrLoadMultiSingleflight(t *testing.T) {
	c, _ := newManual(t)
	var loads atomic.Int32
	release := make(chan struct{})

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if id%2 == 0 {
				out, err := c.GetOrLoadMulti([]string{"s1", "s2"}, func(missing []string) (map[string]string, error) {
					loads.Add(int32(len(missing)))
					<-release
					r := make(map[string]string, len(missing))
					for _, k := range missing {
						r[k] = "v" + k
					}
					return r, nil
				})
				if err == nil && (out["s1"] != "vs1" || out["s2"] != "vs2") {
					err = fmt.Errorf("bad result %v", out)
				}
				errs[id] = err
			} else {
				v, err := c.GetOrLoad("s1", func() (string, error) {
					loads.Add(1)
					<-release
					return "vs1", nil
				})
				if err == nil && v != "vs1" {
					err = fmt.Errorf("bad single result %q", v)
				}
				errs[id] = err
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond) // let every caller reach its flight
	close(release)
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", id, err)
		}
	}
	if n := loads.Load(); n != 2 {
		t.Fatalf("keys loaded %d times total, want 2 (one per distinct key)", n)
	}
}

// TestGetOrLoadMultiOmittedSingleWaiter: a single-key GetOrLoad that
// joins a multi-loader's flight for a key the loader omits receives
// ErrNotLoaded rather than a phantom zero value.
func TestGetOrLoadMultiOmittedSingleWaiter(t *testing.T) {
	c, _ := newManual(t)
	entered := make(chan struct{})
	release := make(chan struct{})

	done := make(chan error, 1)
	go func() {
		_, err := c.GetOrLoadMulti([]string{"gone"}, func([]string) (map[string]string, error) {
			close(entered)
			<-release
			return map[string]string{}, nil // omits "gone"
		})
		done <- err
	}()
	<-entered
	joinErr := make(chan error, 1)
	go func() {
		_, err := c.GetOrLoad("gone", func() (string, error) {
			t.Error("joiner ran its own load despite an in-flight leader")
			return "", nil
		})
		joinErr <- err
	}()
	time.Sleep(20 * time.Millisecond) // joiner parks on the flight
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("multi caller err = %v, want nil (omitted key is a miss, not a failure)", err)
	}
	if err := <-joinErr; !errors.Is(err, ErrNotLoaded) {
		t.Fatalf("joined single caller err = %v, want ErrNotLoaded", err)
	}
}

func TestCacheRangeChunked(t *testing.T) {
	c, clk := newManual(t)
	for i := 0; i < 100; i++ {
		c.Set(fmt.Sprintf("k%d", i), "v")
	}
	c.SetTTL("dead", "v", time.Second)
	clk.Advance(2 * time.Second)

	n := 0
	c.RangeChunked(8, func(k, v string) bool {
		if k == "dead" {
			t.Fatal("expired entry visited")
		}
		n++
		return true
	})
	if n != 100 {
		t.Fatalf("visited %d live entries, want 100", n)
	}
}
