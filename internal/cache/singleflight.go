package cache

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// flightStripes stripes the in-flight-load registry so miss storms on
// unrelated keys don't contend on one mutex. Power of two.
const flightStripes = 16

// flight is one in-progress load. Waiters block on done and then read
// val/err; both are written exactly once, before close(done).
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

type flightShard[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*flight[V]
	// Pad the 16 bytes of mutex + map header out to a full 64-byte
	// cache line so neighboring stripes never false-share.
	_ [48]byte
}

// GetOrLoad returns the live value for k, loading it with load on a
// miss. Concurrent callers missing on the same key perform exactly
// one load (singleflight): one caller becomes the leader and runs
// load; the rest block until it finishes and share its result. A
// successful load is stored with the cache's default TTL and cost 1;
// a failed load is not cached, and every waiter receives the error.
func (c *Cache[K, V]) GetOrLoad(k K, load func() (V, error)) (V, error) {
	return c.GetOrLoadTTL(k, c.defaultTTL, load)
}

// GetOrLoadTTL is GetOrLoad with an explicit TTL (<= 0 = never
// expires) for the loaded value.
func (c *Cache[K, V]) GetOrLoadTTL(k K, ttl time.Duration, load func() (V, error)) (V, error) {
	h := c.hash(k)
	if v, ok := c.get(h, k, 0); ok {
		return v, nil
	}

	// Flight stripes key off mid hash bits: the top bits route shards,
	// the low bits pick buckets, so the middle is uncorrelated with
	// either.
	fs := &c.flights[(h>>24)&(flightStripes-1)]
	fs.mu.Lock()
	if fs.m == nil {
		fs.m = make(map[K]*flight[V])
	}
	if f, ok := fs.m[k]; ok {
		fs.mu.Unlock()
		<-f.done
		return f.val, f.err
	}
	f := &flight[V]{done: make(chan struct{})}
	fs.m[k] = f
	fs.mu.Unlock()

	// Leader. The cleanup (publish the result, unregister the flight)
	// runs deferred so a panicking — or runtime.Goexit-ing — load
	// callback cannot strand waiters parked on f.done and poison the
	// key for every future caller; waiters see an error and the panic
	// still propagates out of the leader.
	completed := false
	defer func() {
		r := recover()
		if !completed {
			c.loadErrors.Add(1)
			if r != nil {
				f.err = fmt.Errorf("cache: load for key panicked: %v", r)
			} else if f.err == nil {
				f.err = errors.New("cache: load for key exited without returning")
			}
		}
		close(f.done)
		fs.mu.Lock()
		delete(fs.m, k)
		fs.mu.Unlock()
		if r != nil {
			panic(r)
		}
	}()

	// Re-check now that the flight is registered: a Set (or a prior
	// leader's store) may have landed between our miss and the
	// registration; loading again would waste the backend call.
	if v, ok := c.peek(h, k); ok {
		f.val = v
		completed = true
		return f.val, nil
	}
	if o := c.obsv; o != nil {
		t0 := time.Now()
		f.val, f.err = load()
		o.CacheLoad.RecordSince(int((h>>24)&(flightStripes-1)), t0)
	} else {
		f.val, f.err = load()
	}
	completed = true
	if f.err == nil {
		c.loads.Add(1)
		var at int64
		if ttl > 0 {
			at = c.clk.Nanos() + ttl.Nanoseconds()
		}
		c.setAbs(h, k, f.val, at, 1)
	} else {
		c.loadErrors.Add(1)
	}
	return f.val, f.err
}
