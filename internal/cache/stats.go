package cache

import (
	"fmt"

	"rphash/internal/adapt"
	"rphash/internal/shard"
)

// Stats is a point-in-time snapshot of cache metrics, aggregated
// across shards. Map carries the underlying hash-map observability
// (bucket totals, load factor, resize counts — map-wide and per
// shard).
type Stats struct {
	Hits        uint64 // live-entry Gets
	Misses      uint64 // absent or expired Gets
	Loads       uint64 // successful GetOrLoad backend loads
	LoadErrors  uint64 // failed GetOrLoad backend loads (not cached)
	Evictions   uint64 // live entries removed for capacity
	Expirations uint64 // expired entries reclaimed (sweep, eviction, delete)
	Entries     int    // current entry count (incl. expired, unreclaimed)
	Cost        int64  // current cost total
	MaxCost     int64  // configured budget (<= 0 = unbounded)
	Map         shard.MapStats
}

// Stats gathers a snapshot. It walks every bucket (for MaxChain); on
// huge caches prefer cheaper spot metrics via Len/Cost/Buckets.
func (c *Cache[K, V]) Stats() Stats {
	ms := c.m.DetailedStats()
	return Stats{
		Hits:        c.hits.Total(),
		Misses:      c.misses.Total(),
		Loads:       c.loads.Load(),
		LoadErrors:  c.loadErrors.Load(),
		Evictions:   c.evictions.Load(),
		Expirations: c.expirations.Load(),
		Entries:     ms.Len,
		Cost:        c.cost.Load(),
		MaxCost:     c.maxCost,
		Map:         ms,
	}
}

// Counters is Stats without the bucket walk: every field comes from
// O(1) (or O(stripes)) counter reads, and Map is left zero. Serving
// paths that poll stats on every request (memcached's `stats`
// command) use this; Stats is for monitoring that wants per-shard
// chain depth too.
func (c *Cache[K, V]) Counters() Stats {
	return Stats{
		Hits:        c.hits.Total(),
		Misses:      c.misses.Total(),
		Loads:       c.loads.Load(),
		LoadErrors:  c.loadErrors.Load(),
		Evictions:   c.evictions.Load(),
		Expirations: c.expirations.Load(),
		Entries:     c.m.Len(),
		Cost:        c.cost.Load(),
		MaxCost:     c.maxCost,
	}
}

// AdaptStats returns the underlying map's aggregated maintenance
// controller snapshot; ok is false when adaptive maintenance is
// disabled (WithAdapt(nil)). It is also carried by Stats().Map.Adapt.
func (c *Cache[K, V]) AdaptStats() (adapt.Stats, bool) {
	return c.m.AdaptStats()
}

// HitRatio returns hits/(hits+misses), or 0 before any lookups.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// String renders the headline numbers.
func (s Stats) String() string {
	return fmt.Sprintf("entries=%d cost=%d/%d hits=%d misses=%d (%.1f%%) loads=%d evictions=%d expirations=%d buckets=%d shards=%d",
		s.Entries, s.Cost, s.MaxCost, s.Hits, s.Misses, 100*s.HitRatio(),
		s.Loads, s.Evictions, s.Expirations, s.Map.Buckets, len(s.Map.PerShard))
}
