package cache

import "time"

// sweepBatch bounds how many expired entries one background tick may
// reclaim, keeping each pass incremental.
const sweepBatch = 1024

// SweepExpired removes up to limit expired entries across all shards,
// returning the count removed. The scan runs inside the shards' RCU
// reader sections (it never blocks lookups); each removal re-checks
// identity under the key's writer stripe (CompareAndDelete), so an
// entry refreshed between scan and removal is never lost.
func (c *Cache[K, V]) SweepExpired(limit int) int {
	removed := 0
	for i := 0; i < c.m.NumShards() && removed < limit; i++ {
		removed += c.sweepShard(i, limit-removed)
	}
	return removed
}

// sweepShard reclaims up to limit expired entries from shard i.
func (c *Cache[K, V]) sweepShard(i, limit int) int {
	if limit <= 0 {
		return 0
	}
	now := c.clk.Nanos()
	type victim struct {
		k K
		e *entry[V]
	}
	var victims []victim
	c.m.Shard(i).Range(func(k K, e *entry[V]) bool {
		if e.expireAt != 0 && e.expireAt <= now {
			victims = append(victims, victim{k, e})
		}
		return len(victims) < limit
	})
	n := 0
	for _, v := range victims {
		e := v.e
		if removed, ok := c.m.CompareAndDelete(v.k, func(cur *entry[V]) bool { return cur == e }); ok {
			c.cost.Add(-removed.cost)
			c.expirations.Add(1)
			n++
		}
	}
	return n
}

// runSweeper is the background expiry pass: one shard per tick, in
// rotation, so a large cache amortizes reclamation instead of
// stalling on full scans. Besides its own stop channel it watches
// the map's RCU domain Done: if the domain shuts down first (a
// shared-domain fleet closing, or a bug ordering teardown wrong),
// the sweeper exits promptly instead of discovering closure by
// tripping over a post-Close Defer on its next removal — each of
// which would stall a full synchronous grace period.
func (c *Cache[K, V]) runSweeper(interval time.Duration) {
	defer c.sweepWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	cursor := 0
	for {
		select {
		case <-c.sweepStop:
			return
		case <-c.m.Domain().Done():
			return
		case <-t.C:
			c.sweepShard(cursor%c.m.NumShards(), sweepBatch)
			cursor++
		}
	}
}

// Purge drops every entry (live and expired) and returns the count
// removed. Purged entries are counted as neither evictions nor
// expirations; cost accounting returns to the concurrent baseline.
func (c *Cache[K, V]) Purge() int {
	n := 0
	for _, k := range c.m.Keys() {
		if e, ok := c.m.CompareAndDelete(k, nil); ok {
			c.cost.Add(-e.cost)
			n++
		}
	}
	return n
}
