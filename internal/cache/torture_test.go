package cache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTortureMissStormSingleflight storms one absent key with many
// goroutines, repeatedly, while background churn writes, sweeps, and
// evictions run and shards auto-resize: every round must perform
// exactly one load, and every stormer must observe that load's value.
func TestTortureMissStormSingleflight(t *testing.T) {
	// The default TTL must comfortably exceed the coarse clock's
	// granularity: with TTL == granularity a single clock tick between
	// the leader's store and a late stormer's re-check expires the
	// just-loaded entry, and a second load is then correct behavior,
	// not a singleflight violation.
	c := NewUint64[uint64](
		WithShards(4),
		WithInitialBuckets(32),
		WithSweepInterval(2*time.Millisecond),
		WithTTL(time.Minute),
	)
	defer c.Close()

	stop := make(chan struct{})
	var churn sync.WaitGroup
	var stopOnce sync.Once
	// Quiesce churn before the deferred c.Close (LIFO), so a mid-round
	// t.Fatal cannot close the cache under a running churn goroutine.
	halt := func() { stopOnce.Do(func() { close(stop) }); churn.Wait() }
	defer halt()
	// Background churn: inserts, deletes, and lookups on a disjoint
	// keyspace, enough volume to drive per-shard auto-resizes both
	// ways while the storms run.
	for g := 0; g < 2; g++ {
		churn.Add(1)
		go func(seed uint64) {
			defer churn.Done()
			i := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := 1_000_000 + (i*2654435761)%8192
				c.SetTTL(k, i, 10*time.Millisecond)
				c.Get(k)
				if i%7 == 0 {
					c.Delete(k)
				}
				i++
			}
		}(uint64(g) * 977)
	}

	const (
		rounds   = 50
		stormers = 16
	)
	for r := 0; r < rounds; r++ {
		key := uint64(r) // disjoint from churn keyspace
		var loadCalls atomic.Int64
		want := uint64(r)*10 + 1
		var start, done sync.WaitGroup
		start.Add(1)
		errs := make(chan string, stormers)
		for g := 0; g < stormers; g++ {
			done.Add(1)
			go func() {
				defer done.Done()
				start.Wait()
				v, err := c.GetOrLoad(key, func() (uint64, error) {
					loadCalls.Add(1)
					time.Sleep(time.Millisecond) // widen the storm window
					return want, nil
				})
				if err != nil {
					errs <- fmt.Sprintf("round %d: GetOrLoad error: %v", r, err)
				} else if v != want {
					errs <- fmt.Sprintf("round %d: got %d, want %d", r, v, want)
				}
			}()
		}
		start.Done()
		done.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
		if n := loadCalls.Load(); n != 1 {
			t.Fatalf("round %d: %d loads for one hot-key miss storm, want exactly 1", r, n)
		}
	}
	halt()

	if st := c.Stats(); st.Map.AutoGrows == 0 {
		t.Fatalf("torture never triggered an auto-resize (stats: %v) — raise churn volume", st)
	}
}

// TestTortureNoLostUpdates runs per-key writer goroutines publishing
// strictly increasing versions while readers, expiry sweeps, and
// capacity evictions run concurrently and shards resize. A reader
// must only ever observe versions a writer actually published, and
// the observed version per key must never go backward — eviction may
// make a key vanish, but a stale value must never resurface.
func TestTortureNoLostUpdates(t *testing.T) {
	c := NewUint64[uint64](
		WithShards(4),
		WithInitialBuckets(32),
		WithMaxCost(512), // evictions are part of the torture
		WithSweepInterval(2*time.Millisecond),
	)
	defer c.Close()

	const (
		writers = 4
		keys    = 256 // per writer: population 1024 >> the 512 budget
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var violations atomic.Int64

	// version[w*keys+k] is the latest version writer w published for
	// its key k; written before Set publishes, so any value a reader
	// sees is <= the recorded latest.
	published := make([]atomic.Uint64, writers*keys)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ver := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(w*keys + int(ver)%keys)
				ver++
				published[k].Store(ver)
				c.SetTTL(k, ver, 20*time.Millisecond)
			}
		}(w)
	}

	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			lastSeen := make([]uint64, writers*keys)
			get, release := c.NewGetter()
			defer release()
			i := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				i = (i*31 + 17) % (writers * keys)
				k := uint64(i)
				v, ok := get(k)
				if !ok {
					continue // expired or evicted: legal
				}
				if v > published[k].Load() {
					violations.Add(1) // phantom value never published
				}
				if v < lastSeen[k] {
					violations.Add(1) // stale value resurfaced
				}
				lastSeen[k] = v
			}
		}(r)
	}

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := violations.Load(); n != 0 {
		t.Fatalf("%d lost-update/phantom-read violations", n)
	}
	st := c.Stats()
	if st.Cost > 512 {
		t.Fatalf("cost %d exceeds budget after quiesce", st.Cost)
	}
	if st.Map.AutoGrows == 0 {
		t.Fatalf("no auto-resize under torture (stats: %v)", st)
	}
}
