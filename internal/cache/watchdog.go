package cache

import (
	"rphash/internal/obs"
)

// WatchdogSample assembles the health snapshot the anomaly watchdog
// inspects each tick: grace-period progress and in-flight waiting
// from the RCU domain, cumulative stripe contention and the live
// resize backlog from the sharded map, and the cache's eviction
// counter. Bounded cost (no bucket walks), so a 1s cadence is free.
func (c *Cache[K, V]) WatchdogSample() obs.WatchdogSample {
	dom := c.m.Domain()
	ms := c.m.CounterStats()
	return obs.WatchdogSample{
		GracePeriods:    dom.Stats().GracePeriods,
		GraceWaiting:    dom.GPWaiting(),
		StripeAcquires:  ms.StripeAcquires,
		StripeContended: ms.StripeContended,
		ResizeBacklog:   ms.UnzipBacklog,
		Evictions:       c.evictions.Load(),
	}
}

// StartWatchdog attaches a running anomaly watchdog fed by
// WatchdogSample. A nil cfg.Clock inherits the cache's coarse clock
// (so a manually clocked cache gets a deterministic watchdog for
// free); detections land in the cache's observer ring and, when reg
// is non-nil, in per-class trip counters. The caller owns the
// returned watchdog's Stop — the cache's Close does not stop it.
func (c *Cache[K, V]) StartWatchdog(reg *obs.Registry, cfg obs.WatchdogConfig) *obs.Watchdog {
	if cfg.Clock == nil {
		cfg.Clock = c.clk
	}
	w := obs.NewWatchdog(c.obsv, reg, func() obs.WatchdogSample { return c.WatchdogSample() }, cfg)
	if reg != nil {
		w.Register(reg)
	}
	w.Start()
	return w
}
