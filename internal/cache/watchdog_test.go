package cache

import (
	"testing"
	"time"

	"rphash/internal/obs"
)

// TestWatchdogSampleFields checks the cache's health snapshot carries
// live values from each plane: grace-period counters from the domain,
// stripe telemetry from the map, evictions from the cache.
func TestWatchdogSampleFields(t *testing.T) {
	c, _ := newManual(t, WithShards(1), WithMaxCost(4))
	for i, k := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		c.Set(k, "v")
		_ = i
	}
	s := c.WatchdogSample()
	if s.StripeAcquires == 0 {
		t.Fatal("no stripe acquisitions sampled")
	}
	if s.Evictions == 0 {
		t.Fatal("no evictions sampled despite a 4-cost budget")
	}
	if s.GraceWaiting {
		t.Fatal("GraceWaiting true with no Synchronize in flight")
	}
	if s.ResizeBacklog != 0 {
		t.Fatalf("ResizeBacklog = %d with no resize running", s.ResizeBacklog)
	}
}

// TestStartWatchdogDetectsEvictionStorm runs the full wiring — cache
// sample source, observer ring, registry — on the cache's own manual
// clock, driving detection through synchronous ticks.
func TestStartWatchdogDetectsEvictionStorm(t *testing.T) {
	o := obs.NewObserver()
	c, _ := newManual(t, WithShards(1), WithMaxCost(4), WithObserver(o))
	reg := obs.NewRegistry()
	w := c.StartWatchdog(reg, obs.WatchdogConfig{
		Interval:      time.Hour, // background loop stays out of the way
		EvictionStorm: 3,
		BundleDir:     t.TempDir(),
	})
	defer w.Stop()

	w.Tick() // baseline
	for i := 0; i < 16; i++ {
		c.SetWith(string(rune('a'+i)), "v", 0, 1)
	}
	got := w.Tick()
	if len(got) != 1 || got[0].Class != obs.AnomalyEvictionStorm {
		t.Fatalf("expected eviction storm, got %+v", got)
	}
	var found bool
	for _, e := range o.Events.Snapshot() {
		if e.Type == obs.EvWatchdog {
			found = true
		}
	}
	if !found {
		t.Fatal("watchdog trip not recorded in the cache's event ring")
	}
}
