// Package clock provides the coarse clock the caching layers read on
// their hot paths. Stock memcached keeps a process-wide current_time
// updated by a libevent timer once per second precisely so the GET
// path never calls time(2); we do the same (at 50ms granularity by
// default for snappier tests): reading the clock is one atomic load
// from a cache line that changes a handful of times a second, instead
// of a vDSO call per key.
//
// A Clock is either ticker-driven (New, NewWithSource) — a background
// goroutine refreshes it until Stop — or manual (NewManual), advanced
// explicitly by tests. Both flavors share the same read methods, so
// code under test takes a *Clock and never branches on which kind it
// holds.
package clock

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultGranularity is the refresh interval ticker-driven clocks use
// when the caller passes a non-positive one.
const DefaultGranularity = 50 * time.Millisecond

// Clock is a coarse clock. Reads (Secs, Nanos, Now) are single atomic
// loads and safe from any goroutine.
type Clock struct {
	secs  atomic.Int64
	nanos atomic.Int64

	now  func() time.Time // nil for manual clocks
	stop chan struct{}    // nil for manual clocks
	once sync.Once
}

// New starts a ticker-driven clock refreshing every granularity
// (DefaultGranularity if <= 0) from the real time source. Stop it when
// done; the ticker goroutine runs until then.
func New(granularity time.Duration) *Clock {
	return NewWithSource(granularity, time.Now)
}

// NewWithSource is New with an injectable time source, for tests that
// want a ticker-driven clock over synthetic time.
func NewWithSource(granularity time.Duration, now func() time.Time) *Clock {
	if granularity <= 0 {
		granularity = DefaultGranularity
	}
	c := &Clock{now: now, stop: make(chan struct{})}
	c.refresh()
	go c.run(granularity)
	return c
}

// NewManual builds a clock with no background goroutine; it reads
// start until Advance or Set move it. Stop is a no-op.
func NewManual(start time.Time) *Clock {
	c := &Clock{}
	c.Set(start)
	return c
}

func (c *Clock) run(granularity time.Duration) {
	t := time.NewTicker(granularity)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.refresh()
		}
	}
}

func (c *Clock) refresh() {
	n := c.now()
	c.nanos.Store(n.UnixNano())
	c.secs.Store(n.Unix())
}

// Secs returns coarse unix seconds (expiry granularity).
func (c *Clock) Secs() int64 { return c.secs.Load() }

// Nanos returns coarse unix nanoseconds (recency granularity).
func (c *Clock) Nanos() int64 { return c.nanos.Load() }

// Now returns the coarse time as a time.Time.
func (c *Clock) Now() time.Time { return time.Unix(0, c.Nanos()) }

// Set pins the clock to t. Intended for manual clocks; calling it on
// a ticker-driven clock only holds until the next refresh.
func (c *Clock) Set(t time.Time) {
	c.nanos.Store(t.UnixNano())
	c.secs.Store(t.Unix())
}

// Advance moves a manual clock forward by d.
func (c *Clock) Advance(d time.Duration) {
	n := c.nanos.Add(d.Nanoseconds())
	c.secs.Store(n / int64(time.Second))
}

// Stop halts the ticker goroutine. Idempotent; a no-op for manual
// clocks. The clock remains readable (frozen) after Stop.
func (c *Clock) Stop() {
	if c.stop == nil {
		return
	}
	c.once.Do(func() { close(c.stop) })
}
