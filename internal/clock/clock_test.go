package clock

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestManualClock(t *testing.T) {
	start := time.Unix(1_000_000, 500_000_000)
	c := NewManual(start)
	if c.Secs() != 1_000_000 {
		t.Fatalf("Secs = %d, want 1000000", c.Secs())
	}
	if c.Nanos() != start.UnixNano() {
		t.Fatalf("Nanos = %d, want %d", c.Nanos(), start.UnixNano())
	}
	c.Advance(1500 * time.Millisecond)
	if c.Secs() != 1_000_002 {
		t.Fatalf("Secs after advance = %d, want 1000002", c.Secs())
	}
	if got, want := c.Nanos(), start.Add(1500*time.Millisecond).UnixNano(); got != want {
		t.Fatalf("Nanos after advance = %d, want %d", got, want)
	}
	c.Set(time.Unix(42, 0))
	if c.Secs() != 42 || c.Now().Unix() != 42 {
		t.Fatalf("Set did not pin the clock: secs=%d", c.Secs())
	}
	c.Stop() // no-op, must not panic
}

func TestTickerClockRefreshes(t *testing.T) {
	c := New(time.Millisecond)
	defer c.Stop()
	before := c.Nanos()
	deadline := time.Now().Add(2 * time.Second)
	for c.Nanos() == before {
		if time.Now().After(deadline) {
			t.Fatal("ticker clock never advanced")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStopHaltsTicker proves Stop actually stops the refresher — the
// leak the old memcache clock had (its goroutine ran forever once
// started, with no way for Store.Close to stop it).
func TestStopHaltsTicker(t *testing.T) {
	var calls atomic.Int64
	base := time.Unix(100, 0)
	c := NewWithSource(time.Millisecond, func() time.Time {
		return base.Add(time.Duration(calls.Add(1)) * time.Second)
	})
	// Wait for at least one tick past the constructor's refresh.
	deadline := time.Now().Add(2 * time.Second)
	for calls.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("ticker never fired")
		}
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	c.Stop() // idempotent
	after := calls.Load()
	time.Sleep(20 * time.Millisecond)
	if got := calls.Load(); got > after+1 {
		// One in-flight tick may land after Stop; more means the
		// goroutine survived.
		t.Fatalf("time source still polled after Stop: %d -> %d", after, got)
	}
}

func TestStoppedClockStaysReadable(t *testing.T) {
	c := New(time.Millisecond)
	c.Stop()
	if c.Secs() == 0 {
		t.Fatal("stopped clock lost its value")
	}
}
