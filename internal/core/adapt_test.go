package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rphash/internal/adapt"
)

// TestSetStripesShapes pins the runtime-retune plumbing: rounding and
// clamping match WithStripes, the effective mask tracks the new
// physical count and the bucket count, telemetry totals stay
// monotonic across the array swap, and the retune counter ticks.
func TestSetStripesShapes(t *testing.T) {
	tbl := NewUint64[int](WithStripes(8), WithInitialBuckets(256))
	defer tbl.Close()
	fill(tbl, 500)
	// Pure inserts ride the lock-free CAS fast path and record no
	// stripe telemetry; a replace pass over the same keys goes through
	// the stripes and generates the acquisitions this test pins.
	fill(tbl, 500)
	acqBefore, _ := tbl.ContentionCounters()
	if acqBefore == 0 {
		t.Fatal("no stripe acquisitions recorded by the preload replace writes")
	}

	for _, tc := range []struct {
		give, wantPhys, wantEff int
	}{
		{64, 64, 64},
		{63, 64, 64}, // rounds up, no-op vs current
		{100000, maxStripes, maxStripes},
		{-3, 1, 1},
		{2, 2, 2},
	} {
		tbl.SetStripes(tc.give)
		if got := tbl.Stripes(); got != tc.wantPhys {
			t.Errorf("SetStripes(%d): Stripes() = %d, want %d", tc.give, got, tc.wantPhys)
		}
		if got := tbl.EffectiveStripes(); got != tc.wantEff {
			t.Errorf("SetStripes(%d): EffectiveStripes() = %d, want %d", tc.give, got, tc.wantEff)
		}
		if err := tbl.checkStripeInvariants(); err != nil {
			t.Fatalf("after SetStripes(%d): %v", tc.give, err)
		}
	}

	// Telemetry survived the swaps (folded into the base counters).
	if acqAfter, _ := tbl.ContentionCounters(); acqAfter < acqBefore {
		t.Fatalf("ContentionCounters went backwards across retunes: %d -> %d", acqBefore, acqAfter)
	}
	if st := tbl.Stats(); st.StripeRetunes == 0 {
		t.Fatal("Stats().StripeRetunes = 0 after retuning")
	}

	// Retuning above the bucket count: effective stays bucket-capped.
	tbl.Resize(4)
	tbl.SetStripes(64)
	if got := tbl.EffectiveStripes(); got != 4 {
		t.Fatalf("EffectiveStripes() = %d with 4 buckets, want 4", got)
	}
	verifyAll(t, tbl, 500)
}

// TestTortureStripeRetune is the retuning companion of the striped
// writer torture test: concurrent point/batch writers, readers
// asserting stable and absent keys, auto-resize, an explicit resizer
// crossing the stripe boundary, AND a retuner cycling the physical
// stripe array through [1, 256] — every lock-array transition racing
// every writer choreography. Run under -race.
func TestTortureStripeRetune(t *testing.T) {
	tbl := NewUint64[int](
		WithInitialBuckets(64),
		WithStripes(16),
		WithUnzipWorkers(2), // migration fan-out in the mix too
		WithPolicy(Policy{MaxLoad: 2, MinLoad: 0.25, MinBuckets: 8}),
	)
	defer tbl.Close()

	const (
		stable     = 512
		absentBase = uint64(1) << 40
		volatile   = uint64(2048)
		writers    = 4
	)
	fill(tbl, stable)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var stableMisses, absentHits atomic.Int64

	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := tbl.NewReadHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(stable))
				if v, ok := h.Get(k); !ok || v != int(k) {
					stableMisses.Add(1)
				}
				if _, ok := h.Get(absentBase + uint64(rng.Intn(1<<20))); ok {
					absentHits.Add(1)
				}
			}
		}(int64(g + 1))
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			base := (id + 1) << 24
			rng := rand.New(rand.NewSource(int64(id) + 99))
			bks := make([]uint64, 16)
			bvs := make([]int, 16)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := base + uint64(rng.Intn(int(volatile)))
				switch rng.Intn(4) {
				case 0:
					tbl.Set(k, int(k))
				case 1:
					tbl.Delete(k)
				case 2:
					for i := range bks {
						bks[i] = base + uint64(rng.Intn(int(volatile)))
						bvs[i] = int(bks[i])
					}
					tbl.SetBatch(bks, bvs)
				case 3:
					tbl.Move(k, base+volatile+k%volatile)
					tbl.Delete(base + volatile + k%volatile)
				}
			}
		}(uint64(w))
	}

	// The retuner: cycle the physical stripe array while everything
	// else churns.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sizes := []int{1, 64, 4, 256, 16}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tbl.SetStripes(sizes[i%len(sizes)])
		}
	}()

	// The telemetry poller: cumulative contention counters must never
	// go backwards, even while retunes fold retired arrays into the
	// base (the seqlock in ContentionCounters/SetStripes) — a
	// regression here underflows every delta-based consumer.
	var monotonicViolations atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastAcq, lastCon uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			acq, con := tbl.ContentionCounters()
			if acq < lastAcq || con < lastCon {
				monotonicViolations.Add(1)
			}
			lastAcq, lastCon = acq, con
		}
	}()

	// The explicit resizer, crossing the stripe boundary both ways. A
	// short breather between resizes keeps resizeMu from being held
	// continuously — SetStripes is a TryLock and a back-to-back
	// resize loop would starve every retune (real resizes are
	// separated by load shifts, not issued in a hot loop).
	wg.Add(1)
	go func() {
		defer wg.Done()
		sizes := []uint64{8, 1024, 64, 4096, 16}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tbl.Resize(sizes[i%len(sizes)])
			time.Sleep(200 * time.Microsecond)
			i++
		}
	}()

	time.Sleep(1500 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := stableMisses.Load(); n != 0 {
		t.Fatalf("%d stable-key lookups missed during retune churn", n)
	}
	if n := absentHits.Load(); n != 0 {
		t.Fatalf("%d absent-key lookups hit during retune churn", n)
	}
	if n := monotonicViolations.Load(); n != 0 {
		t.Fatalf("ContentionCounters went backwards %d times across retunes", n)
	}
	for i := uint64(0); i < stable; i++ {
		if v, ok := tbl.Get(i); !ok || v != int(i) {
			t.Fatalf("stable key %d = %d,%v after retune churn", i, v, ok)
		}
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if st := tbl.Stats(); st.StripeRetunes == 0 {
		t.Fatal("torture ran without a single stripe retune")
	}
}

// TestParallelUnzipDeterministic is the parallel-migration version of
// TestDeleteDuringUnzipPatchesSibling: with the fan-out >= 2, workers
// cut different stripes' parent chains concurrently, and the test
// hook deletes keys at zipped-chain junctions between passes, forcing
// the retirement to complete while sibling chains still interleave.
// Identity hash and fixed delete schedule make the exercised states
// reproducible; -race checks the worker pool's sharing.
func TestParallelUnzipDeterministic(t *testing.T) {
	// 4 initial buckets, 4 stripes -> up to 4 migration batches per
	// pass, so 4 workers genuinely split each pass.
	tbl := New[uint64, int](func(k uint64) uint64 { return k },
		WithInitialBuckets(4), WithStripes(4), WithUnzipWorkers(4))
	defer tbl.Close()
	const n = 256
	for i := uint64(0); i < n; i++ {
		tbl.Set(i, int(i))
	}

	deleted := make(map[uint64]bool)
	next := uint64(1)
	tbl.testHookAfterUnzipPass = func(int) {
		for j := 0; j < 5 && next < n; j++ {
			if tbl.Delete(next) {
				deleted[next] = true
			}
			next += 2
		}
		tbl.Domain().Barrier() // run the deferred next-severings NOW
		if err := tbl.checkStripeInvariants(); err != nil {
			t.Error(err)
		}
	}
	for tbl.Buckets() < 256 {
		tbl.ExpandOnce()
	}
	tbl.testHookAfterUnzipPass = nil

	if len(deleted) == 0 {
		t.Skip("no unzip passes ran; nothing exercised")
	}
	if st := tbl.Stats(); st.UnzipParallelPasses == 0 {
		t.Fatal("no unzip pass ran its migration batches in parallel")
	}
	for i := uint64(0); i < n; i++ {
		v, ok := tbl.Get(i)
		if deleted[i] {
			if ok {
				t.Fatalf("deleted key %d still present", i)
			}
			continue
		}
		if !ok || v != int(i) {
			t.Fatalf("surviving key %d = %d,%v — chain truncated during parallel unzip", i, v, ok)
		}
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelUnzipDeleteRace races live deleter goroutines against
// >= 2 migration workers across the zipped sibling-chain junction —
// the PR 4 hazard — under -race. Deletes target mid-chain keys of
// every parent while expansions run with a parallel fan-out;
// surviving keys must remain reachable (a missed sibling patch or a
// racing cut would truncate a chain and lose the suffix).
func TestParallelUnzipDeleteRace(t *testing.T) {
	tbl := New[uint64, int](func(k uint64) uint64 { return k },
		WithInitialBuckets(8), WithStripes(8), WithUnzipWorkers(4))
	defer tbl.Close()
	const n = 4096
	for i := uint64(0); i < n; i++ {
		tbl.Set(i, int(i))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var deleters [2][]uint64
	for d := 0; d < 2; d++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Deleter 0 takes keys ≡ 1 (mod 4), deleter 1 keys ≡ 3
			// (mod 4): disjoint, always mid-chain for identity-hash
			// chains, spread across every parent and both children.
			for k := uint64(1 + 2*id); ; k += 4 {
				select {
				case <-stop:
					return
				default:
				}
				if k >= n {
					return
				}
				if tbl.Delete(k) {
					deleters[id] = append(deleters[id], k)
				}
			}
		}(d)
	}

	for tbl.Buckets() < 4096 {
		tbl.ExpandOnce()
	}
	close(stop)
	wg.Wait()
	tbl.Domain().Barrier()

	if st := tbl.Stats(); st.UnzipParallelPasses == 0 {
		t.Fatal("expansions never ran migration batches in parallel")
	}
	deleted := make(map[uint64]bool)
	for _, ks := range deleters {
		for _, k := range ks {
			deleted[k] = true
		}
	}
	for i := uint64(0); i < n; i++ {
		v, ok := tbl.Get(i)
		if deleted[i] {
			if ok {
				t.Fatalf("deleted key %d still present", i)
			}
			continue
		}
		if !ok || v != int(i) {
			t.Fatalf("key %d = %d,%v after parallel unzip vs delete race", i, v, ok)
		}
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestUnzipWorkersClamp pins the fan-out setter's bounds.
func TestUnzipWorkersClamp(t *testing.T) {
	tbl := NewUint64[int]()
	defer tbl.Close()
	if got := tbl.UnzipWorkers(); got != 1 {
		t.Fatalf("default UnzipWorkers() = %d, want 1", got)
	}
	tbl.SetUnzipWorkers(-5)
	if got := tbl.UnzipWorkers(); got != 1 {
		t.Fatalf("UnzipWorkers() after SetUnzipWorkers(-5) = %d, want 1", got)
	}
	tbl.SetUnzipWorkers(10000)
	if got := tbl.UnzipWorkers(); got != maxUnzipWorkers {
		t.Fatalf("UnzipWorkers() after SetUnzipWorkers(10000) = %d, want %d", got, maxUnzipWorkers)
	}
	if got := tbl.UnzipBacklog(); got != 0 {
		t.Fatalf("UnzipBacklog() = %d on an idle table, want 0", got)
	}
}

// TestMaintainGrowsStripesUnderContention is the end-to-end adapt
// loop: real blocked stripe acquisitions must drive the sampled
// contention rate over the grow threshold and the controller must
// widen the physical stripe array via SetStripes. Physical lock
// contention cannot be manufactured reliably on a 1-core CI box with
// plain Sets (writers never truly overlap), so the contention source
// is one CompareAndDelete's match callback — which the table runs
// UNDER the key's stripe — sleeping while concurrent Sets pile up
// behind it: genuinely blocked TryLocks on any core count.
func TestMaintainGrowsStripesUnderContention(t *testing.T) {
	tbl := NewUint64[int](WithInitialBuckets(1024), WithStripes(1))
	defer tbl.Close()
	ctrl := tbl.Maintain(&adapt.Config{
		Interval:   10 * time.Millisecond,
		GrowRate:   0.05,
		GrowStreak: 1,
		MinStripes: 1,
		MaxStripes: 64,
		MinSamples: 8,
	})
	if ctrl == nil {
		t.Fatal("Maintain(cfg) returned no controller")
	}

	tbl.Set(7, 7)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Three slow writers on ONE key: each holds the key's stripe for
	// ~100µs per operation (the match callback runs under the stripe
	// lock and always declines), so whoever arrives while another
	// holds it fails its TryLock and blocks — near-100% contention
	// with no fast traffic to dilute the rate, on any core count.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tbl.CompareAndDelete(uint64(7), func(int) bool {
					time.Sleep(100 * time.Microsecond)
					return false
				})
			}
		}()
	}

	deadline := time.Now().Add(10 * time.Second)
	for tbl.Stripes() == 1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if got := tbl.Stripes(); got == 1 {
		st, _ := tbl.AdaptStats()
		acq, con := tbl.ContentionCounters()
		t.Fatalf("controller never grew stripes under forced contention (samples=%d lastRate=%.4f acq=%d con=%d)",
			st.Samples, st.LastRate, acq, con)
	}
	st, ok := tbl.AdaptStats()
	if !ok || st.StripeGrows == 0 {
		t.Fatalf("AdaptStats() = %+v, %v; want StripeGrows > 0", st, ok)
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Maintain(nil) stops maintenance; AdaptStats reports off.
	tbl.Maintain(nil)
	if _, ok := tbl.AdaptStats(); ok {
		t.Fatal("AdaptStats() still on after Maintain(nil)")
	}
}
