package core

// Batched operations. The read-side win of the paper's design is a
// cheap — but not free — delimited reader section per lookup: two
// reader-local atomic stores, plus (for pooled readers) a pool
// round-trip. Callers that arrive with many keys at once (memcached
// multi-get, cache warm-up, bulk loads) can amortize that entry/exit
// cost over the whole group: GetBatch performs every lookup inside
// ONE reader section, and the batched writers visit the table's
// writer stripes in sorted order, locking each touched stripe once
// for all of its keys instead of once per key.
//
// Holding one reader section across a batch is safe at any batch
// size — reader sections never block writers — but it does extend the
// current grace period by the batch's duration, delaying memory
// reclamation behind it. Batches of a few hundred keys are
// microseconds; for unbounded traversals use RangeChunked, which
// exits the section between chunks.

import "slices"

// GetBatch looks up ks[i] into vals[i] and oks[i] for every i, all
// inside a single read-side critical section. len(vals) and len(oks)
// must equal len(ks); vals[i] is the zero value where oks[i] is
// false. The per-key semantics are exactly Get's; keys are not
// snapshotted together (a concurrent writer may land between two
// lookups of the same section).
func (t *Table[K, V]) GetBatch(ks []K, vals []V, oks []bool) {
	if len(vals) != len(ks) || len(oks) != len(ks) {
		panic("core: GetBatch output length mismatch")
	}
	t.dom.Read(func() {
		for i := range ks {
			vals[i], oks[i] = t.lookupHashed(t.hash(ks[i]), ks[i])
		}
	})
}

// GetBatchHashed is GetBatch with the keys' table hashes precomputed;
// hs[i] must equal the table's hash of ks[i]. Multi-table front-ends
// (internal/shard) hash once to route and pass the hashes through.
func (t *Table[K, V]) GetBatchHashed(hs []uint64, ks []K, vals []V, oks []bool) {
	if len(hs) != len(ks) || len(vals) != len(ks) || len(oks) != len(ks) {
		panic("core: GetBatchHashed length mismatch")
	}
	t.dom.Read(func() {
		for i := range ks {
			vals[i], oks[i] = t.lookupHashed(hs[i], ks[i])
		}
	})
}

// batchScratch is the pooled workspace of the batched write paths:
// ord holds (stripe, batch-index) pairs packed into one uint64 each,
// so a plain sort groups the batch by stripe while preserving the
// original order within a stripe (the packed index breaks ties).
type batchScratch struct {
	ord []uint64
}

// stripeOrder returns a pooled workspace whose ord slice lists the
// batch indices of hs grouped by stripe (ascending) and, within a
// stripe, in original batch order — the order the write loops visit
// so each touched stripe is locked once and duplicates keep
// last-write-wins semantics. The stripe assignment uses a snapshot of
// the stripe mask; if a resize boundary moves the mask mid-batch the
// apply loop just re-locks more often (the per-op lock is always
// taken under the live mask).
func (t *Table[K, V]) stripeOrder(hs []uint64) *batchScratch {
	sc, _ := t.batchPool.Get().(*batchScratch)
	if sc == nil {
		sc = &batchScratch{}
	}
	if cap(sc.ord) < len(hs) {
		sc.ord = make([]uint64, len(hs))
	}
	ord := sc.ord[:len(hs)]
	m := t.stripes.arr.Load().mask.Load()
	for i, h := range hs {
		ord[i] = (h&m)<<32 | uint64(i)
	}
	slices.Sort(ord)
	sc.ord = ord
	return sc
}

// batchWriter holds one stripe at a time across a stripe-ordered
// batch, re-locking only when the next key maps elsewhere. At most
// one stripe is ever held, so batches are deadlock-free against
// point writers, Move, and resizes regardless of interleaving.
type batchWriter[K comparable, V any] struct {
	t    *Table[K, V]
	held *stripeLock
	slot uint64
	mask uint64
}

// acquire ensures the stripe covering h is held. While a stripe is
// held, neither the mask nor the stripe array can move (both change
// only under every stripe), so the cached mask stays valid until
// release.
func (w *batchWriter[K, V]) acquire(h uint64) {
	if w.held != nil {
		if h&w.mask == w.slot {
			return
		}
		w.held.mu.Unlock()
		w.held = nil
	}
	for {
		a := w.t.stripes.arr.Load()
		m := a.mask.Load()
		s := &a.locks[h&m]
		s.lockContended(w.t.stripeWaitHist(), int(h&m))
		if w.t.stripes.arr.Load() == a && a.mask.Load() == m {
			w.held, w.slot, w.mask = s, h&m, m
			return
		}
		s.mu.Unlock()
	}
}

func (w *batchWriter[K, V]) release() {
	if w.held != nil {
		w.held.mu.Unlock()
		w.held = nil
	}
}

// SetBatch upserts every (ks[i], vs[i]) pair, returning how many keys
// were newly inserted. The batch is grouped by writer stripe and each
// touched stripe is locked once for all of its keys (sorted-stripe
// locking): a B-key batch over a table with E effective stripes costs
// at most min(B, E) lock acquisitions. Duplicate keys in the batch
// apply in order (the last value wins). Writers on other stripes
// proceed in parallel; the batch is not atomic — point writes and
// readers may interleave between stripe groups.
func (t *Table[K, V]) SetBatch(ks []K, vs []V) (inserted int) {
	if len(vs) != len(ks) {
		panic("core: SetBatch length mismatch")
	}
	if len(ks) == 0 {
		return 0
	}
	hs := make([]uint64, len(ks))
	for i := range ks {
		hs[i] = t.hash(ks[i])
	}
	return t.SetBatchHashed(hs, ks, vs)
}

// SetBatchHashed is SetBatch with the keys' table hashes precomputed
// (see GetBatchHashed).
func (t *Table[K, V]) SetBatchHashed(hs []uint64, ks []K, vs []V) (inserted int) {
	if len(hs) != len(ks) || len(vs) != len(ks) {
		panic("core: SetBatchHashed length mismatch")
	}
	if len(ks) == 0 {
		return 0
	}
	return t.eng.setBatchHashed(hs, ks, vs)
}

// chainSetBatchHashed is the chain engine's batched upsert; lengths
// are validated by the dispatcher.
func (t *Table[K, V]) chainSetBatchHashed(hs []uint64, ks []K, vs []V) (inserted int) {
	sc := t.stripeOrder(hs)
	w := batchWriter[K, V]{t: t}
	for _, packed := range sc.ord {
		i := int(packed & 0xffffffff)
		w.acquire(hs[i])
		// Copy before boxing either way: the box must not alias the
		// caller's slice, which it may reuse after the call.
		v := vs[i]
		if n := t.findLocked(hs[i], ks[i]); n != nil {
			n.val.Store(&v)
			continue
		}
		t.insertLocked(hs[i], ks[i], &v)
		inserted++
	}
	w.release()
	t.batchPool.Put(sc)
	if inserted > 0 {
		t.maybeAutoResizeBackpressure()
	}
	return inserted
}

// DeleteBatch removes every key in ks, returning how many were
// present. Stripe grouping and lock amortization match SetBatch; all
// unlinked nodes retire through a single deferred callback — one
// grace period covers the whole batch instead of one per key.
func (t *Table[K, V]) DeleteBatch(ks []K) (removed int) {
	if len(ks) == 0 {
		return 0
	}
	hs := make([]uint64, len(ks))
	for i := range ks {
		hs[i] = t.hash(ks[i])
	}
	return t.DeleteBatchHashed(hs, ks)
}

// DeleteBatchHashed is DeleteBatch with the keys' table hashes
// precomputed (see GetBatchHashed).
func (t *Table[K, V]) DeleteBatchHashed(hs []uint64, ks []K) (removed int) {
	if len(hs) != len(ks) {
		panic("core: DeleteBatchHashed length mismatch")
	}
	if len(ks) == 0 {
		return 0
	}
	return t.eng.deleteBatchHashed(hs, ks)
}

// chainDeleteBatchHashed is the chain engine's batched delete.
func (t *Table[K, V]) chainDeleteBatchHashed(hs []uint64, ks []K) (removed int) {
	sc := t.stripeOrder(hs)
	w := batchWriter[K, V]{t: t}
	var victims []*node[K, V]
	for _, packed := range sc.ord {
		i := int(packed & 0xffffffff)
		w.acquire(hs[i])
		if n, _, ok := t.unlinkLocked(hs[i], ks[i], nil); ok {
			victims = append(victims, n)
			removed++
		}
	}
	w.release()
	t.batchPool.Put(sc)
	t.retireBatch(victims)
	if removed > 0 {
		t.maybeAutoResize()
	}
	return removed
}

// retireBatch schedules one deferred callback severing every victim's
// next pointer after a grace period, so captured nodes cannot pin
// live chains for the garbage collector.
func (t *Table[K, V]) retireBatch(victims []*node[K, V]) {
	if len(victims) == 0 {
		return
	}
	t.dom.Defer(func() {
		for _, v := range victims {
			v.next.Store(nil)
		}
	})
}

// DefaultRangeChunk is the bucket-count target RangeChunked uses when
// the caller passes chunk <= 0.
const DefaultRangeChunk = 512

// RangeChunked calls fn for every element until fn returns false,
// like Range, but exits the read-side critical section between
// chunks of roughly `chunk` elements (chunk <= 0 selects
// DefaultRangeChunk). Each chunk collects whole buckets inside one
// reader section and then invokes fn OUTSIDE the section, so:
//
//   - a huge traversal never extends a grace period beyond one
//     chunk's collection time — writers' deferred reclamation keeps
//     flowing while fn runs — and
//   - fn may block, take locks, or call back into the table without
//     holding up memory reclamation, none of which is safe inside
//     Range's single section.
//
// The price is weaker iteration semantics under concurrent resizing.
// Progress is tracked by bucket index; if the table's bucket count
// changes between chunks the cursor is rescaled proportionally, so a
// traversal overlapping a resize may skip or repeat elements near the
// cursor. With no concurrent resize the guarantee matches Range:
// elements present for the whole traversal are visited exactly once;
// concurrently inserted or deleted elements may or may not appear.
// Values are copied at collection time and may be stale by the time
// fn observes them.
func (t *Table[K, V]) RangeChunked(chunk int, fn func(K, V) bool) {
	if chunk <= 0 {
		chunk = DefaultRangeChunk
	}
	t.eng.rangeChunked(chunk, fn)
}

// chainRangeChunked is the chain engine's chunked traversal, with the
// bucket-index cursor and proportional rescale described above.
func (t *Table[K, V]) chainRangeChunked(chunk int, fn func(K, V) bool) {
	keys := make([]K, 0, chunk)
	vals := make([]V, 0, chunk)
	var cursor, buckets uint64
	for {
		keys, vals = keys[:0], vals[:0]
		done := false
		t.dom.Read(func() {
			ht := t.ht.Load()
			n := ht.size()
			if buckets != 0 && n != buckets {
				// Resized between chunks: rescale the cursor so
				// progress stays monotonic. Rounding up may skip up
				// to one old bucket's worth of elements — the
				// documented cost of resizing mid-traversal — but
				// guarantees termination under continuous resizing.
				cursor = (cursor*n + buckets - 1) / buckets
			}
			buckets = n
			for cursor < n && len(keys) < chunk {
				for nd := ht.slot[cursor].Load(); nd != nil; nd = nd.next.Load() {
					if nd.hash&ht.mask != cursor {
						continue // foreign node mid-unzip; its home bucket reports it
					}
					keys = append(keys, nd.key)
					vals = append(vals, *nd.val.Load())
				}
				cursor++
			}
			done = cursor >= n
		})
		for i := range keys {
			if !fn(keys[i], vals[i]) {
				return
			}
		}
		if done {
			return
		}
	}
}
