package core

import (
	"testing"
	"time"
)

func TestGetBatch(t *testing.T) {
	tbl := NewUint64[int](WithInitialBuckets(64))
	defer tbl.Close()
	for i := uint64(0); i < 100; i++ {
		tbl.Set(i, int(i))
	}

	ks := make([]uint64, 0, 150)
	for i := uint64(0); i < 150; i++ {
		ks = append(ks, i) // 100 present, 50 absent
	}
	vals := make([]int, len(ks))
	oks := make([]bool, len(ks))
	tbl.GetBatch(ks, vals, oks)

	for i, k := range ks {
		if k < 100 {
			if !oks[i] || vals[i] != int(k) {
				t.Fatalf("key %d: got (%d, %v), want (%d, true)", k, vals[i], oks[i], k)
			}
		} else if oks[i] {
			t.Fatalf("absent key %d reported present", k)
		}
	}

	// Hashed form must agree.
	hs := make([]uint64, len(ks))
	for i, k := range ks {
		hs[i] = tbl.hash(k)
	}
	vals2 := make([]int, len(ks))
	oks2 := make([]bool, len(ks))
	tbl.GetBatchHashed(hs, ks, vals2, oks2)
	for i := range ks {
		if vals2[i] != vals[i] || oks2[i] != oks[i] {
			t.Fatalf("GetBatchHashed disagrees with GetBatch at %d", i)
		}
	}
}

func TestSetBatch(t *testing.T) {
	tbl := NewUint64[int](WithInitialBuckets(64))
	defer tbl.Close()
	tbl.Set(1, -1)

	// 1 is an overwrite; 2 appears twice (last value must win).
	inserted := tbl.SetBatch([]uint64{1, 2, 2, 3}, []int{10, 20, 21, 30})
	if inserted != 2 {
		t.Fatalf("inserted = %d, want 2 (keys 2 and 3)", inserted)
	}
	for k, want := range map[uint64]int{1: 10, 2: 21, 3: 30} {
		if v, ok := tbl.Get(k); !ok || v != want {
			t.Fatalf("Get(%d) = (%d, %v), want (%d, true)", k, v, ok, want)
		}
	}
	if tbl.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tbl.Len())
	}
}

func TestDeleteBatch(t *testing.T) {
	tbl := NewUint64[int](WithInitialBuckets(64))
	defer tbl.Close()
	for i := uint64(0); i < 20; i++ {
		tbl.Set(i, int(i))
	}

	before := tbl.Domain().Stats().Deferred
	removed := tbl.DeleteBatch([]uint64{0, 1, 2, 3, 4, 99})
	if removed != 5 {
		t.Fatalf("removed = %d, want 5", removed)
	}
	if tbl.Len() != 15 {
		t.Fatalf("Len = %d, want 15", tbl.Len())
	}
	for i := uint64(0); i < 5; i++ {
		if _, ok := tbl.Get(i); ok {
			t.Fatalf("deleted key %d still present", i)
		}
	}
	// The whole batch retires through ONE deferred callback (one grace
	// period), not one per key.
	if d := tbl.Domain().Stats().Deferred - before; d != 1 {
		t.Fatalf("batch delete queued %d deferred callbacks, want 1", d)
	}
}

func TestRangeChunkedVisitsAll(t *testing.T) {
	tbl := NewUint64[int](WithInitialBuckets(64))
	defer tbl.Close()
	const n = 1000
	for i := uint64(0); i < n; i++ {
		tbl.Set(i, int(i))
	}

	seen := make(map[uint64]int)
	tbl.RangeChunked(7, func(k uint64, v int) bool {
		if v != int(k) {
			t.Fatalf("key %d carried value %d", k, v)
		}
		seen[k]++
		return true
	})
	if len(seen) != n {
		t.Fatalf("visited %d distinct keys, want %d", len(seen), n)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("key %d visited %d times", k, c)
		}
	}

	// Early stop.
	count := 0
	tbl.RangeChunked(7, func(uint64, int) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop visited %d, want 10", count)
	}
}

// TestRangeChunkedReleasesReaders is the grace-period rationale for
// RangeChunked: fn runs OUTSIDE the read-side critical section, so a
// blocking callback cannot extend a grace period. A Synchronize
// issued while fn is blocked must complete; with Range's single
// section this would deadlock.
func TestRangeChunkedReleasesReaders(t *testing.T) {
	tbl := NewUint64[int](WithInitialBuckets(8))
	defer tbl.Close()
	for i := uint64(0); i < 16; i++ {
		tbl.Set(i, int(i))
	}

	synced := make(chan struct{})
	first := true
	tbl.RangeChunked(1, func(uint64, int) bool {
		if first {
			first = false
			go func() {
				tbl.Domain().Synchronize()
				close(synced)
			}()
			select {
			case <-synced:
			case <-time.After(10 * time.Second):
				t.Error("Synchronize blocked while RangeChunked callback was running; fn is inside a reader section")
			}
			return !t.Failed()
		}
		return true
	})
}

// TestRangeChunkedUnderResize: a traversal overlapping continuous
// resizing must terminate, never panic, and only report keys that
// were actually inserted (with their correct values).
func TestRangeChunkedUnderResize(t *testing.T) {
	tbl := NewUint64[int](WithInitialBuckets(64))
	defer tbl.Close()
	const n = 4096
	for i := uint64(0); i < n; i++ {
		tbl.Set(i, int(i))
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			tbl.Resize(256)
			tbl.Resize(64)
		}
	}()

	for pass := 0; pass < 20; pass++ {
		visited := 0
		tbl.RangeChunked(16, func(k uint64, v int) bool {
			if k >= n || v != int(k) {
				t.Errorf("bogus element (%d, %d)", k, v)
				return false
			}
			visited++
			return true
		})
		if t.Failed() {
			break
		}
		_ = visited // may legitimately under/over-count mid-resize
	}
	close(stop)
	<-done
}
