package core

import "testing"

// Benchmark pairs for the lock-free write fast path: each shape runs
// once with the CAS fast path on (the shipping default) and once
// pinned to the striped write path (WithCASInsert(false)), so
// benchstat can price the fast path per workload shape on one
// goroutine. The multi-writer story is the figure-5 sweep and
// ablation A7 (cmd/rphash-bench); these exist to catch single-thread
// regressions in the fast path's constant costs — the open-coded
// replace hint and the sectioned insert probe are only worth shipping
// if the uncontended op stays at striped-path cost.

// benchCASReplace upserts over a fully preloaded keyspace: every op
// takes the replace path (hint walk + stripe-held revalidation when
// the fast path is on; stripe + chain walk when off).
func benchCASReplace(b *testing.B, casOn bool, keys uint64) {
	opts := []Option{WithInitialBuckets(8192)}
	if !casOn {
		opts = append(opts, WithCASInsert(false))
	}
	t := NewUint64[int](opts...)
	defer t.Close()
	for i := uint64(0); i < keys; i++ {
		t.Set(i, 0)
	}
	s := uint64(0x9e3779b97f4a7c15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// xorshift keeps key draw cost trivial and allocation-free.
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		t.Set(s&(keys-1), i)
	}
}

// Load factor 0.5: chains of 0-1 nodes, the fast path's best case.
func BenchmarkSetReplaceCASOn(b *testing.B)  { benchCASReplace(b, true, 4096) }
func BenchmarkSetReplaceCASOff(b *testing.B) { benchCASReplace(b, false, 4096) }

// Load factor 2: multi-node chains, so the hint walk's per-node loads
// dominate and any double-walk regression shows up immediately.
func BenchmarkSetReplaceDeepCASOn(b *testing.B)  { benchCASReplace(b, true, 16384) }
func BenchmarkSetReplaceDeepCASOff(b *testing.B) { benchCASReplace(b, false, 16384) }

// benchCASInsert grows a table with pure inserts (every key fresh):
// the CAS-publish path against the striped insert. Sized so the
// bucket array never resizes during the run.
func benchCASInsert(b *testing.B, casOn bool) {
	opts := []Option{WithInitialBuckets(1 << 22)}
	if !casOn {
		opts = append(opts, WithCASInsert(false))
	}
	t := NewUint64[int](opts...)
	defer t.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Set(uint64(i), i)
	}
}

func BenchmarkSetInsertCASOn(b *testing.B)  { benchCASInsert(b, true) }
func BenchmarkSetInsertCASOff(b *testing.B) { benchCASInsert(b, false) }
