package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Torture tests for the lock-free write fast path: CAS inserts, the
// open-coded replace hint, and value-level compare-and-swap racing
// resizes (whose unzip windows force the fallback and undo paths) and
// stripe retunes (whose odd-epoch windows force the preamble
// fallback). Run them under -race; they are also in the
// -tags=invariants CI sweep via the Torture name prefix.

// churnMaintenance runs resize and stripe-retune churn until stop
// closes, crossing unzip windows (ExpandOnce/ShrinkOnce) and stripe
// swaps (SetStripes) so fast-path writers keep hitting epoch changes
// mid-flight.
func churnMaintenance(tbl *Table[uint64, int], stop chan struct{}, wg *sync.WaitGroup) {
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tbl.ExpandOnce()
			tbl.ShrinkOnce()
		}
	}()
	go func() {
		defer wg.Done()
		n := 4
		for {
			select {
			case <-stop:
				return
			default:
			}
			tbl.SetStripes(n)
			if n = n * 4; n > 64 {
				n = 4
			}
		}
	}()
}

// TestTortureCASInsertExactlyOneWinner races several goroutines
// inserting the same fresh keys (each with a writer-unique value)
// while resizes and retunes churn. Insert must admit exactly one
// winner per key — a speculative node that is undone after losing its
// epoch validation must not have reported success, and a key must
// never be won twice — and the surviving value must be the recorded
// winner's.
func TestTortureCASInsertExactlyOneWinner(t *testing.T) {
	tbl := newT(t, WithInitialBuckets(64))
	const keys = 4096
	const writers = 4

	winner := make([]atomic.Int32, keys)
	for i := range winner {
		winner[i].Store(-1)
	}

	stop := make(chan struct{})
	var maint sync.WaitGroup
	churnMaintenance(tbl, stop, &maint)

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for _, i := range rng.Perm(keys) {
				if tbl.Insert(uint64(i), i*writers+g) {
					if !winner[i].CompareAndSwap(-1, int32(g)) {
						t.Errorf("key %d won twice (writers %d and %d)",
							i, winner[i].Load(), g)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	maint.Wait()

	if got := tbl.Len(); got != keys {
		t.Fatalf("Len = %d, want %d", got, keys)
	}
	for i := 0; i < keys; i++ {
		w := winner[i].Load()
		if w < 0 {
			t.Fatalf("key %d was never won", i)
		}
		if v, ok := tbl.Get(uint64(i)); !ok || v != i*writers+int(w) {
			t.Fatalf("Get(%d) = %d,%v; want winner %d's value %d",
				i, v, ok, w, i*writers+int(w))
		}
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTortureValueCASIncrementLedger drives the value plane: writers
// increment a small set of counters purely through
// CompareAndSwapValue while resizes and retunes churn. Every
// successful swap transitions the value it matched to exactly
// matched+1 (the value box pointer makes the CAS ABA-free), so each
// final counter must equal the successes recorded against it — a lost
// or double-applied swap breaks the ledger. The keys are never
// deleted, so the documented swap-vs-delete caveat is out of scope
// here.
func TestTortureValueCASIncrementLedger(t *testing.T) {
	tbl := newT(t, WithInitialBuckets(128))
	const keys = 64
	const writers = 4
	const attempts = 20000
	for i := uint64(0); i < keys; i++ {
		tbl.Set(i, 0)
	}

	stop := make(chan struct{})
	var maint sync.WaitGroup
	churnMaintenance(tbl, stop, &maint)

	var successes [keys]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for n := 0; n < attempts; n++ {
				k := uint64(rng.Intn(keys))
				cur, ok := tbl.Get(k)
				if !ok {
					t.Errorf("counter key %d missing", k)
					return
				}
				swapped, present := tbl.CompareAndSwapValue(k,
					func(v int) bool { return v == cur }, cur+1)
				if !present {
					t.Errorf("counter key %d reported absent", k)
					return
				}
				if swapped {
					successes[k].Add(1)
				}
			}
		}(int64(g + 300))
	}
	wg.Wait()
	close(stop)
	maint.Wait()

	for k := uint64(0); k < keys; k++ {
		want := int(successes[k].Load())
		if v, ok := tbl.Get(k); !ok || v != want {
			t.Fatalf("counter %d = %d,%v after churn; ledger says %d successful swaps",
				k, v, ok, want)
		}
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTortureReplaceHintRacingDeleteResize exercises the open-coded
// replace fast path (the unprotected hint walk revalidated under the
// stripe) against everything that can kill a hint: deletes unlink the
// hinted node mid-flight on the volatile range, and resizes/retunes
// move the epoch so hints go stale wholesale. Stable keys take
// continuous Set/Swap traffic and must never be missed by concurrent
// readers nor hold a foreign value; a disjoint absent range must stay
// absent throughout — a speculative insert that leaked past its undo
// would surface there as a phantom key (writers never touch it, so
// any sighting is a fast-path bug).
func TestTortureReplaceHintRacingDeleteResize(t *testing.T) {
	tbl := newT(t, WithInitialBuckets(128))
	const stable = 512
	const volatileBase = 1 << 20
	const absentBase = 1 << 30
	fill(tbl, stable)

	stop := make(chan struct{})
	var misses, phantoms atomic.Int64
	var wg sync.WaitGroup
	churnMaintenance(tbl, stop, &wg)

	// Readers: stable keys always present with a value some writer
	// wrote; absent keys never appear.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := tbl.NewReadHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(stable))
				if v, ok := h.Get(k); !ok || v != int(k) {
					misses.Add(1)
				}
				if _, ok := h.Get(absentBase + uint64(rng.Intn(4096))); ok {
					phantoms.Add(1)
				}
			}
		}(int64(g + 400))
	}

	// Writers: replace traffic on the stable range (Set re-publishing
	// the same value, Swap asserting it read that value back), and
	// Set/Delete churn on the volatile range so replace hints race
	// unlinks of the very node they point at.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(stable))
				switch rng.Intn(4) {
				case 0:
					if tbl.Set(k, int(k)) {
						t.Errorf("Set(%d) claims insert on a stable key", k)
						return
					}
				case 1:
					if old, replaced := tbl.Swap(k, int(k)); !replaced || old != int(k) {
						t.Errorf("Swap(%d) = %d,%v; want %d,true", k, old, replaced, k)
						return
					}
				default:
					vk := volatileBase + uint64(rng.Intn(1024))
					if rng.Intn(2) == 0 {
						tbl.Set(vk, int(vk))
					} else {
						tbl.Delete(vk)
					}
				}
			}
		}(int64(g + 500))
	}

	time.Sleep(1200 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := misses.Load(); n != 0 {
		t.Fatalf("%d reads missed stable keys during replace churn", n)
	}
	if n := phantoms.Load(); n != 0 {
		t.Fatalf("%d phantom sightings in the absent key range (leaked speculative insert?)", n)
	}
	for i := uint64(0); i < stable; i++ {
		if v, ok := tbl.Get(i); !ok || v != int(i) {
			t.Fatalf("stable key %d = %d,%v after churn", i, v, ok)
		}
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}
