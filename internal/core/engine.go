package core

// The engine seam: the bucket/chain representation of the table sits
// behind this internal interface so alternative layouts can be built
// without touching the shared machinery — the RCU domain, the writer
// stripes, the resize serializer and epoch seqlock, the auto-resize
// policy, the adapt controller, observability, and the batch
// stripe-sort workspace all live on Table and are engine-agnostic.
//
// Two engines exist:
//
//   - "chain" (chainEngine, the default): the paper's relativistic
//     open-chaining layout — per-bucket singly linked chains, unzip
//     expansion and zip shrink that relink the SAME nodes under
//     grace-period choreography, a lock-free CAS insert fast path and
//     hint-validated replace. Its implementation is the chain*
//     methods spread across lookup.go / update.go / batch.go /
//     resize.go, exactly where it always lived.
//
//   - "flat" (flatEngine, flat.go): cache-line-contiguous fixed-size
//     cell groups per bucket with a packed 8-bit hash-tag word
//     scanned first and a chain-overflow spill, resized by
//     relativistic COPY-based per-bucket migration (flat_resize.go).
//
// Contract notes, shared by every implementation:
//
//   - lookupHashed is called INSIDE a read-side critical section of
//     t.dom (Get, ReadHandle, QSBRHandle, GetBatch all provide one);
//     it must be synchronization-free on the read side.
//   - The write methods own their locking (stripes via t.lockHash and
//     friends) and their auto-resize triggers, mirroring the public
//     semantics documented on the Table methods that dispatch to
//     them.
//   - expandStep/shrinkStep are called with t.resizeMu held and
//     perform one factor-of-two step including all grace periods;
//     shrinkStep must refuse below t.policy.MinBuckets.
//   - bucketCount is the published bucket count (the policy layer and
//     the stripe retune size the effective stripe mask from it);
//     migrationFloor is 0 when no migration is in flight, else the
//     bucket granularity writers' stripes must not exceed (the chain
//     engine's unzip parent count; the flat engine's migration unit
//     count), checked by checkStripeInvariants.
type engine[K comparable, V any] interface {
	name() string

	// Read side (inside a reader section of t.dom).
	lookupHashed(h uint64, k K) (V, bool)

	// Traversals (own their reader sections).
	rangeAll(fn func(K, V) bool)
	rangeChunked(chunk int, fn func(K, V) bool)
	maxProbe() int

	// Point writes (own their stripe locking and resize triggers).
	setHashed(h uint64, k K, v V) bool
	swapHashed(h uint64, k K, v V) (V, bool)
	insertHashed(h uint64, k K, v V) bool
	replaceHashed(h uint64, k K, v V) bool
	updateHashed(h uint64, k K, fn func(cur V, present bool) (V, bool)) (V, bool, bool)
	compareAndDeleteHashed(h uint64, k K, match func(V) bool) (V, bool)
	compareAndSwapValueHashed(h uint64, k K, match func(V) bool, v V) (swapped, present bool)
	move(oldKey, newKey K) bool

	// Batched writes (keys pre-hashed; lengths already validated).
	setBatchHashed(hs []uint64, ks []K, vs []V) int
	deleteBatchHashed(hs []uint64, ks []K) int

	// Geometry and resize (resizeMu held for the step methods).
	bucketCount() uint64
	migrationFloor() uint64
	expandStep()
	shrinkStep()

	// introspect reports layout telemetry (occupancy, spill, migration
	// progress — see EngineIntro). Bounded cost regardless of table
	// size: the flat engine samples at most flatIntroSampleGroups
	// groups, the chain engine reads two counters.
	introspect() EngineIntro

	// Structural checking (tests and -tags=invariants builds).
	checkInvariants() error
	checkInvariantsLive() error
}

// Engine name constants accepted by WithEngine.
const (
	// EngineChain is the default: the paper's relativistic chain
	// layout with unzip/zip resizing.
	EngineChain = "chain"
	// EngineFlat is the cache-line-contiguous cell-group layout with
	// copy-based migration (see flat.go).
	EngineFlat = "flat"
)

// WithEngine selects the table's bucket representation: EngineChain
// (the default, also selected by "") or EngineFlat. The public API,
// the striped writer model, and the synchronization-free read side
// are identical either way; the engines differ in memory layout,
// resize choreography, and which writes have lock-free fast paths
// (the flat engine has none — see flat.go's value-plane note).
// Unknown names panic at construction.
func WithEngine(name string) Option {
	return func(c *config) { c.engine = name }
}

// Engine reports which bucket representation the table runs
// (EngineChain or EngineFlat).
func (t *Table[K, V]) Engine() string { return t.eng.name() }

// newEngine constructs the configured engine and its initial storage.
func newEngine[K comparable, V any](t *Table[K, V], cfg *config) engine[K, V] {
	switch cfg.engine {
	case "", EngineChain:
		t.ht.Store(newBuckets[K, V](cfg.initial))
		return &chainEngine[K, V]{t: t}
	case EngineFlat:
		e := &flatEngine[K, V]{t: t}
		e.view.Store(newFlatView[K, V](cfg.initial, nil))
		return e
	default:
		panic("core: unknown engine " + cfg.engine)
	}
}

// chainEngine adapts the table's original relativistic chain
// implementation — the chain* methods in lookup.go, update.go,
// batch.go, resize.go, stats.go, and invariant.go — to the engine
// interface. Pure delegation: the chain code itself is unchanged by
// the engine refactor (its lock-free read path, CAS write fast path,
// and unzip resize are load-bearing and benchmarked).
type chainEngine[K comparable, V any] struct{ t *Table[K, V] }

func (e *chainEngine[K, V]) name() string { return EngineChain }

func (e *chainEngine[K, V]) lookupHashed(h uint64, k K) (V, bool) { return e.t.chainLookupHashed(h, k) }
func (e *chainEngine[K, V]) rangeAll(fn func(K, V) bool)          { e.t.chainRangeAll(fn) }
func (e *chainEngine[K, V]) rangeChunked(chunk int, fn func(K, V) bool) {
	e.t.chainRangeChunked(chunk, fn)
}
func (e *chainEngine[K, V]) maxProbe() int { return e.t.chainMaxProbe() }

func (e *chainEngine[K, V]) setHashed(h uint64, k K, v V) bool { return e.t.chainSetHashed(h, k, v) }
func (e *chainEngine[K, V]) swapHashed(h uint64, k K, v V) (V, bool) {
	return e.t.chainSwapHashed(h, k, v)
}
func (e *chainEngine[K, V]) insertHashed(h uint64, k K, v V) bool {
	return e.t.chainInsertHashed(h, k, v)
}
func (e *chainEngine[K, V]) replaceHashed(h uint64, k K, v V) bool {
	return e.t.chainReplaceHashed(h, k, v)
}
func (e *chainEngine[K, V]) updateHashed(h uint64, k K, fn func(V, bool) (V, bool)) (V, bool, bool) {
	return e.t.chainUpdateHashed(h, k, fn)
}
func (e *chainEngine[K, V]) compareAndDeleteHashed(h uint64, k K, match func(V) bool) (V, bool) {
	return e.t.chainCompareAndDeleteHashed(h, k, match)
}
func (e *chainEngine[K, V]) compareAndSwapValueHashed(h uint64, k K, match func(V) bool, v V) (bool, bool) {
	return e.t.chainCompareAndSwapValueHashed(h, k, match, v)
}
func (e *chainEngine[K, V]) move(oldKey, newKey K) bool { return e.t.chainMove(oldKey, newKey) }

func (e *chainEngine[K, V]) setBatchHashed(hs []uint64, ks []K, vs []V) int {
	return e.t.chainSetBatchHashed(hs, ks, vs)
}
func (e *chainEngine[K, V]) deleteBatchHashed(hs []uint64, ks []K) int {
	return e.t.chainDeleteBatchHashed(hs, ks)
}

func (e *chainEngine[K, V]) bucketCount() uint64    { return e.t.ht.Load().size() }
func (e *chainEngine[K, V]) migrationFloor() uint64 { return e.t.unzipParent.Load() }
func (e *chainEngine[K, V]) expandStep()            { e.t.chainExpandStep() }
func (e *chainEngine[K, V]) shrinkStep()            { e.t.chainShrinkStep() }

// introspect maps the chain engine's unzip state onto the shared
// migration-progress vocabulary: units are the expansion's parent
// chains, done is parents already fully unzipped. The flat occupancy
// fields stay zero — chains have no fixed-cell groups to fill.
func (e *chainEngine[K, V]) introspect() EngineIntro {
	var in EngineIntro
	if units := e.t.unzipParent.Load(); units > 0 {
		in.MigrationUnits = units
		if backlog := e.t.unzipBacklog.Load(); backlog > 0 && uint64(backlog) <= units {
			in.MigrationDone = units - uint64(backlog)
		} else if backlog <= 0 {
			in.MigrationDone = units
		}
	}
	return in
}

func (e *chainEngine[K, V]) checkInvariants() error     { return e.t.chainCheckInvariants() }
func (e *chainEngine[K, V]) checkInvariantsLive() error { return e.t.chainCheckInvariantsLive() }
