package core

// The "flat" engine: cache-line-contiguous bucket storage behind the
// engine seam (engine.go), selected with WithEngine(EngineFlat).
//
// Layout. Each bucket is one flatGroup: a packed word of eight 8-bit
// hash tags, a retiring-cell mask, eight inline key/value cells, and
// an overflow chain head for spill. A lookup loads the tag word once,
// SWAR-scans it for candidate cells, and touches only cells whose tag
// byte matches — the common miss costs one cache line, the common hit
// two, with no pointer chase at all. The chain engine's lookup walks
// a linked list whose nodes are scattered heap allocations; this
// layout is the classic flat alternative (Maier et al.'s folklore
// baseline, Malakhov's per-bucket tables) expressed relativistically.
//
// Publication protocol. Cells are published and retired exclusively
// through the tag word:
//
//   - Insert (stripe held): write the cell's hash/key plainly, store
//     the value box, then atomically store the tag word with the
//     cell's tag byte set. The tag store is the release edge; a
//     reader that observes the tag observes the complete cell.
//   - Delete (stripe held): atomically store the tag word with the
//     byte cleared, set the cell's retiring bit, and defer the
//     cleanup (value-box release, retiring clear) past a grace
//     period. Readers that saw the tag may still be dereferencing
//     the cell; the retiring bit keeps inserts from rewriting its
//     hash/key until the grace period proves those readers gone.
//     The deferred retiring clear is itself the release edge a later
//     insert's acquire load pairs with, so cell reuse is ordered
//     after every reader that could see the old contents.
//
// Readers therefore never synchronize: one atomic tag load, plain
// cell reads, an atomic value-box load — the same read-side cost
// model as the chain engine, on contiguous memory.
//
// Value plane. Every write — including Replace and
// CompareAndSwapValue — takes the key's stripe. This is the one
// deliberate semantic difference from the chain engine: chain resizes
// relink the same nodes and never copy them, so a lock-free value CAS
// can never be lost to a resize; the flat engine's COPY-based
// migration (flat_resize.go) duplicates value pointers into new
// groups, and a lock-free store into an already-copied cell would be
// silently lost — a lost update, not a stale read. Riding the stripes
// serializes value publishes with migration and keeps linearizability.
//
// Overflow spill reuses the chain engine's node type, but every
// mutation of a spill chain happens under the stripe (the flat engine
// has no CAS insert fast path), so the chain discipline's CAS
// choreography is unnecessary here: plain publish stores suffice.

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"rphash/internal/obs"
)

// flatGroupCells is the inline cell count per bucket group: eight
// cells, so the tag word is exactly one uint64 and a group's tag scan
// is one load.
const flatGroupCells = 8

const (
	flatLoBits uint64 = 0x0101010101010101
	flatHiBits uint64 = 0x8080808080808080
)

// flatTag derives a cell's 8-bit tag from its hash's top byte, mapped
// away from zero (zero marks an empty cell). The bucket index uses
// the LOW hash bits, so tag and index are independent and a tag match
// is a 255/256 filter within the group.
func flatTag(h uint64) uint64 {
	tg := h >> 56
	if tg == 0 {
		tg = 1
	}
	return tg
}

// flatMatchMask returns a mask with the high bit of every byte lane
// whose tag byte MAY equal tag (the classic SWAR zero-byte scan).
// Borrow propagation across lanes can set spurious high bits, so
// callers must confirm each candidate lane with an exact byte
// compare before touching its cell — a cell mid-publication (tag
// still zero) must never be dereferenced on a false positive.
func flatMatchMask(tags, tag uint64) uint64 {
	x := tags ^ (tag * flatLoBits)
	return (x - flatLoBits) &^ x & flatHiBits
}

// flatCell is one inline element. hash and key are plain fields,
// immutable from tag publication until a grace period after tag
// clearance; val is swapped atomically so readers always observe a
// complete value.
type flatCell[K comparable, V any] struct {
	val  atomic.Pointer[V]
	hash uint64
	key  K
}

// flatGroup is one bucket: the packed tag word, the retiring mask
// (bit i set while cell i awaits its post-grace cleanup), the spill
// chain head, and the inline cells.
type flatGroup[K comparable, V any] struct {
	tags     atomic.Uint64
	retiring atomic.Uint64
	overflow atomic.Pointer[node[K, V]]
	cells    [flatGroupCells]flatCell[K, V]
}

// flatView is one immutable-size group array. The engine swaps whole
// views on resize (flat_resize.go); while a migration is in flight
// prev points at the superseded view and migrated carries one flag
// per migration unit. Readers capture one view pointer per operation
// and route each key through its unit flag.
type flatView[K comparable, V any] struct {
	mask   uint64 // len(groups)-1
	groups []flatGroup[K, V]

	// Migration state; zero/nil on a finished view. A migration unit
	// is a group index under unitMask = min(old, new)-1: growing, unit
	// u covers old group u splitting into new groups u and u+units;
	// shrinking, unit u covers old groups u and u+units merging into
	// new group u. migrated[u] is set (release) only after every
	// element of the unit is copied into this view's groups.
	prev     *flatView[K, V]
	migrated []atomic.Uint32
	unitMask uint64

	// done counts migrated units — flags flipped by the resize pass or
	// by assisting writers alike (each unit flips exactly once: the
	// flip happens under the stripe covering the unit). Introspection
	// only; the routing correctness story never reads it.
	done atomic.Uint64
}

func newFlatView[K comparable, V any](n uint64, prev *flatView[K, V]) *flatView[K, V] {
	v := &flatView[K, V]{mask: n - 1, groups: make([]flatGroup[K, V], n)}
	if prev != nil {
		units := min(n, prev.mask+1)
		v.migrated = make([]atomic.Uint32, units)
		v.unitMask = units - 1
		v.prev = prev
	}
	return v
}

// flatEngine implements the engine interface over flatViews.
type flatEngine[K comparable, V any] struct {
	t    *Table[K, V]
	view atomic.Pointer[flatView[K, V]]
}

func (e *flatEngine[K, V]) name() string { return EngineFlat }

func (e *flatEngine[K, V]) bucketCount() uint64 { return e.view.Load().mask + 1 }

func (e *flatEngine[K, V]) migrationFloor() uint64 {
	if v := e.view.Load(); v.prev != nil {
		return v.unitMask + 1
	}
	return 0
}

// ---------------------------------------------------------------------
// Read side.

// flatReadGroup routes a hash to its authoritative group: during a
// migration, a unit whose flag is still clear is served by the OLD
// view's group (never mutated after the new view published), and a
// set flag routes to the new groups — the copy-based analogue of the
// chain engine's readers routing through the doubled array mid-unzip.
// The flag load is the acquire edge pairing with migrateUnit's
// release store, so a routed reader observes the complete copy.
func flatReadGroup[K comparable, V any](v *flatView[K, V], h uint64) *flatGroup[K, V] {
	if p := v.prev; p != nil && v.migrated[h&v.unitMask].Load() == 0 {
		return &p.groups[h&p.mask]
	}
	return &v.groups[h&v.mask]
}

// lookupHashed is the flat engine's synchronization-free lookup: one
// view load, one tag-word load, SWAR candidate scan, inline cell
// compare, overflow walk only on spill. Caller is inside a read-side
// critical section of t.dom.
func (e *flatEngine[K, V]) lookupHashed(h uint64, k K) (V, bool) {
	g := flatReadGroup(e.view.Load(), h)
	tag := flatTag(h)
	tags := g.tags.Load()
	for m := flatMatchMask(tags, tag); m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m) >> 3
		if byte(tags>>(8*uint(i))) != byte(tag) {
			continue // SWAR borrow artifact; see flatMatchMask
		}
		c := &g.cells[i]
		if c.hash == h && c.key == k {
			if vp := c.val.Load(); vp != nil {
				return *vp, true
			}
		}
	}
	for n := g.overflow.Load(); n != nil; n = n.next.Load() {
		if n.hash == h && n.key == k {
			return *n.val.Load(), true
		}
	}
	var zero V
	return zero, false
}

// ---------------------------------------------------------------------
// Write side. Every mutation holds the stripe covering its hash; the
// helpers below assume that.

// writeGroup returns the current view and the authoritative group for
// h, first migrating h's unit if a copy-based resize is in flight
// (migrate-on-write keeps writer latency bounded by one group copy
// and lets writes land only in the new view, which is what makes old
// groups immutable). The caller holds the stripe covering h, which —
// because the effective stripe mask never exceeds the unit count
// during a migration — also covers the whole unit.
func (e *flatEngine[K, V]) writeGroup(h uint64) *flatGroup[K, V] {
	g, _ := e.writeGroupAssist(h)
	return g
}

// writeGroupAssist is writeGroup plus the flight recorder's path
// signal: assisted reports whether THIS writer migrated the key's
// unit (the migration-assist path class).
func (e *flatEngine[K, V]) writeGroupAssist(h uint64) (g *flatGroup[K, V], assisted bool) {
	v := e.view.Load()
	if v.prev != nil {
		if u := h & v.unitMask; v.migrated[u].Load() == 0 {
			e.migrateUnit(v, u)
			assisted = true
		}
	}
	return &v.groups[h&v.mask], assisted
}

// find locates (h, k) in group g under the stripe: a non-negative
// cell index, or the overflow node, or (-1, nil) for absent.
func (g *flatGroup[K, V]) find(h uint64, k K) (int, *node[K, V]) {
	tag := flatTag(h)
	tags := g.tags.Load()
	for m := flatMatchMask(tags, tag); m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m) >> 3
		if byte(tags>>(8*uint(i))) != byte(tag) {
			continue
		}
		c := &g.cells[i]
		if c.hash == h && c.key == k {
			return i, nil
		}
	}
	for n := g.overflow.Load(); n != nil; n = n.next.Load() {
		if n.hash == h && n.key == k {
			return -1, n
		}
	}
	return -1, nil
}

// putLocked publishes a new element into group g: a free inline cell
// if one exists (tag byte empty AND not retiring — a retiring cell
// may still be dereferenced by pre-grace readers), else a prepend to
// the spill chain. Raw storage only: callers own count/stat updates,
// because migration copies re-publish existing elements through this
// same path without recounting them.
func (e *flatEngine[K, V]) putLocked(g *flatGroup[K, V], h uint64, k K, vp *V) {
	tags := g.tags.Load()
	retiring := g.retiring.Load()
	for i := 0; i < flatGroupCells; i++ {
		if byte(tags>>(8*uint(i))) == 0 && retiring&(1<<uint(i)) == 0 {
			c := &g.cells[i]
			c.hash = h
			c.key = k
			c.val.Store(vp)
			g.tags.Store(tags | flatTag(h)<<(8*uint(i))) // publish
			return
		}
	}
	n := &node[K, V]{hash: h, key: k}
	n.val.Store(vp)
	n.next.Store(g.overflow.Load()) // initialize ...
	g.overflow.Store(n)             // ... then publish
}

// flatRetire is the post-grace cleanup token of one removed element.
// For an inline cell: release the value box and clear the retiring
// bit (the release edge that lets putLocked reuse the cell). For a
// spill node: sever next so a captured node cannot pin the live
// chain.
type flatRetire[K comparable, V any] struct {
	g    *flatGroup[K, V]
	cell int // -1 for an overflow node
	n    *node[K, V]
}

func (r flatRetire[K, V]) retire() {
	if r.cell >= 0 {
		r.g.cells[r.cell].val.Store(nil)
		r.g.retiring.And(^(uint64(1) << uint(r.cell)))
		return
	}
	r.n.next.Store(nil)
}

// removeLocked unpublishes the element at (ci, n) — exactly one of
// cell index or overflow node — from group g and returns its retire
// token, which the caller must pass through dom.Defer (directly or
// batched). Count/stat updates are the caller's, mirroring putLocked.
func (e *flatEngine[K, V]) removeLocked(g *flatGroup[K, V], ci int, n *node[K, V]) flatRetire[K, V] {
	if ci >= 0 {
		g.tags.Store(g.tags.Load() &^ (uint64(0xff) << (8 * uint(ci))))
		g.retiring.Or(uint64(1) << uint(ci))
		return flatRetire[K, V]{g: g, cell: ci}
	}
	if head := g.overflow.Load(); head == n {
		g.overflow.Store(n.next.Load())
	} else {
		for p := head; p != nil; p = p.next.Load() {
			if p.next.Load() == n {
				p.next.Store(n.next.Load())
				break
			}
		}
	}
	return flatRetire[K, V]{cell: -1, n: n}
}

// upsertLocked is the shared set/update storage step: replace in
// place when present, publish when absent. Returns whether a new
// element was inserted (counted here; callers fire resize triggers
// after releasing the stripe).
func (e *flatEngine[K, V]) upsertLocked(g *flatGroup[K, V], h uint64, k K, vp *V) bool {
	if ci, n := g.find(h, k); ci >= 0 {
		g.cells[ci].val.Store(vp)
		return false
	} else if n != nil {
		n.val.Store(vp)
		return false
	}
	e.putLocked(g, h, k, vp)
	e.t.count.Add(1)
	e.t.stats.inserts.Add(1)
	return true
}

func (e *flatEngine[K, V]) setHashed(h uint64, k K, v V) bool {
	t := e.t
	pr := t.opStart(h)
	s := t.lockHash(h)
	g, assisted := e.writeGroupAssist(h)
	inserted := e.upsertLocked(g, h, k, &v)
	spilled := g.overflow.Load() != nil
	s.mu.Unlock()
	if inserted {
		t.maybeAutoResizeBackpressure()
	}
	t.opRecord(pr, h, obs.OpSet, flatOpPath(assisted, spilled), outIf(inserted))
	return inserted
}

func (e *flatEngine[K, V]) swapHashed(h uint64, k K, v V) (old V, replaced bool) {
	t := e.t
	pr := t.opStart(h)
	s := t.lockHash(h)
	g, assisted := e.writeGroupAssist(h)
	if ci, n := g.find(h, k); ci >= 0 {
		old = *g.cells[ci].val.Load()
		g.cells[ci].val.Store(&v)
		spilled := g.overflow.Load() != nil
		s.mu.Unlock()
		t.opRecord(pr, h, obs.OpSwap, flatOpPath(assisted, spilled), obs.OutReplaced)
		return old, true
	} else if n != nil {
		old = *n.val.Load()
		n.val.Store(&v)
		s.mu.Unlock()
		t.opRecord(pr, h, obs.OpSwap, flatOpPath(assisted, true), obs.OutReplaced)
		return old, true
	}
	e.putLocked(g, h, k, &v)
	t.count.Add(1)
	t.stats.inserts.Add(1)
	spilled := g.overflow.Load() != nil
	s.mu.Unlock()
	t.maybeAutoResizeBackpressure()
	t.opRecord(pr, h, obs.OpSwap, flatOpPath(assisted, spilled), obs.OutInserted)
	return old, false
}

func (e *flatEngine[K, V]) insertHashed(h uint64, k K, v V) bool {
	t := e.t
	pr := t.opStart(h)
	s := t.lockHash(h)
	g, assisted := e.writeGroupAssist(h)
	if ci, n := g.find(h, k); ci >= 0 || n != nil {
		spilled := g.overflow.Load() != nil
		s.mu.Unlock()
		t.opRecord(pr, h, obs.OpInsert, flatOpPath(assisted, spilled), obs.OutNoop)
		return false
	}
	e.putLocked(g, h, k, &v)
	t.count.Add(1)
	t.stats.inserts.Add(1)
	spilled := g.overflow.Load() != nil
	s.mu.Unlock()
	t.maybeAutoResizeBackpressure()
	t.opRecord(pr, h, obs.OpInsert, flatOpPath(assisted, spilled), obs.OutInserted)
	return true
}

func (e *flatEngine[K, V]) replaceHashed(h uint64, k K, v V) bool {
	t := e.t
	s := t.lockHash(h)
	defer s.mu.Unlock()
	g := e.writeGroup(h)
	if ci, n := g.find(h, k); ci >= 0 {
		g.cells[ci].val.Store(&v)
		return true
	} else if n != nil {
		n.val.Store(&v)
		return true
	}
	return false
}

func (e *flatEngine[K, V]) updateHashed(h uint64, k K, fn func(cur V, present bool) (V, bool)) (prev V, hadPrev, stored bool) {
	t := e.t
	pr := t.opStart(h)
	s := t.lockHash(h)
	g, assisted := e.writeGroupAssist(h)
	var slot *atomic.Pointer[V]
	if ci, n := g.find(h, k); ci >= 0 {
		slot = &g.cells[ci].val
	} else if n != nil {
		slot = &n.val
	}
	if slot != nil {
		prev = *slot.Load()
		hadPrev = true
	}
	v, store := fn(prev, hadPrev)
	if !store {
		spilled := g.overflow.Load() != nil
		s.mu.Unlock()
		t.opRecord(pr, h, obs.OpUpdate, flatOpPath(assisted, spilled), obs.OutNoop)
		return prev, hadPrev, false
	}
	if slot != nil {
		slot.Store(&v)
		spilled := g.overflow.Load() != nil
		s.mu.Unlock()
		t.opRecord(pr, h, obs.OpUpdate, flatOpPath(assisted, spilled), obs.OutReplaced)
		return prev, hadPrev, true
	}
	e.putLocked(g, h, k, &v)
	t.count.Add(1)
	t.stats.inserts.Add(1)
	spilled := g.overflow.Load() != nil
	s.mu.Unlock()
	t.maybeAutoResizeBackpressure()
	t.opRecord(pr, h, obs.OpUpdate, flatOpPath(assisted, spilled), obs.OutInserted)
	return prev, false, true
}

func (e *flatEngine[K, V]) compareAndDeleteHashed(h uint64, k K, match func(V) bool) (V, bool) {
	t := e.t
	pr := t.opStart(h)
	s := t.lockHash(h)
	g, assisted := e.writeGroupAssist(h)
	ci, n := g.find(h, k)
	if ci < 0 && n == nil {
		spilled := g.overflow.Load() != nil
		s.mu.Unlock()
		var zero V
		t.opRecord(pr, h, obs.OpDelete, flatOpPath(assisted, spilled), obs.OutMiss)
		return zero, false
	}
	var removed V
	if ci >= 0 {
		removed = *g.cells[ci].val.Load()
	} else {
		removed = *n.val.Load()
	}
	if match != nil && !match(removed) {
		spilled := g.overflow.Load() != nil
		s.mu.Unlock()
		var zero V
		t.opRecord(pr, h, obs.OpDelete, flatOpPath(assisted, spilled), obs.OutNoop)
		return zero, false
	}
	rt := e.removeLocked(g, ci, n)
	t.count.Add(-1)
	t.stats.deletes.Add(1)
	spilled := g.overflow.Load() != nil || n != nil
	s.mu.Unlock()
	t.dom.Defer(rt.retire)
	t.maybeAutoResize()
	t.opRecord(pr, h, obs.OpDelete, flatOpPath(assisted, spilled), obs.OutDeleted)
	return removed, true
}

// compareAndSwapValueHashed is the flat engine's value-plane RMW. It
// rides the stripes — see the value-plane note at the top of this
// file — so match runs exactly once, already serialized against
// every other writer on the key.
func (e *flatEngine[K, V]) compareAndSwapValueHashed(h uint64, k K, match func(V) bool, v V) (swapped, present bool) {
	t := e.t
	pr := t.opStart(h)
	s := t.lockHash(h)
	g, assisted := e.writeGroupAssist(h)
	var slot *atomic.Pointer[V]
	if ci, n := g.find(h, k); ci >= 0 {
		slot = &g.cells[ci].val
	} else if n != nil {
		slot = &n.val
	}
	spilled := g.overflow.Load() != nil
	if slot == nil {
		s.mu.Unlock()
		t.opRecord(pr, h, obs.OpValueCAS, flatOpPath(assisted, spilled), obs.OutMiss)
		return false, false
	}
	if match != nil && !match(*slot.Load()) {
		s.mu.Unlock()
		t.opRecord(pr, h, obs.OpValueCAS, flatOpPath(assisted, spilled), obs.OutNoop)
		return false, true
	}
	slot.Store(&v)
	t.stats.valueCASSwaps.Add(1)
	s.mu.Unlock()
	t.opRecord(pr, h, obs.OpValueCAS, flatOpPath(assisted, spilled), obs.OutReplaced)
	return true, true
}

// move renames oldKey to newKey (both absent/present checks and the
// publish-before-unlink order match the chain engine's Move: the
// value is never absent from the table). oldKey != newKey.
func (e *flatEngine[K, V]) move(oldKey, newKey K) bool {
	t := e.t
	oh, nh := t.hash(oldKey), t.hash(newKey)
	s1, s2 := t.lockHash2(oh, nh)
	unlock := func() {
		if s2 != nil {
			s2.mu.Unlock()
		}
		s1.mu.Unlock()
	}
	og := e.writeGroup(oh)
	ng := e.writeGroup(nh)
	oci, on := og.find(oh, oldKey)
	if oci < 0 && on == nil {
		unlock()
		return false
	}
	if ci, n := ng.find(nh, newKey); ci >= 0 || n != nil {
		unlock()
		return false
	}
	var vp *V
	if oci >= 0 {
		vp = og.cells[oci].val.Load()
	} else {
		vp = on.val.Load()
	}
	e.putLocked(ng, nh, newKey, vp) // publish the copy first (shared value box)
	t.stats.moves.Add(1)
	rt := e.removeLocked(og, oci, on)
	unlock()
	t.dom.Defer(rt.retire)
	return true
}

// ---------------------------------------------------------------------
// Batched writes: the same sorted-stripe amortization as the chain
// engine (batchWriter holds one stripe at a time), with migrate-on-
// write per key and — for deletes — one deferred cleanup covering the
// whole batch.

func (e *flatEngine[K, V]) setBatchHashed(hs []uint64, ks []K, vs []V) (inserted int) {
	t := e.t
	sc := t.stripeOrder(hs)
	w := batchWriter[K, V]{t: t}
	for _, packed := range sc.ord {
		i := int(packed & 0xffffffff)
		w.acquire(hs[i])
		g := e.writeGroup(hs[i])
		// Copy before boxing: the box must not alias the caller's
		// slice, which it may reuse after the call.
		v := vs[i]
		if e.upsertLocked(g, hs[i], ks[i], &v) {
			inserted++
		}
	}
	w.release()
	t.batchPool.Put(sc)
	if inserted > 0 {
		t.maybeAutoResizeBackpressure()
	}
	return inserted
}

func (e *flatEngine[K, V]) deleteBatchHashed(hs []uint64, ks []K) (removed int) {
	t := e.t
	sc := t.stripeOrder(hs)
	w := batchWriter[K, V]{t: t}
	var rts []flatRetire[K, V]
	for _, packed := range sc.ord {
		i := int(packed & 0xffffffff)
		w.acquire(hs[i])
		g := e.writeGroup(hs[i])
		ci, n := g.find(hs[i], ks[i])
		if ci < 0 && n == nil {
			continue
		}
		rts = append(rts, e.removeLocked(g, ci, n))
		t.count.Add(-1)
		t.stats.deletes.Add(1)
		removed++
	}
	w.release()
	t.batchPool.Put(sc)
	if len(rts) > 0 {
		t.dom.Defer(func() {
			for _, r := range rts {
				r.retire()
			}
		})
	}
	if removed > 0 {
		t.maybeAutoResize()
	}
	return removed
}

// ---------------------------------------------------------------------
// Traversals.

// rangeGroup visits g's published elements (tag-gated cell reads plus
// the overflow chain) until fn returns false.
func rangeGroup[K comparable, V any](g *flatGroup[K, V], fn func(K, V) bool) bool {
	tags := g.tags.Load()
	for i := 0; i < flatGroupCells; i++ {
		if byte(tags>>(8*uint(i))) == 0 {
			continue
		}
		c := &g.cells[i]
		vp := c.val.Load()
		if vp == nil {
			continue
		}
		if !fn(c.key, *vp) {
			return false
		}
	}
	for n := g.overflow.Load(); n != nil; n = n.next.Load() {
		if !fn(n.key, *n.val.Load()) {
			return false
		}
	}
	return true
}

// rangeUnits reports how many migration units a traversal of v must
// visit: the unit count mid-migration, else the group count.
func rangeUnits[K comparable, V any](v *flatView[K, V]) uint64 {
	if v.prev != nil {
		return v.unitMask + 1
	}
	return v.mask + 1
}

// rangeUnit visits every element of migration unit u through the same
// routing readers use, so each element is visited exactly once per
// unit regardless of migration progress: an unmigrated unit is served
// by its old source group(s), a migrated one by its new destination
// group(s).
func (e *flatEngine[K, V]) rangeUnit(v *flatView[K, V], u uint64, fn func(K, V) bool) bool {
	p := v.prev
	if p == nil {
		return rangeGroup(&v.groups[u], fn)
	}
	span := v.unitMask + 1
	if v.migrated[u].Load() == 0 {
		if p.mask > v.mask { // shrinking: two source groups merge into u
			return rangeGroup(&p.groups[u], fn) && rangeGroup(&p.groups[u+span], fn)
		}
		return rangeGroup(&p.groups[u], fn)
	}
	if v.mask > p.mask { // growing: u split into two destination groups
		return rangeGroup(&v.groups[u], fn) && rangeGroup(&v.groups[u+span], fn)
	}
	return rangeGroup(&v.groups[u], fn)
}

func (e *flatEngine[K, V]) rangeAll(fn func(K, V) bool) {
	e.t.dom.Read(func() {
		v := e.view.Load()
		units := rangeUnits(v)
		for u := uint64(0); u < units; u++ {
			if !e.rangeUnit(v, u, fn) {
				return
			}
		}
	})
}

// rangeChunked mirrors the chain engine's chunked traversal: whole
// migration units are collected per reader section, fn runs outside
// it, and a resize between chunks rescales the unit cursor
// proportionally (same semantics caveat as the chain engine).
func (e *flatEngine[K, V]) rangeChunked(chunk int, fn func(K, V) bool) {
	keys := make([]K, 0, chunk)
	vals := make([]V, 0, chunk)
	var cursor, units uint64
	for {
		keys, vals = keys[:0], vals[:0]
		done := false
		e.t.dom.Read(func() {
			v := e.view.Load()
			n := rangeUnits(v)
			if units != 0 && n != units {
				cursor = (cursor*n + units - 1) / units
			}
			units = n
			collect := func(k K, val V) bool {
				keys = append(keys, k)
				vals = append(vals, val)
				return true
			}
			for cursor < n && len(keys) < chunk {
				e.rangeUnit(v, cursor, collect)
				cursor++
			}
			done = cursor >= n
		})
		for i := range keys {
			if !fn(keys[i], vals[i]) {
				return
			}
		}
		if done {
			return
		}
	}
}

// maxProbe reports the longest per-bucket probe: occupied inline
// cells plus the spill-chain length of the fullest group, the flat
// analogue of the chain engine's MaxChain.
func (e *flatEngine[K, V]) maxProbe() int {
	maxLen := 0
	e.t.dom.Read(func() {
		v := e.view.Load()
		scan := func(g *flatGroup[K, V]) {
			tags := g.tags.Load()
			l := 0
			for i := 0; i < flatGroupCells; i++ {
				if byte(tags>>(8*uint(i))) != 0 {
					l++
				}
			}
			for n := g.overflow.Load(); n != nil; n = n.next.Load() {
				l++
			}
			if l > maxLen {
				maxLen = l
			}
		}
		for i := range v.groups {
			scan(&v.groups[i])
		}
		if p := v.prev; p != nil {
			for i := range p.groups {
				scan(&p.groups[i])
			}
		}
	})
	return maxLen
}

// ---------------------------------------------------------------------
// Structural invariants (tests and -tags=invariants builds).

// checkInvariants validates the flat structure when writers are
// quiesced: tag integrity (every published cell's tag byte matches
// its hash, no cell is simultaneously published and retiring), hash
// integrity, home routing (every element reachable through exactly
// the group the reader routing serves its hash from), spill-chain
// termination, and count integrity across migration units.
func (e *flatEngine[K, V]) checkInvariants() error {
	t := e.t
	var err error
	t.dom.Read(func() {
		v := e.view.Load()
		total := t.count.Load()
		limit := int(total) + flatGroupCells + 8
		seen := 0
		checkGroup := func(view *flatView[K, V], gi uint64) bool {
			g := &view.groups[gi]
			tags := g.tags.Load()
			retiring := g.retiring.Load()
			for i := 0; i < flatGroupCells; i++ {
				b := byte(tags >> (8 * uint(i)))
				if b == 0 {
					continue
				}
				if retiring&(1<<uint(i)) != 0 {
					err = fmt.Errorf("group %d cell %d: published and retiring simultaneously", gi, i)
					return false
				}
				c := &g.cells[i]
				if c.hash != t.hash(c.key) {
					err = fmt.Errorf("group %d cell %d: key %v has stale hash", gi, i, c.key)
					return false
				}
				if byte(flatTag(c.hash)) != b {
					err = fmt.Errorf("group %d cell %d: tag %#x does not match hash tag %#x", gi, i, b, byte(flatTag(c.hash)))
					return false
				}
				if c.hash&view.mask != gi {
					err = fmt.Errorf("group %d cell %d: key %v homed in wrong group", gi, i, c.key)
					return false
				}
				if c.val.Load() == nil {
					err = fmt.Errorf("group %d cell %d: published cell has nil value", gi, i)
					return false
				}
				seen++
			}
			steps := 0
			for n := g.overflow.Load(); n != nil; n = n.next.Load() {
				if steps++; steps > limit {
					err = fmt.Errorf("group %d: overflow walk exceeded %d steps; cycle or stray link", gi, limit)
					return false
				}
				if n.hash != t.hash(n.key) {
					err = fmt.Errorf("group %d overflow: key %v has stale hash", gi, n.key)
					return false
				}
				if n.hash&view.mask != gi {
					err = fmt.Errorf("group %d overflow: key %v homed in wrong group", gi, n.key)
					return false
				}
				seen++
			}
			return true
		}
		units := rangeUnits(v)
		span := v.unitMask + 1
		for u := uint64(0); u < units; u++ {
			p := v.prev
			switch {
			case p == nil:
				if !checkGroup(v, u) {
					return
				}
			case v.migrated[u].Load() == 0:
				if !checkGroup(p, u) {
					return
				}
				if p.mask > v.mask && !checkGroup(p, u+span) {
					return
				}
			default:
				if !checkGroup(v, u) {
					return
				}
				if v.mask > p.mask && !checkGroup(v, u+span) {
					return
				}
			}
		}
		if err == nil && int64(seen) != total {
			err = fmt.Errorf("reachable elements = %d, count = %d", seen, total)
		}
	})
	return err
}

// checkInvariantsLive is the writer-concurrent subset: tag and hash
// integrity of published cells plus spill-chain termination, over
// both views of an in-flight migration. Count integrity is absent
// for the same reason as the chain engine's live check.
func (e *flatEngine[K, V]) checkInvariantsLive() error {
	t := e.t
	var err error
	t.dom.Read(func() {
		v := e.view.Load()
		limit := 2*int(t.count.Load()) + flatGroupCells + 1024
		checkView := func(view *flatView[K, V]) {
			for gi := range view.groups {
				g := &view.groups[gi]
				tags := g.tags.Load()
				for i := 0; i < flatGroupCells; i++ {
					b := byte(tags >> (8 * uint(i)))
					if b == 0 {
						continue
					}
					c := &g.cells[i]
					if c.hash != t.hash(c.key) {
						err = fmt.Errorf("group %d cell %d: key %v has stale hash", gi, i, c.key)
						return
					}
					if byte(flatTag(c.hash)) != b {
						err = fmt.Errorf("group %d cell %d: tag %#x does not match hash tag %#x", gi, i, b, byte(flatTag(c.hash)))
						return
					}
				}
				steps := 0
				for n := g.overflow.Load(); n != nil; n = n.next.Load() {
					if steps++; steps > limit {
						err = fmt.Errorf("group %d: overflow walk exceeded %d steps; cycle or stray link", gi, limit)
						return
					}
					if n.hash != t.hash(n.key) {
						err = fmt.Errorf("group %d overflow: key %v has stale hash", gi, n.key)
						return
					}
				}
			}
		}
		checkView(v)
		if v.prev != nil {
			checkView(v.prev)
		}
	})
	return err
}
