package core

// Copy-based relativistic resize for the flat engine.
//
// The chain engine resizes by relinking the SAME nodes (unzip/zip);
// inline cells cannot be relinked, so the flat engine migrates by
// copying elements into a fresh group array — but with the same
// relativistic structure the paper's unzip has: publish first, route
// readers per-bucket while migration proceeds, and spend exactly one
// grace period per phase rather than one per bucket.
//
// Choreography of one factor-of-two step:
//
//  1. "Publish new view" (all stripes held, resizeEpoch odd): swap in
//     a new flatView whose prev points at the old one and whose
//     migrated flags are all clear. In the same critical section the
//     effective stripe mask is clamped to the migration unit count,
//     so for the whole migration one stripe covers each unit — the
//     old group(s) and new group(s) of a unit never span stripes
//     (the flat analogue of unzip's parent-granularity mask).
//  2. "Wait for readers": one grace period. Every reader now routes
//     through the new view's migrated flags; every writer migrates
//     its unit before mutating it (writeGroup). From here the old
//     view is IMMUTABLE — writes land only in new groups — which is
//     what makes the unmigrated-unit read path safe.
//  3. "Migrate": one pass over the units, batched by stripe exactly
//     like unzip passes (one stripe lock per batch, writers on other
//     stripes undisturbed), fanned out across the table's unzip
//     workers. Each unit copy re-publishes its elements into the new
//     groups, then sets the unit's migrated flag (release). Units
//     already migrated by writers are skipped. Stale reads during
//     the copy are legal: an element lives in old and new groups
//     simultaneously, both copies share one value box, and the
//     routing flag flips atomically — a reader sees exactly one copy,
//     and every mutation (always in the new group, under the unit's
//     stripe) is observed by readers routed there.
//  4. "Wait for readers": one grace period, after which no reader
//     can be walking an old group.
//  5. "Retire" (all stripes held, epoch odd): publish a finished view
//     (prev nil) with the same group array, restore the stripe mask
//     to the new bucket count, and let the GC reclaim the old view.
//
// Grace-period budget: two per step (publish + migration pass),
// matching the chain engine's floor of publish + one batched unzip
// pass. The copy cost is the price of cache-line-contiguous lookups.

import (
	"runtime/trace"
	"sync"
	"sync/atomic"
	"time"

	"rphash/internal/obs"
)

func (e *flatEngine[K, V]) expandStep() { e.migrateStep(true) }
func (e *flatEngine[K, V]) shrinkStep() { e.migrateStep(false) }

// migrateStep performs one factor-of-two flat resize. The caller
// holds resizeMu (so views are finished on entry: prev == nil) and no
// stripes.
func (e *flatEngine[K, V]) migrateStep(grow bool) {
	t := e.t
	start := time.Now()
	t.migrateStartNS.Store(start.UnixNano())
	defer t.migrateStartNS.Store(0)
	ctx, endTask := resizeTraceTask("rphash.flatmigrate")
	defer endTask()
	sa := t.stripes.arr.Load() // stable: retunes serialize on resizeMu
	t.lockAll(sa)
	old := e.view.Load()
	oldSize := old.mask + 1
	if !grow && (oldSize <= t.policy.MinBuckets || oldSize == 1) {
		t.unlockAll(sa)
		return
	}
	// Odd before the new view publishes: checkStripeInvariants and the
	// chain engine's CAS paths treat an odd epoch as "geometry in
	// motion", and the mask clamp below must be atomic with the view
	// swap from any observer's perspective.
	t.resizeEpoch.Add(1)
	var newSize uint64
	if grow {
		newSize = oldSize * 2
		t.obsEvent(obs.EvExpandStart, int64(oldSize), int64(newSize), 0)
	} else {
		newSize = oldSize / 2
		t.obsEvent(obs.EvShrinkStart, int64(oldSize), int64(newSize), 0)
	}
	nv := newFlatView[K, V](newSize, old)
	units := nv.unitMask + 1
	sa.mask.Store(effectiveStripeMask(len(sa.locks), units))
	e.view.Store(nv) // step 1: publish
	t.resizeEpoch.Add(1)
	t.unlockAll(sa)
	if grow {
		t.obsEvent(obs.EvExpandPublish, int64(units), 0, 0)
	}
	publishRegion := trace.StartRegion(ctx, "publish-grace")
	t.syncResize() // step 2: all readers now route via nv
	publishRegion.End()

	// Step 3: the migration pass, batched by stripe. The mask was
	// clamped to the unit count, so stripe s owns units s, s+S, s+2S…
	// — locking s freezes those units entirely (writers, including
	// migrate-on-write, take the same stripe).
	t.unzipBacklog.Store(int64(units))
	stripeMask := sa.mask.Load() // frozen: only resizes change it, and we hold resizeMu
	stripes := stripeMask + 1
	workers := int(t.unzipWorkers.Load())
	if workers < 1 {
		workers = 1
	}
	if uint64(workers) > stripes {
		workers = int(stripes)
	}
	passRegion := trace.StartRegion(ctx, "migrate-pass")
	var copied int64
	if workers > 1 {
		t.stats.unzipParallelPasses.Add(1)
		var done atomic.Int64
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					s := uint64(next.Add(1)) - 1
					if s >= stripes {
						return
					}
					done.Add(int64(e.migrateStripe(nv, sa, s, stripeMask)))
				}
			}()
		}
		wg.Wait()
		copied = done.Load()
	} else {
		for s := uint64(0); s < stripes; s++ {
			copied += int64(e.migrateStripe(nv, sa, s, stripeMask))
		}
	}
	t.unzipBacklog.Store(0)
	// One "pass" in the chain engine's vocabulary: the whole table
	// migrated under a single shared grace period.
	t.obsEvent(obs.EvUnzipPass, 1, copied, int64(workers))
	t.stats.unzipPasses.Add(1)
	t.syncResize() // step 4: no reader can hold an old group
	passRegion.End()

	// Step 5: retire the migration state. A finished view (no prev, no
	// flags) over the same groups makes the read path's fast branch
	// unconditional again, and the stripe mask rises (grow) or is
	// already at (shrink) the new bucket count.
	t.lockAll(sa)
	t.resizeEpoch.Add(1)
	e.view.Store(&flatView[K, V]{mask: nv.mask, groups: nv.groups})
	sa.mask.Store(effectiveStripeMask(len(sa.locks), newSize))
	t.resizeEpoch.Add(1)
	t.unlockAll(sa)
	if grow {
		t.stats.expands.Add(1)
		t.obsEvent(obs.EvExpandDone, 1, time.Since(start).Nanoseconds(), 0)
	} else {
		t.stats.shrinks.Add(1)
		t.obsEvent(obs.EvShrinkDone, time.Since(start).Nanoseconds(), 0, 0)
	}
	t.assertInvariantsLive()
}

// migrateStripe migrates every still-unmigrated unit owned by stripe
// s, holding the stripe for the whole batch. Returns how many units
// this call migrated (units already migrated by writers are skipped;
// they were counted by nobody — the backlog gauge is approximate by
// design, like the chain engine's).
func (e *flatEngine[K, V]) migrateStripe(v *flatView[K, V], sa *stripeArray, s, stripeMask uint64) int {
	lock := &sa.locks[s]
	lock.mu.Lock()
	units := v.unitMask + 1
	migrated := 0
	for u := s; u < units; u += stripeMask + 1 {
		if v.migrated[u].Load() == 0 {
			e.migrateUnit(v, u)
			migrated++
		}
	}
	lock.mu.Unlock()
	e.t.unzipBacklog.Add(-int64(migrated))
	return migrated
}

// migrateUnit copies migration unit u from the old view into the new
// one and publishes the unit's routing flag. The caller holds the
// stripe covering u — which, because the effective mask never exceeds
// the unit count mid-migration, covers the unit's old group(s) and
// new group(s) alike, serializing this copy against every writer and
// every other migrator of the unit.
func (e *flatEngine[K, V]) migrateUnit(v *flatView[K, V], u uint64) {
	old := v.prev
	e.copyGroup(v, &old.groups[u])
	if old.mask > v.mask { // shrinking: the high sibling merges in too
		e.copyGroup(v, &old.groups[u+v.unitMask+1])
	}
	v.migrated[u].Store(1) // release: readers now route to the new groups
	v.done.Add(1)          // introspection only: units migrated so far
}

// copyGroup re-publishes every element of src into its new home
// group. Inline cells keep their value box (one box per element for
// the element's whole life — what makes stale routing linearizable);
// overflow nodes are copied because the chain engine's node-retire
// protocol must not see one node on two chains.
func (e *flatEngine[K, V]) copyGroup(v *flatView[K, V], src *flatGroup[K, V]) {
	tags := src.tags.Load()
	for i := 0; i < flatGroupCells; i++ {
		if byte(tags>>(8*uint(i))) == 0 {
			continue
		}
		c := &src.cells[i]
		e.putLocked(&v.groups[c.hash&v.mask], c.hash, c.key, c.val.Load())
	}
	for n := src.overflow.Load(); n != nil; n = n.next.Load() {
		e.putLocked(&v.groups[n.hash&v.mask], n.hash, n.key, n.val.Load())
	}
}
