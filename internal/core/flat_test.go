package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newFlatT(t testing.TB, opts ...Option) *Table[uint64, int] {
	t.Helper()
	tbl := NewUint64[int](append([]Option{WithEngine(EngineFlat)}, opts...)...)
	t.Cleanup(tbl.Close)
	return tbl
}

func TestFlatEngineName(t *testing.T) {
	if got := newFlatT(t).Engine(); got != EngineFlat {
		t.Fatalf("Engine() = %q, want %q", got, EngineFlat)
	}
	if got := newT(t).Engine(); got != EngineChain {
		t.Fatalf("chain Engine() = %q, want %q", got, EngineChain)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown engine name should panic at construction")
		}
	}()
	NewUint64[int](WithEngine("bogus"))
}

// TestFlatPointOps runs the whole point-write surface against the
// flat engine, including the overflow spill: one group of eight cells
// holding 64 elements exercises every operation on both inline cells
// and spill nodes.
func TestFlatPointOps(t *testing.T) {
	tbl := newFlatT(t, WithInitialBuckets(1), WithPolicy(Policy{MinBuckets: 1}))
	const n = 64
	for i := uint64(0); i < n; i++ {
		if !tbl.Set(i, int(i)) {
			t.Fatalf("Set(%d) did not report insert", i)
		}
	}
	if tbl.Len() != n {
		t.Fatalf("Len = %d, want %d", tbl.Len(), n)
	}
	if tbl.Buckets() != 1 {
		t.Fatalf("Buckets = %d, want 1 (spill must not grow the table)", tbl.Buckets())
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := tbl.Get(i); !ok || v != int(i) {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	if _, ok := tbl.Get(n + 1); ok {
		t.Fatal("Get of absent key succeeded")
	}

	if old, ok := tbl.Swap(3, 300); !ok || old != 3 {
		t.Fatalf("Swap(3) = %d,%v want 3,true", old, ok)
	}
	if _, ok := tbl.Swap(n+5, 1); ok {
		t.Fatal("Swap of absent key reported replacement")
	}
	tbl.Delete(n + 5)
	if tbl.Insert(3, 1) {
		t.Fatal("Insert of present key succeeded")
	}
	if !tbl.Replace(3, 301) {
		t.Fatal("Replace of present key failed")
	}
	if v, _ := tbl.Get(3); v != 301 {
		t.Fatalf("Get(3) = %d, want 301", v)
	}
	if swapped, present := tbl.CompareAndSwapValue(3, func(v int) bool { return v == 301 }, 302); !swapped || !present {
		t.Fatalf("CompareAndSwapValue matched = %v,%v", swapped, present)
	}
	if swapped, present := tbl.CompareAndSwapValue(3, func(v int) bool { return v == 999 }, 0); swapped || !present {
		t.Fatalf("CompareAndSwapValue mismatched = %v,%v", swapped, present)
	}
	if _, _, stored := tbl.Update(3, func(cur int, present bool) (int, bool) {
		if !present || cur != 302 {
			t.Fatalf("Update saw %d,%v", cur, present)
		}
		return 303, true
	}); !stored {
		t.Fatal("Update did not store")
	}
	if !tbl.Move(3, n+100) {
		t.Fatal("Move failed")
	}
	if v, ok := tbl.Get(n + 100); !ok || v != 303 {
		t.Fatalf("moved value = %d,%v", v, ok)
	}
	if tbl.Contains(3) {
		t.Fatal("old key survived Move")
	}
	if v, ok := tbl.CompareAndDelete(n+100, func(v int) bool { return v == 303 }); !ok || v != 303 {
		t.Fatalf("CompareAndDelete = %d,%v", v, ok)
	}
	for i := uint64(0); i < n; i += 2 {
		tbl.Delete(i)
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatalf("invariants after deletes: %v", err)
	}
	// Cell reuse after the deletes' grace periods.
	tbl.Domain().Synchronize()
	for i := uint64(0); i < n; i += 2 {
		tbl.Set(i, int(i)+1)
	}
	for i := uint64(0); i < n; i++ {
		want := int(i)
		if i%2 == 0 {
			want++
		} else if i == 3 {
			continue // moved away and deleted above
		}
		if v, ok := tbl.Get(i); !ok || v != want {
			t.Fatalf("Get(%d) = %d,%v want %d", i, v, ok, want)
		}
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestFlatAgainstReference drives both engines through an identical
// randomized op sequence and cross-checks them against a plain map
// after every step — the engines must be observationally equivalent.
func TestFlatAgainstReference(t *testing.T) {
	flat := newFlatT(t, WithInitialBuckets(4), WithPolicy(Policy{MinBuckets: 4}))
	chain := newT(t, WithInitialBuckets(4))
	ref := make(map[uint64]int)
	rng := rand.New(rand.NewSource(1))
	const keySpace = 512
	for step := 0; step < 20000; step++ {
		k := uint64(rng.Intn(keySpace))
		v := rng.Int()
		switch rng.Intn(6) {
		case 0, 1:
			fIns := flat.Set(k, v)
			cIns := chain.Set(k, v)
			_, had := ref[k]
			if fIns == had || fIns != cIns {
				t.Fatalf("step %d: Set(%d) insert flat=%v chain=%v had=%v", step, k, fIns, cIns, had)
			}
			ref[k] = v
		case 2:
			fOk := flat.Delete(k)
			cOk := chain.Delete(k)
			_, had := ref[k]
			if fOk != had || fOk != cOk {
				t.Fatalf("step %d: Delete(%d) flat=%v chain=%v had=%v", step, k, fOk, cOk, had)
			}
			delete(ref, k)
		case 3:
			fOk := flat.Insert(k, v)
			chain.Insert(k, v)
			if _, had := ref[k]; fOk == had {
				t.Fatalf("step %d: Insert(%d) = %v, had=%v", step, k, fOk, had)
			} else if !had {
				ref[k] = v
			}
		case 4:
			old, fOk := flat.Swap(k, v)
			chain.Swap(k, v)
			if prev, had := ref[k]; fOk != had || (had && old != prev) {
				t.Fatalf("step %d: Swap(%d) = %d,%v want %d,%v", step, k, old, fOk, prev, had)
			}
			ref[k] = v
		case 5:
			fv, fOk := flat.Get(k)
			if rv, had := ref[k]; fOk != had || (had && fv != rv) {
				t.Fatalf("step %d: Get(%d) = %d,%v want %d,%v", step, k, fv, fOk, rv, had)
			}
		}
		if flat.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, ref = %d", step, flat.Len(), len(ref))
		}
	}
	if err := flat.checkInvariants(); err != nil {
		t.Fatalf("flat invariants: %v", err)
	}
	got := 0
	flat.Range(func(k uint64, v int) bool {
		if rv, ok := ref[k]; !ok || rv != v {
			t.Fatalf("Range visited (%d,%d), ref has %d,%v", k, v, rv, ok)
		}
		got++
		return true
	})
	if got != len(ref) {
		t.Fatalf("Range visited %d elements, want %d", got, len(ref))
	}
}

// TestFlatBatchOps exercises the stripe-sorted batch paths, including
// intra-batch duplicates (last write wins) and batched deletes of
// both inline and spilled elements.
func TestFlatBatchOps(t *testing.T) {
	tbl := newFlatT(t, WithInitialBuckets(8), WithPolicy(Policy{MinBuckets: 8}))
	const n = 256
	ks := make([]uint64, 0, n+2)
	vs := make([]int, 0, n+2)
	for i := uint64(0); i < n; i++ {
		ks = append(ks, i)
		vs = append(vs, int(i))
	}
	ks = append(ks, 7, 7) // duplicates: later entries win
	vs = append(vs, 700, 701)
	if ins := tbl.SetBatch(ks, vs); ins != n {
		t.Fatalf("SetBatch inserted %d, want %d", ins, n)
	}
	if v, _ := tbl.Get(7); v != 701 {
		t.Fatalf("duplicate key resolved to %d, want 701 (last write wins)", v)
	}
	outV := make([]int, n)
	outOK := make([]bool, n)
	tbl.GetBatch(ks[:n], outV, outOK)
	for i := uint64(0); i < n; i++ {
		want := int(i)
		if i == 7 {
			want = 701
		}
		if !outOK[i] || outV[i] != want {
			t.Fatalf("GetBatch[%d] = %d,%v want %d", i, outV[i], outOK[i], want)
		}
	}
	if removed := tbl.DeleteBatch(ks[:n/2]); removed != n/2 {
		t.Fatalf("DeleteBatch removed %d, want %d", removed, n/2)
	}
	if tbl.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", tbl.Len(), n/2)
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestFlatResizeCopiesEverything checks the copy-based migration in
// both directions, with invariants validated after every step and
// under mixed inline/spill occupancy.
func TestFlatResizeCopiesEverything(t *testing.T) {
	tbl := newFlatT(t, WithInitialBuckets(4), WithPolicy(Policy{MinBuckets: 4}))
	const n = 1000
	fill(tbl, n)
	for i := 0; i < 6; i++ {
		tbl.ExpandOnce()
		if err := tbl.checkInvariants(); err != nil {
			t.Fatalf("invariants after expand %d: %v", i, err)
		}
	}
	if got := tbl.Buckets(); got != 256 {
		t.Fatalf("Buckets = %d, want 256", got)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := tbl.Get(i); !ok || v != int(i) {
			t.Fatalf("after expands: Get(%d) = %d,%v", i, v, ok)
		}
	}
	for i := 0; i < 6; i++ {
		tbl.ShrinkOnce()
		if err := tbl.checkInvariants(); err != nil {
			t.Fatalf("invariants after shrink %d: %v", i, err)
		}
	}
	if got := tbl.Buckets(); got != 4 {
		t.Fatalf("Buckets = %d, want 4", got)
	}
	tbl.ShrinkOnce() // at the policy floor: must refuse
	if got := tbl.Buckets(); got != 4 {
		t.Fatalf("shrink below MinBuckets: Buckets = %d, want 4", got)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := tbl.Get(i); !ok || v != int(i) {
			t.Fatalf("after shrinks: Get(%d) = %d,%v", i, v, ok)
		}
	}
	if tbl.Len() != n {
		t.Fatalf("Len = %d, want %d", tbl.Len(), n)
	}
}

// TestFlatAutoResizeChurn lets the policy drive growth and shrink of
// a flat table through insert/delete waves.
func TestFlatAutoResizeChurn(t *testing.T) {
	tbl := newFlatT(t, WithInitialBuckets(4),
		WithPolicy(Policy{MaxLoad: 4, MinLoad: 0.5, MinBuckets: 4}))
	const n = 4096
	fill(tbl, n)
	waitFor(t, func() bool { return tbl.Buckets() >= n/8 })
	for i := uint64(0); i < n; i++ {
		tbl.Delete(i)
	}
	waitFor(t, func() bool { return tbl.Buckets() <= 64 })
	if err := tbl.checkInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within deadline")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFlatRangeChunkedDuringResize verifies the unit-cursor rescale:
// a chunked traversal spanning a concurrent doubling still visits
// every stable element at least once.
func TestFlatRangeChunkedDuringResize(t *testing.T) {
	tbl := newFlatT(t, WithInitialBuckets(64), WithPolicy(Policy{MinBuckets: 64}))
	const n = 4096
	fill(tbl, n)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tbl.Resize(1024)
		tbl.Resize(64)
	}()
	seen := make(map[uint64]bool, n)
	for len(seen) < n {
		tbl.RangeChunked(64, func(k uint64, v int) bool {
			seen[k] = true
			return true
		})
	}
	wg.Wait()
}

// TestFlatEngineTortureResizeStripeChurn is the flat engine's -race
// torture test: synchronization-free readers and batch readers assert
// the stable-key invariant (stable keys always present with their
// original values, never-inserted keys always absent) while writers
// churn a disjoint key range, an insert gauntlet proves exactly-one
// winner per contended key, and the table is simultaneously driven
// through copy-based resize toggling and stripe retune churn.
func TestFlatEngineTortureResizeStripeChurn(t *testing.T) {
	tbl := newFlatT(t, WithInitialBuckets(64), WithPolicy(Policy{MinBuckets: 64}))
	const (
		stable  = 1024
		churnLo = uint64(1 << 20)
		churnN  = 512
		gauntN  = 256
	)
	fill(tbl, stable)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Point readers.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := tbl.NewReadHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(stable))
				if v, ok := h.Get(k); !ok || v != int(k) {
					t.Errorf("stable key %d: got %d,%v", k, v, ok)
					return
				}
				if _, ok := h.Get(k + 2*churnLo); ok {
					t.Errorf("never-inserted key %d reported present", k+2*churnLo)
					return
				}
			}
		}(int64(g))
	}

	// Batch reader.
	wg.Add(1)
	go func() {
		defer wg.Done()
		keys := make([]uint64, 128)
		bv := make([]int, len(keys))
		bok := make([]bool, len(keys))
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := range keys {
				keys[i] = uint64((i * 37) % stable)
			}
			tbl.GetBatch(keys, bv, bok)
			for i, k := range keys {
				if !bok[i] || bv[i] != int(k) {
					t.Errorf("GetBatch stable key %d: got %d,%v", k, bv[i], bok[i])
					return
				}
			}
		}
	}()

	// Churn writers on a disjoint range: point and batch sets/deletes.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			ks := make([]uint64, 32)
			vs := make([]int, 32)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if rng.Intn(2) == 0 {
					k := churnLo + uint64(rng.Intn(churnN))
					tbl.Set(k, int(k))
					tbl.Delete(k)
				} else {
					for i := range ks {
						ks[i] = churnLo + uint64(rng.Intn(churnN))
						vs[i] = int(ks[i])
					}
					tbl.SetBatch(ks, vs)
					tbl.DeleteBatch(ks)
				}
			}
		}(int64(100 + g))
	}

	// Insert gauntlet: 4 goroutines race Insert on the same keys;
	// exactly one winner per key must be recorded in the ledger.
	var ledger [gauntN]atomic.Int32
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < gauntN; k++ {
				if tbl.Insert(3*churnLo+uint64(k), id) {
					ledger[k].Add(1)
				}
			}
		}(g)
	}

	// Stripe retune churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sizes := []int{1, 4, 16, 64}
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			tbl.TrySetStripes(sizes[i%len(sizes)])
			i++
		}
	}()

	// Copy-based resize churn, the main event.
	deadline := time.Now().Add(1500 * time.Millisecond)
	cycles := 0
	for time.Now().Before(deadline) {
		tbl.Resize(1024)
		tbl.Resize(64)
		cycles++
	}
	close(stop)
	wg.Wait()
	if cycles < 1 {
		t.Fatalf("resizer completed %d cycles; torture did not exercise migration", cycles)
	}
	for k := 0; k < gauntN; k++ {
		if n := ledger[k].Load(); n != 1 {
			t.Errorf("gauntlet key %d had %d insert winners, want exactly 1", k, n)
		}
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatalf("invariants after torture: %v", err)
	}
	st := tbl.Stats()
	if st.Expands == 0 || st.Shrinks == 0 {
		t.Fatalf("torture saw %d expands / %d shrinks; resize churn did not run", st.Expands, st.Shrinks)
	}
}

// TestFlatStatsMaxChain checks the flat engine's probe-length stat:
// occupied cells plus spill length of the fullest group.
func TestFlatStatsMaxChain(t *testing.T) {
	tbl := newFlatT(t, WithInitialBuckets(1), WithPolicy(Policy{MinBuckets: 1}))
	for i := uint64(0); i < 20; i++ {
		tbl.Set(i, int(i))
	}
	if st := tbl.Stats(); st.MaxChain != 20 {
		t.Fatalf("MaxChain = %d, want 20 (8 cells + 12 spilled)", st.MaxChain)
	}
}
