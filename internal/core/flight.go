package core

// Flight-recorder wiring for the table's write paths.
//
// Sampling decisions and timestamps live OUTSIDE read-side sections
// and stripe critical sections wherever possible: opStart runs before
// the operation touches the table, opRecord after every lock is
// released. The lock-free read path (lookupHashed) is never
// instrumented — the recorder observes writers only, so the paper's
// wait-free readers stay exactly as cheap with the recorder on as
// off.
//
// Cost model: with no observer or no recorder the probe is one or two
// pointer compares and a zero opProbe. With the recorder on, the
// unsampled case adds one per-stripe atomic increment (the sampling
// ticket); only sampled operations (1 in N) pay for two time.Now
// calls and one seqlock slot publish.

import (
	"time"

	"rphash/internal/obs"
)

// opProbe carries one sampled operation's start state from opStart to
// opRecord. The zero value means "not sampled" and makes opRecord a
// single nil compare.
type opProbe struct {
	rec *obs.Recorder
	t0  time.Time
}

// opStart makes the sampling decision for one write operation keyed
// by hash h. Nil-safe at every level: no observer, no recorder, or an
// unsampled ticket all return the zero probe.
func (t *Table[K, V]) opStart(h uint64) opProbe {
	if o := t.obsv; o != nil {
		if r := o.Ops; r != nil && r.Sample(h) {
			return opProbe{rec: r, t0: time.Now()}
		}
	}
	return opProbe{}
}

// opRecord publishes a sampled operation's record. Callers invoke it
// after releasing every lock the operation took, so the recorded
// latency covers the full operation but the recording itself never
// extends a critical section.
func (t *Table[K, V]) opRecord(p opProbe, h uint64, class obs.OpClass, path obs.OpPath, out obs.OpOutcome) {
	if p.rec == nil {
		return
	}
	lat := time.Since(p.t0).Nanoseconds()
	stripe := int(h & t.stripes.arr.Load().mask.Load())
	p.rec.Record(h, class, path, out, t.eng.name() == EngineFlat, t.obsShard, stripe, lat)
}

// flatOpPath classifies a flat-engine write: an operation that first
// migrated its unit is a migration assist; one that walked a group
// whose overflow chain was populated took the spill path; everything
// else is the plain striped path.
func flatOpPath(assisted, spilled bool) obs.OpPath {
	switch {
	case assisted:
		return obs.PathMigrationAssist
	case spilled:
		return obs.PathSpill
	default:
		return obs.PathStriped
	}
}

func outIf(inserted bool) obs.OpOutcome {
	if inserted {
		return obs.OutInserted
	}
	return obs.OutReplaced
}
