package core

import (
	"sync"
	"testing"
	"time"

	"rphash/internal/obs"
)

// recorderTable builds a table with a sample-everything flight
// recorder so path-classification tests see every operation.
func recorderTable(t *testing.T, opts ...Option) (*Table[uint64, int], *obs.Observer) {
	t.Helper()
	o := obs.NewObserver(obs.WithFlightRecorder(1, 1024))
	tbl := New[uint64, int](func(k uint64) uint64 { return k },
		append([]Option{WithObserver(o), WithInitialBuckets(8)}, opts...)...)
	t.Cleanup(tbl.Close)
	return tbl, o
}

func pathCounts(o *obs.Observer) map[obs.OpPath]int {
	m := map[obs.OpPath]int{}
	for _, r := range o.Ops.Snapshot() {
		m[r.Path]++
	}
	return m
}

// TestFlightPathsChain drives each chain write path and asserts the
// recorder classifies it: CAS insert for a fresh key, hint-validated
// replace for an upsert on an existing key, value CAS for
// CompareAndSwapValue, striped for deletes.
func TestFlightPathsChain(t *testing.T) {
	tbl, o := recorderTable(t)
	if tbl.Set(1, 10) != true { // fresh key: CAS insert fast path
		t.Fatal("first Set should insert")
	}
	if tbl.Set(1, 11) != false { // existing key: hint replace
		t.Fatal("second Set should replace")
	}
	if sw, _ := tbl.CompareAndSwapValue(1, nil, 12); !sw {
		t.Fatal("value CAS failed")
	}
	if !tbl.Delete(1) {
		t.Fatal("delete missed")
	}
	got := pathCounts(o)
	for _, want := range []obs.OpPath{obs.PathCASInsert, obs.PathHintReplace, obs.PathValueCAS, obs.PathStriped} {
		if got[want] == 0 {
			t.Fatalf("no %v record; paths: %v", want, got)
		}
	}
	for _, r := range o.Ops.Snapshot() {
		if r.Flat {
			t.Fatalf("chain-engine record flagged flat: %+v", r)
		}
		if r.LatencyNS < 0 {
			t.Fatalf("negative latency: %+v", r)
		}
	}
}

// TestFlightPathsFlat drives the flat engine's striped and spill
// paths: nine same-bucket keys overflow the eight inline cells, so
// the ninth op's group has a populated spill chain.
func TestFlightPathsFlat(t *testing.T) {
	o := obs.NewObserver(obs.WithFlightRecorder(1, 1024))
	// Constant low bits pin every key to bucket 0; distinct high bits
	// keep the tags distinct.
	tbl := New[uint64, int](func(k uint64) uint64 { return k << 56 },
		WithObserver(o), WithInitialBuckets(8), WithEngine(EngineFlat),
		WithPolicy(Policy{})) // no auto-resize: keep the spill in place
	defer tbl.Close()
	for k := uint64(1); k <= flatGroupCells+1; k++ {
		tbl.Set(k, int(k))
	}
	tbl.Set(flatGroupCells+1, 99) // replace on a spilled group
	got := pathCounts(o)
	if got[obs.PathStriped] == 0 || got[obs.PathSpill] == 0 {
		t.Fatalf("want striped and spill paths, got %v", got)
	}
	for _, r := range o.Ops.Snapshot() {
		if !r.Flat {
			t.Fatalf("flat-engine record not flagged flat: %+v", r)
		}
	}
}

// TestFlatIntrospection asserts the sampled occupancy histogram and
// spill telemetry reach Stats on the flat engine, and that migration
// progress reads zero once a resize completes.
func TestFlatIntrospection(t *testing.T) {
	tbl := New[uint64, int](func(k uint64) uint64 { return k<<56 | k>>8 },
		WithInitialBuckets(8), WithEngine(EngineFlat), WithPolicy(Policy{}))
	defer tbl.Close()
	// Bucket 0 gets 9 elements (spill of 1); buckets get low-bit keys.
	for k := uint64(1); k <= flatGroupCells+1; k++ {
		tbl.Set(k, int(k)) // hash low bits 0 for k<256: all bucket 0
	}
	s := tbl.Stats()
	if s.FlatSampledGroups != 8 {
		t.Fatalf("FlatSampledGroups = %d, want 8", s.FlatSampledGroups)
	}
	if s.FlatOccupancy[flatGroupCells] != 1 || s.FlatOccupancy[0] != 7 {
		t.Fatalf("occupancy histogram: %v", s.FlatOccupancy)
	}
	if s.FlatSpilledGroups != 1 || s.FlatSpillEntries != 1 || s.FlatMaxSpill != 1 {
		t.Fatalf("spill telemetry: groups=%d entries=%d max=%d",
			s.FlatSpilledGroups, s.FlatSpillEntries, s.FlatMaxSpill)
	}
	if r := s.FlatSpillRatio(); r != 0.125 {
		t.Fatalf("FlatSpillRatio = %v, want 0.125", r)
	}
	tbl.ExpandOnce()
	s = tbl.Stats()
	if s.MigrationUnits != 0 || s.MigrationDone != 0 || s.MigrationRate != 0 {
		t.Fatalf("finished resize still reports migration: %+v", s)
	}
	if s.UnzipBacklog != 0 {
		t.Fatalf("UnzipBacklog = %d after resize", s.UnzipBacklog)
	}
}

// TestChainMigrationProgress observes unzip progress mid-expansion
// through the test hook: with the resize paused between passes,
// MigrationUnits must be the parent count and progress in [0,1].
func TestChainMigrationProgress(t *testing.T) {
	tbl := New[uint64, int](func(k uint64) uint64 { return k }, WithInitialBuckets(8))
	defer tbl.Close()
	for k := uint64(0); k < 128; k++ {
		tbl.Set(k, int(k))
	}
	var sawUnits, sawRate bool
	tbl.testHookAfterUnzipPass = func(int) {
		s := tbl.CounterStats()
		if s.MigrationUnits == 8 {
			sawUnits = true
			if p := s.MigrationProgress(); p < 0 || p > 1 {
				t.Errorf("MigrationProgress = %v", p)
			}
			if s.MigrationRate > 0 {
				sawRate = true
			}
		}
	}
	tbl.ExpandOnce()
	if !sawUnits {
		t.Fatal("no mid-unzip CounterStats observed MigrationUnits")
	}
	_ = sawRate // rate can legitimately be 0 on a too-fast pass
	if s := tbl.CounterStats(); s.MigrationUnits != 0 {
		t.Fatalf("post-resize MigrationUnits = %d", s.MigrationUnits)
	}
}

// TestFlatMigrationDoneCount checks the flat view's done counter
// covers every unit exactly once across resize passes and assisting
// writers.
func TestFlatMigrationDoneCount(t *testing.T) {
	tbl := New[uint64, int](func(k uint64) uint64 { return k<<56 | k },
		WithInitialBuckets(64), WithEngine(EngineFlat), WithPolicy(Policy{}))
	defer tbl.Close()
	for k := uint64(0); k < 256; k++ {
		tbl.Set(k, int(k))
	}
	tbl.ExpandOnce()
	tbl.ShrinkOnce()
	if got, want := tbl.Len(), 256; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
}

// TestFlightRecorderTorture is the -race guard for the recorder's
// core wiring: Set/Get/Delete churn on both engines, concurrent
// resizes, and snapshot polls must neither race nor decode torn
// records.
func TestFlightRecorderTorture(t *testing.T) {
	for _, eng := range []string{EngineChain, EngineFlat} {
		t.Run(eng, func(t *testing.T) {
			o := obs.NewObserver(obs.WithFlightRecorder(4, 256))
			tbl := New[uint64, int](func(k uint64) uint64 { return k * 0x9e3779b97f4a7c15 },
				WithObserver(o), WithInitialBuckets(64), WithEngine(eng))
			defer tbl.Close()
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := uint64(0); ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						k := i & 1023
						switch i % 4 {
						case 0, 1:
							tbl.Set(k, int(i))
						case 2:
							tbl.Get(k)
						case 3:
							tbl.Delete(k)
						}
					}
				}(g)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 4; i++ {
					tbl.ExpandOnce()
					tbl.ShrinkOnce()
				}
			}()
			deadline := time.Now().Add(10 * time.Second)
			for i := 0; i < 50 || o.Ops.Sampled() == 0; i++ {
				if time.Now().After(deadline) {
					t.Fatal("recorder sampled nothing under churn")
				}
				for _, r := range o.Ops.Snapshot() {
					if r.Class >= obs.NumOpClasses || r.Path >= obs.NumOpPaths {
						t.Errorf("torn record: %+v", r)
					}
				}
				tbl.CounterStats() // introspection races the churn too
			}
			close(stop)
			wg.Wait()
		})
	}
}
