package core

import "fmt"

// checkInvariants validates the table's structural invariants. It is
// test infrastructure, callable at any point — including between
// unzip passes via testHookAfterUnzipPass — because the invariants it
// checks are exactly the ones the algorithm must preserve at every
// intermediate step:
//
//  1. Home reachability: every element is reachable by walking the
//     chain of its home bucket in the current array (the paper's
//     consistency definition: buckets are supersets, never subsets).
//  2. No chain cycles (walks terminate within the element count).
//  3. Hash integrity: node.hash equals hash(node.key).
//  4. Count integrity: the number of distinct home-reachable elements
//     equals Len().
//
// It runs inside one read-side critical section.
func (t *Table[K, V]) checkInvariants() error {
	var err error
	t.dom.Read(func() {
		ht := t.ht.Load()
		total := t.count.Load()
		limit := int(total) + len(ht.slot) + 8 // cycle bound per walk

		seen := make(map[*node[K, V]]struct{}, total)
		for i := range ht.slot {
			steps := 0
			for n := ht.slot[i].Load(); n != nil; n = n.next.Load() {
				if steps++; steps > limit {
					err = fmt.Errorf("bucket %d: walk exceeded %d steps; cycle or stray link", i, limit)
					return
				}
				if n.hash != t.hash(n.key) {
					err = fmt.Errorf("bucket %d: node key %v has stale hash", i, n.key)
					return
				}
				if n.hash&ht.mask == uint64(i) {
					seen[n] = struct{}{}
				}
				// Foreign nodes are allowed mid-unzip; their own home
				// walk accounts for them.
			}
		}
		if int64(len(seen)) != total {
			err = fmt.Errorf("home-reachable elements = %d, count = %d", len(seen), total)
			return
		}
		// Every seen node must be found by an ordinary lookup too
		// (reachability implies the lookup predicate matches).
		for n := range seen {
			found := false
			for m := ht.bucketFor(n.hash).Load(); m != nil; m = m.next.Load() {
				if m == n {
					found = true
					break
				}
			}
			if !found {
				err = fmt.Errorf("node %v not reachable from home bucket", n.key)
				return
			}
		}
	})
	return err
}
