package core

import (
	"fmt"
	"runtime"
)

// checkInvariants validates the table's structural invariants. It is
// test infrastructure, callable at any point — including between
// unzip passes via testHookAfterUnzipPass — because the invariants it
// checks are exactly the ones the algorithm must preserve at every
// intermediate step:
//
//  1. Home reachability: every element is reachable by walking the
//     chain of its home bucket in the current array (the paper's
//     consistency definition: buckets are supersets, never subsets).
//  2. No chain cycles (walks terminate within the element count).
//  3. Hash integrity: node.hash equals hash(node.key).
//  4. Count integrity: the number of distinct home-reachable elements
//     equals Len().
//  5. Stripe coverage (the PR 4 locking invariant, which runtime
//     stripe retuning must also preserve): the effective stripe
//     count never exceeds the bucket count or the physical stripe
//     count, and mid-unzip it never exceeds the parent bucket count
//     — so every chain, including zipped mid-resize chains spanning
//     a parent and both children, is covered by exactly one stripe.
//
// It runs inside one read-side critical section. The structural
// checks (1–4) are engine-specific and dispatch through the engine
// seam; stripe coverage (5) is shared.
func (t *Table[K, V]) checkInvariants() error {
	if err := t.checkStripeInvariants(); err != nil {
		return err
	}
	return t.eng.checkInvariants()
}

// chainCheckInvariants is the chain engine's structural validation.
func (t *Table[K, V]) chainCheckInvariants() error {
	var err error
	t.dom.Read(func() {
		ht := t.ht.Load()
		total := t.count.Load()
		limit := int(total) + len(ht.slot) + 8 // cycle bound per walk

		seen := make(map[*node[K, V]]struct{}, total)
		for i := range ht.slot {
			steps := 0
			for n := ht.slot[i].Load(); n != nil; n = n.next.Load() {
				if steps++; steps > limit {
					err = fmt.Errorf("bucket %d: walk exceeded %d steps; cycle or stray link", i, limit)
					return
				}
				if n.hash != t.hash(n.key) {
					err = fmt.Errorf("bucket %d: node key %v has stale hash", i, n.key)
					return
				}
				if n.hash&ht.mask == uint64(i) {
					seen[n] = struct{}{}
				}
				// Foreign nodes are allowed mid-unzip; their own home
				// walk accounts for them.
			}
		}
		if int64(len(seen)) != total {
			err = fmt.Errorf("home-reachable elements = %d, count = %d", len(seen), total)
			return
		}
		// Every seen node must be found by an ordinary lookup too
		// (reachability implies the lookup predicate matches).
		for n := range seen {
			found := false
			for m := ht.bucketFor(n.hash).Load(); m != nil; m = m.next.Load() {
				if m == n {
					found = true
					break
				}
			}
			if !found {
				err = fmt.Errorf("node %v not reachable from home bucket", n.key)
				return
			}
		}
	})
	return err
}

// checkInvariantsLive is the subset of checkInvariants that stays
// sound while writers mutate the table concurrently: stripe coverage
// (invariant 5), chain termination (2), and hash integrity (3).
// Count integrity (4) is deliberately absent — t.count and the chain
// contents are updated by different instructions, so any live
// snapshot can legitimately disagree by in-flight mutations — and
// home reachability (1) is covered per-node by the home-bucket walk
// itself. The cycle bound is padded because count races with the
// walk.
//
// It is the -tags=invariants production check (assertInvariantsLive);
// tests that quiesce writers should call checkInvariants instead for
// the stronger count and reachability checks.
func (t *Table[K, V]) checkInvariantsLive() error {
	if err := t.checkStripeInvariants(); err != nil {
		return err
	}
	return t.eng.checkInvariantsLive()
}

// chainCheckInvariantsLive is the chain engine's writer-concurrent
// subset: chain termination and hash integrity.
func (t *Table[K, V]) chainCheckInvariantsLive() error {
	var err error
	t.dom.Read(func() {
		ht := t.ht.Load()
		limit := 2*int(t.count.Load()) + len(ht.slot) + 1024
		for i := range ht.slot {
			steps := 0
			for n := ht.slot[i].Load(); n != nil; n = n.next.Load() {
				if steps++; steps > limit {
					err = fmt.Errorf("bucket %d: walk exceeded %d steps; cycle or stray link", i, limit)
					return
				}
				if n.hash != t.hash(n.key) {
					err = fmt.Errorf("bucket %d: node key %v has stale hash", i, n.key)
					return
				}
			}
		}
	})
	return err
}

// assertInvariantsLive panics on a live invariant violation. It is
// compiled to a no-op unless built with -tags=invariants; resize
// steps call it after publishing their new state, so every expansion
// and shrink is self-checking in an invariants build while the
// default build pays only a constant-false branch.
func (t *Table[K, V]) assertInvariantsLive() {
	if !invariantsEnabled {
		return
	}
	if err := t.checkInvariantsLive(); err != nil {
		panic("core: invariant violation after resize step: " + err.Error())
	}
}

// checkStripeInvariants validates invariant 5 in isolation (it needs
// no read-side section — every field is a single atomic load). The
// checks are meaningful at any instant, including mid-unzip via
// testHookAfterUnzipPass and immediately after a SetStripes retune:
// these are exactly the bounds that keep every chain covered by one
// stripe.
//
// Snapshot consistency for a checker racing background maintenance:
// every mutation of the stripe array, the effective mask, the bucket
// storage, or the migration floor happens inside an all-stripes
// critical section, and every such section brackets itself with the
// resizeEpoch seqlock (odd on entry, even on exit). So the whole
// read is retried until the epoch is even and unchanged across it —
// then the fields read belong to one consistent published state,
// exactly the state writers see after their own post-lock re-check.
func (t *Table[K, V]) checkStripeInvariants() error {
	for {
		e1 := t.resizeEpoch.Load()
		if e1&1 != 0 {
			runtime.Gosched() // all-stripes section in progress; its window is microseconds
			continue
		}
		a := t.stripes.arr.Load()
		eff := a.mask.Load() + 1
		phys := uint64(len(a.locks))
		buckets := t.eng.bucketCount()
		floor := t.eng.migrationFloor()
		if t.resizeEpoch.Load() != e1 {
			continue // an all-stripes section overlapped the snapshot
		}
		if eff > phys {
			return fmt.Errorf("effective stripes %d > physical stripes %d", eff, phys)
		}
		if eff > buckets {
			return fmt.Errorf("effective stripes %d > buckets %d: chains would mix stripes", eff, buckets)
		}
		if floor != 0 && eff > floor {
			return fmt.Errorf("effective stripes %d > migration granularity %d mid-resize: a migrating bucket group would span stripes", eff, floor)
		}
		return nil
	}
}
