//go:build !invariants

package core

// invariantsEnabled is off in normal builds; see invariant_enabled.go.
const invariantsEnabled = false
