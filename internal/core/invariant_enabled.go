//go:build invariants

package core

// invariantsEnabled gates live structural checking at the end of
// every resize step (see assertInvariantsLive). Build or test with
// -tags=invariants to turn it on outside the test suite's explicit
// checkInvariants calls; the default build compiles the checks out
// entirely.
const invariantsEnabled = true
