package core

import "rphash/internal/rcu"

// Get returns the value for key k. It is completely
// synchronization-free on the read side: no locks, no atomic
// read-modify-writes, no retries — a pooled delimited reader plus a
// chain walk. Safe to call concurrently with any writer operation,
// including resizes.
//
// Hot loops should prefer a ReadHandle, which avoids the pooled
// reader round-trip.
func (t *Table[K, V]) Get(k K) (V, bool) {
	var v V
	var ok bool
	t.dom.Read(func() {
		v, ok = t.lookup(k)
	})
	return v, ok
}

// Contains reports whether k is present.
func (t *Table[K, V]) Contains(k K) bool {
	_, ok := t.Get(k)
	return ok
}

// lookup walks the chain for k. The caller must be inside a read-side
// critical section of t's domain.
func (t *Table[K, V]) lookup(k K) (V, bool) {
	return t.lookupHashed(t.hash(k), k)
}

// LookupInReader performs a raw lookup for k with its table hash h
// already computed. The calling goroutine must be inside a read-side
// critical section of the table's Domain, and h must equal the
// table's hash of k. It is the building block for multi-table
// front-ends (internal/shard) whose read handles span several tables
// sharing one domain: the front-end hashes once, routes, and looks up
// without a second reader registration or hash computation.
func (t *Table[K, V]) LookupInReader(h uint64, k K) (V, bool) {
	return t.lookupHashed(h, k)
}

// lookupHashed is lookup with the hash precomputed, dispatched to the
// table's engine.
func (t *Table[K, V]) lookupHashed(h uint64, k K) (V, bool) {
	return t.eng.lookupHashed(h, k)
}

// chainLookupHashed is the chain engine's lookup.
func (t *Table[K, V]) chainLookupHashed(h uint64, k K) (V, bool) {
	ht := t.ht.Load()
	for n := ht.bucketFor(h).Load(); n != nil; n = n.next.Load() {
		// During resizes chains are imprecise supersets: foreign
		// nodes (same parent bucket, different child) may appear.
		// Comparing hash then key filters them, exactly as the paper
		// prescribes.
		if n.hash == h && n.key == k {
			return *n.val.Load(), true
		}
	}
	var zero V
	return zero, false
}

// Range calls fn for every element until fn returns false. The whole
// traversal — fn included — runs inside one read-side critical
// section, so it holds up grace periods for its full duration: keep
// fn short and non-blocking, or use RangeChunked, which collects
// bounded chunks per section and runs fn outside them.
//
// Semantics under concurrency: an element present for the entire
// traversal is visited at least once; elements inserted or deleted
// concurrently may or may not appear. While an expansion is
// unzipping, chains transiently contain foreign nodes; Range filters
// them by home bucket so no element is visited twice (a key being
// Moved is two distinct elements for this purpose and may appear
// under both keys).
func (t *Table[K, V]) Range(fn func(K, V) bool) {
	t.eng.rangeAll(fn)
}

// chainRangeAll is the chain engine's full traversal.
func (t *Table[K, V]) chainRangeAll(fn func(K, V) bool) {
	t.dom.Read(func() {
		ht := t.ht.Load()
		for i := range ht.slot {
			for n := ht.slot[i].Load(); n != nil; n = n.next.Load() {
				if n.hash&ht.mask != uint64(i) {
					continue // foreign node mid-unzip; its home bucket reports it
				}
				if !fn(n.key, *n.val.Load()) {
					return
				}
			}
		}
	})
}

// Keys returns a snapshot of the keys (order unspecified).
func (t *Table[K, V]) Keys() []K {
	out := make([]K, 0, t.Len())
	t.Range(func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// ReadHandle is a per-goroutine lookup handle backed by a registered
// reader. It is not safe for concurrent use; create one per reading
// goroutine and Close it when done.
type ReadHandle[K comparable, V any] struct {
	t *Table[K, V]
	r *rcu.Reader
}

// NewReadHandle registers a reader for lookup hot paths.
func (t *Table[K, V]) NewReadHandle() *ReadHandle[K, V] {
	return &ReadHandle[K, V]{t: t, r: t.dom.Register()}
}

// Get is the hot-path lookup: two reader-local atomic stores around a
// chain walk.
func (h *ReadHandle[K, V]) Get(k K) (V, bool) {
	h.r.Lock()
	v, ok := h.t.lookup(k)
	h.r.Unlock()
	return v, ok
}

// Contains reports presence via the handle's reader.
func (h *ReadHandle[K, V]) Contains(k K) bool {
	_, ok := h.Get(k)
	return ok
}

// Close deregisters the handle's reader.
func (h *ReadHandle[K, V]) Close() { h.r.Close() }
