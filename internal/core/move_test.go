package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMoveBasic(t *testing.T) {
	tbl := newT(t)
	tbl.Set(1, 100)
	if !tbl.Move(1, 2) {
		t.Fatal("Move(1,2) failed")
	}
	if _, ok := tbl.Get(1); ok {
		t.Fatal("old key still present after Move")
	}
	if v, ok := tbl.Get(2); !ok || v != 100 {
		t.Fatalf("new key = %d,%v want 100,true", v, ok)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tbl.Len())
	}
}

func TestMoveFailureModes(t *testing.T) {
	tbl := newT(t)
	tbl.Set(1, 100)
	tbl.Set(2, 200)
	if tbl.Move(3, 4) {
		t.Fatal("Move of absent key succeeded")
	}
	if tbl.Move(1, 2) {
		t.Fatal("Move onto existing key succeeded")
	}
	if v, _ := tbl.Get(2); v != 200 {
		t.Fatal("failed Move corrupted target")
	}
	if !tbl.Move(1, 1) {
		t.Fatal("self-Move of present key should succeed")
	}
	if tbl.Move(99, 99) {
		t.Fatal("self-Move of absent key should fail")
	}
}

// TestMoveNeverAbsent checks the paper's atomic-move property as it
// is actually guaranteed: for a single Move(A,B), a reader that
// misses A and then probes B must find the value — the destination
// copy is published before the source is unlinked, and with
// sequentially consistent atomics a reader that observed the unlink
// must subsequently observe the earlier publish. Each round uses a
// fresh key pair and performs exactly one move, so the pair of probes
// cannot straddle two moves (sequential probes are not a snapshot;
// see Move's doc comment).
func TestMoveNeverAbsent(t *testing.T) {
	tbl := newT(t, WithInitialBuckets(8))
	const val = 777
	const rounds = 3000

	var round atomic.Int64 // current round index; -1 = done
	keyA := func(r int64) uint64 { return uint64(2 * r) }
	keyB := func(r int64) uint64 { return uint64(2*r + 1) }

	tbl.Set(keyA(0), val)

	stop := make(chan struct{})
	var absent atomic.Int64
	var wrong atomic.Int64
	var probes atomic.Int64
	// probedRound is the highest round with at least one completed
	// probe; the writer gates each round's advance on it so rounds
	// cannot outrun the readers and starve the sample count to zero.
	var probedRound atomic.Int64
	probedRound.Store(-1)
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := tbl.NewReadHandle()
			defer h.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r := round.Load()
				vA, okA := h.Get(keyA(r))
				vB, okB := h.Get(keyB(r))
				if round.Load() != r {
					continue // round rolled over mid-probe; not a valid sample
				}
				probes.Add(1)
				for {
					cur := probedRound.Load()
					if cur >= r || probedRound.CompareAndSwap(cur, r) {
						break
					}
				}
				if !okA && !okB {
					absent.Add(1)
				}
				if (okA && vA != val) || (okB && vB != val) {
					wrong.Add(1)
				}
			}
		}()
	}

	deadline := time.Now().Add(800 * time.Millisecond)
	r := int64(0)
	for ; r < rounds && time.Now().Before(deadline); r++ {
		if !tbl.Move(keyA(r), keyB(r)) {
			t.Fatalf("round %d: Move A->B failed", r)
		}
		// Set up the next round before advancing the round index so
		// readers never probe an un-populated pair.
		tbl.Set(keyA(r+1), val)
		// Wait for at least one completed probe of this round before
		// advancing, so the writer cannot roll rounds faster than the
		// readers sample them and `probes > 0` holds by construction.
		// (The wait ignores the deadline until the first probe lands;
		// the readers only stop after this loop exits, so it always
		// terminates.)
		for probedRound.Load() < r {
			if probes.Load() > 0 && !time.Now().Before(deadline) {
				break
			}
			runtime.Gosched()
		}
		round.Store(r + 1)
	}
	close(stop)
	wg.Wait()

	if n := absent.Load(); n != 0 {
		t.Fatalf("value observed absent under both keys %d times across %d rounds (%d probes)",
			n, r, probes.Load())
	}
	if n := wrong.Load(); n != 0 {
		t.Fatalf("wrong value observed %d times", n)
	}
	if probes.Load() == 0 {
		t.Fatal("no valid probe samples collected")
	}
}

// TestMoveAcrossResize: moves interleaved with resizes stay correct.
func TestMoveDuringResizeChurn(t *testing.T) {
	tbl := newT(t, WithInitialBuckets(16))
	const n = 200
	for i := uint64(0); i < n; i++ {
		tbl.Set(i, int(i))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tbl.ExpandOnce()
			tbl.ShrinkOnce()
		}
	}()
	for i := uint64(0); i < n; i++ {
		if !tbl.Move(i, i+10000) {
			t.Errorf("Move(%d) failed", i)
		}
	}
	close(stop)
	wg.Wait()
	for i := uint64(0); i < n; i++ {
		if v, ok := tbl.Get(i + 10000); !ok || v != int(i) {
			t.Fatalf("moved key %d = %d,%v", i+10000, v, ok)
		}
		if _, ok := tbl.Get(i); ok {
			t.Fatalf("source key %d still present", i)
		}
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}
