package core

import (
	"testing"
	"time"

	"rphash/internal/obs"
)

// idHash builds a table with the identity hash so tests can place
// keys in exact buckets.
func idHash(k uint64) uint64 { return k }

// TestResizeEventTimeline drives one deterministic expansion and one
// shrink and asserts the observer captured the complete lifecycle in
// order: start -> publish -> grace -> (pass, grace)* -> done.
func TestResizeEventTimeline(t *testing.T) {
	o := obs.NewObserver()
	tb := New[uint64, uint64](idHash,
		WithObserver(o), WithShardID(3), WithInitialBuckets(4), WithStripes(4))
	defer tb.Close()

	// Keys 0 and 4 share bucket 0 (mask 3); after doubling they split
	// into children 0 and 4, guaranteeing a zipped chain and at least
	// one unzip cut. Likewise 1 and 5.
	for _, k := range []uint64{0, 4, 1, 5} {
		tb.Set(k, k)
	}

	// The existing unzip hook fires after each pass's grace period:
	// assert the pass's events are already in the ring at that point.
	tb.testHookAfterUnzipPass = func(pass int) {
		evs := o.Events.Snapshot()
		var passes, graces int
		for _, e := range evs {
			switch e.Type {
			case obs.EvUnzipPass:
				passes++
			case obs.EvGraceWait:
				graces++
			}
		}
		if passes < pass {
			t.Errorf("hook at pass %d: only %d EvUnzipPass events captured", pass, passes)
		}
		if graces < pass+1 { // publish grace + one per pass
			t.Errorf("hook at pass %d: only %d EvGraceWait events captured", pass, graces)
		}
	}
	tb.ExpandOnce()
	tb.testHookAfterUnzipPass = nil
	tb.ShrinkOnce()

	evs := o.Events.Snapshot()
	if len(evs) == 0 {
		t.Fatal("no events captured")
	}
	for _, e := range evs {
		if e.Shard != 3 {
			t.Fatalf("event %v has shard %d, want 3", e.Type, e.Shard)
		}
	}

	// Reduce to the type sequence and check the full lifecycle shape.
	types := make([]obs.EventType, len(evs))
	for i, e := range evs {
		types[i] = e.Type
	}
	i := 0
	expect := func(want obs.EventType) obs.Event {
		t.Helper()
		if i >= len(evs) {
			t.Fatalf("event stream ended early: want %v at %d (stream %v)", want, i, types)
		}
		if types[i] != want {
			t.Fatalf("event %d = %v, want %v (stream %v)", i, types[i], want, types)
		}
		i++
		return evs[i-1]
	}

	if ev := expect(obs.EvExpandStart); ev.A != 4 || ev.B != 8 {
		t.Fatalf("expand start payload: %+v", ev)
	}
	if ev := expect(obs.EvExpandPublish); ev.A < 1 {
		t.Fatalf("expand publish should report active parents: %+v", ev)
	}
	expect(obs.EvGraceWait) // publish grace period
	passes := 0
	for types[i] == obs.EvUnzipPass {
		ev := expect(obs.EvUnzipPass)
		passes++
		if ev.A != int64(passes) || ev.B < 1 {
			t.Fatalf("unzip pass payload: %+v (want pass=%d cuts>=1)", ev, passes)
		}
		expect(obs.EvGraceWait)
	}
	if passes < 1 {
		t.Fatalf("expected at least one unzip pass (stream %v)", types)
	}
	done := expect(obs.EvExpandDone)
	if done.A != int64(passes) {
		t.Fatalf("expand done reports %d passes, want %d", done.A, passes)
	}
	if st := tb.Stats(); st.UnzipPasses != uint64(passes) {
		t.Fatalf("Stats().UnzipPasses = %d, ring saw %d", st.UnzipPasses, passes)
	}

	if ev := expect(obs.EvShrinkStart); ev.A != 8 || ev.B != 4 {
		t.Fatalf("shrink start payload: %+v", ev)
	}
	expect(obs.EvGraceWait)
	expect(obs.EvShrinkDone)
	if i != len(evs) {
		t.Fatalf("unexpected trailing events: %v", types[i:])
	}

	// The domain-level grace-wait histogram saw every one of those
	// grace periods.
	if gw := o.GraceWait.Snapshot(); gw.Count < uint64(passes+2) {
		t.Fatalf("GraceWait histogram count = %d, want >= %d", gw.Count, passes+2)
	}
}

// TestStripeWaitRecorded blocks a writer on a held stripe and asserts
// the contended wait lands in the StripeWait histogram.
func TestStripeWaitRecorded(t *testing.T) {
	o := obs.NewObserver()
	tb := New[uint64, uint64](idHash,
		WithObserver(o), WithInitialBuckets(8), WithStripes(8))
	defer tb.Close()
	tb.Set(1, 1)

	s := tb.lockHash(1) // hold key 1's stripe
	done := make(chan struct{})
	go func() {
		tb.Set(1, 2) // must wait for the stripe
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("writer did not block on the held stripe")
	default:
	}
	s.mu.Unlock()
	<-done

	sw := o.StripeWait.Snapshot()
	if sw.Count < 1 {
		t.Fatalf("StripeWait count = %d, want >= 1", sw.Count)
	}
	if sw.MaxNS < uint64((10 * time.Millisecond).Nanoseconds()) {
		t.Fatalf("StripeWait max = %dns, want >= 10ms of blocking", sw.MaxNS)
	}
}

// TestRetuneAndWorkerEvents asserts stripe retunes and unzip fan-out
// changes land in the ring.
func TestRetuneAndWorkerEvents(t *testing.T) {
	o := obs.NewObserver()
	tb := NewUint64[uint64](WithObserver(o), WithInitialBuckets(64), WithStripes(4))
	defer tb.Close()
	if !tb.SetStripes(8) {
		t.Fatal("SetStripes(8) reported no change")
	}
	tb.SetUnzipWorkers(4)
	var sawRetune, sawWorkers bool
	for _, e := range o.Events.Snapshot() {
		switch e.Type {
		case obs.EvStripeRetune:
			if e.A != 4 || e.B != 8 {
				t.Fatalf("retune payload: %+v", e)
			}
			sawRetune = true
		case obs.EvUnzipWorkers:
			if e.A != 1 || e.B != 4 {
				t.Fatalf("unzip workers payload: %+v", e)
			}
			sawWorkers = true
		}
	}
	if !sawRetune || !sawWorkers {
		t.Fatalf("missing events: retune=%v workers=%v", sawRetune, sawWorkers)
	}
}

// benchObsSet measures the upsert path with and without an observer
// installed; the pair is the ≤2% overhead acceptance guard for
// observability-off instrumentation.
func benchObsSet(b *testing.B, o *obs.Observer) {
	opts := []Option{WithInitialBuckets(1 << 12)}
	if o != nil {
		opts = append(opts, WithObserver(o))
	}
	tb := NewUint64[uint64](opts...)
	defer tb.Close()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			tb.Set(i&4095, i)
			i++
		}
	})
}

func BenchmarkObsOverheadSetOff(b *testing.B) { benchObsSet(b, nil) }

func BenchmarkObsOverheadSetOn(b *testing.B) { benchObsSet(b, obs.NewObserver()) }

// BenchmarkObsOverheadSetRecorder adds the flight recorder at the
// default 1-in-1024 sampling: the delta over SetOn is the recorder's
// cost (one sampling ticket per write; a seqlock publish on the
// sampled 1/1024).
func BenchmarkObsOverheadSetRecorder(b *testing.B) {
	benchObsSet(b, obs.NewObserver(obs.WithFlightRecorder(0, 0)))
}
