package core

import (
	"rphash/internal/hashfn"
	"rphash/internal/obs"
)

// growBackpressureFactor: when the load factor exceeds this multiple
// of the grow watermark, writers stop outrunning the resizer and
// help instead (see maybeAutoResize). 2 means a table is allowed to
// overshoot its target load by 2x while a background expansion is in
// flight before writers throttle.
const growBackpressureFactor = 2

// maybeAutoResize checks the load factor against the policy
// watermarks after a mutation and, if crossed, starts a background
// resize. At most one auto-resize runs at a time per direction
// trigger; resizes serialize with each other on resizeMu and
// coordinate with writers through the stripes.
//
// This variant never resizes synchronously — everything it starts
// runs on a fresh goroutine — so it is the one delete paths call:
// a delete can only lower the load factor, and deleting callers may
// hold their own locks across the call (cache eviction holds its
// evictMu around CompareAndDelete), which must therefore never wait
// for a grace period. Insert paths, which can drive the load factor
// up, call maybeAutoResizeBackpressure instead. Keeping the two as
// separate functions (rather than a flag) lets rplint/gracewait
// prove the delete path cannot reach Synchronize.
func (t *Table[K, V]) maybeAutoResize() {
	p := t.policy
	if p.MaxLoad <= 0 && p.MinLoad <= 0 {
		return
	}
	count := float64(t.count.Load())
	nbuckets := float64(t.eng.bucketCount())

	if p.MaxLoad > 0 && count > p.MaxLoad*nbuckets {
		if t.grow.pending.CompareAndSwap(false, true) {
			t.obsEvent(obs.EvAutoGrow, int64(count), int64(nbuckets), 0)
			go func() {
				t.autoResizeTarget()
				t.stats.autoGrows.Add(1)
				t.grow.pending.Store(false)
				// Writes that crossed the watermark while we resized
				// saw pending=true and skipped re-triggering; if the
				// table outgrew our (point-in-time) target during the
				// resize, nothing else will start the next one. Re-check
				// now that pending is clear, so the trigger never gets
				// lost between a finishing resize and a quiescent
				// writer population. (This goroutine holds no locks, so
				// the backpressure variant is safe here and preserves
				// the synchronous gap-closing the re-check exists for.)
				t.maybeAutoResizeBackpressure()
			}()
		}
		return
	}
	if p.MinLoad > 0 && nbuckets > float64(p.MinBuckets) && count < p.MinLoad*nbuckets {
		if t.shrink.pending.CompareAndSwap(false, true) {
			t.obsEvent(obs.EvAutoShrink, int64(count), int64(nbuckets), 0)
			go func() {
				t.autoResizeTarget()
				t.stats.autoShrinks.Add(1)
				t.shrink.pending.Store(false)
				t.maybeAutoResizeBackpressure() // see the grow path: close the skipped-trigger window
			}()
		}
	}
}

// maybeAutoResizeBackpressure is maybeAutoResize for insert paths:
// the same background triggers, plus the synchronous throttle.
//
// Backpressure: striped writers no longer block for the duration of
// a resize the way the old table-wide mutex forced them to, so a
// saturating writer could outrun a background expansion
// indefinitely — chains lengthen, each doubling needs more unzip
// passes, and the table spirals away from its target load. If the
// load factor exceeds growBackpressureFactor times the watermark
// while an expansion is already in flight, the writer that observes
// it performs the resize synchronously: it blocks on resizeMu behind
// the in-flight expansion (the actual throttle) and then closes
// whatever gap remains itself. Writers below the threshold are never
// slowed. Callers must hold no locks: the synchronous path waits for
// grace periods inside Resize.
func (t *Table[K, V]) maybeAutoResizeBackpressure() {
	p := t.policy
	if p.MaxLoad > 0 {
		count := float64(t.count.Load())
		nbuckets := float64(t.eng.bucketCount())
		if count > growBackpressureFactor*p.MaxLoad*nbuckets && t.grow.pending.Load() {
			t.autoResizeTarget()
			t.stats.autoGrows.Add(1)
			return
		}
	}
	t.maybeAutoResize()
}

// autoResizeTarget resizes toward a mid-band load factor so small
// oscillations around a watermark do not thrash.
func (t *Table[K, V]) autoResizeTarget() {
	p := t.policy
	count := uint64(t.count.Load())
	if count == 0 {
		t.Resize(p.MinBuckets)
		return
	}
	// Aim for the geometric middle of the band, defaulting to 1.0
	// element/bucket when only one watermark is set.
	target := 1.0
	switch {
	case p.MaxLoad > 0 && p.MinLoad > 0:
		target = p.MaxLoad / 2
	case p.MaxLoad > 0:
		target = p.MaxLoad / 2
	case p.MinLoad > 0:
		target = p.MinLoad * 2
	}
	want := hashfn.NextPowerOfTwo(uint64(float64(count)/target + 1))
	t.Resize(want)
}
