package core

import (
	"testing"
	"time"
)

// waitBuckets polls until the table reaches want buckets or times out.
func waitBuckets(t *testing.T, tbl *Table[uint64, int], cond func(int) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond(tbl.Buckets()) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("auto-resize did not reach target; buckets=%d len=%d", tbl.Buckets(), tbl.Len())
}

// waitAutoIdle waits for any background auto-resize to finish so the
// test can close the table safely.
func waitAutoIdle(tbl *Table[uint64, int]) {
	for tbl.grow.pending.Load() || tbl.shrink.pending.Load() {
		time.Sleep(time.Millisecond)
	}
}

func TestAutoExpand(t *testing.T) {
	tbl := NewUint64[int](WithInitialBuckets(8),
		WithPolicy(Policy{MaxLoad: 2, MinBuckets: 8}))
	defer tbl.Close()
	defer waitAutoIdle(tbl)

	for i := uint64(0); i < 256; i++ {
		tbl.Set(i, int(i))
	}
	waitBuckets(t, tbl, func(b int) bool { return b >= 128 })
	for i := uint64(0); i < 256; i++ {
		if _, ok := tbl.Get(i); !ok {
			t.Fatalf("key %d lost during auto-expansion", i)
		}
	}
	if tbl.Stats().AutoGrows == 0 {
		t.Fatal("AutoGrows counter did not advance")
	}
}

func TestAutoShrink(t *testing.T) {
	tbl := NewUint64[int](WithInitialBuckets(1024),
		WithPolicy(Policy{MinLoad: 0.25, MinBuckets: 16}))
	defer tbl.Close()
	defer waitAutoIdle(tbl)

	for i := uint64(0); i < 64; i++ {
		tbl.Set(i, int(i))
	}
	for i := uint64(0); i < 60; i++ {
		tbl.Delete(i)
	}
	waitBuckets(t, tbl, func(b int) bool { return b <= 64 })
	if got := tbl.Buckets(); got < 16 {
		t.Fatalf("shrank below MinBuckets: %d", got)
	}
	for i := uint64(60); i < 64; i++ {
		if _, ok := tbl.Get(i); !ok {
			t.Fatalf("key %d lost during auto-shrink", i)
		}
	}
}

func TestNoAutoResizeWithoutPolicy(t *testing.T) {
	tbl := newT(t, WithInitialBuckets(8))
	for i := uint64(0); i < 10000; i++ {
		tbl.Set(i, int(i))
	}
	time.Sleep(20 * time.Millisecond)
	if got := tbl.Buckets(); got != 8 {
		t.Fatalf("table auto-resized without a policy: buckets=%d", got)
	}
}

func TestDefaultPolicySane(t *testing.T) {
	p := DefaultPolicy()
	if p.MaxLoad <= p.MinLoad || p.MinBuckets == 0 {
		t.Fatalf("DefaultPolicy inconsistent: %+v", p)
	}
}

func TestAutoResizeUnderChurn(t *testing.T) {
	tbl := NewUint64[int](WithInitialBuckets(16),
		WithPolicy(Policy{MaxLoad: 4, MinLoad: 0.1, MinBuckets: 16}))
	defer tbl.Close()
	defer waitAutoIdle(tbl)

	// Grow phase.
	for i := uint64(0); i < 5000; i++ {
		tbl.Set(i, int(i))
	}
	waitBuckets(t, tbl, func(b int) bool { return b >= 1024 })
	// Shrink phase.
	for i := uint64(0); i < 4990; i++ {
		tbl.Delete(i)
	}
	waitBuckets(t, tbl, func(b int) bool { return b <= 256 })
	for i := uint64(4990); i < 5000; i++ {
		if _, ok := tbl.Get(i); !ok {
			t.Fatalf("survivor key %d lost", i)
		}
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}
