package core

import "rphash/internal/rcu"

// QSBRHandle is a per-goroutine lookup handle using the domain's
// quiescent-state-based reader flavor: lookups themselves execute
// zero read-side synchronization (plain pointer-chase loads), and the
// handle announces a quiescent state every quiescePeriod lookups.
//
// This is the cost model the paper's kernel-module microbenchmark
// enjoys (kernel RCU's read lock is free; context switches are the
// quiescent states). The price is grace-period latency: a writer's
// wait-for-readers cannot complete until every QSBR handle has passed
// a quiescent point, so an idle handle must call Quiesce or Close.
// Not safe for concurrent use; one per goroutine.
type QSBRHandle[K comparable, V any] struct {
	t   *Table[K, V]
	r   *rcu.QSBRReader
	ops int
	// period is how many lookups run between quiescent-state
	// announcements.
	period int
}

// defaultQuiescePeriod balances read-side cost (amortized to ~zero)
// against grace-period latency (a few microseconds of lookups).
const defaultQuiescePeriod = 64

// NewQSBRHandle registers a quiescent-state-based reader for lookup
// hot paths. Close it when the goroutine stops reading.
func (t *Table[K, V]) NewQSBRHandle() *QSBRHandle[K, V] {
	return &QSBRHandle[K, V]{t: t, r: t.dom.RegisterQSBR(), period: defaultQuiescePeriod}
}

// Get looks up k with no read-side synchronization: a pure pointer
// walk, like a kernel-RCU reader. Every 16th lookup peeks at the
// domain's waiter flag (a read-mostly shared line) and quiesces
// eagerly if a grace period is stalled on us; unconditionally every
// period lookups otherwise. Writer stalls are thus bounded by ~16
// lookup times while the reader stays active.
func (h *QSBRHandle[K, V]) Get(k K) (V, bool) {
	v, ok := h.t.lookup(k)
	h.ops++
	if h.ops&15 == 0 && (h.ops >= h.period || h.t.dom.GPWaiting()) {
		h.ops = 0
		h.r.Quiesce()
	}
	return v, ok
}

// Quiesce announces a quiescent state immediately (e.g. before the
// goroutine blocks elsewhere).
func (h *QSBRHandle[K, V]) Quiesce() {
	h.ops = 0
	h.r.Quiesce()
}

// Close deregisters the reader; writers stop waiting for it.
func (h *QSBRHandle[K, V]) Close() { h.r.Close() }
