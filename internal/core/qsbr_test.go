package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestQSBRHandleBasic(t *testing.T) {
	tbl := newT(t)
	tbl.Set(5, 50)
	h := tbl.NewQSBRHandle()
	defer h.Close()
	if v, ok := h.Get(5); !ok || v != 50 {
		t.Fatalf("QSBR Get = %d,%v", v, ok)
	}
	if _, ok := h.Get(6); ok {
		t.Fatal("QSBR Get found absent key")
	}
}

// TestQSBRHandleDoesNotStallWriters: the handle quiesces every
// `period` lookups, so a busy QSBR reader must not block resizes.
func TestQSBRHandleDoesNotStallWriters(t *testing.T) {
	tbl := newT(t, WithInitialBuckets(64))
	fill(tbl, 512)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := tbl.NewQSBRHandle()
		defer h.Close()
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			h.Get(i % 512)
		}
	}()

	done := make(chan struct{})
	go func() {
		tbl.Resize(1024)
		tbl.Resize(64)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("resize stalled behind a busy QSBR reader")
	}
	close(stop)
	wg.Wait()
}

// TestQSBRHandleCorrectDuringResize mirrors the torture test with the
// zero-synchronization read path.
func TestQSBRHandleCorrectDuringResize(t *testing.T) {
	tbl := newT(t, WithInitialBuckets(64))
	const stable = 1024
	fill(tbl, stable)

	stop := make(chan struct{})
	var misses atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			h := tbl.NewQSBRHandle()
			defer h.Close()
			k := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				k = (k*6364136223846793005 + 1442695040888963407)
				if v, ok := h.Get(k % stable); !ok || v != int(k%stable) {
					misses.Add(1)
				}
			}
		}(uint64(g + 1))
	}
	deadline := time.Now().Add(1 * time.Second)
	for time.Now().Before(deadline) {
		tbl.Resize(1024)
		tbl.Resize(64)
	}
	close(stop)
	wg.Wait()
	if n := misses.Load(); n != 0 {
		t.Fatalf("%d QSBR lookups missed stable keys during resizing", n)
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestQSBRExplicitQuiesce: an idle handle stalls writers until it
// quiesces explicitly.
func TestQSBRExplicitQuiesce(t *testing.T) {
	tbl := newT(t)
	tbl.Set(1, 1)
	h := tbl.NewQSBRHandle()
	defer h.Close()
	h.Get(1) // inside a critical span now (period not yet reached)

	done := make(chan struct{})
	go func() {
		tbl.Domain().Synchronize()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("grace period completed with a non-quiescent QSBR handle")
	case <-time.After(50 * time.Millisecond):
	}
	h.Quiesce()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("grace period never completed after Quiesce")
	}
}
