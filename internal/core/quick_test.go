package core

import (
	"testing"
	"testing/quick"
)

// TestQuickModelEquivalence drives the table with random operation
// sequences — including resizes at arbitrary points — and checks that
// it behaves exactly like a map[uint64]int.
func TestQuickModelEquivalence(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint16
		Val  int32
	}
	check := func(ops []op) bool {
		tbl := NewUint64[int](WithInitialBuckets(4))
		defer tbl.Close()
		model := map[uint64]int{}
		for _, o := range ops {
			k := uint64(o.Key % 512)
			v := int(o.Val)
			switch o.Kind % 8 {
			case 0, 1: // Set (weighted)
				_, existed := model[k]
				inserted := tbl.Set(k, v)
				if inserted == existed {
					return false
				}
				model[k] = v
			case 2: // Insert
				_, existed := model[k]
				if tbl.Insert(k, v) == existed {
					return false
				}
				if !existed {
					model[k] = v
				}
			case 3: // Replace
				_, existed := model[k]
				if tbl.Replace(k, v) != existed {
					return false
				}
				if existed {
					model[k] = v
				}
			case 4: // Delete
				_, existed := model[k]
				if tbl.Delete(k) != existed {
					return false
				}
				delete(model, k)
			case 5: // Get
				wantV, want := model[k]
				gotV, got := tbl.Get(k)
				if got != want || (got && gotV != wantV) {
					return false
				}
			case 6: // Expand
				tbl.ExpandOnce()
			case 7: // Shrink
				tbl.ShrinkOnce()
			}
		}
		if tbl.Len() != len(model) {
			return false
		}
		for k, want := range model {
			if got, ok := tbl.Get(k); !ok || got != want {
				return false
			}
		}
		// Range agreement, too.
		seen := map[uint64]int{}
		tbl.Range(func(k uint64, v int) bool { seen[k] = v; return true })
		if len(seen) != len(model) {
			return false
		}
		for k, v := range model {
			if seen[k] != v {
				return false
			}
		}
		return tbl.checkInvariants() == nil
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickMoveModel verifies Move against the model: rename-if-
// absent-target semantics.
func TestQuickMoveModel(t *testing.T) {
	type op struct {
		From, To uint8
		Seed     int16
	}
	check := func(ops []op) bool {
		tbl := NewUint64[int](WithInitialBuckets(8))
		defer tbl.Close()
		model := map[uint64]int{}
		for i, o := range ops {
			from, to := uint64(o.From%64), uint64(o.To%64)
			if i%3 == 0 { // keep populating
				tbl.Set(from, int(o.Seed))
				model[from] = int(o.Seed)
			}
			_, hasFrom := model[from]
			_, hasTo := model[to]
			want := hasFrom && (!hasTo || from == to)
			if got := tbl.Move(from, to); got != want {
				return false
			}
			if want && from != to {
				model[to] = model[from]
				delete(model, from)
			}
		}
		if tbl.Len() != len(model) {
			return false
		}
		for k, v := range model {
			if got, ok := tbl.Get(k); !ok || got != v {
				return false
			}
		}
		return tbl.checkInvariants() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickResizeSequence: any sequence of power-of-two targets must
// leave contents intact and land on the rounded target.
func TestQuickResizeSequence(t *testing.T) {
	check := func(targets []uint16, n uint8) bool {
		tbl := NewUint64[int](WithInitialBuckets(2))
		defer tbl.Close()
		keys := uint64(n)%200 + 10
		for i := uint64(0); i < keys; i++ {
			tbl.Set(i, int(i))
		}
		for _, raw := range targets {
			target := uint64(raw)%4096 + 1
			tbl.Resize(target)
			if tbl.Len() != int(keys) {
				return false
			}
		}
		for i := uint64(0); i < keys; i++ {
			if v, ok := tbl.Get(i); !ok || v != int(i) {
				return false
			}
		}
		return tbl.checkInvariants() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
