package core

import (
	"fmt"

	"rphash/internal/hashfn"
)

// Resize grows or shrinks the table to n buckets (rounded up to a
// power of two, floored at the policy minimum). It proceeds in
// factor-of-two steps, each a complete zip or unzip with its own
// grace periods, so lookups remain synchronization-free and correct
// throughout. Resize serializes with all other writers.
func (t *Table[K, V]) Resize(n uint64) {
	n = hashfn.NextPowerOfTwo(max(n, t.policy.MinBuckets))
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		cur := t.ht.Load().size()
		switch {
		case cur < n:
			t.expandLocked()
		case cur > n:
			t.shrinkLocked()
		default:
			return
		}
	}
}

// shrinkLocked halves the bucket count: the paper's "zip". Steps
// (slide titles in quotes):
//
//  1. "Initialize new buckets": each new bucket j adopts old chain j.
//  2. "Link old chains": the tail of old chain j is linked to the
//     head of old chain j+m (published store). Readers still on the
//     old array see bucket j grow a foreign suffix — a harmless
//     superset. Readers of old bucket j+m are untouched.
//  3. "Publish new buckets": swap in the half-size array.
//  4. "Wait for readers": after one grace period no reader can hold
//     the old array.
//  5. "Reclaim": the old array is garbage; Go's GC collects it.
func (t *Table[K, V]) shrinkLocked() {
	old := t.ht.Load()
	oldSize := old.size()
	if oldSize <= t.policy.MinBuckets || oldSize == 1 {
		return
	}
	newSize := oldSize / 2
	nb := newBuckets[K, V](newSize)

	for j := uint64(0); j < newSize; j++ {
		low := old.slot[j].Load()
		high := old.slot[j+newSize].Load()
		if low == nil {
			nb.slot[j].Store(high)
			continue
		}
		nb.slot[j].Store(low)
		if high == nil {
			continue
		}
		tail := low
		for next := tail.next.Load(); next != nil; next = tail.next.Load() {
			tail = next
		}
		tail.next.Store(high) // link: old-array readers see a superset
	}

	t.ht.Store(nb)      // publish
	t.dom.Synchronize() // wait for readers; old array now unreachable
	t.stats.shrinks.Add(1)
}

// expandLocked doubles the bucket count: the paper's "unzip".
//
//  1. "Initialize new buckets": child buckets b and b+m point at the
//     first node of parent chain b that belongs to them. Chains stay
//     interleaved ("zipped"); each child head is a superset of the
//     child bucket.
//  2. "Publish new buckets", then "Wait for readers": after one grace
//     period every reader indexes the new, doubled array.
//  3. "Unzip one step" / "Wait for readers", repeated: each pass
//     makes at most one cut per parent chain — redirecting one
//     pointer to skip a run of nodes that belong to the sibling
//     child — then waits a grace period before the next pass. The
//     grace period guarantees no reader is positioned inside a run
//     that the next cut would detach from its traversal.
func (t *Table[K, V]) expandLocked() {
	old := t.ht.Load()
	oldSize := old.size()
	newSize := oldSize * 2
	nb := newBuckets[K, V](newSize)

	// Step 1: point each child bucket into the parent chain.
	for i := uint64(0); i < oldSize; i++ {
		var lowSet, highSet bool
		for n := old.slot[i].Load(); n != nil && !(lowSet && highSet); n = n.next.Load() {
			child := n.hash & nb.mask
			if child == i && !lowSet {
				nb.slot[i].Store(n)
				lowSet = true
			} else if child == i+oldSize && !highSet {
				nb.slot[i+oldSize].Store(n)
				highSet = true
			}
		}
	}

	// Step 2: publish and wait. After this grace period no reader
	// walks a chain via the old array's (coarser) mask.
	t.ht.Store(nb)
	t.dom.Synchronize()

	// Step 3: unzip passes. Cuts on different parent chains are
	// independent, so each pass batches one cut per parent and the
	// batch shares a single grace period — the paper's batching.
	// (With WithUnzipGracePerCut — ablation only — each cut pays its
	// own grace period, quantifying what batching buys.)
	for pass := 1; ; pass++ {
		cuts := 0
		for i := uint64(0); i < oldSize; i++ {
			c := t.unzipStep(nb, i, oldSize)
			cuts += c
			if c > 0 && t.unzipPerCutGrace {
				t.dom.Synchronize()
			}
		}
		if cuts == 0 {
			break
		}
		if !t.unzipPerCutGrace {
			t.dom.Synchronize()
		}
		t.stats.unzipPasses.Add(1)
		t.stats.unzipCuts.Add(uint64(cuts))
		if t.testHookAfterUnzipPass != nil {
			t.testHookAfterUnzipPass(pass)
		}
	}
	t.stats.expands.Add(1)
}

// unzipStep performs at most one unzip cut for the chain pair that
// parent bucket `parent` split into (children a = parent and
// b = parent+oldSize). It returns the number of cuts made (0 or 1).
//
// The cut point is re-derived from the bucket heads each pass, which
// makes every pass self-validating:
//
//   - Find s, the first node reachable from BOTH child heads (the
//     chains are suffix-sharing, so this is the classic
//     align-lengths-then-lockstep walk).
//   - s belongs to child `owner`. The *other* child's chain reaches s
//     through its predecessor p. Readers of `owner` still need s's
//     run; readers of `other` do not.
//   - Let r be the last node of the owner-run starting at s. Cut by
//     publishing p.next = r.next, detaching the run from `other`'s
//     traversal only.
//
// Safety: p is in `other`'s exclusive prefix, so owner-readers never
// pass through p — the cut is invisible to them. Other-readers that
// entered before the cut may already be inside the s..r run; they
// continue through it into nodes they still need. The caller's grace
// period between passes guarantees that by the time the *next* cut
// redirects a pointer inside this run, those readers are gone.
func (t *Table[K, V]) unzipStep(nb *buckets[K, V], parent, oldSize uint64) int {
	a, b := parent, parent+oldSize
	headA := nb.slot[a].Load()
	headB := nb.slot[b].Load()
	if headA == nil || headB == nil {
		return 0 // one child empty: nothing shared
	}

	lenA, lenB := chainLen(headA), chainLen(headB)
	pA, pB := headA, headB
	var prevA, prevB *node[K, V]
	for ; lenA > lenB; lenA-- {
		prevA, pA = pA, pA.next.Load()
	}
	for ; lenB > lenA; lenB-- {
		prevB, pB = pB, pB.next.Load()
	}
	for pA != pB {
		prevA, pA = pA, pA.next.Load()
		prevB, pB = pB, pB.next.Load()
	}
	s := pA
	if s == nil {
		return 0 // chains disjoint: fully unzipped
	}

	owner := s.hash & nb.mask
	// The cut happens on the chain that does NOT own s.
	var prev *node[K, V]
	var headSlot uint64
	if owner == a {
		prev, headSlot = prevB, b
	} else {
		prev, headSlot = prevA, a
	}

	// r = last node of the run of owner-nodes starting at s.
	r := s
	for {
		next := r.next.Load()
		if next == nil || next.hash&nb.mask != owner {
			break
		}
		r = next
	}
	after := r.next.Load()
	if prev == nil {
		// Cannot occur while heads are initialized to own-bucket
		// nodes, but handle it so the step stays self-contained.
		nb.slot[headSlot].Store(after)
	} else {
		prev.next.Store(after)
	}
	return 1
}

func chainLen[K comparable, V any](n *node[K, V]) int {
	l := 0
	for ; n != nil; n = n.next.Load() {
		l++
	}
	return l
}

// ExpandOnce doubles the table once (exported for tests and the
// benchmark driver's precise 8k<->16k toggling).
func (t *Table[K, V]) ExpandOnce() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expandLocked()
}

// ShrinkOnce halves the table once (no-op at the policy floor).
func (t *Table[K, V]) ShrinkOnce() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.shrinkLocked()
}

// String describes the table shape for debugging.
func (t *Table[K, V]) String() string {
	return fmt.Sprintf("core.Table{len=%d buckets=%d}", t.Len(), t.Buckets())
}
