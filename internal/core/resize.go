package core

import (
	"context"
	"fmt"
	"runtime/trace"
	"sync"
	"sync/atomic"
	"time"

	"rphash/internal/hashfn"
	"rphash/internal/obs"
)

// Resize grows or shrinks the table to n buckets (rounded up to a
// power of two, floored at the policy minimum). It proceeds in
// factor-of-two steps, each a complete zip or unzip with its own
// grace periods, so lookups remain synchronization-free and correct
// throughout. Resizes serialize with each other on resizeMu; they
// coordinate with writers through the stripes:
//
//   - Array construction and publication hold EVERY stripe — a brief
//     O(buckets) window during which no writer can observe a
//     half-built array or insert into a chain being captured.
//   - Grace-period waits hold NO stripes, so writers flow freely
//     while readers drain. This is where resizes spend nearly all
//     their time, and it is the window the old table-wide mutex used
//     to block writers for.
//   - Unzip migration batches hold exactly one stripe each (all the
//     parent chains mapped to that stripe), so writers to the other
//     stripes proceed in parallel with the migration.
func (t *Table[K, V]) Resize(n uint64) {
	n = hashfn.NextPowerOfTwo(max(n, t.policy.MinBuckets))
	t.resizeMu.Lock()
	defer t.resizeMu.Unlock()
	for {
		cur := t.eng.bucketCount()
		switch {
		case cur < n:
			//lint:allow rplint/gracewait resizeMu is the resize protocol's own serializer, never taken by readers or per-key writers, so holding it across the grace wait is deadlock-free by design
			t.eng.expandStep()
		case cur > n:
			//lint:allow rplint/gracewait resizeMu is the resize protocol's own serializer, never taken by readers or per-key writers, so holding it across the grace wait is deadlock-free by design
			t.eng.shrinkStep()
		default:
			return
		}
	}
}

// syncResize is Synchronize with resize-lifecycle instrumentation:
// when an observer is installed, each grace period the resize waits
// out becomes an EvGraceWait ring event carrying its wall time. The
// caller holds resizeMu but no stripes (grace waits never run under
// stripes — that is the resize protocol's core rule, and
// rplint/gracewait checks it).
func (t *Table[K, V]) syncResize() {
	if t.obsv == nil {
		t.dom.Synchronize()
		return
	}
	t0 := time.Now()
	t.dom.Synchronize()
	t.obsEvent(obs.EvGraceWait, time.Since(t0).Nanoseconds(), 0, 0)
}

// resizeTraceTask opens a runtime/trace user task when tracing is
// active, so `go tool trace` shows each resize as a task with its
// unzip passes as regions. Returns a no-op ender otherwise.
func resizeTraceTask(name string) (context.Context, func()) {
	if !trace.IsEnabled() {
		return context.Background(), func() {}
	}
	ctx, task := trace.NewTask(context.Background(), name)
	return ctx, task.End
}

// shrinkStep halves the bucket count: the paper's "zip". Steps
// (slide titles in quotes):
//
//  1. "Initialize new buckets": each new bucket j adopts old chain j.
//  2. "Link old chains": the tail of old chain j is linked to the
//     head of old chain j+m (published store). Readers still on the
//     old array see bucket j grow a foreign suffix — a harmless
//     superset. Readers of old bucket j+m are untouched.
//  3. "Publish new buckets": swap in the half-size array.
//  4. "Wait for readers": after one grace period no reader can hold
//     the old array.
//  5. "Reclaim": the old array is garbage; Go's GC collects it.
//
// Steps 1–3 run with every stripe held (writers would otherwise
// mutate chains mid-capture); the effective stripe mask is lowered in
// the same critical section, because a merged chain spans two old
// sibling buckets and is only stripe-homogeneous under the new,
// smaller mask. The grace period waits with no stripes held.
func (t *Table[K, V]) chainShrinkStep() {
	sa := t.stripes.arr.Load() // stable: retunes serialize on resizeMu
	t.lockAll(sa)
	old := t.ht.Load()
	oldSize := old.size()
	if oldSize <= t.policy.MinBuckets || oldSize == 1 {
		t.unlockAll(sa)
		return
	}
	// Odd before the first chain-head read: a CAS-path insert that
	// publishes after this point fails its epoch re-validation, so the
	// zip capture below cannot silently drop it. (The early return
	// above mutates nothing and must not leave the epoch odd.)
	t.resizeEpoch.Add(1)
	start := time.Now()
	ctx, endTask := resizeTraceTask("rphash.shrink")
	defer endTask()
	defer trace.StartRegion(ctx, "zip").End()
	newSize := oldSize / 2
	t.obsEvent(obs.EvShrinkStart, int64(oldSize), int64(newSize), 0)
	nb := newBuckets[K, V](newSize)

	for j := uint64(0); j < newSize; j++ {
		low := old.slot[j].Load()
		high := old.slot[j+newSize].Load()
		if low == nil {
			nb.slot[j].Store(high)
			continue
		}
		nb.slot[j].Store(low)
		if high == nil {
			continue
		}
		tail := low
		for next := tail.next.Load(); next != nil; next = tail.next.Load() {
			tail = next
		}
		tail.next.Store(high) // link: old-array readers see a superset
	}

	sa.mask.Store(effectiveStripeMask(len(sa.locks), newSize))
	t.ht.Store(nb) // publish
	t.resizeEpoch.Add(1)
	t.unlockAll(sa)
	t.syncResize() // wait for readers; old array now unreachable
	t.stats.shrinks.Add(1)
	t.obsEvent(obs.EvShrinkDone, time.Since(start).Nanoseconds(), 0, 0)
	t.assertInvariantsLive()
}

// expandStep doubles the bucket count: the paper's "unzip".
//
//  1. "Initialize new buckets": child buckets b and b+m point at the
//     first node of parent chain b that belongs to them. Chains stay
//     interleaved ("zipped"); each child head is a superset of the
//     child bucket.
//  2. "Publish new buckets", then "Wait for readers": after one grace
//     period every reader indexes the new, doubled array.
//  3. "Unzip one step" / "Wait for readers", repeated: each pass
//     makes at most one cut per parent chain — redirecting one
//     pointer to skip a run of nodes that belong to the sibling
//     child — then waits a grace period before the next pass. The
//     grace period guarantees no reader is positioned inside a run
//     that the next cut would detach from its traversal.
//
// Stripe choreography: step 1 and the publish run with every stripe
// held; t.unzipParent is set in the same critical section, switching
// writers into zipped-chain mode (unlinks patch the sibling chain
// too — see unlinkLocked). The effective stripe mask stays at the
// PARENT granularity for the whole unzip, so one stripe always
// covers a parent chain together with both of its children. Each
// unzip pass then takes one stripe at a time and cuts every parent
// chain mapped to it — a migration batch — leaving writers on other
// stripes undisturbed; grace periods between passes hold no stripes
// at all. A final all-stripes section clears unzipParent and raises
// the mask to the doubled bucket count.
//
// Migration batches on different stripes are independent — each
// touches only chains its own stripe covers — so when the unzip
// fan-out (SetUnzipWorkers, driven by the adapt controller from the
// observed backlog) is above one, each pass distributes its stripe
// batches across that many goroutines. All workers of a pass share
// the single grace period that follows it; the grace-period count
// and the cut schedule are exactly the sequential ones.
func (t *Table[K, V]) chainExpandStep() {
	start := time.Now()
	t.migrateStartNS.Store(start.UnixNano())
	defer t.migrateStartNS.Store(0)
	ctx, endTask := resizeTraceTask("rphash.expand")
	defer endTask()
	sa := t.stripes.arr.Load() // stable: retunes serialize on resizeMu
	t.lockAll(sa)
	// Odd before the child-head capture walks: any CAS-path insert
	// publishing after this point re-validates and recovers instead of
	// trusting a head the capture may have read too early.
	t.resizeEpoch.Add(1)
	old := t.ht.Load()
	oldSize := old.size()
	newSize := oldSize * 2
	t.obsEvent(obs.EvExpandStart, int64(oldSize), int64(newSize), 0)
	nb := newBuckets[K, V](newSize)

	// Step 1: point each child bucket into the parent chain.
	for i := uint64(0); i < oldSize; i++ {
		var lowSet, highSet bool
		for n := old.slot[i].Load(); n != nil && !(lowSet && highSet); n = n.next.Load() {
			child := n.hash & nb.mask
			if child == i && !lowSet {
				nb.slot[i].Store(n)
				lowSet = true
			} else if child == i+oldSize && !highSet {
				nb.slot[i+oldSize].Store(n)
				highSet = true
			}
		}
	}

	// Collect the parents that can possibly need cuts — both children
	// non-empty — ordered by stripe so each pass locks a stripe once
	// for all of its parents. Built under the all-stripes section, so
	// the heads are stable. Once a parent's children are disjoint
	// they stay disjoint (head inserts only prepend to exclusive
	// prefixes, deletes only shorten chains, and only a resize — which
	// we serialize with via resizeMu — can zip chains together), so
	// the list is filtered monotonically: pass N skips every parent
	// pass N-1 finished, and the per-pass lock traffic shrinks with
	// the remaining work instead of re-sweeping every stripe.
	stripeMask := sa.mask.Load() // frozen: only resizes change it, and we hold resizeMu
	active := make([]uint64, 0, oldSize)
	for s := uint64(0); s <= stripeMask; s++ {
		for i := s; i < oldSize; i += stripeMask + 1 {
			if nb.slot[i].Load() != nil && nb.slot[i+oldSize].Load() != nil {
				active = append(active, i)
			}
		}
	}

	// Step 2: publish and wait. unzipParent is published in the same
	// all-stripes section as the array, so any writer that sees the
	// doubled array also sees the unzip window and vice versa. After
	// the grace period no reader walks a chain via the old array's
	// (coarser) mask.
	t.unzipParent.Store(oldSize)
	t.ht.Store(nb)
	t.resizeEpoch.Add(1)
	t.unlockAll(sa)
	t.obsEvent(obs.EvExpandPublish, int64(len(active)), 0, 0)
	publishRegion := trace.StartRegion(ctx, "publish-grace")
	t.syncResize()
	publishRegion.End()

	// Step 3: unzip passes. Cuts on different parent chains are
	// independent, so each pass batches one cut per parent and the
	// batch shares a single grace period — the paper's batching.
	// (With WithUnzipGracePerCut — ablation only — each cut pays its
	// own grace period, quantifying what batching buys.) Writers
	// interleave between migration batches and between passes; the
	// cut-point derivation tolerates that because every pass
	// re-derives its state from the live bucket heads.
	passes := 0
	for pass := 1; len(active) > 0; pass++ {
		t.unzipBacklog.Store(int64(len(active)))
		workers := int(t.unzipWorkers.Load())
		if workers < 1 || t.unzipPerCutGrace {
			workers = 1 // per-cut grace is strictly sequential by design
		}
		passRegion := trace.StartRegion(ctx, "unzip-pass")
		var cuts int
		if workers > 1 {
			cuts, active = t.unzipPassParallel(sa, nb, active, oldSize, stripeMask, workers)
		} else {
			cuts, active = t.unzipPassSequential(sa, nb, active, oldSize, stripeMask)
		}
		if cuts == 0 {
			passRegion.End()
			break
		}
		t.obsEvent(obs.EvUnzipPass, int64(pass), int64(cuts), int64(workers))
		if !t.unzipPerCutGrace {
			t.syncResize()
		}
		passRegion.End()
		passes = pass
		t.stats.unzipPasses.Add(1)
		t.stats.unzipCuts.Add(uint64(cuts))
		if t.testHookAfterUnzipPass != nil {
			t.testHookAfterUnzipPass(pass)
		}
	}
	t.unzipBacklog.Store(0)

	// Chains are fully disjoint now (and writers cannot re-zip them;
	// only a resize can). Leave zipped-chain mode and raise the
	// stripe mask to the new bucket count, under all stripes so no
	// writer holds a stripe chosen under the old mask.
	t.lockAll(sa)
	t.resizeEpoch.Add(1) // odd: window close in progress
	t.unzipParent.Store(0)
	sa.mask.Store(effectiveStripeMask(len(sa.locks), newSize))
	t.resizeEpoch.Add(1)
	t.unlockAll(sa)
	t.stats.expands.Add(1)
	t.obsEvent(obs.EvExpandDone, int64(passes), time.Since(start).Nanoseconds(), 0)
	t.assertInvariantsLive()
}

// unzipPassSequential makes one cut per active parent, holding one
// stripe at a time (parents arrive grouped by stripe). It returns the
// cut count and the parents still zipped, reusing active's storage.
func (t *Table[K, V]) unzipPassSequential(sa *stripeArray, nb *buckets[K, V], active []uint64, oldSize, stripeMask uint64) (int, []uint64) {
	cuts := 0
	kept := active[:0]
	var held *stripeLock
	heldIdx := ^uint64(0)
	for _, i := range active {
		if s := i & stripeMask; s != heldIdx {
			if held != nil {
				held.mu.Unlock()
			}
			held = &sa.locks[s]
			held.mu.Lock()
			heldIdx = s
		}
		c := t.unzipStep(nb, i, oldSize)
		if c == 0 {
			continue // disjoint now, disjoint forever: drop it
		}
		cuts += c
		kept = append(kept, i)
		if t.unzipPerCutGrace {
			held.mu.Unlock()
			t.syncResize()
			held.mu.Lock()
		}
	}
	if held != nil {
		held.mu.Unlock()
	}
	return cuts, kept
}

// unzipPassParallel distributes one pass's migration batches across
// `workers` goroutines. A batch is all the active parents mapped to
// one stripe; batches are independent (each worker locks its batch's
// stripe, so it owns every chain the batch's cuts touch, and cuts on
// different stripes touch disjoint chains), which is what makes the
// fan-out safe without any new synchronization. Workers claim batches
// from a shared cursor; the caller runs the pass's single shared
// grace period after all workers drain. Surviving parents are
// reassembled batch-by-batch so the next pass still sees them grouped
// by stripe.
func (t *Table[K, V]) unzipPassParallel(sa *stripeArray, nb *buckets[K, V], active []uint64, oldSize, stripeMask uint64, workers int) (int, []uint64) {
	// Slice the stripe-ordered parent list into per-stripe batches.
	var batches [][2]int
	for start := 0; start < len(active); {
		end := start + 1
		for end < len(active) && active[end]&stripeMask == active[start]&stripeMask {
			end++
		}
		batches = append(batches, [2]int{start, end})
		start = end
	}
	if workers > len(batches) {
		workers = len(batches)
	}
	if workers > 1 {
		// Counted before the fan-out (not after) so the stat means
		// what it says: this pass's batches ran on >1 worker. Tail
		// passes whose survivors collapse onto one stripe run on one
		// goroutine and are not parallel passes.
		t.stats.unzipParallelPasses.Add(1)
	}

	keptPer := make([][]uint64, len(batches))
	var cuts atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= len(batches) {
					return
				}
				lo, hi := batches[b][0], batches[b][1]
				s := &sa.locks[active[lo]&stripeMask]
				s.mu.Lock()
				var kept []uint64
				c := 0
				for _, parent := range active[lo:hi] {
					if n := t.unzipStep(nb, parent, oldSize); n > 0 {
						c += n
						kept = append(kept, parent)
					}
				}
				s.mu.Unlock()
				if c > 0 {
					cuts.Add(int64(c))
					keptPer[b] = kept
				}
			}
		}()
	}
	wg.Wait()

	kept := active[:0]
	for _, ks := range keptPer {
		kept = append(kept, ks...)
	}
	return int(cuts.Load()), kept
}

// maxUnzipWorkers bounds the migration fan-out; past a handful of
// goroutines the grace-period wait dominates the pass anyway.
const maxUnzipWorkers = 64

// SetUnzipWorkers sets the migration fan-out for expansion unzip
// passes (clamped to [1, 64]; 1 = the sequential resizer). Each pass
// re-reads it, so a controller can widen an in-flight resize as
// backlog accumulates. The per-cut-grace ablation mode ignores it.
func (t *Table[K, V]) SetUnzipWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > maxUnzipWorkers {
		n = maxUnzipWorkers
	}
	old := t.unzipWorkers.Swap(int32(n))
	if old < 1 {
		old = 1
	}
	if int32(n) != old {
		t.obsEvent(obs.EvUnzipWorkers, int64(old), int64(n), 0)
	}
}

// UnzipWorkers returns the current migration fan-out setting.
func (t *Table[K, V]) UnzipWorkers() int {
	if n := int(t.unzipWorkers.Load()); n > 1 {
		return n
	}
	return 1
}

// UnzipBacklog reports how many parent chains the in-flight
// expansion still has to unzip (0 when no unzip is running). The
// adapt controller reads it to size the migration fan-out.
func (t *Table[K, V]) UnzipBacklog() int { return int(t.unzipBacklog.Load()) }

// unzipStep performs at most one unzip cut for the chain pair that
// parent bucket `parent` split into (children a = parent and
// b = parent+oldSize). It returns the number of cuts made (0 or 1).
// The caller holds the stripe covering the parent (and hence both
// children).
//
// The cut point is re-derived from the bucket heads each pass, which
// makes every pass self-validating — including against writer
// activity between passes (head inserts prepend to exclusive
// prefixes; deletes shorten chains but never splice them together):
//
//   - Find s, the first node reachable from BOTH child heads (the
//     chains are suffix-sharing, so this is the classic
//     align-lengths-then-lockstep walk).
//   - s belongs to child `owner`. The *other* child's chain reaches s
//     through its predecessor p. Readers of `owner` still need s's
//     run; readers of `other` do not.
//   - Let r be the last node of the owner-run starting at s. Cut by
//     publishing p.next = r.next, detaching the run from `other`'s
//     traversal only.
//
// Safety: p is in `other`'s exclusive prefix, so owner-readers never
// pass through p — the cut is invisible to them. Other-readers that
// entered before the cut may already be inside the s..r run; they
// continue through it into nodes they still need. The caller's grace
// period between passes guarantees that by the time the *next* cut
// redirects a pointer inside this run, those readers are gone.
func (t *Table[K, V]) unzipStep(nb *buckets[K, V], parent, oldSize uint64) int {
	a, b := parent, parent+oldSize
	headA := nb.slot[a].Load()
	headB := nb.slot[b].Load()
	if headA == nil || headB == nil {
		return 0 // one child empty: nothing shared
	}

	lenA, lenB := chainLen(headA), chainLen(headB)
	pA, pB := headA, headB
	var prevA, prevB *node[K, V]
	for ; lenA > lenB; lenA-- {
		prevA, pA = pA, pA.next.Load()
	}
	for ; lenB > lenA; lenB-- {
		prevB, pB = pB, pB.next.Load()
	}
	for pA != pB {
		prevA, pA = pA, pA.next.Load()
		prevB, pB = pB, pB.next.Load()
	}
	s := pA
	if s == nil {
		return 0 // chains disjoint: fully unzipped
	}

	owner := s.hash & nb.mask
	// The cut happens on the chain that does NOT own s.
	var prev *node[K, V]
	var headSlot uint64
	if owner == a {
		prev, headSlot = prevB, b
	} else {
		prev, headSlot = prevA, a
	}

	// r = last node of the run of owner-nodes starting at s.
	r := s
	for {
		next := r.next.Load()
		if next == nil || next.hash&nb.mask != owner {
			break
		}
		r = next
	}
	after := r.next.Load()
	if prev == nil {
		// The non-owner child's head points straight at the foreign
		// run — possible when a writer deleted that child's former
		// head between passes. Redirecting the head slot is the same
		// relativistic cut, just published one pointer earlier.
		nb.slot[headSlot].Store(after)
	} else {
		prev.next.Store(after)
	}
	return 1
}

func chainLen[K comparable, V any](n *node[K, V]) int {
	l := 0
	for ; n != nil; n = n.next.Load() {
		l++
	}
	return l
}

// ExpandOnce doubles the table once (exported for tests and the
// benchmark driver's precise 8k<->16k toggling).
func (t *Table[K, V]) ExpandOnce() {
	t.resizeMu.Lock()
	defer t.resizeMu.Unlock()
	//lint:allow rplint/gracewait resizeMu is the resize protocol's own serializer, never taken by readers or per-key writers, so holding it across the grace wait is deadlock-free by design
	t.eng.expandStep()
}

// ShrinkOnce halves the table once (no-op at the policy floor).
func (t *Table[K, V]) ShrinkOnce() {
	t.resizeMu.Lock()
	defer t.resizeMu.Unlock()
	//lint:allow rplint/gracewait resizeMu is the resize protocol's own serializer, never taken by readers or per-key writers, so holding it across the grace wait is deadlock-free by design
	t.eng.shrinkStep()
}

// String describes the table shape for debugging.
func (t *Table[K, V]) String() string {
	return fmt.Sprintf("core.Table{len=%d buckets=%d}", t.Len(), t.Buckets())
}
