package core

import (
	"testing"

	"rphash/internal/rcu"
)

func fill(tbl *Table[uint64, int], n uint64) {
	for i := uint64(0); i < n; i++ {
		tbl.Set(i, int(i))
	}
}

func verifyAll(t *testing.T, tbl *Table[uint64, int], n uint64) {
	t.Helper()
	for i := uint64(0); i < n; i++ {
		if v, ok := tbl.Get(i); !ok || v != int(i) {
			t.Fatalf("Get(%d) = %d,%v after resize", i, v, ok)
		}
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExpandPreservesContents(t *testing.T) {
	tbl := newT(t, WithInitialBuckets(4))
	fill(tbl, 1000)
	for tbl.Buckets() < 1024 {
		tbl.ExpandOnce()
		verifyAll(t, tbl, 1000)
	}
}

func TestShrinkPreservesContents(t *testing.T) {
	tbl := newT(t, WithInitialBuckets(1024))
	fill(tbl, 1000)
	for tbl.Buckets() > 1 {
		tbl.ShrinkOnce()
		verifyAll(t, tbl, 1000)
	}
	if tbl.Buckets() != 1 {
		t.Fatalf("Buckets = %d, want 1", tbl.Buckets())
	}
}

func TestResizeJumps(t *testing.T) {
	tbl := newT(t, WithInitialBuckets(8))
	fill(tbl, 500)
	for _, target := range []uint64{512, 16, 2048, 1, 64} {
		tbl.Resize(target)
		if got := uint64(tbl.Buckets()); got != target {
			t.Fatalf("Resize(%d): Buckets = %d", target, got)
		}
		verifyAll(t, tbl, 500)
	}
}

func TestResizeRoundsUp(t *testing.T) {
	tbl := newT(t, WithInitialBuckets(8))
	tbl.Resize(100)
	if got := tbl.Buckets(); got != 128 {
		t.Fatalf("Resize(100): Buckets = %d, want 128", got)
	}
}

func TestResizeEmptyTable(t *testing.T) {
	tbl := newT(t, WithInitialBuckets(4))
	tbl.Resize(64)
	tbl.Resize(1)
	tbl.Resize(16)
	if tbl.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tbl.Len())
	}
	tbl.Set(3, 3)
	if v, ok := tbl.Get(3); !ok || v != 3 {
		t.Fatalf("Get after empty resizes = %d,%v", v, ok)
	}
}

func TestShrinkFloorsAtMinBuckets(t *testing.T) {
	tbl := NewUint64[int](WithInitialBuckets(64), WithPolicy(Policy{MinBuckets: 16}))
	defer tbl.Close()
	tbl.Resize(1)
	if got := tbl.Buckets(); got != 16 {
		t.Fatalf("Buckets = %d, want policy floor 16", got)
	}
}

// TestExpandAllKeysOneBucket: adversarial hash puts every key into
// bucket 0; the sibling child is empty, so unzip must terminate with
// zero cuts on most parents and the chain must stay intact.
func TestExpandAllKeysOneBucket(t *testing.T) {
	tbl := New[uint64, int](func(uint64) uint64 { return 0 })
	defer tbl.Close()
	for i := uint64(0); i < 50; i++ {
		tbl.Set(i, int(i))
	}
	tbl.ExpandOnce()
	tbl.ExpandOnce()
	for i := uint64(0); i < 50; i++ {
		if v, ok := tbl.Get(i); !ok || v != int(i) {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestExpandAlternatingChain: a hash crafted so one parent chain
// alternates children every node — the worst case for unzip (one run
// per node, maximum passes).
func TestExpandAlternatingChain(t *testing.T) {
	// With 1 initial bucket and this hash, keys alternate between
	// child buckets 0 and 1 after one expansion.
	tbl := New[uint64, int](func(k uint64) uint64 { return k }, WithInitialBuckets(1))
	defer tbl.Close()
	const n = 16
	for i := uint64(0); i < n; i++ {
		tbl.Set(i, int(i))
	}
	before := tbl.Stats()
	tbl.ExpandOnce()
	after := tbl.Stats()
	for i := uint64(0); i < n; i++ {
		if v, ok := tbl.Get(i); !ok || v != int(i) {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if after.UnzipCuts <= before.UnzipCuts {
		t.Fatal("alternating chain expansion should require unzip cuts")
	}
	if after.UnzipPasses <= before.UnzipPasses {
		t.Fatal("alternating chain expansion should require multiple passes")
	}
}

// TestUnzipInvariantEveryPass uses the test hook to assert, after
// every single unzip pass (i.e. in the states concurrent readers
// actually observe), that every element is still reachable from its
// home bucket.
func TestUnzipInvariantEveryPass(t *testing.T) {
	tbl := New[uint64, int](func(k uint64) uint64 { return k }, WithInitialBuckets(2))
	defer tbl.Close()
	const n = 64
	for i := uint64(0); i < n; i++ {
		tbl.Set(i, int(i))
	}
	passes := 0
	tbl.testHookAfterUnzipPass = func(pass int) {
		passes++
		if err := tbl.checkInvariants(); err != nil {
			t.Errorf("invariant violated after unzip pass %d: %v", pass, err)
		}
		// Every key must be individually findable mid-unzip.
		for i := uint64(0); i < n; i += 7 {
			if _, ok := tbl.Get(i); !ok {
				t.Errorf("key %d unreachable after unzip pass %d", i, pass)
			}
		}
	}
	for tbl.Buckets() < 64 {
		tbl.ExpandOnce()
	}
	if passes == 0 {
		t.Fatal("test hook never ran; unzip made no passes")
	}
}

// TestExpandUsesGracePeriods: each unzip pass must be separated by a
// grace period — count them via the domain.
func TestExpandUsesGracePeriods(t *testing.T) {
	dom := rcu.NewDomain()
	defer dom.Close()
	tbl := New[uint64, int](func(k uint64) uint64 { return k },
		WithInitialBuckets(1), WithDomain(dom))
	for i := uint64(0); i < 32; i++ {
		tbl.Set(i, int(i))
	}
	before := dom.Stats().GracePeriods
	tbl.ExpandOnce()
	after := dom.Stats().GracePeriods
	passes := tbl.Stats().UnzipPasses
	// One grace period after publish + one per cutting pass.
	if after-before < passes+1 {
		t.Fatalf("grace periods %d..%d do not cover publish + %d passes",
			before, after, passes)
	}
}

// TestShrinkThenExpandRoundTrip stresses repeated direction changes.
func TestShrinkExpandRoundTrips(t *testing.T) {
	tbl := newT(t, WithInitialBuckets(256))
	fill(tbl, 2000)
	for round := 0; round < 4; round++ {
		tbl.Resize(16)
		verifyAll(t, tbl, 2000)
		tbl.Resize(512)
		verifyAll(t, tbl, 2000)
	}
}

// TestMutationsBetweenResizes interleaves updates with resizes to
// catch stale-array bugs in the writer paths.
func TestMutationsBetweenResizes(t *testing.T) {
	tbl := newT(t, WithInitialBuckets(4))
	live := map[uint64]int{}
	k := uint64(0)
	for round := 0; round < 40; round++ {
		for i := 0; i < 50; i++ {
			tbl.Set(k, int(k))
			live[k] = int(k)
			k++
		}
		if round%3 == 0 {
			for del := k - 25; del < k; del += 3 {
				tbl.Delete(del)
				delete(live, del)
			}
		}
		if round%2 == 0 {
			tbl.ExpandOnce()
		} else {
			tbl.ShrinkOnce()
		}
		if tbl.Len() != len(live) {
			t.Fatalf("round %d: Len = %d, want %d", round, tbl.Len(), len(live))
		}
	}
	for key, want := range live {
		if v, ok := tbl.Get(key); !ok || v != want {
			t.Fatalf("Get(%d) = %d,%v want %d,true", key, v, ok, want)
		}
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}
