package core

import (
	"fmt"
	"sync/atomic"
	"time"
)

// tableStats holds the table's internal counters.
type tableStats struct {
	inserts     atomic.Uint64
	deletes     atomic.Uint64
	moves       atomic.Uint64
	expands     atomic.Uint64
	shrinks     atomic.Uint64
	unzipPasses atomic.Uint64
	unzipCuts   atomic.Uint64
	autoGrows   atomic.Uint64
	autoShrinks atomic.Uint64

	// retunes counts stripe-array swaps (SetStripes). The two base
	// counters carry retired stripe arrays' contention telemetry
	// forward across swaps; retuneSeq is the seqlock bracketing each
	// fold+publish (odd = swap in progress) so ContentionCounters
	// never pairs a folded base with the retiring array.
	retunes             atomic.Uint64
	retuneSeq           atomic.Uint64
	stripeAcquiresBase  atomic.Uint64
	stripeContendedBase atomic.Uint64

	// unzipParallelPasses counts unzip passes whose migration batches
	// ran on more than one worker.
	unzipParallelPasses atomic.Uint64

	// CAS write fast-path telemetry (update.go). casFastInserts counts
	// inserts committed lock-free; casFallbacks counts fast-path
	// attempts that declined to the striped slow path (epoch moved,
	// unzip window, contention budget, or an undo); casUndos counts
	// published-then-dropped nodes recovery had to roll back (a strict
	// subset of the fallbacks); valueCASSwaps counts successful
	// lock-free value publishes (CompareAndSwapValue).
	casFastInserts atomic.Uint64
	casFallbacks   atomic.Uint64
	casUndos       atomic.Uint64
	valueCASSwaps  atomic.Uint64
}

// Stats is a point-in-time snapshot of table metrics.
type Stats struct {
	Len     int
	Buckets int
	// Stripes is the physical writer-lock stripe count (effective =
	// min(Stripes, Buckets)). In aggregated Map stats it is the TOTAL
	// across shards — the map's overall writer parallelism — with the
	// per-table value in MapStats.PerShard.
	Stripes int
	// EffectiveStripes is the stripe count writers currently hash
	// across: min(Stripes, Buckets), pinned at parent granularity
	// mid-unzip. Aggregated Map stats sum it like Stripes.
	EffectiveStripes int
	// StripeAcquires / StripeContended are the cumulative writer
	// stripe-lock telemetry (total acquisitions; those that had to
	// block) the adapt controller samples. StripeRetunes counts
	// runtime swaps of the physical stripe array.
	StripeAcquires  uint64
	StripeContended uint64
	StripeRetunes   uint64
	LoadFactor      float64
	MaxChain        int
	Inserts         uint64
	Deletes         uint64
	Moves           uint64
	Expands         uint64
	Shrinks         uint64
	UnzipPasses     uint64 // grace-period-separated passes across all expands
	UnzipCuts       uint64 // individual pointer cuts across all expands
	// UnzipParallelPasses is how many of those passes fanned their
	// migration batches across multiple workers. UnzipWorkers is the
	// current fan-out setting (max over shards when aggregated).
	UnzipParallelPasses uint64
	UnzipWorkers        int
	AutoGrows           uint64
	AutoShrinks         uint64
	// CASFastInserts / CASFallbacks / CASUndos are the lock-free
	// insert fast path's hit, decline, and rollback counters;
	// ValueCASSwaps counts successful lock-free value publishes. See
	// tableStats for exact semantics.
	CASFastInserts uint64
	CASFallbacks   uint64
	CASUndos       uint64
	ValueCASSwaps  uint64

	// UnzipBacklog is the in-flight resize's remaining migration work
	// (parent chains still zipped for the chain engine, units not yet
	// copied for the flat engine); 0 when no resize is running. A
	// gauge, not a counter: aggregation sums the instantaneous values.
	UnzipBacklog int64

	// MigrationUnits / MigrationDone describe the in-flight bucket
	// migration — unzip parents (chain) or copy units (flat) — both 0
	// when idle. MigrationRate is the migration's observed progress in
	// units per second since the resize step began (0 when idle or too
	// young to measure).
	MigrationUnits uint64
	MigrationDone  uint64
	MigrationRate  float64

	// Flat-engine layout telemetry, all zero under the chain engine.
	// FlatOccupancy[i] counts sampled groups with exactly i occupied
	// inline cells (at most FlatIntroSampleGroups groups are scanned,
	// spread across the array); FlatSpilledGroups / FlatSpillEntries
	// count sampled groups with a non-empty overflow chain and their
	// total chained entries; FlatMaxSpill is the longest sampled
	// chain.
	FlatSampledGroups uint64
	FlatOccupancy     [flatGroupCells + 1]uint64
	FlatSpilledGroups uint64
	FlatSpillEntries  uint64
	FlatMaxSpill      int
}

// FlatSpillRatio is the fraction of sampled flat groups whose inline
// cells overflowed into a spill chain (0 when unsampled or chain
// engine).
func (s Stats) FlatSpillRatio() float64 {
	if s.FlatSampledGroups == 0 {
		return 0
	}
	return float64(s.FlatSpilledGroups) / float64(s.FlatSampledGroups)
}

// MigrationProgress is MigrationDone/MigrationUnits in [0,1], or 0
// when no migration is in flight.
func (s Stats) MigrationProgress() float64 {
	if s.MigrationUnits == 0 {
		return 0
	}
	return float64(s.MigrationDone) / float64(s.MigrationUnits)
}

// EngineIntro is the engine seam's layout-telemetry report (see
// engine.introspect); its fields land verbatim in Stats.
type EngineIntro struct {
	MigrationUnits    uint64
	MigrationDone     uint64
	FlatSampledGroups uint64
	FlatOccupancy     [flatGroupCells + 1]uint64
	FlatSpilledGroups uint64
	FlatSpillEntries  uint64
	FlatMaxSpill      int
}

// FlatIntroSampleGroups bounds the flat engine's introspection scan:
// tables at or under this many groups are scanned exactly; larger
// tables are strided so introspection stays O(1) in table size (the
// CounterStats contract metrics scrapes rely on).
const FlatIntroSampleGroups = 1024

// introspect samples the flat layout inside one read-side section:
// per-group inline occupancy (from the tag word alone), spill-chain
// presence and length, and copy-migration progress when a resize is
// in flight.
func (e *flatEngine[K, V]) introspect() EngineIntro {
	var in EngineIntro
	e.t.dom.Read(func() {
		v := e.view.Load()
		n := v.mask + 1
		sample := n
		stride := uint64(1)
		if sample > FlatIntroSampleGroups {
			sample = FlatIntroSampleGroups
			stride = n / sample
		}
		for i := uint64(0); i < sample; i++ {
			g := &v.groups[i*stride]
			tags := g.tags.Load()
			occ := 0
			for b := 0; b < flatGroupCells; b++ {
				if byte(tags>>(8*uint(b))) != 0 {
					occ++
				}
			}
			in.FlatOccupancy[occ]++
			sp := 0
			for nd := g.overflow.Load(); nd != nil; nd = nd.next.Load() {
				sp++
			}
			if sp > 0 {
				in.FlatSpilledGroups++
				in.FlatSpillEntries += uint64(sp)
				if sp > in.FlatMaxSpill {
					in.FlatMaxSpill = sp
				}
			}
		}
		in.FlatSampledGroups = sample
		if v.prev != nil {
			in.MigrationUnits = v.unitMask + 1
			in.MigrationDone = v.done.Load()
		}
	})
	return in
}

// Stats gathers a snapshot. MaxChain walks every bucket inside one
// read-side section; on huge tables prefer CounterStats (the metrics
// export plane scrapes through it) or sampling via Buckets/Len. Under
// the flat engine MaxChain reports the longest per-bucket probe
// (occupied cells plus overflow-chain length).
func (t *Table[K, V]) Stats() Stats {
	s := t.CounterStats()
	if p := t.eng.maxProbe(); p > s.MaxChain {
		s.MaxChain = p
	}
	return s
}

// chainMaxProbe is the chain engine's longest-chain walk.
func (t *Table[K, V]) chainMaxProbe() int {
	maxLen := 0
	t.dom.Read(func() {
		ht := t.ht.Load()
		for i := range ht.slot {
			l := 0
			for n := ht.slot[i].Load(); n != nil; n = n.next.Load() {
				l++
			}
			if l > maxLen {
				maxLen = l
			}
		}
	})
	return maxLen
}

// CounterStats is Stats minus the MaxChain bucket walk: a pure
// counter snapshot whose cost is O(stripes), independent of table
// size, so scrape endpoints can poll it freely. MaxChain is left 0.
func (t *Table[K, V]) CounterStats() Stats {
	acq, con := t.ContentionCounters()
	s := Stats{
		Len:                 t.Len(),
		Buckets:             t.Buckets(),
		Stripes:             t.Stripes(),
		EffectiveStripes:    t.EffectiveStripes(),
		StripeAcquires:      acq,
		StripeContended:     con,
		StripeRetunes:       t.stats.retunes.Load(),
		Inserts:             t.stats.inserts.Load(),
		Deletes:             t.stats.deletes.Load(),
		Moves:               t.stats.moves.Load(),
		Expands:             t.stats.expands.Load(),
		Shrinks:             t.stats.shrinks.Load(),
		UnzipPasses:         t.stats.unzipPasses.Load(),
		UnzipCuts:           t.stats.unzipCuts.Load(),
		UnzipParallelPasses: t.stats.unzipParallelPasses.Load(),
		UnzipWorkers:        t.UnzipWorkers(),
		AutoGrows:           t.stats.autoGrows.Load(),
		AutoShrinks:         t.stats.autoShrinks.Load(),
		CASFastInserts:      t.stats.casFastInserts.Load(),
		CASFallbacks:        t.stats.casFallbacks.Load(),
		CASUndos:            t.stats.casUndos.Load(),
		ValueCASSwaps:       t.stats.valueCASSwaps.Load(),
		UnzipBacklog:        t.unzipBacklog.Load(),
	}
	in := t.eng.introspect()
	s.MigrationUnits = in.MigrationUnits
	s.MigrationDone = in.MigrationDone
	s.FlatSampledGroups = in.FlatSampledGroups
	s.FlatOccupancy = in.FlatOccupancy
	s.FlatSpilledGroups = in.FlatSpilledGroups
	s.FlatSpillEntries = in.FlatSpillEntries
	s.FlatMaxSpill = in.FlatMaxSpill
	if s.MigrationUnits > 0 {
		if start := t.migrateStartNS.Load(); start > 0 {
			if el := time.Now().UnixNano() - start; el > 0 {
				s.MigrationRate = float64(s.MigrationDone) * float64(time.Second) / float64(el)
			}
		}
	}
	if s.Buckets > 0 {
		s.LoadFactor = float64(s.Len) / float64(s.Buckets)
	}
	return s
}

// String renders the headline numbers.
func (s Stats) String() string {
	return fmt.Sprintf("len=%d buckets=%d load=%.2f maxchain=%d expands=%d shrinks=%d unzip(passes=%d cuts=%d)",
		s.Len, s.Buckets, s.LoadFactor, s.MaxChain, s.Expands, s.Shrinks, s.UnzipPasses, s.UnzipCuts)
}
