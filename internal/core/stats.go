package core

import (
	"fmt"
	"sync/atomic"
)

// tableStats holds the table's internal counters.
type tableStats struct {
	inserts     atomic.Uint64
	deletes     atomic.Uint64
	moves       atomic.Uint64
	expands     atomic.Uint64
	shrinks     atomic.Uint64
	unzipPasses atomic.Uint64
	unzipCuts   atomic.Uint64
	autoGrows   atomic.Uint64
	autoShrinks atomic.Uint64

	// retunes counts stripe-array swaps (SetStripes). The two base
	// counters carry retired stripe arrays' contention telemetry
	// forward across swaps; retuneSeq is the seqlock bracketing each
	// fold+publish (odd = swap in progress) so ContentionCounters
	// never pairs a folded base with the retiring array.
	retunes             atomic.Uint64
	retuneSeq           atomic.Uint64
	stripeAcquiresBase  atomic.Uint64
	stripeContendedBase atomic.Uint64

	// unzipParallelPasses counts unzip passes whose migration batches
	// ran on more than one worker.
	unzipParallelPasses atomic.Uint64

	// CAS write fast-path telemetry (update.go). casFastInserts counts
	// inserts committed lock-free; casFallbacks counts fast-path
	// attempts that declined to the striped slow path (epoch moved,
	// unzip window, contention budget, or an undo); casUndos counts
	// published-then-dropped nodes recovery had to roll back (a strict
	// subset of the fallbacks); valueCASSwaps counts successful
	// lock-free value publishes (CompareAndSwapValue).
	casFastInserts atomic.Uint64
	casFallbacks   atomic.Uint64
	casUndos       atomic.Uint64
	valueCASSwaps  atomic.Uint64
}

// Stats is a point-in-time snapshot of table metrics.
type Stats struct {
	Len     int
	Buckets int
	// Stripes is the physical writer-lock stripe count (effective =
	// min(Stripes, Buckets)). In aggregated Map stats it is the TOTAL
	// across shards — the map's overall writer parallelism — with the
	// per-table value in MapStats.PerShard.
	Stripes int
	// EffectiveStripes is the stripe count writers currently hash
	// across: min(Stripes, Buckets), pinned at parent granularity
	// mid-unzip. Aggregated Map stats sum it like Stripes.
	EffectiveStripes int
	// StripeAcquires / StripeContended are the cumulative writer
	// stripe-lock telemetry (total acquisitions; those that had to
	// block) the adapt controller samples. StripeRetunes counts
	// runtime swaps of the physical stripe array.
	StripeAcquires  uint64
	StripeContended uint64
	StripeRetunes   uint64
	LoadFactor      float64
	MaxChain        int
	Inserts         uint64
	Deletes         uint64
	Moves           uint64
	Expands         uint64
	Shrinks         uint64
	UnzipPasses     uint64 // grace-period-separated passes across all expands
	UnzipCuts       uint64 // individual pointer cuts across all expands
	// UnzipParallelPasses is how many of those passes fanned their
	// migration batches across multiple workers. UnzipWorkers is the
	// current fan-out setting (max over shards when aggregated).
	UnzipParallelPasses uint64
	UnzipWorkers        int
	AutoGrows           uint64
	AutoShrinks         uint64
	// CASFastInserts / CASFallbacks / CASUndos are the lock-free
	// insert fast path's hit, decline, and rollback counters;
	// ValueCASSwaps counts successful lock-free value publishes. See
	// tableStats for exact semantics.
	CASFastInserts uint64
	CASFallbacks   uint64
	CASUndos       uint64
	ValueCASSwaps  uint64
}

// Stats gathers a snapshot. MaxChain walks every bucket inside one
// read-side section; on huge tables prefer CounterStats (the metrics
// export plane scrapes through it) or sampling via Buckets/Len. Under
// the flat engine MaxChain reports the longest per-bucket probe
// (occupied cells plus overflow-chain length).
func (t *Table[K, V]) Stats() Stats {
	s := t.CounterStats()
	if p := t.eng.maxProbe(); p > s.MaxChain {
		s.MaxChain = p
	}
	return s
}

// chainMaxProbe is the chain engine's longest-chain walk.
func (t *Table[K, V]) chainMaxProbe() int {
	maxLen := 0
	t.dom.Read(func() {
		ht := t.ht.Load()
		for i := range ht.slot {
			l := 0
			for n := ht.slot[i].Load(); n != nil; n = n.next.Load() {
				l++
			}
			if l > maxLen {
				maxLen = l
			}
		}
	})
	return maxLen
}

// CounterStats is Stats minus the MaxChain bucket walk: a pure
// counter snapshot whose cost is O(stripes), independent of table
// size, so scrape endpoints can poll it freely. MaxChain is left 0.
func (t *Table[K, V]) CounterStats() Stats {
	acq, con := t.ContentionCounters()
	s := Stats{
		Len:                 t.Len(),
		Buckets:             t.Buckets(),
		Stripes:             t.Stripes(),
		EffectiveStripes:    t.EffectiveStripes(),
		StripeAcquires:      acq,
		StripeContended:     con,
		StripeRetunes:       t.stats.retunes.Load(),
		Inserts:             t.stats.inserts.Load(),
		Deletes:             t.stats.deletes.Load(),
		Moves:               t.stats.moves.Load(),
		Expands:             t.stats.expands.Load(),
		Shrinks:             t.stats.shrinks.Load(),
		UnzipPasses:         t.stats.unzipPasses.Load(),
		UnzipCuts:           t.stats.unzipCuts.Load(),
		UnzipParallelPasses: t.stats.unzipParallelPasses.Load(),
		UnzipWorkers:        t.UnzipWorkers(),
		AutoGrows:           t.stats.autoGrows.Load(),
		AutoShrinks:         t.stats.autoShrinks.Load(),
		CASFastInserts:      t.stats.casFastInserts.Load(),
		CASFallbacks:        t.stats.casFallbacks.Load(),
		CASUndos:            t.stats.casUndos.Load(),
		ValueCASSwaps:       t.stats.valueCASSwaps.Load(),
	}
	if s.Buckets > 0 {
		s.LoadFactor = float64(s.Len) / float64(s.Buckets)
	}
	return s
}

// String renders the headline numbers.
func (s Stats) String() string {
	return fmt.Sprintf("len=%d buckets=%d load=%.2f maxchain=%d expands=%d shrinks=%d unzip(passes=%d cuts=%d)",
		s.Len, s.Buckets, s.LoadFactor, s.MaxChain, s.Expands, s.Shrinks, s.UnzipPasses, s.UnzipCuts)
}
