package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"rphash/internal/hashfn"
)

// Writer-side striped locking.
//
// The paper serializes every mutation on one per-table mutex; this
// file replaces that mutex with an array of writer locks ("stripes")
// so writers to different buckets proceed in parallel while the
// read side stays exactly the paper's: wait-free, lock-free,
// retry-free, never aware of stripes at all.
//
// The scheme rests on one structural fact: a chain never mixes
// stripes. The stripe of a key is its hash masked by the effective
// stripe mask, and the effective stripe count is kept <= the bucket
// count at all times, so every node in bucket b satisfies
// h & stripeMask == b & stripeMask — including mid-resize, where
// chains span a parent bucket and both its children (expansion) or
// two merged siblings (shrink), which differ only in bits ABOVE the
// stripe mask. Locking stripe(h) therefore excludes every writer
// that could touch any pointer on the chain(s) holding h, in every
// intermediate resize state.
//
// Lock order, for deadlock freedom:
//
//   - Point writers hold exactly one stripe.
//   - Move holds two, acquired in ascending index order.
//   - Batch writers hold one at a time, visiting stripes in
//     ascending (sorted) order.
//   - Resize acquires ALL physical stripes in ascending order for
//     its brief array-swap phases, and exactly one stripe per
//     migration batch during the long unzip phase.
//
// The effective stripe mask changes only while every physical
// stripe is held (resize boundaries). A writer therefore locks
// optimistically — read mask, lock stripe, re-check mask — and the
// re-check can only fail if a resize boundary crossed between the
// two reads, in which case it retries with the new mask. While a
// writer holds any stripe, both the mask and the bucket-array
// pointer are frozen.

// maxStripes caps the physical stripe count: past a few per core,
// more stripes only add memory (64 B each) without reducing
// collisions meaningfully.
const maxStripes = 256

// stripeCacheLine pads each lock to its own cache line so writers on
// different stripes never false-share.
const stripeCacheLine = 64

// stripeLock is one padded writer lock.
type stripeLock struct {
	mu  sync.Mutex
	_   [stripeCacheLine - 8]byte //nolint:unused // layout padding
}

// stripeSet is a table's writer-lock array plus the effective mask.
type stripeSet struct {
	locks []stripeLock
	// mask is the effective stripe mask: min(len(locks), buckets)-1.
	// Mutated only with every physical stripe held.
	mask atomic.Uint64
}

// defaultStripeCount sizes the physical stripe array: a few stripes
// per core's worth of writer parallelism, power of two, clamped to
// [64, maxStripes]. The floor is deliberately generous — 64 padded
// locks are 4 KB, and measurements show small stripe arrays (2–4
// lines indexed by low hash bits) can alias badly in the cache while
// 64+ run at single-mutex speed even single-threaded.
func defaultStripeCount() uint64 {
	n := hashfn.NextPowerOfTwo(uint64(4 * runtime.GOMAXPROCS(0)))
	if n < 64 {
		n = 64
	}
	if n > maxStripes {
		n = maxStripes
	}
	return n
}

// effectiveStripeMask is min(physical, buckets) - 1: the stripe
// count may never exceed the bucket count or chains would mix
// stripes.
func effectiveStripeMask(physical int, buckets uint64) uint64 {
	n := uint64(physical)
	if buckets < n {
		n = buckets
	}
	return n - 1
}

// init sizes the physical array and sets the effective mask for the
// initial bucket count.
func (s *stripeSet) init(physical uint64, buckets uint64) {
	s.locks = make([]stripeLock, physical)
	s.mask.Store(effectiveStripeMask(len(s.locks), buckets))
}

// lockHash acquires the stripe covering hash h and returns it. The
// caller unlocks it. On return the table's bucket array and stripe
// mask are frozen until the stripe is released.
func (t *Table[K, V]) lockHash(h uint64) *stripeLock {
	for {
		m := t.stripes.mask.Load()
		s := &t.stripes.locks[h&m]
		s.mu.Lock()
		if t.stripes.mask.Load() == m {
			return s
		}
		// A resize boundary crossed between the mask read and the
		// lock: the stripe we hold may no longer cover h. Retry.
		s.mu.Unlock()
	}
}

// lockHash2 acquires the stripe(s) covering two hashes in ascending
// index order (Move needs both chains). b is nil when one stripe
// covers both.
func (t *Table[K, V]) lockHash2(h1, h2 uint64) (a, b *stripeLock) {
	for {
		m := t.stripes.mask.Load()
		i1, i2 := h1&m, h2&m
		if i1 == i2 {
			s := &t.stripes.locks[i1]
			s.mu.Lock()
			if t.stripes.mask.Load() == m {
				return s, nil
			}
			s.mu.Unlock()
			continue
		}
		if i1 > i2 {
			i1, i2 = i2, i1
		}
		s1, s2 := &t.stripes.locks[i1], &t.stripes.locks[i2]
		s1.mu.Lock()
		s2.mu.Lock()
		if t.stripes.mask.Load() == m {
			return s1, s2
		}
		s2.mu.Unlock()
		s1.mu.Unlock()
	}
}

// lockAllStripes acquires every physical stripe in ascending order.
// Only resize uses it, for the array-construction/publish phases and
// for stripe-mask changes.
func (t *Table[K, V]) lockAllStripes() {
	for i := range t.stripes.locks {
		t.stripes.locks[i].mu.Lock()
	}
}

// unlockAllStripes releases every physical stripe.
func (t *Table[K, V]) unlockAllStripes() {
	for i := range t.stripes.locks {
		t.stripes.locks[i].mu.Unlock()
	}
}

// Stripes returns the physical writer-stripe count (the effective
// count is min(Stripes, Buckets)).
func (t *Table[K, V]) Stripes() int { return len(t.stripes.locks) }
