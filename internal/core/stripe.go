package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rphash/internal/hashfn"
	"rphash/internal/obs"
)

// Writer-side striped locking.
//
// The paper serializes every mutation on one per-table mutex; this
// file replaces that mutex with an array of writer locks ("stripes")
// so writers to different buckets proceed in parallel while the
// read side stays exactly the paper's: wait-free, lock-free,
// retry-free, never aware of stripes at all.
//
// The scheme rests on one structural fact: a chain never mixes
// stripes. The stripe of a key is its hash masked by the effective
// stripe mask, and the effective stripe count is kept <= the bucket
// count at all times, so every node in bucket b satisfies
// h & stripeMask == b & stripeMask — including mid-resize, where
// chains span a parent bucket and both its children (expansion) or
// two merged siblings (shrink), which differ only in bits ABOVE the
// stripe mask. Locking stripe(h) therefore excludes every writer
// that could touch any pointer on the chain(s) holding h, in every
// intermediate resize state.
//
// Lock order, for deadlock freedom:
//
//   - Point writers hold exactly one stripe.
//   - Move holds two, acquired in ascending index order.
//   - Batch writers hold one at a time, visiting stripes in
//     ascending (sorted) order.
//   - Resize and stripe retunes acquire ALL physical stripes in
//     ascending order for their brief array-swap phases; resize
//     additionally takes exactly one stripe per migration batch
//     during the long unzip phase.
//
// The physical lock array itself is swappable at runtime (SetStripes,
// driven by internal/adapt) the same way the bucket array is: a new
// array is built, published with one atomic pointer store while every
// OLD stripe is held, and the old array is simply garbage afterwards.
// Both the array pointer and the effective mask change only while
// every stripe of the current array is held (resize boundaries and
// retunes, all serialized on resizeMu). A writer therefore locks
// optimistically — load array, read its mask, lock the stripe,
// re-check both — and a failed re-check means a resize boundary or a
// retune crossed between the loads, in which case it retries against
// the new state. While a writer holds any stripe of the current
// array, the array pointer, the mask, and the bucket-array pointer
// are all frozen.
//
// Each stripe also carries two padded telemetry counters — total
// acquisitions and contended acquisitions (a failed TryLock before
// blocking) — the per-stripe contention signal the adapt controller
// samples to decide when the array should grow or shrink. The
// counters live on the stripe's own cache line, which the acquiring
// writer owns anyway, so maintaining them costs no extra coherence
// traffic. They are telemetry, not accounting: a retune folds the
// old array's sums into a table-level base while stragglers may
// still be ticking, so totals can be off by a handful of events.

// maxStripes caps the physical stripe count: past a few per core,
// more stripes only add memory (64 B each) without reducing
// collisions meaningfully.
const maxStripes = 256

// stripeCacheLine pads each lock to its own cache line so writers on
// different stripes never false-share.
const stripeCacheLine = 64

// stripeLock is one padded writer lock plus its contention telemetry.
type stripeLock struct {
	mu sync.Mutex
	// acquires counts stripe acquisitions by writers (lockHash,
	// lockHash2, batch writers; resize's all-stripes sweeps are
	// excluded as maintenance noise). contended counts the subset
	// that blocked: a TryLock that failed before falling back to
	// Lock. contended/acquires is the stripe's contention rate.
	acquires  atomic.Uint64
	contended atomic.Uint64
	_         [stripeCacheLine - 8 - 16]byte //nolint:unused // layout padding
}

// lockContended acquires the stripe's mutex, counting the acquisition
// and whether it had to block. When an observer is wired (hist
// non-nil), the contended branch — and only that branch — also times
// its wait into the stripe-acquire histogram, so the uncontended fast
// path pays exactly one nil compare for the instrumentation. hint
// picks the histogram's counter bank (callers pass the stripe index).
func (s *stripeLock) lockContended(hist *obs.Histogram, hint int) {
	if !s.mu.TryLock() {
		s.contended.Add(1)
		if hist != nil {
			t0 := time.Now()
			s.mu.Lock()
			hist.RecordSince(hint, t0)
		} else {
			s.mu.Lock()
		}
	}
	s.acquires.Add(1)
}

// stripeArray is one immutable-size writer-lock array plus the
// effective mask. The table swaps whole arrays on retune, exactly
// like bucket arrays on resize; the mask travels with the array so a
// writer that loads an array can never observe a mask that indexes
// out of it.
type stripeArray struct {
	locks []stripeLock
	// mask is the effective stripe mask: min(len(locks), buckets)-1,
	// except mid-unzip where it stays at parent-bucket granularity.
	// Mutated only with every stripe of THIS array held.
	mask atomic.Uint64
}

// stripeSet is a table's current writer-lock array.
type stripeSet struct {
	arr atomic.Pointer[stripeArray]
}

// defaultStripeCount sizes the physical stripe array: a few stripes
// per core's worth of writer parallelism, power of two, clamped to
// [64, maxStripes]. The floor is deliberately generous — 64 padded
// locks are 4 KB, and measurements show small stripe arrays (2–4
// lines indexed by low hash bits) can alias badly in the cache while
// 64+ run at single-mutex speed even single-threaded.
func defaultStripeCount() uint64 {
	n := hashfn.NextPowerOfTwo(uint64(4 * runtime.GOMAXPROCS(0)))
	if n < 64 {
		n = 64
	}
	if n > maxStripes {
		n = maxStripes
	}
	return n
}

// clampStripes rounds a requested physical stripe count to a power of
// two in [1, maxStripes] — the one normalization shared by the
// WithStripes option and the runtime SetStripes retune.
func clampStripes(n int) uint64 {
	if n < 1 {
		n = 1
	}
	s := hashfn.NextPowerOfTwo(uint64(n))
	if s > maxStripes {
		s = maxStripes
	}
	return s
}

// effectiveStripeMask is min(physical, buckets) - 1: the stripe
// count may never exceed the bucket count or chains would mix
// stripes.
func effectiveStripeMask(physical int, buckets uint64) uint64 {
	n := uint64(physical)
	if buckets < n {
		n = buckets
	}
	return n - 1
}

// newStripeArray builds a lock array of `physical` stripes with the
// effective mask for `buckets`.
func newStripeArray(physical uint64, buckets uint64) *stripeArray {
	a := &stripeArray{locks: make([]stripeLock, physical)}
	a.mask.Store(effectiveStripeMask(len(a.locks), buckets))
	return a
}

// init installs the initial lock array.
func (s *stripeSet) init(physical uint64, buckets uint64) {
	s.arr.Store(newStripeArray(physical, buckets))
}

// lockHash acquires the stripe covering hash h and returns it. The
// caller unlocks it. On return the table's bucket array, stripe
// array, and stripe mask are frozen until the stripe is released.
func (t *Table[K, V]) lockHash(h uint64) *stripeLock {
	for {
		a := t.stripes.arr.Load()
		m := a.mask.Load()
		s := &a.locks[h&m]
		s.lockContended(t.stripeWaitHist(), int(h&m))
		if t.stripes.arr.Load() == a && a.mask.Load() == m {
			return s
		}
		// A resize boundary or stripe retune crossed between the
		// loads and the lock: the stripe we hold may no longer cover
		// h (or may belong to a retired array). Retry.
		s.mu.Unlock()
	}
}

// lockHash2 acquires the stripe(s) covering two hashes in ascending
// index order (Move needs both chains). b is nil when one stripe
// covers both.
func (t *Table[K, V]) lockHash2(h1, h2 uint64) (a, b *stripeLock) {
	for {
		arr := t.stripes.arr.Load()
		m := arr.mask.Load()
		i1, i2 := h1&m, h2&m
		if i1 == i2 {
			s := &arr.locks[i1]
			s.lockContended(t.stripeWaitHist(), int(i1))
			if t.stripes.arr.Load() == arr && arr.mask.Load() == m {
				return s, nil
			}
			s.mu.Unlock()
			continue
		}
		if i1 > i2 {
			i1, i2 = i2, i1
		}
		s1, s2 := &arr.locks[i1], &arr.locks[i2]
		s1.lockContended(t.stripeWaitHist(), int(i1))
		s2.lockContended(t.stripeWaitHist(), int(i2))
		if t.stripes.arr.Load() == arr && arr.mask.Load() == m {
			return s1, s2
		}
		s2.mu.Unlock()
		s1.mu.Unlock()
	}
}

// lockAll acquires every stripe of array a in ascending order. Only
// resize and retune use it (both hold resizeMu, under which the
// current array cannot change), for array-construction/publish phases
// and for mask or array swaps. Maintenance sweeps are not counted in
// the contention telemetry.
func (t *Table[K, V]) lockAll(a *stripeArray) {
	for i := range a.locks {
		a.locks[i].mu.Lock()
	}
}

// unlockAll releases every stripe of array a.
func (t *Table[K, V]) unlockAll(a *stripeArray) {
	for i := range a.locks {
		a.locks[i].mu.Unlock()
	}
}

// Stripes returns the physical writer-stripe count (the effective
// count is min(Stripes, Buckets)).
func (t *Table[K, V]) Stripes() int { return len(t.stripes.arr.Load().locks) }

// EffectiveStripes returns the number of stripes writers currently
// hash across: min(Stripes, Buckets), held at parent granularity for
// the duration of an expansion's unzip.
func (t *Table[K, V]) EffectiveStripes() int {
	return int(t.stripes.arr.Load().mask.Load() + 1)
}

// ContentionCounters returns the cumulative stripe-lock telemetry:
// total writer stripe acquisitions and how many of them blocked
// (failed a TryLock first). The adapt controller samples the pair
// and acts on the contended/acquires rate between samples.
//
// Totals carry across retunes: each retune folds the retired array's
// sums into a table-level base. The fold and the array publish are
// bracketed by a seqlock (retuneSeq) so a reader can never pair the
// folded base with the still-published old array — which would
// double-count the array's whole history and make the next read
// appear to go backwards (underflowing every delta-based consumer).
// Readers overlapping a retune spin for its brief all-stripes
// window. The counters remain telemetry-grade at the edges: a
// contended.Add from a writer blocking DURING the fold can land
// after its stripe was summed, losing a handful of events — never a
// regression of the running total.
func (t *Table[K, V]) ContentionCounters() (acquires, contended uint64) {
	for {
		v := t.stats.retuneSeq.Load()
		if v&1 != 0 {
			runtime.Gosched() // retune mid-swap; its window is microseconds
			continue
		}
		acquires = t.stats.stripeAcquiresBase.Load()
		contended = t.stats.stripeContendedBase.Load()
		a := t.stripes.arr.Load()
		for i := range a.locks {
			acquires += a.locks[i].acquires.Load()
			contended += a.locks[i].contended.Load()
		}
		if t.stats.retuneSeq.Load() == v {
			return acquires, contended
		}
	}
}

// SetStripes retunes the physical writer-stripe count at runtime
// (rounded to a power of two, clamped to [1, 256] like WithStripes),
// reporting whether the array changed. The swap follows exactly the
// bucket-array discipline: a new lock array is built, published with
// one atomic store while every stripe of the OLD array is held — so
// no writer holds any chain coverage across the transition — and the
// old array becomes garbage. Writers blocked on an old stripe wake,
// fail their re-check, and retry against the new array.
//
// Retunes serialize with resizes on resizeMu, so the effective-mask
// invariants hold unconditionally: a retune can never interleave
// with an unzip window, and the new mask is min(new physical,
// buckets)-1 computed under all stripes. SetStripes blocks behind an
// in-flight resize and then applies; TrySetStripes is the
// non-blocking form control loops use.
func (t *Table[K, V]) SetStripes(n int) bool {
	t.resizeMu.Lock()
	defer t.resizeMu.Unlock()
	return t.setStripesLocked(clampStripes(n))
}

// TrySetStripes is SetStripes except it gives up (returning false)
// when a resize currently holds the maintenance lock, instead of
// parking for the resize's full grace-period-dominated duration. The
// adapt controller retunes through this from its sampling loop,
// which must stay live during resizes to keep adjusting the unzip
// migration fan-out; a skipped retune simply lands on a later sample.
func (t *Table[K, V]) TrySetStripes(n int) bool {
	if !t.resizeMu.TryLock() {
		return false // resize in flight; retry on a later sample
	}
	defer t.resizeMu.Unlock()
	return t.setStripesLocked(clampStripes(n))
}

// setStripesLocked swaps the stripe array; the caller holds resizeMu.
func (t *Table[K, V]) setStripesLocked(want uint64) bool {
	old := t.stripes.arr.Load()
	if uint64(len(old.locks)) == want {
		return false
	}
	t.lockAll(old)
	t.resizeEpoch.Add(1) // odd: stripe swap in progress (CAS fast path falls back)
	// Fold the retiring array's telemetry into the table-level base
	// so ContentionCounters stays monotonic across the swap. The
	// seqlock (odd = swap in progress) keeps readers from pairing
	// the folded base with the old array.
	t.stats.retuneSeq.Add(1)
	var acq, con uint64
	for i := range old.locks {
		acq += old.locks[i].acquires.Load()
		con += old.locks[i].contended.Load()
	}
	t.stats.stripeAcquiresBase.Add(acq)
	t.stats.stripeContendedBase.Add(con)
	t.stripes.arr.Store(newStripeArray(want, t.eng.bucketCount()))
	t.stats.retuneSeq.Add(1)
	t.resizeEpoch.Add(1) // even again: fast-path windows spanning the swap re-validate
	t.unlockAll(old)
	t.stats.retunes.Add(1)
	t.obsEvent(obs.EvStripeRetune, int64(len(old.locks)), int64(want), 0)
	return true
}
