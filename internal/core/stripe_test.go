package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStripesOptionShapes pins the option plumbing: explicit counts
// round to powers of two within [1, maxStripes], and the default is
// a power of two in range.
func TestStripesOptionShapes(t *testing.T) {
	for _, tc := range []struct {
		give, want int
	}{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {256, 256}, {100000, maxStripes}, {-3, 1},
	} {
		tbl := NewUint64[int](WithStripes(tc.give))
		if got := tbl.Stripes(); got != tc.want {
			t.Errorf("WithStripes(%d): Stripes() = %d, want %d", tc.give, got, tc.want)
		}
		tbl.Close()
	}
	tbl := NewUint64[int]()
	defer tbl.Close()
	s := tbl.Stripes()
	if s < 1 || s > maxStripes || s&(s-1) != 0 {
		t.Fatalf("default Stripes() = %d, want a power of two in [1, %d]", s, maxStripes)
	}
	if st := tbl.Stats(); st.Stripes != s {
		t.Fatalf("Stats().Stripes = %d, want %d", st.Stripes, s)
	}
}

// TestEffectiveMaskTracksBuckets: the effective stripe mask must
// never exceed buckets-1 (or chains would mix stripes), and must
// recover as the table grows back.
func TestEffectiveMaskTracksBuckets(t *testing.T) {
	tbl := NewUint64[int](WithStripes(64), WithInitialBuckets(256))
	defer tbl.Close()
	check := func(wantBuckets uint64) {
		t.Helper()
		m := tbl.stripes.arr.Load().mask.Load()
		want := effectiveStripeMask(64, wantBuckets)
		if m != want {
			t.Fatalf("at %d buckets: mask = %d, want %d", wantBuckets, m, want)
		}
	}
	check(256)
	fill(tbl, 100)
	tbl.Resize(4) // below the stripe count: mask must shrink with it
	check(4)
	verifyAll(t, tbl, 100)
	tbl.Resize(1)
	check(1)
	verifyAll(t, tbl, 100)
	tbl.Resize(512)
	check(512)
	verifyAll(t, tbl, 100)
}

// TestTortureStripedWritersAutoAndExplicitResize is the write-write
// torture test for per-bucket locking: many concurrent writers on
// one table, auto-resize triggering underneath them, and a goroutine
// issuing explicit Resizes across the stripe-count boundary — all
// three lock choreographies (point stripe, batch sorted-stripe,
// resize all-stripes + per-batch) colliding. Run under -race.
//
// Invariants asserted throughout and at the end:
//   - stable keys (written once, never touched again) are always
//     found with their exact value;
//   - absent keys (a range never written) are never found;
//   - every writer's final write to its private slice is the value
//     read back afterwards (no lost updates between stripes);
//   - structural invariants hold (home reachability, counts).
func TestTortureStripedWritersAutoAndExplicitResize(t *testing.T) {
	tbl := NewUint64[int](
		WithInitialBuckets(64),
		WithStripes(16),
		WithPolicy(Policy{MaxLoad: 2, MinLoad: 0.25, MinBuckets: 8}),
	)
	defer tbl.Close()

	const (
		stable      = 512
		absentBase  = uint64(1) << 40
		volatileLen = uint64(2048)
		writers     = 8
	)
	fill(tbl, stable)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var stableMisses, absentHits atomic.Int64

	// Readers: stable keys must always be present, absent keys never.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := tbl.NewReadHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(stable))
				if v, ok := h.Get(k); !ok || v != int(k) {
					stableMisses.Add(1)
				}
				if _, ok := h.Get(absentBase + uint64(rng.Intn(1<<20))); ok {
					absentHits.Add(1)
				}
			}
		}(int64(g + 1))
	}

	// Writers: each churns a private volatile range with every write
	// path (point, swap, batch), so distinct-key updates exercise
	// distinct stripes concurrently.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			base := (id + 1) << 24
			rng := rand.New(rand.NewSource(int64(id) + 77))
			bks := make([]uint64, 16)
			bvs := make([]int, 16)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := base + uint64(rng.Intn(int(volatileLen)))
				switch rng.Intn(5) {
				case 0:
					tbl.Set(k, int(k))
				case 1:
					if old, ok := tbl.Swap(k, int(k)); ok && old != int(k) {
						t.Errorf("Swap(%d) displaced %d, want %d", k, old, k)
						return
					}
				case 2:
					tbl.Delete(k)
				case 3:
					for i := range bks {
						bks[i] = base + uint64(rng.Intn(int(volatileLen)))
						bvs[i] = int(bks[i])
					}
					tbl.SetBatch(bks, bvs)
				case 4:
					for i := range bks {
						bks[i] = base + uint64(rng.Intn(int(volatileLen)))
					}
					tbl.DeleteBatch(bks)
				}
			}
		}(uint64(w))
	}

	// Explicit resizer: jump across the stripe-count boundary in both
	// directions so the effective mask rises and falls mid-churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sizes := []uint64{8, 1024, 64, 4096, 16}
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			tbl.Resize(sizes[i%len(sizes)])
			i++
		}
	}()

	time.Sleep(1500 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := stableMisses.Load(); n != 0 {
		t.Fatalf("%d stable-key lookups missed during striped-writer churn", n)
	}
	if n := absentHits.Load(); n != 0 {
		t.Fatalf("%d absent-key lookups hit during striped-writer churn", n)
	}
	for i := uint64(0); i < stable; i++ {
		if v, ok := tbl.Get(i); !ok || v != int(i) {
			t.Fatalf("stable key %d = %d,%v after churn", i, v, ok)
		}
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSwapLostUpdateFreedom: N writers hammer ONE shared key with
// Swap, each publishing distinguishable tokens. Swap's contract under
// per-stripe locking is that the read-out and replacement are atomic
// per key, so the table's value history forms a single chain: every
// published token must be displaced exactly once — by exactly one
// later Swap — or survive as the final value. A lost update would
// surface as a token displaced twice (two Swaps observed the same
// old value) and another token never displaced. internal/cache's
// cost accounting is built on exactly this property.
func TestSwapLostUpdateFreedom(t *testing.T) {
	tbl := NewUint64[int](
		WithInitialBuckets(16),
		WithPolicy(Policy{MaxLoad: 2, MinLoad: 0.25, MinBuckets: 8}),
	)
	defer tbl.Close()

	const (
		writers   = 8
		perWriter = 5000
		sharedKey = uint64(42)
	)

	// Background churn so the shared key's bucket moves between
	// chains while the Swaps race.
	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tbl.Set(uint64(1000+i%500), i)
			if i%100 == 0 {
				tbl.ExpandOnce()
				tbl.ShrinkOnce()
			}
		}
	}()

	displaced := make([][]int, writers)
	var firstInserts atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			mine := make([]int, 0, perWriter)
			for i := 0; i < perWriter; i++ {
				token := id*perWriter + i + 1 // nonzero, globally unique
				old, replaced := tbl.Swap(sharedKey, token)
				if !replaced {
					firstInserts.Add(1)
					continue
				}
				mine = append(mine, old)
			}
			displaced[id] = mine
		}(w)
	}
	wg.Wait()
	close(stop)
	churnWG.Wait()

	if n := firstInserts.Load(); n != 1 {
		t.Fatalf("%d Swaps observed an absent key; exactly 1 (the first) may", n)
	}
	final, ok := tbl.Get(sharedKey)
	if !ok {
		t.Fatal("shared key absent after the Swap storm")
	}

	seen := make(map[int]int, writers*perWriter)
	total := 0
	for _, mine := range displaced {
		for _, tok := range mine {
			seen[tok]++
			total++
		}
	}
	if seen[final] != 0 {
		t.Fatalf("final value %d was also displaced: a Swap was lost", final)
	}
	for tok, n := range seen {
		if n != 1 {
			t.Fatalf("token %d displaced %d times: concurrent Swaps observed the same old value", tok, n)
		}
	}
	// Chain accounting: every swap's token left the table exactly
	// once except the final survivor.
	if want := writers*perWriter - 1; total != want {
		t.Fatalf("displaced-token count = %d, want %d (one token per Swap minus the survivor)",
			total, want)
	}
}

// TestBatchWritesAcrossStripeBoundary: batch writers grouped under a
// stale stripe mask must still land correctly when explicit resizes
// move the mask mid-batch (the batchWriter re-locks under the live
// mask per key).
func TestBatchWritesAcrossStripeBoundary(t *testing.T) {
	tbl := NewUint64[int](WithInitialBuckets(512), WithStripes(64))
	defer tbl.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tbl.Resize(2) // mask 1
			tbl.Resize(1024)
		}
	}()

	const rounds = 200
	ks := make([]uint64, 64)
	vs := make([]int, 64)
	for r := 0; r < rounds; r++ {
		for i := range ks {
			ks[i] = uint64(r*len(ks) + i)
			vs[i] = int(ks[i])
		}
		if ins := tbl.SetBatch(ks, vs); ins != len(ks) {
			t.Fatalf("round %d: SetBatch inserted %d, want %d", r, ins, len(ks))
		}
		if rem := tbl.DeleteBatch(ks[:32]); rem != 32 {
			t.Fatalf("round %d: DeleteBatch removed %d, want 32", r, rem)
		}
	}
	close(stop)
	wg.Wait()

	for r := 0; r < rounds; r++ {
		for i := 32; i < 64; i++ {
			k := uint64(r*64 + i)
			if v, ok := tbl.Get(k); !ok || v != int(k) {
				t.Fatalf("Get(%d) = %d,%v after batch churn", k, v, ok)
			}
		}
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGrowBackpressureBoundsLoad: striped writers no longer block
// for a whole resize, so a saturating writer could outrun background
// expansion and drive the load factor arbitrarily high (observed as
// a death spiral on a loaded box: longer chains -> more unzip passes
// -> slower resizes -> longer chains). The backpressure path in
// maybeAutoResize must bound the overshoot: any write observing load
// above growBackpressureFactor x MaxLoad performs the resize
// synchronously, so a single writer can never leave the table beyond
// that band.
func TestGrowBackpressureBoundsLoad(t *testing.T) {
	const maxLoad = 2.0
	tbl := NewUint64[int](
		WithInitialBuckets(64),
		WithPolicy(Policy{MaxLoad: maxLoad, MinBuckets: 64}),
	)
	defer tbl.Close()

	// Saturating fill, as fast as one goroutine can go. Background
	// readers keep grace periods honest (non-trivial Synchronize).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := tbl.NewReadHandle()
			defer h.Close()
			var k uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				k++
				h.Get(k % 100000)
			}
		}()
	}
	const n = 100_000
	for i := uint64(0); i < n; i++ {
		tbl.Set(i, int(i))
	}
	close(stop)
	wg.Wait()

	load := float64(tbl.Len()) / float64(tbl.Buckets())
	if limit := growBackpressureFactor*maxLoad + 1; load > limit {
		t.Fatalf("load factor %.1f after saturating fill exceeds the backpressure band %.1f (buckets=%d len=%d)",
			load, limit, tbl.Buckets(), tbl.Len())
	}
	for i := uint64(0); i < n; i += 997 {
		if v, ok := tbl.Get(i); !ok || v != int(i) {
			t.Fatalf("Get(%d) = %d,%v after backpressured fill", i, v, ok)
		}
	}
}

// TestDeleteDuringUnzipPatchesSibling is the regression test for the
// one genuinely new hazard of per-bucket locking: mid-unzip, a node
// can be reachable from BOTH children of its parent bucket, and a
// delete that unlinks it from only its home chain would leave the
// sibling chain running through the victim — whose next pointer is
// severed after a grace period, truncating the sibling chain and
// losing every element behind it. The deterministic schedule below
// parks an expansion after each unzip pass (test hook), deletes keys
// while chains are provably zipped, and then verifies nothing else
// vanished.
func TestDeleteDuringUnzipPatchesSibling(t *testing.T) {
	// Identity hash, 1 bucket -> alternating chain, worst-case zip.
	tbl := New[uint64, int](func(k uint64) uint64 { return k }, WithInitialBuckets(1))
	defer tbl.Close()
	const n = 64
	for i := uint64(0); i < n; i++ {
		tbl.Set(i, int(i))
	}

	deleted := make(map[uint64]bool)
	next := uint64(1) // delete odd keys, mid-chain positions
	tbl.testHookAfterUnzipPass = func(int) {
		// Chains are mid-unzip here (zipped suffixes). Delete a few
		// keys and force the retirement to complete so a missing
		// sibling patch would truncate chains NOW.
		for j := 0; j < 3 && next < n; j++ {
			if tbl.Delete(next) {
				deleted[next] = true
			}
			next += 2
		}
		tbl.Domain().Barrier() // run the deferred next-severing
	}
	for tbl.Buckets() < 64 {
		tbl.ExpandOnce()
	}
	tbl.testHookAfterUnzipPass = nil

	if len(deleted) == 0 {
		t.Skip("no unzip passes ran; nothing exercised")
	}
	for i := uint64(0); i < n; i++ {
		v, ok := tbl.Get(i)
		if deleted[i] {
			if ok {
				t.Fatalf("deleted key %d still present", i)
			}
			continue
		}
		if !ok || v != int(i) {
			t.Fatalf("surviving key %d = %d,%v — sibling chain truncated by mid-unzip delete", i, v, ok)
		}
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}
