package core

import "testing"

func TestSwap(t *testing.T) {
	tbl := NewUint64[string]()
	defer tbl.Close()

	if old, replaced := tbl.Swap(1, "a"); replaced {
		t.Fatalf("Swap on empty table replaced %q", old)
	}
	if old, replaced := tbl.Swap(1, "b"); !replaced || old != "a" {
		t.Fatalf("Swap = %q, %v; want a, true", old, replaced)
	}
	if v, ok := tbl.Get(1); !ok || v != "b" {
		t.Fatalf("Get after Swap = %q, %v", v, ok)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tbl.Len())
	}
}

func TestCompareAndDelete(t *testing.T) {
	tbl := NewUint64[string]()
	defer tbl.Close()
	tbl.Set(1, "keep")

	if _, ok := tbl.CompareAndDelete(2, nil); ok {
		t.Fatal("removed an absent key")
	}
	if v, ok := tbl.CompareAndDelete(1, func(v string) bool { return v == "other" }); ok {
		t.Fatalf("predicate rejected but entry removed (%q)", v)
	}
	if !tbl.Contains(1) {
		t.Fatal("rejected CompareAndDelete still removed the entry")
	}
	if v, ok := tbl.CompareAndDelete(1, func(v string) bool { return v == "keep" }); !ok || v != "keep" {
		t.Fatalf("CompareAndDelete = %q, %v", v, ok)
	}
	if tbl.Contains(1) || tbl.Len() != 0 {
		t.Fatal("entry survived accepted CompareAndDelete")
	}
}

// TestCompareAndDeleteExactEntry is the sweeper/evictor use case:
// identity-matched removal must not delete a value refreshed since it
// was sampled.
func TestCompareAndDeleteExactEntry(t *testing.T) {
	type box struct{ v int }
	tbl := NewUint64[*box]()
	defer tbl.Close()

	sampled := &box{1}
	tbl.Set(1, sampled)
	tbl.Set(1, &box{2}) // refresh races ahead of the sweeper

	if _, ok := tbl.CompareAndDelete(1, func(cur *box) bool { return cur == sampled }); ok {
		t.Fatal("identity match removed a refreshed entry")
	}
	if v, ok := tbl.Get(1); !ok || v.v != 2 {
		t.Fatalf("refreshed entry lost: %+v, %v", v, ok)
	}
}
