// Package core implements the paper's primary contribution: a
// resizable, open-chaining hash table whose lookups are completely
// synchronization-free ("relativistic") even while the table expands
// or shrinks underneath them.
//
// The consistency contract, verbatim from the paper: a reader
// traversing a hash bucket always observes every element that belongs
// to that bucket; observing extra (foreign) elements is harmless
// because readers compare keys anyway. Every mutation — insert,
// delete, move, zip-shrink, unzip-expand — preserves that superset
// invariant at every intermediate step, using only pointer
// publication and wait-for-readers from internal/rcu.
//
// Writers serialize per bucket, not per table: each mutation locks
// only the stripe (see stripe.go) covering the chain its key hashes
// to, so writers to different buckets proceed in parallel. Resizes
// acquire every stripe briefly to swap the bucket array and then one
// stripe per migration batch for the long unzip phase, preserving
// the paper's grace-period choreography. Readers never take any
// lock. (The paper's evaluation serializes all writers on one mutex;
// construct with WithStripes(1) to reproduce that baseline.)
package core

import (
	"sync"
	"sync/atomic"

	"rphash/internal/hashfn"
	"rphash/internal/rcu"
)

// node is a chain element. hash and key are immutable after
// publication; val is swapped atomically by Set/Replace so readers
// always observe a complete value.
type node[K comparable, V any] struct {
	next atomic.Pointer[node[K, V]]
	val  atomic.Pointer[V]
	hash uint64
	key  K
}

// buckets is one immutable-size bucket array. The table swaps whole
// arrays on resize; readers capture one array pointer per operation
// and use its mask consistently throughout the traversal.
type buckets[K comparable, V any] struct {
	mask uint64 // len(slot)-1
	slot []atomic.Pointer[node[K, V]]
}

func newBuckets[K comparable, V any](n uint64) *buckets[K, V] {
	return &buckets[K, V]{
		mask: n - 1,
		slot: make([]atomic.Pointer[node[K, V]], n),
	}
}

func (b *buckets[K, V]) size() uint64 { return b.mask + 1 }

// Table is a resizable relativistic hash table. Create with New; the
// zero value is not usable.
type Table[K comparable, V any] struct {
	ht   atomic.Pointer[buckets[K, V]]
	dom  *rcu.Domain
	hash func(K) uint64

	// stripes is the per-bucket writer-lock array (see stripe.go).
	// Point mutations hold the one stripe covering their key's
	// chain; resizes coordinate through all of them.
	stripes stripeSet

	// resizeMu serializes resize operations (explicit Resize,
	// ExpandOnce/ShrinkOnce, and the auto-resize goroutines) with
	// each other. Writers never take it; resize phases synchronize
	// with writers through the stripes.
	resizeMu sync.Mutex

	// unzipParent is nonzero during an expansion's unzip window and
	// holds the PARENT (pre-doubling) bucket count. While set,
	// chains may be zipped — a node can be reachable from both
	// child buckets of its parent — so unlinks must also patch the
	// sibling chain (see unlinkLocked). Mutated only with every
	// stripe held; read by writers under their stripe.
	unzipParent atomic.Uint64

	count atomic.Int64

	// batchPool recycles the stripe-sort workspaces of the batched
	// write paths (batch.go).
	batchPool sync.Pool

	ownDom bool
	policy Policy
	grow   resizeTrigger
	shrink resizeTrigger

	// unzipPerCutGrace disables the paper's batching of unzip cuts:
	// instead of one grace period per pass (covering one cut in every
	// parent chain), a grace period follows every individual cut.
	// Exists for the ablation benchmarks; always false in normal use.
	unzipPerCutGrace bool

	stats tableStats

	// testHookAfterUnzipPass, when set (tests only), runs after each
	// unzip pass's grace period, with resizeMu held but no stripes,
	// so tests can assert the mid-resize reachability invariant in
	// exactly the states concurrent readers and writers observe.
	testHookAfterUnzipPass func(pass int)
}

// Policy controls automatic resizing. A zero MaxLoad disables
// auto-expansion; a zero MinLoad disables auto-shrinking.
type Policy struct {
	// MaxLoad is the elements-per-bucket ratio above which the table
	// schedules a background expansion.
	MaxLoad float64
	// MinLoad is the ratio below which the table schedules a
	// background shrink (never below MinBuckets).
	MinLoad float64
	// MinBuckets is the floor for shrinking and the default initial
	// size. Rounded up to a power of two.
	MinBuckets uint64
}

type resizeTrigger struct {
	pending atomic.Bool
}

type config struct {
	dom         *rcu.Domain
	initial     uint64
	stripes     uint64
	policy      Policy
	perCutGrace bool
}

// Option configures a Table at construction.
type Option func(*config)

// WithDomain shares an existing RCU domain instead of creating one.
// Tables sharing a domain share grace periods; Close will not close a
// shared domain.
func WithDomain(d *rcu.Domain) Option { return func(c *config) { c.dom = d } }

// WithInitialBuckets sets the initial bucket count (rounded up to a
// power of two, minimum 1).
func WithInitialBuckets(n uint64) Option { return func(c *config) { c.initial = n } }

// WithPolicy installs an automatic resize policy.
func WithPolicy(p Policy) Option { return func(c *config) { c.policy = p } }

// WithStripes sets the physical writer-stripe count (rounded to a
// power of two, clamped to [1, 256]). The default is a few stripes
// per core. WithStripes(1) reproduces the paper's single writer
// mutex — every mutation serializes — which is the ablation baseline
// the striped scheme is measured against. The effective stripe count
// is additionally capped by the bucket count at any moment, so tiny
// tables degrade gracefully toward coarser locking.
func WithStripes(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		s := hashfn.NextPowerOfTwo(uint64(n))
		if s > maxStripes {
			s = maxStripes
		}
		c.stripes = s
	}
}

// WithUnzipGracePerCut disables unzip-cut batching (ablation only):
// every pointer cut gets its own grace period instead of sharing one
// per pass. Resizes become dramatically slower; lookups are
// unaffected. See DESIGN.md §5.3 and the A2 ablation.
func WithUnzipGracePerCut() Option { return func(c *config) { c.perCutGrace = true } }

// DefaultPolicy is a sensible general-purpose auto-resize policy:
// expand beyond 2 elements/bucket, shrink below 0.25, floor of 64
// buckets.
func DefaultPolicy() Policy { return Policy{MaxLoad: 2, MinLoad: 0.25, MinBuckets: 64} }

// New creates a table using hash to map keys to 64-bit hashes. The
// hash must be deterministic for the lifetime of the table.
func New[K comparable, V any](hash func(K) uint64, opts ...Option) *Table[K, V] {
	cfg := config{initial: 64}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.policy.MinBuckets == 0 {
		cfg.policy.MinBuckets = 1
	}
	cfg.policy.MinBuckets = hashfn.NextPowerOfTwo(cfg.policy.MinBuckets)
	if cfg.initial < cfg.policy.MinBuckets {
		cfg.initial = cfg.policy.MinBuckets
	}
	cfg.initial = hashfn.NextPowerOfTwo(cfg.initial)

	if cfg.stripes == 0 {
		cfg.stripes = defaultStripeCount()
	}

	t := &Table[K, V]{hash: hash, policy: cfg.policy, unzipPerCutGrace: cfg.perCutGrace}
	if cfg.dom != nil {
		t.dom = cfg.dom
	} else {
		t.dom = rcu.NewDomain()
		t.ownDom = true
	}
	t.ht.Store(newBuckets[K, V](cfg.initial))
	t.stripes.init(cfg.stripes, cfg.initial)
	return t
}

// NewUint64 creates a table keyed by uint64 using the repository's
// standard integer mix.
func NewUint64[V any](opts ...Option) *Table[uint64, V] {
	return New[uint64, V](func(k uint64) uint64 { return hashfn.Uint64(k, 0) }, opts...)
}

// NewString creates a table keyed by string using seeded FNV-1a with
// an avalanche finalizer.
func NewString[V any](opts ...Option) *Table[string, V] {
	return New[string, V](func(k string) uint64 { return hashfn.String(k, 0) }, opts...)
}

// Domain exposes the table's RCU domain, e.g. for callers that want
// to run multi-lookup read sections or share the domain across
// structures.
func (t *Table[K, V]) Domain() *rcu.Domain { return t.dom }

// Len returns the number of elements (exact with respect to completed
// updates).
func (t *Table[K, V]) Len() int { return int(t.count.Load()) }

// Buckets returns the current bucket count. It may change immediately
// afterwards if a resize is in flight.
func (t *Table[K, V]) Buckets() int { return int(t.ht.Load().size()) }

// Close releases the table's domain if the table created it. The
// table must not be used afterwards.
func (t *Table[K, V]) Close() {
	if t.ownDom {
		t.dom.Close()
	}
}

// bucketFor returns the chain head slot for a hash in array b.
func (b *buckets[K, V]) bucketFor(h uint64) *atomic.Pointer[node[K, V]] {
	return &b.slot[h&b.mask]
}
