// Package core implements the paper's primary contribution: a
// resizable, open-chaining hash table whose lookups are completely
// synchronization-free ("relativistic") even while the table expands
// or shrinks underneath them.
//
// The consistency contract, verbatim from the paper: a reader
// traversing a hash bucket always observes every element that belongs
// to that bucket; observing extra (foreign) elements is harmless
// because readers compare keys anyway. Every mutation — insert,
// delete, move, zip-shrink, unzip-expand — preserves that superset
// invariant at every intermediate step, using only pointer
// publication and wait-for-readers from internal/rcu.
//
// Writers serialize per bucket, not per table: each mutation locks
// at most the stripe (see stripe.go) covering the chain its key
// hashes to, so writers to different buckets proceed in parallel.
// The common write takes no lock at all: pure inserts publish by a
// CAS on the bucket head and validate against the resize epoch
// (tryInsertCAS in update.go, undo via the stripe on mismatch), and
// upserts on existing keys store through a hint located without
// protection and revalidated under the stripe (casHintValid).
// Value-level read-modify-write compare-and-swaps the node's value
// pointer (CompareAndSwapValue), with no lock either. Resizes
// acquire every stripe briefly to swap the bucket array and then one
// stripe per migration batch for the long unzip phase, preserving
// the paper's grace-period choreography; the fast paths stand down
// to the striped route during those windows. Readers never take any
// lock. (The paper's evaluation serializes all writers on one mutex;
// construct with WithStripes(1) to reproduce that baseline, or
// WithCASInsert(false) to pin writes to the striped path.)
package core

import (
	"sync"
	"sync/atomic"

	"rphash/internal/adapt"
	"rphash/internal/hashfn"
	"rphash/internal/obs"
	"rphash/internal/rcu"
)

// node is a chain element. hash and key are immutable after
// publication; val is swapped atomically by Set/Replace so readers
// always observe a complete value.
//
// casState is the lock-free write path's per-node state machine
// (tryInsertCAS in update.go): casCommitted for every node published
// under a stripe, casSpeculative while a fast-path insert is published
// but not yet epoch-validated, casConsumed once a stripe-holding
// writer unlinks the node from the live structure (delete, or move of
// its key). The consumed mark is set unconditionally at every unlink:
// for a still-speculative node it tells the fast-path owner its insert
// took effect before being removed (recovery must not re-insert), and
// for any node it is the dead mark the upsert in-place replace
// revalidates against (casHintValid in update.go).
type node[K comparable, V any] struct {
	next     atomic.Pointer[node[K, V]]
	val      atomic.Pointer[V]
	casState atomic.Uint32
	hash     uint64
	key      K
}

// casState values. The zero value is committed so the striped write
// path never touches the field when publishing.
const (
	casCommitted uint32 = iota
	casSpeculative
	casConsumed
)

// buckets is one immutable-size bucket array. The table swaps whole
// arrays on resize; readers capture one array pointer per operation
// and use its mask consistently throughout the traversal.
type buckets[K comparable, V any] struct {
	mask uint64 // len(slot)-1
	slot []atomic.Pointer[node[K, V]]
}

func newBuckets[K comparable, V any](n uint64) *buckets[K, V] {
	return &buckets[K, V]{
		mask: n - 1,
		slot: make([]atomic.Pointer[node[K, V]], n),
	}
}

func (b *buckets[K, V]) size() uint64 { return b.mask + 1 }

// Table is a resizable relativistic hash table. Create with New; the
// zero value is not usable.
type Table[K comparable, V any] struct {
	// eng is the bucket representation behind the engine seam
	// (engine.go): the relativistic chain engine by default, or the
	// flat cell-group engine via WithEngine. Set once at construction.
	eng engine[K, V]

	// ht is the CHAIN engine's bucket array; it stays nil under other
	// engines (their storage hangs off the engine value), so any
	// chain-only code path reached on a non-chain table fails loudly.
	ht   atomic.Pointer[buckets[K, V]]
	dom  *rcu.Domain
	hash func(K) uint64

	// stripes is the per-bucket writer-lock array (see stripe.go).
	// Point mutations hold the one stripe covering their key's
	// chain; resizes coordinate through all of them.
	stripes stripeSet

	// resizeMu serializes resize operations (explicit Resize,
	// ExpandOnce/ShrinkOnce, and the auto-resize goroutines) with
	// each other. Writers never take it; resize phases synchronize
	// with writers through the stripes.
	resizeMu sync.Mutex

	// resizeEpoch is a seqlock over every all-stripes critical
	// section: stripe retunes (setStripesLocked), shrink publication,
	// and both of an expansion's all-stripes sections (array publish
	// and final mask raise) increment it to odd on entry and back to
	// even on exit. The CAS-insert fast path (tryInsertCAS) reads it
	// before publishing and re-validates it after: an unchanged even
	// value proves no resize or retune captured the bucket array or
	// swapped the stripe array across the publication window, so the
	// lock-free insert could not have been missed by a capture walk.
	resizeEpoch atomic.Uint64

	// noCASInsert disables the CAS-insert fast path (WithCASInsert);
	// pure inserts then always take the striped slow path. Exists for
	// the A7 ablation baseline.
	noCASInsert bool

	// unzipParent is nonzero during an expansion's unzip window and
	// holds the PARENT (pre-doubling) bucket count. While set,
	// chains may be zipped — a node can be reachable from both
	// child buckets of its parent — so unlinks must also patch the
	// sibling chain (see unlinkLocked). Mutated only with every
	// stripe held; read by writers under their stripe.
	unzipParent atomic.Uint64

	// unzipWorkers is the migration fan-out for expansion unzip
	// passes (see SetUnzipWorkers); <= 1 means sequential.
	// unzipBacklog is the number of parent chains the in-flight
	// expansion still has to unzip — the backlog signal the adapt
	// controller sizes the fan-out from.
	unzipWorkers atomic.Int32
	unzipBacklog atomic.Int64

	// ctrl is the table's adapt controller, if maintenance is on
	// (WithAdapt or Maintain). ctrlMu orders Maintain against Close:
	// once ctrlClosed is set no controller can be installed, so a
	// Maintain racing Close can never leak a running controller on a
	// shared-domain table (whose Done channel would never fire).
	ctrlMu     sync.Mutex
	ctrl       *adapt.Controller
	ctrlClosed bool

	count atomic.Int64

	// batchPool recycles the stripe-sort workspaces of the batched
	// write paths (batch.go).
	batchPool sync.Pool

	ownDom bool
	policy Policy
	grow   resizeTrigger
	shrink resizeTrigger

	// unzipPerCutGrace disables the paper's batching of unzip cuts:
	// instead of one grace period per pass (covering one cut in every
	// parent chain), a grace period follows every individual cut.
	// Exists for the ablation benchmarks; always false in normal use.
	unzipPerCutGrace bool

	stats tableStats

	// obsv is the table's observability hub (WithObserver); nil means
	// every instrumentation point reduces to a pointer compare.
	// obsShard tags this table's events and histogram records with its
	// shard index (WithShardID; 0 for unsharded tables).
	obsv     *obs.Observer
	obsShard int

	// migrateStartNS is the wall-clock start (UnixNano) of the
	// in-flight bucket migration, 0 when idle. Stamped by the resize
	// steps under resizeMu; read lock-free by CounterStats to derive
	// the migration's units/sec rate.
	migrateStartNS atomic.Int64

	// testHookAfterUnzipPass, when set (tests only), runs after each
	// unzip pass's grace period, with resizeMu held but no stripes,
	// so tests can assert the mid-resize reachability invariant in
	// exactly the states concurrent readers and writers observe.
	testHookAfterUnzipPass func(pass int)
}

// Policy controls automatic resizing. A zero MaxLoad disables
// auto-expansion; a zero MinLoad disables auto-shrinking.
type Policy struct {
	// MaxLoad is the elements-per-bucket ratio above which the table
	// schedules a background expansion.
	MaxLoad float64
	// MinLoad is the ratio below which the table schedules a
	// background shrink (never below MinBuckets).
	MinLoad float64
	// MinBuckets is the floor for shrinking and the default initial
	// size. Rounded up to a power of two.
	MinBuckets uint64
}

type resizeTrigger struct {
	pending atomic.Bool
}

type config struct {
	dom          *rcu.Domain
	initial      uint64
	stripes      uint64
	policy       Policy
	perCutGrace  bool
	unzipWorkers int
	adapt        *adapt.Config
	obsv         *obs.Observer
	shardID      int
	noCASInsert  bool
	engine       string
}

// Option configures a Table at construction.
type Option func(*config)

// WithDomain shares an existing RCU domain instead of creating one.
// Tables sharing a domain share grace periods; Close will not close a
// shared domain.
func WithDomain(d *rcu.Domain) Option { return func(c *config) { c.dom = d } }

// WithInitialBuckets sets the initial bucket count (rounded up to a
// power of two, minimum 1).
func WithInitialBuckets(n uint64) Option { return func(c *config) { c.initial = n } }

// WithPolicy installs an automatic resize policy.
func WithPolicy(p Policy) Option { return func(c *config) { c.policy = p } }

// WithStripes sets the physical writer-stripe count (rounded to a
// power of two, clamped to [1, 256]). The default is a few stripes
// per core. WithStripes(1) reproduces the paper's single writer
// mutex — every mutation serializes — which is the ablation baseline
// the striped scheme is measured against. The effective stripe count
// is additionally capped by the bucket count at any moment, so tiny
// tables degrade gracefully toward coarser locking.
func WithStripes(n int) Option {
	return func(c *config) { c.stripes = clampStripes(n) }
}

// WithUnzipWorkers sets the initial migration fan-out for expansion
// unzip passes (see SetUnzipWorkers; default 1 = the sequential
// resizer). The adapt controller, when enabled, retunes it at
// runtime from the observed migration backlog.
func WithUnzipWorkers(n int) Option {
	return func(c *config) { c.unzipWorkers = n }
}

// WithAdapt starts an adaptive maintenance controller on the table at
// construction (see internal/adapt): it samples the table's stripe
// contention telemetry, grows or shrinks the writer-stripe array
// under sustained pressure or sustained quiet, and sizes the unzip
// migration fan-out from the live resize backlog. nil leaves
// maintenance off — the core table's default, so benchmarks and
// ablations pin their shape with WithStripes alone. The controller
// stops on Close (and on the RCU domain's Done). Maintain is the
// post-construction form.
func WithAdapt(cfg *adapt.Config) Option {
	return func(c *config) { c.adapt = cfg }
}

// WithObserver wires the table into an observability hub (see
// internal/obs): writer stripe-acquire waits feed o.StripeWait
// (contended acquisitions only), resize/retune lifecycle events feed
// o.Events, and the table's RCU domain reports grace-period wait
// latency into o.GraceWait. nil is the default: all instrumentation
// points compile down to one pointer compare.
func WithObserver(o *obs.Observer) Option { return func(c *config) { c.obsv = o } }

// WithShardID tags the table's observer records with a shard index,
// so a sharded front end (internal/shard) can tell which shard's
// resize or retune produced an event. Meaningless without
// WithObserver.
func WithShardID(n int) Option { return func(c *config) { c.shardID = n } }

// WithCASInsert enables or disables the lock-free write fast path
// (default on): a pure insert whose key is provably absent publishes
// by CAS on the bucket head and epoch-validates instead of locking
// its stripe, and upserts on existing keys locate their node by an
// unlocked hint walk revalidated under the stripe (casHintValid).
// Disabling it pins every write to the striped slow path — the A7
// ablation's "locked" baseline. Lookups and value-level
// CompareAndSwapValue are unaffected either way.
func WithCASInsert(enabled bool) Option {
	return func(c *config) { c.noCASInsert = !enabled }
}

// WithUnzipGracePerCut disables unzip-cut batching (ablation only):
// every pointer cut gets its own grace period instead of sharing one
// per pass. Resizes become dramatically slower; lookups are
// unaffected. See DESIGN.md §5.3 and the A2 ablation.
func WithUnzipGracePerCut() Option { return func(c *config) { c.perCutGrace = true } }

// DefaultPolicy is a sensible general-purpose auto-resize policy:
// expand beyond 2 elements/bucket, shrink below 0.25, floor of 64
// buckets.
func DefaultPolicy() Policy { return Policy{MaxLoad: 2, MinLoad: 0.25, MinBuckets: 64} }

// New creates a table using hash to map keys to 64-bit hashes. The
// hash must be deterministic for the lifetime of the table.
func New[K comparable, V any](hash func(K) uint64, opts ...Option) *Table[K, V] {
	cfg := config{initial: 64}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.policy.MinBuckets == 0 {
		cfg.policy.MinBuckets = 1
	}
	cfg.policy.MinBuckets = hashfn.NextPowerOfTwo(cfg.policy.MinBuckets)
	if cfg.initial < cfg.policy.MinBuckets {
		cfg.initial = cfg.policy.MinBuckets
	}
	cfg.initial = hashfn.NextPowerOfTwo(cfg.initial)

	if cfg.stripes == 0 {
		cfg.stripes = defaultStripeCount()
	}

	t := &Table[K, V]{hash: hash, policy: cfg.policy, unzipPerCutGrace: cfg.perCutGrace}
	t.noCASInsert = cfg.noCASInsert
	t.obsv = cfg.obsv
	t.obsShard = cfg.shardID
	if cfg.dom != nil {
		t.dom = cfg.dom
	} else {
		t.dom = rcu.NewDomain()
		t.ownDom = true
	}
	if cfg.obsv != nil {
		// Idempotent across shards sharing one domain: every table of
		// a sharded map installs the same histogram pointer.
		t.dom.ObserveGraceWaits(&cfg.obsv.GraceWait)
	}
	t.eng = newEngine(t, &cfg)
	t.stripes.init(cfg.stripes, cfg.initial)
	if cfg.unzipWorkers > 1 {
		t.SetUnzipWorkers(cfg.unzipWorkers)
	}
	if cfg.adapt != nil {
		t.Maintain(cfg.adapt)
	}
	return t
}

// Maintain starts (or replaces) the table's adaptive maintenance
// controller with the given configuration, returning it; nil stops
// maintenance. The controller samples stripe contention and the
// unzip backlog on its own goroutine and retunes the stripe array
// and migration fan-out through TrySetStripes/SetUnzipWorkers — see
// internal/adapt for the sampling and hysteresis model. It exits
// promptly on Close via the domain's Done channel. Maintain after
// (or racing) Close installs nothing and returns nil. The previous
// controller is stopped BEFORE its replacement starts, so the
// incoming controller observes the table's restored baseline fan-out
// rather than a transient its predecessor set.
func (t *Table[K, V]) Maintain(cfg *adapt.Config) *adapt.Controller {
	t.ctrlMu.Lock()
	defer t.ctrlMu.Unlock()
	if old := t.ctrl; old != nil {
		t.ctrl = nil
		old.Stop()
	}
	if cfg == nil || t.ctrlClosed {
		return nil
	}
	t.ctrl = adapt.Start(t, cfg, t.dom.Done())
	return t.ctrl
}

// AdaptStats returns the maintenance controller's snapshot; ok is
// false when maintenance is off.
func (t *Table[K, V]) AdaptStats() (adapt.Stats, bool) {
	t.ctrlMu.Lock()
	c := t.ctrl
	t.ctrlMu.Unlock()
	if c == nil {
		return adapt.Stats{}, false
	}
	return c.Stats(), true
}

// NewUint64 creates a table keyed by uint64 using the repository's
// standard integer mix.
func NewUint64[V any](opts ...Option) *Table[uint64, V] {
	return New[uint64, V](func(k uint64) uint64 { return hashfn.Uint64(k, 0) }, opts...)
}

// NewString creates a table keyed by string using seeded FNV-1a with
// an avalanche finalizer.
func NewString[V any](opts ...Option) *Table[string, V] {
	return New[string, V](func(k string) uint64 { return hashfn.String(k, 0) }, opts...)
}

// Domain exposes the table's RCU domain, e.g. for callers that want
// to run multi-lookup read sections or share the domain across
// structures.
func (t *Table[K, V]) Domain() *rcu.Domain { return t.dom }

// Len returns the number of elements (exact with respect to completed
// updates).
func (t *Table[K, V]) Len() int { return int(t.count.Load()) }

// Buckets returns the current bucket count. It may change immediately
// afterwards if a resize is in flight.
func (t *Table[K, V]) Buckets() int { return int(t.eng.bucketCount()) }

// Close stops the table's maintenance controller (if any) and
// releases the domain if the table created it. The table must not be
// used afterwards.
func (t *Table[K, V]) Close() {
	t.ctrlMu.Lock()
	t.ctrlClosed = true
	c := t.ctrl
	t.ctrl = nil
	t.ctrlMu.Unlock()
	if c != nil {
		c.Stop()
	}
	if t.ownDom {
		t.dom.Close()
	}
}

// obsEvent records a lifecycle event when an observer is installed.
// Nil-safe and non-blocking: safe under any stripe or resizeMu.
func (t *Table[K, V]) obsEvent(typ obs.EventType, a, b, c int64) {
	if o := t.obsv; o != nil {
		o.Events.Record(typ, t.obsShard, a, b, c)
	}
}

// stripeWaitHist returns the stripe-acquire wait histogram, or nil
// when observability is off (the common case — one pointer compare).
func (t *Table[K, V]) stripeWaitHist() *obs.Histogram {
	if o := t.obsv; o != nil {
		return &o.StripeWait
	}
	return nil
}

// bucketFor returns the chain head slot for a hash in array b.
func (b *buckets[K, V]) bucketFor(h uint64) *atomic.Pointer[node[K, V]] {
	return &b.slot[h&b.mask]
}
