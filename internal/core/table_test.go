package core

import (
	"fmt"
	"testing"

	"rphash/internal/hashfn"
)

func newT(t testing.TB, opts ...Option) *Table[uint64, int] {
	t.Helper()
	tbl := NewUint64[int](opts...)
	t.Cleanup(tbl.Close)
	return tbl
}

func TestEmptyTable(t *testing.T) {
	tbl := newT(t)
	if tbl.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tbl.Len())
	}
	if _, ok := tbl.Get(42); ok {
		t.Fatal("Get on empty table returned true")
	}
	if tbl.Delete(42) {
		t.Fatal("Delete on empty table returned true")
	}
	if tbl.Contains(0) {
		t.Fatal("Contains(0) on empty table")
	}
	if got := tbl.Keys(); len(got) != 0 {
		t.Fatalf("Keys = %v, want empty", got)
	}
}

func TestSetGet(t *testing.T) {
	tbl := newT(t)
	if !tbl.Set(1, 100) {
		t.Fatal("first Set should report insertion")
	}
	if v, ok := tbl.Get(1); !ok || v != 100 {
		t.Fatalf("Get(1) = %d,%v want 100,true", v, ok)
	}
	if tbl.Set(1, 200) {
		t.Fatal("second Set of same key should report replacement")
	}
	if v, _ := tbl.Get(1); v != 200 {
		t.Fatalf("Get after replace = %d, want 200", v)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tbl.Len())
	}
}

func TestInsertOnlyIfAbsent(t *testing.T) {
	tbl := newT(t)
	if !tbl.Insert(7, 1) {
		t.Fatal("Insert of absent key failed")
	}
	if tbl.Insert(7, 2) {
		t.Fatal("Insert of present key succeeded")
	}
	if v, _ := tbl.Get(7); v != 1 {
		t.Fatalf("Insert overwrote: got %d want 1", v)
	}
}

func TestReplaceOnlyIfPresent(t *testing.T) {
	tbl := newT(t)
	if tbl.Replace(5, 9) {
		t.Fatal("Replace of absent key succeeded")
	}
	tbl.Set(5, 1)
	if !tbl.Replace(5, 9) {
		t.Fatal("Replace of present key failed")
	}
	if v, _ := tbl.Get(5); v != 9 {
		t.Fatalf("value = %d, want 9", v)
	}
}

func TestDelete(t *testing.T) {
	tbl := newT(t)
	for i := uint64(0); i < 100; i++ {
		tbl.Set(i, int(i))
	}
	for i := uint64(0); i < 100; i += 2 {
		if !tbl.Delete(i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tbl.Len() != 50 {
		t.Fatalf("Len = %d, want 50", tbl.Len())
	}
	for i := uint64(0); i < 100; i++ {
		_, ok := tbl.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) = %v, want %v", i, ok, want)
		}
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroValues(t *testing.T) {
	tbl := newT(t)
	tbl.Set(0, 0)
	if v, ok := tbl.Get(0); !ok || v != 0 {
		t.Fatalf("zero key/value roundtrip: %d,%v", v, ok)
	}
}

func TestCollisionChains(t *testing.T) {
	// A constant hash forces every key into one bucket: all chain
	// paths (head/middle/tail operations) get exercised.
	tbl := New[uint64, int](func(uint64) uint64 { return 12345 })
	defer tbl.Close()
	for i := uint64(0); i < 20; i++ {
		tbl.Set(i, int(i*10))
	}
	for i := uint64(0); i < 20; i++ {
		if v, ok := tbl.Get(i); !ok || v != int(i*10) {
			t.Fatalf("collision Get(%d) = %d,%v", i, v, ok)
		}
	}
	if _, ok := tbl.Get(999); ok {
		t.Fatal("absent key found in collision chain")
	}
	// Delete middle, head (most recent insert), tail (first insert).
	for _, k := range []uint64{10, 19, 0} {
		if !tbl.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	if tbl.Len() != 17 {
		t.Fatalf("Len = %d, want 17", tbl.Len())
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStringTable(t *testing.T) {
	tbl := NewString[string]()
	defer tbl.Close()
	tbl.Set("alpha", "a")
	tbl.Set("beta", "b")
	if v, ok := tbl.Get("alpha"); !ok || v != "a" {
		t.Fatalf("Get(alpha) = %q,%v", v, ok)
	}
	if _, ok := tbl.Get("gamma"); ok {
		t.Fatal("absent string key found")
	}
}

func TestRange(t *testing.T) {
	tbl := newT(t)
	want := map[uint64]int{}
	for i := uint64(0); i < 500; i++ {
		tbl.Set(i, int(i))
		want[i] = int(i)
	}
	got := map[uint64]int{}
	tbl.Range(func(k uint64, v int) bool {
		if _, dup := got[k]; dup {
			t.Fatalf("Range visited key %d twice", k)
		}
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range[%d] = %d, want %d", k, got[k], v)
		}
	}
	// Early stop.
	n := 0
	tbl.Range(func(uint64, int) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("early-stop Range visited %d, want 10", n)
	}
}

func TestKeys(t *testing.T) {
	tbl := newT(t)
	for i := uint64(0); i < 32; i++ {
		tbl.Set(i, 0)
	}
	ks := tbl.Keys()
	if len(ks) != 32 {
		t.Fatalf("Keys len = %d, want 32", len(ks))
	}
	seen := map[uint64]bool{}
	for _, k := range ks {
		seen[k] = true
	}
	if len(seen) != 32 {
		t.Fatal("Keys contained duplicates")
	}
}

func TestReadHandle(t *testing.T) {
	tbl := newT(t)
	tbl.Set(11, 42)
	h := tbl.NewReadHandle()
	defer h.Close()
	if v, ok := h.Get(11); !ok || v != 42 {
		t.Fatalf("handle Get = %d,%v", v, ok)
	}
	if h.Contains(12) {
		t.Fatal("handle Contains(12) = true")
	}
}

func TestInitialBucketsRounding(t *testing.T) {
	tbl := NewUint64[int](WithInitialBuckets(100))
	defer tbl.Close()
	if got := tbl.Buckets(); got != 128 {
		t.Fatalf("Buckets = %d, want 128 (rounded up)", got)
	}
	tbl2 := NewUint64[int](WithInitialBuckets(0))
	defer tbl2.Close()
	if got := tbl2.Buckets(); !hashfn.IsPowerOfTwo(uint64(got)) {
		t.Fatalf("Buckets = %d, want a power of two", got)
	}
}

func TestLargePopulation(t *testing.T) {
	tbl := newT(t, WithInitialBuckets(1024))
	const n = 50000
	for i := uint64(0); i < n; i++ {
		tbl.Set(i, int(i))
	}
	if tbl.Len() != n {
		t.Fatalf("Len = %d, want %d", tbl.Len(), n)
	}
	for i := uint64(0); i < n; i += 97 {
		if v, ok := tbl.Get(i); !ok || v != int(i) {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounters(t *testing.T) {
	tbl := newT(t)
	tbl.Set(1, 1)
	tbl.Set(2, 2)
	tbl.Delete(1)
	tbl.ExpandOnce()
	tbl.ShrinkOnce()
	s := tbl.Stats()
	if s.Inserts != 2 || s.Deletes != 1 || s.Expands != 1 || s.Shrinks != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Len != 1 || s.LoadFactor <= 0 || s.MaxChain < 1 {
		t.Fatalf("derived stats = %+v", s)
	}
	if s.String() == "" || tbl.String() == "" {
		t.Fatal("String() empty")
	}
}

func TestTableStringer(t *testing.T) {
	tbl := newT(t)
	tbl.Set(1, 1)
	want := fmt.Sprintf("core.Table{len=1 buckets=%d}", tbl.Buckets())
	if got := tbl.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
