package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTortureLookupsDuringContinuousResize is the repository's
// distillation of the paper's headline claim: lookups running with no
// synchronization whatsoever remain correct while the table
// continuously doubles and halves. A set of "stable" keys is inserted
// up front and never touched; every reader asserts that every stable
// key it probes is found, at full speed, for the whole test.
func TestTortureLookupsDuringContinuousResize(t *testing.T) {
	tbl := newT(t, WithInitialBuckets(64))
	const stable = 2048
	fill(tbl, stable)

	stop := make(chan struct{})
	var misses atomic.Int64
	var lookups atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := tbl.NewReadHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(stable))
				if v, ok := h.Get(k); !ok || v != int(k) {
					misses.Add(1)
				}
				lookups.Add(1)
			}
		}(int64(g))
	}

	// Resizer: continuous 64 <-> 1024 toggling, like the paper's
	// continuous-resize benchmark.
	deadline := time.Now().Add(1500 * time.Millisecond)
	cycles := 0
	for time.Now().Before(deadline) {
		tbl.Resize(1024)
		tbl.Resize(64)
		cycles++
	}
	close(stop)
	wg.Wait()

	if cycles < 2 {
		t.Skipf("machine too slow to complete resize cycles (%d)", cycles)
	}
	if n := misses.Load(); n != 0 {
		t.Fatalf("%d/%d lookups missed a stable key during %d resize cycles",
			n, lookups.Load(), cycles)
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("%d lookups across %d resize cycles, 0 misses", lookups.Load(), cycles)
}

// TestTortureMixedWritersAndResize adds writer churn on a disjoint
// volatile key range while readers assert the stable range, and a
// dedicated goroutine flips table sizes.
func TestTortureMixedWritersAndResize(t *testing.T) {
	tbl := newT(t, WithInitialBuckets(128))
	const stable = 512
	const volatileBase = 1 << 20
	fill(tbl, stable)

	stop := make(chan struct{})
	var misses atomic.Int64
	var wg sync.WaitGroup

	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := tbl.NewReadHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(stable))
				if _, ok := h.Get(k); !ok {
					misses.Add(1)
				}
			}
		}(int64(g + 100))
	}

	// Two writers on the volatile range.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := volatileBase + uint64(rng.Intn(4096))
				switch rng.Intn(3) {
				case 0:
					tbl.Set(k, int(k))
				case 1:
					tbl.Delete(k)
				case 2:
					tbl.Move(k, k+100000)
				}
			}
		}(int64(g + 200))
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tbl.ExpandOnce()
			tbl.ShrinkOnce()
		}
	}()

	time.Sleep(1200 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := misses.Load(); n != 0 {
		t.Fatalf("%d lookups missed stable keys under writer+resize churn", n)
	}
	// Stable range must be fully intact afterwards.
	for i := uint64(0); i < stable; i++ {
		if v, ok := tbl.Get(i); !ok || v != int(i) {
			t.Fatalf("stable key %d = %d,%v after churn", i, v, ok)
		}
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTortureRangeDuringResize: Range must visit every stable element
// exactly once per traversal even when resizes race it.
func TestTortureRangeDuringResize(t *testing.T) {
	tbl := newT(t, WithInitialBuckets(32))
	const stable = 256
	fill(tbl, stable)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tbl.Resize(512)
			tbl.Resize(32)
		}
	}()

	deadline := time.Now().Add(800 * time.Millisecond)
	for time.Now().Before(deadline) {
		counts := make(map[uint64]int, stable)
		tbl.Range(func(k uint64, v int) bool {
			counts[k]++
			return true
		})
		for k := uint64(0); k < stable; k++ {
			switch counts[k] {
			case 1:
			case 0:
				t.Errorf("Range missed stable key %d", k)
			default:
				t.Errorf("Range visited key %d %d times", k, counts[k])
			}
		}
		if t.Failed() {
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestConcurrentWritersSerialize checks writer-side linearizability of
// distinct-key updates under the writer mutex with concurrent
// resizes: all writes must land.
func TestConcurrentWritersSerialize(t *testing.T) {
	tbl := newT(t, WithInitialBuckets(16))
	const perWriter = 2000
	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < perWriter; i++ {
				tbl.Set(base+i, int(base+i))
			}
		}(uint64(w) * 1_000_000)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			tbl.ExpandOnce()
		}
	}()
	wg.Wait()
	if got, want := tbl.Len(), writers*perWriter; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	for w := 0; w < writers; w++ {
		base := uint64(w) * 1_000_000
		for i := uint64(0); i < perWriter; i += 37 {
			if v, ok := tbl.Get(base + i); !ok || v != int(base+i) {
				t.Fatalf("Get(%d) = %d,%v", base+i, v, ok)
			}
		}
	}
	if err := tbl.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}
