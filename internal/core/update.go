package core

// Writer-side operations. All serialize on t.mu; none ever blocks a
// reader. Each follows the relativistic discipline: fully initialize,
// then publish with a single pointer store; destructive steps happen
// only after the structure is consistent for every possible reader
// trajectory.

// Set inserts or replaces the value for k, returning true if the key
// was newly inserted.
func (t *Table[K, V]) Set(k K, v V) bool {
	return t.SetHashed(t.hash(k), k, v)
}

// SetHashed is Set with the key's table hash precomputed; h must
// equal the table's hash of k. Multi-table front-ends
// (internal/shard) hash once to route and pass the hash through
// rather than paying a second hash inside the shard.
func (t *Table[K, V]) SetHashed(h uint64, k K, v V) bool {
	t.mu.Lock()
	if n := t.findLocked(h, k); n != nil {
		// In-place relativistic value replacement: readers observe
		// either the complete old or complete new value.
		n.val.Store(&v)
		t.mu.Unlock()
		return false
	}
	t.insertLocked(h, k, v)
	t.mu.Unlock()
	t.maybeAutoResize()
	return true
}

// Swap upserts k and returns the value it displaced, if any. It is
// Set with the previous value handed back — the primitive accounting
// layers (internal/cache) need to adjust cost totals atomically with
// respect to other writers on the same key.
func (t *Table[K, V]) Swap(k K, v V) (old V, replaced bool) {
	return t.SwapHashed(t.hash(k), k, v)
}

// SwapHashed is Swap with the key's table hash precomputed (see
// SetHashed).
func (t *Table[K, V]) SwapHashed(h uint64, k K, v V) (old V, replaced bool) {
	t.mu.Lock()
	if n := t.findLocked(h, k); n != nil {
		old = *n.val.Load()
		n.val.Store(&v)
		t.mu.Unlock()
		return old, true
	}
	t.insertLocked(h, k, v)
	t.mu.Unlock()
	t.maybeAutoResize()
	return old, false
}

// Insert adds k only if absent; it reports whether it inserted.
func (t *Table[K, V]) Insert(k K, v V) bool {
	return t.InsertHashed(t.hash(k), k, v)
}

// InsertHashed is Insert with the key's table hash precomputed (see
// SetHashed).
func (t *Table[K, V]) InsertHashed(h uint64, k K, v V) bool {
	t.mu.Lock()
	if t.findLocked(h, k) != nil {
		t.mu.Unlock()
		return false
	}
	t.insertLocked(h, k, v)
	t.mu.Unlock()
	t.maybeAutoResize()
	return true
}

// Replace updates the value only if k is present; it reports whether
// it replaced.
func (t *Table[K, V]) Replace(k K, v V) bool {
	return t.ReplaceHashed(t.hash(k), k, v)
}

// ReplaceHashed is Replace with the key's table hash precomputed (see
// SetHashed).
func (t *Table[K, V]) ReplaceHashed(h uint64, k K, v V) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.findLocked(h, k)
	if n == nil {
		return false
	}
	n.val.Store(&v)
	return true
}

// Delete removes k, reporting whether it was present. The unlinked
// node is retired through the domain's deferred reclaimer after a
// grace period (readers that still hold it may finish their walk).
func (t *Table[K, V]) Delete(k K) bool {
	return t.DeleteHashed(t.hash(k), k)
}

// DeleteHashed is Delete with the key's table hash precomputed (see
// SetHashed).
func (t *Table[K, V]) DeleteHashed(h uint64, k K) bool {
	_, ok := t.CompareAndDeleteHashed(h, k, nil)
	return ok
}

// CompareAndDelete removes k only if match accepts its current value
// (nil match accepts anything), returning the removed value. The
// check and the unlink happen under the writer mutex, so a concurrent
// Set cannot slip a fresh value in between: expiry sweepers and
// eviction samplers use this to guarantee they only remove the exact
// entry they examined.
func (t *Table[K, V]) CompareAndDelete(k K, match func(V) bool) (V, bool) {
	return t.CompareAndDeleteHashed(t.hash(k), k, match)
}

// CompareAndDeleteHashed is CompareAndDelete with the key's table
// hash precomputed (see SetHashed).
func (t *Table[K, V]) CompareAndDeleteHashed(h uint64, k K, match func(V) bool) (V, bool) {
	t.mu.Lock()
	victim, removed, ok := t.unlinkLocked(h, k, match)
	t.mu.Unlock()
	if !ok {
		var zero V
		return zero, false
	}
	t.dom.Defer(func() {
		// Unreachable to all readers now; severing next keeps a
		// captured node from pinning the live chain for GC.
		victim.next.Store(nil)
	})
	t.maybeAutoResize()
	return removed, true
}

// unlinkLocked removes the node for (h, k) from its chain — provided
// match (nil = always) accepts its current value — returning the node
// and the removed value. Caller holds t.mu. This is the single copy
// of the write-side unlink sequence: redirect the predecessor (or the
// bucket head), decrement the count, bump the delete stat. The
// returned node is unreachable to new readers but may still be held
// by in-flight ones: sever its next pointer only after a grace period
// (Defer or retireBatch).
func (t *Table[K, V]) unlinkLocked(h uint64, k K, match func(V) bool) (*node[K, V], V, bool) {
	ht := t.ht.Load()
	slot := ht.bucketFor(h)
	var prev *node[K, V]
	for n := slot.Load(); n != nil; n = n.next.Load() {
		if n.hash == h && n.key == k {
			removed := *n.val.Load()
			if match != nil && !match(removed) {
				break
			}
			next := n.next.Load()
			if prev == nil {
				slot.Store(next)
			} else {
				prev.next.Store(next)
			}
			t.count.Add(-1)
			t.stats.deletes.Add(1)
			return n, removed, true
		}
		prev = n
	}
	var zero V
	return nil, zero, false
}

// Move renames oldKey to newKey. It fails if oldKey is absent or
// newKey already exists.
//
// Concurrency guarantee (the paper's "atomic move" from prior work):
// the value is never absent from the table — the newKey copy is
// published before the oldKey node is unlinked. Consequently a reader
// that looks up oldKey, misses, and then looks up newKey is
// guaranteed to find the value, provided no second Move of the same
// value raced the pair of probes (sequential probes are not a
// snapshot; no reader-side scheme can make them one). A concurrent
// reader may transiently observe the value under both keys.
func (t *Table[K, V]) Move(oldKey, newKey K) bool {
	if oldKey == newKey {
		return t.Contains(oldKey)
	}
	oh, nh := t.hash(oldKey), t.hash(newKey)
	t.mu.Lock()
	defer t.mu.Unlock()
	src := t.findLocked(oh, oldKey)
	if src == nil || t.findLocked(nh, newKey) != nil {
		return false
	}
	// Publish the copy first (value shared via the same pointer), so
	// there is no instant with the value unreachable.
	ht := t.ht.Load()
	cp := &node[K, V]{hash: nh, key: newKey}
	cp.val.Store(src.val.Load())
	slot := ht.bucketFor(nh)
	cp.next.Store(slot.Load())
	slot.Store(cp)
	t.stats.moves.Add(1)

	// Now unlink the original.
	oslot := ht.bucketFor(oh)
	var prev *node[K, V]
	for n := oslot.Load(); n != nil; n = n.next.Load() {
		if n == src {
			if prev == nil {
				oslot.Store(n.next.Load())
			} else {
				prev.next.Store(n.next.Load())
			}
			break
		}
		prev = n
	}
	victim := src
	t.dom.Defer(func() { victim.next.Store(nil) })
	return true
}

// findLocked returns the node for (h,k) in the current array, or nil.
// Caller holds t.mu.
func (t *Table[K, V]) findLocked(h uint64, k K) *node[K, V] {
	ht := t.ht.Load()
	for n := ht.bucketFor(h).Load(); n != nil; n = n.next.Load() {
		if n.hash == h && n.key == k {
			return n
		}
	}
	return nil
}

// insertLocked publishes a new node at its bucket head. Caller holds
// t.mu. Head insertion is always safe, even mid-unzip: unzip passes
// only redirect interior next pointers of pre-existing nodes, never
// bucket heads.
func (t *Table[K, V]) insertLocked(h uint64, k K, v V) {
	ht := t.ht.Load()
	n := &node[K, V]{hash: h, key: k}
	n.val.Store(&v)
	slot := ht.bucketFor(h)
	n.next.Store(slot.Load()) // initialize ...
	slot.Store(n)             // ... then publish
	t.count.Add(1)
	t.stats.inserts.Add(1)
}
