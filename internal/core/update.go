package core

// Writer-side operations. Each locks only the stripe covering the
// chain its key hashes to (see stripe.go), so writers to different
// buckets run in parallel; none ever blocks a reader. Each follows
// the relativistic discipline: fully initialize, then publish with a
// single pointer store; destructive steps happen only after the
// structure is consistent for every possible reader trajectory.
//
// While a writer holds its stripe, the bucket-array pointer and the
// stripe mask are frozen (both change only under every stripe), so
// the find/insert/unlink helpers may load t.ht once and trust it.

// Set inserts or replaces the value for k, returning true if the key
// was newly inserted.
func (t *Table[K, V]) Set(k K, v V) bool {
	return t.SetHashed(t.hash(k), k, v)
}

// SetHashed is Set with the key's table hash precomputed; h must
// equal the table's hash of k. Multi-table front-ends
// (internal/shard) hash once to route and pass the hash through
// rather than paying a second hash inside the shard.
func (t *Table[K, V]) SetHashed(h uint64, k K, v V) bool {
	s := t.lockHash(h)
	if n := t.findLocked(h, k); n != nil {
		// In-place relativistic value replacement: readers observe
		// either the complete old or complete new value.
		n.val.Store(&v)
		s.mu.Unlock()
		return false
	}
	t.insertLocked(h, k, v)
	s.mu.Unlock()
	t.maybeAutoResizeBackpressure()
	return true
}

// Swap upserts k and returns the value it displaced, if any. It is
// Set with the previous value handed back — the primitive accounting
// layers (internal/cache) need to adjust cost totals atomically with
// respect to other writers on the same key. The read-out and the
// replacement happen under the key's stripe, so two racing Swaps on
// one key always observe each other's values in some order: no
// displaced value is ever observed twice or lost.
func (t *Table[K, V]) Swap(k K, v V) (old V, replaced bool) {
	return t.SwapHashed(t.hash(k), k, v)
}

// SwapHashed is Swap with the key's table hash precomputed (see
// SetHashed).
func (t *Table[K, V]) SwapHashed(h uint64, k K, v V) (old V, replaced bool) {
	s := t.lockHash(h)
	if n := t.findLocked(h, k); n != nil {
		old = *n.val.Load()
		n.val.Store(&v)
		s.mu.Unlock()
		return old, true
	}
	t.insertLocked(h, k, v)
	s.mu.Unlock()
	t.maybeAutoResizeBackpressure()
	return old, false
}

// Insert adds k only if absent; it reports whether it inserted.
func (t *Table[K, V]) Insert(k K, v V) bool {
	return t.InsertHashed(t.hash(k), k, v)
}

// InsertHashed is Insert with the key's table hash precomputed (see
// SetHashed).
func (t *Table[K, V]) InsertHashed(h uint64, k K, v V) bool {
	s := t.lockHash(h)
	if t.findLocked(h, k) != nil {
		s.mu.Unlock()
		return false
	}
	t.insertLocked(h, k, v)
	s.mu.Unlock()
	t.maybeAutoResizeBackpressure()
	return true
}

// Replace updates the value only if k is present; it reports whether
// it replaced.
func (t *Table[K, V]) Replace(k K, v V) bool {
	return t.ReplaceHashed(t.hash(k), k, v)
}

// ReplaceHashed is Replace with the key's table hash precomputed (see
// SetHashed).
func (t *Table[K, V]) ReplaceHashed(h uint64, k K, v V) bool {
	s := t.lockHash(h)
	defer s.mu.Unlock()
	n := t.findLocked(h, k)
	if n == nil {
		return false
	}
	n.val.Store(&v)
	return true
}

// Delete removes k, reporting whether it was present. The unlinked
// node is retired through the domain's deferred reclaimer after a
// grace period (readers that still hold it may finish their walk).
func (t *Table[K, V]) Delete(k K) bool {
	return t.DeleteHashed(t.hash(k), k)
}

// DeleteHashed is Delete with the key's table hash precomputed (see
// SetHashed).
func (t *Table[K, V]) DeleteHashed(h uint64, k K) bool {
	_, ok := t.CompareAndDeleteHashed(h, k, nil)
	return ok
}

// CompareAndDelete removes k only if match accepts its current value
// (nil match accepts anything), returning the removed value. The
// check and the unlink happen under the key's stripe, so a concurrent
// Set cannot slip a fresh value in between: expiry sweepers and
// eviction samplers use this to guarantee they only remove the exact
// entry they examined.
func (t *Table[K, V]) CompareAndDelete(k K, match func(V) bool) (V, bool) {
	return t.CompareAndDeleteHashed(t.hash(k), k, match)
}

// CompareAndDeleteHashed is CompareAndDelete with the key's table
// hash precomputed (see SetHashed).
func (t *Table[K, V]) CompareAndDeleteHashed(h uint64, k K, match func(V) bool) (V, bool) {
	s := t.lockHash(h)
	victim, removed, ok := t.unlinkLocked(h, k, match)
	s.mu.Unlock()
	if !ok {
		var zero V
		return zero, false
	}
	t.dom.Defer(func() {
		// Unreachable to all readers now; severing next keeps a
		// captured node from pinning the live chain for GC.
		victim.next.Store(nil)
	})
	t.maybeAutoResize()
	return removed, true
}

// unlinkLocked removes the node for (h, k) from its chain — provided
// match (nil = always) accepts its current value — returning the node
// and the removed value. The caller holds the stripe covering h. This
// is the single copy of the write-side unlink sequence: redirect the
// predecessor (or the bucket head), patch the zipped sibling chain if
// an expansion is in flight, decrement the count, bump the delete
// stat. The returned node is unreachable to new readers but may still
// be held by in-flight ones: sever its next pointer only after a
// grace period (Defer or retireBatch).
func (t *Table[K, V]) unlinkLocked(h uint64, k K, match func(V) bool) (*node[K, V], V, bool) {
	ht := t.ht.Load()
	slot := ht.bucketFor(h)
	var prev *node[K, V]
	for n := slot.Load(); n != nil; n = n.next.Load() {
		if n.hash == h && n.key == k {
			removed := *n.val.Load()
			if match != nil && !match(removed) {
				break
			}
			next := n.next.Load()
			if prev == nil {
				slot.Store(next)
			} else {
				prev.next.Store(next)
			}
			t.unlinkSiblingLocked(ht, h, n, next)
			t.count.Add(-1)
			t.stats.deletes.Add(1)
			return n, removed, true
		}
		prev = n
	}
	var zero V
	return nil, zero, false
}

// unlinkSiblingLocked completes an unlink while an expansion's unzip
// is in flight. Mid-unzip, chains are zipped: the victim may also be
// reachable from its parent bucket's OTHER child — either because the
// sibling's head slot still points through it or because the two
// child chains converge at it (a node at the junction of a shared
// suffix has a physical predecessor on EACH chain). If any such
// pointer survived the home-chain unlink, the deferred severing of
// victim.next would truncate the sibling chain and lose every element
// behind it. So: walk the sibling chain and redirect whatever still
// points at the victim. The sibling bucket differs from the home
// bucket only in the old-size bit — above the stripe mask — so the
// caller's stripe covers it too. Outside an unzip window this is a
// single atomic load.
func (t *Table[K, V]) unlinkSiblingLocked(ht *buckets[K, V], h uint64, victim, next *node[K, V]) {
	parent := t.unzipParent.Load()
	if parent == 0 {
		return
	}
	// unzipParent and the bucket array are published together under
	// all stripes, and we hold one, so ht is the doubled array.
	sib := &ht.slot[(h&ht.mask)^parent]
	if sib.Load() == victim {
		sib.Store(next)
		return
	}
	for n := sib.Load(); n != nil; n = n.next.Load() {
		if n.next.Load() == victim {
			n.next.Store(next)
			return
		}
	}
}

// Move renames oldKey to newKey. It fails if oldKey is absent or
// newKey already exists.
//
// Concurrency guarantee (the paper's "atomic move" from prior work):
// the value is never absent from the table — the newKey copy is
// published before the oldKey node is unlinked. Consequently a reader
// that looks up oldKey, misses, and then looks up newKey is
// guaranteed to find the value, provided no second Move of the same
// value raced the pair of probes (sequential probes are not a
// snapshot; no reader-side scheme can make them one). A concurrent
// reader may transiently observe the value under both keys.
//
// Move locks the stripes of both keys (in ascending index order, the
// global lock order), so it is atomic with respect to every writer
// touching either chain.
func (t *Table[K, V]) Move(oldKey, newKey K) bool {
	if oldKey == newKey {
		return t.Contains(oldKey)
	}
	oh, nh := t.hash(oldKey), t.hash(newKey)
	s1, s2 := t.lockHash2(oh, nh)
	unlock := func() {
		if s2 != nil {
			s2.mu.Unlock()
		}
		s1.mu.Unlock()
	}
	src := t.findLocked(oh, oldKey)
	if src == nil || t.findLocked(nh, newKey) != nil {
		unlock()
		return false
	}
	// Publish the copy first (value shared via the same pointer), so
	// there is no instant with the value unreachable.
	ht := t.ht.Load()
	cp := &node[K, V]{hash: nh, key: newKey}
	cp.val.Store(src.val.Load())
	slot := ht.bucketFor(nh)
	cp.next.Store(slot.Load())
	slot.Store(cp)
	t.stats.moves.Add(1)

	// Now unlink the original (patching the zipped sibling chain if
	// an expansion is mid-unzip, exactly like a delete).
	oslot := ht.bucketFor(oh)
	var prev *node[K, V]
	for n := oslot.Load(); n != nil; n = n.next.Load() {
		if n == src {
			next := n.next.Load()
			if prev == nil {
				oslot.Store(next)
			} else {
				prev.next.Store(next)
			}
			t.unlinkSiblingLocked(ht, oh, src, next)
			break
		}
		prev = n
	}
	unlock()
	victim := src
	t.dom.Defer(func() { victim.next.Store(nil) })
	return true
}

// findLocked returns the node for (h,k) in the current array, or nil.
// The caller holds the stripe covering h.
func (t *Table[K, V]) findLocked(h uint64, k K) *node[K, V] {
	ht := t.ht.Load()
	for n := ht.bucketFor(h).Load(); n != nil; n = n.next.Load() {
		if n.hash == h && n.key == k {
			return n
		}
	}
	return nil
}

// insertLocked publishes a new node at its bucket head. The caller
// holds the stripe covering h. Head insertion is always safe, even
// mid-unzip: a new head only prepends to the home chain's exclusive
// prefix, never disturbing a shared suffix.
func (t *Table[K, V]) insertLocked(h uint64, k K, v V) {
	ht := t.ht.Load()
	n := &node[K, V]{hash: h, key: k}
	n.val.Store(&v)
	slot := ht.bucketFor(h)
	n.next.Store(slot.Load()) // initialize ...
	slot.Store(n)             // ... then publish
	t.count.Add(1)
	t.stats.inserts.Add(1)
}
