package core

import (
	"sync/atomic"

	"rphash/internal/obs"
)

// Writer-side operations. Each locks only the stripe covering the
// chain its key hashes to (see stripe.go), so writers to different
// buckets run in parallel; none ever blocks a reader. Each follows
// the relativistic discipline: fully initialize, then publish with a
// single pointer store; destructive steps happen only after the
// structure is consistent for every possible reader trajectory.
//
// While a writer holds its stripe, the bucket-array pointer and the
// stripe mask are frozen (both change only under every stripe), so
// the find/insert/unlink helpers may load t.ht once and trust it.
//
// Pure inserts additionally have a lock-free fast path (tryInsertCAS
// below): publish by CAS on the bucket head, then re-validate the
// resize epoch. Because fast-path inserts can land on a bucket head
// at any instant, every stripe-holding publication of a bucket head
// in this file is itself a CAS (or a CAS with a predecessor-walk
// retry), never a plain store — a plain store could silently drop a
// concurrent fast-path prepend. Interior next-pointer stores stay
// plain: the fast path never touches an existing node's next field.

// Set inserts or replaces the value for k, returning true if the key
// was newly inserted.
func (t *Table[K, V]) Set(k K, v V) bool {
	return t.SetHashed(t.hash(k), k, v)
}

// SetHashed is Set with the key's table hash precomputed; h must
// equal the table's hash of k. Multi-table front-ends
// (internal/shard) hash once to route and pass the hash through
// rather than paying a second hash inside the shard.
func (t *Table[K, V]) SetHashed(h uint64, k K, v V) bool {
	return t.eng.setHashed(h, k, v)
}

// chainSetHashed is the chain engine's upsert: hint-validated replace
// fast path, CAS insert fast path, striped fallback.
func (t *Table[K, V]) chainSetHashed(h uint64, k K, v V) bool {
	pr := t.opStart(h)
	if !t.noCASInsert {
		// Replace fast path, open-coded so the common upsert-on-
		// existing-key case pays no extra call frames: an unprotected
		// hint walk locates the node, then a stripe-held revalidation
		// proves it is still THE live node for the key (the soundness
		// argument lives on casHintValid). Only the locator is
		// lock-free; the value store is an exact striped replace. The
		// hint can never prove absence — a miss falls through to the
		// section-protected insert fast path, the only absence proof.
		e1 := t.resizeEpoch.Load()
		if e1&1 == 0 && t.unzipParent.Load() == 0 {
			ht := t.ht.Load()
			for c := ht.bucketFor(h).Load(); c != nil; c = c.next.Load() {
				if c.hash == h && c.key == k {
					s := t.lockHash(h)
					if t.casHintValid(e1, c) {
						// In-place relativistic value replacement:
						// readers observe either the complete old or
						// complete new value.
						c.val.Store(&v)
						s.mu.Unlock()
						t.opRecord(pr, h, obs.OpSet, obs.PathHintReplace, obs.OutReplaced)
						return false
					}
					s.mu.Unlock()
					goto striped // dead hint (rare): redo under stripes
				}
			}
			switch t.tryInsertCAS(h, k, &v) {
			case casInsertDone:
				t.maybeAutoResizeBackpressure()
				t.opRecord(pr, h, obs.OpSet, obs.PathCASInsert, obs.OutInserted)
				return true
			case casInsertKeyPresent, casInsertFallback:
				// The sectioned walk saw the key after all (the hint
				// raced an insert), or contention/epoch motion: redo
				// under the stripes below.
			}
		}
	}
striped:
	s := t.lockHash(h)
	if n := t.findLocked(h, k); n != nil {
		n.val.Store(&v)
		s.mu.Unlock()
		t.opRecord(pr, h, obs.OpSet, obs.PathStriped, obs.OutReplaced)
		return false
	}
	t.insertLocked(h, k, &v)
	s.mu.Unlock()
	t.maybeAutoResizeBackpressure()
	t.opRecord(pr, h, obs.OpSet, obs.PathStriped, obs.OutInserted)
	return true
}

// Swap upserts k and returns the value it displaced, if any. It is
// Set with the previous value handed back — the primitive accounting
// layers (internal/cache) need to adjust cost totals atomically with
// respect to other writers on the same key. The read-out and the
// replacement happen under the key's stripe, so two racing Swaps on
// one key always observe each other's values in some order: no
// displaced value is ever observed twice or lost.
func (t *Table[K, V]) Swap(k K, v V) (old V, replaced bool) {
	return t.SwapHashed(t.hash(k), k, v)
}

// SwapHashed is Swap with the key's table hash precomputed (see
// SetHashed).
func (t *Table[K, V]) SwapHashed(h uint64, k K, v V) (old V, replaced bool) {
	return t.eng.swapHashed(h, k, v)
}

// chainSwapHashed is the chain engine's swap-upsert.
func (t *Table[K, V]) chainSwapHashed(h uint64, k K, v V) (old V, replaced bool) {
	pr := t.opStart(h)
	if !t.noCASInsert {
		// Mirrors SetHashed's open-coded replace fast path, with the
		// displaced value read under the same stripe that validates
		// the hint — the read-out/replacement atomicity the accounting
		// layers depend on is exactly the striped path's.
		e1 := t.resizeEpoch.Load()
		if e1&1 == 0 && t.unzipParent.Load() == 0 {
			ht := t.ht.Load()
			for c := ht.bucketFor(h).Load(); c != nil; c = c.next.Load() {
				if c.hash == h && c.key == k {
					s := t.lockHash(h)
					if t.casHintValid(e1, c) {
						old = *c.val.Load()
						c.val.Store(&v)
						s.mu.Unlock()
						t.opRecord(pr, h, obs.OpSwap, obs.PathHintReplace, obs.OutReplaced)
						return old, true
					}
					s.mu.Unlock()
					goto striped // dead hint (rare): redo under stripes
				}
			}
			if t.tryInsertCAS(h, k, &v) == casInsertDone {
				t.maybeAutoResizeBackpressure()
				t.opRecord(pr, h, obs.OpSwap, obs.PathCASInsert, obs.OutInserted)
				return old, false
			}
		}
	}
striped:
	s := t.lockHash(h)
	if n := t.findLocked(h, k); n != nil {
		old = *n.val.Load()
		n.val.Store(&v)
		s.mu.Unlock()
		t.opRecord(pr, h, obs.OpSwap, obs.PathStriped, obs.OutReplaced)
		return old, true
	}
	t.insertLocked(h, k, &v)
	s.mu.Unlock()
	t.maybeAutoResizeBackpressure()
	t.opRecord(pr, h, obs.OpSwap, obs.PathStriped, obs.OutInserted)
	return old, false
}

// Insert adds k only if absent; it reports whether it inserted.
func (t *Table[K, V]) Insert(k K, v V) bool {
	return t.InsertHashed(t.hash(k), k, v)
}

// InsertHashed is Insert with the key's table hash precomputed (see
// SetHashed).
func (t *Table[K, V]) InsertHashed(h uint64, k K, v V) bool {
	return t.eng.insertHashed(h, k, v)
}

// chainInsertHashed is the chain engine's insert-if-absent.
func (t *Table[K, V]) chainInsertHashed(h uint64, k K, v V) bool {
	pr := t.opStart(h)
	if !t.noCASInsert {
		switch t.tryInsertCAS(h, k, &v) {
		case casInsertDone:
			t.maybeAutoResizeBackpressure()
			t.opRecord(pr, h, obs.OpInsert, obs.PathCASInsert, obs.OutInserted)
			return true
		case casInsertKeyPresent:
			// The in-section walk observed the key: the insert
			// linearizes at that observation and fails.
			t.opRecord(pr, h, obs.OpInsert, obs.PathCASInsert, obs.OutNoop)
			return false
		}
	}
	s := t.lockHash(h)
	if t.findLocked(h, k) != nil {
		s.mu.Unlock()
		t.opRecord(pr, h, obs.OpInsert, obs.PathStriped, obs.OutNoop)
		return false
	}
	t.insertLocked(h, k, &v)
	s.mu.Unlock()
	t.maybeAutoResizeBackpressure()
	t.opRecord(pr, h, obs.OpInsert, obs.PathStriped, obs.OutInserted)
	return true
}

// Replace updates the value only if k is present; it reports whether
// it replaced.
func (t *Table[K, V]) Replace(k K, v V) bool {
	return t.ReplaceHashed(t.hash(k), k, v)
}

// ReplaceHashed is Replace with the key's table hash precomputed (see
// SetHashed).
func (t *Table[K, V]) ReplaceHashed(h uint64, k K, v V) bool {
	return t.eng.replaceHashed(h, k, v)
}

// chainReplaceHashed is the chain engine's replace-if-present.
func (t *Table[K, V]) chainReplaceHashed(h uint64, k K, v V) bool {
	s := t.lockHash(h)
	defer s.mu.Unlock()
	n := t.findLocked(h, k)
	if n == nil {
		return false
	}
	n.val.Store(&v)
	return true
}

// Delete removes k, reporting whether it was present. The unlinked
// node is retired through the domain's deferred reclaimer after a
// grace period (readers that still hold it may finish their walk).
func (t *Table[K, V]) Delete(k K) bool {
	return t.DeleteHashed(t.hash(k), k)
}

// DeleteHashed is Delete with the key's table hash precomputed (see
// SetHashed).
func (t *Table[K, V]) DeleteHashed(h uint64, k K) bool {
	_, ok := t.CompareAndDeleteHashed(h, k, nil)
	return ok
}

// CompareAndDelete removes k only if match accepts its current value
// (nil match accepts anything), returning the removed value. The
// check and the unlink happen under the key's stripe, so a concurrent
// Set cannot slip a fresh value in between: expiry sweepers and
// eviction samplers use this to guarantee they only remove the exact
// entry they examined.
func (t *Table[K, V]) CompareAndDelete(k K, match func(V) bool) (V, bool) {
	return t.CompareAndDeleteHashed(t.hash(k), k, match)
}

// CompareAndDeleteHashed is CompareAndDelete with the key's table
// hash precomputed (see SetHashed).
func (t *Table[K, V]) CompareAndDeleteHashed(h uint64, k K, match func(V) bool) (V, bool) {
	return t.eng.compareAndDeleteHashed(h, k, match)
}

// chainCompareAndDeleteHashed is the chain engine's guarded delete.
func (t *Table[K, V]) chainCompareAndDeleteHashed(h uint64, k K, match func(V) bool) (V, bool) {
	pr := t.opStart(h)
	s := t.lockHash(h)
	victim, removed, ok := t.unlinkLocked(h, k, match)
	s.mu.Unlock()
	if !ok {
		var zero V
		t.opRecord(pr, h, obs.OpDelete, obs.PathStriped, obs.OutMiss)
		return zero, false
	}
	t.dom.Defer(func() {
		// Unreachable to all readers now; severing next keeps a
		// captured node from pinning the live chain for GC.
		victim.next.Store(nil)
	})
	t.maybeAutoResize()
	t.opRecord(pr, h, obs.OpDelete, obs.PathStriped, obs.OutDeleted)
	return removed, true
}

// unlinkLocked removes the node for (h, k) from its chain — provided
// match (nil = always) accepts its current value — returning the node
// and the removed value. The caller holds the stripe covering h. This
// is the single copy of the write-side unlink sequence: redirect the
// predecessor (or the bucket head), patch the zipped sibling chain if
// an expansion is in flight, decrement the count, bump the delete
// stat. The returned node is unreachable to new readers but may still
// be held by in-flight ones: sever its next pointer only after a
// grace period (Defer or retireBatch).
func (t *Table[K, V]) unlinkLocked(h uint64, k K, match func(V) bool) (*node[K, V], V, bool) {
	ht := t.ht.Load()
	slot := ht.bucketFor(h)
	var prev *node[K, V]
	for n := slot.Load(); n != nil; n = n.next.Load() {
		if n.hash == h && n.key == k {
			removed := *n.val.Load()
			if match != nil && !match(removed) {
				break
			}
			next := n.next.Load()
			if prev == nil {
				t.casUnlinkHead(slot, n, next)
			} else {
				prev.next.Store(next)
			}
			t.unlinkSiblingLocked(ht, h, n, next)
			// Dead-mark the victim under the stripe. Two readers of the
			// mark: fast-path insert recovery (a still-speculative node
			// marked here took effect before being removed, so recovery
			// must not re-insert it) and the upsert in-place replace
			// (a node NOT marked, revalidated under this same stripe,
			// is still the live node for its key).
			n.casState.Store(casConsumed)
			t.count.Add(-1)
			t.stats.deletes.Add(1)
			return n, removed, true
		}
		prev = n
	}
	var zero V
	return nil, zero, false
}

// unlinkSiblingLocked completes an unlink while an expansion's unzip
// is in flight. Mid-unzip, chains are zipped: the victim may also be
// reachable from its parent bucket's OTHER child — either because the
// sibling's head slot still points through it or because the two
// child chains converge at it (a node at the junction of a shared
// suffix has a physical predecessor on EACH chain). If any such
// pointer survived the home-chain unlink, the deferred severing of
// victim.next would truncate the sibling chain and lose every element
// behind it. So: walk the sibling chain and redirect whatever still
// points at the victim. The sibling bucket differs from the home
// bucket only in the old-size bit — above the stripe mask — so the
// caller's stripe covers it too. Outside an unzip window this is a
// single atomic load.
func (t *Table[K, V]) unlinkSiblingLocked(ht *buckets[K, V], h uint64, victim, next *node[K, V]) {
	parent := t.unzipParent.Load()
	if parent == 0 {
		return
	}
	// unzipParent and the bucket array are published together under
	// all stripes, and we hold one, so ht is the doubled array.
	sib := &ht.slot[(h&ht.mask)^parent]
	if sib.CompareAndSwap(victim, next) {
		return
	}
	for n := sib.Load(); n != nil; n = n.next.Load() {
		if n.next.Load() == victim {
			n.next.Store(next)
			return
		}
	}
}

// Move renames oldKey to newKey. It fails if oldKey is absent or
// newKey already exists.
//
// Concurrency guarantee (the paper's "atomic move" from prior work):
// the value is never absent from the table — the newKey copy is
// published before the oldKey node is unlinked. Consequently a reader
// that looks up oldKey, misses, and then looks up newKey is
// guaranteed to find the value, provided no second Move of the same
// value raced the pair of probes (sequential probes are not a
// snapshot; no reader-side scheme can make them one). A concurrent
// reader may transiently observe the value under both keys.
//
// Move locks the stripes of both keys (in ascending index order, the
// global lock order), so it is atomic with respect to every writer
// touching either chain.
func (t *Table[K, V]) Move(oldKey, newKey K) bool {
	if oldKey == newKey {
		return t.Contains(oldKey)
	}
	return t.eng.move(oldKey, newKey)
}

// chainMove is the chain engine's rename; oldKey != newKey.
func (t *Table[K, V]) chainMove(oldKey, newKey K) bool {
	oh, nh := t.hash(oldKey), t.hash(newKey)
	s1, s2 := t.lockHash2(oh, nh)
	unlock := func() {
		if s2 != nil {
			s2.mu.Unlock()
		}
		s1.mu.Unlock()
	}
	src := t.findLocked(oh, oldKey)
	if src == nil || t.findLocked(nh, newKey) != nil {
		unlock()
		return false
	}
	// Publish the copy first (value shared via the same pointer), so
	// there is no instant with the value unreachable. CAS loop: a
	// fast-path insert of another key may prepend to this head at any
	// instant.
	ht := t.ht.Load()
	cp := &node[K, V]{hash: nh, key: newKey}
	cp.val.Store(src.val.Load())
	slot := ht.bucketFor(nh)
	for {
		head := slot.Load()
		cp.next.Store(head)
		if slot.CompareAndSwap(head, cp) {
			break
		}
	}
	t.stats.moves.Add(1)

	// Now unlink the original (patching the zipped sibling chain if
	// an expansion is mid-unzip, exactly like a delete).
	oslot := ht.bucketFor(oh)
	var prev *node[K, V]
	for n := oslot.Load(); n != nil; n = n.next.Load() {
		if n == src {
			next := n.next.Load()
			if prev == nil {
				t.casUnlinkHead(oslot, src, next)
			} else {
				prev.next.Store(next)
			}
			t.unlinkSiblingLocked(ht, oh, src, next)
			src.casState.Store(casConsumed) // dead mark (see unlinkLocked)
			break
		}
		prev = n
	}
	unlock()
	victim := src
	t.dom.Defer(func() { victim.next.Store(nil) })
	return true
}

// findLocked returns the node for (h,k) in the current array, or nil.
// The caller holds the stripe covering h.
func (t *Table[K, V]) findLocked(h uint64, k K) *node[K, V] {
	ht := t.ht.Load()
	for n := ht.bucketFor(h).Load(); n != nil; n = n.next.Load() {
		if n.hash == h && n.key == k {
			return n
		}
	}
	return nil
}

// insertLocked publishes a new node at its bucket head. The caller
// holds the stripe covering h and owns *vp, the node's value box —
// passing the box instead of the value lets callers whose value
// already escaped (every public upsert boxes once for its fast path)
// insert with no second allocation; the box must not be mutated after
// the call. Head insertion is always safe, even mid-unzip: a new head
// only prepends to the home chain's exclusive prefix, never
// disturbing a shared suffix. The publish is a CAS loop: holding the
// stripe excludes other stripe writers but not the lock-free insert
// fast path, which may prepend a different key to this head
// concurrently.
func (t *Table[K, V]) insertLocked(h uint64, k K, vp *V) {
	ht := t.ht.Load()
	n := &node[K, V]{hash: h, key: k}
	n.val.Store(vp)
	slot := ht.bucketFor(h)
	for {
		head := slot.Load()
		n.next.Store(head)                // initialize ...
		if slot.CompareAndSwap(head, n) { // ... then publish
			break
		}
	}
	t.count.Add(1)
	t.stats.inserts.Add(1)
}

// casUnlinkHead redirects a bucket head past victim (whose current
// successor is next). The caller holds the stripe, but fast-path
// inserts may have prepended new nodes above the victim since the
// caller's walk, so a plain store could drop them: CAS first, and on
// failure walk from the new head to the victim's current predecessor.
// That predecessor is stable once found — fast-path inserts only
// prepend at the head, and every other mutation of this chain needs
// the stripe we hold.
func (t *Table[K, V]) casUnlinkHead(slot *atomic.Pointer[node[K, V]], victim, next *node[K, V]) {
	if slot.CompareAndSwap(victim, next) {
		return
	}
	for n := slot.Load(); n != nil; n = n.next.Load() {
		if n.next.Load() == victim {
			n.next.Store(next)
			return
		}
	}
}

// ---------------------------------------------------------------------
// Lock-free insert fast path.

// casInsertOutcome is tryInsertCAS's verdict.
type casInsertOutcome int

const (
	// casInsertDone: the node was published by CAS and committed (or
	// committed and then consumed by a later stripe writer). The
	// insert happened.
	casInsertDone casInsertOutcome = iota
	// casInsertKeyPresent: the in-section walk observed the key.
	// Nothing was published; a pure insert (InsertHashed) linearizes
	// at that observation and fails, an upsert redoes the operation
	// under its stripe.
	casInsertKeyPresent
	// casInsertFallback: the fast path declined (resize epoch odd or
	// moved, unzip window open, head contention budget exhausted, or
	// a published node had to be undone). The caller must redo the
	// operation under its stripe.
	casInsertFallback
)

// casInsertRetries bounds head-CAS retries before declining to the
// striped path: under heavy same-bucket contention the stripe's queue
// is fairer (and cheaper) than an unbounded CAS storm.
const casInsertRetries = 4

// tryInsertCAS attempts a pure insert without taking any lock: prove
// the key absent with a chain walk inside a read-side critical
// section, publish the new node with a single CAS on the bucket head,
// then re-validate the resize epoch (see Table.resizeEpoch).
//
// The epoch protocol makes the lock-free publish safe against the
// swap-everything operations. Reading an even epoch before the walk
// and the same value after the CAS proves no all-stripes critical
// section — shrink capture, expand publish, unzip-window close,
// stripe retune — overlapped the window, so the node went into the
// live array and no capture walk can have missed it. On mismatch the
// node may have been captured into a newly published array (fine) or
// silently dropped by a capture that read the bucket head before the
// CAS landed; recoverInsertCAS distinguishes the two under the
// stripe. The unzip window is excluded wholesale: while
// unzipParent != 0 chains are zipped and cut in place by blind
// stores, so the fast path declines up front, and the epoch check
// catches windows that opened after the unzipParent load.
//
// Speculative-state choreography: the node is published with
// casState == casSpeculative. A stripe writer that unlinks it before
// it commits flips it to casConsumed (unlinkLocked, Move), which
// recovery reads as "the insert took effect, then a later operation
// removed it" — it must NOT be re-inserted. The count is incremented
// immediately after the CAS so that racing delete's decrement always
// balances; the undo path rolls it back.
//
// vp is the value already boxed by the caller (whose own striped
// fallback needs the address anyway); passing the pointer instead of
// the value keeps the fast path at two heap objects (node + box) per
// insert.
func (t *Table[K, V]) tryInsertCAS(h uint64, k K, vp *V) casInsertOutcome {
	e1 := t.resizeEpoch.Load()
	if e1&1 != 0 || t.unzipParent.Load() != 0 {
		t.stats.casFallbacks.Add(1)
		return casInsertFallback
	}
	var n *node[K, V]
	r := t.dom.AcquireReader()
	for attempt := 0; attempt < casInsertRetries; attempt++ {
		// The head load and the walk run inside a read-side section:
		// every node reachable from a head loaded in-section is
		// protected from next-pointer severing until we leave, so the
		// absence proof cannot be truncated by a concurrent retire.
		r.Lock()
		ht := t.ht.Load()
		slot := ht.bucketFor(h)
		head := slot.Load()
		var found *node[K, V]
		for c := head; c != nil; c = c.next.Load() {
			if c.hash == h && c.key == k {
				found = c
				break
			}
		}
		r.Unlock()
		if found != nil {
			t.dom.ReleaseReader(r)
			return casInsertKeyPresent
		}
		if n == nil {
			// Allocate only once absence has actually been observed, so
			// an upsert that lands on an existing key pays no
			// allocation for the probe.
			n = &node[K, V]{hash: h, key: k}
			n.val.Store(vp)
			n.casState.Store(casSpeculative)
		}
		// The CAS itself needs no section: success proves the head is
		// still the one the walk started from, and the key cannot have
		// appeared without changing the head (all inserts prepend).
		n.next.Store(head)
		if !slot.CompareAndSwap(head, n) {
			continue // head moved; re-prove absence against the new head
		}
		t.dom.ReleaseReader(r)
		t.count.Add(1)
		if t.resizeEpoch.Load() == e1 {
			// Commit. A lost flip means a stripe writer already
			// consumed the node — possible only after the insert took
			// effect, so the outcome is the same.
			n.casState.CompareAndSwap(casSpeculative, casCommitted)
			t.stats.inserts.Add(1)
			t.stats.casFastInserts.Add(1)
			return casInsertDone
		}
		return t.recoverInsertCAS(h, n)
	}
	t.dom.ReleaseReader(r)
	t.stats.casFallbacks.Add(1)
	return casInsertFallback
}

// casHintValid is the revalidation step of the open-coded replace
// fast path in SetHashed/SwapHashed: those walk the key's chain with
// no protection at all (no stripe, no read-side section) to locate a
// candidate node cheaply, then lock the stripe and call this. The two
// checks together prove from scratch that n is still THE live node
// for its key, no matter how stale the hint walk was:
//
//   - resizeEpoch unchanged (and even) since before the walk, with
//     unzipParent zero at the same point: no all-stripes section ran,
//     so the bucket array and the stripe array are the ones the walk
//     used, and the stripe held here is the stripe that covered the
//     key throughout. This also rules out the walk having surfaced a
//     node a superseding array silently dropped (recoverInsertCAS's
//     undo case): dropping one requires an array publish, which moves
//     the epoch.
//   - casState != casConsumed: every unlink of this node (delete,
//     move) serializes on that same stripe and dead-marks the node
//     before releasing it, so an unmarked node has not been unlinked
//     — and since an insert of the key requires its absence, no rival
//     node for the key can exist either.
//
// The caller's value store is then an exact striped replace —
// serialized with every other writer on the key — with the chain walk
// already paid for lock-free. On a false return (rare: a resize or
// retune overlapped, or the node died between walk and lock) the
// caller redoes the full upsert under the stripe.
func (t *Table[K, V]) casHintValid(e1 uint64, n *node[K, V]) bool {
	return t.resizeEpoch.Load() == e1 && n.casState.Load() != casConsumed
}

// recoverInsertCAS resolves a fast-path insert whose epoch validation
// failed: some all-stripes section (resize or retune) overlapped the
// publication window, so the published node's fate is ambiguous. Under
// the key's stripe — which freezes the bucket array, the unzip state,
// and every competing writer on this chain — exactly one of three
// things is true:
//
//  1. casState == casConsumed: a stripe writer found and unlinked the
//     node, which means it was visible — the insert happened (and a
//     later delete/move removed it, as could happen to any insert).
//  2. The node is reachable from its home bucket in the CURRENT
//     array (pointer identity): the section that moved the epoch
//     captured it, or never touched its bucket. Adopt it by flipping
//     casSpeculative → casCommitted.
//  3. Neither: a capture walk read the bucket head before the CAS
//     landed and the superseding array dropped the node. Nothing
//     durable ever pointed at it — undo (roll the count back, retire
//     the node for in-flight readers of the superseded array) and
//     have the caller redo the insert under the stripe.
//
// A blind "re-CAS the head back" undo would be unsound here: after an
// expand publish the node can be live in the NEW array while the old
// array — where the CAS landed — is already garbage, so only the
// reachability walk above can tell adoption from loss.
func (t *Table[K, V]) recoverInsertCAS(h uint64, n *node[K, V]) casInsertOutcome {
	s := t.lockHash(h)
	if n.casState.Load() == casConsumed {
		s.mu.Unlock()
		t.stats.inserts.Add(1)
		t.stats.casFastInserts.Add(1)
		return casInsertDone
	}
	ht := t.ht.Load()
	for c := ht.bucketFor(h).Load(); c != nil; c = c.next.Load() {
		if c == n {
			n.casState.CompareAndSwap(casSpeculative, casCommitted)
			s.mu.Unlock()
			t.stats.inserts.Add(1)
			t.stats.casFastInserts.Add(1)
			return casInsertDone
		}
	}
	s.mu.Unlock()
	t.count.Add(-1)
	t.stats.casUndos.Add(1)
	t.stats.casFallbacks.Add(1)
	t.obsEvent(obs.EvCASUndo, 0, 0, 0)
	t.dom.Defer(func() {
		// In-flight readers of the superseded array may still hold the
		// node; sever its next only after they drain so it cannot pin
		// the live chain it once pointed into.
		n.next.Store(nil)
	})
	return casInsertFallback
}

// ---------------------------------------------------------------------
// Value-plane primitives: per-node read-modify-write that rides the
// stripes (Update) or no lock at all (CompareAndSwapValue).

// Update runs a read-modify-write for k under its writer stripe: fn
// receives the current value (zero if absent) and presence, and
// returns the value to store plus whether to store it. The whole
// sequence is atomic with respect to every other writer on the key.
// fn runs with the stripe held — it must be fast, must not block, and
// must not call operations on the same table. Returns the
// pre-existing value (if any) and whether fn's result was stored.
func (t *Table[K, V]) Update(k K, fn func(cur V, present bool) (V, bool)) (prev V, hadPrev, stored bool) {
	return t.UpdateHashed(t.hash(k), k, fn)
}

// UpdateHashed is Update with the key's table hash precomputed (see
// SetHashed).
func (t *Table[K, V]) UpdateHashed(h uint64, k K, fn func(cur V, present bool) (V, bool)) (prev V, hadPrev, stored bool) {
	return t.eng.updateHashed(h, k, fn)
}

// chainUpdateHashed is the chain engine's striped read-modify-write.
func (t *Table[K, V]) chainUpdateHashed(h uint64, k K, fn func(cur V, present bool) (V, bool)) (prev V, hadPrev, stored bool) {
	pr := t.opStart(h)
	s := t.lockHash(h)
	n := t.findLocked(h, k)
	if n != nil {
		prev = *n.val.Load()
		hadPrev = true
	}
	v, store := fn(prev, hadPrev)
	if !store {
		s.mu.Unlock()
		t.opRecord(pr, h, obs.OpUpdate, obs.PathStriped, obs.OutNoop)
		return prev, hadPrev, false
	}
	if n != nil {
		n.val.Store(&v)
		s.mu.Unlock()
		t.opRecord(pr, h, obs.OpUpdate, obs.PathStriped, obs.OutReplaced)
		return prev, hadPrev, true
	}
	t.insertLocked(h, k, &v)
	s.mu.Unlock()
	t.maybeAutoResizeBackpressure()
	t.opRecord(pr, h, obs.OpUpdate, obs.PathStriped, obs.OutInserted)
	return prev, false, true
}

// CompareAndSwapValue publishes v for k only if match accepts the
// current value, with no lock at all: the node is located inside a
// read-side section, then the value pointer is compare-and-swapped.
// It returns whether the swap was published and whether the key was
// present. A nil match publishes unconditionally (a lock-free
// Replace). match may run multiple times (once per CAS attempt) and
// must be pure.
//
// Caveats of lock-freedom, for callers that mix primitives on the
// same keys: a swap racing a Delete may publish into a node that is
// already unlinked — the pair linearizes as update-then-delete and
// the swap still reports true; a swap racing a Move of the same key
// may land on the old node after the copy captured the value pointer,
// in which case the moved key keeps the pre-swap value; and
// CompareAndDelete's "removes exactly the examined entry" guarantee
// does not extend to values swapped in between its examine and its
// unlink. Resizes are immune by construction — they relink the same
// nodes, never copy them — so a successful swap is never lost to a
// concurrent expand, shrink, or retune.
func (t *Table[K, V]) CompareAndSwapValue(k K, match func(V) bool, v V) (swapped, present bool) {
	return t.CompareAndSwapValueHashed(t.hash(k), k, match, v)
}

// CompareAndSwapValueHashed is CompareAndSwapValue with the key's
// table hash precomputed (see SetHashed).
func (t *Table[K, V]) CompareAndSwapValueHashed(h uint64, k K, match func(V) bool, v V) (swapped, present bool) {
	return t.eng.compareAndSwapValueHashed(h, k, match, v)
}

// chainCompareAndSwapValueHashed is the chain engine's lock-free
// value publish. It is the one value-plane primitive the two engines
// implement differently: chain resizes relink the same nodes and
// never copy them, so the node located here survives any concurrent
// resize and the val-pointer CAS can run with no lock at all. The
// flat engine's copy-based migration breaks exactly that property,
// so its implementation rides the stripes instead (see flat.go).
func (t *Table[K, V]) chainCompareAndSwapValueHashed(h uint64, k K, match func(V) bool, v V) (swapped, present bool) {
	pr := t.opStart(h)
	var n *node[K, V]
	t.dom.Read(func() {
		ht := t.ht.Load()
		for c := ht.bucketFor(h).Load(); c != nil; c = c.next.Load() {
			if c.hash == h && c.key == k {
				n = c
				break
			}
		}
	})
	if n == nil {
		t.opRecord(pr, h, obs.OpValueCAS, obs.PathValueCAS, obs.OutMiss)
		return false, false
	}
	// The node outlives the section (Go GC); publishing into it after
	// a concurrent unlink is the documented update-then-delete race.
	for {
		p := n.val.Load()
		if match != nil && !match(*p) {
			t.opRecord(pr, h, obs.OpValueCAS, obs.PathValueCAS, obs.OutNoop)
			return false, true
		}
		if n.val.CompareAndSwap(p, &v) {
			t.stats.valueCASSwaps.Add(1)
			t.opRecord(pr, h, obs.OpValueCAS, obs.PathValueCAS, obs.OutReplaced)
			return true, true
		}
	}
}
