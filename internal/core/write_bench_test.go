package core

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"rphash/internal/adapt"
)

// Write-path benchmarks for `make bench-write` / benchstat
// comparisons across PRs. The Striped/SingleLock pair is the
// microbenchmark form of figure 5 and ablation A5: identical tables
// and workloads, only the writer-lock granularity differs. Run with
// -cpu to sweep writer parallelism, e.g.
//
//	go test -run '^$' -bench WriteUpsert -cpu 1,2,4,8 ./internal/core
func benchmarkWriteUpsert(b *testing.B, opts ...Option) {
	opts = append([]Option{WithInitialBuckets(8192)}, opts...)
	tbl := NewUint64[int](opts...)
	defer tbl.Close()
	const keySpace = 16384
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// splitmix-style per-goroutine stream, disjoint seeds.
		x := seq.Add(1) * 0x9e3779b97f4a7c15
		for pb.Next() {
			x += 0x9e3779b97f4a7c15
			k := (x ^ x>>31) % keySpace
			tbl.Set(k, int(k))
		}
	})
}

// BenchmarkWriteUpsertStriped: default per-bucket writer stripes.
func BenchmarkWriteUpsertStriped(b *testing.B) {
	benchmarkWriteUpsert(b)
}

// BenchmarkWriteUpsertSingleLock: WithStripes(1) — the paper's
// single writer mutex, the ablation baseline.
func BenchmarkWriteUpsertSingleLock(b *testing.B) {
	benchmarkWriteUpsert(b, WithStripes(1))
}

// Adaptive-maintenance benchmarks for `make bench-adapt`. The
// Adaptive/Striped/SingleLock trio is the microbenchmark form of
// ablation A6a: same table and workload, but the adaptive variant
// starts at one stripe and must discover its shape at runtime while
// the benchmark runs (its telemetry sampling also rides along, so
// the pair Striped-vs-Adaptive bounds the telemetry + controller
// overhead at steady state).

// BenchmarkAdaptWriteUpsert: adapt controller on, stripes start at 1.
func BenchmarkAdaptWriteUpsert(b *testing.B) {
	cfg := adapt.DefaultConfig()
	cfg.Interval = 10 * time.Millisecond
	cfg.GrowStreak = 1
	cfg.MinStripes = 1
	cfg.MinSamples = 64
	benchmarkWriteUpsert(b, WithStripes(1), WithAdapt(cfg))
}

// BenchmarkAdaptRetune: the cost of one SetStripes array swap on a
// quiet table (all-stripes hold, telemetry fold, publish).
func BenchmarkAdaptRetune(b *testing.B) {
	tbl := NewUint64[int](WithInitialBuckets(8192))
	defer tbl.Close()
	for i := uint64(0); i < 8192; i++ {
		tbl.Set(i, int(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&1 == 0 {
			tbl.SetStripes(128)
		} else {
			tbl.SetStripes(64)
		}
	}
}

// BenchmarkAdaptExpandParallel2 / Sequential: one full doubling of a
// preloaded table, the A6b wall-time comparison in benchstat form.
func benchmarkExpand(b *testing.B, workers int) {
	const keys = 1 << 15
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tbl := NewUint64[int](WithInitialBuckets(keys / 8))
		for k := uint64(0); k < keys; k++ {
			tbl.Set(k, int(k))
		}
		tbl.SetUnzipWorkers(workers)
		b.StartTimer()
		tbl.ExpandOnce()
		b.StopTimer()
		tbl.Close()
	}
}

func BenchmarkAdaptExpandSequential(b *testing.B) { benchmarkExpand(b, 1) }
func BenchmarkAdaptExpandParallel2(b *testing.B)  { benchmarkExpand(b, 2) }
func BenchmarkAdaptExpandParallel4(b *testing.B)  { benchmarkExpand(b, 4) }

// BenchmarkWriteMixedStriped adds deletes (and hence unlink +
// retirement traffic) to the striped write path.
func BenchmarkWriteMixedStriped(b *testing.B) {
	tbl := NewUint64[int](WithInitialBuckets(8192))
	defer tbl.Close()
	const keySpace = 16384
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		x := seq.Add(1) * 0x9e3779b97f4a7c15
		for pb.Next() {
			x += 0x9e3779b97f4a7c15
			k := (x ^ x>>31) % keySpace
			if x&7 == 0 {
				tbl.Delete(k)
			} else {
				tbl.Set(k, int(k))
			}
		}
	})
}

// BenchmarkWriteContendedResize measures writer throughput while a
// resizer continuously toggles the table — the stall the striped
// scheme shrinks from "the whole resize" to "the array swap phases
// plus my stripe's migration batches".
func BenchmarkWriteContendedResize(b *testing.B) {
	if runtime.GOMAXPROCS(0) < 2 {
		b.Skip("needs >= 2 procs to overlap writers with a resizer")
	}
	tbl := NewUint64[int](WithInitialBuckets(4096))
	defer tbl.Close()
	for i := uint64(0); i < 8192; i++ {
		tbl.Set(i, int(i))
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			tbl.ExpandOnce()
			tbl.ShrinkOnce()
		}
	}()
	const keySpace = 16384
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		x := seq.Add(1) * 0x9e3779b97f4a7c15
		for pb.Next() {
			x += 0x9e3779b97f4a7c15
			k := (x ^ x>>31) % keySpace
			tbl.Set(k, int(k))
		}
	})
	b.StopTimer()
	close(stop)
	<-done
}

// BenchmarkWriteSetBatch100 measures the sorted-stripe batch path:
// 100 upserts per op, at most one lock hold per touched stripe.
func BenchmarkWriteSetBatch100(b *testing.B) {
	tbl := NewUint64[int](WithInitialBuckets(8192))
	defer tbl.Close()
	const batch = 100
	const keySpace = 16384
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		x := seq.Add(1) * 0x9e3779b97f4a7c15
		ks := make([]uint64, batch)
		vs := make([]int, batch)
		for pb.Next() {
			for i := range ks {
				x += 0x9e3779b97f4a7c15
				ks[i] = (x ^ x>>31) % keySpace
				vs[i] = int(ks[i])
			}
			tbl.SetBatch(ks, vs)
		}
	})
}
