// Package ddds implements the "Dynamic Dynamic Data Structures"
// style resizable hash table the paper compares against. The paper
// characterizes DDDS by two reader-visible costs, both reproduced
// here:
//
//   - "Readers must check old and new data structures": during a
//     resize two tables exist; elements migrate one bucket at a time
//     from the old table to the current one, and lookups that miss in
//     the old table re-check the current table.
//
//   - "Readers have to wait until no concurrent resizes" / "slows
//     down the common case": every lookup validates a resize
//     generation stamp before and after the search and retries if a
//     resize started or finished mid-lookup — the common-case tax
//     (two extra shared loads and a branch) that keeps DDDS under
//     the relativistic table in the paper's baseline figure. While a
//     resize is in flight, lookups additionally announce themselves
//     on a shared reader counter (an atomic read-modify-write that
//     bounces between every reading core) so the resizer can
//     synchronize with them — which, combined with the double
//     search, is what collapses DDDS's resize curve.
//
// The migration protocol keeps lookups correct: an element is
// inserted into the current table before it is unlinked from the old
// one, and lookups search old before current, so (with sequentially
// consistent atomics) a lookup that misses the element in the old
// table must observe it in the current one.
package ddds

import (
	"runtime"
	"sync"
	"sync/atomic"

	"rphash/internal/hashfn"
)

type node[K comparable, V any] struct {
	next atomic.Pointer[node[K, V]]
	hash uint64
	key  K
	val  atomic.Pointer[V]
}

type array[K comparable, V any] struct {
	mask uint64
	slot []atomic.Pointer[node[K, V]]
}

func newArray[K comparable, V any](n uint64) *array[K, V] {
	return &array[K, V]{mask: n - 1, slot: make([]atomic.Pointer[node[K, V]], n)}
}

func (a *array[K, V]) size() uint64 { return a.mask + 1 }

// Table is a DDDS-style resizable hash table.
type Table[K comparable, V any] struct {
	hash func(K) uint64

	cur atomic.Pointer[array[K, V]]
	old atomic.Pointer[array[K, V]] // non-nil only during a resize

	// gen counts resize events; odd while a resize is in progress.
	gen atomic.Uint64
	// readers is the shared announcement counter every lookup bumps —
	// the deliberate scalability bottleneck described above. The
	// resizer drains it before discarding the old table.
	readers atomic.Int64

	mu    sync.Mutex // writers and the resizer's per-batch critical sections
	count atomic.Int64

	// batch is how many buckets migrate per mutex acquisition.
	batch int
}

// New creates a table with the given hash and initial bucket count
// (rounded to a power of two).
func New[K comparable, V any](hash func(K) uint64, buckets uint64) *Table[K, V] {
	t := &Table[K, V]{hash: hash, batch: 16}
	t.cur.Store(newArray[K, V](hashfn.NextPowerOfTwo(max(buckets, 1))))
	return t
}

// NewUint64 builds a uint64-keyed table with the standard mix.
func NewUint64[V any](buckets uint64) *Table[uint64, V] {
	return New[uint64, V](func(k uint64) uint64 { return hashfn.Uint64(k, 0) }, buckets)
}

// getRetryLimit bounds the generation-stamp retry loop in Get. A
// resizer flipping gen back-to-back (continuous resizing of a small
// table) can otherwise invalidate every attempt and starve the reader
// outright — the retry tax is the point of the DDDS model, livelock
// is not.
const getRetryLimit = 8

// Get returns the value for k. See the package comment for the
// lookup protocol and its deliberate costs: in the common case the
// lookup validates the resize generation before and after the search
// (two extra shared loads — the "slows down the common case" tax);
// while a resize is in flight it additionally announces itself on
// the shared reader counter (an RMW that bounces between every
// reading core), searches both tables, and retries if the resize
// state moved — "readers have to wait until no concurrent resizes".
//
// The retry is bounded: after getRetryLimit invalidated attempts Get
// falls back to an announced slow path that performs one exact
// old-then-current search under the writer mutex — the literal
// "readers have to wait until no concurrent resizes". Under the mutex
// gen, old, cur, and the migration batches are all frozen (every
// transition happens inside a t.mu critical section), so the double
// search needs no stamp revalidation and the reader is guaranteed to
// make progress via mutex fairness. (Accepting an *unlocked* double
// search would not be sound here: the C original may do that only
// because its resizer drains announced readers before completing,
// a wait this port deliberately omits — see Resize.)
func (t *Table[K, V]) Get(k K) (V, bool) {
	h := t.hash(k)
	for attempt := 0; attempt < getRetryLimit; attempt++ {
		g := t.gen.Load()
		var v V
		var ok bool
		if g&1 == 0 {
			// Common case: no resize in progress at entry.
			v, ok = search(t.cur.Load(), h, k)
		} else {
			// Resize in progress: announce, then check old first,
			// then current (see migration ordering).
			t.readers.Add(1)
			if o := t.old.Load(); o != nil {
				v, ok = search(o, h, k)
			}
			if !ok {
				v, ok = search(t.cur.Load(), h, k)
			}
			t.readers.Add(-1)
		}
		if t.gen.Load() == g {
			return v, ok
		}
		// A resize started or finished mid-lookup: retry.
	}

	// Stamp validation kept failing (a resizer is flipping gen
	// back-to-back). Announce, then search exactly with the resize
	// state pinned by the writer mutex.
	t.readers.Add(1)
	defer t.readers.Add(-1)
	t.mu.Lock()
	defer t.mu.Unlock()
	var v V
	var ok bool
	if o := t.old.Load(); o != nil {
		v, ok = search(o, h, k)
	}
	if !ok {
		v, ok = search(t.cur.Load(), h, k)
	}
	return v, ok
}

func search[K comparable, V any](a *array[K, V], h uint64, k K) (V, bool) {
	for n := a.slot[h&a.mask].Load(); n != nil; n = n.next.Load() {
		if n.hash == h && n.key == k {
			return *n.val.Load(), true
		}
	}
	var zero V
	return zero, false
}

// Set upserts k and reports whether it inserted. During a resize the
// new value always lands in the current table; any old-table copy is
// removed after the current-table copy is visible.
func (t *Table[K, V]) Set(k K, v V) bool {
	h := t.hash(k)
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.cur.Load()
	if n := findIn(cur, h, k); n != nil {
		n.val.Store(&v)
		return false
	}
	if o := t.old.Load(); o != nil {
		if n := findIn(o, h, k); n != nil {
			// Replace: publish in current first, then unlink from old
			// so lookups (old-then-current) never miss it.
			insert(cur, h, k, &v)
			unlink(o, h, k)
			return false
		}
	}
	insert(cur, h, k, &v)
	t.count.Add(1)
	return true
}

// Delete removes k from both tables, reporting whether it was present.
func (t *Table[K, V]) Delete(k K) bool {
	h := t.hash(k)
	t.mu.Lock()
	defer t.mu.Unlock()
	found := unlink(t.cur.Load(), h, k)
	if o := t.old.Load(); o != nil {
		if unlink(o, h, k) {
			found = true
		}
	}
	if found {
		t.count.Add(-1)
	}
	return found
}

func findIn[K comparable, V any](a *array[K, V], h uint64, k K) *node[K, V] {
	for n := a.slot[h&a.mask].Load(); n != nil; n = n.next.Load() {
		if n.hash == h && n.key == k {
			return n
		}
	}
	return nil
}

func insert[K comparable, V any](a *array[K, V], h uint64, k K, v *V) {
	n := &node[K, V]{hash: h, key: k}
	n.val.Store(v)
	slot := &a.slot[h&a.mask]
	n.next.Store(slot.Load())
	slot.Store(n)
}

func unlink[K comparable, V any](a *array[K, V], h uint64, k K) bool {
	slot := &a.slot[h&a.mask]
	var prev *node[K, V]
	for n := slot.Load(); n != nil; n = n.next.Load() {
		if n.hash == h && n.key == k {
			if prev == nil {
				slot.Store(n.next.Load())
			} else {
				prev.next.Store(n.next.Load())
			}
			return true
		}
		prev = n
	}
	return false
}

// Len returns the element count.
func (t *Table[K, V]) Len() int { return int(t.count.Load()) }

// Buckets returns the current (target) table's bucket count.
func (t *Table[K, V]) Buckets() int { return int(t.cur.Load().size()) }

// Resizing reports whether a migration is in flight.
func (t *Table[K, V]) Resizing() bool { return t.gen.Load()&1 == 1 }

// Resize migrates the table to n buckets (rounded to a power of two).
// Migration is incremental — `batch` buckets per writer-lock
// acquisition — so writers interleave with it, while readers pay the
// double-search-and-retry cost for the duration.
func (t *Table[K, V]) Resize(n uint64) {
	n = hashfn.NextPowerOfTwo(max(n, 1))
	t.mu.Lock()
	cur := t.cur.Load()
	if cur.size() == n || t.old.Load() != nil {
		// Already the right size, or another resize is in flight
		// (the mutex means that can only be a re-entrant misuse;
		// refuse quietly).
		t.mu.Unlock()
		return
	}
	fresh := newArray[K, V](n)
	t.old.Store(cur)
	t.cur.Store(fresh)
	t.gen.Add(1) // odd: resize in progress
	t.mu.Unlock()

	// Migrate bucket ranges under short critical sections.
	size := int(cur.size())
	for lo := 0; lo < size; lo += t.batch {
		hi := min(lo+t.batch, size)
		t.mu.Lock()
		for i := lo; i < hi; i++ {
			for {
				n := cur.slot[i].Load()
				if n == nil {
					break
				}
				// Publish in the new table before unlinking from the
				// old so old-then-current lookups cannot miss it.
				// (A writer may have already moved or deleted this
				// key; current wins.)
				if findIn(fresh, n.hash, n.key) == nil {
					insert(fresh, n.hash, n.key, n.val.Load())
				}
				cur.slot[i].Store(n.next.Load())
			}
		}
		t.mu.Unlock()
		// The batch boundary exists so writers and readers can
		// interleave with the migration; on GOMAXPROCS=1 the mutex
		// release alone never reschedules, so yield explicitly (the C
		// original's resizer is a separate thread the OS preempts).
		runtime.Gosched()
	}

	t.mu.Lock()
	t.old.Store(nil)
	t.gen.Add(1) // even: resize complete
	t.mu.Unlock()

	// In C, DDDS would now block until the announced-reader count
	// drained before freeing the retired table. Go's GC makes the
	// free safe without waiting (readers that straddled the flip
	// retry via the gen check), so the announcement counter's only
	// remaining role is its read-side cost — which is the point.
}

// Range iterates elements of both tables (deduplicating by key is the
// caller's concern only during a resize; the migration protocol keeps
// a key in at most one table from a single atomically-read chain's
// perspective, but a concurrent Range may see a migrating key twice).
func (t *Table[K, V]) Range(fn func(K, V) bool) {
	seen := make(map[K]struct{})
	emit := func(a *array[K, V]) bool {
		for i := range a.slot {
			for n := a.slot[i].Load(); n != nil; n = n.next.Load() {
				if _, dup := seen[n.key]; dup {
					continue
				}
				seen[n.key] = struct{}{}
				if !fn(n.key, *n.val.Load()) {
					return false
				}
			}
		}
		return true
	}
	if o := t.old.Load(); o != nil {
		if !emit(o) {
			return
		}
	}
	emit(t.cur.Load())
}

// Close releases resources (none; present for the shared contract).
func (t *Table[K, V]) Close() {}
