package ddds

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rphash/internal/httest"
)

func TestConformance(t *testing.T) {
	httest.RunAll(t, func(n uint64) httest.Map {
		return NewUint64[int](n)
	})
}

func TestGenParity(t *testing.T) {
	tbl := NewUint64[int](16)
	defer tbl.Close()
	if tbl.Resizing() {
		t.Fatal("fresh table reports a resize in progress")
	}
	tbl.Resize(64)
	if tbl.Resizing() {
		t.Fatal("Resizing still true after Resize returned")
	}
	if got := tbl.Buckets(); got != 64 {
		t.Fatalf("Buckets = %d, want 64", got)
	}
}

func TestResizeNoopSameSize(t *testing.T) {
	tbl := NewUint64[int](64)
	defer tbl.Close()
	g := tbl.gen.Load()
	tbl.Resize(64)
	if tbl.gen.Load() != g {
		t.Fatal("same-size Resize bumped the generation")
	}
}

// TestLookupDuringMigrationWindow pins the insert-before-unlink
// migration order: a reader that misses in the old table must find
// the key in the current table.
func TestLookupDuringMigration(t *testing.T) {
	tbl := NewUint64[int](32)
	defer tbl.Close()
	const n = 5000
	for i := uint64(0); i < n; i++ {
		tbl.Set(i, int(i))
	}

	stop := make(chan struct{})
	var misses atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			k := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				k = (k*2862933555777941757 + 3037000493) % n
				if v, ok := tbl.Get(k); !ok || v != int(k) {
					misses.Add(1)
				}
			}
		}(uint64(g + 1))
	}
	deadline := time.Now().Add(700 * time.Millisecond)
	for time.Now().Before(deadline) {
		tbl.Resize(1024)
		tbl.Resize(32)
	}
	close(stop)
	wg.Wait()
	if m := misses.Load(); m != 0 {
		t.Fatalf("%d lookups missed during migration", m)
	}
}

// TestWritersDuringMigration interleaves Set/Delete with an active
// incremental migration.
func TestWritersDuringMigration(t *testing.T) {
	tbl := NewUint64[int](16)
	defer tbl.Close()
	for i := uint64(0); i < 20000; i++ {
		tbl.Set(i, 1)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		tbl.Resize(4096)
	}()
	// Concurrent writes race the migration batches.
	for i := uint64(0); i < 20000; i += 2 {
		tbl.Set(i, 2)
	}
	for i := uint64(1); i < 20000; i += 4 {
		tbl.Delete(i)
	}
	<-done
	want := 20000 - 20000/4
	if got := tbl.Len(); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	for i := uint64(0); i < 20000; i += 2 {
		if v, ok := tbl.Get(i); !ok || v != 2 {
			t.Fatalf("Get(%d) = %d,%v want 2,true", i, v, ok)
		}
	}
}

func TestRangeDedup(t *testing.T) {
	tbl := NewUint64[int](64)
	defer tbl.Close()
	for i := uint64(0); i < 200; i++ {
		tbl.Set(i, int(i))
	}
	seen := map[uint64]int{}
	tbl.Range(func(k uint64, v int) bool {
		seen[k]++
		return true
	})
	if len(seen) != 200 {
		t.Fatalf("Range saw %d keys, want 200", len(seen))
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("key %d visited %d times", k, c)
		}
	}
}

// TestReaderProgressDuringContinuousResize is the regression test for
// the Get livelock: with a goroutine toggling the table between two
// sizes back-to-back, the unbounded generation-stamp retry loop used
// to make zero progress (every validation failed, forever). The
// bounded retry plus the announced mutex-pinned fallback guarantees
// each Get completes, so a reader must rack up lookups — with correct
// results — no matter how hot the resizer runs.
func TestReaderProgressDuringContinuousResize(t *testing.T) {
	tbl := NewUint64[int](64)
	defer tbl.Close()
	const keys = 512
	for i := uint64(0); i < keys; i++ {
		tbl.Set(i, int(i))
	}

	stop := make(chan struct{})
	var resizes atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tbl.Resize(128)
			tbl.Resize(64)
			resizes.Add(2)
		}
	}()

	var gets atomic.Int64
	var wrong atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := i % keys
			if v, ok := tbl.Get(k); !ok || v != int(k) {
				wrong.Add(1)
			}
			gets.Add(1)
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	if resizes.Load() < 2 {
		t.Skipf("machine too slow to resize continuously (%d resizes)", resizes.Load())
	}
	if gets.Load() == 0 {
		t.Fatalf("reader made zero progress across %d resizes (livelock)", resizes.Load())
	}
	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d/%d lookups returned a wrong or missing value", n, gets.Load())
	}
	t.Logf("%d gets against %d resizes", gets.Load(), resizes.Load())
}
