// Package hashfn provides the hash functions used by every table in
// this repository. They are deterministic across runs (unlike
// hash/maphash) so benchmark workloads and bucket distributions are
// reproducible, and they are written for the open-chaining tables'
// needs: the low bits must be well mixed, because bucket selection is
// hash & (nbuckets-1) with power-of-two nbuckets, and expansion
// splits a bucket on the next higher bit.
package hashfn

import "math/bits"

// SplitMix64 is the finalizer of the splitmix64 generator — a full
// 64-bit avalanche mix. It is the standard choice for hashing integer
// keys into power-of-two bucket arrays.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Uint64 hashes an integer key with an optional seed. A zero seed is
// valid and is what the tables use by default.
func Uint64(x, seed uint64) uint64 {
	return SplitMix64(x ^ (seed * 0xff51afd7ed558ccd))
}

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// Bytes hashes a byte slice with FNV-1a and a final avalanche mix.
// Plain FNV-1a has weak low-bit diffusion for short keys; the
// SplitMix64 finalizer fixes that for masked bucket selection.
func Bytes(b []byte, seed uint64) uint64 {
	h := uint64(fnvOffset64) ^ seed
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return SplitMix64(h)
}

// String hashes a string; same function as Bytes without allocation.
func String(s string, seed uint64) uint64 {
	h := uint64(fnvOffset64) ^ seed
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return SplitMix64(h)
}

// Reverse64 reverses the bits of x. Split-ordered and recursive-split
// analyses of bucket parentage use it; exposed for tests that verify
// the expand/shrink parent-child bucket relation.
func Reverse64(x uint64) uint64 { return bits.Reverse64(x) }

// BucketOf returns the bucket index for a hash in a table of n
// buckets. n must be a power of two.
func BucketOf(hash, n uint64) uint64 { return hash & (n - 1) }

// ParentBucket returns the bucket in a table of half the size that a
// bucket of an n-bucket table unzips from / zips into.
func ParentBucket(bucket, n uint64) uint64 { return bucket & (n/2 - 1) }

// BuddyBucket returns, for a bucket in a table of n buckets that is
// about to double, the second child bucket its chain unzips into (the
// first child keeps the same index).
func BuddyBucket(bucket, n uint64) uint64 { return bucket + n }

// IsPowerOfTwo reports whether n is a power of two (and nonzero).
func IsPowerOfTwo(n uint64) bool { return n != 0 && n&(n-1) == 0 }

// NextPowerOfTwo rounds n up to the nearest power of two, minimum 1.
func NextPowerOfTwo(n uint64) uint64 {
	if n <= 1 {
		return 1
	}
	return 1 << (64 - bits.LeadingZeros64(n-1))
}
