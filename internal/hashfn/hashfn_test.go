package hashfn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownVectors(t *testing.T) {
	// Spot-check canonical outputs of the splitmix64 finalizer
	// (Steele, Lea, Flood; matches the xorshift reference code and
	// the JDK SplittableRandom stream seeded at 0 and 1).
	if got := SplitMix64(0); got != 0xe220a8397b1dcdaf {
		t.Errorf("SplitMix64(0) = %#x, want 0xe220a8397b1dcdaf", got)
	}
	if got := SplitMix64(1); got != 0x910a2dec89025cc1 {
		t.Errorf("SplitMix64(1) = %#x, want 0x910a2dec89025cc1", got)
	}
}

func TestDeterminism(t *testing.T) {
	if SplitMix64(12345) != SplitMix64(12345) {
		t.Fatal("SplitMix64 not deterministic")
	}
	if Bytes([]byte("hello"), 7) != Bytes([]byte("hello"), 7) {
		t.Fatal("Bytes not deterministic")
	}
	if String("hello", 7) != Bytes([]byte("hello"), 7) {
		t.Fatal("String and Bytes disagree on identical input")
	}
}

func TestSeedChangesHash(t *testing.T) {
	if Uint64(42, 1) == Uint64(42, 2) {
		t.Error("different seeds should give different integer hashes")
	}
	if String("key", 1) == String("key", 2) {
		t.Error("different seeds should give different string hashes")
	}
}

// TestAvalancheLowBits: flipping any single input bit should flip each
// of the low 16 output bits with probability near 1/2. The tables mask
// hashes with small powers of two, so low-bit diffusion is the
// property that actually matters.
func TestAvalancheLowBits(t *testing.T) {
	const trials = 2000
	rng := rand.New(rand.NewSource(1))
	for bit := 0; bit < 64; bit += 7 { // sample of input bits
		flips := make([]int, 16)
		for i := 0; i < trials; i++ {
			x := rng.Uint64()
			a := SplitMix64(x)
			b := SplitMix64(x ^ (1 << bit))
			d := a ^ b
			for o := 0; o < 16; o++ {
				if d&(1<<o) != 0 {
					flips[o]++
				}
			}
		}
		for o, f := range flips {
			p := float64(f) / trials
			if math.Abs(p-0.5) > 0.08 {
				t.Errorf("input bit %d -> output bit %d flip rate %.3f, want ~0.5", bit, o, p)
			}
		}
	}
}

// TestBucketUniformity: hashing sequential integers must spread evenly
// over a power-of-two bucket array (chi-squared sanity bound).
func TestBucketUniformity(t *testing.T) {
	const n = 1 << 10
	const keys = 1 << 16
	counts := make([]int, n)
	for i := uint64(0); i < keys; i++ {
		counts[BucketOf(Uint64(i, 0), n)]++
	}
	mean := float64(keys) / n
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - mean
		chi2 += d * d / mean
	}
	// dof = n-1 = 1023; mean 1023, sd ~sqrt(2*1023)~45. 5 sigma ~ 1250.
	if chi2 > 1250 {
		t.Errorf("chi-squared %.1f too high for uniform bucket spread", chi2)
	}
}

func TestStringUniformity(t *testing.T) {
	const n = 1 << 8
	counts := make([]int, n)
	buf := make([]byte, 0, 16)
	for i := 0; i < 1<<14; i++ {
		buf = buf[:0]
		buf = append(buf, "key:"...)
		for v := i; ; v /= 10 {
			buf = append(buf, byte('0'+v%10))
			if v < 10 {
				break
			}
		}
		counts[BucketOf(Bytes(buf, 0), n)]++
	}
	mean := float64(1<<14) / n
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - mean
		chi2 += d * d / mean
	}
	if chi2 > 420 { // dof 255, 5+ sigma
		t.Errorf("chi-squared %.1f too high for string bucket spread", chi2)
	}
}

func TestParentBuddyRelation(t *testing.T) {
	// In a table doubling from m to 2m: bucket b of the old table
	// splits into children b and b+m; both children's parent is b.
	check := func(hash uint64) bool {
		const m = 1 << 6
		oldB := BucketOf(hash, m)
		newB := BucketOf(hash, 2*m)
		if ParentBucket(newB, 2*m) != oldB {
			return false
		}
		return newB == oldB || newB == BuddyBucket(oldB, m)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
}

func TestPowerOfTwoHelpers(t *testing.T) {
	for _, tc := range []struct {
		in   uint64
		pow  bool
		next uint64
	}{
		{0, false, 1}, {1, true, 1}, {2, true, 2}, {3, false, 4},
		{4, true, 4}, {5, false, 8}, {1023, false, 1024}, {1024, true, 1024},
		{1 << 40, true, 1 << 40}, {(1 << 40) + 1, false, 1 << 41},
	} {
		if got := IsPowerOfTwo(tc.in); got != tc.pow {
			t.Errorf("IsPowerOfTwo(%d) = %v, want %v", tc.in, got, tc.pow)
		}
		if got := NextPowerOfTwo(tc.in); got != tc.next {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", tc.in, got, tc.next)
		}
	}
}

func TestReverse64(t *testing.T) {
	if Reverse64(1) != 1<<63 {
		t.Error("Reverse64(1) should set the top bit")
	}
	if err := quick.Check(func(x uint64) bool {
		return Reverse64(Reverse64(x)) == x
	}, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSplitMix64(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += SplitMix64(uint64(i))
	}
	_ = acc
}

func BenchmarkString16(b *testing.B) {
	s := "client:conn:0042"
	b.SetBytes(int64(len(s)))
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += String(s, 0)
	}
	_ = acc
}
