// Package httest is a conformance suite shared by every hash-table
// implementation in this repository (the relativistic core and all
// baselines). Each table package wraps its type in the Map interface
// and runs the same behavioural, property-based and concurrency
// checks, so "baseline" never means "less tested".
package httest

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// Map is the uniform uint64->int table contract the suite exercises.
type Map interface {
	// Get returns the value for k.
	Get(k uint64) (int, bool)
	// Set upserts and reports whether k was newly inserted.
	Set(k uint64, v int) bool
	// Delete removes k and reports whether it was present.
	Delete(k uint64) bool
	// Len returns the element count.
	Len() int
	// Resize rehashes/retargets to n buckets (rounded as the
	// implementation documents).
	Resize(n uint64)
	// Buckets returns the current bucket count.
	Buckets() int
	// Close releases resources.
	Close()
}

// Factory builds a fresh table with roughly n initial buckets.
type Factory func(n uint64) Map

// RunAll executes the whole conformance suite.
func RunAll(t *testing.T, mk Factory) {
	t.Run("Basic", func(t *testing.T) { RunBasic(t, mk) })
	t.Run("Model", func(t *testing.T) { RunModel(t, mk) })
	t.Run("ResizePreserves", func(t *testing.T) { RunResizePreserves(t, mk) })
	t.Run("TortureStableReaders", func(t *testing.T) { RunTortureStableReaders(t, mk) })
	t.Run("ConcurrentWriters", func(t *testing.T) { RunConcurrentWriters(t, mk) })
}

// RunBasic covers the single-threaded contract.
func RunBasic(t *testing.T, mk Factory) {
	m := mk(16)
	defer m.Close()

	if m.Len() != 0 {
		t.Fatalf("new table Len = %d", m.Len())
	}
	if _, ok := m.Get(1); ok {
		t.Fatal("Get on empty table succeeded")
	}
	if !m.Set(1, 10) {
		t.Fatal("first Set did not report insertion")
	}
	if m.Set(1, 20) {
		t.Fatal("second Set reported insertion")
	}
	if v, ok := m.Get(1); !ok || v != 20 {
		t.Fatalf("Get(1) = %d,%v want 20,true", v, ok)
	}
	if !m.Delete(1) || m.Delete(1) {
		t.Fatal("Delete semantics wrong")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after delete", m.Len())
	}
	// Zero key and value round-trip.
	m.Set(0, 0)
	if v, ok := m.Get(0); !ok || v != 0 {
		t.Fatalf("zero roundtrip = %d,%v", v, ok)
	}
}

// RunModel is the property-based map-equivalence check, including
// resizes at random points.
func RunModel(t *testing.T, mk Factory) {
	type op struct {
		Kind uint8
		Key  uint16
		Val  int32
	}
	check := func(ops []op) bool {
		m := mk(4)
		defer m.Close()
		model := map[uint64]int{}
		for _, o := range ops {
			k := uint64(o.Key % 256)
			switch o.Kind % 6 {
			case 0, 1, 2: // Set
				_, existed := model[k]
				if m.Set(k, int(o.Val)) == existed {
					return false
				}
				model[k] = int(o.Val)
			case 3: // Delete
				_, existed := model[k]
				if m.Delete(k) != existed {
					return false
				}
				delete(model, k)
			case 4: // Get
				wantV, want := model[k]
				gotV, got := m.Get(k)
				if got != want || (got && gotV != wantV) {
					return false
				}
			case 5: // Resize
				m.Resize(uint64(o.Key)%512 + 1)
			}
		}
		if m.Len() != len(model) {
			return false
		}
		for k, v := range model {
			if got, ok := m.Get(k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// RunResizePreserves grows and shrinks across a wide range and
// verifies contents at each step.
func RunResizePreserves(t *testing.T, mk Factory) {
	m := mk(8)
	defer m.Close()
	const n = 3000
	for i := uint64(0); i < n; i++ {
		m.Set(i, int(i))
	}
	for _, target := range []uint64{1024, 4, 8192, 1, 256} {
		m.Resize(target)
		if m.Len() != n {
			t.Fatalf("Resize(%d): Len = %d, want %d", target, m.Len(), n)
		}
		for i := uint64(0); i < n; i += 13 {
			if v, ok := m.Get(i); !ok || v != int(i) {
				t.Fatalf("Resize(%d): Get(%d) = %d,%v", target, i, v, ok)
			}
		}
	}
}

// RunTortureStableReaders runs readers asserting a fixed key set
// while a resizer thrashes the bucket count and writers churn a
// disjoint range. Every implementation must pass; only the
// performance differs.
func RunTortureStableReaders(t *testing.T, mk Factory) {
	m := mk(64)
	defer m.Close()
	const stable = 1024
	for i := uint64(0); i < stable; i++ {
		m.Set(i, int(i))
	}

	stop := make(chan struct{})
	var misses atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(stable))
				if v, ok := m.Get(k); !ok || v != int(k) {
					misses.Add(1)
				}
			}
		}(int64(g))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := stable + uint64(rand.Intn(4096))
			m.Set(k, 1)
			m.Delete(k)
		}
	}()

	deadline := time.Now().Add(700 * time.Millisecond)
	for time.Now().Before(deadline) {
		m.Resize(1024)
		m.Resize(64)
	}
	close(stop)
	wg.Wait()
	if n := misses.Load(); n != 0 {
		t.Fatalf("%d lookups missed stable keys during resize churn", n)
	}
}

// RunConcurrentWriters verifies all writes land under write-write and
// write-resize races.
func RunConcurrentWriters(t *testing.T, mk Factory) {
	m := mk(16)
	defer m.Close()
	const writers = 4
	const per = 1500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < per; i++ {
				m.Set(base+i, int(base+i))
			}
		}(uint64(w) << 32)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			m.Resize(2048)
			m.Resize(32)
		}
	}()
	wg.Wait()
	if got := m.Len(); got != writers*per {
		t.Fatalf("Len = %d, want %d", got, writers*per)
	}
	for w := 0; w < writers; w++ {
		base := uint64(w) << 32
		for i := uint64(0); i < per; i += 31 {
			if v, ok := m.Get(base + i); !ok || v != int(base+i) {
				t.Fatalf("Get(%d) = %d,%v", base+i, v, ok)
			}
		}
	}
}
