// Package lockht implements the lock-based hash tables the paper
// benchmarks against: a chained table guarded by a single
// reader-writer lock (the paper's "rwlock" curve), plus global-mutex
// and sharded per-bucket-lock variants for ablation.
//
// These tables are deliberately conventional. Every reader acquires a
// lock, which means every lookup performs atomic read-modify-write
// operations on a shared cache line; that — not the critical section —
// is what flattens the rwlock curve in the paper's Figure 1 ("no
// actual reader parallelism; readers get serialized" by cache-line
// bouncing on the lock word).
package lockht

import (
	"sync"

	"rphash/internal/hashfn"
)

// node is a chain element; all access is under the table's lock(s).
type node[K comparable, V any] struct {
	next *node[K, V]
	hash uint64
	key  K
	val  V
}

// Mode selects the locking strategy.
type Mode int

const (
	// RWLock guards the whole table with one sync.RWMutex: readers
	// take RLock. This is the paper's rwlock baseline.
	RWLock Mode = iota
	// Mutex guards the whole table with one sync.Mutex (readers and
	// writers fully serialized) — the memcached "global cache lock"
	// model.
	Mutex
	// Sharded guards buckets with a fixed array of reader-writer
	// locks (disjoint-access parallelism; "fine-grained locking" in
	// the paper's taxonomy). Resizes take every shard lock.
	Sharded
)

const numShards = 64

// Table is a lock-based chained hash table keyed by K.
type Table[K comparable, V any] struct {
	mode   Mode
	hash   func(K) uint64
	rw     sync.RWMutex
	mu     sync.Mutex
	shards [numShards]sync.RWMutex

	// guarded by the table lock(s)
	mask uint64
	slot []*node[K, V]
	size int
}

// New creates a table with the given locking mode, hash function and
// initial bucket count (rounded up to a power of two, minimum 1, and
// at least numShards in Sharded mode so shards map onto buckets).
func New[K comparable, V any](mode Mode, hash func(K) uint64, buckets uint64) *Table[K, V] {
	if mode == Sharded && buckets < numShards {
		buckets = numShards
	}
	n := hashfn.NextPowerOfTwo(max(buckets, 1))
	return &Table[K, V]{
		mode: mode,
		hash: hash,
		mask: n - 1,
		slot: make([]*node[K, V], n),
	}
}

// NewUint64 builds a uint64-keyed table with the standard mix.
func NewUint64[V any](mode Mode, buckets uint64) *Table[uint64, V] {
	return New[uint64, V](mode, func(k uint64) uint64 { return hashfn.Uint64(k, 0) }, buckets)
}

// lockRead acquires the read-side lock covering hash h.
func (t *Table[K, V]) lockRead(h uint64) func() {
	switch t.mode {
	case RWLock:
		t.rw.RLock()
		return t.rw.RUnlock
	case Mutex:
		t.mu.Lock()
		return t.mu.Unlock
	default:
		s := &t.shards[h%numShards]
		s.RLock()
		return s.RUnlock
	}
}

// lockWrite acquires the write-side lock covering hash h.
func (t *Table[K, V]) lockWrite(h uint64) func() {
	switch t.mode {
	case RWLock:
		t.rw.Lock()
		return t.rw.Unlock
	case Mutex:
		t.mu.Lock()
		return t.mu.Unlock
	default:
		s := &t.shards[h%numShards]
		s.Lock()
		return s.Unlock
	}
}

// lockAll acquires exclusive access to the whole table (resize).
func (t *Table[K, V]) lockAll() func() {
	switch t.mode {
	case RWLock:
		t.rw.Lock()
		return t.rw.Unlock
	case Mutex:
		t.mu.Lock()
		return t.mu.Unlock
	default:
		for i := range t.shards {
			t.shards[i].Lock()
		}
		return func() {
			for i := range t.shards {
				t.shards[i].Unlock()
			}
		}
	}
}

// Get returns the value for k.
func (t *Table[K, V]) Get(k K) (V, bool) {
	h := t.hash(k)
	unlock := t.lockRead(h)
	defer unlock()
	for n := t.slot[h&t.mask]; n != nil; n = n.next {
		if n.hash == h && n.key == k {
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Set upserts k and reports whether it inserted a new key.
func (t *Table[K, V]) Set(k K, v V) bool {
	h := t.hash(k)
	unlock := t.lockWrite(h)
	defer unlock()
	i := h & t.mask
	for n := t.slot[i]; n != nil; n = n.next {
		if n.hash == h && n.key == k {
			n.val = v
			return false
		}
	}
	t.slot[i] = &node[K, V]{next: t.slot[i], hash: h, key: k, val: v}
	t.addSize(1)
	return true
}

// Delete removes k and reports whether it was present.
func (t *Table[K, V]) Delete(k K) bool {
	h := t.hash(k)
	unlock := t.lockWrite(h)
	defer unlock()
	i := h & t.mask
	var prev *node[K, V]
	for n := t.slot[i]; n != nil; n = n.next {
		if n.hash == h && n.key == k {
			if prev == nil {
				t.slot[i] = n.next
			} else {
				prev.next = n.next
			}
			t.addSize(-1)
			return true
		}
		prev = n
	}
	return false
}

func (t *Table[K, V]) addSize(d int) {
	if t.mode == Sharded {
		// Bucket locks do not serialize cross-shard counter updates;
		// piggyback on the global mutex (uncontended in this mode).
		t.mu.Lock()
		t.size += d
		t.mu.Unlock()
		return
	}
	t.size += d
}

// Len returns the element count.
func (t *Table[K, V]) Len() int {
	if t.mode == Sharded {
		t.mu.Lock()
		defer t.mu.Unlock()
		return t.size
	}
	unlock := t.lockRead(0)
	defer unlock()
	return t.size
}

// Buckets returns the bucket count.
func (t *Table[K, V]) Buckets() int {
	unlock := t.lockRead(0)
	defer unlock()
	return len(t.slot)
}

// Resize rehashes into n buckets (rounded up to a power of two). The
// whole table is locked for the duration — the conventional cost the
// paper's algorithm avoids.
func (t *Table[K, V]) Resize(n uint64) {
	if t.mode == Sharded && n < numShards {
		n = numShards
	}
	n = hashfn.NextPowerOfTwo(max(n, 1))
	unlock := t.lockAll()
	defer unlock()
	if uint64(len(t.slot)) == n {
		return
	}
	fresh := make([]*node[K, V], n)
	mask := n - 1
	for _, head := range t.slot {
		for nd := head; nd != nil; {
			next := nd.next
			i := nd.hash & mask
			nd.next = fresh[i]
			fresh[i] = nd
			nd = next
		}
	}
	t.slot = fresh
	t.mask = mask
}

// Range calls fn for each element until it returns false, holding the
// read lock(s) for the duration.
func (t *Table[K, V]) Range(fn func(K, V) bool) {
	unlock := t.lockAllRead()
	defer unlock()
	for _, head := range t.slot {
		for n := head; n != nil; n = n.next {
			if !fn(n.key, n.val) {
				return
			}
		}
	}
}

func (t *Table[K, V]) lockAllRead() func() {
	switch t.mode {
	case RWLock:
		t.rw.RLock()
		return t.rw.RUnlock
	case Mutex:
		t.mu.Lock()
		return t.mu.Unlock
	default:
		for i := range t.shards {
			t.shards[i].RLock()
		}
		return func() {
			for i := range t.shards {
				t.shards[i].RUnlock()
			}
		}
	}
}

// Close releases resources (none for lock tables; present for the
// shared Map contract).
func (t *Table[K, V]) Close() {}
