package lockht

import (
	"testing"

	"rphash/internal/httest"
)

func factory(mode Mode) httest.Factory {
	return func(n uint64) httest.Map {
		return NewUint64[int](mode, n)
	}
}

func TestConformanceRWLock(t *testing.T)  { httest.RunAll(t, factory(RWLock)) }
func TestConformanceMutex(t *testing.T)   { httest.RunAll(t, factory(Mutex)) }
func TestConformanceSharded(t *testing.T) { httest.RunAll(t, factory(Sharded)) }

func TestShardedFloorsBuckets(t *testing.T) {
	tbl := NewUint64[int](Sharded, 4)
	defer tbl.Close()
	if got := tbl.Buckets(); got < numShards {
		t.Fatalf("Sharded Buckets = %d, want >= %d so shard locks cover whole buckets", got, numShards)
	}
	tbl.Resize(2)
	if got := tbl.Buckets(); got < numShards {
		t.Fatalf("Sharded Resize went below shard floor: %d", got)
	}
}

func TestRangeAllModes(t *testing.T) {
	for _, mode := range []Mode{RWLock, Mutex, Sharded} {
		tbl := NewUint64[int](mode, 64)
		for i := uint64(0); i < 100; i++ {
			tbl.Set(i, int(i))
		}
		seen := 0
		tbl.Range(func(k uint64, v int) bool {
			if int(k) != v {
				t.Fatalf("mode %d: Range pair %d=%d", mode, k, v)
			}
			seen++
			return true
		})
		if seen != 100 {
			t.Fatalf("mode %d: Range visited %d, want 100", mode, seen)
		}
		// Early stop.
		n := 0
		tbl.Range(func(uint64, int) bool { n++; return false })
		if n != 1 {
			t.Fatalf("mode %d: early-stop Range visited %d", mode, n)
		}
		tbl.Close()
	}
}

func TestResizeRehashesChains(t *testing.T) {
	tbl := NewUint64[int](RWLock, 2)
	defer tbl.Close()
	for i := uint64(0); i < 1000; i++ {
		tbl.Set(i, int(i))
	}
	tbl.Resize(1024)
	if got := tbl.Buckets(); got != 1024 {
		t.Fatalf("Buckets = %d, want 1024", got)
	}
	for i := uint64(0); i < 1000; i++ {
		if v, ok := tbl.Get(i); !ok || v != int(i) {
			t.Fatalf("Get(%d) = %d,%v after rehash", i, v, ok)
		}
	}
}

func TestStringKeys(t *testing.T) {
	tbl := New[string, int](Mutex, func(s string) uint64 {
		var h uint64
		for i := 0; i < len(s); i++ {
			h = h*31 + uint64(s[i])
		}
		return h
	}, 16)
	defer tbl.Close()
	tbl.Set("a", 1)
	tbl.Set("b", 2)
	if v, ok := tbl.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d,%v", v, ok)
	}
}
