package mcbench

import (
	"fmt"
	"net"
	"time"

	"rphash/internal/memcache"
	"rphash/internal/stats"
)

// FigureConfig parameterizes the paper's memcached figure (requests/s
// vs mc-benchmark processes, curves RP GET / default GET / default
// SET / RP SET).
type FigureConfig struct {
	// Processes is the x-axis sweep (paper: 1..12).
	Processes []int
	// ConnsPerProcess, Keys, ValueSize, Duration, Warm as in Config.
	ConnsPerProcess int
	Keys            uint64
	ValueSize       int
	Duration        time.Duration
	Warm            time.Duration
	Pipeline        int
	MultiGet        int
	// Repeats measures each point this many times, keeping the median.
	Repeats int
}

// DefaultFigureConfig mirrors the paper's sweep.
func DefaultFigureConfig() FigureConfig {
	procs := make([]int, 12)
	for i := range procs {
		procs[i] = i + 1
	}
	return FigureConfig{
		Processes:       procs,
		ConnsPerProcess: 1,
		Keys:            10000,
		ValueSize:       100,
		Duration:        400 * time.Millisecond,
		Warm:            50 * time.Millisecond,
		Pipeline:        4,
		// 16-key multigets amortize protocol bytes over table work so
		// the storage engine, not the loopback socket, is what the
		// figure measures on small hosts (see EXPERIMENTS.md).
		MultiGet: 16,
		Repeats:  3,
	}
}

// engine starts an in-process server with the named store.
func startServer(engine string) (*memcache.Server, string, error) {
	var store memcache.Store
	switch engine {
	case "rp":
		store = memcache.NewRPStore(0)
	case "lock":
		store = memcache.NewLockStore(0)
	default:
		return nil, "", fmt.Errorf("mcbench: unknown engine %q", engine)
	}
	srv := memcache.NewServer(store, time.Second)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		store.Close()
		return nil, "", err
	}
	go srv.Serve(ln) //nolint:errcheck // shut down via Close
	return srv, ln.Addr().String(), nil
}

// measure runs one series: requests/s (thousands) vs process count,
// best of cfg.Repeats runs per point (see internal/bench's
// measureSeries for why best-of-N on a small shared host).
func measure(name, engine string, op Op, cfg FigureConfig) (stats.Series, error) {
	if cfg.Repeats <= 0 {
		cfg.Repeats = 1
	}
	s := stats.Series{Name: name}
	// One server and one preload per series: the workload neither
	// grows nor evicts, so state carries across points, and the sweep
	// spends its wall time measuring rather than preloading.
	srv, addr, err := startServer(engine)
	if err != nil {
		return s, err
	}
	defer srv.Close()
	if err := Preload(addr, cfg.Keys, cfg.ValueSize); err != nil {
		return s, fmt.Errorf("preload %s: %w", name, err)
	}
	for _, procs := range cfg.Processes {
		best := 0.0
		for rep := 0; rep < cfg.Repeats; rep++ {
			ops, err := Run(Config{
				Addr:            addr,
				Processes:       procs,
				ConnsPerProcess: cfg.ConnsPerProcess,
				Op:              op,
				Keys:            cfg.Keys,
				ValueSize:       cfg.ValueSize,
				Duration:        cfg.Duration,
				Warm:            cfg.Warm,
				Pipeline:        cfg.Pipeline,
				MultiGet:        cfg.MultiGet,
			})
			if err != nil {
				return s, fmt.Errorf("run %s procs=%d: %w", name, procs, err)
			}
			if ops > best {
				best = ops
			}
		}
		s.Add(float64(procs), best/1e3) // thousands of requests/second
	}
	return s, nil
}

// Fig5 regenerates the paper's "memcached results" figure.
func Fig5(cfg FigureConfig) (stats.Figure, error) {
	if len(cfg.Processes) == 0 {
		cfg = DefaultFigureConfig()
	}
	fig := stats.Figure{
		Title:  "Figure 5: memcached with relativistic hash table vs stock global lock",
		XLabel: "mc-benchmark processes",
		YLabel: "requests/second (thousands)",
	}
	for _, run := range []struct {
		name   string
		engine string
		op     Op
	}{
		{"RP GET", "rp", GET},
		{"default GET", "lock", GET},
		{"default SET", "lock", SET},
		{"RP SET", "rp", SET},
	} {
		s, err := measure(run.name, run.engine, run.op, cfg)
		if err != nil {
			return fig, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
