// Package mcbench is the load generator for the paper's memcached
// experiment — the moral equivalent of the mc-benchmark tool the
// paper drives its figure with: N independent client "processes"
// (goroutine groups with private TCP connections) issue closed-loop
// GET-only or SET-only load against a memcached-protocol server and
// report aggregate requests/second.
package mcbench

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"rphash/internal/stats"
	"rphash/internal/workload"
)

// Op selects the benchmark operation.
type Op int

// Benchmark operations.
const (
	GET Op = iota
	SET
)

// String names the op like the paper's series labels.
func (o Op) String() string {
	if o == GET {
		return "GET"
	}
	return "SET"
}

// Config parameterizes one run.
type Config struct {
	// Addr is the server's TCP address.
	Addr string
	// Processes is the number of independent client groups.
	Processes int
	// ConnsPerProcess is how many connections each group multiplexes
	// (mc-benchmark uses tens; loopback saturates with few).
	ConnsPerProcess int
	// Op is GET or SET.
	Op Op
	// Keys is the keyspace size; keys are "key:%012d".
	Keys uint64
	// ValueSize is the SET payload size in bytes.
	ValueSize int
	// Duration is the measured interval.
	Duration time.Duration
	// Warm is the unmeasured warmup interval.
	Warm time.Duration
	// Pipeline is the number of requests in flight per connection
	// (1 = strict request/response like stock mc-benchmark).
	Pipeline int
	// MultiGet batches this many keys into each get command (GET
	// runs only). Each fetched key counts as one request, matching
	// how memcached deployments and the paper's workload amortize
	// protocol overhead over store lookups.
	MultiGet int
}

// fillDefaults applies the defaults the figure runner uses.
func (c *Config) fillDefaults() {
	if c.Processes <= 0 {
		c.Processes = 1
	}
	if c.ConnsPerProcess <= 0 {
		c.ConnsPerProcess = 4
	}
	if c.Keys == 0 {
		c.Keys = 10000
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 100
	}
	if c.Duration <= 0 {
		c.Duration = 500 * time.Millisecond
	}
	if c.Warm <= 0 {
		c.Warm = 50 * time.Millisecond
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 1
	}
	if c.MultiGet <= 0 {
		c.MultiGet = 1
	}
}

// FormatKey renders key i in mc-benchmark's style.
func FormatKey(i uint64) string {
	return fmt.Sprintf("key:%012d", i)
}

// Preload stores every key in the keyspace so GET runs measure hits.
func Preload(addr string, keys uint64, valueSize int) error {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer nc.Close()
	w := bufio.NewWriterSize(nc, 64<<10)
	r := bufio.NewReaderSize(nc, 64<<10)
	payload := bytes.Repeat([]byte{'x'}, valueSize)
	for i := uint64(0); i < keys; i++ {
		fmt.Fprintf(w, "set %s 0 0 %d\r\n", FormatKey(i), valueSize)
		w.Write(payload)
		w.WriteString("\r\n")
		// Flush in batches; read replies in batches to keep the
		// socket from deadlocking on full buffers.
		if i%128 == 127 || i == keys-1 {
			if err := w.Flush(); err != nil {
				return err
			}
			for j := i - (i % 128); j <= i; j++ {
				line, err := r.ReadString('\n')
				if err != nil {
					return err
				}
				if line != "STORED\r\n" {
					return fmt.Errorf("mcbench: preload got %q", line)
				}
			}
		}
	}
	return nil
}

// Run executes one measurement and returns aggregate requests/second.
func Run(cfg Config) (float64, error) {
	cfg.fillDefaults()

	totalConns := cfg.Processes * cfg.ConnsPerProcess
	counters := stats.NewCounterSet(totalConns)
	var wg sync.WaitGroup
	start := make(chan struct{})
	stopWarm := make(chan struct{})
	stop := make(chan struct{})
	errCh := make(chan error, totalConns)

	for p := 0; p < cfg.Processes; p++ {
		for ci := 0; ci < cfg.ConnsPerProcess; ci++ {
			id := p*cfg.ConnsPerProcess + ci
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				if err := runConn(cfg, id, counters.Slot(id), start, stopWarm, stop); err != nil {
					select {
					case errCh <- err:
					default:
					}
				}
			}(id)
		}
	}

	close(start)
	time.Sleep(cfg.Warm)
	close(stopWarm)
	t0 := time.Now()
	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(t0)

	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	return float64(counters.Total()) / elapsed.Seconds(), nil
}

// runConn drives one connection's closed loop.
func runConn(cfg Config, id int, slot *stats.PaddedCounter,
	start, stopWarm, stop <-chan struct{}) error {

	nc, err := net.Dial("tcp", cfg.Addr)
	if err != nil {
		return err
	}
	defer nc.Close()
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	w := bufio.NewWriterSize(nc, 16<<10)
	r := bufio.NewReaderSize(nc, 16<<10)
	gen := workload.NewUniform(cfg.Keys, uint64(id)*0x9e3779b97f4a7c15+7)
	payload := bytes.Repeat([]byte{'y'}, cfg.ValueSize)

	// Pre-rendered keys and a reusable request buffer keep client-side
	// CPU out of the measurement (clients and server share the host).
	keys := renderedKeys(cfg.Keys)
	sizeStr := strconv.Itoa(cfg.ValueSize)
	req := make([]byte, 0, 4096)

	<-start
	warmed := false
	var local uint64
	flushCount := func() {
		slot.Add(local)
		local = 0
	}
	defer flushCount()

	for {
		select {
		case <-stop:
			return nil
		default:
		}
		if !warmed {
			select {
			case <-stopWarm:
				warmed = true
				local = 0
			default:
			}
		}

		// Issue cfg.Pipeline requests, then read their replies.
		req = req[:0]
		for i := 0; i < cfg.Pipeline; i++ {
			if cfg.Op == GET {
				req = append(req, "get"...)
				for j := 0; j < cfg.MultiGet; j++ {
					req = append(req, ' ')
					req = append(req, keys[gen.Key()]...)
				}
				req = append(req, '\r', '\n')
			} else {
				req = append(req, "set "...)
				req = append(req, keys[gen.Key()]...)
				req = append(req, " 0 0 "...)
				req = append(req, sizeStr...)
				req = append(req, '\r', '\n')
				req = append(req, payload...)
				req = append(req, '\r', '\n')
			}
		}
		if _, err := w.Write(req); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
		for i := 0; i < cfg.Pipeline; i++ {
			if cfg.Op == GET {
				got, err := readGetReply(r)
				if err != nil {
					return err
				}
				if warmed {
					local += uint64(got)
				}
			} else {
				line, err := r.ReadString('\n')
				if err != nil {
					return err
				}
				if line != "STORED\r\n" {
					return fmt.Errorf("mcbench: set got %q", line)
				}
				if warmed {
					local++
				}
			}
		}
	}
}

// renderedKeys returns the keyspace pre-formatted. Key sets are small
// (default 10k ~ 160KB); sharing one render per connection is cheap.
func renderedKeys(n uint64) []string {
	out := make([]string, n)
	for i := uint64(0); i < n; i++ {
		out[i] = FormatKey(i)
	}
	return out
}

// readGetReply consumes one get response — any number of VALUE blocks
// terminated by END — and returns the hit count.
func readGetReply(r *bufio.Reader) (int, error) {
	hits := 0
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return hits, err
		}
		if line == "END\r\n" {
			return hits, nil
		}
		if len(line) < 6 || line[:6] != "VALUE " {
			return hits, fmt.Errorf("mcbench: get got %q", line)
		}
		// VALUE <key> <flags> <bytes>\r\n — size is the last field.
		fieldsStr := line[6 : len(line)-2]
		sz := 0
		if i := lastSpace(fieldsStr); i >= 0 {
			sz, err = strconv.Atoi(fieldsStr[i+1:])
			if err != nil {
				return hits, fmt.Errorf("mcbench: bad VALUE size in %q", line)
			}
		}
		if _, err := io.CopyN(io.Discard, r, int64(sz)+2); err != nil {
			return hits, err
		}
		hits++
	}
}

func lastSpace(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == ' ' {
			return i
		}
	}
	return -1
}
