package mcbench

import (
	"net"
	"testing"
	"time"

	"rphash/internal/memcache"
)

func startTestServerAddr(t *testing.T, engine string) string {
	t.Helper()
	var store memcache.Store
	if engine == "rp" {
		store = memcache.NewRPStore(0)
	} else {
		store = memcache.NewLockStore(0)
	}
	srv := memcache.NewServer(store, 0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

func TestFormatKey(t *testing.T) {
	if got := FormatKey(42); got != "key:000000000042" {
		t.Fatalf("FormatKey = %q", got)
	}
}

func TestPreloadAndGetRun(t *testing.T) {
	for _, engine := range []string{"lock", "rp"} {
		t.Run(engine, func(t *testing.T) {
			addr := startTestServerAddr(t, engine)
			if err := Preload(addr, 500, 32); err != nil {
				t.Fatalf("Preload: %v", err)
			}
			ops, err := Run(Config{
				Addr:            addr,
				Processes:       2,
				ConnsPerProcess: 2,
				Op:              GET,
				Keys:            500,
				ValueSize:       32,
				Duration:        60 * time.Millisecond,
				Warm:            10 * time.Millisecond,
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if ops <= 0 {
				t.Fatal("zero GET throughput")
			}
		})
	}
}

func TestSetRun(t *testing.T) {
	addr := startTestServerAddr(t, "rp")
	ops, err := Run(Config{
		Addr:            addr,
		Processes:       2,
		ConnsPerProcess: 1,
		Op:              SET,
		Keys:            200,
		ValueSize:       16,
		Duration:        60 * time.Millisecond,
		Warm:            10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ops <= 0 {
		t.Fatal("zero SET throughput")
	}
}

func TestPipelinedRun(t *testing.T) {
	addr := startTestServerAddr(t, "rp")
	if err := Preload(addr, 200, 16); err != nil {
		t.Fatal(err)
	}
	ops, err := Run(Config{
		Addr:            addr,
		Processes:       1,
		ConnsPerProcess: 1,
		Op:              GET,
		Keys:            200,
		ValueSize:       16,
		Duration:        60 * time.Millisecond,
		Warm:            10 * time.Millisecond,
		Pipeline:        16,
	})
	if err != nil {
		t.Fatalf("pipelined Run: %v", err)
	}
	if ops <= 0 {
		t.Fatal("zero pipelined throughput")
	}
}

func TestOpString(t *testing.T) {
	if GET.String() != "GET" || SET.String() != "SET" {
		t.Fatal("Op.String labels wrong")
	}
}

func TestFig5Tiny(t *testing.T) {
	cfg := DefaultFigureConfig()
	cfg.Processes = []int{1}
	cfg.Keys = 200
	cfg.Duration = 40 * time.Millisecond
	cfg.Warm = 10 * time.Millisecond
	fig, err := Fig5(cfg)
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("Fig5 series = %d, want 4", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 1 || s.Points[0].Y <= 0 {
			t.Fatalf("series %q points %+v", s.Name, s.Points)
		}
	}
}
