package memcache

import (
	"container/list"

	"rphash/internal/hashfn"
)

// assoc is a faithful model of stock memcached's hash table
// ("assoc.c"): a power-of-two bucket array of singly linked chains,
// expanded when the load factor passes 3/2, accessed only under the
// store's global lock. Using the same chained-table shape (and the
// same hash function) as the relativistic engine keeps the memcached
// comparison about what the paper varied — the locking discipline —
// rather than about unrelated map implementations.
type assoc struct {
	mask uint64
	slot []*anode
	n    int
}

type anode struct {
	next *anode
	hash uint64
	key  string
	el   *list.Element // the LRU element whose Value is the *Item
}

func newAssoc(buckets uint64) *assoc {
	b := hashfn.NextPowerOfTwo(max(buckets, 16))
	return &assoc{mask: b - 1, slot: make([]*anode, b)}
}

func assocHash(key string) uint64 { return hashfn.String(key, 0) }

// get returns the LRU element for key, or nil.
func (a *assoc) get(key string) *list.Element {
	h := assocHash(key)
	for n := a.slot[h&a.mask]; n != nil; n = n.next {
		if n.hash == h && n.key == key {
			return n.el
		}
	}
	return nil
}

// set inserts or replaces the element for key.
func (a *assoc) set(key string, el *list.Element) {
	h := assocHash(key)
	i := h & a.mask
	for n := a.slot[i]; n != nil; n = n.next {
		if n.hash == h && n.key == key {
			n.el = el
			return
		}
	}
	a.slot[i] = &anode{next: a.slot[i], hash: h, key: key, el: el}
	a.n++
	if float64(a.n) > 1.5*float64(len(a.slot)) {
		a.expand()
	}
}

// del removes key, reporting whether it was present.
func (a *assoc) del(key string) bool {
	h := assocHash(key)
	i := h & a.mask
	var prev *anode
	for n := a.slot[i]; n != nil; n = n.next {
		if n.hash == h && n.key == key {
			if prev == nil {
				a.slot[i] = n.next
			} else {
				prev.next = n.next
			}
			a.n--
			return true
		}
		prev = n
	}
	return false
}

// expand doubles the bucket array. Under the global lock this stalls
// every client for the duration — the very cost the paper's resizable
// relativistic table exists to avoid.
func (a *assoc) expand() {
	fresh := make([]*anode, len(a.slot)*2)
	mask := uint64(len(fresh) - 1)
	for _, head := range a.slot {
		for n := head; n != nil; {
			next := n.next
			i := n.hash & mask
			n.next = fresh[i]
			fresh[i] = n
			n = next
		}
	}
	a.slot = fresh
	a.mask = mask
}

// reset drops all entries.
func (a *assoc) reset() {
	a.slot = make([]*anode, len(a.slot))
	a.n = 0
}

// len returns the entry count.
func (a *assoc) len() int { return a.n }

// buckets returns the bucket count.
func (a *assoc) buckets() int { return len(a.slot) }
