package memcache

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
)

// startRPServer spins up a server over a fresh RPStore and returns
// the store, a connected reader/writer, and a cleanup-registered
// teardown.
func startRPServer(t *testing.T) (*RPStore, *bufio.ReadWriter) {
	t.Helper()
	store := NewRPStore(0)
	srv := NewServer(store, 0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return store, bufio.NewReadWriter(bufio.NewReader(nc), bufio.NewWriter(nc))
}

// readGetResponse consumes VALUE blocks up to END, returning
// key->value.
func readGetResponse(t *testing.T, r *bufio.Reader) map[string]string {
	t.Helper()
	out := map[string]string{}
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "END" {
			return out
		}
		var key string
		var flags uint32
		var size int
		if _, err := fmt.Sscanf(line, "VALUE %s %d %d", &key, &flags, &size); err != nil {
			t.Fatalf("bad VALUE line %q: %v", line, err)
		}
		data := make([]byte, size+2)
		if _, err := fullRead(r, data); err != nil {
			t.Fatal(err)
		}
		out[key] = string(data[:size])
	}
}

func fullRead(r *bufio.Reader, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		m, err := r.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// TestMultiGetBatchesReaderSections is the end-to-end acceptance
// check: a 100-key `get` must resolve through the store's batch path,
// entering at most NumShards read-side critical sections for the
// whole request — not one per key.
func TestMultiGetBatchesReaderSections(t *testing.T) {
	store, rw := startRPServer(t)
	const n = 100
	for i := 0; i < n; i++ {
		store.Set(NewItem(fmt.Sprintf("k%d", i), 0, []byte(fmt.Sprintf("v%d", i)), 0))
	}

	var req strings.Builder
	req.WriteString("get")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&req, " k%d", i)
	}
	fmt.Fprintf(&req, " missing-a missing-b")
	req.WriteString("\r\n")

	before := store.c.BatchSections()
	if _, err := rw.WriteString(req.String()); err != nil {
		t.Fatal(err)
	}
	rw.Flush()
	got := readGetResponse(t, rw.Reader)
	sections := store.c.BatchSections() - before

	if len(got) != n {
		t.Fatalf("multi-get returned %d values, want %d", len(got), n)
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%d", i)
		if got[k] != fmt.Sprintf("v%d", i) {
			t.Fatalf("%s = %q", k, got[k])
		}
	}
	shards := uint64(store.c.NumShards())
	if sections == 0 || sections > shards {
		t.Fatalf("102-key get entered %d reader sections, want 1..%d (one per touched shard)", sections, shards)
	}
}

// TestMultiGetsCAS: the batched path serves `gets` too, with per-item
// CAS ids intact.
func TestMultiGetsCAS(t *testing.T) {
	store, rw := startRPServer(t)
	store.Set(NewItem("a", 0, []byte("1"), 0))
	store.Set(NewItem("b", 0, []byte("2"), 0))

	fmt.Fprintf(rw, "gets a nope b\r\n")
	rw.Flush()
	seen := map[string]uint64{}
	for {
		line, err := rw.Reader.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "END" {
			break
		}
		var key string
		var flags uint32
		var size int
		var cas uint64
		if _, err := fmt.Sscanf(line, "VALUE %s %d %d %d", &key, &flags, &size, &cas); err != nil {
			t.Fatalf("bad gets VALUE line %q: %v", line, err)
		}
		seen[key] = cas
		data := make([]byte, size+2)
		if _, err := fullRead(rw.Reader, data); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 2 {
		t.Fatalf("gets returned %d values, want 2", len(seen))
	}
	if seen["a"] == 0 || seen["b"] == 0 || seen["a"] == seen["b"] {
		t.Fatalf("CAS ids wrong: %v", seen)
	}

	// CAS from the batched gets must be usable in a cas store.
	fmt.Fprintf(rw, "cas a 0 0 1 %d\r\nX\r\n", seen["a"])
	rw.Flush()
	line, err := rw.Reader.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimRight(line, "\r\n"); got != "STORED" {
		t.Fatalf("cas with batched-gets id = %q, want STORED", got)
	}
}
