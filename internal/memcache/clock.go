package memcache

import (
	"sync"
	"sync/atomic"
	"time"
)

// Coarse clock. Stock memcached keeps a process-wide current_time
// updated by a libevent timer once per second precisely so the GET
// path never calls time(2). We do the same (at 50ms granularity for
// snappier tests): reading the clock is one atomic load from a line
// that changes 20 times a second, instead of a vDSO call per key.
var (
	clockOnce   sync.Once
	coarseSecs  atomic.Int64
	coarseNanos atomic.Int64
)

func startClock() {
	clockOnce.Do(func() {
		tick := func() {
			now := time.Now()
			coarseSecs.Store(now.Unix())
			coarseNanos.Store(now.UnixNano())
		}
		tick()
		go func() {
			t := time.NewTicker(50 * time.Millisecond)
			defer t.Stop()
			for range t.C {
				tick()
			}
		}()
	})
}

// nowSecs returns coarse unix seconds (expiry granularity).
func nowSecs() int64 { return coarseSecs.Load() }

// nowNanos returns coarse unix nanoseconds (LRU recency granularity).
func nowNanos() int64 { return coarseNanos.Load() }

// stripedCounter is a statistics counter sharded across padded slots
// so that hot read paths on different cores never share a cache line.
type stripedCounter struct {
	slots [16]struct {
		n atomic.Uint64
		_ [56]byte
	}
}

// add increments the slot for the given stripe hint.
func (c *stripedCounter) add(stripe int) {
	c.slots[stripe&15].n.Add(1)
}

// total sums all slots.
func (c *stripedCounter) total() uint64 {
	var t uint64
	for i := range c.slots {
		t += c.slots[i].n.Load()
	}
	return t
}
