package memcache

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"
)

// TestProtocolGarbageResilience feeds random garbage lines and
// near-miss commands; the server must answer every line with an
// error (never hang, never panic, never corrupt the store) and keep
// the connection usable afterwards.
func TestProtocolGarbageResilience(t *testing.T) {
	c := startTestServer(t, "rp")

	garbage := []string{
		"",
		" ",
		"getttt foo",
		"set",
		"set k",
		"set k 0",
		"set k 0 0",
		"get " + strings.Repeat("k", 300), // oversized key: silently skipped per key
		"delete",
		"incr",
		"incr k",
		"decr k notanumber",
		"touch k",
		"cas k 0 0 1",
		"stats extra args here",
		"\x00\x01\x02",
		strings.Repeat("x", 4000),
	}
	for _, g := range garbage {
		c.send(g)
	}
	// Drain whatever error replies came back, then prove liveness.
	c.send("set alive 0 0 2", "ok")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("server never answered the liveness probe")
		}
		line := c.recv()
		if line == "STORED" {
			break
		}
	}
	c.send("get alive")
	c.expect("VALUE alive 0 2")
	c.expect("ok")
	c.expect("END")
}

// TestProtocolRandomBytes hurls random binary junk at a fresh
// connection; any outcome is fine except a hang or a server crash —
// the server may close the connection on malformed framing.
func TestProtocolRandomBytes(t *testing.T) {
	store := NewRPStore(0)
	srv := NewServer(store, 0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()

	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 8; round++ {
		nc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		nc.SetDeadline(time.Now().Add(500 * time.Millisecond))
		buf := make([]byte, 1+rng.Intn(2048))
		rng.Read(buf)
		// Ensure some line terminators so the parser engages.
		for i := 0; i < len(buf); i += 64 {
			buf[i] = '\n'
		}
		nc.Write(buf) //nolint:errcheck // junk by design
		// Signal EOF so a parser waiting for a data block unblocks
		// rather than riding out the whole read deadline.
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.CloseWrite() //nolint:errcheck
		}
		// Read until the server responds or closes; both are fine.
		r := bufio.NewReader(nc)
		for i := 0; i < 64; i++ {
			if _, err := r.ReadString('\n'); err != nil {
				break
			}
		}
		nc.Close()
	}

	// The server must still function for well-formed clients.
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	fmt.Fprintf(nc, "set k 0 0 1\r\nv\r\n")
	br := bufio.NewReader(nc)
	line, err := br.ReadString('\n')
	if err != nil || line != "STORED\r\n" {
		t.Fatalf("post-fuzz set: %q, %v", line, err)
	}
}

// TestProtocolPipelinedMixedBatch sends a large mixed batch in one
// write and validates every reply in order — the framing must stay
// in sync across command types.
func TestProtocolPipelinedMixedBatch(t *testing.T) {
	c := startTestServer(t, "rp")
	var batch bytes.Buffer
	n := 200
	for i := 0; i < n; i++ {
		fmt.Fprintf(&batch, "set k%d 0 0 3\r\nv%02d\r\n", i, i%100)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&batch, "get k%d\r\n", i)
	}
	fmt.Fprintf(&batch, "stats\r\n")
	if _, err := c.w.WriteString(batch.String()); err != nil {
		t.Fatal(err)
	}
	if err := c.w.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		c.expect("STORED")
	}
	for i := 0; i < n; i++ {
		c.expect(fmt.Sprintf("VALUE k%d 0 3", i))
		c.expect(fmt.Sprintf("v%02d", i%100))
		c.expect("END")
	}
	sawEnd := false
	for !sawEnd {
		line := c.recv()
		if line == "END" {
			sawEnd = true
		} else if !strings.HasPrefix(line, "STAT ") {
			t.Fatalf("unexpected stats line %q", line)
		}
	}
}
