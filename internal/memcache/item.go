// Package memcache is a from-scratch mini-memcached: the network
// key-value cache the paper patches to demonstrate relativistic hash
// tables on real-world code. It speaks the memcached text protocol
// over TCP and offers two storage engines:
//
//   - LockStore: one global mutex around a chained hash table and a
//     strict LRU list — the stock memcached 1.4 concurrency model the
//     paper calls "a global table lock". Every operation, including
//     GET, serializes on that mutex.
//
//   - RPStore: the paper's patch. GET runs on the relativistic table
//     with no locking at all (the item is read inside a delimited
//     reader section); SET/DELETE/expiry/eviction lock only the
//     key's writer stripe (the table's per-bucket lock) and use safe
//     relativistic memory reclamation. The table auto-resizes by
//     load factor, exercising the resize algorithm in production
//     conditions.
//
// The protocol, connection handling, expiry, CAS and LRU eviction are
// real; see DESIGN.md for what is simplified relative to memcached
// (slab allocator replaced by the Go heap, LRU approximated by
// sampling in the RP engine).
package memcache

// Item is one cache entry. All fields are immutable after
// construction: mutating operations (set, append, incr, touch) build
// a replacement Item, which is what makes lock-free readers safe.
// Access recency for sampled-LRU eviction is tracked by the engines
// themselves — LockStore's strict list, and the per-entry stamp
// inside internal/cache for RPStore — not on the item.
type Item struct {
	Key   string
	Flags uint32
	Value []byte
	// CAS is the compare-and-swap unique id assigned at store time.
	CAS uint64
	// ExpireAt is the absolute expiry in unix seconds; 0 means never.
	ExpireAt int64
}

// NewItem builds an item.
func NewItem(key string, flags uint32, value []byte, expireAt int64) *Item {
	return &Item{Key: key, Flags: flags, Value: value, ExpireAt: expireAt}
}

// Expired reports whether the item is past its expiry at time now
// (unix seconds).
func (it *Item) Expired(now int64) bool {
	return it.ExpireAt != 0 && it.ExpireAt <= now
}

// Size is the accounting size of the item: key + value bytes plus a
// fixed per-item overhead standing in for memcached's item header.
func (it *Item) Size() int64 {
	const overhead = 48
	return int64(len(it.Key)) + int64(len(it.Value)) + overhead
}

// relativeExpiryCutoff: per the memcached protocol, exptimes up to 30
// days are relative to now; larger values are absolute unix times.
const relativeExpiryCutoff = 60 * 60 * 24 * 30

// AbsoluteExpiry converts a protocol exptime to absolute unix
// seconds. 0 stays 0 (never). Negative values mean "already expired";
// they are mapped to the epoch second 1 so the item is immediately
// stale but distinguishable from "never".
func AbsoluteExpiry(exptime int64, now int64) int64 {
	switch {
	case exptime == 0:
		return 0
	case exptime < 0:
		return 1
	case exptime <= relativeExpiryCutoff:
		return now + exptime
	default:
		return exptime
	}
}
