package memcache

import (
	"container/list"
	"strconv"
	"sync"

	"rphash/internal/clock"
)

// LockStore models stock memcached's concurrency: a single mutex (the
// "global cache lock") serializes every operation — GETs included,
// because each GET must bump the strict LRU list. This is the
// "default" engine in the paper's memcached experiment.
type LockStore struct {
	clk      *clock.Clock // coarse clock: GETs never call time(2)
	mu       sync.Mutex
	items    *assoc     // memcached-style chained table (element value: *Item)
	lru      *list.List // front = most recently used
	bytes    int64
	maxBytes int64
	casSeq   uint64
	stats    StoreStats
}

// NewLockStore builds the global-lock engine. maxBytes <= 0 disables
// eviction.
func NewLockStore(maxBytes int64) *LockStore {
	return &LockStore{
		clk:      clock.New(clock.DefaultGranularity),
		items:    newAssoc(1024),
		lru:      list.New(),
		maxBytes: maxBytes,
	}
}

// Get returns the live item and bumps LRU — under the global lock,
// exactly like stock memcached.
func (s *LockStore) Get(key string) (*Item, bool) {
	now := s.clk.Secs()
	s.mu.Lock()
	defer s.mu.Unlock()
	el := s.items.get(key)
	if el == nil {
		s.stats.GetMisses++
		return nil, false
	}
	it := el.Value.(*Item)
	if it.Expired(now) {
		s.removeLocked(el, it)
		s.stats.Expired++
		s.stats.GetMisses++
		return nil, false
	}
	s.lru.MoveToFront(el)
	s.stats.GetHits++
	return it, true
}

// Set stores unconditionally.
func (s *LockStore) Set(it *Item) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.setLocked(it)
}

func (s *LockStore) setLocked(it *Item) {
	s.casSeq++
	it.CAS = s.casSeq
	if el := s.items.get(it.Key); el != nil {
		old := el.Value.(*Item)
		s.bytes += it.Size() - old.Size()
		el.Value = it
		s.lru.MoveToFront(el)
	} else {
		s.items.set(it.Key, s.lru.PushFront(it))
		s.bytes += it.Size()
	}
	s.stats.Sets++
	s.evictLocked()
}

// Add stores only if absent.
func (s *LockStore) Add(it *Item) bool {
	now := s.clk.Secs()
	s.mu.Lock()
	defer s.mu.Unlock()
	if el := s.items.get(it.Key); el != nil && !el.Value.(*Item).Expired(now) {
		return false
	}
	s.setLocked(it)
	return true
}

// Replace stores only if present.
func (s *LockStore) Replace(it *Item) bool {
	now := s.clk.Secs()
	s.mu.Lock()
	defer s.mu.Unlock()
	el := s.items.get(it.Key)
	if el == nil || el.Value.(*Item).Expired(now) {
		return false
	}
	s.setLocked(it)
	return true
}

// CompareAndSwap stores only when the caller's cas matches.
func (s *LockStore) CompareAndSwap(it *Item, cas uint64) error {
	now := s.clk.Secs()
	s.mu.Lock()
	defer s.mu.Unlock()
	el := s.items.get(it.Key)
	if el == nil || el.Value.(*Item).Expired(now) {
		return ErrNotFound
	}
	if el.Value.(*Item).CAS != cas {
		return ErrCASMismatch
	}
	s.setLocked(it)
	return nil
}

// Delete removes the key.
func (s *LockStore) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	el := s.items.get(key)
	if el == nil {
		return false
	}
	s.removeLocked(el, el.Value.(*Item))
	s.stats.Deletes++
	return true
}

// Touch updates expiry in place (the item is private to the lock).
func (s *LockStore) Touch(key string, expireAt int64) bool {
	now := s.clk.Secs()
	s.mu.Lock()
	defer s.mu.Unlock()
	el := s.items.get(key)
	if el == nil || el.Value.(*Item).Expired(now) {
		return false
	}
	old := el.Value.(*Item)
	repl := NewItem(old.Key, old.Flags, old.Value, expireAt)
	s.casSeq++
	repl.CAS = s.casSeq
	el.Value = repl
	s.lru.MoveToFront(el)
	return true
}

// Append concatenates after the existing value.
func (s *LockStore) Append(key string, data []byte) bool { return s.concat(key, data, false) }

// Prepend concatenates before the existing value.
func (s *LockStore) Prepend(key string, data []byte) bool { return s.concat(key, data, true) }

func (s *LockStore) concat(key string, data []byte, front bool) bool {
	now := s.clk.Secs()
	s.mu.Lock()
	defer s.mu.Unlock()
	el := s.items.get(key)
	if el == nil || el.Value.(*Item).Expired(now) {
		return false
	}
	old := el.Value.(*Item)
	buf := make([]byte, 0, len(old.Value)+len(data))
	if front {
		buf = append(append(buf, data...), old.Value...)
	} else {
		buf = append(append(buf, old.Value...), data...)
	}
	repl := NewItem(old.Key, old.Flags, buf, old.ExpireAt)
	s.setLocked(repl)
	return true
}

// IncrDecr adjusts a decimal value.
func (s *LockStore) IncrDecr(key string, delta uint64, decr bool) (uint64, error) {
	now := s.clk.Secs()
	s.mu.Lock()
	defer s.mu.Unlock()
	el := s.items.get(key)
	if el == nil || el.Value.(*Item).Expired(now) {
		return 0, ErrNotFound
	}
	old := el.Value.(*Item)
	cur, err := strconv.ParseUint(string(old.Value), 10, 64)
	if err != nil {
		return 0, ErrNotNumeric
	}
	var next uint64
	if decr {
		if delta > cur {
			next = 0
		} else {
			next = cur - delta
		}
	} else {
		next = cur + delta
	}
	repl := NewItem(old.Key, old.Flags, []byte(strconv.FormatUint(next, 10)), old.ExpireAt)
	s.setLocked(repl)
	return next, nil
}

// FlushAll invalidates everything stored before the given time by
// simply dropping all items (memcached marks them stale; the visible
// behaviour is identical for our workloads).
func (s *LockStore) FlushAll(int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items.reset()
	s.lru.Init()
	s.bytes = 0
}

// Len returns the item count.
func (s *LockStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.items.len()
}

// Bytes returns accounted bytes.
func (s *LockStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats snapshots counters.
func (s *LockStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Engine = "lock"
	st.CurrItems = int64(s.items.len())
	st.Bytes = s.bytes
	st.Buckets = s.items.buckets()
	return st
}

// Close stops the coarse clock's ticker goroutine; the store data is
// released by GC.
func (s *LockStore) Close() { s.clk.Stop() }

func (s *LockStore) removeLocked(el *list.Element, it *Item) {
	s.items.del(it.Key)
	s.lru.Remove(el)
	s.bytes -= it.Size()
}

// evictLocked enforces the byte limit by strict LRU, exactly like
// stock memcached's per-class LRU tail eviction (flattened to one
// class: the Go heap replaces the slab allocator).
func (s *LockStore) evictLocked() {
	if s.maxBytes <= 0 {
		return
	}
	for s.bytes > s.maxBytes {
		tail := s.lru.Back()
		if tail == nil {
			return
		}
		s.removeLocked(tail, tail.Value.(*Item))
		s.stats.Evictions++
	}
}
