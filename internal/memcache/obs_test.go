package memcache

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"

	"rphash/internal/obs"
)

func TestCmdClassOf(t *testing.T) {
	cases := []struct {
		line string
		want obs.CmdClass
	}{
		{"get k", obs.CmdGet},
		{"gets a b c", obs.CmdGet},
		{"set k 0 0 1", obs.CmdStore},
		{"cas k 0 0 1 7", obs.CmdStore},
		{"append k 0 0 1", obs.CmdStore},
		{"delete k", obs.CmdDelete},
		{"incr k 1", obs.CmdArith},
		{"decr k 1", obs.CmdArith},
		{"touch k 60", obs.CmdTouch},
		{"stats", obs.CmdOther},
		{"version", obs.CmdOther},
		{"bogus", obs.CmdOther},
	}
	for _, c := range cases {
		if got := cmdClassOf([]byte(c.line)); got != c.want {
			t.Errorf("cmdClassOf(%q) = %v, want %v", c.line, got, c.want)
		}
	}
}

// TestServerObservedStats drives commands through an instrumented
// server and asserts the stats command surfaces per-class latency
// percentiles and grace/stripe wait metrics.
func TestServerObservedStats(t *testing.T) {
	o := obs.NewObserver()
	srv := NewServer(NewRPStore(0, WithStoreObserver(o)), 0)
	srv.Observer = o
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	w := bufio.NewWriter(nc)
	r := bufio.NewReader(nc)
	expect := func(want string) {
		t.Helper()
		w.Flush()
		line, err := r.ReadString('\n')
		if err != nil || line != want+"\r\n" {
			t.Fatalf("read %q, %v; want %q", line, err, want)
		}
	}
	fmt.Fprintf(w, "set k 0 0 3\r\nabc\r\n")
	expect("STORED")
	fmt.Fprintf(w, "get k\r\n")
	w.Flush()
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if line == "END\r\n" {
			break
		}
	}
	fmt.Fprintf(w, "delete k\r\n")
	expect("DELETED")

	fmt.Fprintf(w, "stats\r\n")
	w.Flush()
	got := map[string]string{}
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if line == "END\r\n" {
			break
		}
		f := strings.Fields(strings.TrimSuffix(line, "\r\n"))
		if len(f) != 3 || f[0] != "STAT" {
			t.Fatalf("malformed stats line %q", line)
		}
		got[f[1]] = f[2]
	}
	for _, k := range []string{
		"cmd_get_count", "cmd_get_p50_us", "cmd_get_p99_us",
		"cmd_store_count", "cmd_store_p50_us", "cmd_store_p99_us",
		"cmd_delete_count",
		"grace_waits", "grace_wait_p50_us", "grace_wait_p99_us", "grace_wait_max_us",
		"stripe_waits", "stripe_wait_p50_us", "stripe_wait_p99_us",
	} {
		if _, ok := got[k]; !ok {
			t.Errorf("stats missing %q (got %v)", k, got)
		}
	}
	for _, k := range []string{"cmd_get_count", "cmd_store_count", "cmd_delete_count"} {
		if got[k] != "1" {
			t.Errorf("stats %s = %q, want 1", k, got[k])
		}
	}
}

// TestRegisterMetrics checks the store's scrape surface renders both
// Prometheus text and JSON with the expected metric families.
func TestRegisterMetrics(t *testing.T) {
	o := obs.NewObserver()
	s := NewRPStore(0, WithStoreObserver(o))
	defer s.Close()
	if s.Observer() != o {
		t.Fatal("Observer() did not return the configured hub")
	}
	s.Set(NewItem("a", 0, []byte("xyz"), 0))
	s.Get("a")
	s.Get("missing")

	var reg obs.Registry
	s.RegisterMetrics(&reg)
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, m := range []string{
		"rphash_cache_hits_total 1",
		"rphash_cache_misses_total 1",
		"rphash_store_sets_total 1",
		"rphash_store_items 1",
		"rphash_map_buckets",
		"rphash_stripe_acquires_total",
		"rphash_rcu_grace_periods_total",
		"rphash_grace_wait_seconds_count",
		"rphash_stripe_wait_seconds_count",
		"rphash_cache_load_seconds_count",
		"rphash_cmd_get_seconds_count",
		"rphash_events_total",
	} {
		if !strings.Contains(out, m) {
			t.Errorf("Prometheus output missing %q", m)
		}
	}
}
