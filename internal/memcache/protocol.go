package memcache

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"time"
	"unsafe"

	"rphash/internal/obs"
)

// Version is the string reported by the version command.
const Version = "rphash-memcached/1.0"

// maxKeyLen mirrors memcached's 250-byte key limit.
const maxKeyLen = 250

// maxValueLen mirrors memcached's default 1 MiB item limit.
const maxValueLen = 1 << 20

// conn handles one client connection's protocol state.
type conn struct {
	srv *Server
	rw  *bufio.ReadWriter
	// get is the per-connection lock-free getter when the engine
	// provides one (RPStore); otherwise it falls back to store.Get.
	get      func(key string) (*Item, bool)
	closeGet func()
	// getMulti is the engine's batched lookup (nil when the engine has
	// none); multi-key get/gets route through it so one request enters
	// at most one reader section per shard instead of one per key.
	getMulti func(keys []string, out []*Item)
	// obsv, when non-nil, times every dispatched command into the
	// per-class service-latency histograms; obsStripe is this
	// connection's counter-bank affinity hint.
	obsv      *obs.Observer
	obsStripe int
	// hdrBuf, fieldsBuf, keysBuf and itemsBuf are per-connection
	// scratch space.
	hdrBuf    []byte
	fieldsBuf [][]byte
	keysBuf   []string
	itemsBuf  []*Item
}

// serve runs the request loop until EOF, error, or quit.
func (c *conn) serve() error {
	defer func() {
		if c.closeGet != nil {
			c.closeGet()
		}
	}()
	for {
		line, err := c.readLine()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if len(line) == 0 {
			continue
		}
		var quit bool
		if o := c.obsv; o != nil {
			// Classify before dispatch: parsing aliases (and consumes)
			// the line buffer. The window covers parse through
			// response-buffer write; the flush below is deliberately
			// outside it, so slow clients don't pollute service time.
			class := cmdClassOf(line)
			t0 := time.Now()
			quit, err = c.dispatch(line)
			o.Cmd[class].RecordSince(c.obsStripe, t0)
		} else {
			quit, err = c.dispatch(line)
		}
		if err != nil {
			return err
		}
		if quit {
			return nil
		}
		if err := c.rw.Flush(); err != nil {
			return err
		}
	}
}

// readLine reads one \r\n-terminated line without the terminator.
func (c *conn) readLine() ([]byte, error) {
	line, err := c.rw.ReadSlice('\n')
	if err != nil {
		return nil, err
	}
	n := len(line)
	if n >= 2 && line[n-2] == '\r' {
		return line[:n-2], nil
	}
	return line[:n-1], nil
}

// fields splits a command line on single spaces (memcached's
// delimiter; keys cannot contain spaces) into the connection's
// reusable scratch slice.
func (c *conn) fields(line []byte) [][]byte {
	out := c.fieldsBuf[:0]
	for len(line) > 0 {
		i := bytes.IndexByte(line, ' ')
		if i < 0 {
			out = append(out, line)
			break
		}
		if i > 0 {
			out = append(out, line[:i])
		}
		line = line[i+1:]
	}
	c.fieldsBuf = out
	return out
}

// cmdClassOf buckets a raw command line into its latency class from
// the first token alone. Alloc-free: the string conversions compile
// to comparisons.
func cmdClassOf(line []byte) obs.CmdClass {
	tok := line
	if i := bytes.IndexByte(line, ' '); i >= 0 {
		tok = line[:i]
	}
	switch string(tok) {
	case "get", "gets":
		return obs.CmdGet
	case "set", "add", "replace", "append", "prepend", "cas":
		return obs.CmdStore
	case "delete":
		return obs.CmdDelete
	case "incr", "decr":
		return obs.CmdArith
	case "touch":
		return obs.CmdTouch
	}
	return obs.CmdOther
}

// dispatch parses and executes one command line. It returns quit=true
// for the quit command.
func (c *conn) dispatch(line []byte) (quit bool, err error) {
	args := c.fields(line)
	if len(args) == 0 {
		return false, c.writeLine("ERROR")
	}
	cmd := string(args[0])
	switch cmd {
	case "get", "gets":
		return false, c.handleGet(args[1:], cmd == "gets")
	case "set", "add", "replace", "append", "prepend", "cas":
		return false, c.handleStore(cmd, args[1:])
	case "delete":
		return false, c.handleDelete(args[1:])
	case "incr", "decr":
		return false, c.handleIncrDecr(cmd == "decr", args[1:])
	case "touch":
		return false, c.handleTouch(args[1:])
	case "flush_all":
		return false, c.handleFlushAll(args[1:])
	case "stats":
		return false, c.handleStats()
	case "version":
		return false, c.writeLine("VERSION " + Version)
	case "verbosity":
		return false, c.maybeReply(args[1:], "OK")
	case "quit":
		return true, nil
	default:
		return false, c.writeLine("ERROR")
	}
}

func (c *conn) handleGet(keys [][]byte, withCAS bool) error {
	if len(keys) == 0 {
		return c.writeLine("ERROR")
	}
	// Collect the valid keys. Zero-copy: each string aliases the
	// connection's read buffer, which is valid until the next read —
	// and the whole response is written before that. Lookups only
	// compare the key; neither store retains it (stores copy keys at
	// Set time), so no allocation per fetched key.
	ks := c.keysBuf[:0]
	for _, kb := range keys {
		if len(kb) == 0 || len(kb) > maxKeyLen {
			continue
		}
		ks = append(ks, unsafe.String(&kb[0], len(kb)))
	}
	items := c.itemsBuf
	if cap(items) < len(ks) {
		items = make([]*Item, len(ks))
	}
	items = items[:len(ks)]

	// Resolve the whole request through the engine's batch path when
	// it has one: the store hashes each key once, groups keys by
	// shard, and enters at most one reader section per touched shard —
	// the multi-get amortization the batch API exists for. Single-key
	// gets (the common case) stay on the connection's registered
	// reader, which is cheaper than a batch round-trip for one key.
	if c.getMulti != nil && len(ks) > 1 {
		c.getMulti(ks, items)
	} else {
		for i, k := range ks {
			if it, ok := c.get(k); ok {
				items[i] = it
			} else {
				items[i] = nil
			}
		}
	}

	hdr := c.hdrBuf[:0]
	for _, it := range items {
		if it == nil {
			continue
		}
		// The value reference was captured inside a relativistic
		// reader — the paper's "copies value while still in a
		// relativistic reader" behaviour; immutability plus GC make it
		// safe to write after the read section ends. The header is
		// assembled without fmt: this is the server's hottest path.
		hdr = append(hdr[:0], "VALUE "...)
		hdr = append(hdr, it.Key...)
		hdr = append(hdr, ' ')
		hdr = strconv.AppendUint(hdr, uint64(it.Flags), 10)
		hdr = append(hdr, ' ')
		hdr = strconv.AppendInt(hdr, int64(len(it.Value)), 10)
		if withCAS {
			hdr = append(hdr, ' ')
			hdr = strconv.AppendUint(hdr, it.CAS, 10)
		}
		hdr = append(hdr, '\r', '\n')
		if _, err := c.rw.Write(hdr); err != nil {
			return err
		}
		if _, err := c.rw.Write(it.Value); err != nil {
			return err
		}
		if _, err := c.rw.WriteString("\r\n"); err != nil {
			return err
		}
	}
	c.hdrBuf = hdr[:0]
	// Clear retained references: the key strings alias the read buffer
	// and the items pin values; neither should outlive the request.
	clear(ks)
	clear(items)
	c.keysBuf = ks[:0]
	c.itemsBuf = items[:0]
	return c.writeLine("END")
}

// handleStore parses `<key> <flags> <exptime> <bytes> [cas] [noreply]`
// plus the data block.
func (c *conn) handleStore(cmd string, args [][]byte) error {
	wantCAS := cmd == "cas"
	minArgs := 4
	if wantCAS {
		minArgs = 5
	}
	if len(args) < minArgs || len(args) > minArgs+1 {
		return c.writeLine("ERROR")
	}
	noreply := len(args) == minArgs+1
	if noreply && string(args[minArgs]) != "noreply" {
		return c.writeLine("ERROR")
	}

	key := string(args[0])
	flags, errF := strconv.ParseUint(string(args[1]), 10, 32)
	exptime, errE := strconv.ParseInt(string(args[2]), 10, 64)
	size, errS := strconv.ParseInt(string(args[3]), 10, 64)
	var cas uint64
	var errC error
	if wantCAS {
		cas, errC = strconv.ParseUint(string(args[4]), 10, 64)
	}
	if errF != nil || errE != nil || errS != nil || errC != nil ||
		len(key) == 0 || len(key) > maxKeyLen || size < 0 || size > maxValueLen {
		// Still must consume the data block if the size parsed.
		if errS == nil && size >= 0 && size <= maxValueLen {
			if err := c.discardData(int(size)); err != nil {
				return err
			}
		}
		return c.replyUnless(noreply, "CLIENT_ERROR bad command line format")
	}

	data := make([]byte, size)
	if _, err := io.ReadFull(c.rw, data); err != nil {
		return err
	}
	if err := c.expectCRLF(); err != nil {
		if err == errBadDataChunk {
			return c.replyUnless(noreply, "CLIENT_ERROR bad data chunk")
		}
		return err
	}

	it := NewItem(key, uint32(flags), data, AbsoluteExpiry(exptime, time.Now().Unix()))
	var reply string
	switch cmd {
	case "set":
		c.srv.store.Set(it)
		reply = "STORED"
	case "add":
		if c.srv.store.Add(it) {
			reply = "STORED"
		} else {
			reply = "NOT_STORED"
		}
	case "replace":
		if c.srv.store.Replace(it) {
			reply = "STORED"
		} else {
			reply = "NOT_STORED"
		}
	case "append":
		if c.srv.store.Append(key, data) {
			reply = "STORED"
		} else {
			reply = "NOT_STORED"
		}
	case "prepend":
		if c.srv.store.Prepend(key, data) {
			reply = "STORED"
		} else {
			reply = "NOT_STORED"
		}
	case "cas":
		switch err := c.srv.store.CompareAndSwap(it, cas); err {
		case nil:
			reply = "STORED"
		case ErrCASMismatch:
			reply = "EXISTS"
		default:
			reply = "NOT_FOUND"
		}
	}
	return c.replyUnless(noreply, reply)
}

func (c *conn) handleDelete(args [][]byte) error {
	if len(args) < 1 || len(args) > 2 {
		return c.writeLine("ERROR")
	}
	noreply := len(args) == 2 && string(args[1]) == "noreply"
	if c.srv.store.Delete(string(args[0])) {
		return c.replyUnless(noreply, "DELETED")
	}
	return c.replyUnless(noreply, "NOT_FOUND")
}

func (c *conn) handleIncrDecr(decr bool, args [][]byte) error {
	if len(args) < 2 || len(args) > 3 {
		return c.writeLine("ERROR")
	}
	noreply := len(args) == 3 && string(args[2]) == "noreply"
	delta, err := strconv.ParseUint(string(args[1]), 10, 64)
	if err != nil {
		return c.replyUnless(noreply, "CLIENT_ERROR invalid numeric delta argument")
	}
	v, err := c.srv.store.IncrDecr(string(args[0]), delta, decr)
	switch err {
	case nil:
		return c.replyUnless(noreply, strconv.FormatUint(v, 10))
	case ErrNotNumeric:
		return c.replyUnless(noreply, "CLIENT_ERROR cannot increment or decrement non-numeric value")
	default:
		return c.replyUnless(noreply, "NOT_FOUND")
	}
}

func (c *conn) handleTouch(args [][]byte) error {
	if len(args) < 2 || len(args) > 3 {
		return c.writeLine("ERROR")
	}
	noreply := len(args) == 3 && string(args[2]) == "noreply"
	exptime, err := strconv.ParseInt(string(args[1]), 10, 64)
	if err != nil {
		return c.replyUnless(noreply, "CLIENT_ERROR invalid exptime argument")
	}
	if c.srv.store.Touch(string(args[0]), AbsoluteExpiry(exptime, time.Now().Unix())) {
		return c.replyUnless(noreply, "TOUCHED")
	}
	return c.replyUnless(noreply, "NOT_FOUND")
}

func (c *conn) handleFlushAll(args [][]byte) error {
	noreply := len(args) > 0 && string(args[len(args)-1]) == "noreply"
	delay := int64(0)
	if len(args) > 0 && string(args[0]) != "noreply" {
		d, err := strconv.ParseInt(string(args[0]), 10, 64)
		if err != nil {
			return c.replyUnless(noreply, "CLIENT_ERROR bad command line format")
		}
		delay = d
	}
	c.srv.store.FlushAll(time.Now().Unix() + delay)
	return c.replyUnless(noreply, "OK")
}

func (c *conn) handleStats() error {
	st := c.srv.store.Stats()
	stats := []struct {
		k string
		v string
	}{
		{"version", Version},
		{"engine", st.Engine},
		{"curr_items", strconv.FormatInt(st.CurrItems, 10)},
		{"bytes", strconv.FormatInt(st.Bytes, 10)},
		{"get_hits", strconv.FormatUint(st.GetHits, 10)},
		{"get_misses", strconv.FormatUint(st.GetMisses, 10)},
		{"cmd_set", strconv.FormatUint(st.Sets, 10)},
		{"delete_hits", strconv.FormatUint(st.Deletes, 10)},
		{"evictions", strconv.FormatUint(st.Evictions, 10)},
		{"expired_unfetched", strconv.FormatUint(st.Expired, 10)},
		{"hash_buckets", strconv.Itoa(st.Buckets)},
		{"cas_fast_inserts", strconv.FormatUint(st.CASFastInserts, 10)},
		{"cas_fallbacks", strconv.FormatUint(st.CASFallbacks, 10)},
		{"cas_undos", strconv.FormatUint(st.CASUndos, 10)},
		{"value_cas_swaps", strconv.FormatUint(st.ValueCASSwaps, 10)},
		{"resize_backlog", strconv.FormatInt(st.UnzipBacklog, 10)},
		{"migration_units", strconv.FormatUint(st.MigrationUnits, 10)},
		{"migration_done", strconv.FormatUint(st.MigrationDone, 10)},
		{"uptime", strconv.FormatInt(int64(time.Since(c.srv.started)/time.Second), 10)},
	}
	if st.MigrationUnits > 0 {
		progress := float64(st.MigrationDone) / float64(st.MigrationUnits)
		stats = append(stats,
			struct{ k, v string }{"migration_progress", strconv.FormatFloat(progress, 'f', 3, 64)},
			struct{ k, v string }{"migration_rate_units_per_s", strconv.FormatFloat(st.MigrationRate, 'f', 1, 64)},
		)
	}
	// Flat-engine introspection appears only when the engine actually
	// sampled groups, so chain-engine responses carry no flat_* keys.
	if st.FlatSampledGroups > 0 {
		stats = append(stats,
			struct{ k, v string }{"flat_sampled_groups", strconv.FormatUint(st.FlatSampledGroups, 10)},
			struct{ k, v string }{"flat_spilled_groups", strconv.FormatUint(st.FlatSpilledGroups, 10)},
			struct{ k, v string }{"flat_spill_entries", strconv.FormatUint(st.FlatSpillEntries, 10)},
			struct{ k, v string }{"flat_max_spill", strconv.Itoa(st.FlatMaxSpill)},
			struct{ k, v string }{"flat_spill_ratio", strconv.FormatFloat(st.FlatSpillRatio, 'f', 3, 64)},
		)
		for i, n := range st.FlatOccupancy {
			stats = append(stats, struct{ k, v string }{
				"flat_occupancy_" + strconv.Itoa(i), strconv.FormatUint(n, 10)})
		}
	}
	for _, kv := range stats {
		if _, err := fmt.Fprintf(c.rw, "STAT %s %s\r\n", kv.k, kv.v); err != nil {
			return err
		}
	}
	if err := c.writeObsStats(); err != nil {
		return err
	}
	return c.writeLine("END")
}

// writeObsStats appends the observability plane's latency numbers to a
// stats response: per-command-class count/p50/p99 (microseconds, like
// memcached's own timings) plus grace-period and stripe-lock wait
// distributions. Silent when the server has no Observer.
func (c *conn) writeObsStats() error {
	o := c.obsv
	if o == nil {
		return nil
	}
	us := func(ns uint64) string { return strconv.FormatUint(ns/1000, 10) }
	for cl := obs.CmdClass(0); cl < obs.NumCmdClasses; cl++ {
		h := o.Cmd[cl].Snapshot()
		if h.Count == 0 {
			continue
		}
		name := cl.String()
		if _, err := fmt.Fprintf(c.rw,
			"STAT cmd_%s_count %d\r\nSTAT cmd_%s_p50_us %s\r\nSTAT cmd_%s_p99_us %s\r\n",
			name, h.Count, name, us(h.P50()), name, us(h.P99())); err != nil {
			return err
		}
	}
	gw := o.GraceWait.Snapshot()
	if _, err := fmt.Fprintf(c.rw,
		"STAT grace_waits %d\r\nSTAT grace_wait_p50_us %s\r\nSTAT grace_wait_p99_us %s\r\nSTAT grace_wait_max_us %s\r\n",
		gw.Count, us(gw.P50()), us(gw.P99()), us(gw.MaxNS)); err != nil {
		return err
	}
	sw := o.StripeWait.Snapshot()
	if _, err := fmt.Fprintf(c.rw,
		"STAT stripe_waits %d\r\nSTAT stripe_wait_p50_us %s\r\nSTAT stripe_wait_p99_us %s\r\n",
		sw.Count, us(sw.P50()), us(sw.P99())); err != nil {
		return err
	}
	return nil
}

var errBadDataChunk = fmt.Errorf("memcache: bad data chunk")

// expectCRLF consumes the terminator after a data block.
func (c *conn) expectCRLF() error {
	b1, err := c.rw.ReadByte()
	if err != nil {
		return err
	}
	if b1 == '\n' {
		return nil // tolerate bare LF
	}
	if b1 != '\r' {
		return errBadDataChunk
	}
	b2, err := c.rw.ReadByte()
	if err != nil {
		return err
	}
	if b2 != '\n' {
		return errBadDataChunk
	}
	return nil
}

func (c *conn) discardData(n int) error {
	if _, err := io.CopyN(io.Discard, c.rw, int64(n)+2); err != nil && err != io.EOF {
		return err
	}
	return nil
}

func (c *conn) writeLine(s string) error {
	if _, err := c.rw.WriteString(s); err != nil {
		return err
	}
	_, err := c.rw.WriteString("\r\n")
	return err
}

func (c *conn) replyUnless(noreply bool, s string) error {
	if noreply {
		return nil
	}
	return c.writeLine(s)
}

func (c *conn) maybeReply(args [][]byte, s string) error {
	noreply := len(args) > 0 && string(args[len(args)-1]) == "noreply"
	return c.replyUnless(noreply, s)
}
