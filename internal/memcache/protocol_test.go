package memcache

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"rphash/internal/core"
)

// startTestServer returns a connected client and cleanup for a server
// over the given engine.
func startTestServer(t *testing.T, engine string) *testClient {
	t.Helper()
	var store Store
	switch engine {
	case "rp":
		store = NewRPStore(0)
	default:
		store = NewLockStore(0)
	}
	srv := NewServer(store, 0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	nc.SetDeadline(time.Now().Add(30 * time.Second))
	return &testClient{
		t: t,
		w: bufio.NewWriter(nc),
		r: bufio.NewReader(nc),
	}
}

type testClient struct {
	t *testing.T
	w *bufio.Writer
	r *bufio.Reader
}

func (c *testClient) send(lines ...string) {
	c.t.Helper()
	for _, l := range lines {
		if _, err := c.w.WriteString(l + "\r\n"); err != nil {
			c.t.Fatal(err)
		}
	}
	if err := c.w.Flush(); err != nil {
		c.t.Fatal(err)
	}
}

func (c *testClient) recv() string {
	c.t.Helper()
	line, err := c.r.ReadString('\n')
	if err != nil {
		c.t.Fatal(err)
	}
	return strings.TrimSuffix(line, "\r\n")
}

func (c *testClient) expect(want string) {
	c.t.Helper()
	if got := c.recv(); got != want {
		c.t.Fatalf("got %q, want %q", got, want)
	}
}

func forEachEngine(t *testing.T, fn func(t *testing.T, c *testClient)) {
	for _, engine := range []string{"lock", "rp"} {
		t.Run(engine, func(t *testing.T) {
			fn(t, startTestServer(t, engine))
		})
	}
}

func TestProtocolSetGet(t *testing.T) {
	forEachEngine(t, func(t *testing.T, c *testClient) {
		c.send("set foo 42 0 5", "hello")
		c.expect("STORED")
		c.send("get foo")
		c.expect("VALUE foo 42 5")
		c.expect("hello")
		c.expect("END")
		c.send("get nope")
		c.expect("END")
	})
}

func TestProtocolMultiGet(t *testing.T) {
	forEachEngine(t, func(t *testing.T, c *testClient) {
		c.send("set a 0 0 1", "A")
		c.expect("STORED")
		c.send("set b 0 0 1", "B")
		c.expect("STORED")
		c.send("get a b missing")
		c.expect("VALUE a 0 1")
		c.expect("A")
		c.expect("VALUE b 0 1")
		c.expect("B")
		c.expect("END")
	})
}

func TestProtocolGetsCAS(t *testing.T) {
	forEachEngine(t, func(t *testing.T, c *testClient) {
		c.send("set k 0 0 2", "v1")
		c.expect("STORED")
		c.send("gets k")
		line := c.recv()
		var key string
		var flags, size int
		var cas uint64
		if _, err := fmt.Sscanf(line, "VALUE %s %d %d %d", &key, &flags, &size, &cas); err != nil {
			t.Fatalf("bad gets line %q: %v", line, err)
		}
		c.recv() // data
		c.expect("END")

		c.send(fmt.Sprintf("cas k 0 0 2 %d", cas), "v2")
		c.expect("STORED")
		c.send(fmt.Sprintf("cas k 0 0 2 %d", cas), "v3")
		c.expect("EXISTS")
		c.send("cas missing 0 0 1 1", "x")
		c.expect("NOT_FOUND")
	})
}

func TestProtocolAddReplaceAppendPrepend(t *testing.T) {
	forEachEngine(t, func(t *testing.T, c *testClient) {
		c.send("replace k 0 0 1", "x")
		c.expect("NOT_STORED")
		c.send("add k 0 0 3", "mid")
		c.expect("STORED")
		c.send("add k 0 0 1", "y")
		c.expect("NOT_STORED")
		c.send("append k 0 0 1", ">")
		c.expect("STORED")
		c.send("prepend k 0 0 1", "<")
		c.expect("STORED")
		c.send("get k")
		c.expect("VALUE k 0 5")
		c.expect("<mid>")
		c.expect("END")
	})
}

func TestProtocolDelete(t *testing.T) {
	forEachEngine(t, func(t *testing.T, c *testClient) {
		c.send("delete k")
		c.expect("NOT_FOUND")
		c.send("set k 0 0 1", "v")
		c.expect("STORED")
		c.send("delete k")
		c.expect("DELETED")
	})
}

func TestProtocolIncrDecr(t *testing.T) {
	forEachEngine(t, func(t *testing.T, c *testClient) {
		c.send("set n 0 0 2", "10")
		c.expect("STORED")
		c.send("incr n 5")
		c.expect("15")
		c.send("decr n 100")
		c.expect("0")
		c.send("incr missing 1")
		c.expect("NOT_FOUND")
		c.send("set s 0 0 3", "abc")
		c.expect("STORED")
		c.send("incr s 1")
		c.expect("CLIENT_ERROR cannot increment or decrement non-numeric value")
	})
}

func TestProtocolTouchFlushStatsVersion(t *testing.T) {
	forEachEngine(t, func(t *testing.T, c *testClient) {
		c.send("set k 0 0 1", "v")
		c.expect("STORED")
		c.send("touch k 100")
		c.expect("TOUCHED")
		c.send("touch missing 100")
		c.expect("NOT_FOUND")

		c.send("version")
		if got := c.recv(); !strings.HasPrefix(got, "VERSION ") {
			t.Fatalf("version reply %q", got)
		}

		c.send("stats")
		sawStat := false
		for {
			line := c.recv()
			if line == "END" {
				break
			}
			if strings.HasPrefix(line, "STAT ") {
				sawStat = true
			}
		}
		if !sawStat {
			t.Fatal("stats returned no STAT lines")
		}

		c.send("flush_all")
		c.expect("OK")
		c.send("get k")
		c.expect("END")
	})
}

func TestProtocolNoreply(t *testing.T) {
	forEachEngine(t, func(t *testing.T, c *testClient) {
		c.send("set k 0 0 1 noreply", "v")
		c.send("delete missing noreply")
		c.send("get k") // reply proves prior noreply commands sent nothing
		c.expect("VALUE k 0 1")
		c.expect("v")
		c.expect("END")
	})
}

func TestProtocolExpiry(t *testing.T) {
	forEachEngine(t, func(t *testing.T, c *testClient) {
		// Absolute time in the past: immediately stale.
		c.send("set k 0 0 1", "v")
		c.expect("STORED")
		c.send("touch k -1")
		c.expect("TOUCHED")
		c.send("get k")
		c.expect("END")
	})
}

func TestProtocolErrors(t *testing.T) {
	forEachEngine(t, func(t *testing.T, c *testClient) {
		c.send("bogus")
		c.expect("ERROR")
		c.send("get")
		c.expect("ERROR")
		c.send("set k x 0 1", "v") // bad flags, value still consumed
		c.expect("CLIENT_ERROR bad command line format")
		c.send("get k")
		c.expect("END")
		c.send("set k 0 0 abc")
		c.expect("CLIENT_ERROR bad command line format")
		// Bad data chunk: length mismatch against terminator.
		c.send("set k 0 0 3", "toolong")
		got := c.recv()
		if !strings.HasPrefix(got, "CLIENT_ERROR") && got != "ERROR" {
			t.Fatalf("bad chunk reply %q", got)
		}
	})
}

func TestProtocolQuit(t *testing.T) {
	c := startTestServer(t, "rp")
	c.send("quit")
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Fatal("connection still open after quit")
	}
}

func TestProtocolLargeValue(t *testing.T) {
	forEachEngine(t, func(t *testing.T, c *testClient) {
		payload := strings.Repeat("z", 100_000)
		c.send(fmt.Sprintf("set big 0 0 %d", len(payload)), payload)
		c.expect("STORED")
		c.send("get big")
		c.expect(fmt.Sprintf("VALUE big 0 %d", len(payload)))
		if got := c.recv(); got != payload {
			t.Fatalf("large value corrupted (len %d vs %d)", len(got), len(payload))
		}
		c.expect("END")
	})
}

func TestProtocolOversizedValueRejected(t *testing.T) {
	c := startTestServer(t, "lock")
	c.send(fmt.Sprintf("set big 0 0 %d", maxValueLen+1))
	c.expect("CLIENT_ERROR bad command line format")
}

// startRPEngineServer is startTestServer for a specific rp bucket
// engine (core.EngineChain or core.EngineFlat).
func startRPEngineServer(t *testing.T, engine string) *testClient {
	t.Helper()
	srv := NewServer(NewRPStore(0, WithStoreEngine(engine)), 0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	nc.SetDeadline(time.Now().Add(30 * time.Second))
	return &testClient{t: t, w: bufio.NewWriter(nc), r: bufio.NewReader(nc)}
}

// statMap drives one stats command and returns the STAT key/value
// pairs.
func statMap(t *testing.T, c *testClient) map[string]string {
	t.Helper()
	c.send("stats")
	out := make(map[string]string)
	for {
		line := c.recv()
		if line == "END" {
			return out
		}
		f := strings.Fields(line)
		if len(f) != 3 || f[0] != "STAT" {
			t.Fatalf("malformed stats line %q", line)
		}
		out[f[1]] = f[2]
	}
}

// TestProtocolStatsIntrospection exercises the resize/flat
// introspection keys at the wire level on both rp engines: migration
// counters appear on both (zero at rest), flat_* occupancy and spill
// keys appear exactly when the flat engine is running.
func TestProtocolStatsIntrospection(t *testing.T) {
	t.Run("chain", func(t *testing.T) {
		c := startRPEngineServer(t, core.EngineChain)
		c.send("set k 0 0 1", "v")
		c.expect("STORED")
		got := statMap(t, c)
		for _, k := range []string{"resize_backlog", "migration_units", "migration_done"} {
			if got[k] != "0" {
				t.Errorf("stats %s = %q, want 0 at rest", k, got[k])
			}
		}
		for k := range got {
			if strings.HasPrefix(k, "flat_") {
				t.Errorf("chain engine leaked flat introspection key %q", k)
			}
		}
		if got["engine"] != "rp" {
			t.Errorf("engine = %q, want rp", got["engine"])
		}
	})
	t.Run("flat", func(t *testing.T) {
		c := startRPEngineServer(t, core.EngineFlat)
		for i := 0; i < 64; i++ {
			c.send(fmt.Sprintf("set key%d 0 0 1", i), "v")
			c.expect("STORED")
		}
		got := statMap(t, c)
		if got["engine"] != "rp-flat" {
			t.Fatalf("engine = %q, want rp-flat", got["engine"])
		}
		sampled, err := strconv.ParseUint(got["flat_sampled_groups"], 10, 64)
		if err != nil || sampled == 0 {
			t.Fatalf("flat_sampled_groups = %q, want > 0", got["flat_sampled_groups"])
		}
		var occSum uint64
		for i := 0; i <= 8; i++ {
			k := fmt.Sprintf("flat_occupancy_%d", i)
			n, err := strconv.ParseUint(got[k], 10, 64)
			if err != nil {
				t.Fatalf("stats missing %s (got %q)", k, got[k])
			}
			occSum += n
		}
		if occSum != sampled {
			t.Errorf("occupancy bins sum to %d, want %d sampled groups", occSum, sampled)
		}
		if occSum == 0 || got["flat_occupancy_0"] == got["flat_sampled_groups"] {
			t.Errorf("no occupied groups sampled after 64 sets: %v", got)
		}
		for _, k := range []string{"flat_spilled_groups", "flat_spill_entries", "flat_max_spill", "flat_spill_ratio"} {
			if _, ok := got[k]; !ok {
				t.Errorf("stats missing %q", k)
			}
		}
		if got["migration_units"] != "0" {
			t.Errorf("migration_units = %q, want 0 at rest", got["migration_units"])
		}
	})
}
