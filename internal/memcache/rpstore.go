package memcache

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rphash/internal/cache"
	"rphash/internal/clock"
	"rphash/internal/core"
)

// RPStore is the paper's memcached patch: GETs are relativistic
// lookups on the resizable hash table — no lock, no shared-counter
// bump, no retry — while mutations lock per key (the table's writer
// stripes, plus a store mutex for multi-step command sequences) and
// retire replaced items through grace periods. The table auto-resizes
// with load, so the unzip/zip algorithms run underneath live traffic.
//
// Expiry, sampled-LRU eviction, byte accounting, and hit/miss stats
// all live in internal/cache (the reusable subsystem this engine
// seeded); RPStore contributes only the memcached semantics on top:
// CAS sequencing, conditional stores, and value edits. See DESIGN.md
// for what is simplified relative to stock memcached.
type RPStore struct {
	c   *cache.Cache[string, *Item]
	clk *clock.Clock

	// mu serializes read-modify-write command sequences (Add, CAS,
	// Append, IncrDecr, ...) so their check-then-store is atomic; the
	// cache and its table writers lock internally for plain stores.
	mu      sync.Mutex
	casSeq  atomic.Uint64
	sets    atomic.Uint64
	deletes atomic.Uint64
}

// rpSweepInterval is the cadence of the cache's incremental expiry
// sweeper inside RPStore (one shard per tick, inside RCU reader
// sections). RPStore owns its sweeping entirely: it deliberately does
// NOT implement the server's `sweeper` interface, so the server's
// ticker never double-drives reclamation — expired items are
// reclaimed by exactly one mechanism (plus the usual lazy paths:
// overwrites and eviction sampling).
const rpSweepInterval = 100 * time.Millisecond

// NewRPStore builds the relativistic engine. maxBytes <= 0 disables
// eviction.
//
// The engine is backed by cache.Cache over shard.Map — relativistic
// tables behind one shared RCU domain, each with striped per-bucket
// writer locks — so table-level writers to different chains never
// contend while every GET stays a single lock-free chain walk. At
// the store level, every mutating command (Set, Add, Replace, CAS,
// Touch, Append, IncrDecr) still serializes on RPStore.mu: CAS-id
// assignment and the conditional commands' check-then-store span a
// cache Peek and a Set that must be atomic together, which the
// per-key stripe alone cannot cover (Delete alone skips mu — it is
// a single CompareAndDelete). Dropping mu for plain Set would need
// a value-level CAS in the table; see the ROADMAP open item.
// Expired items are reclaimed by
// the cache's own incremental background sweeper (see
// rpSweepInterval); the server's sweep ticker does not apply to this
// store.
func NewRPStore(maxBytes int64) *RPStore {
	clk := clock.New(clock.DefaultGranularity)
	c := cache.NewString[*Item](
		cache.WithClock(clk),
		cache.WithMaxCost(maxBytes),
		cache.WithInitialBuckets(1024),
		cache.WithPolicy(core.Policy{MaxLoad: 2, MinLoad: 0.125, MinBuckets: 1024}),
		cache.WithSweepInterval(rpSweepInterval),
	)
	return &RPStore{c: c, clk: clk}
}

// Get is the lock-free fast path. Expired items are treated as misses
// by the cache; their removal is left to writers and the sweeper
// (lazy expiry), keeping the read path pure.
func (s *RPStore) Get(key string) (*Item, bool) { return s.c.Get(key) }

// NewGetter returns a per-goroutine lock-free Get using a registered
// read handle — the hot path connection handlers use.
func (s *RPStore) NewGetter() (func(key string) (*Item, bool), func()) {
	return s.c.NewGetter()
}

// GetMulti resolves all keys through the cache's batch path: keys are
// hashed once, grouped by shard, and looked up inside at most one
// reader section per touched shard — a multi-key `get` enters at most
// NumShards reader sections instead of one per key. out[i] is nil for
// misses (and for expired items); len(out) must equal len(keys).
func (s *RPStore) GetMulti(keys []string, out []*Item) {
	s.c.GetMulti(keys, out, nil)
}

// Set stores unconditionally.
func (s *RPStore) Set(it *Item) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:allow rplint/gracewait mu orders full read-modify-write command sequences; a backpressured Set under it is the documented cost of CAS semantics (see ROADMAP: value-level CAS)
	s.setLocked(it)
}

// setLocked assigns the CAS id and hands the item to the cache, which
// settles byte accounting against whatever it displaces and evicts if
// the budget is crossed.
func (s *RPStore) setLocked(it *Item) {
	it.CAS = s.casSeq.Add(1)
	var at time.Time
	if it.ExpireAt != 0 {
		at = time.Unix(it.ExpireAt, 0)
	}
	s.c.SetExpiresAt(it.Key, it, at, it.Size())
	s.sets.Add(1)
}

// Add stores only if absent or expired.
func (s *RPStore) Add(it *Item) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.c.Peek(it.Key); ok {
		return false
	}
	//lint:allow rplint/gracewait mu orders full read-modify-write command sequences; a backpressured Set under it is the documented cost of CAS semantics (see ROADMAP: value-level CAS)
	s.setLocked(it)
	return true
}

// Replace stores only if present and live.
func (s *RPStore) Replace(it *Item) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.c.Peek(it.Key); !ok {
		return false
	}
	//lint:allow rplint/gracewait mu orders full read-modify-write command sequences; a backpressured Set under it is the documented cost of CAS semantics (see ROADMAP: value-level CAS)
	s.setLocked(it)
	return true
}

// CompareAndSwap stores only when cas matches the live item.
func (s *RPStore) CompareAndSwap(it *Item, cas uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.c.Peek(it.Key)
	if !ok {
		return ErrNotFound
	}
	if cur.CAS != cas {
		return ErrCASMismatch
	}
	//lint:allow rplint/gracewait mu orders full read-modify-write command sequences; a backpressured Set under it is the documented cost of CAS semantics (see ROADMAP: value-level CAS)
	s.setLocked(it)
	return nil
}

// Delete removes the key.
func (s *RPStore) Delete(key string) bool {
	if s.c.Delete(key) {
		s.deletes.Add(1)
		return true
	}
	return false
}

// Touch replaces the item with one bearing the new expiry (items are
// immutable; readers see old or new).
func (s *RPStore) Touch(key string, expireAt int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.c.Peek(key)
	if !ok {
		return false
	}
	//lint:allow rplint/gracewait mu orders full read-modify-write command sequences; a backpressured Set under it is the documented cost of CAS semantics (see ROADMAP: value-level CAS)
	s.setLocked(NewItem(cur.Key, cur.Flags, cur.Value, expireAt))
	return true
}

// Append concatenates after the existing value.
func (s *RPStore) Append(key string, data []byte) bool { return s.concat(key, data, false) }

// Prepend concatenates before the existing value.
func (s *RPStore) Prepend(key string, data []byte) bool { return s.concat(key, data, true) }

func (s *RPStore) concat(key string, data []byte, front bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.c.Peek(key)
	if !ok {
		return false
	}
	buf := make([]byte, 0, len(cur.Value)+len(data))
	if front {
		buf = append(append(buf, data...), cur.Value...)
	} else {
		buf = append(append(buf, cur.Value...), data...)
	}
	//lint:allow rplint/gracewait mu orders full read-modify-write command sequences; a backpressured Set under it is the documented cost of CAS semantics (see ROADMAP: value-level CAS)
	s.setLocked(NewItem(cur.Key, cur.Flags, buf, cur.ExpireAt))
	return true
}

// IncrDecr adjusts a decimal value by full-item replacement.
func (s *RPStore) IncrDecr(key string, delta uint64, decr bool) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.c.Peek(key)
	if !ok {
		return 0, ErrNotFound
	}
	val, err := strconv.ParseUint(string(cur.Value), 10, 64)
	if err != nil {
		return 0, ErrNotNumeric
	}
	var next uint64
	if decr {
		if delta > val {
			next = 0
		} else {
			next = val - delta
		}
	} else {
		next = val + delta
	}
	//lint:allow rplint/gracewait mu orders full read-modify-write command sequences; a backpressured Set under it is the documented cost of CAS semantics (see ROADMAP: value-level CAS)
	s.setLocked(NewItem(cur.Key, cur.Flags, []byte(strconv.FormatUint(next, 10)), cur.ExpireAt))
	return next, nil
}

// FlushAll drops every item (see LockStore.FlushAll).
func (s *RPStore) FlushAll(int64) { s.c.Purge() }

// Len returns the item count (including expired, unswept items —
// they still occupy memory, matching memcached's curr_items).
func (s *RPStore) Len() int { return s.c.Len() }

// Bytes returns accounted bytes.
func (s *RPStore) Bytes() int64 { return s.c.Cost() }

// Stats snapshots counters. It reads the cache's cheap counter
// snapshot (no bucket walk), so a stats poll costs O(1) regardless of
// table size; Buckets comes from the map's own counter.
func (s *RPStore) Stats() StoreStats {
	cs := s.c.Counters()
	return StoreStats{
		Engine:    "rp",
		CurrItems: int64(cs.Entries),
		Bytes:     cs.Cost,
		GetHits:   cs.Hits,
		GetMisses: cs.Misses,
		Sets:      s.sets.Load(),
		Deletes:   s.deletes.Load(),
		Evictions: cs.Evictions,
		Expired:   cs.Expirations,
		Buckets:   s.c.Buckets(),
	}
}

// Close releases the cache (stopping its background sweeper and RCU
// domain) and stops the coarse clock's ticker goroutine.
func (s *RPStore) Close() {
	s.c.Close()
	s.clk.Stop()
}
