package memcache

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rphash/internal/core"
	"rphash/internal/shard"
)

// RPStore is the paper's memcached patch: GETs are relativistic
// lookups on the resizable hash table — no lock, no shared-counter
// bump, no retry — while mutations serialize on a store mutex and
// retire replaced items through grace periods. The table auto-resizes
// with load, so the unzip/zip algorithms run underneath live traffic.
//
// Differences from stock memcached noted in DESIGN.md: the slab
// allocator is the Go heap, and LRU is approximate — each GET stamps
// the item with an atomic store (no lock, no list manipulation), and
// eviction samples the table for the stalest items, in the spirit of
// memcached's later sampled-LRU ("lru_crawler") rather than 1.4's
// strict list, which cannot be maintained without serializing GETs.
type RPStore struct {
	t        *shard.Map[string, *Item]
	mu       sync.Mutex // serializes mutations (table writers also lock internally)
	bytes    atomic.Int64
	maxBytes int64
	casSeq   atomic.Uint64

	getHits   stripedCounter
	getMisses stripedCounter
	stripeSeq atomic.Uint64
	sets      atomic.Uint64
	deletes   atomic.Uint64
	evictions atomic.Uint64
	expired   atomic.Uint64
}

// evictionSample is how many candidate items an eviction pass
// examines when choosing victims.
const evictionSample = 16

// NewRPStore builds the relativistic engine. maxBytes <= 0 disables
// eviction.
//
// The store is backed by shard.Map — GOMAXPROCS-many relativistic
// tables behind one shared RCU domain — so table writers hash to
// independent shard mutexes while every GET stays a single lock-free
// chain walk. (The remaining mutation serialization is this store's
// own mu, which guards byte accounting and eviction, not the table.)
func NewRPStore(maxBytes int64) *RPStore {
	t := shard.NewString[*Item](
		shard.WithInitialBuckets(1024),
		shard.WithPolicy(core.Policy{MaxLoad: 2, MinLoad: 0.125, MinBuckets: 1024}),
	)
	startClock()
	return &RPStore{t: t, maxBytes: maxBytes}
}

// Get is the lock-free fast path. Expired items are treated as
// misses; their removal is left to writers and the sweeper (lazy
// expiry), keeping the read path pure.
func (s *RPStore) Get(key string) (*Item, bool) {
	it, ok := s.t.Get(key)
	if !ok {
		s.getMisses.add(0)
		return nil, false
	}
	if it.ExpireAt != 0 && it.Expired(nowSecs()) {
		s.getMisses.add(0)
		return nil, false
	}
	it.TouchUsed(nowNanos())
	s.getHits.add(0)
	return it, true
}

// NewGetter returns a per-goroutine lock-free Get using a registered
// read handle — the hot path connection handlers use.
func (s *RPStore) NewGetter() (func(key string) (*Item, bool), func()) {
	h := s.t.NewReadHandle()
	stripe := int(s.stripeSeq.Add(1))
	return func(key string) (*Item, bool) {
		it, ok := h.Get(key)
		if !ok {
			s.getMisses.add(stripe)
			return nil, false
		}
		if it.ExpireAt != 0 && it.Expired(nowSecs()) {
			s.getMisses.add(stripe)
			return nil, false
		}
		it.TouchUsed(nowNanos())
		s.getHits.add(stripe)
		return it, true
	}, h.Close
}

// Set stores unconditionally.
func (s *RPStore) Set(it *Item) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.setLocked(it)
}

func (s *RPStore) setLocked(it *Item) {
	it.CAS = s.casSeq.Add(1)
	if old, ok := s.t.Get(it.Key); ok {
		s.bytes.Add(it.Size() - old.Size())
	} else {
		s.bytes.Add(it.Size())
	}
	s.t.Set(it.Key, it)
	s.sets.Add(1)
	s.evictLocked()
}

// Add stores only if absent or expired.
func (s *RPStore) Add(it *Item) bool {
	now := time.Now().Unix()
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.t.Get(it.Key); ok && !cur.Expired(now) {
		return false
	}
	s.setLocked(it)
	return true
}

// Replace stores only if present and live.
func (s *RPStore) Replace(it *Item) bool {
	now := time.Now().Unix()
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.t.Get(it.Key)
	if !ok || cur.Expired(now) {
		return false
	}
	s.setLocked(it)
	return true
}

// CompareAndSwap stores only when cas matches the live item.
func (s *RPStore) CompareAndSwap(it *Item, cas uint64) error {
	now := time.Now().Unix()
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.t.Get(it.Key)
	if !ok || cur.Expired(now) {
		return ErrNotFound
	}
	if cur.CAS != cas {
		return ErrCASMismatch
	}
	s.setLocked(it)
	return nil
}

// Delete removes the key.
func (s *RPStore) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deleteLocked(key)
}

func (s *RPStore) deleteLocked(key string) bool {
	old, ok := s.t.Get(key)
	if !ok {
		return false
	}
	if s.t.Delete(key) {
		s.bytes.Add(-old.Size())
		s.deletes.Add(1)
		return true
	}
	return false
}

// Touch replaces the item with one bearing the new expiry (items are
// immutable; readers see old or new).
func (s *RPStore) Touch(key string, expireAt int64) bool {
	now := time.Now().Unix()
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.t.Get(key)
	if !ok || cur.Expired(now) {
		return false
	}
	repl := NewItem(cur.Key, cur.Flags, cur.Value, expireAt)
	s.setLocked(repl)
	return true
}

// Append concatenates after the existing value.
func (s *RPStore) Append(key string, data []byte) bool { return s.concat(key, data, false) }

// Prepend concatenates before the existing value.
func (s *RPStore) Prepend(key string, data []byte) bool { return s.concat(key, data, true) }

func (s *RPStore) concat(key string, data []byte, front bool) bool {
	now := time.Now().Unix()
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.t.Get(key)
	if !ok || cur.Expired(now) {
		return false
	}
	buf := make([]byte, 0, len(cur.Value)+len(data))
	if front {
		buf = append(append(buf, data...), cur.Value...)
	} else {
		buf = append(append(buf, cur.Value...), data...)
	}
	s.setLocked(NewItem(cur.Key, cur.Flags, buf, cur.ExpireAt))
	return true
}

// IncrDecr adjusts a decimal value by full-item replacement.
func (s *RPStore) IncrDecr(key string, delta uint64, decr bool) (uint64, error) {
	now := time.Now().Unix()
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.t.Get(key)
	if !ok || cur.Expired(now) {
		return 0, ErrNotFound
	}
	val, err := strconv.ParseUint(string(cur.Value), 10, 64)
	if err != nil {
		return 0, ErrNotNumeric
	}
	var next uint64
	if decr {
		if delta > val {
			next = 0
		} else {
			next = val - delta
		}
	} else {
		next = val + delta
	}
	s.setLocked(NewItem(cur.Key, cur.Flags, []byte(strconv.FormatUint(next, 10)), cur.ExpireAt))
	return next, nil
}

// FlushAll drops every item (see LockStore.FlushAll).
func (s *RPStore) FlushAll(int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range s.t.Keys() {
		s.deleteLocked(k)
	}
}

// Len returns the live item count.
func (s *RPStore) Len() int { return s.t.Len() }

// Bytes returns accounted bytes.
func (s *RPStore) Bytes() int64 { return s.bytes.Load() }

// Stats snapshots counters.
func (s *RPStore) Stats() StoreStats {
	return StoreStats{
		Engine:    "rp",
		CurrItems: int64(s.t.Len()),
		Bytes:     s.bytes.Load(),
		GetHits:   s.getHits.total(),
		GetMisses: s.getMisses.total(),
		Sets:      s.sets.Load(),
		Deletes:   s.deletes.Load(),
		Evictions: s.evictions.Load(),
		Expired:   s.expired.Load(),
		Buckets:   s.t.Buckets(),
	}
}

// Close releases the table's RCU domain.
func (s *RPStore) Close() { s.t.Close() }

// SweepExpired removes up to limit expired items (the lazy-expiry
// background pass; the server runs it periodically).
func (s *RPStore) SweepExpired(limit int) int {
	now := time.Now().Unix()
	var victims []string
	s.t.Range(func(k string, it *Item) bool {
		if it.Expired(now) {
			victims = append(victims, k)
		}
		return len(victims) < limit
	})
	removed := 0
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range victims {
		if it, ok := s.t.Get(k); ok && it.Expired(now) && s.deleteLocked(k) {
			s.expired.Add(1)
			removed++
		}
	}
	return removed
}

// evictLocked enforces the byte budget by sampled LRU: walk a sample
// of the table, evict the stalest item, repeat until under budget.
func (s *RPStore) evictLocked() {
	if s.maxBytes <= 0 {
		return
	}
	for s.bytes.Load() > s.maxBytes && s.t.Len() > 0 {
		var victim *Item
		scanned := 0
		// Start the sample at a pseudo-random bucket by ranging with
		// an early cutoff; the table's iteration order already mixes
		// hash order, and the CAS sequence varies the entry point.
		skip := int(s.casSeq.Load()) % max(s.t.Len(), 1)
		s.t.Range(func(_ string, it *Item) bool {
			if skip > 0 {
				skip--
				return true
			}
			if victim == nil || it.LastUsed() < victim.LastUsed() {
				victim = it
			}
			scanned++
			return scanned < evictionSample
		})
		if victim == nil {
			// Sample landed past the end; retry without skipping.
			s.t.Range(func(_ string, it *Item) bool {
				if victim == nil || it.LastUsed() < victim.LastUsed() {
					victim = it
				}
				scanned++
				return scanned < evictionSample
			})
		}
		if victim == nil {
			return
		}
		if s.deleteLocked(victim.Key) {
			s.evictions.Add(1)
		} else {
			return
		}
	}
}
