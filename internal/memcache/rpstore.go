package memcache

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"rphash/internal/cache"
	"rphash/internal/clock"
	"rphash/internal/core"
	"rphash/internal/obs"
)

// RPStore is the paper's memcached patch: GETs are relativistic
// lookups on the resizable hash table — no lock, no shared-counter
// bump, no retry — while mutations ride the table's per-key writer
// stripes (pure inserts even skip those, publishing lock-free via the
// table's CAS fast path) and retire replaced items through grace
// periods. The table auto-resizes with load, so the unzip/zip
// algorithms run underneath live traffic.
//
// There is no store-wide mutex anywhere in the command path. The
// read-modify-write commands (Add, Replace, CAS, Touch, Append,
// Prepend, IncrDecr) each run as one cache.Update: examine, decide,
// and publish atomically under the key's stripe. CAS-id sequencing
// lives in the value plane — ids are drawn from one atomic counter
// and attached to the item inside the same Update, so a `cas` command
// compares against exactly the item it would displace. Plain Set
// draws its id and publishes with no lock at all; two Sets racing on
// one key may therefore publish ids out of arrival order (last
// writer wins either way, and ids stay unique — memcached promises
// nothing stronger for concurrent unconditioned stores).
//
// Expiry, sampled-LRU eviction, byte accounting, and hit/miss stats
// all live in internal/cache (the reusable subsystem this engine
// seeded); RPStore contributes only the memcached semantics on top:
// CAS sequencing, conditional stores, and value edits. See DESIGN.md
// for what is simplified relative to stock memcached.
type RPStore struct {
	c      *cache.Cache[string, *Item]
	clk    *clock.Clock
	engine string // stats name: "rp" (chain) or "rp-flat"

	casSeq  atomic.Uint64
	sets    atomic.Uint64
	deletes atomic.Uint64

	obsv *obs.Observer
	wd   *obs.Watchdog
}

// StoreOption configures NewRPStore.
type StoreOption func(*rpConfig)

type rpConfig struct {
	obsv   *obs.Observer
	engine string
}

// WithStoreObserver threads an observability hub through the store
// into the cache, shard map, tables, and RCU domain underneath: grace
// waits, stripe waits, load latency, and resize lifecycle events all
// land in o. nil (the default) leaves every layer uninstrumented.
func WithStoreObserver(o *obs.Observer) StoreOption {
	return func(cfg *rpConfig) { cfg.obsv = o }
}

// WithStoreEngine selects the bucket engine for the tables underneath
// (core.EngineChain or core.EngineFlat). The store's protocol
// semantics are identical either way; only the per-bucket layout and
// resize mechanism change. Empty (the default) keeps the chain engine.
func WithStoreEngine(name string) StoreOption {
	return func(cfg *rpConfig) { cfg.engine = name }
}

// rpSweepInterval is the cadence of the cache's incremental expiry
// sweeper inside RPStore (one shard per tick, inside RCU reader
// sections). RPStore owns its sweeping entirely: it deliberately does
// NOT implement the server's `sweeper` interface, so the server's
// ticker never double-drives reclamation — expired items are
// reclaimed by exactly one mechanism (plus the usual lazy paths:
// overwrites and eviction sampling).
const rpSweepInterval = 100 * time.Millisecond

// NewRPStore builds the relativistic engine. maxBytes <= 0 disables
// eviction.
//
// The engine is backed by cache.Cache over shard.Map — relativistic
// tables behind one shared RCU domain, each with striped per-bucket
// writer locks — so table-level writers to different chains never
// contend while every GET stays a single lock-free chain walk. No
// command serializes wider than its own key: conditional commands
// run as one cache.Update under the key's stripe, and plain Set and
// Delete take no store-level lock at all (see the RPStore type
// comment for the CAS-id ordering this implies). Expired items are
// reclaimed by the cache's own incremental background sweeper (see
// rpSweepInterval); the server's sweep ticker does not apply to this
// store.
func NewRPStore(maxBytes int64, opts ...StoreOption) *RPStore {
	var cfg rpConfig
	for _, o := range opts {
		o(&cfg)
	}
	clk := clock.New(clock.DefaultGranularity)
	copts := []cache.Option{
		cache.WithClock(clk),
		cache.WithMaxCost(maxBytes),
		cache.WithInitialBuckets(1024),
		cache.WithPolicy(core.Policy{MaxLoad: 2, MinLoad: 0.125, MinBuckets: 1024}),
		cache.WithSweepInterval(rpSweepInterval),
	}
	if cfg.obsv != nil {
		copts = append(copts, cache.WithObserver(cfg.obsv))
	}
	if cfg.engine != "" {
		copts = append(copts, cache.WithEngine(cfg.engine))
	}
	name := "rp"
	if cfg.engine == core.EngineFlat {
		name = "rp-flat"
	}
	c := cache.NewString[*Item](copts...)
	return &RPStore{c: c, clk: clk, engine: name, obsv: cfg.obsv}
}

// Observer returns the store's observability hub (nil when not
// configured). The server reads it to time command dispatch.
func (s *RPStore) Observer() *obs.Observer { return s.obsv }

// Get is the lock-free fast path. Expired items are treated as misses
// by the cache; their removal is left to writers and the sweeper
// (lazy expiry), keeping the read path pure.
func (s *RPStore) Get(key string) (*Item, bool) { return s.c.Get(key) }

// NewGetter returns a per-goroutine lock-free Get using a registered
// read handle — the hot path connection handlers use.
func (s *RPStore) NewGetter() (func(key string) (*Item, bool), func()) {
	return s.c.NewGetter()
}

// GetMulti resolves all keys through the cache's batch path: keys are
// hashed once, grouped by shard, and looked up inside at most one
// reader section per touched shard — a multi-key `get` enters at most
// NumShards reader sections instead of one per key. out[i] is nil for
// misses (and for expired items); len(out) must equal len(keys).
func (s *RPStore) GetMulti(keys []string, out []*Item) {
	s.c.GetMulti(keys, out, nil)
}

// itemExpiry converts an Item's unix-seconds expiry to the cache's
// absolute form (zero time = never).
func itemExpiry(it *Item) time.Time {
	if it.ExpireAt == 0 {
		return time.Time{}
	}
	return time.Unix(it.ExpireAt, 0)
}

// Set stores unconditionally, with no lock at the store level: the
// CAS id comes off the atomic sequence and the cache publishes the
// item (pure inserts ride the table's lock-free fast path; replaces
// ride the key's stripe).
func (s *RPStore) Set(it *Item) {
	it.CAS = s.casSeq.Add(1)
	s.c.SetExpiresAt(it.Key, it, itemExpiry(it), it.Size())
	s.sets.Add(1)
}

// update runs one conditional command as a single cache.Update: fn
// examines the live item (nil if absent or expired) and returns the
// item to store, or nil to leave the store untouched. The examine and
// the publish are atomic under the key's writer stripe; the CAS id is
// assigned inside the same critical section, so a concurrent `cas`
// compares against exactly the item it would displace.
func (s *RPStore) update(key string, fn func(cur *Item) *Item) bool {
	stored := s.c.Update(key, func(cur *Item, live bool) (*Item, time.Time, int64, bool) {
		if !live {
			cur = nil
		}
		next := fn(cur)
		if next == nil {
			return nil, time.Time{}, 0, false
		}
		next.CAS = s.casSeq.Add(1)
		return next, itemExpiry(next), next.Size(), true
	})
	if stored {
		s.sets.Add(1)
	}
	return stored
}

// Add stores only if absent or expired.
func (s *RPStore) Add(it *Item) bool {
	return s.update(it.Key, func(cur *Item) *Item {
		if cur != nil {
			return nil
		}
		return it
	})
}

// Replace stores only if present and live.
func (s *RPStore) Replace(it *Item) bool {
	return s.update(it.Key, func(cur *Item) *Item {
		if cur == nil {
			return nil
		}
		return it
	})
}

// CompareAndSwap stores only when cas matches the live item.
func (s *RPStore) CompareAndSwap(it *Item, cas uint64) error {
	var err error
	s.update(it.Key, func(cur *Item) *Item {
		switch {
		case cur == nil:
			err = ErrNotFound
			return nil
		case cur.CAS != cas:
			err = ErrCASMismatch
			return nil
		}
		return it
	})
	return err
}

// Delete removes the key.
func (s *RPStore) Delete(key string) bool {
	if s.c.Delete(key) {
		s.deletes.Add(1)
		return true
	}
	return false
}

// Touch replaces the item with one bearing the new expiry (items are
// immutable; readers see old or new).
func (s *RPStore) Touch(key string, expireAt int64) bool {
	return s.update(key, func(cur *Item) *Item {
		if cur == nil {
			return nil
		}
		return NewItem(cur.Key, cur.Flags, cur.Value, expireAt)
	})
}

// Append concatenates after the existing value.
func (s *RPStore) Append(key string, data []byte) bool { return s.concat(key, data, false) }

// Prepend concatenates before the existing value.
func (s *RPStore) Prepend(key string, data []byte) bool { return s.concat(key, data, true) }

func (s *RPStore) concat(key string, data []byte, front bool) bool {
	return s.update(key, func(cur *Item) *Item {
		if cur == nil {
			return nil
		}
		buf := make([]byte, 0, len(cur.Value)+len(data))
		if front {
			buf = append(append(buf, data...), cur.Value...)
		} else {
			buf = append(append(buf, cur.Value...), data...)
		}
		return NewItem(cur.Key, cur.Flags, buf, cur.ExpireAt)
	})
}

// IncrDecr adjusts a decimal value by full-item replacement. The
// parse-compute-store sequence runs inside one cache.Update, so two
// concurrent incr commands on one key serialize under its stripe and
// neither adjustment is lost.
func (s *RPStore) IncrDecr(key string, delta uint64, decr bool) (uint64, error) {
	var next uint64
	err := ErrNotFound
	s.update(key, func(cur *Item) *Item {
		if cur == nil {
			return nil
		}
		val, perr := strconv.ParseUint(string(cur.Value), 10, 64)
		if perr != nil {
			err = ErrNotNumeric
			return nil
		}
		if decr {
			if delta > val {
				next = 0
			} else {
				next = val - delta
			}
		} else {
			next = val + delta
		}
		err = nil
		return NewItem(cur.Key, cur.Flags, []byte(strconv.FormatUint(next, 10)), cur.ExpireAt)
	})
	if err != nil {
		return 0, err
	}
	return next, nil
}

// FlushAll drops every item (see LockStore.FlushAll).
func (s *RPStore) FlushAll(int64) { s.c.Purge() }

// Len returns the item count (including expired, unswept items —
// they still occupy memory, matching memcached's curr_items).
func (s *RPStore) Len() int { return s.c.Len() }

// Bytes returns accounted bytes.
func (s *RPStore) Bytes() int64 { return s.c.Cost() }

// Stats snapshots counters. It reads the cache's cheap counter
// snapshot (no bucket walk), so a stats poll costs O(1) regardless of
// table size; Buckets comes from the map's own counter.
func (s *RPStore) Stats() StoreStats {
	cs := s.c.Counters()
	ms := s.c.MapCounters()
	st := StoreStats{
		Engine:         s.engine,
		CurrItems:      int64(cs.Entries),
		Bytes:          cs.Cost,
		GetHits:        cs.Hits,
		GetMisses:      cs.Misses,
		Sets:           s.sets.Load(),
		Deletes:        s.deletes.Load(),
		Evictions:      cs.Evictions,
		Expired:        cs.Expirations,
		Buckets:        s.c.Buckets(),
		CASFastInserts: ms.CASFastInserts,
		CASFallbacks:   ms.CASFallbacks,
		CASUndos:       ms.CASUndos,
		ValueCASSwaps:  ms.ValueCASSwaps,

		UnzipBacklog:      ms.UnzipBacklog,
		MigrationUnits:    ms.MigrationUnits,
		MigrationDone:     ms.MigrationDone,
		MigrationRate:     ms.MigrationRate,
		FlatSampledGroups: ms.FlatSampledGroups,
		FlatSpilledGroups: ms.FlatSpilledGroups,
		FlatSpillEntries:  ms.FlatSpillEntries,
		FlatMaxSpill:      ms.FlatMaxSpill,
		FlatSpillRatio:    ms.FlatSpillRatio(),
	}
	if st.FlatSampledGroups > 0 {
		st.FlatOccupancy = append([]uint64(nil), ms.FlatOccupancy[:]...)
	}
	return st
}

// RegisterMetrics publishes the store's full metric surface into reg:
// cache hit/miss/load/eviction counters, byte and item gauges, the
// map's structural counters (buckets, stripe-lock telemetry, resize
// and unzip totals), RCU domain counters, adaptive-maintenance stats
// when enabled, and — when the store was built WithStoreObserver —
// every latency histogram and the event-ring depth. All closures read
// O(1)/O(stripes) counter snapshots, so scraping never walks buckets.
func (s *RPStore) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("rphash_cache_hits_total", "Live-entry GET hits.",
		func() uint64 { return s.c.Counters().Hits })
	reg.Counter("rphash_cache_misses_total", "Absent or expired GET misses.",
		func() uint64 { return s.c.Counters().Misses })
	reg.Counter("rphash_cache_evictions_total", "Live entries evicted for capacity.",
		func() uint64 { return s.c.Counters().Evictions })
	reg.Counter("rphash_cache_expirations_total", "Expired entries reclaimed.",
		func() uint64 { return s.c.Counters().Expirations })
	reg.Counter("rphash_store_sets_total", "Store commands applied (set/add/replace/cas/...).",
		func() uint64 { return s.sets.Load() })
	reg.Counter("rphash_store_deletes_total", "Successful deletes.",
		func() uint64 { return s.deletes.Load() })
	reg.Gauge("rphash_store_bytes", "Accounted value bytes.",
		func() float64 { return float64(s.c.Cost()) })
	reg.Gauge("rphash_store_items", "Current item count (incl. unswept expired).",
		func() float64 { return float64(s.c.Len()) })

	reg.Gauge("rphash_map_buckets", "Hash buckets across all shards.",
		func() float64 { return float64(s.c.Buckets()) })
	reg.Gauge("rphash_map_load_factor", "Entries per bucket across all shards.",
		func() float64 { return s.c.MapCounters().LoadFactor })
	reg.Counter("rphash_stripe_acquires_total", "Writer stripe-lock acquisitions.",
		func() uint64 { return s.c.MapCounters().StripeAcquires })
	reg.Counter("rphash_stripe_contended_total", "Writer stripe-lock acquisitions that blocked.",
		func() uint64 { return s.c.MapCounters().StripeContended })
	reg.Counter("rphash_stripe_retunes_total", "Runtime stripe-array swaps.",
		func() uint64 { return s.c.MapCounters().StripeRetunes })
	reg.Counter("rphash_map_expands_total", "Table expansions (unzip).",
		func() uint64 { return s.c.MapCounters().Expands })
	reg.Counter("rphash_map_shrinks_total", "Table shrinks (zip).",
		func() uint64 { return s.c.MapCounters().Shrinks })
	reg.Counter("rphash_unzip_passes_total", "Grace-period-separated unzip passes.",
		func() uint64 { return s.c.MapCounters().UnzipPasses })
	reg.Counter("rphash_unzip_cuts_total", "Individual unzip pointer cuts.",
		func() uint64 { return s.c.MapCounters().UnzipCuts })
	reg.Counter("rphash_cas_fast_inserts_total", "Pure inserts published lock-free by head CAS.",
		func() uint64 { return s.c.MapCounters().CASFastInserts })
	reg.Counter("rphash_cas_fallbacks_total", "Fast-path inserts that fell back to the striped slow path.",
		func() uint64 { return s.c.MapCounters().CASFallbacks })
	reg.Counter("rphash_cas_undos_total", "Fast-path inserts rolled back after losing to a resize capture.",
		func() uint64 { return s.c.MapCounters().CASUndos })
	reg.Counter("rphash_value_cas_total", "Successful lock-free value compare-and-publishes.",
		func() uint64 { return s.c.MapCounters().ValueCASSwaps })

	reg.Gauge("rphash_unzip_backlog", "Active parent buckets in the in-flight unzip (0 when idle).",
		func() float64 { return float64(s.c.MapCounters().UnzipBacklog) })
	reg.Gauge("rphash_migration_units", "Units in the in-flight resize migration (0 when idle).",
		func() float64 { return float64(s.c.MapCounters().MigrationUnits) })
	reg.Gauge("rphash_migration_done", "Units already migrated by the in-flight resize.",
		func() float64 { return float64(s.c.MapCounters().MigrationDone) })
	reg.Gauge("rphash_migration_progress", "Fraction of the in-flight migration completed (0..1).",
		func() float64 { return s.c.MapCounters().MigrationProgress() })
	reg.Gauge("rphash_migration_rate_units_per_s", "Migration throughput of the in-flight resize.",
		func() float64 { return s.c.MapCounters().MigrationRate })
	reg.Gauge("rphash_flat_sampled_groups", "Groups sampled by the flat engine's occupancy scan (0 on chain).",
		func() float64 { return float64(s.c.MapCounters().FlatSampledGroups) })
	reg.Gauge("rphash_flat_spilled_groups", "Sampled flat groups with a populated overflow chain.",
		func() float64 { return float64(s.c.MapCounters().FlatSpilledGroups) })
	reg.Gauge("rphash_flat_spill_entries", "Overflow entries behind the sampled flat groups.",
		func() float64 { return float64(s.c.MapCounters().FlatSpillEntries) })
	reg.Gauge("rphash_flat_max_spill", "Longest overflow chain behind a sampled flat group.",
		func() float64 { return float64(s.c.MapCounters().FlatMaxSpill) })
	reg.Gauge("rphash_flat_spill_ratio", "Spilled/sampled flat-group ratio.",
		func() float64 { return s.c.MapCounters().FlatSpillRatio() })
	// The registry has no label support, so the 9-bin occupancy
	// histogram (0..8 cells used) becomes 9 named gauges.
	var zeroStats core.Stats
	for i := range zeroStats.FlatOccupancy {
		i := i
		reg.Gauge(fmt.Sprintf("rphash_flat_occupancy_%d", i),
			fmt.Sprintf("Sampled flat groups with exactly %d of 8 tag cells occupied.", i),
			func() float64 { return float64(s.c.MapCounters().FlatOccupancy[i]) })
	}

	reg.Counter("rphash_rcu_grace_periods_total", "Completed Synchronize calls.",
		func() uint64 { return s.c.Domain().Stats().GracePeriods })
	reg.Counter("rphash_rcu_deferred_total", "Callbacks queued via Defer.",
		func() uint64 { return s.c.Domain().Stats().Deferred })
	reg.Counter("rphash_rcu_deferred_ran_total", "Deferred callbacks executed.",
		func() uint64 { return s.c.Domain().Stats().DeferredRan })
	reg.Gauge("rphash_rcu_readers", "Currently registered delimited readers.",
		func() float64 { return float64(s.c.Domain().Stats().Readers) })

	if _, on := s.c.AdaptStats(); on {
		reg.Counter("rphash_adapt_samples_total", "Adaptive-maintenance sampling intervals.",
			func() uint64 { st, _ := s.c.AdaptStats(); return st.Samples })
		reg.Counter("rphash_adapt_stripe_grows_total", "Retunes that doubled stripes.",
			func() uint64 { st, _ := s.c.AdaptStats(); return st.StripeGrows })
		reg.Counter("rphash_adapt_stripe_shrinks_total", "Retunes that halved stripes.",
			func() uint64 { st, _ := s.c.AdaptStats(); return st.StripeShrinks })
		reg.Counter("rphash_adapt_worker_retunes_total", "Unzip fan-out adjustments.",
			func() uint64 { st, _ := s.c.AdaptStats(); return st.WorkerRetunes })
		reg.Gauge("rphash_adapt_contention_rate", "Most recent sampled contention rate (max over shards).",
			func() float64 { st, _ := s.c.AdaptStats(); return st.LastRate })
	}

	s.obsv.Register(reg)
}

// StartWatchdog attaches the anomaly watchdog to the store's cache,
// sampling grace-period progress, stripe contention, resize backlog,
// and evictions each cfg.Interval. A nil cfg.Clock inherits the
// store's coarse clock; detections land in the store's observer ring
// (when configured) and, with a non-nil reg, in per-class trip
// counters. The store stops the watchdog in Close.
func (s *RPStore) StartWatchdog(reg *obs.Registry, cfg obs.WatchdogConfig) *obs.Watchdog {
	s.wd = s.c.StartWatchdog(reg, cfg)
	return s.wd
}

// Close stops the watchdog (when started), releases the cache
// (stopping its background sweeper and RCU domain), and stops the
// coarse clock's ticker goroutine.
func (s *RPStore) Close() {
	if s.wd != nil {
		s.wd.Stop()
	}
	s.c.Close()
	s.clk.Stop()
}
