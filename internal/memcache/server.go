package memcache

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rphash/internal/obs"
)

// Server is a TCP memcached-protocol server over a Store.
type Server struct {
	store   Store
	started time.Time

	// Observer, when set before Serve, times every command dispatch
	// into per-class latency histograms (and handleStats surfaces
	// them). Set it to the same hub the store was built with so one
	// scrape covers both layers. connSeq spreads connections across
	// the histograms' counter banks.
	Observer *obs.Observer
	connSeq  atomic.Uint64

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	sweepDur time.Duration
	sweepStp chan struct{}
	wg       sync.WaitGroup

	// Logf logs connection errors; nil silences them.
	Logf func(format string, args ...any)
}

// NewServer wraps a store. If sweepEvery > 0 and the store exposes a
// SweepExpired pass, a background goroutine reclaims expired items at
// that cadence. Stores that run their own background reclamation
// (RPStore's cache sweeps itself incrementally) deliberately do not
// expose one, so expired items are only ever reclaimed by a single
// mechanism.
func NewServer(store Store, sweepEvery time.Duration) *Server {
	return &Server{
		store:    store,
		started:  time.Now(),
		conns:    make(map[net.Conn]struct{}),
		sweepDur: sweepEvery,
		sweepStp: make(chan struct{}),
	}
}

// sweeper is implemented by stores whose lazy-expiry pass is driven
// externally. Neither built-in store implements it — RPStore sweeps
// itself, LockStore expires purely lazily — but custom engines may.
type sweeper interface {
	SweepExpired(limit int) int
}

// multiGetter is implemented by stores with a batched lookup path;
// the protocol layer routes multi-key get/gets through it so a whole
// request shares reader sections instead of entering one per key.
type multiGetter interface {
	GetMulti(keys []string, out []*Item)
}

// Serve accepts connections on ln until Close. It blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("memcache: server closed")
	}
	s.ln = ln
	s.mu.Unlock()

	if sw, ok := s.store.(sweeper); ok && s.sweepDur > 0 {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			t := time.NewTicker(s.sweepDur)
			defer t.Stop()
			for {
				select {
				case <-s.sweepStp:
					return
				case <-t.C:
					sw.SweepExpired(1024)
				}
			}
		}()
	}

	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[nc] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(nc)
		}()
	}
}

// ListenAndServe listens on addr ("host:port") and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

func (s *Server) handle(nc net.Conn) {
	defer func() {
		nc.Close()
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
	}()

	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &conn{
		srv:       s,
		obsv:      s.Observer,
		obsStripe: int(s.connSeq.Add(1)),
		rw: bufio.NewReadWriter(
			bufio.NewReaderSize(nc, 16<<10),
			bufio.NewWriterSize(nc, 16<<10),
		),
	}
	// Connection handlers are long-lived goroutines: exactly the
	// situation registered readers are for. RPStore gives each
	// connection its own lock-free getter; stores with a batch path
	// additionally serve multi-key gets through it.
	if rp, ok := s.store.(*RPStore); ok {
		c.get, c.closeGet = rp.NewGetter()
	} else {
		c.get = s.store.Get
	}
	if mg, ok := s.store.(multiGetter); ok {
		c.getMulti = mg.GetMulti
	}

	if err := c.serve(); err != nil && s.Logf != nil {
		s.Logf("memcache: conn %s: %v", nc.RemoteAddr(), err)
	}
}

// Addr returns the listener address, once serving.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes live connections, stops the sweeper,
// and waits for handlers to drain. The store itself is closed too.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()

	close(s.sweepStp)
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	s.store.Close()
	return err
}
