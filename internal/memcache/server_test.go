package memcache

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func TestServerCloseUnblocksServe(t *testing.T) {
	srv := NewServer(NewLockStore(0), 0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	time.Sleep(10 * time.Millisecond)
	if srv.Addr() == nil {
		t.Fatal("Addr nil while serving")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	// Idempotent.
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestServerClosesLiveConnections(t *testing.T) {
	srv := NewServer(NewRPStore(0), 0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Ensure the handler picked the connection up.
	fmt.Fprintf(nc, "version\r\n")
	br := bufio.NewReader(nc)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := br.ReadString('\n'); err == nil {
		t.Fatal("connection survived server Close")
	}
}

func TestServerSweeperReclaimsExpired(t *testing.T) {
	store := NewRPStore(0)
	srv := NewServer(store, 20*time.Millisecond)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()

	past := time.Now().Unix() - 10
	for i := 0; i < 20; i++ {
		store.Set(NewItem(fmt.Sprintf("k%d", i), 0, []byte("v"), past))
	}
	deadline := time.Now().Add(5 * time.Second)
	for store.Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := store.Len(); n != 0 {
		t.Fatalf("sweeper left %d expired items", n)
	}
}

// TestServerConcurrentClients exercises the full stack: many
// connections doing mixed GET/SET against the RP engine while its
// table auto-resizes.
func TestServerConcurrentClients(t *testing.T) {
	srv := NewServer(NewRPStore(0), 0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()
	addr := ln.Addr().String()

	const clients = 8
	const opsPerClient = 300
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cid := 0; cid < clients; cid++ {
		wg.Add(1)
		go func(cid int) {
			defer wg.Done()
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer nc.Close()
			w := bufio.NewWriter(nc)
			r := bufio.NewReader(nc)
			for i := 0; i < opsPerClient; i++ {
				key := fmt.Sprintf("c%d-k%d", cid, i%64)
				val := fmt.Sprintf("v%d", i)
				fmt.Fprintf(w, "set %s 0 0 %d\r\n%s\r\n", key, len(val), val)
				w.Flush()
				if line, err := r.ReadString('\n'); err != nil || line != "STORED\r\n" {
					errs <- fmt.Errorf("client %d set: %q %v", cid, line, err)
					return
				}
				fmt.Fprintf(w, "get %s\r\n", key)
				w.Flush()
				line, err := r.ReadString('\n')
				if err != nil || len(line) < 5 || line[:5] != "VALUE" {
					errs <- fmt.Errorf("client %d get header: %q %v", cid, line, err)
					return
				}
				if data, err := r.ReadString('\n'); err != nil || data != val+"\r\n" {
					errs <- fmt.Errorf("client %d get data: %q %v", cid, data, err)
					return
				}
				if end, err := r.ReadString('\n'); err != nil || end != "END\r\n" {
					errs <- fmt.Errorf("client %d get end: %q %v", cid, end, err)
					return
				}
			}
		}(cid)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestAbsoluteExpiryMapping(t *testing.T) {
	now := int64(1_000_000)
	cases := []struct{ in, want int64 }{
		{0, 0},
		{-1, 1},
		{60, now + 60},
		{relativeExpiryCutoff, now + relativeExpiryCutoff},
		{relativeExpiryCutoff + 1, relativeExpiryCutoff + 1},
		{2_000_000_000, 2_000_000_000},
	}
	for _, c := range cases {
		if got := AbsoluteExpiry(c.in, now); got != c.want {
			t.Errorf("AbsoluteExpiry(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestItemHelpers(t *testing.T) {
	it := NewItem("k", 1, []byte("abc"), 0)
	if it.Expired(time.Now().Unix()) {
		t.Fatal("no-expiry item reported expired")
	}
	if it.Size() <= 4 {
		t.Fatalf("Size = %d suspiciously small", it.Size())
	}
	if !NewItem("k", 0, nil, 1).Expired(time.Now().Unix()) {
		t.Fatal("epoch-second-1 item not expired")
	}
}
