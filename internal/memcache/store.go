package memcache

import "errors"

// Store is the storage-engine contract the protocol layer drives.
// Implementations must make Get safe to call concurrently with
// everything; mutating operations may serialize internally.
type Store interface {
	// Get returns the live (non-expired) item for key.
	Get(key string) (*Item, bool)
	// Set unconditionally stores the item (assigning its CAS).
	Set(it *Item)
	// Add stores only if the key is absent (or expired).
	Add(it *Item) bool
	// Replace stores only if the key is present.
	Replace(it *Item) bool
	// CompareAndSwap stores only if the current CAS matches. Returns
	// ErrCASMismatch or ErrNotFound on failure.
	CompareAndSwap(it *Item, cas uint64) error
	// Delete removes the key, reporting whether it was present.
	Delete(key string) bool
	// Touch updates expiry only, reporting whether the key exists.
	Touch(key string, expireAt int64) bool
	// Append / Prepend concatenate to an existing value.
	Append(key string, data []byte) bool
	Prepend(key string, data []byte) bool
	// IncrDecr adjusts a decimal-uint64 value; decr floors at 0.
	// Returns ErrNotFound if absent, ErrNotNumeric if undecodable.
	IncrDecr(key string, delta uint64, decr bool) (uint64, error)
	// FlushAll invalidates every item whose store time precedes the
	// given unix second (memcached's flush_all [delay]).
	FlushAll(before int64)
	// Len returns the live item count (approximate under load).
	Len() int
	// Bytes returns the accounted byte total.
	Bytes() int64
	// Stats returns engine counters for the stats command.
	Stats() StoreStats
	// Close releases engine resources.
	Close()
}

// Engine failure sentinels.
var (
	ErrNotFound    = errors.New("memcache: key not found")
	ErrCASMismatch = errors.New("memcache: cas mismatch")
	ErrNotNumeric  = errors.New("memcache: value is not a number")
)

// StoreStats are the per-engine counters surfaced through the
// protocol's stats command.
type StoreStats struct {
	Engine    string
	CurrItems int64
	Bytes     int64
	GetHits   uint64
	GetMisses uint64
	Sets      uint64
	Deletes   uint64
	Evictions uint64
	Expired   uint64
	// Buckets is the hash-table bucket count (post-resize), where the
	// engine exposes it.
	Buckets int
	// Lock-free write-path counters (rp engine only; zero elsewhere).
	// CASFastInserts counts pure inserts published by a bucket-head
	// CAS without taking a stripe; CASFallbacks counts fast-path
	// attempts that redid themselves under the striped slow path;
	// CASUndos (a subset of fallbacks) counts published inserts rolled
	// back after losing to a resize capture; ValueCASSwaps counts
	// successful lock-free value compare-and-publishes.
	CASFastInserts uint64
	CASFallbacks   uint64
	CASUndos       uint64
	ValueCASSwaps  uint64
	// Resize/migration introspection (both engines). UnzipBacklog is
	// the chain engine's active-parent count for the in-flight unzip;
	// MigrationUnits/Done/Rate track the current incremental migration
	// (chain unzip passes or flat per-unit copies), all zero when no
	// resize is running.
	UnzipBacklog   int64
	MigrationUnits uint64
	MigrationDone  uint64
	// MigrationRate is migrated units per second for the in-flight
	// resize (0 when idle).
	MigrationRate float64
	// Flat-engine introspection (zero/nil on the chain engine).
	// FlatOccupancy[i] counts sampled groups with exactly i of their 8
	// tag cells occupied; FlatSpillRatio is spilled/sampled groups.
	FlatSampledGroups uint64
	FlatOccupancy     []uint64
	FlatSpilledGroups uint64
	FlatSpillEntries  uint64
	FlatMaxSpill      int
	FlatSpillRatio    float64
}
