package memcache

import (
	"bytes"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// storeFactories lets every test run against both engines — the
// baseline and the paper's patch must be behaviorally identical.
var storeFactories = map[string]func(maxBytes int64) Store{
	"lock": func(m int64) Store { return NewLockStore(m) },
	"rp":   func(m int64) Store { return NewRPStore(m) },
}

func forEachStore(t *testing.T, maxBytes int64, fn func(t *testing.T, s Store)) {
	for name, mk := range storeFactories {
		t.Run(name, func(t *testing.T) {
			s := mk(maxBytes)
			defer s.Close()
			fn(t, s)
		})
	}
}

func TestSetGetDelete(t *testing.T) {
	forEachStore(t, 0, func(t *testing.T, s Store) {
		if _, ok := s.Get("k"); ok {
			t.Fatal("Get on empty store")
		}
		s.Set(NewItem("k", 7, []byte("hello"), 0))
		it, ok := s.Get("k")
		if !ok || string(it.Value) != "hello" || it.Flags != 7 {
			t.Fatalf("Get = %+v, %v", it, ok)
		}
		if it.CAS == 0 {
			t.Fatal("stored item has zero CAS")
		}
		if !s.Delete("k") || s.Delete("k") {
			t.Fatal("Delete semantics wrong")
		}
		if _, ok := s.Get("k"); ok {
			t.Fatal("Get after Delete")
		}
	})
}

func TestAddReplace(t *testing.T) {
	forEachStore(t, 0, func(t *testing.T, s Store) {
		if s.Replace(NewItem("k", 0, []byte("x"), 0)) {
			t.Fatal("Replace stored to empty key")
		}
		if !s.Add(NewItem("k", 0, []byte("1"), 0)) {
			t.Fatal("Add to empty key failed")
		}
		if s.Add(NewItem("k", 0, []byte("2"), 0)) {
			t.Fatal("Add over live key succeeded")
		}
		if !s.Replace(NewItem("k", 0, []byte("3"), 0)) {
			t.Fatal("Replace of live key failed")
		}
		it, _ := s.Get("k")
		if string(it.Value) != "3" {
			t.Fatalf("value = %q, want 3", it.Value)
		}
	})
}

func TestCAS(t *testing.T) {
	forEachStore(t, 0, func(t *testing.T, s Store) {
		if err := s.CompareAndSwap(NewItem("k", 0, []byte("x"), 0), 1); err != ErrNotFound {
			t.Fatalf("CAS on absent key: %v, want ErrNotFound", err)
		}
		s.Set(NewItem("k", 0, []byte("v1"), 0))
		it, _ := s.Get("k")
		if err := s.CompareAndSwap(NewItem("k", 0, []byte("v2"), 0), it.CAS+99); err != ErrCASMismatch {
			t.Fatalf("stale CAS: %v, want ErrCASMismatch", err)
		}
		if err := s.CompareAndSwap(NewItem("k", 0, []byte("v2"), 0), it.CAS); err != nil {
			t.Fatalf("matching CAS: %v", err)
		}
		got, _ := s.Get("k")
		if string(got.Value) != "v2" {
			t.Fatalf("value = %q after CAS", got.Value)
		}
		if got.CAS == it.CAS {
			t.Fatal("CAS id did not advance on store")
		}
	})
}

func TestExpiry(t *testing.T) {
	forEachStore(t, 0, func(t *testing.T, s Store) {
		past := time.Now().Unix() - 10
		s.Set(NewItem("gone", 0, []byte("x"), past))
		if _, ok := s.Get("gone"); ok {
			t.Fatal("expired item returned")
		}
		future := time.Now().Unix() + 1000
		s.Set(NewItem("live", 0, []byte("y"), future))
		if _, ok := s.Get("live"); !ok {
			t.Fatal("live item missing")
		}
		// Expired keys are Add-able and not Replace-able.
		if !s.Add(NewItem("gone", 0, []byte("z"), 0)) {
			t.Fatal("Add over expired key failed")
		}
	})
}

func TestTouch(t *testing.T) {
	forEachStore(t, 0, func(t *testing.T, s Store) {
		if s.Touch("nope", time.Now().Unix()+100) {
			t.Fatal("Touch on absent key")
		}
		s.Set(NewItem("k", 3, []byte("v"), time.Now().Unix()+1000))
		if !s.Touch("k", time.Now().Unix()-5) {
			t.Fatal("Touch failed")
		}
		if _, ok := s.Get("k"); ok {
			t.Fatal("item alive after Touch to the past")
		}
	})
}

func TestAppendPrepend(t *testing.T) {
	forEachStore(t, 0, func(t *testing.T, s Store) {
		if s.Append("k", []byte("!")) || s.Prepend("k", []byte("!")) {
			t.Fatal("concat on absent key succeeded")
		}
		s.Set(NewItem("k", 0, []byte("mid"), 0))
		if !s.Append("k", []byte(">")) || !s.Prepend("k", []byte("<")) {
			t.Fatal("concat failed")
		}
		it, _ := s.Get("k")
		if string(it.Value) != "<mid>" {
			t.Fatalf("value = %q, want <mid>", it.Value)
		}
	})
}

func TestIncrDecr(t *testing.T) {
	forEachStore(t, 0, func(t *testing.T, s Store) {
		if _, err := s.IncrDecr("k", 1, false); err != ErrNotFound {
			t.Fatalf("incr absent: %v", err)
		}
		s.Set(NewItem("k", 0, []byte("10"), 0))
		if v, err := s.IncrDecr("k", 5, false); err != nil || v != 15 {
			t.Fatalf("incr = %d, %v", v, err)
		}
		if v, err := s.IncrDecr("k", 20, true); err != nil || v != 0 {
			t.Fatalf("decr floors at 0: got %d, %v", v, err)
		}
		s.Set(NewItem("s", 0, []byte("abc"), 0))
		if _, err := s.IncrDecr("s", 1, false); err != ErrNotNumeric {
			t.Fatalf("incr non-numeric: %v", err)
		}
	})
}

func TestFlushAll(t *testing.T) {
	forEachStore(t, 0, func(t *testing.T, s Store) {
		for i := 0; i < 50; i++ {
			s.Set(NewItem(fmt.Sprintf("k%d", i), 0, []byte("v"), 0))
		}
		s.FlushAll(time.Now().Unix())
		if n := s.Len(); n != 0 {
			t.Fatalf("Len = %d after FlushAll", n)
		}
		if b := s.Bytes(); b != 0 {
			t.Fatalf("Bytes = %d after FlushAll", b)
		}
	})
}

func TestEviction(t *testing.T) {
	// Budget for ~20 items of this shape.
	item := func(i int) *Item {
		return NewItem(fmt.Sprintf("key-%04d", i), 0, bytes.Repeat([]byte{'v'}, 52), 0)
	}
	budget := 20 * item(0).Size()
	forEachStore(t, budget, func(t *testing.T, s Store) {
		for i := 0; i < 100; i++ {
			s.Set(item(i))
		}
		if b := s.Bytes(); b > budget {
			t.Fatalf("Bytes = %d exceeds budget %d after eviction", b, budget)
		}
		if n := s.Len(); n == 0 || n > 20 {
			t.Fatalf("Len = %d, want (0,20]", n)
		}
		if ev := s.Stats().Evictions; ev == 0 {
			t.Fatal("no evictions recorded")
		}
	})
}

func TestLRUEvictionPrefersCold(t *testing.T) {
	// Strict-LRU LockStore must keep the hot key; sampled-LRU RPStore
	// keeps it with high probability — assert only on LockStore.
	s := NewLockStore(12 * NewItem("k-000", 0, bytes.Repeat([]byte{'v'}, 52), 0).Size())
	defer s.Close()
	hot := NewItem("hot-key", 0, bytes.Repeat([]byte{'v'}, 52), 0)
	s.Set(hot)
	for i := 0; i < 60; i++ {
		s.Get("hot-key") // keep hot at LRU front
		s.Set(NewItem(fmt.Sprintf("cold-%04d", i), 0, bytes.Repeat([]byte{'v'}, 52), 0))
	}
	if _, ok := s.Get("hot-key"); !ok {
		t.Fatal("strict LRU evicted the hot key")
	}
}

func TestStatsCounts(t *testing.T) {
	forEachStore(t, 0, func(t *testing.T, s Store) {
		s.Set(NewItem("a", 0, []byte("1"), 0))
		s.Get("a")
		s.Get("missing")
		s.Delete("a")
		st := s.Stats()
		if st.GetHits != 1 || st.GetMisses != 1 || st.Sets != 1 || st.Deletes != 1 {
			t.Fatalf("stats = %+v", st)
		}
		if st.Engine == "" {
			t.Fatal("engine name empty")
		}
	})
}

// TestRPStoreSweepsItself: expired items must be reclaimed by the
// cache's own background sweeper — the single sweep mechanism — with
// no external SweepExpired driver; and RPStore must NOT expose a
// SweepExpired pass, or the server's ticker would become a second,
// duplicate reclamation mechanism.
func TestRPStoreSweepsItself(t *testing.T) {
	s := NewRPStore(0)
	defer s.Close()

	if _, ok := any(s).(sweeper); ok {
		t.Fatal("RPStore implements the server's sweeper interface; expired items would be reclaimed by two mechanisms")
	}

	past := time.Now().Unix() - 5
	for i := 0; i < 30; i++ {
		s.Set(NewItem(fmt.Sprintf("e%d", i), 0, []byte("x"), past))
	}
	s.Set(NewItem("live", 0, []byte("x"), 0))

	// The incremental sweeper covers one shard per rpSweepInterval
	// tick; give it a full rotation (generously) to reclaim everything.
	deadline := time.Now().Add(30 * time.Second)
	for s.Len() > 1 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after background sweep, want 1", s.Len())
	}
	if got := s.Stats().Expired; got != 30 {
		t.Fatalf("Expired stat = %d, want 30", got)
	}
	if _, ok := s.Get("live"); !ok {
		t.Fatal("live item swept")
	}
}

// TestTortureGetUnderChurn: GETs must always see a complete,
// previously-stored value while SETs replace values and the table
// auto-resizes underneath.
func TestTortureGetUnderChurn(t *testing.T) {
	forEachStore(t, 0, func(t *testing.T, s Store) {
		const keys = 256
		// Values are self-describing: "<key>=<gen>" so readers can
		// verify integrity.
		valFor := func(k, gen int) []byte {
			return []byte(fmt.Sprintf("%d=%d", k, gen))
		}
		for k := 0; k < keys; k++ {
			s.Set(NewItem(strconv.Itoa(k), 0, valFor(k, 0), 0))
		}

		stop := make(chan struct{})
		var bad atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				k := seed
				for {
					select {
					case <-stop:
						return
					default:
					}
					k = (k*31 + 17) % keys
					it, ok := s.Get(strconv.Itoa(k))
					if !ok {
						bad.Add(1)
						continue
					}
					// Value must be "<k>=<n>" for some n.
					parts := bytes.SplitN(it.Value, []byte{'='}, 2)
					if len(parts) != 2 || string(parts[0]) != strconv.Itoa(k) {
						bad.Add(1)
					}
				}
			}(g)
		}
		deadline := time.Now().Add(600 * time.Millisecond)
		gen := 1
		for time.Now().Before(deadline) {
			for k := 0; k < keys; k++ {
				s.Set(NewItem(strconv.Itoa(k), 0, valFor(k, gen), 0))
			}
			gen++
		}
		close(stop)
		wg.Wait()
		if n := bad.Load(); n != 0 {
			t.Fatalf("%d corrupt or missing reads under churn (%d set generations)", n, gen)
		}
	})
}
