// Package obs is the observability plane: lock-free latency
// histograms, a concurrent event ring for resize/retune lifecycle
// tracing, and an export plane (hand-rolled Prometheus text format,
// expvar-style JSON, and net/http/pprof mounting).
//
// The package is deliberately stdlib-only and imports nothing else in
// this module, so every layer — internal/rcu included — can depend on
// it without cycles. All instrumentation points in the rest of the
// tree are nil-safe: a nil *Observer (or nil *Histogram / *Ring)
// means "off", and the off cost is a single pointer compare on paths
// that are instrumented at all. Hot read paths are not instrumented.
//
// Histogram is a striped power-of-two-bucket latency histogram:
// Record is a handful of uncontended atomic adds (zero allocations),
// Snapshot folds the stripes into a mergeable HistogramSnapshot with
// quantile estimation (p50/p95/p99) against bucket upper bounds.
//
// Ring is a fixed-size concurrent event log with per-slot sequence
// markers: writers claim a ticket with one atomic add and publish
// all-atomic fields under a seqlock-style marker, readers skip slots
// caught mid-write. Events double as runtime/trace log messages when
// tracing is active, so `go tool trace` shows resize lifecycles
// against goroutine timelines.
//
// Registry collects counters, gauges, and histograms behind closures
// and renders them as Prometheus text exposition or an expvar-style
// JSON document; Mount wires both plus the event-ring dump and the
// standard pprof handlers onto an http.ServeMux.
package obs
