package obs

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// The flight recorder is the per-operation layer of the obs plane:
// where the histograms say how fast the system is on average, the
// recorder says what individual writes are actually doing — which
// path each one took (CAS fast path, hint replace, stripe fallback,
// migration assist, spill chain), on which shard and stripe, with
// what outcome and latency. Recording every operation would be
// absurd on a path measured in tens of nanoseconds, so the recorder
// samples 1-in-N per stripe and stores the samples in the same
// seqlock-slot rings the event log uses: writers never block, never
// allocate, and a reader that catches a slot mid-write skips it.
//
// The off switch is structural: a Table guards every record with a
// single pointer compare on its observer, and an Observer without a
// Recorder adds one more. Only when both are wired does an operation
// pay the sampling counter (one striped atomic add), and only the
// 1-in-N winners pay the clock reads and the slot write.

// OpClass says which table operation a flight record describes.
type OpClass uint8

const (
	OpSet      OpClass = iota // Set (upsert)
	OpSwap                    // Swap (upsert returning previous)
	OpInsert                  // Insert (add-if-absent)
	OpUpdate                  // Update (read-modify-write)
	OpDelete                  // CompareAndDelete / Delete
	OpValueCAS                // CompareAndSwapValue
	NumOpClasses
)

func (c OpClass) String() string {
	switch c {
	case OpSet:
		return "set"
	case OpSwap:
		return "swap"
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	case OpValueCAS:
		return "value_cas"
	}
	return "op?"
}

// OpPath says which write path served the operation.
type OpPath uint8

const (
	// PathStriped: the classic striped-lock path (the fallback on the
	// chain engine; the only write path on the flat engine when no
	// migration or spill was involved).
	PathStriped OpPath = iota
	// PathCASInsert: lock-free head-CAS insert (chain engine).
	PathCASInsert
	// PathHintReplace: lock-free hint walk revalidated under the
	// stripe, replacing in place (chain engine upserts).
	PathHintReplace
	// PathValueCAS: lock-free value-plane CAS (chain engine RMW).
	PathValueCAS
	// PathMigrationAssist: the write found its unit unmigrated during
	// a flat copy-resize and did the migration itself first.
	PathMigrationAssist
	// PathSpill: the write landed in (or walked) a flat group's
	// overflow spill chain rather than the eight inline cells.
	PathSpill
	NumOpPaths
)

func (p OpPath) String() string {
	switch p {
	case PathStriped:
		return "striped"
	case PathCASInsert:
		return "cas_insert"
	case PathHintReplace:
		return "hint_replace"
	case PathValueCAS:
		return "value_cas"
	case PathMigrationAssist:
		return "migration_assist"
	case PathSpill:
		return "spill"
	}
	return "path?"
}

// OpOutcome says what the operation did to the table.
type OpOutcome uint8

const (
	OutInserted OpOutcome = iota
	OutReplaced
	OutDeleted
	OutMiss // target key absent (failed delete/update/CAS)
	OutNoop // nothing changed (failed insert: key already present)
	NumOpOutcomes
)

func (o OpOutcome) String() string {
	switch o {
	case OutInserted:
		return "inserted"
	case OutReplaced:
		return "replaced"
	case OutDeleted:
		return "deleted"
	case OutMiss:
		return "miss"
	case OutNoop:
		return "noop"
	}
	return "out?"
}

// OpRecord is one decoded flight-recorder sample.
type OpRecord struct {
	Seq       uint64 // per-stripe record order
	Class     OpClass
	Path      OpPath
	Outcome   OpOutcome
	Flat      bool // true when the flat engine served the op
	Shard     int32
	Stripe    int32
	LatencyNS int64
}

const (
	// recStripes spreads the sampling tickets and slot rings across
	// independent banks keyed by the op's key hash, so concurrent
	// writers rarely meet on a counter cache line.
	recStripes = 4
	// DefaultSampleEvery is the 1-in-N sampling rate used when
	// NewRecorder is given n <= 0. At ~10M writes/s it still yields
	// ~10k samples/s — plenty for path shares and tail percentiles.
	DefaultSampleEvery = 1024
	// DefaultRecorderSlots is the per-stripe slot count used when
	// NewRecorder is given cap <= 0.
	DefaultRecorderSlots = 1024
)

// opSlot is one seqlock-protected sample; same marker protocol as
// ringSlot (0 empty, 2*seq+1 writing, 2*seq+2 stable).
type opSlot struct {
	marker atomic.Uint64
	word   atomic.Uint64 // packed class/path/outcome/engine/shard/stripe
	lat    atomic.Int64
}

func packOp(class OpClass, path OpPath, out OpOutcome, flat bool, shard, stripe int) uint64 {
	w := uint64(class)<<56 | uint64(path)<<48 | uint64(out)<<40
	if flat {
		w |= 1 << 39
	}
	return w | uint64(uint16(shard))<<16 | uint64(uint16(stripe))
}

func unpackOp(w uint64, r *OpRecord) {
	r.Class = OpClass(w >> 56)
	r.Path = OpPath(w >> 48 & 0xff)
	r.Outcome = OpOutcome(w >> 40 & 0xff)
	r.Flat = w&(1<<39) != 0
	r.Shard = int32(int16(w >> 16 & 0xffff))
	r.Stripe = int32(int16(w & 0xffff))
}

// recRing is one stripe's sampling ticket plus slot ring. The pad
// keeps the hot ticket counter of the next stripe on its own line.
type recRing struct {
	ticket atomic.Uint64 // operations seen by this stripe
	head   atomic.Uint64 // samples recorded by this stripe
	_      [48]byte
	slots  []opSlot
}

// Recorder is the sampled per-operation flight recorder. All methods
// are nil-safe; a nil Recorder records nothing and costs one pointer
// compare at the call site.
type Recorder struct {
	sampleMask uint64 // sample when ticket & mask == 0 (power of two - 1)
	slotMask   uint64
	rings      [recStripes]recRing
}

// NewRecorder returns a recorder sampling 1 in sampleEvery operations
// (rounded up to a power of two; DefaultSampleEvery if <= 0) into
// perStripe slots per stripe (DefaultRecorderSlots if <= 0).
func NewRecorder(sampleEvery, perStripe int) *Recorder {
	n := 1
	if sampleEvery <= 0 {
		sampleEvery = DefaultSampleEvery
	}
	for n < sampleEvery {
		n <<= 1
	}
	if perStripe <= 0 {
		perStripe = DefaultRecorderSlots
	}
	capacity := 1
	for capacity < perStripe {
		capacity <<= 1
	}
	r := &Recorder{sampleMask: uint64(n - 1), slotMask: uint64(capacity - 1)}
	for i := range r.rings {
		r.rings[i].slots = make([]opSlot, capacity)
	}
	return r
}

// SampleEvery reports the effective 1-in-N sampling rate.
func (r *Recorder) SampleEvery() uint64 {
	if r == nil {
		return 0
	}
	return r.sampleMask + 1
}

// Sample draws this operation's sampling ticket: true means the
// caller should time the op and Record it. h is the op's key hash,
// used only to pick a counter stripe. One atomic add.
func (r *Recorder) Sample(h uint64) bool {
	if r == nil {
		return false
	}
	return r.rings[h&(recStripes-1)].ticket.Add(1)&r.sampleMask == 0
}

// Record stores one sampled operation. Never blocks, never
// allocates. h must be the same hash passed to Sample.
func (r *Recorder) Record(h uint64, class OpClass, path OpPath, out OpOutcome, flat bool, shard, stripe int, latNS int64) {
	if r == nil {
		return
	}
	ring := &r.rings[h&(recStripes-1)]
	seq := ring.head.Add(1) - 1
	s := &ring.slots[seq&r.slotMask]
	s.marker.Store(2*seq + 1)
	s.word.Store(packOp(class, path, out, flat, shard, stripe))
	s.lat.Store(latNS)
	s.marker.Store(2*seq + 2)
}

// Sampled returns the number of operations recorded so far across all
// stripes (monotone; may exceed retained capacity).
func (r *Recorder) Sampled() uint64 {
	if r == nil {
		return 0
	}
	var n uint64
	for i := range r.rings {
		n += r.rings[i].head.Load()
	}
	return n
}

// Overwritten returns how many samples have been rotated out of the
// rings — nonzero means the rings are too small for the scrape
// interval.
func (r *Recorder) Overwritten() uint64 {
	if r == nil {
		return 0
	}
	var n uint64
	for i := range r.rings {
		if h := r.rings[i].head.Load(); h > r.slotMask+1 {
			n += h - (r.slotMask + 1)
		}
	}
	return n
}

// Snapshot decodes every stable slot across all stripes. Slots caught
// mid-write are skipped. Order is per-stripe oldest-first.
func (r *Recorder) Snapshot() []OpRecord {
	if r == nil {
		return nil
	}
	out := make([]OpRecord, 0, recStripes*int(r.slotMask+1))
	for i := range r.rings {
		ring := &r.rings[i]
		for j := range ring.slots {
			s := &ring.slots[j]
			m1 := s.marker.Load()
			if m1 == 0 || m1%2 == 1 {
				continue
			}
			var rec OpRecord
			rec.Seq = m1/2 - 1
			unpackOp(s.word.Load(), &rec)
			rec.LatencyNS = s.lat.Load()
			if s.marker.Load() != m1 {
				continue
			}
			out = append(out, rec)
		}
	}
	return out
}

// OpPathStats aggregates the retained samples for one (class, path)
// pair. Percentiles are exact over the retained samples, not bucket
// estimates.
type OpPathStats struct {
	Class    OpClass
	Path     OpPath
	Count    int
	P50NS    int64
	P99NS    int64
	MaxNS    int64
	Outcomes [NumOpOutcomes]int
}

// AggregateOps folds a snapshot into per-(class, path) rows sorted by
// descending count.
func AggregateOps(recs []OpRecord) []OpPathStats {
	type key struct {
		c OpClass
		p OpPath
	}
	lats := make(map[key][]int64)
	outs := make(map[key]*[NumOpOutcomes]int)
	for _, r := range recs {
		k := key{r.Class, r.Path}
		lats[k] = append(lats[k], r.LatencyNS)
		o := outs[k]
		if o == nil {
			o = new([NumOpOutcomes]int)
			outs[k] = o
		}
		if r.Outcome < NumOpOutcomes {
			o[r.Outcome]++
		}
	}
	rows := make([]OpPathStats, 0, len(lats))
	for k, l := range lats {
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
		row := OpPathStats{Class: k.c, Path: k.p, Count: len(l),
			P50NS: l[len(l)/2], P99NS: l[len(l)*99/100], MaxNS: l[len(l)-1],
			Outcomes: *outs[k]}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		if rows[i].Class != rows[j].Class {
			return rows[i].Class < rows[j].Class
		}
		return rows[i].Path < rows[j].Path
	})
	return rows
}

// WriteSummary renders the /debug/ops document: per-(class, path)
// sample counts, shares, exact p50/p99 over the retained samples, and
// per-class fallback ratios (striped-path share of the class).
func (r *Recorder) WriteSummary(w io.Writer) {
	if r == nil {
		fmt.Fprintln(w, "(flight recorder off)")
		return
	}
	recs := r.Snapshot()
	fmt.Fprintf(w, "flight recorder: 1-in-%d sampling, %d sampled, %d retained, %d overwritten\n",
		r.SampleEvery(), r.Sampled(), len(recs), r.Overwritten())
	if len(recs) == 0 {
		return
	}
	rows := AggregateOps(recs)
	total := len(recs)
	fmt.Fprintf(w, "\n%-9s %-16s %7s %6s %10s %10s %10s\n",
		"class", "path", "count", "share", "p50", "p99", "max")
	for _, row := range rows {
		fmt.Fprintf(w, "%-9s %-16s %7d %5.1f%% %8dns %8dns %8dns",
			row.Class, row.Path, row.Count,
			100*float64(row.Count)/float64(total), row.P50NS, row.P99NS, row.MaxNS)
		sep := "  "
		for o := OpOutcome(0); o < NumOpOutcomes; o++ {
			if n := row.Outcomes[o]; n > 0 {
				fmt.Fprintf(w, "%s%s=%d", sep, o, n)
				sep = " "
			}
		}
		fmt.Fprintln(w)
	}

	// Fallback ratio per class: how often the lock-free fast paths
	// gave up and the op went through its stripe.
	var classTotal, classStriped [NumOpClasses]int
	for _, row := range rows {
		classTotal[row.Class] += row.Count
		if row.Path == PathStriped {
			classStriped[row.Class] += row.Count
		}
	}
	fmt.Fprintln(w)
	for c := OpClass(0); c < NumOpClasses; c++ {
		if classTotal[c] == 0 {
			continue
		}
		fmt.Fprintf(w, "%s fallback ratio: %.3f (%d/%d striped)\n",
			c, float64(classStriped[c])/float64(classTotal[c]), classStriped[c], classTotal[c])
	}
}

// Register adds the recorder's meters to a Registry.
func (r *Recorder) Register(reg *Registry) {
	if r == nil || reg == nil {
		return
	}
	reg.Counter("rphash_flight_sampled_total",
		"Operations sampled by the flight recorder.", r.Sampled)
	reg.Counter("rphash_flight_overwritten_total",
		"Flight-recorder samples rotated out of the rings before a scrape.",
		r.Overwritten)
	reg.Gauge("rphash_flight_sample_every",
		"Flight recorder 1-in-N sampling rate.",
		func() float64 { return float64(r.SampleEvery()) })
}
