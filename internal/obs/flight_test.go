package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestRecorderSamplingRate(t *testing.T) {
	r := NewRecorder(4, 64)
	if got := r.SampleEvery(); got != 4 {
		t.Fatalf("SampleEvery = %d, want 4", got)
	}
	hits := 0
	for i := 0; i < 64; i++ {
		if r.Sample(7) { // one stripe, deterministic ticket sequence
			hits++
		}
	}
	if hits != 16 {
		t.Fatalf("64 tickets at 1-in-4 sampled %d, want 16", hits)
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder(1, 16)
	r.Record(0, OpSet, PathCASInsert, OutInserted, false, 3, 12, 450)
	r.Record(1, OpDelete, PathSpill, OutDeleted, true, 7, 5, 900)
	recs := r.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("snapshot returned %d records, want 2", len(recs))
	}
	byClass := map[OpClass]OpRecord{}
	for _, rec := range recs {
		byClass[rec.Class] = rec
	}
	set := byClass[OpSet]
	if set.Path != PathCASInsert || set.Outcome != OutInserted || set.Flat ||
		set.Shard != 3 || set.Stripe != 12 || set.LatencyNS != 450 {
		t.Fatalf("set record corrupted: %+v", set)
	}
	del := byClass[OpDelete]
	if del.Path != PathSpill || del.Outcome != OutDeleted || !del.Flat ||
		del.Shard != 7 || del.Stripe != 5 || del.LatencyNS != 900 {
		t.Fatalf("delete record corrupted: %+v", del)
	}
}

func TestRecorderOverwritten(t *testing.T) {
	r := NewRecorder(1, 1) // one slot per stripe
	for i := 0; i < 5; i++ {
		r.Record(2, OpSet, PathStriped, OutReplaced, false, 0, 0, int64(i))
	}
	if got := r.Sampled(); got != 5 {
		t.Fatalf("Sampled = %d, want 5", got)
	}
	if got := r.Overwritten(); got != 4 {
		t.Fatalf("Overwritten = %d, want 4", got)
	}
	recs := r.Snapshot()
	if len(recs) != 1 || recs[0].LatencyNS != 4 {
		t.Fatalf("retained %v, want only the last record", recs)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	if r.Sample(1) {
		t.Fatal("nil recorder sampled")
	}
	r.Record(0, OpSet, PathStriped, OutInserted, false, 0, 0, 1)
	if r.Snapshot() != nil || r.Sampled() != 0 || r.Overwritten() != 0 || r.SampleEvery() != 0 {
		t.Fatal("nil recorder not inert")
	}
	var sb strings.Builder
	r.WriteSummary(&sb)
	if !strings.Contains(sb.String(), "off") {
		t.Fatalf("nil WriteSummary = %q", sb.String())
	}
	r.Register(NewRegistry())
}

func TestWriteSummaryAggregation(t *testing.T) {
	r := NewRecorder(1, 256)
	for i := 0; i < 30; i++ {
		r.Record(uint64(i), OpSet, PathCASInsert, OutInserted, false, 0, 1, 100)
	}
	for i := 0; i < 10; i++ {
		r.Record(uint64(i), OpSet, PathStriped, OutReplaced, false, 0, 2, 500)
	}
	var sb strings.Builder
	r.WriteSummary(&sb)
	out := sb.String()
	for _, want := range []string{"cas_insert", "striped", "set fallback ratio: 0.250", "inserted=30", "replaced=10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}

	rows := AggregateOps(r.Snapshot())
	if len(rows) != 2 || rows[0].Path != PathCASInsert || rows[0].Count != 30 {
		t.Fatalf("aggregate rows: %+v", rows)
	}
	if rows[0].P50NS != 100 || rows[1].P50NS != 500 {
		t.Fatalf("percentiles: %+v", rows)
	}
}

func TestRecorderRegister(t *testing.T) {
	r := NewRecorder(2, 8)
	r.Record(0, OpSet, PathStriped, OutInserted, false, 0, 0, 10)
	reg := NewRegistry()
	r.Register(reg)
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{"rphash_flight_sampled_total 1", "rphash_flight_overwritten_total 0", "rphash_flight_sample_every 2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("registry missing %q:\n%s", want, out)
		}
	}
}

// TestRecorderConcurrent is the -race guard for the sampling tickets
// and seqlock slots: records from many goroutines racing snapshots
// must neither trip the race detector nor decode to torn values.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(2, 64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := uint64(g)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if r.Sample(h) {
					r.Record(h, OpSet, OpPath(i%int(NumOpPaths)), OutInserted, g%2 == 0, g, i%16, int64(i))
				}
				h += 0x9e3779b97f4a7c15
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		for _, rec := range r.Snapshot() {
			if rec.Class != OpSet || rec.Path >= NumOpPaths || rec.Outcome != OutInserted {
				t.Errorf("torn record decoded: %+v", rec)
			}
		}
	}
	close(stop)
	wg.Wait()
}
