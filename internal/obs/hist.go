package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// histStripes spreads recorders across independent counter banks
	// so concurrent Record calls from different goroutines do not
	// serialize on one cache line. Callers pass a cheap stripe hint
	// (shard index, connection id); 4 banks is enough to take striped
	// recording off the contention radar while keeping Snapshot's
	// fold trivial.
	histStripes = 4
	// histBuckets covers the full int64 nanosecond range in
	// power-of-two buckets: bucket 0 is <=0ns (clock granularity
	// floor), bucket i holds [2^(i-1), 2^i) ns, and the last bucket
	// absorbs everything from ~73 days up.
	histBuckets = 64
)

// histStripe is one independent bank of bucket counters. The trailing
// pad keeps the next stripe's first (hottest) counters off this
// stripe's last cache line.
type histStripe struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
	_      [48]byte
}

// Histogram is a lock-free latency histogram with power-of-two
// nanosecond buckets. The zero value is ready to use; embed it by
// value. Record never allocates and never blocks (its only loop is a
// CAS race on the running max), so it is safe inside RCU reader
// sections and under stripe locks.
type Histogram struct {
	stripes [histStripes]histStripe
}

// histBucketIdx maps a nanosecond duration to its bucket.
func histBucketIdx(ns int64) int {
	if ns <= 0 {
		return 0
	}
	i := bits.Len64(uint64(ns)) // 1..63 for positive int64
	if i > histBuckets-1 {
		i = histBuckets - 1
	}
	return i
}

// BucketUpperNS returns bucket i's inclusive upper bound in
// nanoseconds (the value Quantile reports when the quantile lands in
// bucket i).
func BucketUpperNS(i int) uint64 {
	if i <= 0 {
		return 0 // bucket 0 holds only <=0ns observations
	}
	if i >= histBuckets-1 {
		return 1 << (histBuckets - 1)
	}
	return (uint64(1) << i) - 1
}

// Record adds one observation of ns nanoseconds. stripe is a cheap
// affinity hint (shard index, worker id, connection id) used only to
// pick a counter bank; any int is valid.
func (h *Histogram) Record(stripe int, ns int64) {
	if h == nil {
		return
	}
	s := &h.stripes[uint(stripe)%histStripes]
	s.counts[histBucketIdx(ns)].Add(1)
	if ns > 0 {
		s.sum.Add(uint64(ns))
		for {
			cur := s.max.Load()
			if uint64(ns) <= cur || s.max.CompareAndSwap(cur, uint64(ns)) {
				break
			}
		}
	}
}

// RecordSince records the elapsed time from t0 to now.
func (h *Histogram) RecordSince(stripe int, t0 time.Time) {
	h.Record(stripe, time.Since(t0).Nanoseconds())
}

// HistogramSnapshot is a folded, point-in-time copy of a Histogram.
// Snapshots from different histograms (per-worker, per-shard) merge
// into aggregate views.
type HistogramSnapshot struct {
	Count   uint64
	SumNS   uint64
	MaxNS   uint64
	Buckets [histBuckets]uint64
}

// Snapshot folds all stripes into one snapshot. Concurrent Record
// calls may or may not be included; each observation is counted at
// most once per snapshot because the per-bucket loads are atomic.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var out HistogramSnapshot
	if h == nil {
		return out
	}
	for i := range h.stripes {
		s := &h.stripes[i]
		for b := range s.counts {
			n := s.counts[b].Load()
			out.Buckets[b] += n
			out.Count += n
		}
		out.SumNS += s.sum.Load()
		if m := s.max.Load(); m > out.MaxNS {
			out.MaxNS = m
		}
	}
	return out
}

// Merge folds o into s.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.SumNS += o.SumNS
	if o.MaxNS > s.MaxNS {
		s.MaxNS = o.MaxNS
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Quantile returns an upper bound (in nanoseconds) for the q-th
// quantile, q in [0,1]. The bound is the containing bucket's upper
// edge — for the top bucket, the true observed maximum — so the
// estimate is conservative by at most one power of two.
func (s *HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			if i == histBuckets-1 || BucketUpperNS(i) > s.MaxNS {
				return s.MaxNS
			}
			return BucketUpperNS(i)
		}
	}
	return s.MaxNS
}

// P50 returns the median upper bound in nanoseconds.
func (s *HistogramSnapshot) P50() uint64 { return s.Quantile(0.50) }

// P95 returns the 95th-percentile upper bound in nanoseconds.
func (s *HistogramSnapshot) P95() uint64 { return s.Quantile(0.95) }

// P99 returns the 99th-percentile upper bound in nanoseconds.
func (s *HistogramSnapshot) P99() uint64 { return s.Quantile(0.99) }

// MeanNS returns the arithmetic mean in nanoseconds.
func (s *HistogramSnapshot) MeanNS() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNS) / float64(s.Count)
}
