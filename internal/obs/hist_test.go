package obs

import (
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11},
		{1<<62 - 1, 62}, {1 << 62, 63}, {1<<63 - 1, 63},
	}
	for _, c := range cases {
		if got := histBucketIdx(c.ns); got != c.want {
			t.Errorf("histBucketIdx(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Upper bounds must bound their bucket's contents and be strictly
	// increasing so the Prometheus le sequence is valid.
	prev := BucketUpperNS(0)
	for i := 1; i < histBuckets; i++ {
		up := BucketUpperNS(i)
		if up <= prev {
			t.Fatalf("BucketUpperNS not increasing at %d: %d <= %d", i, up, prev)
		}
		prev = up
	}
}

func TestHistogramRecordSnapshot(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Record(int(i), i) // all stripes exercised
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("Count = %d, want 1000", s.Count)
	}
	if s.SumNS != 1000*1001/2 {
		t.Fatalf("SumNS = %d, want %d", s.SumNS, 1000*1001/2)
	}
	if s.MaxNS != 1000 {
		t.Fatalf("MaxNS = %d, want 1000", s.MaxNS)
	}
	// The true median is 500; the p50 upper bound must cover it
	// within one power of two.
	if p := s.P50(); p < 500 || p > 1023 {
		t.Fatalf("P50 = %d, want in [500,1023]", p)
	}
	if p := s.P99(); p < 990 || p > 1023 {
		t.Fatalf("P99 = %d, want in [990,1023]", p)
	}
	if m := s.MeanNS(); m < 500 || m > 501 {
		t.Fatalf("MeanNS = %v, want ~500.5", m)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	var empty HistogramSnapshot
	if empty.Quantile(0.99) != 0 || empty.MeanNS() != 0 {
		t.Fatal("empty snapshot should report zeros")
	}
	var h Histogram
	h.Record(0, 0)
	h.Record(0, -3)
	s := h.Snapshot()
	if s.Count != 2 || s.Quantile(1) != 0 {
		t.Fatalf("all-zero observations: count=%d q1=%d", s.Count, s.Quantile(1))
	}
	// Top bucket quantiles report the observed max, not 2^63.
	var big Histogram
	big.Record(0, 1<<62+12345)
	bs := big.Snapshot()
	if got := bs.P99(); got != 1<<62+12345 {
		t.Fatalf("top-bucket P99 = %d, want observed max", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Record(0, 10)
		b.Record(1, 1000)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 200 {
		t.Fatalf("merged Count = %d, want 200", sa.Count)
	}
	if sa.MaxNS != 1000 {
		t.Fatalf("merged MaxNS = %d, want 1000", sa.MaxNS)
	}
	if sa.SumNS != 100*10+100*1000 {
		t.Fatalf("merged SumNS = %d", sa.SumNS)
	}
	if p := sa.P99(); p < 1000 || p > 1023 {
		t.Fatalf("merged P99 = %d, want ~1000", p)
	}
}

// TestHistogramConcurrent hammers Record from many goroutines while
// snapshots run; run with -race. Total count must come out exact.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Snapshot()
			}
		}
	}()
	var rec sync.WaitGroup
	for w := 0; w < workers; w++ {
		rec.Add(1)
		go func(w int) {
			defer rec.Done()
			for i := 0; i < perWorker; i++ {
				h.Record(w, int64(i%4096)+1)
			}
		}(w)
	}
	rec.Wait()
	close(stop)
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("Count = %d, want %d", s.Count, workers*perWorker)
	}
	if s.MaxNS != 4096 {
		t.Fatalf("MaxNS = %d, want 4096", s.MaxNS)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Record(0, 5) // must not panic
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot should be empty")
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Record(i, int64(i&1023)+1)
			i++
		}
	})
}
