package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// MetricsHandler serves the registry in Prometheus text format.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// PublishExpvar publishes the registry under name in the process-wide
// expvar namespace, so the standard /debug/vars document (which also
// carries cmdline and memstats) includes it. Call at most once per
// name per process — expvar.Publish panics on duplicates by design.
func (r *Registry) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any {
		snap := make(map[string]any)
		for _, m := range r.snapshot() {
			switch m.kind {
			case kindCounter, kindGauge:
				snap[m.name] = m.fn()
			case kindHistogram:
				s := m.hist.Snapshot()
				snap[m.name] = map[string]any{
					"count": s.Count, "sum_ns": s.SumNS, "max_ns": s.MaxNS,
					"mean_ns": s.MeanNS(), "p50_ns": s.P50(), "p95_ns": s.P95(), "p99_ns": s.P99(),
				}
			}
		}
		return snap
	}))
}

// Mount wires the full debug surface onto mux:
//
//	/metrics       Prometheus text exposition of reg
//	/debug/vars    expvar-style JSON of reg (standalone document)
//	/debug/events  human-readable lifecycle timeline from o.Events
//	/debug/ops     flight-recorder aggregation (paths, p50/p99, ratios)
//	/debug/pprof/  the standard pprof index and profiles
//
// Any of reg, o may be nil; their endpoints are skipped. /debug/ops
// is mounted whenever o is wired and reports "off" when no flight
// recorder is attached.
func Mount(mux *http.ServeMux, reg *Registry, o *Observer) {
	if reg != nil {
		mux.Handle("/metrics", reg.MetricsHandler())
		mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			reg.WriteJSON(w)
		})
	}
	if o != nil && o.Events != nil {
		mux.HandleFunc("/debug/events", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			o.Events.Dump(w)
		})
	}
	if o != nil {
		mux.HandleFunc("/debug/ops", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			o.Ops.WriteSummary(w)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
