package obs

// CmdClass buckets memcached commands into latency classes so the
// per-command service-time histograms stay a small fixed array.
type CmdClass uint8

const (
	CmdGet    CmdClass = iota // get, gets (and multi-key forms)
	CmdStore                  // set, add, replace, append, prepend, cas
	CmdDelete                 // delete
	CmdArith                  // incr, decr
	CmdTouch                  // touch
	CmdOther                  // stats, version, flush_all, ...
	NumCmdClasses
)

func (c CmdClass) String() string {
	switch c {
	case CmdGet:
		return "get"
	case CmdStore:
		return "store"
	case CmdDelete:
		return "delete"
	case CmdArith:
		return "arith"
	case CmdTouch:
		return "touch"
	}
	return "other"
}

// Observer is the per-process observability hub: every layer that is
// instrumented records into one of these. A nil *Observer disables
// all instrumentation — call sites guard with a single pointer check
// — and the histograms themselves are nil-safe for partial wiring.
//
// The histograms are embedded by value so an Observer is one
// allocation and records touch no further pointers.
type Observer struct {
	// GraceWait measures rcu.Domain.Synchronize wall time: how long
	// writers and resizes wait for pre-existing readers to drain.
	GraceWait Histogram
	// StripeWait measures writer stripe-lock acquisition wait, and
	// only on the contended path — uncontended TryLock successes
	// record nothing and cost nothing.
	StripeWait Histogram
	// CacheLoad measures cache.GetOrLoad loader execution time
	// (leader flights only; followers ride the leader's result).
	CacheLoad Histogram
	// Cmd measures memcached per-command service latency (parse to
	// response-buffer write) by command class.
	Cmd [NumCmdClasses]Histogram
	// Events is the resize/retune lifecycle ring.
	Events *Ring
	// Ops is the sampled per-operation flight recorder; nil (the
	// default) disables it at the cost of one pointer compare per
	// write.
	Ops *Recorder
}

// ObserverOption customizes NewObserver.
type ObserverOption func(*Observer)

// WithFlightRecorder attaches a flight recorder sampling 1 in
// sampleEvery write operations into perStripe retained slots per ring
// stripe (<= 0 picks the defaults for either).
func WithFlightRecorder(sampleEvery, perStripe int) ObserverOption {
	return func(o *Observer) { o.Ops = NewRecorder(sampleEvery, perStripe) }
}

// NewObserver returns an Observer with a default-capacity event ring.
func NewObserver(opts ...ObserverOption) *Observer {
	o := &Observer{Events: NewRing(0)}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// ObserverSnapshot is a point-in-time copy of every Observer metric.
type ObserverSnapshot struct {
	GraceWait  HistogramSnapshot
	StripeWait HistogramSnapshot
	CacheLoad  HistogramSnapshot
	Cmd        [NumCmdClasses]HistogramSnapshot
	Events     []Event
	Ops        []OpRecord
}

// Snapshot captures all histograms and the event ring.
func (o *Observer) Snapshot() ObserverSnapshot {
	var s ObserverSnapshot
	if o == nil {
		return s
	}
	s.GraceWait = o.GraceWait.Snapshot()
	s.StripeWait = o.StripeWait.Snapshot()
	s.CacheLoad = o.CacheLoad.Snapshot()
	for i := range o.Cmd {
		s.Cmd[i] = o.Cmd[i].Snapshot()
	}
	s.Events = o.Events.Snapshot()
	s.Ops = o.Ops.Snapshot()
	return s
}

// Register adds the observer's histograms to a Registry under the
// rphash_* namespace.
func (o *Observer) Register(r *Registry) {
	if o == nil || r == nil {
		return
	}
	r.Histogram("rphash_grace_wait_seconds",
		"RCU grace-period wait latency (Synchronize wall time).", &o.GraceWait)
	r.Histogram("rphash_stripe_wait_seconds",
		"Writer stripe-lock acquisition wait (contended acquisitions only).", &o.StripeWait)
	r.Histogram("rphash_cache_load_seconds",
		"Cache GetOrLoad loader execution latency (leader flights).", &o.CacheLoad)
	for i := CmdClass(0); i < NumCmdClasses; i++ {
		h := &o.Cmd[i]
		r.Histogram("rphash_cmd_"+i.String()+"_seconds",
			"memcached per-command service latency, class "+i.String()+".", h)
	}
	r.Gauge("rphash_events_total",
		"Lifecycle events recorded (monotone; ring retains the last "+
			"capacity of them).", func() float64 { return float64(o.Events.Len()) })
	r.Counter("rphash_events_overwritten_total",
		"Lifecycle events rotated out of the ring before being read; "+
			"nonzero means the ring is too small for the scrape interval.",
		o.Events.Overwritten)
	o.Ops.Register(r)
}
