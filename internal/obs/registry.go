package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// metricKind discriminates registry entries.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metric struct {
	name string
	help string
	kind metricKind
	fn   func() float64 // counter/gauge
	hist *Histogram     // histogram
}

// Registry collects named metrics behind closures and renders them in
// Prometheus text exposition format or as an expvar-style JSON
// document. Registration order is preserved in the output. Metric
// reads happen at render time, so registering a closure over a live
// Stats() call is the intended usage. The zero value is ready to use.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) add(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names == nil {
		r.names = make(map[string]bool)
	}
	if r.names[m.name] {
		// Last registration wins; duplicate names would emit an
		// invalid exposition document.
		for i := range r.metrics {
			if r.metrics[i].name == m.name {
				r.metrics[i] = m
				return
			}
		}
	}
	r.names[m.name] = true
	r.metrics = append(r.metrics, m)
}

// Counter registers a monotone counter read through fn.
func (r *Registry) Counter(name, help string, fn func() uint64) {
	r.add(metric{name: name, help: help, kind: kindCounter, fn: func() float64 { return float64(fn()) }})
}

// Gauge registers an instantaneous value read through fn.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.add(metric{name: name, help: help, kind: kindGauge, fn: fn})
}

// Histogram registers a live histogram; it is snapshotted at render
// time. name should end in _seconds: bucket bounds are exported in
// seconds per Prometheus convention (recorded nanoseconds / 1e9).
func (r *Registry) Histogram(name, help string, h *Histogram) {
	r.add(metric{name: name, help: help, kind: kindHistogram, hist: h})
}

func (r *Registry) snapshot() []metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]metric, len(r.metrics))
	copy(out, r.metrics)
	return out
}

// WritePrometheus renders every metric in text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) {
	for _, m := range r.snapshot() {
		if m.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help)
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", m.name, m.name, formatFloat(m.fn()))
		case kindGauge:
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", m.name, m.name, formatFloat(m.fn()))
		case kindHistogram:
			fmt.Fprintf(w, "# TYPE %s histogram\n", m.name)
			writePromHistogram(w, m.name, m.hist.Snapshot())
		}
	}
}

// writePromHistogram emits cumulative le buckets in seconds. Empty
// leading/trailing buckets are elided (cumulative counts make the
// omitted bounds recoverable), keeping the document compact while the
// le sequence stays monotone.
func writePromHistogram(w io.Writer, name string, s HistogramSnapshot) {
	lo, hi := 0, -1
	for i, n := range s.Buckets {
		if n != 0 {
			if hi < 0 {
				lo = i
			}
			hi = i
		}
	}
	var cum uint64
	if hi >= 0 {
		if lo > 0 {
			lo-- // one empty bucket below the first hit anchors the lower edge
		}
		for i := lo; i <= hi; i++ {
			cum += s.Buckets[i]
			le := float64(BucketUpperNS(i)) / 1e9
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(le), cum)
		}
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(float64(s.SumNS)/1e9))
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON renders every metric as one JSON object, expvar-style:
// counters and gauges as numbers, histograms as objects with count,
// sum_ns, max_ns, mean_ns, and quantile upper bounds. Keys are the
// registered metric names, emitted in sorted order. The document is
// built by hand (names and values are all machine-generated, so no
// escaping is needed beyond what %q provides).
func (r *Registry) WriteJSON(w io.Writer) {
	ms := r.snapshot()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	io.WriteString(w, "{")
	for i, m := range ms {
		if i > 0 {
			io.WriteString(w, ",")
		}
		fmt.Fprintf(w, "\n  %q: ", m.name)
		switch m.kind {
		case kindCounter, kindGauge:
			io.WriteString(w, formatFloat(m.fn()))
		case kindHistogram:
			s := m.hist.Snapshot()
			fmt.Fprintf(w,
				`{"count": %d, "sum_ns": %d, "max_ns": %d, "mean_ns": %s, "p50_ns": %d, "p95_ns": %d, "p99_ns": %d}`,
				s.Count, s.SumNS, s.MaxNS, formatFloat(s.MeanNS()), s.P50(), s.P95(), s.P99())
		}
	}
	io.WriteString(w, "\n}\n")
}
