package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func testRegistry() (*Registry, *Observer) {
	o := NewObserver()
	o.GraceWait.Record(0, 1500)
	o.GraceWait.Record(0, 3000)
	o.Cmd[CmdGet].Record(0, 800)
	o.Events.Record(EvExpandStart, 0, 64, 128, 0)
	r := NewRegistry()
	o.Register(r)
	r.Counter("rphash_test_ops_total", "test counter", func() uint64 { return 42 })
	r.Gauge("rphash_test_items", "test gauge", func() float64 { return 7 })
	return r, o
}

func TestWritePrometheus(t *testing.T) {
	r, _ := testRegistry()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()

	for _, want := range []string{
		"# TYPE rphash_grace_wait_seconds histogram",
		"rphash_grace_wait_seconds_count 2",
		`rphash_grace_wait_seconds_bucket{le="+Inf"} 2`,
		"rphash_cmd_get_seconds_count 1",
		"# TYPE rphash_test_ops_total counter",
		"rphash_test_ops_total 42",
		"rphash_test_items 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// _sum is in seconds: 4500ns = 4.5e-06.
	if !strings.Contains(out, "rphash_grace_wait_seconds_sum 4.5e-06") {
		t.Errorf("sum not in seconds:\n%s", out)
	}
	// le bounds must be strictly increasing per histogram and each
	// cumulative count non-decreasing.
	var lastLE float64 = -1
	var lastCum uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "rphash_grace_wait_seconds_bucket") {
			continue
		}
		q1 := strings.Index(line, `le="`) + 4
		q2 := strings.Index(line[q1:], `"`) + q1
		leStr := line[q1:q2]
		cum, err := strconv.ParseUint(strings.TrimSpace(line[q2+2:]), 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		le := 1e18
		if leStr != "+Inf" {
			le, err = strconv.ParseFloat(leStr, 64)
			if err != nil {
				t.Fatalf("bad le %q: %v", leStr, err)
			}
		}
		if le <= lastLE {
			t.Fatalf("le not increasing: %v after %v", le, lastLE)
		}
		if cum < lastCum {
			t.Fatalf("cumulative count decreased: %d after %d", cum, lastCum)
		}
		lastLE, lastCum = le, cum
	}
}

func TestWriteJSON(t *testing.T) {
	r, _ := testRegistry()
	var sb strings.Builder
	r.WriteJSON(&sb)
	var doc map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	gw, ok := doc["rphash_grace_wait_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("histogram missing: %v", doc)
	}
	if gw["count"].(float64) != 2 {
		t.Fatalf("count = %v, want 2", gw["count"])
	}
	if gw["p99_ns"].(float64) <= 0 {
		t.Fatalf("p99_ns = %v, want > 0", gw["p99_ns"])
	}
	if doc["rphash_test_ops_total"].(float64) != 42 {
		t.Fatalf("counter = %v", doc["rphash_test_ops_total"])
	}
}

func TestMountEndpoints(t *testing.T) {
	r, o := testRegistry()
	srvMux := http.NewServeMux()
	Mount(srvMux, r, o)

	get := func(path string) string {
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		srvMux.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("GET %s -> %d", path, rec.Code)
		}
		return rec.Body.String()
	}
	if body := get("/metrics"); !strings.Contains(body, "rphash_grace_wait_seconds_count") {
		t.Fatalf("/metrics missing histogram:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "rphash_grace_wait_seconds") {
		t.Fatalf("/debug/vars missing histogram:\n%s", body)
	}
	if body := get("/debug/events"); !strings.Contains(body, "expand_start") {
		t.Fatalf("/debug/events missing event:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ not an index:\n%s", body)
	}
}

func TestRegistryDuplicateName(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "first", func() uint64 { return 1 })
	r.Counter("x_total", "second", func() uint64 { return 2 })
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if strings.Count(sb.String(), "x_total 2") != 1 || strings.Contains(sb.String(), "x_total 1") {
		t.Fatalf("duplicate registration should replace:\n%s", sb.String())
	}
}
