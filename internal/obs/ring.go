package obs

import (
	"context"
	"fmt"
	"io"
	"runtime/trace"
	"sort"
	"sync/atomic"
	"time"
)

// EventType classifies ring events. The A/B/C payload meaning is
// per-type; see Event.String for the rendering.
type EventType uint8

const (
	EvNone EventType = iota
	// EvExpandStart: an expansion began. A=old buckets, B=new buckets.
	EvExpandStart
	// EvExpandPublish: the doubled array and unzip window were
	// published under all stripes; lock-free readers can now land in
	// either half. A=active parent chains to unzip.
	EvExpandPublish
	// EvUnzipPass: one unzip pass over the remaining parents
	// finished. A=pass number (1-based), B=cuts made, C=workers used.
	EvUnzipPass
	// EvGraceWait: the resize waited out one grace period. A=wait ns.
	EvGraceWait
	// EvExpandDone: the expansion completed. A=passes, B=total ns.
	EvExpandDone
	// EvShrinkStart: a shrink began. A=old buckets, B=new buckets.
	EvShrinkStart
	// EvShrinkDone: the shrink completed (zip + one grace period).
	// A=total ns.
	EvShrinkDone
	// EvStripeRetune: the stripe-lock array was swapped. A=old
	// stripes, B=new stripes.
	EvStripeRetune
	// EvUnzipWorkers: the unzip worker fan-out was changed. A=old
	// workers, B=new workers.
	EvUnzipWorkers
	// EvAutoGrow: the load policy triggered a background expansion.
	// A=len, B=buckets at trigger time.
	EvAutoGrow
	// EvAutoShrink: the load policy triggered a background shrink.
	// A=len, B=buckets at trigger time.
	EvAutoShrink
	// EvCASUndo: a lock-free fast-path insert was published, lost to a
	// concurrent resize capture, and rolled back (the write then redid
	// itself under its stripe). Rare by construction — it needs a
	// head CAS inside an all-stripes capture window.
	EvCASUndo
	// EvWatchdog: the anomaly watchdog tripped. A=anomaly class
	// (AnomalyClass), B and C are per-class detail (see Watchdog).
	EvWatchdog
)

func (t EventType) String() string {
	switch t {
	case EvExpandStart:
		return "expand_start"
	case EvExpandPublish:
		return "expand_publish"
	case EvUnzipPass:
		return "unzip_pass"
	case EvGraceWait:
		return "grace_wait"
	case EvExpandDone:
		return "expand_done"
	case EvShrinkStart:
		return "shrink_start"
	case EvShrinkDone:
		return "shrink_done"
	case EvStripeRetune:
		return "stripe_retune"
	case EvUnzipWorkers:
		return "unzip_workers"
	case EvAutoGrow:
		return "auto_grow"
	case EvAutoShrink:
		return "auto_shrink"
	case EvCASUndo:
		return "cas_undo"
	case EvWatchdog:
		return "watchdog"
	}
	return "none"
}

// Event is one decoded ring entry.
type Event struct {
	Seq   uint64 // global record order (monotone per ring)
	Nanos int64  // wall clock, unix nanoseconds
	Type  EventType
	Shard int32 // shard index, or 0 for unsharded tables
	A     int64
	B     int64
	C     int64
}

// String renders the event payload for timelines and trace logs.
func (e Event) String() string {
	switch e.Type {
	case EvExpandStart:
		return fmt.Sprintf("shard %d: expand start %d -> %d buckets", e.Shard, e.A, e.B)
	case EvExpandPublish:
		return fmt.Sprintf("shard %d: expand publish (doubled array live, %d parents to unzip)", e.Shard, e.A)
	case EvUnzipPass:
		return fmt.Sprintf("shard %d: unzip pass %d: %d cuts, %d workers", e.Shard, e.A, e.B, e.C)
	case EvGraceWait:
		return fmt.Sprintf("shard %d: grace wait %v", e.Shard, time.Duration(e.A))
	case EvExpandDone:
		return fmt.Sprintf("shard %d: expand done after %d passes in %v", e.Shard, e.A, time.Duration(e.B))
	case EvShrinkStart:
		return fmt.Sprintf("shard %d: shrink start %d -> %d buckets", e.Shard, e.A, e.B)
	case EvShrinkDone:
		return fmt.Sprintf("shard %d: shrink done in %v", e.Shard, time.Duration(e.A))
	case EvStripeRetune:
		return fmt.Sprintf("shard %d: stripe retune %d -> %d", e.Shard, e.A, e.B)
	case EvUnzipWorkers:
		return fmt.Sprintf("shard %d: unzip workers %d -> %d", e.Shard, e.A, e.B)
	case EvAutoGrow:
		return fmt.Sprintf("shard %d: auto-grow trigger (len=%d buckets=%d)", e.Shard, e.A, e.B)
	case EvAutoShrink:
		return fmt.Sprintf("shard %d: auto-shrink trigger (len=%d buckets=%d)", e.Shard, e.A, e.B)
	case EvCASUndo:
		return fmt.Sprintf("shard %d: cas fast-path insert undone (lost to resize capture)", e.Shard)
	case EvWatchdog:
		return fmt.Sprintf("watchdog: %s anomaly (detail %d, %d)", AnomalyClass(e.A), e.B, e.C)
	}
	return fmt.Sprintf("shard %d: event %d a=%d b=%d c=%d", e.Shard, e.Type, e.A, e.B, e.C)
}

// ringSlot holds one event with every field individually atomic, so
// concurrent Record/Snapshot never race at the memory level. The
// marker is a per-slot seqlock: 0 empty, 2*seq+1 while the owner of
// ticket seq is writing, 2*seq+2 once stable. A reader that sees the
// same stable marker before and after decoding the fields has a
// consistent event; anything else is skipped.
type ringSlot struct {
	marker atomic.Uint64
	nanos  atomic.Int64
	tysh   atomic.Uint64 // EventType<<32 | uint32(shard)
	a      atomic.Int64
	b      atomic.Int64
	c      atomic.Int64
}

// Ring is a fixed-size concurrent event log. Writers claim a slot
// with one atomic increment and overwrite the oldest entry on wrap;
// Record never blocks and never allocates (unless runtime/trace is
// active, in which case each event is also logged to the trace).
//
// Two writers can only collide on a slot when one laps the other by a
// full ring — with the default 1024 slots and resize-lifecycle event
// rates, effectively never. If it does happen, the marker protocol
// makes the slot decode as torn and Snapshot drops it: the ring
// degrades by losing an event, not by fabricating one.
type Ring struct {
	head  atomic.Uint64
	mask  uint64
	slots []ringSlot
}

// DefaultRingSize is the event capacity used by NewRing(0).
const DefaultRingSize = 1024

// NewRing returns a ring with capacity rounded up to a power of two
// (DefaultRingSize if n <= 0).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = DefaultRingSize
	}
	capacity := 1
	for capacity < n {
		capacity <<= 1
	}
	return &Ring{mask: uint64(capacity - 1), slots: make([]ringSlot, capacity)}
}

// Record appends one event. Safe from any goroutine; never blocks.
func (r *Ring) Record(typ EventType, shard int, a, b, c int64) {
	if r == nil {
		return
	}
	seq := r.head.Add(1) - 1
	now := time.Now().UnixNano()
	s := &r.slots[seq&r.mask]
	s.marker.Store(2*seq + 1)
	s.nanos.Store(now)
	s.tysh.Store(uint64(typ)<<32 | uint64(uint32(int32(shard))))
	s.a.Store(a)
	s.b.Store(b)
	s.c.Store(c)
	s.marker.Store(2*seq + 2)
	if trace.IsEnabled() {
		ev := Event{Seq: seq, Nanos: now, Type: typ, Shard: int32(shard), A: a, B: b, C: c}
		trace.Log(context.Background(), "rphash", ev.String())
	}
}

// Len returns the number of events recorded so far (monotone; may
// exceed capacity once the ring wraps).
func (r *Ring) Len() uint64 {
	if r == nil {
		return 0
	}
	return r.head.Load()
}

// Capacity returns the number of slots the ring retains.
func (r *Ring) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Overwritten returns how many events have been rotated out of the
// ring — nonzero means history is being lost to a too-small ring.
func (r *Ring) Overwritten() uint64 {
	if r == nil {
		return 0
	}
	if h := r.head.Load(); h > r.mask+1 {
		return h - (r.mask + 1)
	}
	return 0
}

// Snapshot decodes the stable slots into events sorted by sequence
// (oldest first). Slots caught mid-write are skipped.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		m1 := s.marker.Load()
		if m1 == 0 || m1%2 == 1 {
			continue
		}
		ev := Event{
			Seq:   m1/2 - 1,
			Nanos: s.nanos.Load(),
			A:     s.a.Load(),
			B:     s.b.Load(),
			C:     s.c.Load(),
		}
		tysh := s.tysh.Load()
		ev.Type = EventType(tysh >> 32)
		ev.Shard = int32(uint32(tysh))
		if s.marker.Load() != m1 {
			continue
		}
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Dump writes the captured events as a human-readable timeline with
// timestamps relative to the first retained event.
func (r *Ring) Dump(w io.Writer) {
	evs := r.Snapshot()
	if len(evs) == 0 {
		fmt.Fprintln(w, "(no events)")
		return
	}
	t0 := evs[0].Nanos
	total := r.Len()
	if total > uint64(len(evs)) {
		fmt.Fprintf(w, "(%d events recorded, oldest %d overwritten)\n", total, total-uint64(len(evs)))
	}
	for _, e := range evs {
		fmt.Fprintf(w, "%12v  #%-6d %-14s %s\n",
			time.Duration(e.Nanos-t0).Round(time.Microsecond), e.Seq, e.Type, e)
	}
}
