package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestRingBasic(t *testing.T) {
	r := NewRing(16)
	r.Record(EvExpandStart, 2, 1024, 2048, 0)
	r.Record(EvGraceWait, 2, 12345, 0, 0)
	r.Record(EvExpandDone, 2, 3, 999999, 0)
	evs := r.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if e.Shard != 2 {
			t.Fatalf("event %d shard = %d, want 2", i, e.Shard)
		}
	}
	if evs[0].Type != EvExpandStart || evs[1].Type != EvGraceWait || evs[2].Type != EvExpandDone {
		t.Fatalf("wrong types: %v %v %v", evs[0].Type, evs[1].Type, evs[2].Type)
	}
	if evs[0].A != 1024 || evs[0].B != 2048 {
		t.Fatalf("payload mangled: %+v", evs[0])
	}
	if !strings.Contains(evs[1].String(), "grace wait") {
		t.Fatalf("String() = %q", evs[1].String())
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(8)
	for i := int64(0); i < 20; i++ {
		r.Record(EvUnzipPass, 0, i, 0, 0)
	}
	evs := r.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("got %d events, want capacity 8", len(evs))
	}
	// The ring must retain exactly the newest 8, in order.
	for i, e := range evs {
		want := int64(12 + i)
		if e.A != want || e.Seq != uint64(want) {
			t.Fatalf("slot %d: got seq=%d a=%d, want %d", i, e.Seq, e.A, want)
		}
	}
	if r.Len() != 20 {
		t.Fatalf("Len = %d, want 20", r.Len())
	}
}

// TestRingConcurrentWraparound races many writers wrapping the ring
// against snapshot readers; run with -race. Every decoded event must
// be internally consistent (payload matches its sequence number).
func TestRingConcurrentWraparound(t *testing.T) {
	r := NewRing(64)
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, e := range r.Snapshot() {
					// Writers encode their seq into every payload
					// slot; a mixed-up (torn) event would disagree.
					if e.A != int64(e.Seq) || e.B != int64(e.Seq)*2 {
						t.Errorf("torn event: %+v", e)
						return
					}
				}
			}
		}()
	}
	var rec sync.WaitGroup
	for w := 0; w < workers; w++ {
		rec.Add(1)
		go func() {
			defer rec.Done()
			for i := 0; i < perWorker; i++ {
				recordSeqLinked(r)
			}
		}()
	}
	rec.Wait()
	close(stop)
	wg.Wait()
	if r.Len() != workers*perWorker {
		t.Fatalf("Len = %d, want %d", r.Len(), workers*perWorker)
	}
}

// recordSeqLinked records an event whose payload is derived from its
// own ticket, so readers can verify slots decode consistently. It
// mirrors Ring.Record but must claim the ticket itself to know it.
func recordSeqLinked(r *Ring) {
	seq := r.head.Add(1) - 1
	s := &r.slots[seq&r.mask]
	s.marker.Store(2*seq + 1)
	s.nanos.Store(int64(seq))
	s.tysh.Store(uint64(EvUnzipPass) << 32)
	s.a.Store(int64(seq))
	s.b.Store(int64(seq) * 2)
	s.c.Store(0)
	s.marker.Store(2*seq + 2)
}

func TestRingDump(t *testing.T) {
	r := NewRing(8)
	for i := int64(0); i < 12; i++ {
		r.Record(EvGraceWait, 1, 1000*i, 0, 0)
	}
	var sb strings.Builder
	r.Dump(&sb)
	out := sb.String()
	if !strings.Contains(out, "grace_wait") {
		t.Fatalf("dump missing event name:\n%s", out)
	}
	if !strings.Contains(out, "oldest 4 overwritten") {
		t.Fatalf("dump missing overwrite note:\n%s", out)
	}
}

func TestRingNilSafe(t *testing.T) {
	var r *Ring
	r.Record(EvGraceWait, 0, 1, 2, 3)
	if r.Snapshot() != nil || r.Len() != 0 {
		t.Fatal("nil ring should be inert")
	}
}

func BenchmarkRingRecord(b *testing.B) {
	r := NewRing(1024)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Record(EvGraceWait, 0, 1234, 0, 0)
		}
	})
}
