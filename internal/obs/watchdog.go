package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"rphash/internal/clock"
)

// The watchdog is the obs plane's anomaly detector: a periodic
// self-check over cheap counters the system already maintains, built
// to answer "why did it get slow" after the fact. It watches for four
// pathological states — grace-period stalls, stripe convoys, stuck
// resizes, eviction storms — and on each detection emits a ring event
// and bumps a counter; the first detection per class also captures a
// diagnostic bundle (goroutine profile, event-ring dump, histogram
// snapshots, registry snapshot) to a directory, so the black-box data
// for a postmortem exists even if nobody was watching the live
// endpoints.
//
// All timing decisions go through an injected *clock.Clock, so a
// manual clock scripts the exact tick sequence in tests: Tick runs
// one check synchronously, and the optional Start goroutine does
// nothing but call Tick on an interval.

// AnomalyClass identifies a watchdog detection category.
type AnomalyClass uint8

const (
	// AnomalyGraceStall: an rcu Synchronize has been waiting longer
	// than the threshold — some reader section is stuck or leaked.
	AnomalyGraceStall AnomalyClass = iota
	// AnomalyStripeConvoy: the per-tick contended/total stripe
	// acquisition ratio spiked over both the absolute threshold and
	// the trailing baseline — writers are convoying on few stripes.
	AnomalyStripeConvoy
	// AnomalyStuckResize: an in-flight resize's migration backlog has
	// not drained for k consecutive ticks.
	AnomalyStuckResize
	// AnomalyEvictionStorm: cache evictions per tick exceeded the
	// threshold — the working set no longer fits.
	AnomalyEvictionStorm
	NumAnomalyClasses
)

func (c AnomalyClass) String() string {
	switch c {
	case AnomalyGraceStall:
		return "grace_stall"
	case AnomalyStripeConvoy:
		return "stripe_convoy"
	case AnomalyStuckResize:
		return "stuck_resize"
	case AnomalyEvictionStorm:
		return "eviction_storm"
	}
	return "anomaly?"
}

// WatchdogSample is the counter snapshot a Watchdog checks each tick.
// The source closure is wired by the integration layer (the cache or
// store owning the tables), which keeps this package free of upward
// dependencies.
type WatchdogSample struct {
	// GracePeriods is the cumulative completed Synchronize count.
	GracePeriods uint64
	// GraceWaiting reports whether a Synchronize is in flight.
	GraceWaiting bool
	// StripeAcquires / StripeContended are the cumulative stripe-lock
	// telemetry counters.
	StripeAcquires  uint64
	StripeContended uint64
	// ResizeBacklog is the in-flight resize's unmigrated unit count
	// (parent chains for the chain engine, copy units for the flat
	// engine); 0 when idle.
	ResizeBacklog int64
	// Evictions is the cumulative cache eviction count.
	Evictions uint64
}

// WatchdogConfig tunes a Watchdog. Zero-valued fields take the
// defaults noted on each.
type WatchdogConfig struct {
	// Clock supplies all timestamps; required (use clock.NewManual in
	// tests, or share the store's coarse clock).
	Clock *clock.Clock
	// Interval is the Start goroutine's tick cadence (default 1s).
	// Tick may also be called directly regardless.
	Interval time.Duration
	// GraceStall is how long a single Synchronize may wait before the
	// stall trips (default 1s).
	GraceStall time.Duration
	// ConvoyRatio is the per-tick contended/total acquisition ratio
	// at which a convoy trips (default 0.5). The ratio must also
	// exceed 4x the trailing EWMA baseline, so a steadily-contended
	// table does not page every tick.
	ConvoyRatio float64
	// ConvoyMinAcquires is the minimum per-tick acquisition delta for
	// the convoy check to apply (default 1000).
	ConvoyMinAcquires uint64
	// StuckResizeTicks is how many consecutive non-draining ticks an
	// in-flight resize backlog survives before tripping (default 5).
	StuckResizeTicks int
	// EvictionStorm is the per-tick eviction delta that trips the
	// storm (default 100000).
	EvictionStorm uint64
	// BundleDir is where first-trigger diagnostic bundles are
	// written; empty disables bundle capture.
	BundleDir string
}

// Anomaly is one watchdog detection.
type Anomaly struct {
	Class  AnomalyClass
	Detail string
	// A, B are the class-specific payload also carried by the ring
	// event: stall age ns / grace periods; contended delta / acquire
	// delta; backlog / stuck ticks; evictions delta / threshold.
	A, B int64
}

// Watchdog runs the periodic anomaly checks. Create with NewWatchdog;
// a nil Watchdog is inert.
type Watchdog struct {
	cfg    WatchdogConfig
	o      *Observer
	reg    *Registry
	sample func() WatchdogSample

	mu   sync.Mutex // serializes Tick (Start goroutine vs manual calls)
	prev WatchdogSample
	seen bool
	// grace-stall tracking: when the in-flight wait was first
	// observed, and at which completed-GP count.
	graceSinceNS int64
	graceGP      uint64
	// convoy baseline: EWMA of the per-tick contention ratio.
	convoyEWMA float64
	// stuck-resize tracking.
	stuckTicks  int
	lastBacklog int64

	ticks   atomic.Uint64
	trips   [NumAnomalyClasses]atomic.Uint64
	bundled [NumAnomalyClasses]atomic.Bool

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewWatchdog builds a watchdog over the given sample source. o
// receives ring events (may be nil); reg, if non-nil, is included in
// diagnostic bundles. Panics if cfg.Clock is nil — timing policy is
// the caller's decision, not a hidden default.
func NewWatchdog(o *Observer, reg *Registry, sample func() WatchdogSample, cfg WatchdogConfig) *Watchdog {
	if cfg.Clock == nil {
		panic("obs: WatchdogConfig.Clock is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.GraceStall <= 0 {
		cfg.GraceStall = time.Second
	}
	if cfg.ConvoyRatio <= 0 {
		cfg.ConvoyRatio = 0.5
	}
	if cfg.ConvoyMinAcquires == 0 {
		cfg.ConvoyMinAcquires = 1000
	}
	if cfg.StuckResizeTicks <= 0 {
		cfg.StuckResizeTicks = 5
	}
	if cfg.EvictionStorm == 0 {
		cfg.EvictionStorm = 100000
	}
	return &Watchdog{cfg: cfg, o: o, reg: reg, sample: sample,
		stop: make(chan struct{}), done: make(chan struct{})}
}

// Start launches the background tick loop. Safe to call once; Stop
// ends it. Tests that script time with a manual clock skip Start and
// call Tick directly.
func (w *Watchdog) Start() {
	if w == nil {
		return
	}
	w.startOnce.Do(func() {
		go func() {
			defer close(w.done)
			t := time.NewTicker(w.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-w.stop:
					return
				case <-t.C:
					w.Tick()
				}
			}
		}()
	})
}

// Stop terminates the background loop (if started) and waits for it.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	w.stopOnce.Do(func() { close(w.stop) })
	w.startOnce.Do(func() { close(w.done) }) // never started: nothing to wait for
	<-w.done
}

// Ticks returns how many checks have run.
func (w *Watchdog) Ticks() uint64 {
	if w == nil {
		return 0
	}
	return w.ticks.Load()
}

// Trips returns how many times class has been detected.
func (w *Watchdog) Trips(c AnomalyClass) uint64 {
	if w == nil || c >= NumAnomalyClasses {
		return 0
	}
	return w.trips[c].Load()
}

// Tick runs one anomaly check against a fresh sample and returns any
// detections. Exported so deterministic tests (and the Start loop)
// drive the exact same code path.
func (w *Watchdog) Tick() []Anomaly {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.ticks.Add(1)
	s := w.sample()
	now := w.cfg.Clock.Nanos()
	var out []Anomaly

	// Grace stall: a Synchronize observed waiting across ticks with
	// no completed grace period in between. The age is measured on
	// the watchdog's own clock from the first tick that saw the wait,
	// so a manual clock scripts it exactly.
	if s.GraceWaiting {
		if w.graceSinceNS == 0 || s.GracePeriods != w.graceGP {
			w.graceSinceNS = now
			w.graceGP = s.GracePeriods
		} else if age := now - w.graceSinceNS; age >= w.cfg.GraceStall.Nanoseconds() {
			out = append(out, Anomaly{Class: AnomalyGraceStall,
				Detail: fmt.Sprintf("Synchronize waiting >= %v (gp=%d)", time.Duration(age), s.GracePeriods),
				A:      age, B: int64(s.GracePeriods)})
			w.graceSinceNS = now // re-arm: re-trip once per further threshold
		}
	} else {
		w.graceSinceNS = 0
	}

	if w.seen {
		// Stripe convoy: per-tick contention ratio over both the
		// absolute threshold and 4x the trailing baseline.
		dAcq := s.StripeAcquires - w.prev.StripeAcquires
		dCon := s.StripeContended - w.prev.StripeContended
		if dAcq >= w.cfg.ConvoyMinAcquires {
			ratio := float64(dCon) / float64(dAcq)
			if ratio >= w.cfg.ConvoyRatio && ratio >= 4*w.convoyEWMA {
				out = append(out, Anomaly{Class: AnomalyStripeConvoy,
					Detail: fmt.Sprintf("stripe contention ratio %.2f (%d/%d this tick)", ratio, dCon, dAcq),
					A:      int64(dCon), B: int64(dAcq)})
			} else {
				w.convoyEWMA = 0.8*w.convoyEWMA + 0.2*ratio
			}
		}

		// Stuck resize: an in-flight backlog that did not shrink for
		// k consecutive ticks.
		if s.ResizeBacklog > 0 && s.ResizeBacklog >= w.lastBacklog && w.lastBacklog > 0 {
			w.stuckTicks++
			if w.stuckTicks >= w.cfg.StuckResizeTicks {
				out = append(out, Anomaly{Class: AnomalyStuckResize,
					Detail: fmt.Sprintf("resize backlog %d not draining for %d ticks", s.ResizeBacklog, w.stuckTicks),
					A:      s.ResizeBacklog, B: int64(w.stuckTicks)})
				w.stuckTicks = 0 // re-arm
			}
		} else {
			w.stuckTicks = 0
		}

		// Eviction storm.
		if dEv := s.Evictions - w.prev.Evictions; dEv >= w.cfg.EvictionStorm {
			out = append(out, Anomaly{Class: AnomalyEvictionStorm,
				Detail: fmt.Sprintf("%d evictions in one tick (threshold %d)", dEv, w.cfg.EvictionStorm),
				A:      int64(dEv), B: int64(w.cfg.EvictionStorm)})
		}
	}
	w.lastBacklog = s.ResizeBacklog
	w.prev = s
	w.seen = true

	for _, a := range out {
		w.trips[a.Class].Add(1)
		if w.o != nil {
			w.o.Events.Record(EvWatchdog, 0, int64(a.Class), a.A, a.B)
		}
		if w.cfg.BundleDir != "" && w.bundled[a.Class].CompareAndSwap(false, true) {
			w.writeBundle(a)
		}
	}
	return out
}

// Register adds the watchdog's meters to a Registry.
func (w *Watchdog) Register(r *Registry) {
	if w == nil || r == nil {
		return
	}
	r.Counter("rphash_watchdog_ticks_total", "Watchdog checks run.", w.Ticks)
	for c := AnomalyClass(0); c < NumAnomalyClasses; c++ {
		c := c
		r.Counter("rphash_watchdog_"+c.String()+"_total",
			"Watchdog "+c.String()+" detections.",
			func() uint64 { return w.trips[c].Load() })
	}
}

// writeBundle captures the diagnostic bundle for a first-trigger
// anomaly: goroutine profile, event-ring dump, histogram snapshots,
// and registry snapshot, under BundleDir/watchdog-<class>/.
func (w *Watchdog) writeBundle(a Anomaly) {
	dir := filepath.Join(w.cfg.BundleDir, "watchdog-"+a.Class.String())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	writeFile := func(name string, fill func(f *os.File)) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return
		}
		defer f.Close()
		fill(f)
	}
	writeFile("anomaly.txt", func(f *os.File) {
		fmt.Fprintf(f, "class: %s\ndetail: %s\na: %d\nb: %d\nwall: %s\nticks: %d\n",
			a.Class, a.Detail, a.A, a.B, time.Now().Format(time.RFC3339Nano), w.Ticks())
	})
	writeFile("goroutines.txt", func(f *os.File) {
		pprof.Lookup("goroutine").WriteTo(f, 2)
	})
	if w.o != nil {
		writeFile("events.txt", func(f *os.File) { w.o.Events.Dump(f) })
		writeFile("histograms.txt", func(f *os.File) {
			snap := w.o.Snapshot()
			dump := func(name string, h HistogramSnapshot) {
				fmt.Fprintf(f, "%-24s count=%d p50=%dns p99=%dns max=%dns\n",
					name, h.Count, h.P50(), h.P99(), h.MaxNS)
			}
			dump("grace_wait", snap.GraceWait)
			dump("stripe_wait", snap.StripeWait)
			dump("cache_load", snap.CacheLoad)
			for i := CmdClass(0); i < NumCmdClasses; i++ {
				dump("cmd_"+i.String(), snap.Cmd[i])
			}
		})
		if w.o.Ops != nil {
			writeFile("ops.txt", func(f *os.File) { w.o.Ops.WriteSummary(f) })
		}
	}
	if w.reg != nil {
		writeFile("metrics.prom", func(f *os.File) { w.reg.WritePrometheus(f) })
		writeFile("metrics.json", func(f *os.File) { w.reg.WriteJSON(f) })
	}
}
