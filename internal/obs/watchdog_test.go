package obs

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rphash/internal/clock"
)

// scriptedSource is a mutable sample the tests edit between ticks.
type scriptedSource struct {
	mu sync.Mutex
	s  WatchdogSample
}

func (src *scriptedSource) set(f func(*WatchdogSample)) {
	src.mu.Lock()
	defer src.mu.Unlock()
	f(&src.s)
}

func (src *scriptedSource) sample() WatchdogSample {
	src.mu.Lock()
	defer src.mu.Unlock()
	return src.s
}

func newTestWatchdog(t *testing.T, cfg WatchdogConfig) (*Watchdog, *scriptedSource, *Observer, string) {
	t.Helper()
	src := &scriptedSource{}
	o := NewObserver()
	reg := NewRegistry()
	o.Register(reg)
	dir := t.TempDir()
	if cfg.Clock == nil {
		cfg.Clock = clock.NewManual(time.Unix(1000, 0))
	}
	if cfg.BundleDir == "" {
		cfg.BundleDir = dir
	}
	w := NewWatchdog(o, reg, src.sample, cfg)
	return w, src, o, cfg.BundleDir
}

// TestWatchdogGraceStallDeterministic scripts a stalled Synchronize
// on a manual clock and asserts the exact detection sequence: arm
// tick, no trip under threshold, trip at threshold, ring event, and
// a diagnostic bundle on first trigger only.
func TestWatchdogGraceStallDeterministic(t *testing.T) {
	clk := clock.NewManual(time.Unix(1000, 0))
	w, src, o, dir := newTestWatchdog(t, WatchdogConfig{
		Clock: clk, GraceStall: time.Second,
	})

	// Nothing waiting: no anomalies, stall tracking disarmed.
	if got := w.Tick(); len(got) != 0 {
		t.Fatalf("idle tick tripped: %+v", got)
	}

	// A Synchronize starts waiting: the first observing tick arms.
	src.set(func(s *WatchdogSample) { s.GraceWaiting = true; s.GracePeriods = 7 })
	if got := w.Tick(); len(got) != 0 {
		t.Fatalf("arming tick tripped early: %+v", got)
	}

	// Under threshold: still quiet.
	clk.Advance(500 * time.Millisecond)
	if got := w.Tick(); len(got) != 0 {
		t.Fatalf("sub-threshold tick tripped: %+v", got)
	}

	// Over threshold with the same completed-GP count: trip.
	clk.Advance(600 * time.Millisecond)
	got := w.Tick()
	if len(got) != 1 || got[0].Class != AnomalyGraceStall {
		t.Fatalf("expected one grace stall, got %+v", got)
	}
	if age := time.Duration(got[0].A); age < time.Second {
		t.Fatalf("stall age %v below threshold", age)
	}
	if w.Trips(AnomalyGraceStall) != 1 {
		t.Fatalf("Trips = %d, want 1", w.Trips(AnomalyGraceStall))
	}

	// Ring event with the class in A.
	var found bool
	for _, e := range o.Events.Snapshot() {
		if e.Type == EvWatchdog && AnomalyClass(e.A) == AnomalyGraceStall {
			found = true
			if !strings.Contains(e.String(), "grace_stall") {
				t.Fatalf("event renders %q", e.String())
			}
		}
	}
	if !found {
		t.Fatal("no EvWatchdog event in the ring")
	}

	// First trigger captured a bundle.
	bdir := filepath.Join(dir, "watchdog-grace_stall")
	for _, f := range []string{"anomaly.txt", "goroutines.txt", "events.txt", "histograms.txt", "metrics.prom", "metrics.json"} {
		if _, err := os.Stat(filepath.Join(bdir, f)); err != nil {
			t.Fatalf("bundle missing %s: %v", f, err)
		}
	}
	body, _ := os.ReadFile(filepath.Join(bdir, "anomaly.txt"))
	if !strings.Contains(string(body), "class: grace_stall") {
		t.Fatalf("anomaly.txt = %q", body)
	}

	// A completed grace period re-arms the tracker: no immediate
	// re-trip even past the threshold.
	src.set(func(s *WatchdogSample) { s.GracePeriods = 8 })
	clk.Advance(2 * time.Second)
	if got := w.Tick(); len(got) != 0 {
		t.Fatalf("advancing GP count should re-arm, got %+v", got)
	}
}

func TestWatchdogStripeConvoy(t *testing.T) {
	w, src, _, _ := newTestWatchdog(t, WatchdogConfig{
		ConvoyRatio: 0.5, ConvoyMinAcquires: 100,
	})
	w.Tick() // baseline sample

	// Low contention establishes the EWMA baseline.
	src.set(func(s *WatchdogSample) { s.StripeAcquires = 10000; s.StripeContended = 100 })
	if got := w.Tick(); len(got) != 0 {
		t.Fatalf("1%% contention tripped: %+v", got)
	}

	// A convoy: 80% of this tick's acquisitions blocked.
	src.set(func(s *WatchdogSample) { s.StripeAcquires = 20000; s.StripeContended = 8100 })
	got := w.Tick()
	if len(got) != 1 || got[0].Class != AnomalyStripeConvoy {
		t.Fatalf("expected convoy, got %+v", got)
	}
	if got[0].A != 8000 || got[0].B != 10000 {
		t.Fatalf("convoy payload: %+v", got[0])
	}
}

func TestWatchdogStuckResize(t *testing.T) {
	w, src, _, _ := newTestWatchdog(t, WatchdogConfig{StuckResizeTicks: 3})
	src.set(func(s *WatchdogSample) { s.ResizeBacklog = 64 })
	w.Tick() // baseline

	// A draining backlog never trips.
	for i, b := range []int64{50, 40, 30, 20, 10} {
		src.set(func(s *WatchdogSample) { s.ResizeBacklog = b })
		if got := w.Tick(); len(got) != 0 {
			t.Fatalf("draining tick %d tripped: %+v", i, got)
		}
	}

	// A frozen backlog trips after exactly StuckResizeTicks ticks.
	src.set(func(s *WatchdogSample) { s.ResizeBacklog = 10 })
	for i := 0; i < 2; i++ {
		if got := w.Tick(); len(got) != 0 {
			t.Fatalf("stuck tick %d tripped early: %+v", i, got)
		}
	}
	got := w.Tick()
	if len(got) != 1 || got[0].Class != AnomalyStuckResize || got[0].A != 10 {
		t.Fatalf("expected stuck resize, got %+v", got)
	}
}

func TestWatchdogEvictionStormAndBundleOnce(t *testing.T) {
	w, src, _, dir := newTestWatchdog(t, WatchdogConfig{EvictionStorm: 50})
	w.Tick() // baseline

	src.set(func(s *WatchdogSample) { s.Evictions = 100 })
	if got := w.Tick(); len(got) != 1 || got[0].Class != AnomalyEvictionStorm {
		t.Fatalf("expected eviction storm, got %+v", got)
	}
	bdir := filepath.Join(dir, "watchdog-eviction_storm")
	st1, err := os.Stat(filepath.Join(bdir, "anomaly.txt"))
	if err != nil {
		t.Fatalf("bundle missing: %v", err)
	}

	// Second storm trips again but does not rewrite the bundle.
	src.set(func(s *WatchdogSample) { s.Evictions = 300 })
	if got := w.Tick(); len(got) != 1 {
		t.Fatalf("second storm: %+v", got)
	}
	if w.Trips(AnomalyEvictionStorm) != 2 {
		t.Fatalf("Trips = %d, want 2", w.Trips(AnomalyEvictionStorm))
	}
	st2, _ := os.Stat(filepath.Join(bdir, "anomaly.txt"))
	if !st1.ModTime().Equal(st2.ModTime()) || st1.Size() != st2.Size() {
		t.Fatal("bundle rewritten on second trigger")
	}
}

func TestWatchdogRegisterAndLoop(t *testing.T) {
	w, src, _, _ := newTestWatchdog(t, WatchdogConfig{
		Interval: time.Millisecond, EvictionStorm: 10,
	})
	reg := NewRegistry()
	w.Register(reg)

	w.Tick() // baseline before the loop starts
	w.Start()
	deadline := time.Now().Add(5 * time.Second)
	for w.Trips(AnomalyEvictionStorm) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background loop never detected the storm")
		}
		// Keep the eviction counter climbing so some tick sees a
		// over-threshold delta no matter how the first ticks
		// interleaved with the baseline.
		src.set(func(s *WatchdogSample) { s.Evictions += 100 })
		time.Sleep(time.Millisecond)
	}
	w.Stop()

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{"rphash_watchdog_ticks_total", "rphash_watchdog_eviction_storm_total", "rphash_watchdog_grace_stall_total 0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("registry missing %q:\n%s", want, out)
		}
	}

	// A never-started watchdog stops cleanly too.
	w2 := NewWatchdog(nil, nil, func() WatchdogSample { return WatchdogSample{} },
		WatchdogConfig{Clock: clock.NewManual(time.Unix(1, 0))})
	w2.Stop()
}
