// Package rcu implements the relativistic-programming synchronization
// primitives the paper's hash table is built on, as a userspace
// epoch-based read-copy-update (RCU) runtime.
//
// The paper ("Resizable, Scalable, Concurrent Hash Tables via
// Relativistic Programming", Triplett, McKenney, Walpole, USENIX
// ATC'11) relies on exactly three primitives, all provided here:
//
//   - Delimited readers: a reader brackets each traversal with
//     Reader.Lock / Reader.Unlock. These are notifications, not
//     permission requests — they never block, never spin on shared
//     state, and never execute an atomic read-modify-write. A read
//     section costs two uncontended atomic stores on a cache line
//     private to the reader, so lookups scale linearly with cores.
//
//   - Pointer publication: writers initialize an object completely and
//     then publish a pointer to it. In Go, sync/atomic loads and
//     stores are sequentially consistent, so an atomic.Pointer store
//     is (more than) the release/acquire pair rcu_assign_pointer /
//     rcu_dereference provide in the kernel. Callers use
//     atomic.Pointer directly; this package documents the contract.
//
//   - Wait-for-readers: Domain.Synchronize returns only after every
//     reader critical section that had begun before the call has
//     finished. Sections that begin after the call may still be in
//     flight — exactly the RCU grace-period contract. Domain.Defer
//     schedules a callback to run after a future grace period
//     (the analogue of call_rcu), batched by a reclaimer goroutine.
//
// # Epoch scheme
//
// A Domain maintains a global epoch counter that is always even.
// Each registered Reader owns a padded state word: 0 when quiescent,
// or epoch|1 captured at section entry. Entry stores the captured
// epoch and then re-reads the global epoch, republishing if it moved.
// Synchronize adds 2 to the epoch and waits for every registered
// reader to be observed either quiescent or carrying a state newer
// than the new epoch.
//
// The entry re-check closes the classic race between a reader storing
// an old epoch and a synchronizer scanning concurrently: with
// sequentially consistent atomics, either the synchronizer's scan
// observes the reader's store (and waits for it), or the reader's
// re-read observes the bumped epoch (and republishes a state the
// synchronizer will not wait for — which is safe, because a section
// that observes the new epoch also observes every store the writer
// made before calling Synchronize).
//
// # Memory reclamation
//
// Go's garbage collector frees unlinked nodes once no reader can
// reach them, so unlike C implementations this package is not needed
// to prevent use-after-free. Grace periods remain algorithmically
// essential: the hash table's unzip operation uses Synchronize to
// guarantee no reader is mid-traversal across a link it is about to
// redirect. Defer additionally gives data structures a hook to
// recycle or account for retired memory only when it is provably
// unreachable.
package rcu
