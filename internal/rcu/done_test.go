package rcu

import (
	"testing"
	"time"
)

// TestDomainDone: Done is open for the domain's lifetime, closes the
// moment Close begins, and stays closed across redundant Closes — the
// prompt-shutdown signal maintenance goroutines (cache sweeper, adapt
// controllers) select on instead of discovering closure via a
// synchronous post-Close Defer.
func TestDomainDone(t *testing.T) {
	d := NewDomain()
	select {
	case <-d.Done():
		t.Fatal("Done() closed before Close")
	default:
	}

	waiter := make(chan struct{})
	go func() {
		<-d.Done()
		close(waiter)
	}()

	d.Close()
	select {
	case <-waiter:
	case <-time.After(2 * time.Second):
		t.Fatal("Done() not closed by Close")
	}
	d.Close() // idempotent; must not panic on a closed doneCh
	select {
	case <-d.Done():
	default:
		t.Fatal("Done() reopened?!")
	}
}
