package rcu

import "sync/atomic"

// QSBRReader is a quiescent-state-based reader: the inverse marking
// discipline to Reader. A QSBR reader is assumed to be inside a
// read-side critical section at all times except when it explicitly
// announces a quiescent state (Quiesce) or goes offline.
//
// This is the discipline the Linux kernel's classic RCU gives the
// paper's microbenchmark for free (running at all is a critical
// section; context switch is a quiescent state): the read side costs
// nothing per traversal, and the cost moves to periodic Quiesce
// announcements, which callers amortize over many operations.
//
// Trade-off versus Reader: grace periods become as long as the
// longest inter-Quiesce span, so a QSBR reader that stops calling
// Quiesce (without Offline) stalls every writer in the domain. Use
// Reader unless the read path is hot enough to matter.
type QSBRReader struct {
	state atomic.Uint64 // 0 = offline, else last-announced epoch | 1
	dom   *Domain
	_pad  [cacheLine - 16]byte //nolint:unused // keep per-reader state line-private
}

// RegisterQSBR creates a QSBR reader, initially online and current.
// The caller must invoke Quiesce regularly (or Offline during idle
// spans); see the type comment.
func (d *Domain) RegisterQSBR() *QSBRReader {
	r := &QSBRReader{dom: d}
	r.state.Store(d.epoch.Load() | 1)
	d.regMu.Lock()
	d.qsbr = append(d.qsbr, r)
	d.regMu.Unlock()
	return r
}

// Quiesce announces a quiescent state: the reader holds no references
// obtained before this call. One atomic load plus one atomic store on
// a private cache line.
func (r *QSBRReader) Quiesce() {
	r.state.Store(r.dom.epoch.Load() | 1)
}

// Offline marks the reader quiescent indefinitely (e.g. while
// blocking on I/O). Writers stop waiting for it.
func (r *QSBRReader) Offline() {
	r.state.Store(0)
}

// Online returns from Offline; the reader is again assumed to be in a
// critical section until the next Quiesce. The store-then-recheck
// mirrors Reader.Lock and closes the same race with a concurrent
// epoch bump.
func (r *QSBRReader) Online() {
	for {
		e := r.dom.epoch.Load()
		r.state.Store(e | 1)
		if r.dom.epoch.Load() == e {
			return
		}
	}
}

// Close takes the reader offline and deregisters it.
func (r *QSBRReader) Close() {
	r.Offline()
	d := r.dom
	d.regMu.Lock()
	for i, q := range d.qsbr {
		if q == r {
			d.qsbr = append(d.qsbr[:i], d.qsbr[i+1:]...)
			break
		}
	}
	d.regMu.Unlock()
}
