package rcu

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestQSBRBlocksGracePeriodUntilQuiesce(t *testing.T) {
	d := NewDomain()
	defer d.Close()
	r := d.RegisterQSBR()
	defer r.Close()

	// The reader has announced nothing since registration; a grace
	// period must not complete until it quiesces.
	synced := make(chan struct{})
	go func() {
		d.Synchronize()
		close(synced)
	}()
	select {
	case <-synced:
		t.Fatal("Synchronize completed with a non-quiescent QSBR reader")
	case <-time.After(50 * time.Millisecond):
	}

	r.Quiesce()
	select {
	case <-synced:
	case <-time.After(5 * time.Second):
		t.Fatal("Synchronize did not complete after Quiesce")
	}
}

func TestQSBROfflineReleasesWriters(t *testing.T) {
	d := NewDomain()
	defer d.Close()
	r := d.RegisterQSBR()
	defer r.Close()

	r.Offline()
	done := make(chan struct{})
	go func() {
		d.Synchronize()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Synchronize stalled on an offline QSBR reader")
	}

	// Back online: grace periods must wait again until next Quiesce.
	r.Online()
	synced := make(chan struct{})
	go func() {
		d.Synchronize()
		close(synced)
	}()
	select {
	case <-synced:
		t.Fatal("Synchronize ignored an online QSBR reader")
	case <-time.After(50 * time.Millisecond):
	}
	r.Quiesce()
	<-synced
}

func TestQSBRCloseDeregisters(t *testing.T) {
	d := NewDomain()
	defer d.Close()
	r := d.RegisterQSBR()
	if got := d.Stats().QSBRReaders; got != 1 {
		t.Fatalf("QSBRReaders = %d, want 1", got)
	}
	r.Close()
	if got := d.Stats().QSBRReaders; got != 0 {
		t.Fatalf("QSBRReaders = %d after Close, want 0", got)
	}
	// With the reader gone, grace periods are immediate.
	d.Synchronize()
}

// TestQSBRPublicationSafety is the QSBR analogue of the tombstone
// detector: an object retired after a grace period must never be
// observed in the span between two Quiesce calls that bracket it.
func TestQSBRPublicationSafety(t *testing.T) {
	d := NewDomain()
	defer d.Close()

	type cell struct{ alive atomic.Bool }
	var ptr atomic.Pointer[cell]
	c0 := &cell{}
	c0.alive.Store(true)
	ptr.Store(c0)

	stop := make(chan struct{})
	var bad atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := d.RegisterQSBR()
			defer r.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Critical span: between Quiesce calls.
				c := ptr.Load()
				if !c.alive.Load() {
					bad.Add(1)
				}
				r.Quiesce()
			}
		}()
	}

	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		next := &cell{}
		next.alive.Store(true)
		old := ptr.Swap(next)
		d.Synchronize()
		old.alive.Store(false)
	}
	close(stop)
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d observations of retired cells by QSBR readers", n)
	}
}

// TestMixedFlavors: EBR and QSBR readers in one domain; a grace
// period waits for both.
func TestMixedFlavors(t *testing.T) {
	d := NewDomain()
	defer d.Close()
	ebr := d.Register()
	defer ebr.Close()
	qs := d.RegisterQSBR()
	defer qs.Close()

	ebr.Lock()
	synced := make(chan struct{})
	go func() {
		d.Synchronize()
		close(synced)
	}()
	select {
	case <-synced:
		t.Fatal("Synchronize ignored the EBR reader")
	case <-time.After(30 * time.Millisecond):
	}
	ebr.Unlock()
	// Still blocked on the QSBR reader.
	select {
	case <-synced:
		t.Fatal("Synchronize ignored the QSBR reader")
	case <-time.After(30 * time.Millisecond):
	}
	qs.Quiesce()
	select {
	case <-synced:
	case <-time.After(5 * time.Second):
		t.Fatal("Synchronize never completed")
	}
}

// BenchmarkQSBRSpan measures the per-operation cost of the QSBR
// discipline at its worst (Quiesce every span) and amortized.
func BenchmarkQSBRSpan(b *testing.B) {
	d := NewDomain()
	defer d.Close()
	b.Run("quiesce-every-op", func(b *testing.B) {
		r := d.RegisterQSBR()
		defer r.Close()
		for i := 0; i < b.N; i++ {
			r.Quiesce()
		}
	})
	b.Run("quiesce-every-64", func(b *testing.B) {
		r := d.RegisterQSBR()
		defer r.Close()
		for i := 0; i < b.N; i++ {
			if i%64 == 0 {
				r.Quiesce()
			}
		}
	})
}
