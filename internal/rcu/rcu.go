package rcu

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"weak"

	"rphash/internal/obs"
)

// cacheLine is the assumed cache-line size used to pad per-reader
// state so that readers on different cores never false-share.
const cacheLine = 64

// quiescent is the reader state meaning "not inside a critical section".
const quiescent = 0

// Domain is an independent RCU domain: a set of registered readers and
// a grace-period clock. Data structures that never share readers may
// use separate domains; a Synchronize in one domain does not wait for
// readers of another.
//
// Lifecycle: NewDomain starts a background reclaimer goroutine that
// runs Defer callbacks after grace periods; Close drains pending
// callbacks and stops it. Synchronize, Register, and the reader
// fast paths remain usable after Close — only the asynchronous
// reclaimer is gone, so a post-Close Defer degrades gracefully: it
// waits a full grace period and runs the callback synchronously on
// the caller, preserving Defer's contract (fn runs only once no
// reader can hold what it retires) at the cost of making the caller
// pay the wait. That keeps late retirements from shutdown paths —
// e.g. a final Delete racing a table Close — correct instead of
// fatal.
//
// The zero value is not usable; call NewDomain.
type Domain struct {
	// epoch is the global grace-period clock. Always even. Starts at 2
	// so that no legal reader state (epoch|1) is ever < 2 while active.
	epoch atomic.Uint64

	// syncMu serializes grace periods. Concurrent Synchronize calls
	// piggyback: each still observes a full grace period of its own
	// because epochs are monotonic.
	syncMu sync.Mutex

	// regMu protects the reader registries.
	//
	// The delimited-reader registry holds WEAK pointers. The reader
	// pool below is drained wholesale by the garbage collector
	// (sync.Pool semantics), and the write fast path refills it
	// constantly; with strong registry references every drained
	// reader would stay registered forever — quiescent, but a
	// permanent extra scan slot for every future grace period, and a
	// slow leak. A weak registry instead tracks exactly the readers
	// somebody can still use: a reader is strongly referenced while
	// pooled, checked out, or held by a handle, and one the collector
	// has dropped can never enter a section again, so Synchronize
	// skipping (and pruning) it is precisely correct.
	regMu   sync.Mutex
	readers map[weak.Pointer[Reader]]struct{}
	qsbr    []*QSBRReader

	// pool recycles anonymous readers used by Domain.Read.
	pool sync.Pool

	// Deferred-callback machinery (the call_rcu analogue).
	defMu     sync.Mutex
	defQ      []func()
	defWake   chan struct{}
	defDone   chan struct{}
	defClosed bool

	// doneCh is closed the moment Close begins, before the reclaimer
	// drains. Background maintenance goroutines (cache sweepers, adapt
	// controllers) select on Done() so they observe shutdown promptly
	// instead of discovering it on their next Defer.
	doneCh chan struct{}

	// gpWaiters counts Synchronize calls currently waiting. QSBR
	// readers poll it (one shared read) to quiesce promptly when a
	// writer is stalled on them.
	gpWaiters atomic.Int32

	// graceWaitNS is the UnixNano stamp of the moment the OLDEST
	// currently-waiting Synchronize arrived (0 when none is waiting).
	// Telemetry only: the anomaly watchdog reads it to age a stalled
	// grace period; no protocol decision ever depends on it.
	graceWaitNS atomic.Int64

	// Statistics (atomic; exposed via Stats).
	nSync     atomic.Uint64
	nDeferred atomic.Uint64
	nRan      atomic.Uint64

	// graceObs, when set (ObserveGraceWaits), receives the wall time
	// of every completed Synchronize — the grace-period wait latency
	// distribution. Off (nil) costs one atomic pointer load per grace
	// period.
	graceObs atomic.Pointer[obs.Histogram]
}

// DomainStats is a snapshot of a domain's counters.
type DomainStats struct {
	Epoch        uint64 // current grace-period clock (even)
	GracePeriods uint64 // completed Synchronize calls
	Readers      int    // currently registered delimited readers
	QSBRReaders  int    // currently registered QSBR readers
	Deferred     uint64 // callbacks ever queued via Defer
	DeferredRan  uint64 // callbacks that have run
}

// NewDomain creates a Domain with a running background reclaimer for
// Defer callbacks.
func NewDomain() *Domain {
	d := &Domain{
		readers: make(map[weak.Pointer[Reader]]struct{}),
		defWake: make(chan struct{}, 1),
		defDone: make(chan struct{}),
		doneCh:  make(chan struct{}),
	}
	d.epoch.Store(2)
	d.pool.New = func() any { return d.Register() }
	go d.reclaimer()
	return d
}

// Register creates and registers a Reader owned by the calling
// goroutine. A Reader must only ever be used by one goroutine at a
// time; a goroutine that is done reading should call Reader.Close to
// deregister (leaking a quiescent reader is harmless but costs the
// synchronizer one extra scan slot).
func (d *Domain) Register() *Reader {
	r := &Reader{dom: d}
	d.regMu.Lock()
	// Amortized registry hygiene: probe a few entries and drop the
	// collected ones. Synchronize also prunes, but a workload that
	// never resizes never synchronizes, and the pool refill cycle
	// (GC drains the pool, the write fast path re-registers) would
	// otherwise grow the map without bound — each Register can orphan
	// at most one prior entry, and four random-start probes reclaim
	// dead ones faster than that, so the map stays within a small
	// factor of the live reader count.
	probes := 0
	for w := range d.readers {
		if w.Value() == nil {
			delete(d.readers, w)
		}
		if probes++; probes >= 4 {
			break
		}
	}
	d.readers[weak.Make(r)] = struct{}{}
	d.regMu.Unlock()
	return r
}

// Reader is a registered relativistic reader. The hot-path methods
// Lock and Unlock are wait-free: one atomic load plus one atomic store
// each (plus a re-check load on Lock), all on a private cache line.
type Reader struct {
	_     [0]func() // not comparable by accident; also blocks copying lint-wise
	state atomic.Uint64
	nest  int32
	dom   *Domain
	_pad  [cacheLine - 8 - 4 - 8]byte //nolint:unused // layout padding
}

// Lock enters a read-side critical section. Sections nest.
func (r *Reader) Lock() {
	r.nest++
	if r.nest > 1 {
		return
	}
	for {
		e := r.dom.epoch.Load()
		r.state.Store(e | 1)
		// Re-check: if a synchronizer bumped the epoch between our
		// load and store, republish so it cannot have missed us while
		// we sit in a pre-bump section. See package docs.
		if r.dom.epoch.Load() == e {
			return
		}
	}
}

// Unlock leaves the current read-side critical section.
func (r *Reader) Unlock() {
	if r.nest <= 0 {
		panic("rcu: Reader.Unlock without matching Lock")
	}
	r.nest--
	if r.nest == 0 {
		r.state.Store(quiescent)
	}
}

// Active reports whether the reader is currently inside a critical
// section. Only the owning goroutine may call it.
func (r *Reader) Active() bool { return r.nest > 0 }

// Close deregisters the reader. It must not be inside a critical
// section. Using the Reader after Close is a bug.
func (r *Reader) Close() {
	if r.nest != 0 {
		panic("rcu: Reader.Close inside critical section")
	}
	// weak.Make on the same pointer yields the same (comparable)
	// handle, so this deletes the entry Register created.
	r.dom.regMu.Lock()
	delete(r.dom.readers, weak.Make(r))
	r.dom.regMu.Unlock()
}

// Read runs fn inside a read-side critical section using a pooled
// reader. It is the convenient form for callers that do not hold a
// long-lived Reader; hot loops should Register their own Reader to
// avoid the pool overhead.
func (d *Domain) Read(fn func()) {
	r := d.pool.Get().(*Reader)
	r.Lock()
	defer func() {
		r.Unlock()
		d.pool.Put(r)
	}()
	fn()
}

// AcquireReader borrows a registered reader from the domain's
// internal pool — the same pool Read uses — for callers that compose
// several short read-side critical sections in one call (batch
// lookups spanning multiple tables) and want to pay the pool
// round-trip once rather than per section. The reader is returned
// quiescent; bracket each section with Lock/Unlock and hand the
// reader back with ReleaseReader. Like any Reader it must only be
// used by one goroutine at a time.
func (d *Domain) AcquireReader() *Reader { return d.pool.Get().(*Reader) }

// ReleaseReader returns a reader obtained from AcquireReader to the
// pool. The reader must be quiescent (outside any critical section)
// and must not be used afterwards.
func (d *Domain) ReleaseReader(r *Reader) {
	if r.nest != 0 {
		panic("rcu: ReleaseReader inside critical section")
	}
	d.pool.Put(r)
}

// ObserveGraceWaits installs a histogram that receives every
// subsequent Synchronize's wall time (nil uninstalls). The histogram
// must be lock-free to record into, which obs.Histogram is; the wait
// itself is not perturbed — timing costs two clock reads per grace
// period, which last microseconds at minimum.
func (d *Domain) ObserveGraceWaits(h *obs.Histogram) { d.graceObs.Store(h) }

// Synchronize waits for a full grace period: it returns only after
// every read-side critical section that began before the call has
// ended. It never blocks readers; it only blocks the caller.
func (d *Domain) Synchronize() {
	var t0 time.Time
	gobs := d.graceObs.Load()
	if gobs != nil {
		t0 = time.Now()
	}
	if d.gpWaiters.Add(1) == 1 {
		d.graceWaitNS.Store(time.Now().UnixNano())
	}
	defer func() {
		if d.gpWaiters.Add(-1) == 0 {
			d.graceWaitNS.Store(0)
		}
	}()
	d.syncMu.Lock()
	defer d.syncMu.Unlock()
	target := d.epoch.Add(2) // new, even epoch

	// Snapshot the registries. Readers registered after the snapshot
	// cannot have been in a pre-target section: Register happens
	// before their first Lock/Online, which will observe epoch >=
	// target.
	d.regMu.Lock()
	snapshot := make([]*Reader, 0, len(d.readers))
	for w := range d.readers {
		if r := w.Value(); r != nil {
			snapshot = append(snapshot, r)
		} else {
			// The collector dropped this reader (pool drain): it was
			// quiescent then and can never enter a section again.
			// Prune the dead handle so the registry tracks only
			// usable readers.
			delete(d.readers, w)
		}
	}
	qsnapshot := make([]*QSBRReader, len(d.qsbr))
	copy(qsnapshot, d.qsbr)
	d.regMu.Unlock()

	// Both reader flavors publish the same state encoding (0 =
	// quiescent/offline, else epoch|1), so one wait predicate covers
	// them: quiescent, or provably entered/announced after target.
	for _, r := range snapshot {
		waitFor(&r.state, target)
	}
	for _, r := range qsnapshot {
		waitFor(&r.state, target)
	}
	d.nSync.Add(1)
	if gobs != nil {
		// Measured from before syncMu: a Synchronize queued behind
		// another's grace period reports its full wait, which is what
		// a blocked writer experiences.
		gobs.RecordSince(0, t0)
	}
}

// GPWaiting reports whether a grace period is currently waiting for
// readers. QSBR readers use it to quiesce eagerly: checking costs one
// load of a line that only changes when a Synchronize starts or ends.
func (d *Domain) GPWaiting() bool { return d.gpWaiters.Load() != 0 }

// GraceWaitingSinceNanos returns the UnixNano timestamp at which the
// oldest currently-waiting Synchronize began waiting, or 0 when no
// grace period is in flight. The anomaly watchdog exports it so a
// stalled reader (a section that never ends) shows up with its age
// rather than as a mute hung writer.
func (d *Domain) GraceWaitingSinceNanos() int64 { return d.graceWaitNS.Load() }

// waitFor spins (yielding, then sleeping) until the reader state is
// quiescent or newer than the target epoch.
func waitFor(state *atomic.Uint64, target uint64) {
	for spins := 0; ; spins++ {
		s := state.Load()
		if s == quiescent || s >= target {
			return
		}
		if spins < 128 {
			runtime.Gosched()
		} else {
			time.Sleep(10 * time.Microsecond)
		}
	}
}

// Defer schedules fn to run after a future grace period, i.e. once
// every reader section that could currently hold a reference to
// whatever fn retires has ended. Callbacks run on the domain's
// reclaimer goroutine in queue order (batched: one grace period may
// cover many callbacks). After Close the reclaimer is gone, so Defer
// falls back to synchronous execution: it waits a grace period and
// runs fn on the calling goroutine before returning (see the Domain
// lifecycle notes).
func (d *Domain) Defer(fn func()) {
	d.defMu.Lock()
	if d.defClosed {
		d.defMu.Unlock()
		d.nDeferred.Add(1)
		d.Synchronize()
		fn()
		d.nRan.Add(1)
		return
	}
	d.defQ = append(d.defQ, fn)
	d.defMu.Unlock()
	d.nDeferred.Add(1)
	select {
	case d.defWake <- struct{}{}:
	default:
	}
}

// Barrier blocks until every callback queued by Defer before the call
// has run (the rcu_barrier analogue). Tests use it to make
// reclamation deterministic.
func (d *Domain) Barrier() {
	done := make(chan struct{})
	d.Defer(func() { close(done) })
	<-done
}

// Done returns a channel closed when the domain's Close begins.
// Long-running goroutines tied to the domain's lifetime (the cache's
// expiry sweeper, adapt controllers, resize helpers) select on it to
// exit promptly on shutdown rather than polling or waiting to trip
// over a post-Close Defer.
func (d *Domain) Done() <-chan struct{} { return d.doneCh }

// Close shuts down the reclaimer after draining pending callbacks.
// The domain must not be used afterwards.
func (d *Domain) Close() {
	d.defMu.Lock()
	if d.defClosed {
		d.defMu.Unlock()
		return
	}
	d.defClosed = true
	close(d.doneCh)
	d.defMu.Unlock()
	select {
	case d.defWake <- struct{}{}:
	default:
	}
	<-d.defDone
}

// Stats returns a snapshot of domain counters.
func (d *Domain) Stats() DomainStats {
	d.regMu.Lock()
	n := 0
	for w := range d.readers {
		// Count only readers still reachable; dead handles linger
		// until the next Synchronize prunes them.
		if w.Value() != nil {
			n++
		}
	}
	q := len(d.qsbr)
	d.regMu.Unlock()
	return DomainStats{
		Epoch:        d.epoch.Load(),
		GracePeriods: d.nSync.Load(),
		Readers:      n,
		QSBRReaders:  q,
		Deferred:     d.nDeferred.Load(),
		DeferredRan:  d.nRan.Load(),
	}
}

// String implements fmt.Stringer for debugging.
func (s DomainStats) String() string {
	return fmt.Sprintf("epoch=%d grace-periods=%d readers=%d deferred=%d ran=%d",
		s.Epoch, s.GracePeriods, s.Readers, s.Deferred, s.DeferredRan)
}

// reclaimer is the background goroutine that turns queued Defer
// callbacks into "ran after a grace period" callbacks.
func (d *Domain) reclaimer() {
	defer close(d.defDone)
	for {
		<-d.defWake
		for {
			d.defMu.Lock()
			batch := d.defQ
			d.defQ = nil
			closed := d.defClosed
			d.defMu.Unlock()

			if len(batch) > 0 {
				d.Synchronize()
				for _, fn := range batch {
					fn()
					d.nRan.Add(1)
				}
				continue // re-check for work queued meanwhile
			}
			if closed {
				return
			}
			break
		}
	}
}
