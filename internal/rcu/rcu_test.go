package rcu

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// syncWithin runs d.Synchronize and fails the test if it does not
// return within the deadline — a watchdog against grace-period hangs.
func syncWithin(t *testing.T, d *Domain, deadline time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		d.Synchronize()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(deadline):
		t.Fatalf("Synchronize did not complete within %v", deadline)
	}
}

func TestSynchronizeNoReaders(t *testing.T) {
	d := NewDomain()
	defer d.Close()
	syncWithin(t, d, 5*time.Second)
}

func TestSynchronizeQuiescentReaders(t *testing.T) {
	d := NewDomain()
	defer d.Close()
	for i := 0; i < 8; i++ {
		defer d.Register().Close()
	}
	syncWithin(t, d, 5*time.Second)
}

func TestReaderNesting(t *testing.T) {
	d := NewDomain()
	defer d.Close()
	r := d.Register()
	defer r.Close()

	r.Lock()
	r.Lock()
	if !r.Active() {
		t.Fatal("reader should be active inside nested section")
	}
	r.Unlock()
	if !r.Active() {
		t.Fatal("reader should stay active until outermost Unlock")
	}
	if s := r.state.Load(); s == quiescent {
		t.Fatal("state went quiescent before outermost Unlock")
	}
	r.Unlock()
	if r.Active() {
		t.Fatal("reader should be quiescent after outermost Unlock")
	}
	if s := r.state.Load(); s != quiescent {
		t.Fatalf("state = %d after outermost Unlock, want quiescent", s)
	}
}

func TestUnlockWithoutLockPanics(t *testing.T) {
	d := NewDomain()
	defer d.Close()
	r := d.Register()
	defer r.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock without Lock should panic")
		}
	}()
	r.Unlock()
}

func TestCloseInsideSectionPanics(t *testing.T) {
	d := NewDomain()
	defer d.Close()
	r := d.Register()
	r.Lock()
	defer func() {
		if recover() == nil {
			t.Fatal("Close inside critical section should panic")
		}
		r.Unlock()
		r.Close()
	}()
	r.Close()
}

// TestGracePeriodWaitsForPreexistingReader is the core RCU contract:
// Synchronize must not return while a section that began before it is
// still open.
func TestGracePeriodWaitsForPreexistingReader(t *testing.T) {
	d := NewDomain()
	defer d.Close()
	r := d.Register()
	defer r.Close()

	r.Lock()
	synced := make(chan struct{})
	go func() {
		d.Synchronize()
		close(synced)
	}()

	// The synchronizer must be stuck while we hold the section open.
	select {
	case <-synced:
		t.Fatal("Synchronize returned while a pre-existing reader was active")
	case <-time.After(50 * time.Millisecond):
	}

	r.Unlock()
	select {
	case <-synced:
	case <-time.After(5 * time.Second):
		t.Fatal("Synchronize did not return after reader exited")
	}
}

// TestGracePeriodIgnoresNewReaders: a section that begins after
// Synchronize has bumped the epoch must not delay it.
func TestGracePeriodIgnoresNewReaders(t *testing.T) {
	d := NewDomain()
	defer d.Close()
	rOld := d.Register()
	defer rOld.Close()
	rNew := d.Register()
	defer rNew.Close()

	rOld.Lock()
	started := make(chan struct{})
	synced := make(chan struct{})
	go func() {
		close(started)
		d.Synchronize()
		close(synced)
	}()
	<-started
	// Give the synchronizer a moment to bump the epoch, then start a
	// new reader section and keep it open "forever".
	time.Sleep(20 * time.Millisecond)
	rNew.Lock()
	defer rNew.Unlock()

	rOld.Unlock()
	select {
	case <-synced:
		// Synchronize returned even though rNew is still inside its
		// (post-epoch-bump) section.
	case <-time.After(5 * time.Second):
		t.Fatal("Synchronize stalled on a reader that began after the grace period started")
	}
}

// TestPublicationVisibility exercises the writer protocol end to end:
// initialize, publish, synchronize, retire — a reader that saw the old
// pointer must be gone by the time Synchronize returns.
func TestPublicationVisibility(t *testing.T) {
	type payload struct{ v int }
	d := NewDomain()
	defer d.Close()

	var ptr atomic.Pointer[payload]
	ptr.Store(&payload{v: 1})

	const readers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var sawZero atomic.Bool
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := d.Register()
			defer r.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Lock()
				p := ptr.Load()
				if p == nil || p.v == 0 {
					sawZero.Store(true)
				}
				r.Unlock()
			}
		}()
	}

	// Writer: repeatedly publish a fresh value, wait a grace period,
	// then "poison" the retired object. If any reader could still see
	// the retired object after Synchronize, it would observe v == 0.
	for i := 2; i < 50; i++ {
		old := ptr.Load()
		ptr.Store(&payload{v: i})
		d.Synchronize()
		old.v = 0 // would be a use-after-free in C; here it is a detector
	}
	close(stop)
	wg.Wait()
	if sawZero.Load() {
		t.Fatal("a reader observed a retired object after its grace period")
	}
}

func TestDeferRunsAfterGracePeriod(t *testing.T) {
	d := NewDomain()
	defer d.Close()
	r := d.Register()
	defer r.Close()

	r.Lock()
	var ran atomic.Bool
	d.Defer(func() { ran.Store(true) })

	time.Sleep(50 * time.Millisecond)
	if ran.Load() {
		t.Fatal("Defer callback ran while a pre-existing reader was active")
	}
	r.Unlock()

	deadline := time.After(5 * time.Second)
	for !ran.Load() {
		select {
		case <-deadline:
			t.Fatal("Defer callback never ran")
		case <-time.After(time.Millisecond):
		}
	}
}

func TestDeferOrdering(t *testing.T) {
	d := NewDomain()
	defer d.Close()
	var mu sync.Mutex
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		d.Defer(func() {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
		})
	}
	d.Barrier()
	mu.Lock()
	defer mu.Unlock()
	if len(got) < 10 {
		t.Fatalf("ran %d callbacks before barrier, want >= 10", len(got))
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("callback order %v, want queue order", got)
		}
	}
}

func TestBarrier(t *testing.T) {
	d := NewDomain()
	defer d.Close()
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		d.Defer(func() { n.Add(1) })
	}
	d.Barrier()
	if n.Load() != 100 {
		t.Fatalf("after Barrier, %d callbacks ran, want 100", n.Load())
	}
}

func TestDomainRead(t *testing.T) {
	d := NewDomain()
	defer d.Close()
	ran := false
	d.Read(func() { ran = true })
	if !ran {
		t.Fatal("Read did not run the function")
	}
	// Pooled readers must be reusable and not corrupt nesting.
	for i := 0; i < 100; i++ {
		d.Read(func() {
			d.Read(func() {}) // nested Read via a second pooled reader
		})
	}
	syncWithin(t, d, 5*time.Second)
}

func TestStats(t *testing.T) {
	d := NewDomain()
	defer d.Close()
	r := d.Register()
	defer r.Close()

	before := d.Stats()
	d.Synchronize()
	d.Defer(func() {})
	d.Barrier()
	after := d.Stats()

	if after.GracePeriods <= before.GracePeriods {
		t.Errorf("grace periods did not advance: %v -> %v", before, after)
	}
	if after.Epoch <= before.Epoch {
		t.Errorf("epoch did not advance: %v -> %v", before, after)
	}
	if after.Epoch%2 != 0 {
		t.Errorf("epoch must stay even, got %d", after.Epoch)
	}
	if after.Deferred < 2 || after.DeferredRan < 2 {
		t.Errorf("deferred counters not tracked: %v", after)
	}
	if after.Readers != 1 {
		t.Errorf("Readers = %d, want 1", after.Readers)
	}
	if after.String() == "" {
		t.Error("Stats.String is empty")
	}
}

func TestCloseIdempotent(t *testing.T) {
	d := NewDomain()
	d.Close()
	d.Close() // second Close must not hang or panic
}

// TestDeferAfterCloseRunsSynchronously: with the reclaimer gone, a
// post-Close Defer must still honor the contract — fn runs after a
// full grace period — by synchronizing and running fn on the caller
// before Defer returns.
func TestDeferAfterCloseRunsSynchronously(t *testing.T) {
	d := NewDomain()
	before := d.Stats()
	d.Close()
	ran := false
	d.Defer(func() { ran = true })
	if !ran {
		t.Fatal("post-Close Defer did not run the callback before returning")
	}
	after := d.Stats()
	if after.GracePeriods <= before.GracePeriods {
		t.Fatal("post-Close Defer did not wait a grace period before running fn")
	}
	if after.DeferredRan != after.Deferred {
		t.Fatalf("counters out of sync after post-Close Defer: queued=%d ran=%d",
			after.Deferred, after.DeferredRan)
	}
}

// TestDeferAfterCloseWaitsForReaders: the synchronous fallback must
// still wait for in-flight reader sections, not just return.
func TestDeferAfterCloseWaitsForReaders(t *testing.T) {
	d := NewDomain()
	r := d.Register()
	d.Close()

	r.Lock()
	done := make(chan struct{})
	go func() {
		d.Defer(func() {})
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("post-Close Defer completed while a reader section was open")
	case <-time.After(20 * time.Millisecond):
	}
	r.Unlock() // the release: Defer's grace period may now complete
	<-done
	r.Close()
}

func TestManySynchronizersProgress(t *testing.T) {
	d := NewDomain()
	defer d.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				d.Synchronize()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent synchronizers did not make progress")
	}
}

func TestEpochMonotoneUnderConcurrency(t *testing.T) {
	d := NewDomain()
	defer d.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := d.Register()
			defer r.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Lock()
				r.Unlock()
			}
		}()
	}
	var last uint64
	for i := 0; i < 200; i++ {
		d.Synchronize()
		e := d.Stats().Epoch
		if e <= last {
			t.Fatalf("epoch not strictly increasing across grace periods: %d then %d", last, e)
		}
		if e%2 != 0 {
			t.Fatalf("epoch %d not even", e)
		}
		last = e
	}
	close(stop)
	wg.Wait()
}

// TestGraceWaitingSinceNanos checks the in-flight wait stamp the
// anomaly watchdog ages: zero when idle, the oldest waiter's arrival
// time while a grace period is blocked on an open section, zero again
// once the waiter drains.
func TestGraceWaitingSinceNanos(t *testing.T) {
	d := NewDomain()
	defer d.Close()
	if got := d.GraceWaitingSinceNanos(); got != 0 {
		t.Fatalf("idle stamp = %d, want 0", got)
	}

	r := d.Register()
	r.Lock() // pin the grace period open
	before := time.Now().UnixNano()
	done := make(chan struct{})
	go func() {
		d.Synchronize()
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for d.GraceWaitingSinceNanos() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stamp never set while Synchronize waits")
		}
		time.Sleep(time.Millisecond)
	}
	if stamp := d.GraceWaitingSinceNanos(); stamp < before || stamp > time.Now().UnixNano() {
		t.Fatalf("stamp %d outside [%d, now]", stamp, before)
	}
	if !d.GPWaiting() {
		t.Fatal("GPWaiting false while stamped")
	}

	r.Unlock()
	<-done
	r.Close()
	for d.GraceWaitingSinceNanos() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("stamp never cleared after the waiter drained")
		}
		time.Sleep(time.Millisecond)
	}
}
